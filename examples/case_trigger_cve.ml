(* The paper's Figure 3 case study: CVE-2021-35643.

   LEGO first learns the type-affinity INSERT -> CREATE TRIGGER from a
   mutated seed, then synthesizes the short sequence
   CREATE TABLE -> INSERT -> CREATE TRIGGER -> SELECT and instantiates it;
   one instantiation with a window function crashes the MySQL server.

   This example replays that pipeline explicitly: affinity analysis
   (Algorithm 2), progressive synthesis (Algorithm 3), instantiation, and
   finally the handcrafted crashing test case from the paper.

   dune exec examples/case_trigger_cve.exe *)

open Sqlcore

let () =
  let profile = Dialects.Registry.mysql_sim in

  (* Step 1: affinity analysis on a mutated seed (paper Fig. 3, left). *)
  print_endline "== Step 1: proactive affinity analysis ==";
  let affinity = Lego.Affinity.create () in
  let mutated_seed =
    Sqlparser.Parser.parse_testcase_exn
      "DROP TABLE IF EXISTS t1;\n\
       CREATE TEMPORARY TABLE t1 (a INT, b INT, c VARCHAR(100));\n\
       INSERT IGNORE INTO t1 VALUES (1, 1, 'name1');\n\
       SELECT * FROM t1;\n\
       INSERT IGNORE INTO t1 VALUES (2, 2, 'water');\n\
       CREATE TRIGGER v0 AFTER UPDATE ON t1 FOR EACH ROW INSERT INTO t1 \
       VALUES (3, 3, 'x');\n\
       SELECT * FROM t1 GROUP BY c;"
  in
  (* a second coverage-increasing seed from earlier in the campaign *)
  let earlier_seed =
    Sqlparser.Parser.parse_testcase_exn
      "CREATE TABLE t2 (a INT, b INT);\n\
       INSERT INTO t2 VALUES (1, 2);\n\
       SELECT * FROM t2;"
  in
  let news =
    Lego.Affinity.analyze affinity earlier_seed
    @ Lego.Affinity.analyze affinity mutated_seed
  in
  List.iter
    (fun (a, b) ->
       Printf.printf "  new type-affinity: %s -> %s\n" (Stmt_type.name a)
         (Stmt_type.name b))
    news;

  (* Step 2: progressive synthesis from the new affinity (Alg 3). *)
  print_endline "\n== Step 2: progressive sequence synthesis ==";
  let synthesis =
    Lego.Synthesis.create ~max_len:4 ~types:(Minidb.Profile.types profile) ()
  in
  (* announce every discovered affinity in order, as the fuzzing loop
     does; the last announcement is the interesting one *)
  let seqs =
    List.concat_map
      (fun pair -> Lego.Synthesis.on_new_affinity synthesis affinity pair)
      news
  in
  Printf.printf "  %d sequences synthesized from the seed's affinities\n"
    (List.length seqs);
  let wanted =
    [ Stmt_type.Create_table; Stmt_type.Insert; Stmt_type.Create_trigger;
      Stmt_type.Select ]
  in
  let have_wanted =
    List.mem wanted (List.map (Lego.Synthesis.to_types synthesis) seqs)
  in
  Printf.printf "  contains the paper's 2->3->5->4 sequence: %b\n"
    have_wanted;

  (* Step 3: instantiate until the CVE fires. *)
  print_endline "\n== Step 3: instantiation until the server crashes ==";
  let rng = Reprutil.Rng.create 2021 in
  let skeletons = Lego.Skeleton_library.create () in
  ignore (Lego.Skeleton_library.harvest skeletons mutated_seed);
  let harness = Fuzz.Harness.create ~profile () in
  let rec hunt i =
    if i > 3000 then print_endline "  (no crash in 3000 instantiations)"
    else
      let tc = Lego.Instantiate.sequence rng ~skeletons wanted in
      match (Fuzz.Harness.execute harness tc).Fuzz.Harness.o_crash with
      | Some crash ->
        Printf.printf "  crash after %d instantiations!\n\n" i;
        print_endline (Sql_printer.testcase tc);
        print_newline ();
        Format.printf "%a@." Minidb.Fault.pp_crash crash
      | None -> hunt (i + 1)
  in
  hunt 1;

  (* The paper's own synthesized test case, for good measure. *)
  print_endline "\n== The paper's synthesized test case ==";
  let paper_case =
    Sqlparser.Parser.parse_testcase_exn
      "CREATE TABLE v0 (v1 YEAR);\n\
       INSERT IGNORE INTO v0 VALUES (NULL), (2021), (1999);\n\
       CREATE TRIGGER v9 AFTER UPDATE ON v0 FOR EACH ROW INSERT INTO v0 \
       SELECT * FROM v0 GROUP BY v1;\n\
       SELECT LEAD(v1) OVER (ORDER BY v1 ASC) AS w FROM v0;"
  in
  match (Fuzz.Harness.execute harness paper_case).Fuzz.Harness.o_crash with
  | Some crash ->
    Printf.printf "reproduces %s (%s in %s)\n"
      crash.Minidb.Fault.c_bug.Minidb.Fault.identifier
      (Minidb.Fault.kind_name crash.Minidb.Fault.c_bug.Minidb.Fault.kind)
      crash.Minidb.Fault.c_bug.Minidb.Fault.component
  | None -> print_endline "no crash -- unexpected!"
