(* Tests for runtime values: coercion, comparison, truthiness. *)

open Storage
open Sqlcore.Ast

let v = Alcotest.testable (fun fmt x ->
    Format.pp_print_string fmt (Value.to_display x)) Value.equal

let test_coerce_int () =
  Alcotest.(check (result v string)) "float to int" (Ok (Value.Int 3))
    (Value.coerce (Value.Float 3.7) T_int);
  Alcotest.(check (result v string)) "text prefix" (Ok (Value.Int 12))
    (Value.coerce (Value.Text "12abc") T_int);
  Alcotest.(check (result v string)) "garbage text" (Ok (Value.Int 0))
    (Value.coerce (Value.Text "abc") T_int);
  Alcotest.(check (result v string)) "bool" (Ok (Value.Int 1))
    (Value.coerce (Value.Bool true) T_int)

let test_coerce_varchar_truncates () =
  Alcotest.(check (result v string)) "truncated" (Ok (Value.Text "abc"))
    (Value.coerce (Value.Text "abcdef") (T_varchar 3));
  Alcotest.(check (result v string)) "int rendered" (Ok (Value.Text "42"))
    (Value.coerce (Value.Int 42) (T_varchar 8))

let test_coerce_year () =
  Alcotest.(check (result v string)) "plain year" (Ok (Value.Int 1999))
    (Value.coerce (Value.Int 1999) T_year);
  Alcotest.(check (result v string)) "two-digit 22 -> 2022"
    (Ok (Value.Int 2022))
    (Value.coerce (Value.Int 22) T_year);
  Alcotest.(check (result v string)) "two-digit 85 -> 1985"
    (Ok (Value.Int 1985))
    (Value.coerce (Value.Int 85) T_year);
  Alcotest.(check bool) "out of range errors" true
    (match Value.coerce (Value.Int 9999) T_year with
     | Error _ -> true
     | Ok _ -> false)

let test_coerce_null_passthrough () =
  List.iter
    (fun dt ->
       Alcotest.(check (result v string)) "null stays null" (Ok Value.Null)
         (Value.coerce Value.Null dt))
    [ T_int; T_float; T_text; T_bool; T_varchar 4; T_year ]

let test_compare_sql_null () =
  Alcotest.(check (option int)) "null left" None
    (Value.compare_sql Value.Null (Value.Int 1));
  Alcotest.(check (option int)) "null right" None
    (Value.compare_sql (Value.Int 1) Value.Null)

let test_compare_sql_cross_type () =
  Alcotest.(check (option int)) "int vs float" (Some 0)
    (Value.compare_sql (Value.Int 2) (Value.Float 2.0));
  (match Value.compare_sql (Value.Int 1) (Value.Float 1.5) with
   | Some c -> Alcotest.(check bool) "1 < 1.5" true (c < 0)
   | None -> Alcotest.fail "expected comparison");
  (match Value.compare_sql (Value.Text "b") (Value.Text "a") with
   | Some c -> Alcotest.(check bool) "b > a" true (c > 0)
   | None -> Alcotest.fail "expected comparison")

let test_truthiness () =
  Alcotest.(check bool) "null false" false (Value.is_truthy Value.Null);
  Alcotest.(check bool) "zero false" false (Value.is_truthy (Value.Int 0));
  Alcotest.(check bool) "empty text false" false
    (Value.is_truthy (Value.Text ""));
  Alcotest.(check bool) "nonzero true" true (Value.is_truthy (Value.Int 5));
  Alcotest.(check bool) "bool" true (Value.is_truthy (Value.Bool true))

let test_of_literal () =
  Alcotest.(check v) "int" (Value.Int 3) (Value.of_literal (L_int 3));
  Alcotest.(check v) "null" Value.Null (Value.of_literal L_null);
  Alcotest.(check v) "string" (Value.Text "x")
    (Value.of_literal (L_string "x"))

(* Property: compare_total is a total order (reflexive-antisymmetric and
   transitive on a sampled domain). *)
let arbitrary_value =
  QCheck.Gen.(
    oneof
      [ return Value.Null;
        map (fun n -> Value.Int n) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_inclusive 100.0);
        map (fun s -> Value.Text s) (string_size (int_bound 6));
        map (fun b -> Value.Bool b) bool ])
  |> QCheck.make

let prop_total_order_antisym =
  QCheck.Test.make ~name:"compare_total antisymmetric" ~count:500
    (QCheck.pair arbitrary_value arbitrary_value) (fun (a, b) ->
      let c1 = Value.compare_total a b in
      let c2 = Value.compare_total b a in
      (c1 = 0 && c2 = 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0))

let prop_total_order_trans =
  QCheck.Test.make ~name:"compare_total transitive" ~count:500
    (QCheck.triple arbitrary_value arbitrary_value arbitrary_value)
    (fun (a, b, c) ->
       let ab = Value.compare_total a b in
       let bc = Value.compare_total b c in
       let ac = Value.compare_total a c in
       if ab <= 0 && bc <= 0 then ac <= 0 else true)

let prop_coerce_idempotent =
  QCheck.Test.make ~name:"coercion idempotent" ~count:500
    (QCheck.pair arbitrary_value
       (QCheck.oneofl [ T_int; T_float; T_text; T_bool; T_varchar 5 ]))
    (fun (value, dt) ->
       match Value.coerce value dt with
       | Error _ -> true
       | Ok once -> (
           match Value.coerce once dt with
           | Error _ -> false
           | Ok twice -> Value.equal once twice))

let suite =
  [ ("coerce int", `Quick, test_coerce_int);
    ("coerce varchar truncates", `Quick, test_coerce_varchar_truncates);
    ("coerce year", `Quick, test_coerce_year);
    ("coerce null passthrough", `Quick, test_coerce_null_passthrough);
    ("compare_sql null", `Quick, test_compare_sql_null);
    ("compare_sql cross type", `Quick, test_compare_sql_cross_type);
    ("truthiness", `Quick, test_truthiness);
    ("of_literal", `Quick, test_of_literal);
    QCheck_alcotest.to_alcotest prop_total_order_antisym;
    QCheck_alcotest.to_alcotest prop_total_order_trans;
    QCheck_alcotest.to_alcotest prop_coerce_idempotent ]
