(* Tests for the SVI extensions: affinity serialization, non-adjacent
   affinity analysis, SQUIRREL+ with imported affinities, and a sweep of
   every statement type through the executor. *)

open Sqlcore
module A = Lego.Affinity

let parse = Sqlparser.Parser.parse_testcase_exn

(* --- serialization --------------------------------------------------- *)

let test_affinity_roundtrip () =
  let t = A.create () in
  ignore (A.add t Stmt_type.Create_table Stmt_type.Insert);
  ignore (A.add t Stmt_type.Insert Stmt_type.Create_trigger);
  ignore (A.add t Stmt_type.Notify Stmt_type.With_dml);
  let text = A.to_string t in
  match A.of_string text with
  | Ok t2 ->
    Alcotest.(check int) "same count" (A.count t) (A.count t2);
    Alcotest.(check bool) "same pairs" true (A.pairs t = A.pairs t2)
  | Error msg -> Alcotest.fail msg

let test_affinity_parse_errors () =
  (match A.of_string "CREATE TABLE -> NO SUCH TYPE" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown type accepted");
  (match A.of_string "just some words" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "malformed line accepted");
  match A.of_string "" with
  | Ok t -> Alcotest.(check int) "empty ok" 0 (A.count t)
  | Error msg -> Alcotest.fail msg

let test_affinity_format_shape () =
  let t = A.create () in
  ignore (A.add t Stmt_type.Insert Stmt_type.Select);
  Alcotest.(check string) "line format" "INSERT -> SELECT" (A.to_string t)

(* --- non-adjacent analysis ------------------------------------------- *)

let test_analyze_within_distance () =
  let tc =
    parse
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;"
  in
  let adj = A.create () in
  ignore (A.analyze_within adj ~distance:1 tc);
  Alcotest.(check int) "distance 1 = Algorithm 2" 2 (A.count adj);
  let wide = A.create () in
  ignore (A.analyze_within wide ~distance:2 tc);
  Alcotest.(check int) "distance 2 adds the skip pair" 3 (A.count wide);
  Alcotest.(check bool) "create->select captured" true
    (A.mem wide Stmt_type.Create_table Stmt_type.Select);
  Alcotest.(check bool) "but not at distance 1" false
    (A.mem adj Stmt_type.Create_table Stmt_type.Select)

(* --- SQUIRREL+ -------------------------------------------------------- *)

let learned_affinities profile =
  (* a quick LEGO campaign, exported and re-imported, like the paper's
     workflow of shipping LEGO's affinities to another fuzzer *)
  let lego = Lego.Lego_fuzzer.create profile in
  let _ =
    Fuzz.Driver.run_until_execs (Lego.Lego_fuzzer.fuzzer lego) ~execs:3000
  in
  match A.of_string (A.to_string (Lego.Lego_fuzzer.affinities lego)) with
  | Ok t -> t
  | Error msg -> Alcotest.fail msg

let test_squirrel_plus_changes_sequences () =
  let profile = Dialects.Registry.mariadb_sim in
  let affinities = learned_affinities profile in
  Alcotest.(check bool) "something was learned" true (A.count affinities > 5);
  let t = Baselines.Squirrel_plus.create ~affinities profile in
  let fz = Baselines.Squirrel_plus.fuzzer t in
  let _ = Fuzz.Driver.run_until_execs fz ~execs:4000 in
  let initial_seqs =
    List.map Ast.type_sequence (Fuzz.Corpus.initial profile)
  in
  let novel =
    List.exists
      (fun tc -> not (List.mem (Ast.type_sequence tc) initial_seqs))
      (fz.Fuzz.Driver.f_corpus ())
  in
  Alcotest.(check bool)
    "imported affinities let it escape the corpus sequences" true novel

let test_squirrel_plus_beats_squirrel () =
  let profile = Dialects.Registry.mariadb_sim in
  let affinities = learned_affinities profile in
  let budget = 4000 in
  let plus =
    Fuzz.Driver.run_until_execs
      (Baselines.Squirrel_plus.fuzzer
         (Baselines.Squirrel_plus.create ~affinities profile))
      ~execs:budget
  in
  let plain =
    Fuzz.Driver.run_until_execs
      (Baselines.Squirrel_sim.fuzzer (Baselines.Squirrel_sim.create profile))
      ~execs:budget
  in
  Alcotest.(check bool) "affinity guidance helps coverage" true
    (plus.Fuzz.Driver.st_branches > plain.Fuzz.Driver.st_branches)

(* --- all-94-types executor sweep -------------------------------------- *)

let test_every_type_executes_or_errors_cleanly () =
  (* every statement type, generated fresh, must either execute or raise a
     recoverable SQL error on a clean engine: no other exceptions *)
  let profile =
    Minidb.Profile.make ~name:"sweep" ~flavor:Minidb.Profile.Pg
      ~types:Stmt_type.all ~bugs:[]
  in
  let rng = Reprutil.Rng.create 31 in
  for round = 1 to 20 do
    let cov = Coverage.Bitmap.create () in
    let eng = Minidb.Engine.create ~profile ~cov () in
    (* give every round a little schema to land on *)
    ignore
      (Minidb.Engine.run_testcase eng
         (parse
            "CREATE TABLE base (c1 INT, c2 TEXT);\n\
             INSERT INTO base VALUES (1, 'x');"));
    let schema =
      Lego.Sym_schema.of_testcase
        (parse "CREATE TABLE base (c1 INT, c2 TEXT);")
    in
    List.iter
      (fun ty ->
         let stmt = Lego.Generator.stmt rng schema ty in
         match Minidb.Engine.exec_stmt eng stmt with
         | Minidb.Engine.Ok_result _ | Minidb.Engine.Sql_failed _ -> ()
         | exception e ->
           Alcotest.fail
             (Printf.sprintf "round %d, %s raised %s:\n%s" round
                (Stmt_type.name ty) (Printexc.to_string e)
                (Sql_printer.stmt stmt)))
      Stmt_type.all
  done

let suite =
  [ ("affinity roundtrip", `Quick, test_affinity_roundtrip);
    ("affinity parse errors", `Quick, test_affinity_parse_errors);
    ("affinity format", `Quick, test_affinity_format_shape);
    ("analyze_within distance", `Quick, test_analyze_within_distance);
    ("squirrel+ changes sequences", `Slow,
     test_squirrel_plus_changes_sequences);
    ("squirrel+ beats squirrel", `Slow, test_squirrel_plus_beats_squirrel);
    ("every type executes cleanly", `Quick,
     test_every_type_executes_or_errors_cleanly) ]
