(* Engine-level tests: run_testcase accounting, fault-window behaviour,
   crash semantics, coverage determinism. *)

open Sqlcore
module E = Minidb.Engine
module F = Minidb.Fault

let parse = Sqlparser.Parser.parse_testcase_exn

let profile_with_bugs bugs =
  Minidb.Profile.make ~name:"test" ~flavor:Minidb.Profile.Pg
    ~types:Stmt_type.all ~bugs

let engine ?(bugs = []) () =
  E.create ~profile:(profile_with_bugs bugs) ~cov:(Coverage.Bitmap.create ())
    ()

let test_run_testcase_counts () =
  let eng = engine () in
  let stats =
    E.run_testcase eng
      (parse
         "CREATE TABLE t (a INT);\n\
          INSERT INTO t VALUES (1);\n\
          SELECT * FROM missing;\n\
          SELECT * FROM t;")
  in
  Alcotest.(check int) "executed" 4 stats.E.rs_executed;
  Alcotest.(check int) "one error" 1 stats.E.rs_errors;
  Alcotest.(check bool) "no crash" true (stats.E.rs_crash = None);
  Alcotest.(check bool) "cost accumulated" true (stats.E.rs_cost > 0)

let test_window_updates_on_errors () =
  (* a statement that fails with a SQL error still advances the type
     window: the server parsed and partially executed it *)
  let eng = engine () in
  ignore (E.run_testcase eng (parse "INSERT INTO missing VALUES (1); COMMIT;"));
  Alcotest.(check (list string)) "window includes failed stmt"
    [ "INSERT"; "COMMIT" ]
    (List.map Stmt_type.name (E.window eng))

let test_crash_stops_testcase () =
  let bug =
    { F.bug_id = "T1"; identifier = "TEST-1"; component = "DML";
      kind = F.Segv; cond = F.Subseq [ Stmt_type.Insert ] }
  in
  let eng = engine ~bugs:[ bug ] () in
  let stats =
    E.run_testcase eng
      (parse
         "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT 1; \
          SELECT 2;")
  in
  (match stats.E.rs_crash with
   | Some c -> Alcotest.(check string) "bug id" "T1" c.F.c_bug.F.bug_id
   | None -> Alcotest.fail "expected crash");
  Alcotest.(check int) "stopped at the crash" 2 stats.E.rs_executed

let test_crash_even_when_stmt_errors () =
  (* the type window drives triggers even for semantically-failing
     statements, like memory corruption detected regardless of the SQL
     error *)
  let bug =
    { F.bug_id = "T2"; identifier = "TEST-2"; component = "DML";
      kind = F.Uaf; cond = F.Subseq [ Stmt_type.Vacuum; Stmt_type.Insert ] }
  in
  let eng = engine ~bugs:[ bug ] () in
  let stats =
    E.run_testcase eng (parse "VACUUM; INSERT INTO missing VALUES (1);")
  in
  Alcotest.(check bool) "crashed despite SQL error" true
    (stats.E.rs_crash <> None)

let test_window_capped () =
  let eng = engine () in
  let many =
    parse (String.concat ";" (List.init 20 (fun _ -> "SELECT 1")))
  in
  ignore (E.run_testcase eng many);
  Alcotest.(check bool) "window capped at 8" true
    (List.length (E.window eng) <= 8)

let test_query_rows_helper () =
  let eng = engine () in
  ignore (E.run_testcase eng (parse "CREATE TABLE t (a INT);"));
  (match
     E.query_rows eng
       (Ast.Q_values [ [ Ast.Lit (Ast.L_int 1) ]; [ Ast.Lit (Ast.L_int 2) ] ])
   with
   | Ok rows -> Alcotest.(check int) "two rows" 2 (List.length rows)
   | Error e -> Alcotest.fail (Minidb.Errors.message e));
  match
    E.query_rows eng
      (Ast.Q_select
         { distinct = false; projs = [ Ast.Star ];
           from = Some (Ast.From_table { name = "nope"; alias = None });
           where = None; group_by = []; having = None; order_by = [];
           limit = None; offset = None })
  with
  | Error (Minidb.Errors.No_such_table _) -> ()
  | _ -> Alcotest.fail "expected no-such-table"

let test_coverage_deterministic () =
  let run () =
    let cov = Coverage.Bitmap.create () in
    let eng = E.create ~profile:(profile_with_bugs []) ~cov () in
    ignore
      (E.run_testcase eng
         (parse
            "CREATE TABLE t (a INT, b TEXT);\n\
             INSERT INTO t VALUES (1, 'x'), (2, 'y');\n\
             SELECT COUNT(*), MAX(a) FROM t;\n\
             UPDATE t SET b = 'z' WHERE a = 1;"));
    Coverage.Bitmap.hash cov
  in
  Alcotest.(check int64) "identical coverage" (run ()) (run ())

let test_year_and_zerofill_dialect_surface () =
  let eng = engine () in
  let stats =
    E.run_testcase eng
      (parse
         "CREATE TABLE v0 (v1 YEAR ZEROFILL);\n\
          INSERT IGNORE INTO v0 VALUES (NULL), (22471185.000000), ('x' \
          LIKE NULL);\n\
          SELECT * FROM v0;")
  in
  (* the paper's Fig. 3 synthesized values: out-of-range years are
     skipped under IGNORE, NULL and NULL-typed values survive *)
  Alcotest.(check int) "no statement-level errors" 0 stats.E.rs_errors

let test_notify_queue_payload () =
  let eng = engine () in
  ignore
    (E.run_testcase eng (parse "LISTEN a; NOTIFY a, 'p1'; NOTIFY b;"));
  let cat = E.catalog eng in
  Alcotest.(check int) "both notifications queued" 2
    (List.length cat.Minidb.Catalog.notify_queue);
  Alcotest.(check bool) "payload preserved" true
    (List.mem ("a", Some "p1") cat.Minidb.Catalog.notify_queue)

let test_fault_window_spans_statements () =
  (* a 3-type contiguous pattern split by an unrelated statement must NOT
     fire *)
  let bug =
    { F.bug_id = "T3"; identifier = "TEST-3"; component = "Storage";
      kind = F.Bof;
      cond = F.Subseq [ Stmt_type.Vacuum; Stmt_type.Checkpoint ] }
  in
  let eng = engine ~bugs:[ bug ] () in
  let stats = E.run_testcase eng (parse "VACUUM; SELECT 1; CHECKPOINT;") in
  Alcotest.(check bool) "interrupted pattern does not fire" true
    (stats.E.rs_crash = None);
  let eng2 = engine ~bugs:[ bug ] () in
  let stats2 = E.run_testcase eng2 (parse "VACUUM; CHECKPOINT;") in
  Alcotest.(check bool) "contiguous pattern fires" true
    (stats2.E.rs_crash <> None)

let suite =
  [ ("run_testcase counts", `Quick, test_run_testcase_counts);
    ("window updates on errors", `Quick, test_window_updates_on_errors);
    ("crash stops testcase", `Quick, test_crash_stops_testcase);
    ("crash even when stmt errors", `Quick, test_crash_even_when_stmt_errors);
    ("window capped", `Quick, test_window_capped);
    ("query_rows helper", `Quick, test_query_rows_helper);
    ("coverage deterministic", `Quick, test_coverage_deterministic);
    ("year/zerofill surface", `Quick, test_year_and_zerofill_dialect_surface);
    ("notify queue payload", `Quick, test_notify_queue_payload);
    ("fault window contiguity", `Quick, test_fault_window_spans_statements) ]
