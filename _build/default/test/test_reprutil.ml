(* Unit and property tests for the utility substrate (Rng, Vec). *)

module Rng = Reprutil.Rng
module Vec = Reprutil.Vec

let test_rng_deterministic () =
  let a = Rng.create 42 in
  let b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_distinct_seeds () =
  let a = Rng.create 1 in
  let b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Rng.int64 a = Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
        ignore (Rng.int rng 0))

let test_rng_choose () =
  let rng = Rng.create 3 in
  let xs = [ 1; 2; 3 ] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (List.mem (Rng.choose rng xs) xs)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty list")
    (fun () -> ignore (Rng.choose rng []))

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "split streams differ" false
    (Rng.int64 a = Rng.int64 b)

let test_rng_ratio () =
  let rng = Rng.create 11 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Rng.ratio rng 1 4 then incr hits
  done;
  Alcotest.(check bool) "roughly a quarter" true
    (!hits > 2100 && !hits < 2900)

let test_rng_sample () =
  let rng = Rng.create 13 in
  let sampled = Rng.sample rng 3 [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "three drawn" 3 (List.length sampled);
  Alcotest.(check int) "distinct" 3
    (List.length (List.sort_uniq compare sampled));
  Alcotest.(check (list int)) "k larger than list" [ 1 ]
    (Rng.sample rng 5 [ 1 ])

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  Vec.push v 10;
  Vec.push v 20;
  Vec.push v 30;
  Alcotest.(check int) "length" 3 (Vec.length v);
  Alcotest.(check int) "get" 20 (Vec.get v 1);
  Vec.set v 1 99;
  Alcotest.(check int) "set" 99 (Vec.get v 1);
  Alcotest.(check (option int)) "last" (Some 30) (Vec.last v);
  Alcotest.(check (option int)) "pop" (Some 30) (Vec.pop v);
  Alcotest.(check int) "after pop" 2 (Vec.length v);
  Alcotest.(check (list int)) "to_list" [ 10; 99 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "oob get"
    (Invalid_argument "Vec.get: index 1 out of bounds (len 1)") (fun () ->
        ignore (Vec.get v 1))

let test_vec_grow () =
  let v = Vec.create () in
  for i = 0 to 999 do
    Vec.push v i
  done;
  Alcotest.(check int) "grew" 1000 (Vec.length v);
  Alcotest.(check int) "content" 500 (Vec.get v 500);
  Alcotest.(check int) "fold" 499500 (Vec.fold ( + ) 0 v)

let test_vec_copy_independent () =
  let v = Vec.of_list [ 1; 2 ] in
  let w = Vec.copy v in
  Vec.set w 0 9;
  Alcotest.(check int) "original untouched" 1 (Vec.get v 0)

(* Model-based property: Vec behaves like a list under pushes and pops. *)
let prop_vec_model =
  QCheck.Test.make ~name:"vec matches list model" ~count:200
    QCheck.(list (int_range 0 2))
    (fun ops ->
       let v = Vec.create () in
       let model = ref [] in
       List.iteri
         (fun i op ->
            match op with
            | 0 | 1 ->
              Vec.push v i;
              model := !model @ [ i ]
            | _ ->
              let popped = Vec.pop v in
              let expected =
                match List.rev !model with
                | [] -> None
                | last :: rest ->
                  model := List.rev rest;
                  Some last
              in
              assert (popped = expected))
         ops;
       Vec.to_list v = !model)

let suite =
  [ ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng distinct seeds", `Quick, test_rng_distinct_seeds);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int invalid", `Quick, test_rng_int_invalid);
    ("rng choose", `Quick, test_rng_choose);
    ("rng split", `Quick, test_rng_split_independent);
    ("rng ratio", `Quick, test_rng_ratio);
    ("rng sample", `Quick, test_rng_sample);
    ("vec basic", `Quick, test_vec_basic);
    ("vec bounds", `Quick, test_vec_bounds);
    ("vec grow", `Quick, test_vec_grow);
    ("vec copy", `Quick, test_vec_copy_independent);
    QCheck_alcotest.to_alcotest prop_vec_model ]
