(* Tests for the fault-injection trigger DSL and crash machinery. *)

open Sqlcore
module F = Minidb.Fault

let sel_stmt = Sqlparser.Parser.parse_stmt_exn "SELECT 1"

let ctx ?(window = []) ?(stmt = sel_stmt) ?(state = fun _ -> false) () =
  { F.window; stmt; state }

let test_subseq_matching () =
  let w = [ Stmt_type.Create_table; Stmt_type.Insert; Stmt_type.Select ] in
  let m cond = F.matches cond (ctx ~window:w ()) in
  Alcotest.(check bool) "whole window" true
    (m (F.Subseq [ Stmt_type.Create_table; Stmt_type.Insert; Stmt_type.Select ]));
  Alcotest.(check bool) "middle pair" true
    (m (F.Subseq [ Stmt_type.Insert; Stmt_type.Select ]));
  Alcotest.(check bool) "non-contiguous rejected" false
    (m (F.Subseq [ Stmt_type.Create_table; Stmt_type.Select ]));
  Alcotest.(check bool) "wrong order rejected" false
    (m (F.Subseq [ Stmt_type.Select; Stmt_type.Insert ]));
  Alcotest.(check bool) "empty subseq never fires" false (m (F.Subseq []))

let test_ends_with () =
  let w = [ Stmt_type.Insert; Stmt_type.Select ] in
  let m cond = F.matches cond (ctx ~window:w ()) in
  Alcotest.(check bool) "suffix" true (m (F.Ends_with [ Stmt_type.Select ]));
  Alcotest.(check bool) "full" true
    (m (F.Ends_with [ Stmt_type.Insert; Stmt_type.Select ]));
  Alcotest.(check bool) "not a suffix" false
    (m (F.Ends_with [ Stmt_type.Insert ]))

let test_combinators () =
  let w = [ Stmt_type.Insert ] in
  let state name = name = "flag" in
  let m cond = F.matches cond (ctx ~window:w ~state ()) in
  Alcotest.(check bool) "all true" true
    (m (F.All [ F.Subseq [ Stmt_type.Insert ]; F.State "flag" ]));
  Alcotest.(check bool) "all short-circuits" false
    (m (F.All [ F.Subseq [ Stmt_type.Insert ]; F.State "other" ]));
  Alcotest.(check bool) "any" true
    (m (F.Any [ F.State "other"; F.State "flag" ]));
  Alcotest.(check bool) "not" true (m (F.Not (F.State "other")))

let test_stmt_features () =
  let s =
    Sqlparser.Parser.parse_stmt_exn
      "SELECT DISTINCT a, COUNT(*) FROM t JOIN u ON TRUE WHERE a > 0 GROUP \
       BY a HAVING (COUNT(*) > 1) ORDER BY a ASC LIMIT 3 OFFSET 1"
  in
  let feats = F.features_of_stmt s in
  List.iter
    (fun f ->
       Alcotest.(check bool) "feature present" true (List.mem f feats))
    [ F.F_group_by; F.F_order_by; F.F_join; F.F_distinct; F.F_having;
      F.F_where; F.F_aggregate; F.F_offset; F.F_limit ];
  Alcotest.(check bool) "no window fn" false (List.mem F.F_window feats);
  let w =
    Sqlparser.Parser.parse_stmt_exn
      "SELECT RANK() OVER (ORDER BY a ASC) FROM t"
  in
  Alcotest.(check bool) "window detected" true
    (List.mem F.F_window (F.features_of_stmt w))

let test_check_raises_first_match () =
  let bug1 =
    { F.bug_id = "B1"; identifier = "CVE-TEST-1"; component = "Optimizer";
      kind = F.Segv; cond = F.Subseq [ Stmt_type.Insert ] }
  in
  let bug2 =
    { bug1 with F.bug_id = "B2"; cond = F.Subseq [ Stmt_type.Insert ] }
  in
  (try
     F.check [ bug1; bug2 ] (ctx ~window:[ Stmt_type.Insert ] ());
     Alcotest.fail "expected crash"
   with F.Crashed c ->
     Alcotest.(check string) "first bug wins" "B1" c.F.c_bug.F.bug_id);
  (* no match: no crash *)
  F.check [ bug1 ] (ctx ~window:[ Stmt_type.Select ] ())

let test_stacks_distinct_and_stable () =
  let mk id =
    { F.bug_id = id; identifier = id; component = "DML"; kind = F.Uaf;
      cond = F.Subseq [ Stmt_type.Insert ] }
  in
  let s1 = F.stack_of_bug (mk "X1") in
  let s1' = F.stack_of_bug (mk "X1") in
  let s2 = F.stack_of_bug (mk "X2") in
  Alcotest.(check bool) "stable" true (s1 = s1');
  Alcotest.(check bool) "distinct bugs distinct stacks" true (s1 <> s2);
  Alcotest.(check bool) "stack has frames" true (List.length s1 >= 4)

let test_kind_names () =
  List.iter
    (fun k ->
       match F.kind_of_name (F.kind_name k) with
       | Some k' -> Alcotest.(check bool) "roundtrip" true (k = k')
       | None -> Alcotest.fail "kind name roundtrip")
    [ F.Uaf; F.Bof; F.Sbof; F.Hbof; F.Af; F.Segv; F.Uap; F.Npd; F.Ub ]

let suite =
  [ ("subseq matching", `Quick, test_subseq_matching);
    ("ends_with", `Quick, test_ends_with);
    ("combinators", `Quick, test_combinators);
    ("stmt features", `Quick, test_stmt_features);
    ("check first match", `Quick, test_check_raises_first_match);
    ("stacks distinct and stable", `Quick, test_stacks_distinct_and_stable);
    ("kind names", `Quick, test_kind_names) ]
