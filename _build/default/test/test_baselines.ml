(* Tests pinning each baseline to the mechanism class the paper assigns
   it. *)

open Sqlcore

let type_seq tc = Ast.type_sequence tc

let test_squirrel_never_changes_sequences () =
  (* The paper's core observation (Fig. 1): SQUIRREL's mutation keeps the
     SQL Type Sequence of the seed. After a whole campaign, every kept
     seed's type sequence must be one of the initial corpus's type
     sequences. *)
  let profile = Dialects.Registry.mariadb_sim in
  let initial_seqs =
    List.map type_seq (Fuzz.Corpus.initial profile)
  in
  let t = Baselines.Squirrel_sim.create profile in
  let fz = Baselines.Squirrel_sim.fuzzer t in
  let _ = Fuzz.Driver.run_until_execs fz ~execs:3000 in
  List.iter
    (fun tc ->
       Alcotest.(check bool) "sequence from the initial corpus" true
         (List.mem (type_seq tc) initial_seqs))
    (fz.Fuzz.Driver.f_corpus ())

let test_sqlancer_fixed_pattern_order () =
  (* rule-based generation: tables are created before rows are inserted,
     and inserts precede the SELECT oracle queries *)
  let profile = Dialects.Registry.pg_sim in
  let t = Baselines.Sqlancer_sim.create profile in
  let fz = Baselines.Sqlancer_sim.fuzzer t in
  let _ = Fuzz.Driver.run_until_execs fz ~execs:100 in
  List.iter
    (fun tc ->
       let seq = type_seq tc in
       let idx ty =
         let rec find i = function
           | [] -> None
           | t :: _ when Stmt_type.equal t ty -> Some i
           | _ :: rest -> find (i + 1) rest
         in
         find 0 seq
       in
       (match (idx Stmt_type.Create_table, idx Stmt_type.Insert) with
        | Some c, Some i ->
          Alcotest.(check bool) "create before insert" true (c < i)
        | _ -> ());
       match (idx Stmt_type.Insert, idx Stmt_type.Select) with
       | Some i, Some s ->
         Alcotest.(check bool) "insert before first select" true (i < s)
       | _ -> ())
    (fz.Fuzz.Driver.f_corpus ())

let test_sqlancer_no_exotic_types () =
  let profile = Dialects.Registry.pg_sim in
  let t = Baselines.Sqlancer_sim.create profile in
  let fz = Baselines.Sqlancer_sim.fuzzer t in
  let _ = Fuzz.Driver.run_until_execs fz ~execs:200 in
  let allowed =
    [ Stmt_type.Create_table; Stmt_type.Create_index; Stmt_type.Insert;
      Stmt_type.Update; Stmt_type.Delete; Stmt_type.Select;
      Stmt_type.Set_var; Stmt_type.Begin_txn; Stmt_type.Commit_txn;
      Stmt_type.Analyze; Stmt_type.Truncate; Stmt_type.Drop_table ]
  in
  List.iter
    (fun tc ->
       List.iter
         (fun ty ->
            Alcotest.(check bool)
              ("rule vocabulary only: " ^ Stmt_type.name ty)
              true (List.mem ty allowed))
         (type_seq tc))
    (fz.Fuzz.Driver.f_corpus ())

let test_sqlsmith_readonly () =
  (* SQLsmith leaves the database unchanged: beyond the fixed preamble,
     its statements are queries *)
  let profile = Dialects.Registry.pg_sim in
  let t = Baselines.Sqlsmith_sim.create profile in
  let fz = Baselines.Sqlsmith_sim.fuzzer t in
  let _ = Fuzz.Driver.run_until_execs fz ~execs:100 in
  List.iter
    (fun tc ->
       match List.rev (type_seq tc) with
       | last :: _ ->
         Alcotest.(check string) "query category" "DQL"
           (Stmt_type.category_name (Stmt_type.category last))
       | [] -> Alcotest.fail "empty test case")
    (fz.Fuzz.Driver.f_corpus ())

let test_baselines_deterministic () =
  let run mk =
    let fz = mk () in
    let snap = Fuzz.Driver.run_until_execs fz ~execs:1000 in
    snap.Fuzz.Driver.st_branches
  in
  let profile = Dialects.Registry.mysql_sim in
  List.iter
    (fun mk ->
       Alcotest.(check int) "same branches twice" (run mk) (run mk))
    [ (fun () -> Baselines.Squirrel_sim.fuzzer (Baselines.Squirrel_sim.create profile));
      (fun () -> Baselines.Sqlancer_sim.fuzzer (Baselines.Sqlancer_sim.create profile));
      (fun () -> Baselines.Sqlsmith_sim.fuzzer (Baselines.Sqlsmith_sim.create profile)) ]

let test_seeds_differentiate_campaigns () =
  let profile = Dialects.Registry.mysql_sim in
  let run seed =
    let fz =
      Baselines.Sqlancer_sim.fuzzer (Baselines.Sqlancer_sim.create ~seed profile)
    in
    (Fuzz.Driver.run_until_execs fz ~execs:500).Fuzz.Driver.st_branches
  in
  Alcotest.(check bool) "different seeds usually differ" true
    (run 1 <> run 2 || run 1 <> run 3)

let suite =
  [ ("squirrel never changes sequences", `Slow,
     test_squirrel_never_changes_sequences);
    ("sqlancer fixed pattern order", `Quick,
     test_sqlancer_fixed_pattern_order);
    ("sqlancer rule vocabulary", `Quick, test_sqlancer_no_exotic_types);
    ("sqlsmith read-only tail", `Quick, test_sqlsmith_readonly);
    ("baselines deterministic", `Slow, test_baselines_deterministic);
    ("seeds differentiate campaigns", `Quick,
     test_seeds_differentiate_campaigns) ]
