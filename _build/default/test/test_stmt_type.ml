(* Tests for the statement-type universe. *)

open Sqlcore

let test_count_consistent () =
  Alcotest.(check int) "all length" Stmt_type.count
    (List.length Stmt_type.all)

let test_universe_size () =
  (* The AST covers 94 statement types; dialects subset this. *)
  Alcotest.(check int) "universe" 94 Stmt_type.count

let test_index_roundtrip () =
  List.iter
    (fun ty ->
       Alcotest.(check bool) "roundtrip" true
         (Stmt_type.equal ty (Stmt_type.of_index (Stmt_type.to_index ty))))
    Stmt_type.all

let test_indices_dense () =
  let seen = Array.make Stmt_type.count false in
  List.iter (fun ty -> seen.(Stmt_type.to_index ty) <- true) Stmt_type.all;
  Alcotest.(check bool) "dense" true (Array.for_all (fun b -> b) seen)

let test_names_unique () =
  let names = List.map Stmt_type.name Stmt_type.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_of_name () =
  List.iter
    (fun ty ->
       match Stmt_type.of_name (Stmt_type.name ty) with
       | Some ty' ->
         Alcotest.(check bool) "of_name inverse" true (Stmt_type.equal ty ty')
       | None -> Alcotest.fail ("of_name failed for " ^ Stmt_type.name ty))
    Stmt_type.all;
  Alcotest.(check bool) "unknown name" true
    (Stmt_type.of_name "NOT A STATEMENT" = None)

let test_categories () =
  Alcotest.(check string) "create table is DDL" "DDL"
    (Stmt_type.category_name (Stmt_type.category Stmt_type.Create_table));
  Alcotest.(check string) "insert is DML" "DML"
    (Stmt_type.category_name (Stmt_type.category Stmt_type.Insert));
  Alcotest.(check string) "select is DQL" "DQL"
    (Stmt_type.category_name (Stmt_type.category Stmt_type.Select));
  Alcotest.(check string) "grant is DCL" "DCL"
    (Stmt_type.category_name (Stmt_type.category Stmt_type.Grant));
  Alcotest.(check string) "commit is TCL" "TCL"
    (Stmt_type.category_name (Stmt_type.category Stmt_type.Commit_txn));
  Alcotest.(check string) "vacuum is UTIL" "UTIL"
    (Stmt_type.category_name (Stmt_type.category Stmt_type.Vacuum))

let test_out_of_range_index () =
  Alcotest.check_raises "negative" (Invalid_argument "Stmt_type.of_index")
    (fun () -> ignore (Stmt_type.of_index (-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Stmt_type.of_index")
    (fun () -> ignore (Stmt_type.of_index Stmt_type.count))

let test_compare_total_order () =
  let sorted = List.sort Stmt_type.compare Stmt_type.all in
  Alcotest.(check int) "sort keeps all" Stmt_type.count (List.length sorted);
  Alcotest.(check bool) "sorted by index" true
    (List.for_all2
       (fun a b -> Stmt_type.to_index a <= Stmt_type.to_index b)
       sorted (List.tl sorted @ [ List.nth sorted (Stmt_type.count - 1) ]))

let suite =
  [ ("count consistent", `Quick, test_count_consistent);
    ("universe size", `Quick, test_universe_size);
    ("index roundtrip", `Quick, test_index_roundtrip);
    ("indices dense", `Quick, test_indices_dense);
    ("names unique", `Quick, test_names_unique);
    ("of_name", `Quick, test_of_name);
    ("categories", `Quick, test_categories);
    ("out of range index", `Quick, test_out_of_range_index);
    ("compare total order", `Quick, test_compare_total_order) ]
