(* Unit tests for scalar expression evaluation. *)

open Storage
module EE = Minidb.Expr_eval

let parse_expr s =
  match Sqlparser.Parser.parse_expr s with
  | Ok e -> e
  | Error msg -> Alcotest.fail msg

let env ?(cols = fun _ _ -> None) () : EE.env =
  { cols;
    run_query = (fun _ -> []);
    agg = EE.no_agg;
    win = EE.no_win;
    probe = (fun ~site:_ ~key:_ -> ()) }

let eval ?cols s = EE.eval (env ?cols ()) (parse_expr s)

let v = Alcotest.testable (fun fmt x ->
    Format.pp_print_string fmt
      (Value.type_name x ^ ":" ^ Value.to_display x)) Value.equal

let check name expected got = Alcotest.(check v) name expected got

let test_arithmetic () =
  check "int add" (Value.Int 3) (eval "1 + 2");
  check "int/float promote" (Value.Float 3.5) (eval "1 + 2.5");
  check "mul precedence" (Value.Int 7) (eval "1 + 2 * 3");
  check "int division truncates" (Value.Int 2) (eval "5 / 2");
  check "division by zero is NULL" Value.Null (eval "5 / 0");
  check "mod" (Value.Int 1) (eval "7 % 3");
  check "mod zero is NULL" Value.Null (eval "7 % 0");
  check "neg" (Value.Int (-4)) (eval "-(2 + 2)")

let test_null_propagation () =
  check "add null" Value.Null (eval "1 + NULL");
  check "concat null" Value.Null (eval "'a' || NULL");
  check "cmp null" Value.Null (eval "1 = NULL");
  check "not null" Value.Null (eval "NOT NULL");
  check "null is null" (Value.Bool true) (eval "NULL IS NULL");
  check "null is not null" (Value.Bool false) (eval "NULL IS NOT NULL")

let test_three_valued_logic () =
  check "true or null" (Value.Bool true) (eval "TRUE OR NULL");
  check "null or true" (Value.Bool true) (eval "NULL OR TRUE");
  check "false or null" Value.Null (eval "FALSE OR NULL");
  check "false and null" (Value.Bool false) (eval "FALSE AND NULL");
  check "true and null" Value.Null (eval "TRUE AND NULL");
  check "short circuit avoids rhs error" (Value.Bool false)
    (eval "FALSE AND (missing_col = 1)")

let test_comparisons () =
  check "lt" (Value.Bool true) (eval "1 < 2");
  check "cross-type" (Value.Bool true) (eval "2 = 2.0");
  check "text" (Value.Bool true) (eval "'abc' < 'abd'");
  check "neq" (Value.Bool true) (eval "1 <> 2")

let test_predicates () =
  check "between" (Value.Bool true) (eval "5 BETWEEN 1 AND 10");
  check "not between" (Value.Bool false) (eval "5 NOT BETWEEN 1 AND 10");
  check "in list" (Value.Bool true) (eval "2 IN (1, 2, 3)");
  check "not in" (Value.Bool false) (eval "2 NOT IN (1, 2, 3)");
  check "in with null subject" Value.Null (eval "NULL IN (1, 2)");
  check "like percent" (Value.Bool true) (eval "'hello' LIKE 'he%'");
  check "like underscore" (Value.Bool true) (eval "'hat' LIKE 'h_t'");
  check "not like" (Value.Bool true) (eval "'x' NOT LIKE 'y%'")

let test_case_expr () =
  check "first match" (Value.Text "one")
    (eval "CASE WHEN 1 = 1 THEN 'one' WHEN TRUE THEN 'two' END");
  check "else branch" (Value.Text "other")
    (eval "CASE WHEN FALSE THEN 'x' ELSE 'other' END");
  check "no match no else" Value.Null (eval "CASE WHEN FALSE THEN 1 END")

let test_cast () =
  check "text to int" (Value.Int 42) (eval "CAST('42' AS INT)");
  check "int to text" (Value.Text "7") (eval "CAST(7 AS TEXT)");
  check "float to int" (Value.Int 3) (eval "CAST(3.9 AS INT)");
  check "to bool" (Value.Bool true) (eval "CAST(5 AS BOOL)")

let test_functions () =
  check "abs" (Value.Int 5) (eval "ABS(-5)");
  check "upper" (Value.Text "HI") (eval "UPPER('hi')");
  check "length" (Value.Int 3) (eval "LENGTH('abc')");
  check "coalesce" (Value.Int 2) (eval "COALESCE(NULL, 2, 3)");
  check "coalesce all null" Value.Null (eval "COALESCE(NULL, NULL)");
  check "nullif equal" Value.Null (eval "NULLIF(3, 3)");
  check "nullif different" (Value.Int 3) (eval "NULLIF(3, 4)");
  check "ifnull" (Value.Int 9) (eval "IFNULL(NULL, 9)");
  check "greatest" (Value.Int 8) (eval "GREATEST(3, 8, 1)");
  check "least" (Value.Int 1) (eval "LEAST(3, 8, 1)");
  check "substr" (Value.Text "ell") (eval "SUBSTR('hello', 2, 3)");
  check "reverse" (Value.Text "cba") (eval "REVERSE('abc')");
  check "sqrt of negative" Value.Null (eval "SQRT(-1)");
  check "concat fn" (Value.Text "ab1") (eval "CONCAT('a', 'b', 1)");
  check "typeof" (Value.Text "INT") (eval "TYPEOF(3)")

let test_unknown_function () =
  match eval "FROBNICATE(1)" with
  | exception Minidb.Errors.Sql_error (Minidb.Errors.Semantic _) -> ()
  | _ -> Alcotest.fail "expected semantic error"

let test_unknown_column () =
  match eval "nosuchcol + 1" with
  | exception Minidb.Errors.Sql_error (Minidb.Errors.No_such_column _) -> ()
  | _ -> Alcotest.fail "expected no-such-column"

let test_column_resolution () =
  let cols q name =
    match (q, name) with
    | None, "a" -> Some (Value.Int 10)
    | Some "t", "b" -> Some (Value.Int 20)
    | _ -> None
  in
  check "unqualified" (Value.Int 11) (eval ~cols "a + 1");
  check "qualified" (Value.Int 30) (eval ~cols "t.b + a")

let test_agg_outside_group () =
  match eval "COUNT(*)" with
  | exception Minidb.Errors.Sql_error (Minidb.Errors.Semantic _) -> ()
  | _ -> Alcotest.fail "aggregate should fail outside GROUP context"

let test_like_match_direct () =
  Alcotest.(check bool) "anchored" true
    (EE.like_match ~pattern:"abc" "abc");
  Alcotest.(check bool) "not substring" false
    (EE.like_match ~pattern:"b" "abc");
  Alcotest.(check bool) "leading %" true (EE.like_match ~pattern:"%c" "abc");
  Alcotest.(check bool) "both %" true (EE.like_match ~pattern:"%b%" "abc");
  Alcotest.(check bool) "empty pattern empty text" true
    (EE.like_match ~pattern:"" "");
  Alcotest.(check bool) "percent matches empty" true
    (EE.like_match ~pattern:"%" "")

let test_text_arithmetic_mysql_style () =
  check "numeric text" (Value.Float 3.0) (eval "'1' + '2'");
  check "prefix parse" (Value.Float 13.0) (eval "'12abc' + 1")

let suite =
  [ ("arithmetic", `Quick, test_arithmetic);
    ("null propagation", `Quick, test_null_propagation);
    ("three-valued logic", `Quick, test_three_valued_logic);
    ("comparisons", `Quick, test_comparisons);
    ("predicates", `Quick, test_predicates);
    ("case expr", `Quick, test_case_expr);
    ("cast", `Quick, test_cast);
    ("functions", `Quick, test_functions);
    ("unknown function", `Quick, test_unknown_function);
    ("unknown column", `Quick, test_unknown_column);
    ("column resolution", `Quick, test_column_resolution);
    ("aggregate outside group", `Quick, test_agg_outside_group);
    ("like_match direct", `Quick, test_like_match_direct);
    ("text arithmetic", `Quick, test_text_arithmetic_mysql_style) ]
