test/test_reducer.ml: Alcotest Ast Fuzz List Minidb Printf Sql_printer Sqlcore Sqlparser Stmt_type String
