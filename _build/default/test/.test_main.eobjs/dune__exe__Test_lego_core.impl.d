test/test_lego_core.ml: Alcotest Ast Ast_util Gen Lego List QCheck QCheck_alcotest Reprutil Sqlcore Sqlparser Stmt_type
