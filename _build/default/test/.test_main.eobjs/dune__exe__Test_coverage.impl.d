test/test_coverage.ml: Alcotest Coverage List QCheck QCheck_alcotest
