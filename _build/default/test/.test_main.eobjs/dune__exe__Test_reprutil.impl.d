test/test_reprutil.ml: Alcotest List QCheck QCheck_alcotest Reprutil
