test/test_executor.ml: Alcotest Array Coverage Dialects List Minidb Sqlcore Sqlparser Stmt_type Storage String
