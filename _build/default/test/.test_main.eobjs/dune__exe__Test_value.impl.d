test/test_value.ml: Alcotest Format List QCheck QCheck_alcotest Sqlcore Storage Value
