test/test_stmt_type.ml: Alcotest Array List Sqlcore Stmt_type String
