test/test_parser.ml: Alcotest Array Ast Ast_util Lego List QCheck QCheck_alcotest Reprutil Sql_printer Sqlcore Sqlparser Stmt_type
