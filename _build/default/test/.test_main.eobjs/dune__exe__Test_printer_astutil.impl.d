test/test_printer_astutil.ml: Alcotest Ast Ast_util Lego List QCheck QCheck_alcotest Reprutil Sql_printer Sqlcore Sqlparser Stmt_type
