test/test_synthesis.ml: Alcotest Lego List QCheck QCheck_alcotest Sqlcore Stmt_type String
