test/test_dialects.ml: Alcotest Dialects List Minidb Sqlcore Stmt_type String
