test/test_baselines.ml: Alcotest Ast Baselines Dialects Fuzz List Sqlcore Stmt_type
