test/test_storage.ml: Alcotest Array Hashtbl Index List Option QCheck QCheck_alcotest Sqlcore Storage Table Value
