test/test_fault.ml: Alcotest List Minidb Sqlcore Sqlparser Stmt_type
