test/test_engine.ml: Alcotest Ast Coverage List Minidb Sqlcore Sqlparser Stmt_type String
