test/test_expr_eval.ml: Alcotest Format Minidb Sqlparser Storage Value
