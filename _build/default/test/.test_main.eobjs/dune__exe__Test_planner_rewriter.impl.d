test/test_planner_rewriter.ml: Alcotest Ast Coverage List Minidb Sqlcore Sqlparser Stmt_type String
