test/test_integration.ml: Alcotest Ast Baselines Dialects Fuzz Lego List Minidb Reprutil Sqlcore Sqlparser Stmt_type
