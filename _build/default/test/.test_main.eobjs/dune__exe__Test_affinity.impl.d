test/test_affinity.ml: Alcotest Lego List QCheck QCheck_alcotest Sqlcore Sqlparser Stmt_type
