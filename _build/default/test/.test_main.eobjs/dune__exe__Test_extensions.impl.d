test/test_extensions.ml: Alcotest Ast Baselines Coverage Dialects Fuzz Lego List Minidb Printexc Printf Reprutil Sql_printer Sqlcore Sqlparser Stmt_type
