(* Semantics tests for the MiniDB engine: every statement family, plus the
   paper's Figure 2 order-sensitivity example. Uses a bug-free profile so
   injected faults cannot interfere. *)

open Sqlcore
module E = Minidb.Engine

let clean_profile =
  Minidb.Profile.make ~name:"clean" ~flavor:Minidb.Profile.Pg
    ~types:Stmt_type.all ~bugs:[]

let fresh () =
  E.create ~profile:clean_profile ~cov:(Coverage.Bitmap.create ()) ()

let run_sql eng sql =
  let tc = Sqlparser.Parser.parse_testcase_exn sql in
  List.map (fun s -> E.exec_stmt eng s) tc

let last_result eng sql =
  match List.rev (run_sql eng sql) with
  | E.Ok_result r :: _ -> r
  | E.Sql_failed e :: _ ->
    Alcotest.fail ("sql failed: " ^ Minidb.Errors.message e)
  | [] -> Alcotest.fail "no statements"

let last_error eng sql =
  match List.rev (run_sql eng sql) with
  | E.Sql_failed e :: _ -> e
  | E.Ok_result _ :: _ -> Alcotest.fail "expected an error"
  | [] -> Alcotest.fail "no statements"

let rows_of = function
  | Minidb.Executor.Rows (_, rows) -> rows
  | _ -> Alcotest.fail "expected rows"

let affected = function
  | Minidb.Executor.Affected n -> n
  | _ -> Alcotest.fail "expected affected-count"

let int_cell rows i j =
  match List.nth_opt rows i with
  | Some row when j < Array.length row -> (
      match row.(j) with
      | Storage.Value.Int n -> n
      | v -> Alcotest.fail ("not an int: " ^ Storage.Value.to_display v))
  | _ -> Alcotest.fail "row out of range"

(* ---------------- DDL ---------------- *)

let test_create_insert_select () =
  let eng = fresh () in
  let r =
    last_result eng
      "CREATE TABLE t (a INT, b INT);\n\
       INSERT INTO t VALUES (1, 10), (2, 20);\n\
       SELECT b FROM t ORDER BY a DESC;"
  in
  let rows = rows_of r in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  Alcotest.(check int) "desc order" 20 (int_cell rows 0 0)

let test_duplicate_table () =
  let eng = fresh () in
  (match last_error eng "CREATE TABLE t (a INT); CREATE TABLE t (a INT);" with
   | Minidb.Errors.Duplicate_object _ -> ()
   | e -> Alcotest.fail (Minidb.Errors.message e));
  (* IF NOT EXISTS is a no-op, not an error *)
  match last_result eng "CREATE TABLE IF NOT EXISTS t (a INT);" with
  | Minidb.Executor.Done _ -> ()
  | _ -> Alcotest.fail "expected Done"

let test_fig2_order_sensitivity () =
  (* Paper Fig. 2: same statements, different orders, different results. *)
  let q1 = fresh () in
  let r1 =
    last_result q1
      "CREATE TABLE t1 (a INT, b VARCHAR(100));\n\
       INSERT INTO t1 VALUES (1, 'name1');\n\
       INSERT INTO t1 VALUES (3, 'name1');\n\
       SELECT * FROM t1 ORDER BY a DESC;"
  in
  Alcotest.(check int) "Q1 sees sorted data" 2 (List.length (rows_of r1));
  Alcotest.(check int) "Q1 first is 3" 3 (int_cell (rows_of r1) 0 0);
  let q2 = fresh () in
  let results =
    run_sql q2
      "CREATE TABLE t1 (a INT, b VARCHAR(100));\n\
       SELECT * FROM t1 ORDER BY a DESC;\n\
       INSERT INTO t1 VALUES (1, 'name1');\n\
       INSERT INTO t1 VALUES (3, 'name1');"
  in
  (match List.nth results 1 with
   | E.Ok_result r -> Alcotest.(check int) "Q2 empty" 0 (List.length (rows_of r))
   | E.Sql_failed e -> Alcotest.fail (Minidb.Errors.message e))

let test_alter_table_variants () =
  let eng = fresh () in
  ignore (run_sql eng "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);");
  ignore (run_sql eng "ALTER TABLE t ADD COLUMN b TEXT DEFAULT 'x';");
  let r = last_result eng "SELECT b FROM t;" in
  Alcotest.(check bool) "default backfilled" true
    ((List.hd (rows_of r)).(0) = Storage.Value.Text "x");
  ignore (run_sql eng "ALTER TABLE t RENAME COLUMN b TO c;");
  (match last_error eng "SELECT b FROM t;" with
   | Minidb.Errors.No_such_column _ -> ()
   | e -> Alcotest.fail (Minidb.Errors.message e));
  ignore (run_sql eng "ALTER TABLE t RENAME TO u;");
  let r = last_result eng "SELECT c FROM u;" in
  Alcotest.(check int) "renamed table readable" 1 (List.length (rows_of r));
  (match last_error eng "ALTER TABLE u DROP COLUMN zzz;" with
   | Minidb.Errors.No_such_column _ -> ()
   | e -> Alcotest.fail (Minidb.Errors.message e))

let test_drop_cascades () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT);\n\
        CREATE INDEX i ON t (a);\n\
        CREATE TRIGGER tr AFTER INSERT ON t FOR EACH ROW INSERT INTO t \
        VALUES (1);\n\
        DROP TABLE t;");
  (* the index died with the table: recreating it must fail on the table *)
  match last_error eng "CREATE INDEX i ON t (a);" with
  | Minidb.Errors.No_such_table _ -> ()
  | e -> Alcotest.fail (Minidb.Errors.message e)

let test_views () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT);\n\
        INSERT INTO t VALUES (1), (5), (9);\n\
        CREATE VIEW v AS SELECT a FROM t WHERE a > 2;");
  let r = last_result eng "SELECT * FROM v ORDER BY a ASC;" in
  Alcotest.(check int) "view filters" 2 (List.length (rows_of r));
  (* views are live: new data shows up *)
  ignore (run_sql eng "INSERT INTO t VALUES (7);");
  let r = last_result eng "SELECT * FROM v;" in
  Alcotest.(check int) "view live" 3 (List.length (rows_of r))

let test_materialized_view_staleness () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT);\n\
        INSERT INTO t VALUES (1);\n\
        CREATE MATERIALIZED VIEW mv AS SELECT a FROM t;");
  ignore (run_sql eng "INSERT INTO t VALUES (2);");
  let r = last_result eng "SELECT * FROM mv;" in
  Alcotest.(check int) "stale cache" 1 (List.length (rows_of r));
  ignore (run_sql eng "REFRESH MATERIALIZED VIEW mv;");
  let r = last_result eng "SELECT * FROM mv;" in
  Alcotest.(check int) "refreshed" 2 (List.length (rows_of r))

let test_sequences_ddl () =
  let eng = fresh () in
  ignore (run_sql eng "CREATE SEQUENCE sq START WITH 3 INCREMENT BY 2;");
  (match last_error eng "CREATE SEQUENCE sq START WITH 0 INCREMENT BY 1;" with
   | Minidb.Errors.Duplicate_object _ -> ()
   | e -> Alcotest.fail (Minidb.Errors.message e));
  ignore (run_sql eng "ALTER SEQUENCE sq INCREMENT BY 5; DROP SEQUENCE sq;");
  match last_error eng "ALTER SEQUENCE sq INCREMENT BY 5;" with
  | Minidb.Errors.No_such_object _ -> ()
  | e -> Alcotest.fail (Minidb.Errors.message e)

(* ---------------- DML ---------------- *)

let test_insert_not_null () =
  let eng = fresh () in
  ignore (run_sql eng "CREATE TABLE t (a INT NOT NULL, b INT);");
  (match last_error eng "INSERT INTO t VALUES (NULL, 1);" with
   | Minidb.Errors.Constraint_violation _ -> ()
   | e -> Alcotest.fail (Minidb.Errors.message e));
  (* IGNORE skips the bad row but keeps the good one *)
  let r =
    last_result eng "INSERT IGNORE INTO t VALUES (NULL, 1), (2, 2);"
  in
  Alcotest.(check int) "one inserted" 1 (affected r)

let test_insert_unique_and_replace () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT PRIMARY KEY, b INT);\n\
        INSERT INTO t VALUES (1, 10);");
  (match last_error eng "INSERT INTO t VALUES (1, 20);" with
   | Minidb.Errors.Constraint_violation _ -> ()
   | e -> Alcotest.fail (Minidb.Errors.message e));
  (* REPLACE displaces the conflicting row *)
  ignore (run_sql eng "REPLACE INTO t VALUES (1, 30);");
  let r = last_result eng "SELECT b FROM t;" in
  Alcotest.(check int) "one row" 1 (List.length (rows_of r));
  Alcotest.(check int) "replaced value" 30 (int_cell (rows_of r) 0 0)

let test_insert_defaults_and_columns () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT, b INT DEFAULT 42, c TEXT);\n\
        INSERT INTO t (a) VALUES (1);");
  let r = last_result eng "SELECT b, c FROM t;" in
  Alcotest.(check int) "default applied" 42 (int_cell (rows_of r) 0 0);
  Alcotest.(check bool) "missing col null" true
    ((List.hd (rows_of r)).(1) = Storage.Value.Null)

let test_insert_select () =
  let eng = fresh () in
  let r =
    last_result eng
      "CREATE TABLE a (x INT);\n\
       CREATE TABLE b (x INT);\n\
       INSERT INTO a VALUES (1), (2), (3);\n\
       INSERT INTO b SELECT x FROM a WHERE x > 1;"
  in
  Alcotest.(check int) "two copied" 2 (affected r)

let test_update_where_limit () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT, b INT);\n\
        INSERT INTO t VALUES (1, 0), (2, 0), (3, 0);");
  let r = last_result eng "UPDATE t SET b = 1 WHERE a > 1;" in
  Alcotest.(check int) "two updated" 2 (affected r);
  let r = last_result eng "UPDATE t SET b = 9 LIMIT 1;" in
  Alcotest.(check int) "limit respected" 1 (affected r)

let test_delete () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2), (3);");
  let r = last_result eng "DELETE FROM t WHERE a = 2;" in
  Alcotest.(check int) "one gone" 1 (affected r);
  let r = last_result eng "DELETE FROM t;" in
  Alcotest.(check int) "rest gone" 2 (affected r)

let test_copy_and_load () =
  let eng = fresh () in
  ignore (run_sql eng "CREATE TABLE t (a INT, b TEXT);");
  let r = last_result eng "COPY t FROM STDIN (1, 'x'), (2, 'y');" in
  Alcotest.(check int) "copied in" 2 (affected r);
  let r = last_result eng "COPY t TO STDOUT;" in
  Alcotest.(check int) "copied out" 2 (List.length (rows_of r));
  (* LOAD DATA is lenient: bad rows are skipped *)
  let r = last_result eng "LOAD DATA INTO t VALUES (3, 'z'), (4, 'w', 99);" in
  Alcotest.(check int) "lenient load" 1 (affected r)

(* ---------------- queries ---------------- *)

let test_aggregates () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (g INT, v INT);\n\
        INSERT INTO t VALUES (1, 10), (1, 20), (2, 30), (2, NULL);");
  let r =
    last_result eng
      "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY g ORDER \
       BY g ASC;"
  in
  let rows = rows_of r in
  Alcotest.(check int) "two groups" 2 (List.length rows);
  Alcotest.(check int) "count g1" 2 (int_cell rows 0 1);
  Alcotest.(check int) "sum g1" 30 (int_cell rows 0 2);
  Alcotest.(check int) "count g2 includes null row" 2 (int_cell rows 1 1);
  Alcotest.(check int) "sum g2 skips null" 30 (int_cell rows 1 2)

let test_count_on_empty () =
  let eng = fresh () in
  ignore (run_sql eng "CREATE TABLE t (a INT);");
  let r = last_result eng "SELECT COUNT(*) FROM t;" in
  Alcotest.(check int) "zero not empty-set" 0 (int_cell (rows_of r) 0 0)

let test_having () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (g INT);\n\
        INSERT INTO t VALUES (1), (1), (1), (2);");
  let r =
    last_result eng "SELECT g FROM t GROUP BY g HAVING (COUNT(*) > 2);"
  in
  Alcotest.(check int) "one surviving group" 1 (List.length (rows_of r));
  Alcotest.(check int) "the right one" 1 (int_cell (rows_of r) 0 0)

let test_distinct_agg () =
  let eng = fresh () in
  ignore
    (run_sql eng "CREATE TABLE t (a INT); INSERT INTO t VALUES (1),(1),(2);");
  let r = last_result eng "SELECT COUNT(DISTINCT a) FROM t;" in
  Alcotest.(check int) "distinct count" 2 (int_cell (rows_of r) 0 0)

let test_window_row_number () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (30), (10), (20);");
  let r =
    last_result eng
      "SELECT a, ROW_NUMBER() OVER (ORDER BY a ASC) FROM t ORDER BY a ASC;"
  in
  let rows = rows_of r in
  Alcotest.(check int) "rn of smallest" 1 (int_cell rows 0 1);
  Alcotest.(check int) "rn of largest" 3 (int_cell rows 2 1)

let test_window_lead_lag () =
  let eng = fresh () in
  ignore
    (run_sql eng "CREATE TABLE t (a INT); INSERT INTO t VALUES (1),(2),(3);");
  let r =
    last_result eng
      "SELECT a, LEAD(a) OVER (ORDER BY a ASC) FROM t ORDER BY a ASC;"
  in
  let rows = rows_of r in
  Alcotest.(check int) "lead of 1 is 2" 2 (int_cell rows 0 1);
  Alcotest.(check bool) "lead of last is null" true
    ((List.nth rows 2).(1) = Storage.Value.Null)

let test_joins () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE a (x INT); CREATE TABLE b (y INT);\n\
        INSERT INTO a VALUES (1), (2);\n\
        INSERT INTO b VALUES (2), (3);");
  let r = last_result eng "SELECT * FROM a JOIN b ON (a.x = b.y);" in
  Alcotest.(check int) "inner one match" 1 (List.length (rows_of r));
  let r = last_result eng "SELECT * FROM a CROSS JOIN b;" in
  Alcotest.(check int) "cross product" 4 (List.length (rows_of r));
  let r =
    last_result eng
      "SELECT x, y FROM a LEFT JOIN b ON (a.x = b.y) ORDER BY x ASC;"
  in
  let rows = rows_of r in
  Alcotest.(check int) "left keeps all" 2 (List.length rows);
  Alcotest.(check bool) "unmatched padded with null" true
    ((List.hd rows).(1) = Storage.Value.Null)

let test_subqueries () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2), (3);");
  let r =
    last_result eng "SELECT a FROM t WHERE (a > (SELECT MIN(a) FROM t));"
  in
  Alcotest.(check int) "scalar subquery" 2 (List.length (rows_of r));
  let r =
    last_result eng "SELECT 1 WHERE (EXISTS (SELECT * FROM t WHERE a = 2));"
  in
  Alcotest.(check int) "exists true" 1 (List.length (rows_of r));
  let r =
    last_result eng
      "SELECT 1 WHERE (NOT EXISTS (SELECT * FROM t WHERE a = 99));"
  in
  Alcotest.(check int) "not exists true" 1 (List.length (rows_of r))

let test_set_operations () =
  let eng = fresh () in
  let r = last_result eng "SELECT 1 UNION SELECT 1 UNION SELECT 2;" in
  Alcotest.(check int) "union dedupes" 2 (List.length (rows_of r));
  let r = last_result eng "SELECT 1 UNION ALL SELECT 1;" in
  Alcotest.(check int) "union all keeps" 2 (List.length (rows_of r));
  let r = last_result eng "SELECT 1 INTERSECT SELECT 2;" in
  Alcotest.(check int) "intersect empty" 0 (List.length (rows_of r));
  let r =
    last_result eng "VALUES (1), (2), (3) EXCEPT VALUES (2);"
  in
  Alcotest.(check int) "except" 2 (List.length (rows_of r))

let test_with_cte () =
  let eng = fresh () in
  ignore
    (run_sql eng "CREATE TABLE t (a INT); INSERT INTO t VALUES (5), (6);");
  let r =
    last_result eng
      "WITH big AS (SELECT a FROM t WHERE a > 5) SELECT * FROM big;"
  in
  Alcotest.(check int) "cte rows" 1 (List.length (rows_of r))

let test_with_dml_executes () =
  let eng = fresh () in
  ignore (run_sql eng "CREATE TABLE t (a INT);");
  ignore
    (run_sql eng "WITH w AS (INSERT INTO t VALUES (1)) SELECT 1;");
  let r = last_result eng "SELECT COUNT(*) FROM t;" in
  Alcotest.(check int) "dml in with ran" 1 (int_cell (rows_of r) 0 0)

let test_order_by_desc_nulls () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (2), (NULL), (1);");
  let r = last_result eng "SELECT a FROM t ORDER BY a ASC;" in
  Alcotest.(check bool) "nulls first in total order" true
    ((List.hd (rows_of r)).(0) = Storage.Value.Null)

let test_limit_offset () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (1),(2),(3),(4);");
  let r =
    last_result eng "SELECT a FROM t ORDER BY a ASC LIMIT 2 OFFSET 1;"
  in
  let rows = rows_of r in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  Alcotest.(check int) "offset applied" 2 (int_cell rows 0 0)

(* ---------------- rules and triggers ---------------- *)

let test_instead_rule_rewrites_insert () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT);\n\
        CREATE RULE r AS ON INSERT TO t DO INSTEAD NOTHING;\n\
        INSERT INTO t VALUES (1);");
  let r = last_result eng "SELECT COUNT(*) FROM t;" in
  Alcotest.(check int) "insert swallowed" 0 (int_cell (rows_of r) 0 0)

let test_trigger_fires () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT);\n\
        CREATE TABLE log (x INT);\n\
        CREATE TRIGGER tr AFTER INSERT ON t FOR EACH ROW INSERT INTO log \
        VALUES (1);\n\
        INSERT INTO t VALUES (10), (20);");
  let r = last_result eng "SELECT COUNT(*) FROM log;" in
  Alcotest.(check int) "fired per row" 2 (int_cell (rows_of r) 0 0)

let test_trigger_recursion_bounded () =
  let eng = fresh () in
  (* self-inserting trigger must be stopped by the depth limit *)
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT);\n\
        CREATE TRIGGER tr AFTER INSERT ON t FOR EACH ROW INSERT INTO t \
        VALUES (1);\n\
        INSERT INTO t VALUES (0);");
  let r = last_result eng "SELECT COUNT(*) FROM t;" in
  Alcotest.(check bool) "bounded" true (int_cell (rows_of r) 0 0 < 64)

(* ---------------- transactions ---------------- *)

let test_rollback_restores () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);\n\
        BEGIN; INSERT INTO t VALUES (2); ROLLBACK;");
  let r = last_result eng "SELECT COUNT(*) FROM t;" in
  Alcotest.(check int) "rolled back" 1 (int_cell (rows_of r) 0 0)

let test_commit_keeps () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT);\n\
        BEGIN; INSERT INTO t VALUES (1); COMMIT;");
  let r = last_result eng "SELECT COUNT(*) FROM t;" in
  Alcotest.(check int) "committed" 1 (int_cell (rows_of r) 0 0)

let test_savepoints () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT);\n\
        BEGIN;\n\
        INSERT INTO t VALUES (1);\n\
        SAVEPOINT sp;\n\
        INSERT INTO t VALUES (2);\n\
        ROLLBACK TO SAVEPOINT sp;");
  let r = last_result eng "SELECT COUNT(*) FROM t;" in
  Alcotest.(check int) "partial rollback" 1 (int_cell (rows_of r) 0 0)

let test_nested_begin_errors () =
  let eng = fresh () in
  match last_error eng "BEGIN; BEGIN;" with
  | Minidb.Errors.Semantic _ -> ()
  | e -> Alcotest.fail (Minidb.Errors.message e)

let test_savepoint_outside_txn () =
  let eng = fresh () in
  match last_error eng "SAVEPOINT sp;" with
  | Minidb.Errors.Semantic _ -> ()
  | e -> Alcotest.fail (Minidb.Errors.message e)

(* ---------------- locks, DCL, session ---------------- *)

let test_read_lock_blocks_write () =
  let eng = fresh () in
  ignore (run_sql eng "CREATE TABLE t (a INT); LOCK TABLES t READ;");
  (match last_error eng "INSERT INTO t VALUES (1);" with
   | Minidb.Errors.Semantic _ -> ()
   | e -> Alcotest.fail (Minidb.Errors.message e));
  ignore (run_sql eng "UNLOCK TABLES;");
  let r = last_result eng "INSERT INTO t VALUES (1);" in
  Alcotest.(check int) "unblocked" 1 (affected r)

let test_privileges () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);\n\
        CREATE USER u IDENTIFIED BY 'pw';\n\
        SET ROLE u;");
  (match last_error eng "SELECT * FROM t;" with
   | Minidb.Errors.Permission_denied _ -> ()
   | e -> Alcotest.fail (Minidb.Errors.message e));
  ignore (run_sql eng "SET ROLE root; GRANT SELECT ON t TO u; SET ROLE u;");
  let r = last_result eng "SELECT * FROM t;" in
  Alcotest.(check int) "granted" 1 (List.length (rows_of r));
  (* write still denied *)
  match last_error eng "INSERT INTO t VALUES (2);" with
  | Minidb.Errors.Permission_denied _ -> ()
  | e -> Alcotest.fail (Minidb.Errors.message e)

let test_prepared_statements () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (9);\n\
        PREPARE p AS SELECT a FROM t;");
  let r = last_result eng "EXECUTE p;" in
  Alcotest.(check int) "prepared ran" 1 (List.length (rows_of r));
  ignore (run_sql eng "DEALLOCATE p;");
  match last_error eng "EXECUTE p;" with
  | Minidb.Errors.No_such_object _ -> ()
  | e -> Alcotest.fail (Minidb.Errors.message e)

let test_notify_listen () =
  let eng = fresh () in
  ignore (run_sql eng "LISTEN chan; NOTIFY chan, 'hello';");
  let cat = E.catalog eng in
  Alcotest.(check int) "queued" 1 (List.length cat.Minidb.Catalog.notify_queue)

let test_handler_cursor () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2);\n\
        HANDLER t OPEN;");
  let r = last_result eng "HANDLER t READ FIRST;" in
  Alcotest.(check int) "first row" 1 (int_cell (rows_of r) 0 0);
  let r = last_result eng "HANDLER t READ NEXT;" in
  Alcotest.(check int) "next row" 2 (int_cell (rows_of r) 0 0);
  let r = last_result eng "HANDLER t READ NEXT;" in
  Alcotest.(check int) "exhausted" 0 (List.length (rows_of r));
  ignore (run_sql eng "HANDLER t CLOSE;");
  match last_error eng "HANDLER t READ NEXT;" with
  | Minidb.Errors.Semantic _ -> ()
  | e -> Alcotest.fail (Minidb.Errors.message e)

let test_discard_temp () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TEMPORARY TABLE tmp (a INT);\n\
        CREATE TABLE keep (a INT);\n\
        DISCARD TEMP;");
  (match last_error eng "SELECT * FROM tmp;" with
   | Minidb.Errors.No_such_table _ -> ()
   | e -> Alcotest.fail (Minidb.Errors.message e));
  let r = last_result eng "SELECT COUNT(*) FROM keep;" in
  Alcotest.(check int) "non-temp kept" 0 (int_cell (rows_of r) 0 0)

let test_analyze_enables_index_scan () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT);\n\
        CREATE INDEX i ON t (a);\n\
        INSERT INTO t VALUES (1), (2), (3);");
  let plan_before = last_result eng "EXPLAIN SELECT * FROM t WHERE a = 2;" in
  ignore (run_sql eng "ANALYZE t;");
  let plan_after = last_result eng "EXPLAIN SELECT * FROM t WHERE a = 2;" in
  let text r =
    String.concat "\n"
      (List.map (fun row -> Storage.Value.to_display row.(0)) (rows_of r))
  in
  Alcotest.(check bool) "seq scan before analyze" true
    (String.length (text plan_before) > 0
     && not
          (String.length (text plan_before) >= 10
           && String.sub (text plan_before) 0 10 = "Index Scan"));
  Alcotest.(check bool) "index scan after analyze" true
    (String.length (text plan_after) >= 10
     && String.sub (text plan_after) 0 10 = "Index Scan");
  (* and the query still works *)
  let r = last_result eng "SELECT * FROM t WHERE a = 2;" in
  Alcotest.(check int) "index scan result" 1 (List.length (rows_of r))

(* ---------------- limits & engine gate ---------------- *)

let test_row_limit () =
  let eng =
    E.create ~limits:Minidb.Limits.tiny ~profile:clean_profile
      ~cov:(Coverage.Bitmap.create ()) ()
  in
  ignore (run_sql eng "CREATE TABLE t (a INT);");
  match
    last_error eng
      "INSERT INTO t VALUES (1),(2),(3),(4),(5),(6),(7),(8),(9);"
  with
  | Minidb.Errors.Limit_exceeded _ -> ()
  | e -> Alcotest.fail (Minidb.Errors.message e)

let test_statement_budget () =
  let eng =
    E.create ~limits:Minidb.Limits.tiny ~profile:clean_profile
      ~cov:(Coverage.Bitmap.create ()) ()
  in
  let tc =
    Sqlparser.Parser.parse_testcase_exn
      (String.concat ";" (List.init 20 (fun _ -> "SELECT 1")))
  in
  let stats = E.run_testcase eng tc in
  Alcotest.(check int) "capped at limit" 8 stats.E.rs_executed

let test_profile_gate () =
  (* MySQL-sim rejects NOTIFY: not in its statement-type inventory *)
  let eng =
    E.create ~profile:Dialects.Registry.mysql_sim
      ~cov:(Coverage.Bitmap.create ()) ()
  in
  match run_sql eng "NOTIFY chan;" with
  | [ E.Sql_failed (Minidb.Errors.Not_supported _) ] -> ()
  | _ -> Alcotest.fail "expected Not_supported"

let test_window_tracking () =
  let eng = fresh () in
  ignore (run_sql eng "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);");
  Alcotest.(check (list string)) "window"
    [ "CREATE TABLE"; "INSERT" ]
    (List.map Stmt_type.name (E.window eng))

let test_self_referencing_view_safe () =
  let eng = fresh () in
  ignore
    (run_sql eng
       "CREATE TABLE t (a INT);\n\
        CREATE VIEW v AS SELECT * FROM v2;\n\
        CREATE VIEW v2 AS SELECT * FROM v;");
  (* cyclic views must error out, not loop forever *)
  match last_error eng "SELECT * FROM v;" with
  | Minidb.Errors.Limit_exceeded _ | Minidb.Errors.No_such_table _ -> ()
  | e -> Alcotest.fail (Minidb.Errors.message e)

let suite =
  [ ("create/insert/select", `Quick, test_create_insert_select);
    ("duplicate table", `Quick, test_duplicate_table);
    ("fig2 order sensitivity", `Quick, test_fig2_order_sensitivity);
    ("alter table variants", `Quick, test_alter_table_variants);
    ("drop cascades", `Quick, test_drop_cascades);
    ("views", `Quick, test_views);
    ("materialized view staleness", `Quick, test_materialized_view_staleness);
    ("sequence ddl", `Quick, test_sequences_ddl);
    ("insert not null", `Quick, test_insert_not_null);
    ("insert unique / replace", `Quick, test_insert_unique_and_replace);
    ("insert defaults", `Quick, test_insert_defaults_and_columns);
    ("insert select", `Quick, test_insert_select);
    ("update where/limit", `Quick, test_update_where_limit);
    ("delete", `Quick, test_delete);
    ("copy and load", `Quick, test_copy_and_load);
    ("aggregates", `Quick, test_aggregates);
    ("count on empty", `Quick, test_count_on_empty);
    ("having", `Quick, test_having);
    ("distinct aggregate", `Quick, test_distinct_agg);
    ("window row_number", `Quick, test_window_row_number);
    ("window lead/lag", `Quick, test_window_lead_lag);
    ("joins", `Quick, test_joins);
    ("subqueries", `Quick, test_subqueries);
    ("set operations", `Quick, test_set_operations);
    ("with cte", `Quick, test_with_cte);
    ("with dml executes", `Quick, test_with_dml_executes);
    ("order by null placement", `Quick, test_order_by_desc_nulls);
    ("limit offset", `Quick, test_limit_offset);
    ("instead rule", `Quick, test_instead_rule_rewrites_insert);
    ("trigger fires", `Quick, test_trigger_fires);
    ("trigger recursion bounded", `Quick, test_trigger_recursion_bounded);
    ("rollback restores", `Quick, test_rollback_restores);
    ("commit keeps", `Quick, test_commit_keeps);
    ("savepoints", `Quick, test_savepoints);
    ("nested begin errors", `Quick, test_nested_begin_errors);
    ("savepoint outside txn", `Quick, test_savepoint_outside_txn);
    ("read lock blocks write", `Quick, test_read_lock_blocks_write);
    ("privileges", `Quick, test_privileges);
    ("prepared statements", `Quick, test_prepared_statements);
    ("notify/listen", `Quick, test_notify_listen);
    ("handler cursor", `Quick, test_handler_cursor);
    ("discard temp", `Quick, test_discard_temp);
    ("analyze enables index scan", `Quick, test_analyze_enables_index_scan);
    ("row limit", `Quick, test_row_limit);
    ("statement budget", `Quick, test_statement_budget);
    ("profile gate", `Quick, test_profile_gate);
    ("window tracking", `Quick, test_window_tracking);
    ("self-referencing view safe", `Quick, test_self_referencing_view_safe) ]
