(* Tests for the dialect profiles and the Table I bug inventory. *)

open Sqlcore
module F = Minidb.Fault
module P = Minidb.Profile

let test_type_counts_ordering () =
  (* The paper's Table IV ordering: PG > MariaDB > MySQL >> Comdb2. *)
  let n p = P.type_count p in
  let pg = n Dialects.Registry.pg_sim in
  let my = n Dialects.Registry.mysql_sim in
  let maria = n Dialects.Registry.mariadb_sim in
  let cdb = n Dialects.Registry.comdb2_sim in
  Alcotest.(check bool) "pg largest" true (pg > maria);
  Alcotest.(check bool) "maria > mysql" true (maria > my);
  Alcotest.(check bool) "mysql >> comdb2" true (my > cdb + 20);
  Alcotest.(check int) "comdb2 is 24, as in the paper" 24 cdb

let test_dialect_specific_types () =
  let supports p ty = P.supports p ty in
  Alcotest.(check bool) "pg has rules" true
    (supports Dialects.Registry.pg_sim Stmt_type.Create_rule);
  Alcotest.(check bool) "mysql has no rules" false
    (supports Dialects.Registry.mysql_sim Stmt_type.Create_rule);
  Alcotest.(check bool) "mysql has handler" true
    (supports Dialects.Registry.mysql_sim Stmt_type.Handler_open);
  Alcotest.(check bool) "pg has no handler" false
    (supports Dialects.Registry.pg_sim Stmt_type.Handler_open);
  Alcotest.(check bool) "mariadb has sequences" true
    (supports Dialects.Registry.mariadb_sim Stmt_type.Create_sequence);
  Alcotest.(check bool) "mysql lacks sequences" false
    (supports Dialects.Registry.mysql_sim Stmt_type.Create_sequence);
  Alcotest.(check bool) "comdb2 has insert" true
    (supports Dialects.Registry.comdb2_sim Stmt_type.Insert);
  Alcotest.(check bool) "comdb2 lacks triggers" false
    (supports Dialects.Registry.comdb2_sim Stmt_type.Create_trigger)

let test_bug_totals_match_table1 () =
  Alcotest.(check int) "PostgreSQL 6" 6 (List.length Dialects.Bug_inventory.pg);
  Alcotest.(check int) "MySQL 21" 21 (List.length Dialects.Bug_inventory.mysql);
  Alcotest.(check int) "MariaDB 42" 42
    (List.length Dialects.Bug_inventory.mariadb);
  Alcotest.(check int) "Comdb2 33" 33
    (List.length Dialects.Bug_inventory.comdb2);
  Alcotest.(check int) "total 102" 102 Dialects.Bug_inventory.total

let count_by bugs component kind =
  List.length
    (List.filter
       (fun (b : F.bug) -> b.component = component && b.kind = kind)
       bugs)

let test_table1_component_breakdown () =
  let maria = Dialects.Bug_inventory.mariadb in
  (* MariaDB rows of Table I *)
  Alcotest.(check int) "Optimizer NPD" 2 (count_by maria "Optimizer" F.Npd);
  Alcotest.(check int) "Optimizer UAP" 3 (count_by maria "Optimizer" F.Uap);
  Alcotest.(check int) "Storage SEGV" 7 (count_by maria "Storage" F.Segv);
  Alcotest.(check int) "Item AF" 4 (count_by maria "Item" F.Af);
  Alcotest.(check int) "Lock SEGV" 2 (count_by maria "Lock" F.Segv);
  let cdb = Dialects.Bug_inventory.comdb2 in
  Alcotest.(check int) "Bdb UB" 6 (count_by cdb "Bdb" F.Ub);
  Alcotest.(check int) "Berkdb UB" 7 (count_by cdb "Berkdb" F.Ub);
  Alcotest.(check int) "Csc2 BOF" 1 (count_by cdb "Csc2" F.Bof);
  let my = Dialects.Bug_inventory.mysql in
  Alcotest.(check int) "MySQL Optimizer BOF" 3 (count_by my "Optimizer" F.Bof);
  Alcotest.(check int) "MySQL Optimizer NPD" 4 (count_by my "Optimizer" F.Npd);
  let pg = Dialects.Bug_inventory.pg in
  Alcotest.(check int) "PG Optimizer SEGV" 2 (count_by pg "Optimizer" F.Segv)

let test_paper_identifiers_present () =
  let ids =
    List.map (fun (b : F.bug) -> b.identifier)
      (Dialects.Bug_inventory.pg @ Dialects.Bug_inventory.mysql
       @ Dialects.Bug_inventory.mariadb @ Dialects.Bug_inventory.comdb2)
  in
  List.iter
    (fun cve ->
       Alcotest.(check bool) (cve ^ " present") true (List.mem cve ids))
    [ "CVE-2021-35643"; "CVE-2021-2444"; "CVE-2022-27376"; "CVE-2020-26746";
      "CVE-2020-26744"; "BUG #17097"; "MDEV-26403" ]

let test_bug_ids_unique () =
  List.iter
    (fun bugs ->
       let ids = List.map (fun (b : F.bug) -> b.F.bug_id) bugs in
       Alcotest.(check int) "unique" (List.length ids)
         (List.length (List.sort_uniq compare ids)))
    [ Dialects.Bug_inventory.pg; Dialects.Bug_inventory.mysql;
      Dialects.Bug_inventory.mariadb; Dialects.Bug_inventory.comdb2 ]

let rec cond_types = function
  | F.Subseq ts | F.Ends_with ts -> ts
  | F.State _ | F.Stmt_has _ -> []
  | F.All cs | F.Any cs -> List.concat_map cond_types cs
  | F.Not c -> cond_types c

let test_conditions_use_dialect_types () =
  (* a bug whose trigger mentions a type the dialect cannot execute would
     be unreachable *)
  List.iter
    (fun (profile, bugs) ->
       List.iter
         (fun (b : F.bug) ->
            List.iter
              (fun ty ->
                 Alcotest.(check bool)
                   (b.F.bug_id ^ " uses supported type " ^ Stmt_type.name ty)
                   true (P.supports profile ty))
              (cond_types b.F.cond))
         bugs)
    [ (Dialects.Registry.pg_sim, Dialects.Bug_inventory.pg);
      (Dialects.Registry.mysql_sim, Dialects.Bug_inventory.mysql);
      (Dialects.Registry.mariadb_sim, Dialects.Bug_inventory.mariadb);
      (Dialects.Registry.comdb2_sim, Dialects.Bug_inventory.comdb2) ]

let test_registry_lookup () =
  (match Dialects.Registry.by_name "PostgreSQL" with
   | Some p -> Alcotest.(check string) "name" "PostgreSQL" (P.name p)
   | None -> Alcotest.fail "lookup failed");
  (match Dialects.Registry.by_name "comdb2" with
   | Some _ -> ()
   | None -> Alcotest.fail "case-insensitive lookup failed");
  Alcotest.(check bool) "unknown" true
    (Dialects.Registry.by_name "oracle" = None);
  Alcotest.(check int) "four dialects" 4 (List.length Dialects.Registry.all)

let test_easy_bugs_known () =
  (* the SQUIRREL-reachable subset: 3 in MySQL, 8 in MariaDB, as the
     paper's Table III reports for SQUIRREL *)
  let easy = Dialects.Bug_inventory.easy_bug_ids in
  let count prefix =
    List.length
      (List.filter
         (fun id -> String.length id > 5 && String.sub id 0 5 = prefix)
         easy)
  in
  Alcotest.(check int) "mysql easy" 3 (count "MYSQL");
  Alcotest.(check int) "maria easy" 8 (count "MARIA")

let suite =
  [ ("type counts ordering", `Quick, test_type_counts_ordering);
    ("dialect specific types", `Quick, test_dialect_specific_types);
    ("bug totals (Table I)", `Quick, test_bug_totals_match_table1);
    ("component breakdown (Table I)", `Quick,
     test_table1_component_breakdown);
    ("paper identifiers present", `Quick, test_paper_identifiers_present);
    ("bug ids unique", `Quick, test_bug_ids_unique);
    ("conditions use dialect types", `Quick,
     test_conditions_use_dialect_types);
    ("registry lookup", `Quick, test_registry_lookup);
    ("easy bugs calibrated", `Quick, test_easy_bugs_known) ]
