(* Tests for the storage engine: tables and indexes. *)

open Storage
open Sqlcore.Ast

let mk_table () =
  Table.create ~name:"t" ~temp:false
    [ { Table.c_name = "a"; c_type = T_int; c_not_null = true;
        c_primary = true; c_unique = true; c_default = None;
        c_zerofill = false };
      { Table.c_name = "b"; c_type = T_text; c_not_null = false;
        c_primary = false; c_unique = false;
        c_default = Some (Value.Text "d"); c_zerofill = false } ]

let test_insert_and_count () =
  let t = mk_table () in
  let id1 = Table.insert t [| Value.Int 1; Value.Text "x" |] in
  let id2 = Table.insert t [| Value.Int 2; Value.Text "y" |] in
  Alcotest.(check bool) "distinct rowids" true (id1 <> id2);
  Alcotest.(check int) "count" 2 (Table.row_count t)

let test_find_update_row () =
  let t = mk_table () in
  let id = Table.insert t [| Value.Int 1; Value.Text "x" |] in
  (match Table.find_row t id with
   | Some row -> Alcotest.(check bool) "found" true (row.(0) = Value.Int 1)
   | None -> Alcotest.fail "row not found");
  Table.update_row t id [| Value.Int 9; Value.Text "z" |];
  (match Table.find_row t id with
   | Some row -> Alcotest.(check bool) "updated" true (row.(0) = Value.Int 9)
   | None -> Alcotest.fail "row lost after update")

let test_delete_rows () =
  let t = mk_table () in
  let id1 = Table.insert t [| Value.Int 1; Value.Null |] in
  let _ = Table.insert t [| Value.Int 2; Value.Null |] in
  let n = Table.delete_rows t (fun id -> id = id1) in
  Alcotest.(check int) "one deleted" 1 n;
  Alcotest.(check int) "one left" 1 (Table.row_count t);
  Alcotest.(check bool) "right one left" true (Table.find_row t id1 = None)

let test_truncate () =
  let t = mk_table () in
  ignore (Table.insert t [| Value.Int 1; Value.Null |]);
  ignore (Table.insert t [| Value.Int 2; Value.Null |]);
  Alcotest.(check int) "returns removed" 2 (Table.truncate t);
  Alcotest.(check int) "empty" 0 (Table.row_count t)

let test_rowids_stable_after_delete () =
  let t = mk_table () in
  let _ = Table.insert t [| Value.Int 1; Value.Null |] in
  let id2 = Table.insert t [| Value.Int 2; Value.Null |] in
  ignore (Table.delete_rows t (fun id -> id <> id2));
  let id3 = Table.insert t [| Value.Int 3; Value.Null |] in
  Alcotest.(check bool) "fresh rowid" true (id3 > id2);
  (match Table.find_row t id2 with
   | Some row -> Alcotest.(check bool) "id2 intact" true (row.(0) = Value.Int 2)
   | None -> Alcotest.fail "id2 lost")

let test_add_drop_column () =
  let t = mk_table () in
  ignore (Table.insert t [| Value.Int 1; Value.Text "x" |]);
  Table.add_column t
    { Table.c_name = "c"; c_type = T_int; c_not_null = false;
      c_primary = false; c_unique = false; c_default = Some (Value.Int 7);
      c_zerofill = false };
  Alcotest.(check int) "arity" 3 (Table.arity t);
  (match Table.to_rows t with
   | [ (_, row) ] ->
     Alcotest.(check bool) "default filled" true (row.(2) = Value.Int 7)
   | _ -> Alcotest.fail "unexpected rows");
  Table.drop_column t 1;
  Alcotest.(check int) "arity after drop" 2 (Table.arity t);
  Alcotest.(check (option int)) "col gone" None
    (Option.map (fun _ -> 0) (Table.col_index t "b"));
  (match Table.to_rows t with
   | [ (_, row) ] ->
     Alcotest.(check int) "row narrowed" 2 (Array.length row)
   | _ -> Alcotest.fail "unexpected rows")

let test_change_column_type () =
  let t = mk_table () in
  ignore (Table.insert t [| Value.Int 1; Value.Text "42" |]);
  Table.change_column_type t 1 T_int;
  (match Table.to_rows t with
   | [ (_, row) ] ->
     Alcotest.(check bool) "coerced" true (row.(1) = Value.Int 42)
   | _ -> Alcotest.fail "unexpected rows")

let test_copy_independent () =
  let t = mk_table () in
  ignore (Table.insert t [| Value.Int 1; Value.Null |]);
  let t2 = Table.copy t in
  ignore (Table.insert t2 [| Value.Int 2; Value.Null |]);
  Alcotest.(check int) "copy grew" 2 (Table.row_count t2);
  Alcotest.(check int) "original untouched" 1 (Table.row_count t)

(* --- indexes ------------------------------------------------------- *)

let test_index_unique_dup () =
  let idx = Index.create ~unique:true in
  Alcotest.(check bool) "first add" true
    (Index.add idx [ Value.Int 1 ] 10 = `Ok);
  (match Index.add idx [ Value.Int 1 ] 20 with
   | `Dup existing -> Alcotest.(check int) "dup reports holder" 10 existing
   | `Ok -> Alcotest.fail "expected duplicate")

let test_index_null_never_collides () =
  let idx = Index.create ~unique:true in
  Alcotest.(check bool) "null 1" true (Index.add idx [ Value.Null ] 1 = `Ok);
  Alcotest.(check bool) "null 2" true (Index.add idx [ Value.Null ] 2 = `Ok)

let test_index_find_remove () =
  let idx = Index.create ~unique:false in
  ignore (Index.add idx [ Value.Int 5 ] 1);
  ignore (Index.add idx [ Value.Int 5 ] 2);
  Alcotest.(check int) "two hits" 2 (List.length (Index.find idx [ Value.Int 5 ]));
  Index.remove idx [ Value.Int 5 ] 1;
  Alcotest.(check (list int)) "one left" [ 2 ] (Index.find idx [ Value.Int 5 ]);
  Index.remove idx [ Value.Int 5 ] 2;
  Alcotest.(check (list int)) "empty" [] (Index.find idx [ Value.Int 5 ])

let test_index_range () =
  let idx = Index.create ~unique:false in
  for i = 1 to 10 do
    ignore (Index.add idx [ Value.Int i ] i)
  done;
  let hits =
    Index.find_range idx ~lo:(Some [ Value.Int 3 ]) ~hi:(Some [ Value.Int 5 ])
  in
  Alcotest.(check (list int)) "range" [ 3; 4; 5 ] (List.sort compare hits);
  Alcotest.(check int) "open range" 10
    (List.length (Index.find_range idx ~lo:None ~hi:None))

let prop_index_multimap_model =
  QCheck.Test.make ~name:"index matches assoc-list model" ~count:200
    QCheck.(list (pair (int_range 0 5) (int_range 0 20)))
    (fun pairs ->
       let idx = Index.create ~unique:false in
       let model = Hashtbl.create 8 in
       List.iter
         (fun (k, rowid) ->
            ignore (Index.add idx [ Value.Int k ] rowid);
            Hashtbl.replace model (k, rowid) ())
         pairs;
       List.for_all
         (fun k ->
            let got = List.sort_uniq compare (Index.find idx [ Value.Int k ]) in
            let expected =
              Hashtbl.fold
                (fun (k', rowid) () acc ->
                   if k' = k && not (List.mem rowid acc) then rowid :: acc
                   else acc)
                model []
              |> List.sort_uniq compare
            in
            got = expected)
         [ 0; 1; 2; 3; 4; 5 ])

let suite =
  [ ("insert and count", `Quick, test_insert_and_count);
    ("find and update row", `Quick, test_find_update_row);
    ("delete rows", `Quick, test_delete_rows);
    ("truncate", `Quick, test_truncate);
    ("rowids stable", `Quick, test_rowids_stable_after_delete);
    ("add/drop column", `Quick, test_add_drop_column);
    ("change column type", `Quick, test_change_column_type);
    ("copy independent", `Quick, test_copy_independent);
    ("index unique dup", `Quick, test_index_unique_dup);
    ("index null never collides", `Quick, test_index_null_never_collides);
    ("index find/remove", `Quick, test_index_find_remove);
    ("index range", `Quick, test_index_range);
    QCheck_alcotest.to_alcotest prop_index_multimap_model ]
