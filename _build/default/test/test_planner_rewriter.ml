(* Tests for the planner's access-path choice and the rule rewriter. *)

open Sqlcore
module Pl = Minidb.Planner
module Rw = Minidb.Rewriter

let setup sql =
  let cov = Coverage.Bitmap.create () in
  let profile =
    Minidb.Profile.make ~name:"clean" ~flavor:Minidb.Profile.Pg
      ~types:Stmt_type.all ~bugs:[]
  in
  let eng = Minidb.Engine.create ~profile ~cov () in
  List.iter
    (fun s -> ignore (Minidb.Engine.exec_stmt eng s))
    (Sqlparser.Parser.parse_testcase_exn sql);
  Minidb.Engine.catalog eng

let where_of sql =
  match Sqlparser.Parser.parse_stmt_exn sql with
  | Ast.S_select (Ast.Q_select s) -> s.Ast.where
  | _ -> Alcotest.fail "expected select"

let test_empty_table_shortcut () =
  let cat = setup "CREATE TABLE t (a INT);" in
  match Pl.choose_access cat ~analyzed:true ~table:"t" ~where:None with
  | Pl.Empty_short -> ()
  | _ -> Alcotest.fail "expected empty-table shortcut"

let test_seq_scan_without_stats () =
  let cat =
    setup
      "CREATE TABLE t (a INT); CREATE INDEX i ON t (a);\n\
       INSERT INTO t VALUES (1);"
  in
  let where = where_of "SELECT * FROM t WHERE a = 1" in
  (match Pl.choose_access cat ~analyzed:false ~table:"t" ~where with
   | Pl.Seq_scan -> ()
   | _ -> Alcotest.fail "no stats -> seq scan");
  match Pl.choose_access cat ~analyzed:true ~table:"t" ~where with
  | Pl.Index_eq (name, _) -> Alcotest.(check string) "index" "i" name
  | _ -> Alcotest.fail "stats + index + eq -> index scan"

let test_index_needs_equality () =
  let cat =
    setup
      "CREATE TABLE t (a INT); CREATE INDEX i ON t (a);\n\
       INSERT INTO t VALUES (1);"
  in
  let where = where_of "SELECT * FROM t WHERE a > 1" in
  match Pl.choose_access cat ~analyzed:true ~table:"t" ~where with
  | Pl.Seq_scan -> ()
  | _ -> Alcotest.fail "range predicate must not use the eq-index path"

let test_index_on_conjunct () =
  let cat =
    setup
      "CREATE TABLE t (a INT, b INT); CREATE INDEX i ON t (a);\n\
       INSERT INTO t VALUES (1, 2);"
  in
  let where = where_of "SELECT * FROM t WHERE b > 0 AND a = 1" in
  match Pl.choose_access cat ~analyzed:true ~table:"t" ~where with
  | Pl.Index_eq _ -> ()
  | _ -> Alcotest.fail "equality conjunct should be found under AND"

let test_conjuncts_split () =
  match where_of "SELECT 1 WHERE a = 1 AND b = 2 AND c = 3" with
  | Some w -> Alcotest.(check int) "three conjuncts" 3
                (List.length (Pl.conjuncts w))
  | None -> Alcotest.fail "expected where"

let test_explain_lines_shapes () =
  let cat =
    setup
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);\n\
       CREATE TABLE u (b INT); INSERT INTO u VALUES (2);"
  in
  let lines stmt_sql =
    Pl.explain_lines cat ~analyzed:false
      (Sqlparser.Parser.parse_stmt_exn stmt_sql)
  in
  Alcotest.(check bool) "seq scan mentioned" true
    (List.exists
       (fun l -> String.length l >= 8 && String.sub l 0 8 = "Seq Scan")
       (lines "SELECT * FROM t"));
  Alcotest.(check bool) "join plan has nested loop" true
    (List.exists
       (fun l ->
          String.length (String.trim l) >= 11
          && String.sub (String.trim l) 0 11 = "Nested Loop")
       (lines "SELECT * FROM t JOIN u ON TRUE"));
  Alcotest.(check (list string)) "utility" [ "Utility Statement" ]
    (lines "VACUUM")

(* --- rewriter -------------------------------------------------------- *)

let test_rewrite_decisions () =
  let cat =
    setup
      "CREATE TABLE t (a INT);\n\
       CREATE RULE r1 AS ON INSERT TO t DO INSTEAD NOTIFY chan;\n\
       CREATE RULE r2 AS ON DELETE TO t DO INSTEAD NOTHING;\n\
       CREATE RULE r3 AS ON UPDATE TO t DO NOTIFY side;"
  in
  (match Rw.rewrite_dml cat ~table:"t" ~event:Ast.Ev_insert with
   | Rw.Instead_notify (_, chan) ->
     Alcotest.(check string) "notify channel" "chan" chan
   | _ -> Alcotest.fail "expected instead-notify");
  (match Rw.rewrite_dml cat ~table:"t" ~event:Ast.Ev_delete with
   | Rw.Instead_nothing _ -> ()
   | _ -> Alcotest.fail "expected instead-nothing");
  (* r3 is not INSTEAD: update is not rewritten, but r3 is an also-rule *)
  (match Rw.rewrite_dml cat ~table:"t" ~event:Ast.Ev_update with
   | Rw.No_rule -> ()
   | _ -> Alcotest.fail "non-INSTEAD rule must not rewrite");
  Alcotest.(check int) "also rules" 1
    (List.length (Rw.also_rules cat ~table:"t" ~event:Ast.Ev_update));
  match Rw.rewrite_dml cat ~table:"other" ~event:Ast.Ev_insert with
  | Rw.No_rule -> ()
  | _ -> Alcotest.fail "no rules on other tables"

let test_rewrite_instead_stmt () =
  let cat =
    setup
      "CREATE TABLE t (a INT);\n\
       CREATE TABLE log (x INT);\n\
       CREATE RULE r AS ON INSERT TO t DO INSTEAD INSERT INTO log VALUES (1);"
  in
  match Rw.rewrite_dml cat ~table:"t" ~event:Ast.Ev_insert with
  | Rw.Instead_stmt (_, Ast.S_insert { i_table; _ }) ->
    Alcotest.(check string) "redirected" "log" i_table
  | _ -> Alcotest.fail "expected instead-stmt"

let suite =
  [ ("empty table shortcut", `Quick, test_empty_table_shortcut);
    ("seq scan without stats", `Quick, test_seq_scan_without_stats);
    ("index needs equality", `Quick, test_index_needs_equality);
    ("index on conjunct", `Quick, test_index_on_conjunct);
    ("conjuncts split", `Quick, test_conjuncts_split);
    ("explain line shapes", `Quick, test_explain_lines_shapes);
    ("rewrite decisions", `Quick, test_rewrite_decisions);
    ("rewrite instead stmt", `Quick, test_rewrite_instead_stmt) ]
