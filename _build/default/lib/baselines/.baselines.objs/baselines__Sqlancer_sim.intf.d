lib/baselines/sqlancer_sim.mli: Fuzz Minidb
