lib/baselines/sqlsmith_sim.mli: Fuzz Minidb
