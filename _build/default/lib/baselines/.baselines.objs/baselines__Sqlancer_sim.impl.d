lib/baselines/sqlancer_sim.ml: Ast Fuzz Lego List Minidb Reprutil Sqlcore Stmt_type
