lib/baselines/squirrel_sim.ml: Fuzz Lego List Reprutil
