lib/baselines/squirrel_plus.mli: Fuzz Lego Minidb
