lib/baselines/squirrel_plus.ml: Ast Fuzz Lego List Minidb Reprutil Sqlcore Stmt_type
