lib/baselines/squirrel_sim.mli: Fuzz Minidb
