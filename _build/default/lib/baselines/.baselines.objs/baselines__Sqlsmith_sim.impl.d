lib/baselines/sqlsmith_sim.ml: Ast Fuzz Lego List Option Reprutil Sqlcore Sqlparser
