lib/sqlparser/lexer.mli: Format
