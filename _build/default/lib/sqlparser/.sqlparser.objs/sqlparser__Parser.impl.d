lib/sqlparser/parser.ml: Array Format Lexer List Printf Sqlcore String
