lib/sqlparser/parser.mli: Sqlcore
