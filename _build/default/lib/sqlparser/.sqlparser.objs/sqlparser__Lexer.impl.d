lib/sqlparser/lexer.ml: Array Buffer Format Hashtbl List Printf String
