lib/fuzz/harness.ml: Coverage Minidb Triage
