lib/fuzz/reducer.mli: Minidb Sqlcore
