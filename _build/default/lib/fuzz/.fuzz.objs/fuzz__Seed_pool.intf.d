lib/fuzz/seed_pool.mli: Reprutil Sqlcore
