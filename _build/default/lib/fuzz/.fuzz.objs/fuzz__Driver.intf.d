lib/fuzz/driver.mli: Harness Sqlcore
