lib/fuzz/seed_pool.ml: Hashtbl Reprutil Rng Sqlcore Vec
