lib/fuzz/corpus.mli: Minidb Sqlcore
