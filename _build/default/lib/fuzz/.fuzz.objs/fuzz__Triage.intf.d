lib/fuzz/triage.mli: Minidb Sqlcore
