lib/fuzz/harness.mli: Coverage Minidb Sqlcore Triage
