lib/fuzz/driver.ml: Harness Sqlcore Triage
