lib/fuzz/triage.ml: Hashtbl List Minidb Sqlcore String
