lib/fuzz/corpus.ml: Lazy List Minidb Sqlcore Sqlparser
