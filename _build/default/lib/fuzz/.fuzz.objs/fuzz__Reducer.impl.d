lib/fuzz/reducer.ml: Ast Ast_util Coverage List Minidb Sqlcore
