type outcome = {
  o_new_branches : int;
  o_cov_hash : int64;
  o_crash : Minidb.Fault.crash option;
  o_crash_is_new : bool;
  o_errors : int;
  o_executed : int;
  o_cost : int;
}

type t = {
  h_profile : Minidb.Profile.t;
  h_limits : Minidb.Limits.t;
  h_virgin : Coverage.Bitmap.t;
  h_exec_map : Coverage.Bitmap.t;
  h_triage : Triage.t;
  mutable h_execs : int;
}

let create ?(limits = Minidb.Limits.default) ~profile () =
  { h_profile = profile; h_limits = limits;
    h_virgin = Coverage.Bitmap.create ();
    h_exec_map = Coverage.Bitmap.create ();
    h_triage = Triage.create (); h_execs = 0 }

let profile t = t.h_profile

let execute t tc =
  t.h_execs <- t.h_execs + 1;
  Coverage.Bitmap.reset t.h_exec_map;
  let engine =
    Minidb.Engine.create ~limits:t.h_limits ~profile:t.h_profile
      ~cov:t.h_exec_map ()
  in
  let stats = Minidb.Engine.run_testcase engine tc in
  let news = Coverage.Bitmap.merge_into ~virgin:t.h_virgin t.h_exec_map in
  let crash = stats.Minidb.Engine.rs_crash in
  let crash_is_new =
    match crash with
    | None -> false
    | Some c -> Triage.record t.h_triage ~testcase:tc c
  in
  { o_new_branches = news;
    o_cov_hash = Coverage.Bitmap.hash t.h_exec_map;
    o_crash = crash;
    o_crash_is_new = crash_is_new;
    o_errors = stats.rs_errors;
    o_executed = stats.rs_executed;
    o_cost = stats.rs_cost }

let execs t = t.h_execs

let branches t = Coverage.Bitmap.count_nonzero t.h_virgin

let triage t = t.h_triage

let virgin t = t.h_virgin
