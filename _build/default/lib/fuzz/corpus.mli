(** The standard initial seed corpus.

    Five small test cases covering the everyday CREATE / INSERT / UPDATE /
    DELETE / SELECT / CREATE INDEX patterns. Every statement type used
    here is supported by all four dialects, so every fuzzer starts from
    the same baseline, like the paper's shared default seed setup. *)

val initial : Minidb.Profile.t -> Sqlcore.Ast.testcase list
(** Seeds filtered to the profile's supported types (a no-op for the
    shipped corpus, by construction). *)

val raw_sql : string list
(** The seed texts, for tools and documentation. *)
