type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: fast, well distributed, and trivially reproducible. *)
let int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t = { state = int64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod n

let bool t = Int64.logand (int64 t) 1L = 1L

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x *. (r /. 9007199254740992.0)

let ratio t num den = int t den < num

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let choose_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.choose_arr: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t k xs =
  let a = Array.of_list xs in
  shuffle t a;
  let n = min k (Array.length a) in
  Array.to_list (Array.sub a 0 n)
