(** Growable array, used for the synthesis vector [S] of Algorithm 3 and
    other append-heavy accumulation. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val last : 'a t -> 'a option

val clear : 'a t -> unit

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val copy : 'a t -> 'a t
