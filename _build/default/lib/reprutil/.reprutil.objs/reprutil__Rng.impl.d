lib/reprutil/rng.ml: Array Int64 List
