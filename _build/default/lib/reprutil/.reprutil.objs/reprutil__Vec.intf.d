lib/reprutil/vec.mli:
