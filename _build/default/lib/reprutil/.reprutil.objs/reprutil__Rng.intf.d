lib/reprutil/rng.mli:
