lib/reprutil/vec.ml: Array List Printf
