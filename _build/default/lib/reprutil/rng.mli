(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the repository flows through values of this type so
    that every experiment is reproducible from a single integer seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split t] draws from [t] and returns a new generator whose stream is
    statistically independent of subsequent draws from [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val ratio : t -> int -> int -> bool
(** [ratio t num den] is [true] with probability [num/den]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)

val choose_arr : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements, preserving
    no particular order. *)
