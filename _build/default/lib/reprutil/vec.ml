type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let check t i name =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds (len %d)" name i t.len)

let get t i =
  check t i "get";
  t.data.(i)

let set t i v =
  check t i "set";
  t.data.(i) <- v

let grow t v =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let nd = Array.make ncap v in
  Array.blit t.data 0 nd 0 t.len;
  t.data <- nd

let push t v =
  if t.len = Array.length t.data then grow t v;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let clear t = t.len <- 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let copy t = { data = Array.copy t.data; len = t.len }
