(** The four simulated DBMS profiles and lookup by name. *)

val pg_sim : Minidb.Profile.t
(** PostgreSQL-sim: the widest type inventory; rules, NOTIFY, COPY,
    DML-in-WITH, materialized views. *)

val mysql_sim : Minidb.Profile.t
(** MySQL-sim: REPLACE, HANDLER, LOCK TABLES, SHOW family. *)

val mariadb_sim : Minidb.Profile.t
(** MariaDB-sim: MySQL surface plus sequences and INTERSECT/EXCEPT. *)

val comdb2_sim : Minidb.Profile.t
(** Comdb2-sim: a 24-type SQL surface, like the paper reports. *)

val all : Minidb.Profile.t list
(** In the paper's order: PostgreSQL, MySQL, MariaDB, Comdb2. *)

val by_name : string -> Minidb.Profile.t option
(** Case-insensitive lookup by profile name (e.g. ["postgresql"]). *)
