open Sqlcore.Stmt_type

let universe = all

let without excluded =
  List.filter (fun ty -> not (List.mem ty excluded)) universe

(* PostgreSQL-sim: everything except the MySQL-family dialect surface. *)
let pg =
  without
    [ Replace_into; Load_data; Describe; Show_tables; Show_columns;
      Show_status; Lock_tables; Unlock_tables; Set_global_var; Set_names;
      Flush; Optimize_table; Check_table; Repair_table; Use_db; Do_expr;
      Handler_open; Handler_read; Handler_close; Kill_query; Rename_table;
      Pragma; Create_database; Drop_database ]

(* MySQL-sim: no rules, COPY, NOTIFY family, sequences, matviews, ... *)
let mysql =
  without
    [ Create_rule; Drop_rule; Create_materialized_view; Refresh_matview;
      Create_schema; Drop_schema; Create_sequence; Drop_sequence;
      Alter_sequence; Copy_to; Copy_from; Notify; Listen; Unlisten; Discard;
      Vacuum; Checkpoint; Cluster; Comment_on; Reset_var; Table_stmt;
      Values_stmt; Select_intersect; Select_except; With_dml; Pragma;
      Reindex; Alter_table_alter_type; Alter_table_rename_column; Set_role;
      Alter_system ]

(* MariaDB-sim: the MySQL surface plus sequences and INTERSECT/EXCEPT. *)
let mariadb =
  let extra =
    [ Create_sequence; Drop_sequence; Alter_sequence; Select_intersect;
      Select_except ]
  in
  List.filter (fun ty -> List.mem ty mysql || List.mem ty extra) universe

(* Comdb2-sim: exactly the 24 types of the paper's Table IV. *)
let comdb2 =
  [ Create_table; Drop_table; Create_index; Create_unique_index; Drop_index;
    Alter_table_add_column; Alter_table_drop_column; Truncate; Insert;
    Insert_select; Update; Delete; Select; Select_union; With_select;
    Values_stmt; Explain; Begin_txn; Commit_txn; Rollback_txn; Set_var;
    Pragma; Analyze; Grant ]
