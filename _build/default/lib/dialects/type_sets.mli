(** Statement-type inventories of the four simulated DBMSs.

    The paper's Table IV reports 188 / 158 / 160 / 24 statement types for
    PostgreSQL / MySQL / MariaDB / Comdb2. Our universe is smaller
    (94 types), but the sets below preserve the ordering and the spread
    that drive the paper's correlation between type count and coverage
    improvement: PG > MariaDB > MySQL >> Comdb2, with Comdb2 at exactly
    24. *)

val pg : Sqlcore.Stmt_type.t list

val mysql : Sqlcore.Stmt_type.t list

val mariadb : Sqlcore.Stmt_type.t list

val comdb2 : Sqlcore.Stmt_type.t list
