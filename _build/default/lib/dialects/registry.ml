open Minidb

let pg_sim =
  Profile.make ~name:"PostgreSQL" ~flavor:Profile.Pg ~types:Type_sets.pg
    ~bugs:Bug_inventory.pg

let mysql_sim =
  Profile.make ~name:"MySQL" ~flavor:Profile.Mysql ~types:Type_sets.mysql
    ~bugs:Bug_inventory.mysql

let mariadb_sim =
  Profile.make ~name:"MariaDB" ~flavor:Profile.Mariadb
    ~types:Type_sets.mariadb ~bugs:Bug_inventory.mariadb

let comdb2_sim =
  Profile.make ~name:"Comdb2" ~flavor:Profile.Comdb2
    ~types:Type_sets.comdb2 ~bugs:Bug_inventory.comdb2

let all = [ pg_sim; mysql_sim; mariadb_sim; comdb2_sim ]

let by_name name =
  let n = String.lowercase_ascii name in
  List.find_opt
    (fun p -> String.lowercase_ascii (Profile.name p) = n)
    all
