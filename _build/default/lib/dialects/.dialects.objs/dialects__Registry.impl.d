lib/dialects/registry.ml: Bug_inventory List Minidb Profile String Type_sets
