lib/dialects/type_sets.mli: Sqlcore
