lib/dialects/type_sets.ml: List Sqlcore
