lib/dialects/bug_inventory.mli: Minidb
