lib/dialects/registry.mli: Minidb
