lib/dialects/bug_inventory.ml: Hashtbl List Minidb Printf Reprutil Sqlcore String Type_sets
