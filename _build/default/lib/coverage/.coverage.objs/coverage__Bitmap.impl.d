lib/coverage/bitmap.ml: Bytes Char Int64
