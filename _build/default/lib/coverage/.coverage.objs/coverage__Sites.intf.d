lib/coverage/sites.mli:
