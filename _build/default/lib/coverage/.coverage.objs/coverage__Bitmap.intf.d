lib/coverage/bitmap.mli:
