lib/coverage/sites.ml: Hashtbl List Option
