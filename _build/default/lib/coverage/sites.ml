let by_name : (string, int) Hashtbl.t = Hashtbl.create 512

let by_id : (int, string) Hashtbl.t = Hashtbl.create 512

let next = ref 0

let register name =
  match Hashtbl.find_opt by_name name with
  | Some id -> id
  | None ->
    let id = !next in
    incr next;
    Hashtbl.replace by_name name id;
    Hashtbl.replace by_id id name;
    id

let count () = !next

let name_of id = Hashtbl.find_opt by_id id

let all () =
  List.init !next (fun id ->
      (id, Option.value ~default:"?" (Hashtbl.find_opt by_id id)))
