(** Global registry of named coverage probe sites.

    Each instrumented branch point in MiniDB registers a stable name once
    at module initialisation ([let s = Sites.register "exec.select.sort"])
    and then fires [Bitmap.probe ~site:s ~key] during execution. Names make
    coverage reports and debugging legible. *)

val register : string -> int
(** Idempotent: registering the same name twice returns the same id. *)

val count : unit -> int
(** Number of registered sites. *)

val name_of : int -> string option

val all : unit -> (int * string) list
(** All registered sites, by id. *)
