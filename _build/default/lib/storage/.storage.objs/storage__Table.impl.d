lib/storage/table.ml: Array List Option Reprutil Sqlcore String Value Vec
