lib/storage/table.mli: Sqlcore Value
