lib/storage/value.mli: Sqlcore
