lib/storage/value.ml: Bool Float Hashtbl Int Int64 Printf Sqlcore String
