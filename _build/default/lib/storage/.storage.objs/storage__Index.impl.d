lib/storage/index.ml: List Map Value
