(** Runtime SQL values and their coercion / comparison semantics. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool

val equal : t -> t -> bool
(** Structural equality (NULL = NULL holds here; SQL three-valued equality
    is {!compare_sql}). *)

val compare_sql : t -> t -> int option
(** SQL comparison: [None] when either side is NULL (unknown), otherwise
    [Some c] with numeric cross-type comparison (INT vs FLOAT compares
    numerically, BOOL compares as 0/1, TEXT compares lexicographically;
    comparing TEXT with a number compares the number's text form). *)

val compare_total : t -> t -> int
(** Total order used by ORDER BY, DISTINCT, GROUP BY and indexes:
    NULL < BOOL < numbers < TEXT. *)

val is_truthy : t -> bool
(** WHERE-clause truth: NULL and FALSE and 0 and "" are false. *)

val type_name : t -> string

val coerce : t -> Sqlcore.Ast.data_type -> (t, string) result
(** Column-type coercion applied on insert/update. VARCHAR truncates to
    its declared width; YEAR accepts 1901..2155 (or 0), like MySQL. *)

val of_literal : Sqlcore.Ast.literal -> t

val to_display : t -> string
(** Rendering used by COPY TO STDOUT and result dumps. *)

val hash_value : t -> int
