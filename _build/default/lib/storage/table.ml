open Reprutil

type col = {
  c_name : string;
  c_type : Sqlcore.Ast.data_type;
  c_not_null : bool;
  c_primary : bool;
  c_unique : bool;
  c_default : Value.t option;
  c_zerofill : bool;
}

type t = {
  mutable t_name : string;
  t_temp : bool;
  mutable t_cols : col array;
  t_rows : (int * Value.t array) Vec.t;
  mutable next_rowid : int;
}

let create ~name ~temp cols =
  { t_name = name; t_temp = temp; t_cols = Array.of_list cols;
    t_rows = Vec.create (); next_rowid = 0 }

let col_of_def (d : Sqlcore.Ast.col_def) =
  { c_name = d.col_name;
    c_type = d.col_type;
    c_not_null = d.not_null || d.primary_key;
    c_primary = d.primary_key;
    c_unique = d.unique || d.primary_key;
    c_default = Option.map Value.of_literal d.default;
    c_zerofill = d.zerofill }

let name t = t.t_name

let set_name t n = t.t_name <- n

let is_temp t = t.t_temp

let cols t = t.t_cols

let col_index t name =
  let n = Array.length t.t_cols in
  let rec loop i =
    if i >= n then None
    else if String.equal t.t_cols.(i).c_name name then Some i
    else loop (i + 1)
  in
  loop 0

let arity t = Array.length t.t_cols

let row_count t = Vec.length t.t_rows

let insert t row =
  let id = t.next_rowid in
  t.next_rowid <- id + 1;
  Vec.push t.t_rows (id, row);
  id

let find_row t rowid =
  let n = Vec.length t.t_rows in
  let rec loop i =
    if i >= n then None
    else
      let id, row = Vec.get t.t_rows i in
      if id = rowid then Some row else loop (i + 1)
  in
  loop 0

let update_row t rowid row =
  let n = Vec.length t.t_rows in
  let rec loop i =
    if i < n then begin
      let id, _ = Vec.get t.t_rows i in
      if id = rowid then Vec.set t.t_rows i (id, row) else loop (i + 1)
    end
  in
  loop 0

let delete_rows t pred =
  let kept = Vec.create () in
  let deleted = ref 0 in
  Vec.iter
    (fun (id, row) ->
       if pred id then incr deleted else Vec.push kept (id, row))
    t.t_rows;
  if !deleted > 0 then begin
    Vec.clear t.t_rows;
    Vec.iter (Vec.push t.t_rows) kept
  end;
  !deleted

let truncate t =
  let n = Vec.length t.t_rows in
  Vec.clear t.t_rows;
  n

let iter f t = Vec.iter (fun (id, row) -> f id row) t.t_rows

let to_rows t = Vec.to_list t.t_rows

let add_column t col =
  t.t_cols <- Array.append t.t_cols [| col |];
  let filler = Option.value ~default:Value.Null col.c_default in
  let n = Vec.length t.t_rows in
  for i = 0 to n - 1 do
    let id, row = Vec.get t.t_rows i in
    Vec.set t.t_rows i (id, Array.append row [| filler |])
  done

let drop_column t pos =
  let keep_cols =
    Array.of_list
      (List.filteri (fun i _ -> i <> pos) (Array.to_list t.t_cols))
  in
  t.t_cols <- keep_cols;
  let n = Vec.length t.t_rows in
  for i = 0 to n - 1 do
    let id, row = Vec.get t.t_rows i in
    let row' =
      Array.of_list (List.filteri (fun j _ -> j <> pos) (Array.to_list row))
    in
    Vec.set t.t_rows i (id, row')
  done

let rename_column t pos name =
  let cols = Array.copy t.t_cols in
  cols.(pos) <- { cols.(pos) with c_name = name };
  t.t_cols <- cols

let copy t =
  let rows = Vec.create () in
  Vec.iter (fun (id, row) -> Vec.push rows (id, Array.copy row)) t.t_rows;
  { t_name = t.t_name; t_temp = t.t_temp; t_cols = Array.copy t.t_cols;
    t_rows = rows; next_rowid = t.next_rowid }

let change_column_type t pos dt =
  let cols = Array.copy t.t_cols in
  cols.(pos) <- { cols.(pos) with c_type = dt };
  t.t_cols <- cols;
  let n = Vec.length t.t_rows in
  for i = 0 to n - 1 do
    let id, row = Vec.get t.t_rows i in
    let row = Array.copy row in
    (row.(pos) <-
       (match Value.coerce row.(pos) dt with
        | Ok v -> v
        | Error _ -> Value.Null));
    Vec.set t.t_rows i (id, row)
  done
