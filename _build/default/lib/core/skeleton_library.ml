open Sqlcore
module Vec = Reprutil.Vec
module Rng = Reprutil.Rng

type t = {
  cap : int;
  by_type : Ast.stmt Vec.t array;  (* indexed by Stmt_type.to_index *)
  seen : (string, unit) Hashtbl.t;
  mutable total : int;
}

let create ?(cap_per_type = 64) () =
  { cap = cap_per_type;
    by_type = Array.init Stmt_type.count (fun _ -> Vec.create ());
    seen = Hashtbl.create 256;
    total = 0 }

(* Eviction is deterministic given the store order: replace the slot the
   size hash points at. *)
let harvest t tc =
  let stored = ref 0 in
  List.iter
    (fun stmt ->
       let key = Sql_printer.stmt stmt in
       if not (Hashtbl.mem t.seen key) then begin
         Hashtbl.replace t.seen key ();
         let idx = Stmt_type.to_index (Ast.type_of_stmt stmt) in
         let vec = t.by_type.(idx) in
         if Vec.length vec < t.cap then begin
           Vec.push vec stmt;
           t.total <- t.total + 1
         end
         else Vec.set vec (Hashtbl.hash key mod t.cap) stmt;
         incr stored
       end)
    tc;
  !stored

let pick t rng ty =
  let vec = t.by_type.(Stmt_type.to_index ty) in
  let n = Vec.length vec in
  if n = 0 then None else Some (Vec.get vec (Rng.int rng n))

let count t = t.total

let types_covered t =
  Array.fold_left
    (fun acc vec -> if Vec.length vec > 0 then acc + 1 else acc)
    0 t.by_type
