open Sqlcore
open Sqlcore.Ast

type col = { sc_name : string; sc_type : Ast.data_type }

type t = {
  mutable tbl : (string * col list) list;
  mutable vws : string list;
  mutable idx : (string * string) list;
  mutable trg : string list;
  mutable rls : string list;
  mutable seqs : string list;
  mutable usrs : string list;
  mutable preps : string list;
  mutable counter : int;
}

let empty () =
  { tbl = []; vws = []; idx = []; trg = []; rls = []; seqs = [];
    usrs = [ "root" ]; preps = []; counter = 0 }

let cols_of_defs defs =
  List.map (fun (d : col_def) -> { sc_name = d.col_name; sc_type = d.col_type })
    defs

let remove_assoc_str name l = List.filter (fun (n, _) -> n <> name) l

let apply t stmt =
  match stmt with
  | S_create_table { name; cols; _ } ->
    t.tbl <- (name, cols_of_defs cols) :: remove_assoc_str name t.tbl
  | S_create_view { name; _ } ->
    if not (List.mem name t.vws) then t.vws <- name :: t.vws
  | S_create_index { name; table; _ } ->
    t.idx <- (name, table) :: remove_assoc_str name t.idx
  | S_create_trigger { name; _ } ->
    if not (List.mem name t.trg) then t.trg <- name :: t.trg
  | S_create_rule { name; _ } ->
    if not (List.mem name t.rls) then t.rls <- name :: t.rls
  | S_create_sequence { name; _ } ->
    if not (List.mem name t.seqs) then t.seqs <- name :: t.seqs
  | S_create_user { user; _ } ->
    if not (List.mem user t.usrs) then t.usrs <- user :: t.usrs
  | S_drop { target; _ } -> (
      match target with
      | D_table n -> t.tbl <- remove_assoc_str n t.tbl
      | D_view n -> t.vws <- List.filter (( <> ) n) t.vws
      | D_index n -> t.idx <- remove_assoc_str n t.idx
      | D_trigger n -> t.trg <- List.filter (( <> ) n) t.trg
      | D_rule (n, _) -> t.rls <- List.filter (( <> ) n) t.rls
      | D_sequence n -> t.seqs <- List.filter (( <> ) n) t.seqs
      | D_user n -> t.usrs <- List.filter (( <> ) n) t.usrs
      | D_schema _ | D_database _ -> ())
  | S_alter_table (name, action) -> (
      match List.assoc_opt name t.tbl with
      | None -> ()
      | Some cols -> (
          match action with
          | Add_column d ->
            t.tbl <-
              (name, cols @ [ { sc_name = d.col_name; sc_type = d.col_type } ])
              :: remove_assoc_str name t.tbl
          | Drop_column c ->
            t.tbl <-
              (name, List.filter (fun col -> col.sc_name <> c) cols)
              :: remove_assoc_str name t.tbl
          | Rename_to n2 ->
            t.tbl <- (n2, cols) :: remove_assoc_str name t.tbl
          | Rename_column (a, b) ->
            t.tbl <-
              ( name,
                List.map
                  (fun col ->
                     if col.sc_name = a then { col with sc_name = b } else col)
                  cols )
              :: remove_assoc_str name t.tbl
          | Alter_column_type (c, dt) ->
            t.tbl <-
              ( name,
                List.map
                  (fun col ->
                     if col.sc_name = c then { col with sc_type = dt } else col)
                  cols )
              :: remove_assoc_str name t.tbl))
  | S_rename_table pairs ->
    List.iter
      (fun (a, b) ->
         match List.assoc_opt a t.tbl with
         | None -> ()
         | Some cols -> t.tbl <- (b, cols) :: remove_assoc_str a t.tbl)
      pairs
  | S_prepare { name; _ } ->
    if not (List.mem name t.preps) then t.preps <- name :: t.preps
  | S_deallocate name -> t.preps <- List.filter (( <> ) name) t.preps
  | _ -> ()

let of_testcase tc =
  let t = empty () in
  List.iter (apply t) tc;
  t

let tables t = List.rev t.tbl

let table_cols t name = List.assoc_opt name t.tbl

let views t = List.rev t.vws

let relations t = List.map fst (tables t) @ views t

let indexes t = List.rev t.idx

let sequences t = List.rev t.seqs

let users t = List.rev t.usrs

let prepared t = List.rev t.preps

let pick_table t rng =
  match t.tbl with
  | [] -> None
  | tbls -> Some (Reprutil.Rng.choose rng tbls)

let all_names t =
  List.map fst t.tbl @ t.vws @ List.map fst t.idx @ t.trg @ t.rls @ t.seqs
  @ t.usrs @ t.preps

let fresh t ~prefix =
  let names = all_names t in
  let rec loop () =
    t.counter <- t.counter + 1;
    let candidate = Printf.sprintf "%s%d" prefix t.counter in
    if List.mem candidate names then loop () else candidate
  in
  loop ()
