lib/core/seq_mutation.ml: Ast Instantiate List Reprutil Sqlcore Stmt_type Sym_schema
