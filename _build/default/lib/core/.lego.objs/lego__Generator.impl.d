lib/core/generator.ml: Ast List Printf Reprutil Sqlcore Stmt_type Sym_schema
