lib/core/affinity.mli: Ast Sqlcore Stmt_type
