lib/core/synthesis.mli: Affinity Sqlcore Stmt_type
