lib/core/instantiate.mli: Ast Reprutil Skeleton_library Sqlcore Stmt_type Sym_schema
