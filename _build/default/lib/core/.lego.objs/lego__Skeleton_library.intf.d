lib/core/skeleton_library.mli: Ast Reprutil Sqlcore Stmt_type
