lib/core/seq_mutation.mli: Ast Reprutil Skeleton_library Sqlcore Stmt_type
