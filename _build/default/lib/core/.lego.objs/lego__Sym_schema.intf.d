lib/core/sym_schema.mli: Ast Reprutil Sqlcore
