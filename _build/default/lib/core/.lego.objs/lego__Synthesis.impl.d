lib/core/synthesis.ml: Affinity Hashtbl List Reprutil Sqlcore Stmt_type String
