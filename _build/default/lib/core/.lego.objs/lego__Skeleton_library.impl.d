lib/core/skeleton_library.ml: Array Ast Hashtbl List Reprutil Sql_printer Sqlcore Stmt_type
