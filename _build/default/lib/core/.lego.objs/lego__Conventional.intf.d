lib/core/conventional.mli: Ast Reprutil Sqlcore Sym_schema
