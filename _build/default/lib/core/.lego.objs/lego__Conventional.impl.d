lib/core/conventional.ml: Ast_util Generator Instantiate List Reprutil Sqlcore Sym_schema
