lib/core/affinity.ml: Array Ast Hashtbl List Printf Sqlcore Stmt_type String
