lib/core/instantiate.ml: Ast Ast_util Generator Hashtbl List Reprutil Skeleton_library Sqlcore Sym_schema
