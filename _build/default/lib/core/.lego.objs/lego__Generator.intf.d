lib/core/generator.mli: Ast Reprutil Sqlcore Stmt_type Sym_schema
