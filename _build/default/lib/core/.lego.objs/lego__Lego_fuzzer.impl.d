lib/core/lego_fuzzer.ml: Affinity Ast Conventional Fuzz Generator Instantiate List Minidb Reprutil Seq_mutation Skeleton_library Sqlcore Stmt_type Sym_schema Synthesis
