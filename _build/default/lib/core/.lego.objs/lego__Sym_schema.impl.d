lib/core/sym_schema.ml: Ast List Printf Reprutil Sqlcore
