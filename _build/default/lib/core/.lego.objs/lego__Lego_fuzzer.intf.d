lib/core/lego_fuzzer.mli: Affinity Fuzz Minidb Skeleton_library
