(** Sequence-oriented mutation — the paper's Algorithm 1.

    Given a seed, each statement is mutated by {e substitution} (replace
    it with a statement of a different, randomly chosen type),
    {e insertion} (add a statement of a random type after it), and
    {e deletion}. Replacement statements are instantiated from the
    skeleton library / generator against the schema visible at that point,
    and the whole mutant is re-validated, following SQUIRREL-style
    dependency fixing as the paper describes. *)

open Sqlcore

type op = Substitution | Insertion | Deletion

val op_name : op -> string

val mutate_at :
  Reprutil.Rng.t ->
  skeletons:Skeleton_library.t ->
  types:Stmt_type.t list ->
  Ast.testcase ->
  pos:int ->
  (op * Ast.testcase) list
(** The (up to) three mutants of Algorithm 1's loop body at statement
    [pos]. Deletion is skipped on single-statement seeds. *)

val mutate_all :
  Reprutil.Rng.t ->
  skeletons:Skeleton_library.t ->
  types:Stmt_type.t list ->
  Ast.testcase ->
  (op * Ast.testcase) list
(** Algorithm 1 in full: mutants for every position. *)
