(** Symbolic schema: the lightweight catalog model used for dependency
    analysis during generation, mutation, and instantiation repair.

    Walking a test case front-to-back with {!apply} reconstructs which
    objects exist at each point, so later statements can be repaired to
    reference them (the paper's "the dependencies between different data
    are analyzed, and the AST will be filled with concrete values that
    satisfy all dependencies"). *)

open Sqlcore

type col = { sc_name : string; sc_type : Ast.data_type }

type t

val empty : unit -> t

val of_testcase : Ast.testcase -> t
(** Schema after executing the whole test case. *)

val apply : t -> Ast.stmt -> unit
(** Update the schema with one statement's effect. *)

val tables : t -> (string * col list) list

val table_cols : t -> string -> col list option

val views : t -> string list

val relations : t -> string list
(** Tables then views — anything FROM can name. *)

val indexes : t -> (string * string) list
(** (index, table) pairs. *)

val sequences : t -> string list

val users : t -> string list

val prepared : t -> string list

val pick_table : t -> Reprutil.Rng.t -> (string * col list) option

val fresh : t -> prefix:string -> string
(** A name unused so far, e.g. [v7]. *)
