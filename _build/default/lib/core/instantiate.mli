(** Instantiation of SQL Type Sequences into executable test cases, with
    dependency repair — the paper's three-step instantiation (AST
    synthesis from the library, statement concatenation, validation).

    For each entry of the type sequence a type-matched structure is drawn
    from the skeleton library (or freshly generated when none exists);
    the concatenated candidate is then {e validated}: walking front to
    back with a symbolic schema, dangling table references are remapped to
    objects that exist at that point, unknown column references are
    remapped to real columns, clashing CREATE names are freshened, and
    INSERT arities are corrected — the paper's
    "INSERT INTO v2" → "INSERT INTO v0" example. *)

open Sqlcore

val repair : Reprutil.Rng.t -> Ast.testcase -> Ast.testcase
(** The validation pass alone (also used after mutations). *)

val sequence :
  Reprutil.Rng.t ->
  skeletons:Skeleton_library.t ->
  Stmt_type.t list ->
  Ast.testcase
(** Instantiate a type sequence; the result's type sequence equals the
    input (property-tested). *)

val statement :
  Reprutil.Rng.t ->
  skeletons:Skeleton_library.t ->
  schema:Sym_schema.t ->
  Stmt_type.t ->
  Ast.stmt
(** One statement of the given type against an existing schema (used by
    sequence-oriented mutation). *)
