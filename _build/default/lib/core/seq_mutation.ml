open Sqlcore
module Rng = Reprutil.Rng

type op = Substitution | Insertion | Deletion

let op_name = function
  | Substitution -> "substitution"
  | Insertion -> "insertion"
  | Deletion -> "deletion"

let schema_before tc pos =
  let schema = Sym_schema.empty () in
  List.iteri (fun i s -> if i < pos then Sym_schema.apply schema s) tc;
  schema

let random_type rng types ~not_ty =
  let candidates =
    List.filter (fun ty -> not (Stmt_type.equal ty not_ty)) types
  in
  match candidates with [] -> not_ty | cs -> Rng.choose rng cs

let replace_at tc pos stmt =
  List.mapi (fun i s -> if i = pos then stmt else s) tc

let insert_after tc pos stmt =
  List.concat (List.mapi (fun i s -> if i = pos then [ s; stmt ] else [ s ]) tc)

let delete_at tc pos = List.filteri (fun i _ -> i <> pos) tc

let mutate_at rng ~skeletons ~types tc ~pos =
  match List.nth_opt tc pos with
  | None -> []
  | Some current ->
    let cur_ty = Ast.type_of_stmt current in
    let mutants = ref [] in
    (* Substitution: a different type at the same position. *)
    let sub_ty = random_type rng types ~not_ty:cur_ty in
    let schema = schema_before tc pos in
    let sub_stmt = Instantiate.statement rng ~skeletons ~schema sub_ty in
    mutants :=
      (Substitution, Instantiate.repair rng (replace_at tc pos sub_stmt))
      :: !mutants;
    (* Insertion: a random type after the position. Long seeds are not
       extended further (the paper bounds sequence length to stay
       fuzzing-friendly, challenge C3). *)
    if List.length tc < 24 then begin
    let ins_ty = Rng.choose rng types in
    let schema = schema_before tc (pos + 1) in
    let ins_stmt = Instantiate.statement rng ~skeletons ~schema ins_ty in
    mutants :=
      (Insertion, Instantiate.repair rng (insert_after tc pos ins_stmt))
      :: !mutants
    end;
    (* Deletion. *)
    if List.length tc > 1 then
      mutants :=
        (Deletion, Instantiate.repair rng (delete_at tc pos)) :: !mutants;
    List.rev !mutants

let mutate_all rng ~skeletons ~types tc =
  List.concat
    (List.mapi (fun pos _ -> mutate_at rng ~skeletons ~types tc ~pos) tc)
