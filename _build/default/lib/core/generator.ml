open Sqlcore
open Sqlcore.Ast
module Rng = Reprutil.Rng

let interesting_ints = [| 0; 1; -1; 2; 16; 255; 256; -128; 1024; 65535 |]

let words = [| "alpha"; "beta"; "gamma"; "x"; "name1"; "water"; ""; "zz" |]

let literal rng (dt : data_type) =
  match dt with
  | T_int ->
    if Rng.ratio rng 1 3 then L_int (Rng.choose_arr rng interesting_ints)
    else L_int (Rng.int rng 1000 - 500)
  | T_float -> L_float (float_of_int (Rng.int rng 2000 - 1000) /. 8.0)
  | T_text | T_varchar _ -> L_string (Rng.choose_arr rng words)
  | T_bool -> L_bool (Rng.bool rng)
  | T_year -> L_int (1901 + Rng.int rng 120)

let any_literal rng =
  if Rng.ratio rng 1 8 then L_null
  else
    literal rng
      (Rng.choose rng [ T_int; T_float; T_text; T_bool ])

let scalar_fns = [| "ABS"; "UPPER"; "LOWER"; "LENGTH"; "COALESCE"; "ROUND";
                    "FLOOR"; "TYPEOF"; "REVERSE"; "TRIM"; "HEX"; "SIGN" |]

let arith_ops = [| Add; Sub; Mul; Div; Mod |]

let cmp_ops = [| Eq; Neq; Lt; Le; Gt; Ge |]

let col_ref rng (cols : Sym_schema.col list) =
  match cols with
  | [] -> Lit (any_literal rng)
  | cols -> Col (None, (Rng.choose rng cols).Sym_schema.sc_name)

let rec expr rng ~cols ~depth =
  if depth <= 0 then
    if Rng.bool rng then col_ref rng cols else Lit (any_literal rng)
  else
    match Rng.int rng 10 with
    | 0 | 1 -> col_ref rng cols
    | 2 -> Lit (any_literal rng)
    | 3 ->
      Binop
        ( Rng.choose_arr rng arith_ops,
          expr rng ~cols ~depth:(depth - 1),
          expr rng ~cols ~depth:(depth - 1) )
    | 4 ->
      Binop
        ( Rng.choose_arr rng cmp_ops,
          expr rng ~cols ~depth:(depth - 1),
          expr rng ~cols ~depth:(depth - 1) )
    | 5 ->
      Fn
        ( Rng.choose_arr rng scalar_fns,
          [ expr rng ~cols ~depth:(depth - 1) ] )
    | 6 ->
      Case
        ( [ (expr rng ~cols ~depth:(depth - 1),
             expr rng ~cols ~depth:(depth - 1)) ],
          if Rng.bool rng then Some (expr rng ~cols ~depth:(depth - 1))
          else None )
    | 7 ->
      Cast
        ( expr rng ~cols ~depth:(depth - 1),
          Rng.choose rng [ T_int; T_float; T_text; T_bool ] )
    | 8 -> Unop (Rng.choose rng [ Neg; Not; Bit_not ],
                 expr rng ~cols ~depth:(depth - 1))
    | _ -> col_ref rng cols

let predicate rng ~cols =
  match Rng.int rng 6 with
  | 0 ->
    Binop
      (Rng.choose_arr rng cmp_ops, col_ref rng cols, Lit (any_literal rng))
  | 1 -> Is_null (col_ref rng cols, Rng.bool rng)
  | 2 ->
    Between
      { e = col_ref rng cols;
        lo = Lit (L_int (Rng.int rng 100 - 50));
        hi = Lit (L_int (Rng.int rng 100 + 50));
        negated = Rng.ratio rng 1 4 }
  | 3 ->
    In_list
      { e = col_ref rng cols;
        items = [ Lit (any_literal rng); Lit (any_literal rng) ];
        negated = Rng.ratio rng 1 4 }
  | 4 ->
    Like
      { e = col_ref rng cols;
        pat = Lit (L_string (Rng.choose rng [ "%a%"; "x_"; "%"; "_" ]));
        negated = false }
  | _ ->
    Binop
      ( Rng.choose rng [ And; Or ],
        Binop (Eq, col_ref rng cols, Lit (any_literal rng)),
        Binop (Rng.choose_arr rng cmp_ops, col_ref rng cols,
               Lit (any_literal rng)) )

let window_fns = [| Row_number; Rank; Dense_rank; Lead; Lag; Ntile |]

let window_expr rng ~cols =
  let fn = Rng.choose_arr rng window_fns in
  let args =
    match fn with
    | Row_number | Rank | Dense_rank -> []
    | Lead | Lag ->
      [ col_ref rng cols ]
      @ if Rng.bool rng then [ Lit (L_int (1 + Rng.int rng 3)) ] else []
    | Ntile -> [ Lit (L_int (1 + Rng.int rng 4)) ]
  in
  let over =
    { partition_by = (if Rng.ratio rng 1 3 then [ col_ref rng cols ] else []);
      w_order_by = [ (col_ref rng cols, if Rng.bool rng then Asc else Desc) ];
      frame =
        (if Rng.ratio rng 1 4 then
           Some
             { f_kind = (if Rng.bool rng then F_rows else F_range);
               f_lo = Preceding (Rng.int rng 4);
               f_hi = Following (Rng.int rng 16) }
         else None) }
  in
  Win { fn; args; over }

let agg_expr rng ~cols =
  let fn = Rng.choose rng [ Count; Sum; Avg; Min; Max; Group_concat ] in
  if fn = Count && Rng.bool rng then Agg (Count, false, None)
  else Agg (fn, Rng.ratio rng 1 5, Some (col_ref rng cols))

let pick_relation rng schema =
  let rels = Sym_schema.relations schema in
  match rels with
  | [] -> None
  | rels -> Some (Rng.choose rng rels)

let cols_of rng schema relation =
  match Sym_schema.table_cols schema relation with
  | Some cols when cols <> [] -> cols
  | _ ->
    (* views / unknown: invent plausible column names *)
    ignore rng;
    [ { Sym_schema.sc_name = "c1"; sc_type = T_int };
      { Sym_schema.sc_name = "c2"; sc_type = T_int } ]

let select rng schema ?(allow_window = true) ?(allow_agg = true) () =
  match pick_relation rng schema with
  | None ->
    (* SELECT without FROM *)
    { distinct = false;
      projs = [ Proj (expr rng ~cols:[] ~depth:1, None) ];
      from = None; where = None; group_by = []; having = None;
      order_by = []; limit = None; offset = None }
  | Some rel ->
    let cols = cols_of rng schema rel in
    let join =
      if Rng.ratio rng 1 5 then
        match pick_relation rng schema with
        | Some rel2 when rel2 <> rel ->
          let kind = Rng.choose rng [ Inner; Left; Cross ] in
          let cols2 = cols_of rng schema rel2 in
          Some (rel2, kind, cols2)
        | _ -> None
      else None
    in
    let from =
      match join with
      | None -> From_table { name = rel; alias = None }
      | Some (rel2, kind, cols2) ->
        From_join
          { left = From_table { name = rel; alias = None };
            kind;
            right = From_table { name = rel2; alias = None };
            on =
              (if kind = Cross then None
               else
                 Some
                   (Binop
                      ( Eq,
                        Col (Some rel, (List.hd cols).Sym_schema.sc_name),
                        Col (Some rel2, (List.hd cols2).Sym_schema.sc_name) ))) }
    in
    let grouped = allow_agg && Rng.ratio rng 1 5 in
    let windowed = allow_window && (not grouped) && Rng.ratio rng 1 6 in
    let projs =
      if grouped then
        [ Proj (col_ref rng cols, None); Proj (agg_expr rng ~cols, None) ]
      else if windowed then
        [ Proj (col_ref rng cols, None);
          Proj (window_expr rng ~cols, Some "w") ]
      else if Rng.ratio rng 1 4 then [ Star ]
      else
        List.init
          (1 + Rng.int rng 2)
          (fun _ -> Proj (expr rng ~cols ~depth:2, None))
    in
    { distinct = Rng.ratio rng 1 6;
      projs;
      from = Some from;
      where = (if Rng.ratio rng 1 2 then Some (predicate rng ~cols) else None);
      group_by = (if grouped then [ col_ref rng cols ] else []);
      having =
        (if grouped && Rng.ratio rng 1 3 then
           Some (Binop (Gt, agg_expr rng ~cols, Lit (L_int 0)))
         else None);
      order_by =
        (if Rng.ratio rng 1 3 then
           [ (col_ref rng cols, if Rng.bool rng then Asc else Desc) ]
         else []);
      limit = (if Rng.ratio rng 1 4 then Some (Rng.int rng 16) else None);
      offset = None }

let col_defs rng =
  let n = 1 + Rng.int rng 4 in
  List.init n (fun i ->
      { col_name = Printf.sprintf "c%d" (i + 1);
        col_type =
          Rng.choose rng [ T_int; T_int; T_float; T_text; T_varchar 16; T_bool ];
        not_null = Rng.ratio rng 1 6;
        primary_key = i = 0 && Rng.ratio rng 1 3;
        unique = i > 0 && Rng.ratio rng 1 8;
        default = (if Rng.ratio rng 1 6 then Some (L_int 0) else None);
        zerofill = false })

let values_rows rng (cols : Sym_schema.col list) =
  let n = 1 + Rng.int rng 3 in
  List.init n (fun _ ->
      List.map
        (fun c ->
           if Rng.ratio rng 1 10 then Lit L_null
           else Lit (literal rng c.Sym_schema.sc_type))
        cols)

let table_or_fresh rng schema =
  match Sym_schema.pick_table schema rng with
  | Some (name, cols) -> (name, cols)
  | None ->
    ( Sym_schema.fresh schema ~prefix:"v",
      [ { Sym_schema.sc_name = "c1"; sc_type = T_int } ] )

let insert_stmt rng schema ~use_query =
  let table, cols = table_or_fresh rng schema in
  let source =
    if use_query then
      Src_query (Q_select (select rng schema ~allow_window:false ()))
    else Src_values (values_rows rng cols)
  in
  { i_table = table; i_cols = []; i_source = source;
    i_ignore = Rng.ratio rng 1 4 }

let update_stmt rng schema =
  let table, cols = table_or_fresh rng schema in
  let n_sets = 1 + Rng.int rng (max 1 (List.length cols)) in
  let sets =
    Reprutil.Rng.sample rng n_sets cols
    |> List.map (fun c ->
        (c.Sym_schema.sc_name, expr rng ~cols ~depth:2))
  in
  let sets = if sets = [] then [ ("c1", Lit (L_int 0)) ] else sets in
  { u_table = table; u_sets = sets;
    u_where = (if Rng.ratio rng 2 3 then Some (predicate rng ~cols) else None);
    u_limit = (if Rng.ratio rng 1 8 then Some (Rng.int rng 8) else None) }

let delete_stmt rng schema =
  let table, cols = table_or_fresh rng schema in
  { d_table = table;
    d_where = (if Rng.ratio rng 2 3 then Some (predicate rng ~cols) else None);
    d_limit = (if Rng.ratio rng 1 8 then Some (Rng.int rng 8) else None) }

let dml_for_with rng schema =
  match Rng.int rng 3 with
  | 0 -> W_insert (insert_stmt rng schema ~use_query:false)
  | 1 -> W_update (update_stmt rng schema)
  | _ -> W_delete (delete_stmt rng schema)

let trig_event rng = Rng.choose rng [ Ev_insert; Ev_update; Ev_delete ]

let channel_names = [| "compression"; "alerts"; "chan1"; "events" |]

let var_names = [| "autocommit"; "sql_mode"; "max_heap_size";
                   "explicit_defaults_for_timestamp"; "optimizer_switch" |]

let rec stmt rng schema (ty : Stmt_type.t) : Ast.stmt =
  match ty with
  | Create_table | Create_temp_table ->
    S_create_table
      { temp = ty = Create_temp_table;
        if_not_exists = Rng.ratio rng 1 5;
        name = Sym_schema.fresh schema ~prefix:"v";
        cols = col_defs rng }
  | Create_index | Create_unique_index ->
    let table, cols = table_or_fresh rng schema in
    let col =
      match cols with
      | [] -> "c1"
      | cols -> (Rng.choose rng cols).Sym_schema.sc_name
    in
    S_create_index
      { unique = ty = Create_unique_index;
        name = Sym_schema.fresh schema ~prefix:"i";
        table; cols = [ col ] }
  | Create_view | Create_materialized_view ->
    S_create_view
      { materialized = ty = Create_materialized_view;
        name = Sym_schema.fresh schema ~prefix:"w";
        query = Q_select (select rng schema ~allow_window:false ()) }
  | Create_trigger ->
    let table, _ = table_or_fresh rng schema in
    S_create_trigger
      { name = Sym_schema.fresh schema ~prefix:"tr";
        timing = (if Rng.bool rng then Before else After);
        event = trig_event rng;
        table;
        body = [ S_insert (insert_stmt rng schema ~use_query:(Rng.ratio rng 1 3)) ] }
  | Create_rule ->
    let table, _ = table_or_fresh rng schema in
    let action =
      match Rng.int rng 3 with
      | 0 -> Ra_nothing
      | 1 -> Ra_notify (Rng.choose_arr rng channel_names)
      | _ -> Ra_stmt (S_insert (insert_stmt rng schema ~use_query:false))
    in
    S_create_rule
      { name = Sym_schema.fresh schema ~prefix:"r";
        table;
        event = trig_event rng;
        instead = Rng.ratio rng 2 3;
        action }
  | Create_sequence ->
    S_create_sequence
      { name = Sym_schema.fresh schema ~prefix:"sq";
        start = Rng.int rng 100;
        step = 1 + Rng.int rng 5 }
  | Create_schema -> S_create_schema (Sym_schema.fresh schema ~prefix:"sch")
  | Create_database -> S_create_database (Sym_schema.fresh schema ~prefix:"db")
  | Create_user ->
    S_create_user
      { user = Sym_schema.fresh schema ~prefix:"u"; password = "pw" }
  | Drop_table ->
    let name =
      match Sym_schema.pick_table schema rng with
      | Some (n, _) -> n
      | None -> "v0"
    in
    S_drop { target = D_table name; if_exists = Rng.ratio rng 1 2 }
  | Drop_index ->
    let name =
      match Sym_schema.indexes schema with
      | [] -> "i0"
      | idx -> fst (Rng.choose rng idx)
    in
    S_drop { target = D_index name; if_exists = Rng.ratio rng 1 2 }
  | Drop_view ->
    let name =
      match Sym_schema.views schema with
      | [] -> "w0"
      | vs -> Rng.choose rng vs
    in
    S_drop { target = D_view name; if_exists = Rng.ratio rng 1 2 }
  | Drop_trigger -> S_drop { target = D_trigger "tr1"; if_exists = true }
  | Drop_rule ->
    let table, _ = table_or_fresh rng schema in
    S_drop { target = D_rule ("r1", table); if_exists = true }
  | Drop_sequence ->
    let name =
      match Sym_schema.sequences schema with
      | [] -> "sq0"
      | seqs -> Rng.choose rng seqs
    in
    S_drop { target = D_sequence name; if_exists = Rng.ratio rng 1 2 }
  | Drop_schema -> S_drop { target = D_schema "sch1"; if_exists = true }
  | Drop_database -> S_drop { target = D_database "db1"; if_exists = true }
  | Drop_user ->
    let name =
      match List.filter (( <> ) "root") (Sym_schema.users schema) with
      | [] -> "u0"
      | us -> Rng.choose rng us
    in
    S_drop { target = D_user name; if_exists = Rng.ratio rng 1 2 }
  | Alter_table_add_column ->
    let table, _ = table_or_fresh rng schema in
    S_alter_table
      ( table,
        Add_column
          { col_name = Sym_schema.fresh schema ~prefix:"c";
            col_type = Rng.choose rng [ T_int; T_float; T_text ];
            not_null = false; primary_key = false; unique = false;
            default = (if Rng.bool rng then Some (L_int 0) else None);
            zerofill = false } )
  | Alter_table_drop_column ->
    let table, cols = table_or_fresh rng schema in
    let col =
      match cols with
      | [] -> "c1"
      | cols -> (Rng.choose rng cols).Sym_schema.sc_name
    in
    S_alter_table (table, Drop_column col)
  | Alter_table_rename ->
    let table, _ = table_or_fresh rng schema in
    S_alter_table (table, Rename_to (Sym_schema.fresh schema ~prefix:"v"))
  | Alter_table_rename_column ->
    let table, cols = table_or_fresh rng schema in
    let col =
      match cols with
      | [] -> "c1"
      | cols -> (Rng.choose rng cols).Sym_schema.sc_name
    in
    S_alter_table
      (table, Rename_column (col, Sym_schema.fresh schema ~prefix:"c"))
  | Alter_table_alter_type ->
    let table, cols = table_or_fresh rng schema in
    let col =
      match cols with
      | [] -> "c1"
      | cols -> (Rng.choose rng cols).Sym_schema.sc_name
    in
    S_alter_table
      ( table,
        Alter_column_type (col, Rng.choose rng [ T_int; T_float; T_text ]) )
  | Alter_sequence ->
    let name =
      match Sym_schema.sequences schema with
      | [] -> "sq0"
      | seqs -> Rng.choose rng seqs
    in
    S_alter_sequence { name; step = 1 + Rng.int rng 7 }
  | Alter_user ->
    let user =
      match Sym_schema.users schema with
      | [] -> "root"
      | us -> Rng.choose rng us
    in
    S_alter_user { user; password = "pw2" }
  | Rename_table ->
    let table, _ = table_or_fresh rng schema in
    S_rename_table [ (table, Sym_schema.fresh schema ~prefix:"v") ]
  | Truncate ->
    let table, _ = table_or_fresh rng schema in
    S_truncate table
  | Comment_on ->
    let table, _ = table_or_fresh rng schema in
    S_comment_on { table; comment = "generated" }
  | Insert -> S_insert (insert_stmt rng schema ~use_query:false)
  | Insert_select -> S_insert (insert_stmt rng schema ~use_query:true)
  | Replace_into -> S_replace (insert_stmt rng schema ~use_query:false)
  | Update -> S_update (update_stmt rng schema)
  | Delete -> S_delete (delete_stmt rng schema)
  | Copy_to ->
    if Rng.bool rng then
      let table, _ = table_or_fresh rng schema in
      S_copy_to { src = Cs_table table; header = Rng.bool rng }
    else
      S_copy_to
        { src = Cs_query (Q_select (select rng schema ~allow_window:false ()));
          header = Rng.bool rng }
  | Copy_from ->
    let table, cols = table_or_fresh rng schema in
    S_copy_from
      { table;
        rows =
          List.init (1 + Rng.int rng 2) (fun _ ->
              List.map (fun c -> literal rng c.Sym_schema.sc_type) cols) }
  | Load_data ->
    let table, cols = table_or_fresh rng schema in
    S_load_data
      { table;
        rows =
          List.init (1 + Rng.int rng 2) (fun _ ->
              List.map (fun c -> literal rng c.Sym_schema.sc_type) cols) }
  | Select -> S_select (Q_select (select rng schema ()))
  | Select_union ->
    S_select
      (Q_compound
         ( Q_select (select rng schema ~allow_window:false ()),
           (if Rng.bool rng then Union else Union_all),
           Q_select (select rng schema ~allow_window:false ()) ))
  | Select_intersect ->
    S_select
      (Q_compound
         ( Q_select (select rng schema ~allow_window:false ()),
           Intersect,
           Q_select (select rng schema ~allow_window:false ()) ))
  | Select_except ->
    S_select
      (Q_compound
         ( Q_select (select rng schema ~allow_window:false ()),
           Except,
           Q_select (select rng schema ~allow_window:false ()) ))
  | With_select ->
    S_with
      { ctes =
          [ { cte_name = Sym_schema.fresh schema ~prefix:"cte";
              cte_body =
                W_query (Q_select (select rng schema ~allow_window:false ())) } ];
        body = W_query (Q_select (select rng schema ~allow_window:false ())) }
  | With_dml ->
    (* PostgreSQL-style data-modifying WITH: CTE and/or body is DML. *)
    let cte_is_dml = Rng.bool rng in
    S_with
      { ctes =
          [ { cte_name = Sym_schema.fresh schema ~prefix:"cte";
              cte_body =
                (if cte_is_dml then dml_for_with rng schema
                 else
                   W_query
                     (Q_select (select rng schema ~allow_window:false ()))) } ];
        body =
          (if cte_is_dml && Rng.bool rng then
             W_query (Q_select (select rng schema ~allow_window:false ()))
           else dml_for_with rng schema) }
  | Values_stmt ->
    S_select
      (Q_values
         (List.init (1 + Rng.int rng 3) (fun _ ->
              [ Lit (any_literal rng); Lit (any_literal rng) ])))
  | Table_stmt ->
    let table, _ = table_or_fresh rng schema in
    S_table table
  | Explain ->
    S_explain
      (stmt rng schema
         (Rng.choose rng [ Stmt_type.Select; Stmt_type.Insert; Stmt_type.Update ]))
  | Describe ->
    let table, _ = table_or_fresh rng schema in
    S_describe table
  | Show_tables -> S_show Sh_tables
  | Show_columns ->
    let table, _ = table_or_fresh rng schema in
    S_show (Sh_columns table)
  | Show_variables -> S_show Sh_variables
  | Show_status -> S_show Sh_status
  | Grant ->
    let table, _ = table_or_fresh rng schema in
    let user =
      match List.filter (( <> ) "root") (Sym_schema.users schema) with
      | [] -> "root"
      | us -> Rng.choose rng us
    in
    S_grant
      { privs = Reprutil.Rng.sample rng 2 [ P_select; P_insert; P_update; P_delete; P_all ];
        table; user }
  | Revoke ->
    let table, _ = table_or_fresh rng schema in
    let user =
      match List.filter (( <> ) "root") (Sym_schema.users schema) with
      | [] -> "root"
      | us -> Rng.choose rng us
    in
    S_revoke { privs = [ Rng.choose rng [ P_select; P_all ] ]; table; user }
  | Set_role ->
    let user =
      match Sym_schema.users schema with
      | [] -> "root"
      | us -> Rng.choose rng us
    in
    S_set_role user
  | Begin_txn -> S_begin
  | Commit_txn -> S_commit
  | Rollback_txn -> S_rollback
  | Savepoint -> S_savepoint (Sym_schema.fresh schema ~prefix:"sp")
  | Release_savepoint -> S_release_savepoint "sp1"
  | Rollback_to_savepoint -> S_rollback_to "sp1"
  | Set_transaction ->
    S_set_transaction
      (Rng.choose rng [ Read_committed; Repeatable_read; Serializable ])
  | Lock_tables ->
    let table, _ = table_or_fresh rng schema in
    S_lock_tables
      [ (table, if Rng.bool rng then Lk_read else Lk_write) ]
  | Unlock_tables -> S_unlock_tables
  | Set_var ->
    S_set_var
      { global = false;
        name = Rng.choose_arr rng var_names;
        value = any_literal rng }
  | Set_global_var ->
    S_set_var
      { global = true;
        name = Rng.choose_arr rng var_names;
        value = any_literal rng }
  | Reset_var -> S_reset_var (Rng.choose_arr rng var_names)
  | Set_names -> S_set_names (Rng.choose rng [ "utf8"; "latin1"; "binary" ])
  | Pragma ->
    S_pragma
      { name = Rng.choose rng [ "foreign_keys"; "cache_size"; "page_size" ];
        value = (if Rng.bool rng then Some (L_int (Rng.int rng 4)) else None) }
  | Vacuum ->
    S_vacuum
      (if Rng.bool rng then Some (fst (table_or_fresh rng schema)) else None)
  | Analyze ->
    S_analyze
      (if Rng.bool rng then Some (fst (table_or_fresh rng schema)) else None)
  | Reindex ->
    S_reindex
      (if Rng.bool rng then Some (fst (table_or_fresh rng schema)) else None)
  | Checkpoint -> S_checkpoint
  | Flush -> S_flush (Rng.choose rng [ Fl_tables; Fl_status; Fl_privileges ])
  | Optimize_table -> S_optimize (fst (table_or_fresh rng schema))
  | Check_table -> S_check_table (fst (table_or_fresh rng schema))
  | Repair_table -> S_repair (fst (table_or_fresh rng schema))
  | Notify ->
    S_notify
      { channel = Rng.choose_arr rng channel_names;
        payload = (if Rng.ratio rng 1 3 then Some "payload" else None) }
  | Listen -> S_listen (Rng.choose_arr rng channel_names)
  | Unlisten -> S_unlisten (Rng.choose_arr rng channel_names)
  | Discard ->
    S_discard (Rng.choose rng [ Disc_all; Disc_temp; Disc_plans ])
  | Prepare_stmt ->
    S_prepare
      { name = Sym_schema.fresh schema ~prefix:"p";
        stmt =
          stmt rng schema
            (Rng.choose rng
               [ Stmt_type.Select; Stmt_type.Insert; Stmt_type.Delete ]) }
  | Execute_stmt ->
    let name =
      match Sym_schema.prepared schema with
      | [] -> "p1"
      | ps -> Rng.choose rng ps
    in
    S_execute name
  | Deallocate ->
    let name =
      match Sym_schema.prepared schema with
      | [] -> "p1"
      | ps -> Rng.choose rng ps
    in
    S_deallocate name
  | Use_db -> S_use (Rng.choose rng [ "main"; "db1" ])
  | Do_expr -> S_do (expr rng ~cols:[] ~depth:2)
  | Handler_open -> S_handler_open (fst (table_or_fresh rng schema))
  | Handler_read ->
    S_handler_read
      { table = fst (table_or_fresh rng schema);
        dir = (if Rng.bool rng then H_first else H_next) }
  | Handler_close -> S_handler_close (fst (table_or_fresh rng schema))
  | Alter_system ->
    S_alter_system (Rng.choose rng [ "major_freeze"; "minor_freeze"; "fsync" ])
  | Refresh_matview ->
    let name =
      match Sym_schema.views schema with
      | [] -> "w0"
      | vs -> Rng.choose rng vs
    in
    S_refresh_matview name
  | Kill_query -> S_kill (Rng.int rng 8)
  | Cluster ->
    S_cluster
      (if Rng.bool rng then Some (fst (table_or_fresh rng schema)) else None)
