open Sqlcore
open Sqlcore.Ast
module Rng = Reprutil.Rng

(* --- table-reference repair ---------------------------------------- *)

let fix_tables rng schema stmt =
  let created = List.map snd (Ast_util.objects_created stmt) in
  let known = Sym_schema.relations schema in
  let mapping : (string, string) Hashtbl.t = Hashtbl.create 4 in
  let remap name =
    if List.mem name created then begin
      (* freshen clashing CREATE targets *)
      if List.mem name known then begin
        match Hashtbl.find_opt mapping name with
        | Some n -> n
        | None ->
          let fresh = Sym_schema.fresh schema ~prefix:"v" in
          Hashtbl.replace mapping name fresh;
          fresh
      end
      else name
    end
    else if List.mem name known then name
    else
      match Hashtbl.find_opt mapping name with
      | Some n -> n
      | None -> (
          match Sym_schema.pick_table schema rng with
          | Some (existing, _) ->
            Hashtbl.replace mapping name existing;
            existing
          | None -> name)
  in
  Ast_util.map_table_refs remap stmt

(* --- column-reference repair ---------------------------------------- *)

let referenced_cols schema stmt =
  let tables =
    Ast_util.tables_read stmt @ Ast_util.tables_written stmt
  in
  List.concat_map
    (fun t ->
       match Sym_schema.table_cols schema t with
       | Some cols -> cols
       | None -> [])
    tables

let fix_columns rng schema stmt =
  match referenced_cols schema stmt with
  | [] -> stmt
  | cols ->
    let names = List.map (fun c -> c.Sym_schema.sc_name) cols in
    let pick () = Rng.choose rng names in
    let fix_name n = if List.mem n names then n else pick () in
    let stmt =
      Ast_util.map_exprs
        (function
          | Col (q, n) when not (List.mem n names) -> Col (q, pick ())
          | e -> e)
        stmt
    in
    (match stmt with
     | S_update u ->
       S_update
         { u with u_sets = List.map (fun (c, e) -> (fix_name c, e)) u.u_sets }
     | S_insert i when i.i_cols <> [] ->
       S_insert { i with i_cols = List.map fix_name i.i_cols }
     | S_replace i when i.i_cols <> [] ->
       S_replace { i with i_cols = List.map fix_name i.i_cols }
     | S_create_index ci ->
       (* index columns must belong to the indexed table *)
       (match Sym_schema.table_cols schema ci.table with
        | Some tcols when tcols <> [] ->
          let tnames = List.map (fun c -> c.Sym_schema.sc_name) tcols in
          S_create_index
            { ci with
              cols =
                List.map
                  (fun c ->
                     if List.mem c tnames then c else Rng.choose rng tnames)
                  ci.cols }
        | _ -> stmt)
     | s -> s)

(* --- INSERT arity repair -------------------------------------------- *)

let resize_row rng (cols : Sym_schema.col list) row =
  let arity = List.length cols in
  let n = List.length row in
  if n = arity then row
  else if n > arity then List.filteri (fun i _ -> i < arity) row
  else
    row
    @ List.filteri
        (fun i _ -> i >= n)
        (List.map
           (fun c -> Lit (Generator.literal rng c.Sym_schema.sc_type))
           cols)

let fix_arity rng schema stmt =
  let fix_insert (i : insert) =
    match (i.i_cols, i.i_source, Sym_schema.table_cols schema i.i_table) with
    | [], Src_values rows, Some cols when cols <> [] ->
      { i with i_source = Src_values (List.map (resize_row rng cols) rows) }
    | _ -> i
  in
  let fix_lit_rows table rows =
    match Sym_schema.table_cols schema table with
    | Some cols when cols <> [] ->
      let arity = List.length cols in
      List.map
        (fun row ->
           let n = List.length row in
           if n = arity then row
           else if n > arity then List.filteri (fun i _ -> i < arity) row
           else
             row
             @ List.filteri
                 (fun i _ -> i >= n)
                 (List.map
                    (fun c -> Generator.literal rng c.Sym_schema.sc_type)
                    cols))
        rows
    | _ -> rows
  in
  match stmt with
  | S_insert i -> S_insert (fix_insert i)
  | S_replace i -> S_replace (fix_insert i)
  | S_copy_from { table; rows } ->
    S_copy_from { table; rows = fix_lit_rows table rows }
  | S_load_data { table; rows } ->
    S_load_data { table; rows = fix_lit_rows table rows }
  | S_with { ctes; body } ->
    let fix_body = function
      | W_insert i -> W_insert (fix_insert i)
      | b -> b
    in
    S_with
      { ctes =
          List.map (fun c -> { c with cte_body = fix_body c.cte_body }) ctes;
        body = fix_body body }
  | s -> s

(* Unbounded mutation chains would otherwise grow expressions without
   limit (the paper's C3: seeds that stall the fuzzer). Clamp bottom-up:
   any node whose subtree exceeds the depth budget collapses to a
   literal. *)
let max_expr_depth = 12

let clamp_exprs stmt =
  Ast_util.map_exprs
    (fun e ->
       if Ast_util.expr_depth e > max_expr_depth then Ast.Lit (Ast.L_int 1)
       else e)
    stmt

let repair rng tc =
  let schema = Sym_schema.empty () in
  List.map
    (fun stmt ->
       let stmt = fix_tables rng schema stmt in
       let stmt = fix_columns rng schema stmt in
       let stmt = fix_arity rng schema stmt in
       let stmt = clamp_exprs stmt in
       Sym_schema.apply schema stmt;
       stmt)
    tc

let statement rng ~skeletons ~schema ty =
  let from_library =
    if Rng.ratio rng 7 10 then Skeleton_library.pick skeletons rng ty
    else None
  in
  match from_library with
  | Some s -> s
  | None -> Generator.stmt rng schema ty

let sequence rng ~skeletons types =
  let schema = Sym_schema.empty () in
  let raw =
    List.map
      (fun ty ->
         let s = statement rng ~skeletons ~schema ty in
         Sym_schema.apply schema s;
         s)
      types
  in
  repair rng raw
