(** Fresh statement generation for every statement type.

    Used in three places: sequence-oriented mutation instantiates the
    randomly chosen replacement/insertion type (Algorithm 1), the
    instantiator falls back to fresh generation when the skeleton library
    has no structure for a type, and the generation-based baseline fuzzers
    are built from the same primitives. Generated statements reference the
    symbolic schema's objects when they exist, so most are semantically
    valid; leftover dangling references are repaired by
    {!Instantiate.repair}. *)

open Sqlcore

val literal : Reprutil.Rng.t -> Ast.data_type -> Ast.literal
(** Random literal suited to a column type. *)

val expr :
  Reprutil.Rng.t -> cols:Sym_schema.col list -> depth:int -> Ast.expr
(** Random scalar expression over the given columns. *)

val predicate : Reprutil.Rng.t -> cols:Sym_schema.col list -> Ast.expr
(** Random boolean-ish expression for WHERE/HAVING/ON. *)

val select :
  Reprutil.Rng.t ->
  Sym_schema.t ->
  ?allow_window:bool ->
  ?allow_agg:bool ->
  unit ->
  Ast.select
(** Random single SELECT body against the schema. *)

val stmt : Reprutil.Rng.t -> Sym_schema.t -> Stmt_type.t -> Ast.stmt
(** A fresh statement of exactly the requested type
    ([type_of_stmt (stmt rng schema ty) = ty], property-tested). *)
