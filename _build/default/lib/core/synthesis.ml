open Sqlcore
module Vec = Reprutil.Vec

type t = {
  len : int;
  max_total : int;
  max_per_affinity : int;
  s : Stmt_type.t list Vec.t;
  ps : (int * int, int list ref) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
}

let seq_key types =
  String.concat "," (List.map (fun ty -> string_of_int (Stmt_type.to_index ty)) types)

let ps_bucket t ty len =
  let key = (Stmt_type.to_index ty, len) in
  match Hashtbl.find_opt t.ps key with
  | Some bucket -> bucket
  | None ->
    let bucket = ref [] in
    Hashtbl.replace t.ps key bucket;
    bucket

(* Record a sequence into S and PS; true when it was new. *)
let record t seq =
  let key = seq_key seq in
  if Hashtbl.mem t.seen key then false
  else begin
    Hashtbl.replace t.seen key ();
    Vec.push t.s seq;
    let idx = Vec.length t.s - 1 in
    (match List.rev seq with
     | last :: _ ->
       let bucket = ps_bucket t last (List.length seq) in
       bucket := idx :: !bucket
     | [] -> ());
    true
  end

let create ?(max_len = 5) ?(max_total = 200_000) ?(max_per_affinity = 512)
    ~types () =
  let t =
    { len = max_len; max_total; max_per_affinity; s = Vec.create ();
      ps = Hashtbl.create 256; seen = Hashtbl.create 1024 }
  in
  List.iter (fun ty -> ignore (record t [ ty ])) types;
  t

let max_len t = t.len

let total t = Vec.length t.s

let sequences t = Vec.to_list t.s

let prefix_count t ~ty ~len =
  match Hashtbl.find_opt t.ps (Stmt_type.to_index ty, len) with
  | None -> 0
  | Some bucket -> List.length !bucket

exception Budget

let on_new_affinity t aff (t1, t2) =
  let news = ref [] in
  let produced = ref 0 in
  let emit seq =
    if Vec.length t.s >= t.max_total || !produced >= t.max_per_affinity then
      raise Budget;
    if record t seq then begin
      news := seq :: !news;
      incr produced
    end
  in
  (* Function listSeq of Algorithm 3: extend [seq] (ending in [nodeType],
     of length [level]) with every affinity successor, recording each
     extension. *)
  let rec list_seq level node_type seq =
    if level < t.len then
      List.iter
        (fun next_type ->
           let seq' = seq @ [ next_type ] in
           emit seq';
           list_seq (level + 1) next_type seq')
        (Affinity.successors aff node_type)
  in
  (try
     for level = 1 to t.len - 1 do
       (* Snapshot: extensions recorded below must not feed this loop. *)
       let prefix_indices =
         match Hashtbl.find_opt t.ps (Stmt_type.to_index t1, level) with
         | None -> []
         | Some bucket -> !bucket
       in
       List.iter
         (fun idx ->
            let seq = Vec.get t.s idx @ [ t2 ] in
            emit seq;
            list_seq (level + 1) t2 seq)
         prefix_indices
     done
   with Budget -> ());
  List.rev !news
