lib/minidb/fault.ml: Array Ast Ast_util Format Hashtbl List Printf Sqlcore String
