lib/minidb/limits.ml:
