lib/minidb/planner.mli: Catalog Sqlcore
