lib/minidb/expr_eval.mli: Sqlcore Storage Value
