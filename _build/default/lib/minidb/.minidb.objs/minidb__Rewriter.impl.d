lib/minidb/rewriter.ml: Catalog List Sqlcore
