lib/minidb/errors.mli:
