lib/minidb/errors.ml: Printf
