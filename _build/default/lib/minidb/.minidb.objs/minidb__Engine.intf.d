lib/minidb/engine.mli: Ast Catalog Coverage Errors Executor Fault Limits Profile Sqlcore Stmt_type Storage
