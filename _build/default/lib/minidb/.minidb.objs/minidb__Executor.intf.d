lib/minidb/executor.mli: Ast Catalog Coverage Limits Profile Sqlcore Storage
