lib/minidb/engine.ml: Ast Ast_util Catalog Coverage Errors Executor Fault Hashtbl Limits List Profile Sqlcore Stmt_type
