lib/minidb/catalog.mli: Ast Hashtbl Sqlcore Storage
