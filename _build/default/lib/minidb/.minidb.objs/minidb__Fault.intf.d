lib/minidb/fault.mli: Format Sqlcore
