lib/minidb/rewriter.mli: Catalog Sqlcore
