lib/minidb/planner.ml: Catalog Hashtbl List Printf Sqlcore Storage String
