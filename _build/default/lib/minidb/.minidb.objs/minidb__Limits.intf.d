lib/minidb/limits.mli:
