lib/minidb/catalog.ml: Array Ast Errors Hashtbl List Sqlcore Storage
