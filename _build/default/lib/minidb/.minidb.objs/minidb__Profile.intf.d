lib/minidb/profile.mli: Fault Sqlcore
