lib/minidb/profile.ml: Array Fault List Sqlcore
