lib/minidb/expr_eval.ml: Array Buffer Char Coverage Errors Float Hashtbl List Printf Sqlcore Storage String Value
