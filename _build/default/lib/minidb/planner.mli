(** Access-path selection — the "optimizer" slice of MiniDB.

    Mirrors the order-sensitive optimizer behaviour the paper exploits:
    the chosen path depends on catalog state built up by {e earlier}
    statements (is the table empty? has ANALYZE run? does an index
    exist?), so the same SELECT covers different code depending on the SQL
    Type Sequence before it — the paper's Figure 2 in miniature. *)

type access =
  | Seq_scan
      (** full scan of the heap *)
  | Index_eq of string * Sqlcore.Ast.expr
      (** index name and the equality key expression it serves *)
  | Empty_short
      (** empty-table shortcut: no scan at all *)

val access_tag : access -> int
(** Small int for coverage keys. *)

val conjuncts : Sqlcore.Ast.expr -> Sqlcore.Ast.expr list
(** Split a WHERE clause on top-level ANDs. *)

val choose_access :
  Catalog.t ->
  analyzed:bool ->
  table:string ->
  where:Sqlcore.Ast.expr option ->
  access
(** Pick the access path for a base-table scan. Index equality paths are
    only chosen after ANALYZE has run (statistics exist), like a cautious
    cost-based optimizer. *)

val explain_lines :
  Catalog.t -> analyzed:bool -> Sqlcore.Ast.stmt -> string list
(** Human-readable plan rows for EXPLAIN. *)
