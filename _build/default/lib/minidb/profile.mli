(** A DBMS profile: which statement types a simulated DBMS supports, its
    behavioural flavour, and its seeded bug registry.

    Concrete profiles (PostgreSQL-sim, MySQL-sim, MariaDB-sim, Comdb2-sim)
    are defined in the [dialects] library; the engine only needs this
    record. *)

type flavor = Pg | Mysql | Mariadb | Comdb2

type t

val make :
  name:string ->
  flavor:flavor ->
  types:Sqlcore.Stmt_type.t list ->
  bugs:Fault.bug list ->
  t

val name : t -> string

val flavor : t -> flavor

val types : t -> Sqlcore.Stmt_type.t list

val type_count : t -> int

val bugs : t -> Fault.bug list

val supports : t -> Sqlcore.Stmt_type.t -> bool
(** O(1); unsupported statement types are rejected by the engine with a
    [Not_supported] error, like a real parser rejecting foreign syntax. *)
