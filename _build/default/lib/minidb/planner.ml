open Sqlcore.Ast

type access =
  | Seq_scan
  | Index_eq of string * Sqlcore.Ast.expr
  | Empty_short

let access_tag = function
  | Seq_scan -> 0
  | Index_eq _ -> 1
  | Empty_short -> 2

let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* An equality conjunct [col = const] (either side) usable by an index
   whose first column is [col]. *)
let index_key_of cat table conj =
  let col_and_const a b =
    match (a, b) with
    | Col (_, c), (Lit _ as k) -> Some (c, k)
    | (Lit _ as k), Col (_, c) -> Some (c, k)
    | _ -> None
  in
  match conj with
  | Binop (Eq, a, b) -> (
      match col_and_const a b with
      | None -> None
      | Some (col, key) ->
        let specs = Catalog.indexes_on cat table in
        List.find_map
          (fun (spec : Catalog.index_spec) ->
             match spec.x_cols with
             | first :: _ when String.equal first col ->
               Some (spec.x_name, key)
             | _ -> None)
          specs)
  | _ -> None

let choose_access cat ~analyzed ~table ~where =
  match Hashtbl.find_opt cat.Catalog.tables table with
  | None -> Seq_scan
  | Some tbl ->
    if Storage.Table.row_count tbl = 0 then Empty_short
    else if not analyzed then Seq_scan
    else
      let conjs = match where with None -> [] | Some w -> conjuncts w in
      (match List.find_map (index_key_of cat table) conjs with
       | Some (idx, key) -> Index_eq (idx, key)
       | None -> Seq_scan)

let rec explain_query cat ~analyzed indent (q : query) acc =
  let pad = String.make indent ' ' in
  match q with
  | Q_values rows ->
    (Printf.sprintf "%sValues Scan (rows=%d)" pad (List.length rows)) :: acc
  | Q_compound (a, op, b) ->
    let opname =
      match op with
      | Union -> "Union"
      | Union_all -> "Append"
      | Intersect -> "Intersect"
      | Except -> "Except"
    in
    let acc = (pad ^ opname) :: acc in
    let acc = explain_query cat ~analyzed (indent + 2) a acc in
    explain_query cat ~analyzed (indent + 2) b acc
  | Q_select s ->
    let acc =
      if s.order_by <> [] then (pad ^ "Sort") :: acc else acc
    in
    let acc =
      if s.group_by <> [] then (pad ^ "HashAggregate") :: acc else acc
    in
    let rec from_lines indent f acc =
      let pad = String.make indent ' ' in
      match f with
      | From_table { name; _ } ->
        let line =
          match choose_access cat ~analyzed ~table:name ~where:s.where with
          | Seq_scan -> Printf.sprintf "%sSeq Scan on %s" pad name
          | Index_eq (idx, _) ->
            Printf.sprintf "%sIndex Scan using %s on %s" pad idx name
          | Empty_short ->
            Printf.sprintf "%sResult (empty relation %s)" pad name
        in
        line :: acc
      | From_join { left; kind; right; _ } ->
        let kname =
          match kind with
          | Inner -> "Nested Loop"
          | Left -> "Nested Loop Left Join"
          | Right -> "Nested Loop Right Join"
          | Cross -> "Nested Loop Cross Join"
        in
        let acc = (pad ^ kname) :: acc in
        let acc = from_lines (indent + 2) left acc in
        from_lines (indent + 2) right acc
      | From_subquery { q; _ } ->
        let acc = (pad ^ "Subquery Scan") :: acc in
        explain_query cat ~analyzed (indent + 2) q acc
    in
    (match s.from with
     | None -> (pad ^ "Result") :: acc
     | Some f -> from_lines indent f acc)

let explain_lines cat ~analyzed stmt =
  let lines =
    match stmt with
    | S_select q -> explain_query cat ~analyzed 0 q []
    | S_insert { i_table; _ } | S_replace { i_table; _ } ->
      [ Printf.sprintf "Insert on %s" i_table ]
    | S_update { u_table; _ } -> [ Printf.sprintf "Update on %s" u_table ]
    | S_delete { d_table; _ } -> [ Printf.sprintf "Delete on %s" d_table ]
    | _ -> [ "Utility Statement" ]
  in
  List.rev lines
