type t =
  | No_such_table of string
  | No_such_column of string
  | No_such_object of string * string
  | Duplicate_object of string * string
  | Constraint_violation of string
  | Type_error of string
  | Not_supported of string
  | Permission_denied of string
  | Semantic of string
  | Limit_exceeded of string

exception Sql_error of t

let message = function
  | No_such_table t -> Printf.sprintf "no such table: %s" t
  | No_such_column c -> Printf.sprintf "no such column: %s" c
  | No_such_object (kind, n) -> Printf.sprintf "no such %s: %s" kind n
  | Duplicate_object (kind, n) ->
    Printf.sprintf "%s already exists: %s" kind n
  | Constraint_violation msg -> "constraint violation: " ^ msg
  | Type_error msg -> "type error: " ^ msg
  | Not_supported what -> "not supported by this DBMS: " ^ what
  | Permission_denied what -> "permission denied: " ^ what
  | Semantic msg -> "semantic error: " ^ msg
  | Limit_exceeded what -> "resource limit exceeded: " ^ what

let fail e = raise (Sql_error e)

let failf fmt = Printf.ksprintf (fun msg -> fail (Semantic msg)) fmt
