type t = {
  max_rows_per_table : int;
  max_statements : int;
  max_result_rows : int;
  max_view_depth : int;
  max_trigger_depth : int;
  max_join_tables : int;
}

let default =
  { max_rows_per_table = 2048;
    max_statements = 256;
    max_result_rows = 8192;
    max_view_depth = 8;
    max_trigger_depth = 4;
    max_join_tables = 6 }

let tiny =
  { max_rows_per_table = 8;
    max_statements = 8;
    max_result_rows = 16;
    max_view_depth = 2;
    max_trigger_depth = 1;
    max_join_tables = 2 }
