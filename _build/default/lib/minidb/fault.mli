(** Fault injection: seeded memory-safety bugs and their triggers.

    The paper finds real ASan-detected bugs; a simulated DBMS has none, so
    we seed a registry of bugs whose triggers are predicates over the
    executed {e SQL Type Sequence window} plus engine state — mirroring the
    paper's finding that the bugs hide behind unexpected type sequences
    (e.g. Fig. 7's [CREATE RULE -> NOTIFY -> COPY -> WITH] SEGV). The
    engine evaluates every registered bug after each statement; a match
    raises {!Crashed} with a synthetic call stack used for
    deduplication, the analogue of an ASan report. *)

(** Bug kinds of Table I. *)
type kind =
  | Uaf   (** use-after-free *)
  | Bof   (** buffer overflow *)
  | Sbof  (** stack buffer overflow *)
  | Hbof  (** heap buffer overflow *)
  | Af    (** assertion failure *)
  | Segv  (** segmentation violation *)
  | Uap   (** use-after-poison *)
  | Npd   (** null pointer dereference *)
  | Ub    (** undefined behaviour *)

val kind_name : kind -> string
(** Short display name, e.g. ["SEGV"]. *)

val kind_of_name : string -> kind option

(** Features of the currently executing statement that triggers may
    require, computed from its AST. *)
type stmt_feature =
  | F_window      (** contains a window function *)
  | F_subquery
  | F_aggregate
  | F_group_by
  | F_order_by
  | F_join
  | F_distinct
  | F_having
  | F_ignore      (** INSERT IGNORE flag *)
  | F_compound    (** UNION / INTERSECT / EXCEPT *)
  | F_where
  | F_offset      (** has an OFFSET clause *)
  | F_limit

(** Trigger condition DSL. *)
type cond =
  | Subseq of Sqlcore.Stmt_type.t list
      (** the listed types occur contiguously, in order, somewhere in the
          recent type window (which ends at the current statement) *)
  | Ends_with of Sqlcore.Stmt_type.t list
      (** the window ends with exactly these types *)
  | State of string
      (** a named engine predicate holds (see {!Engine} docs) *)
  | Stmt_has of stmt_feature
  | All of cond list
  | Any of cond list
  | Not of cond

type bug = {
  bug_id : string;        (** stable internal id, unique per dialect *)
  identifier : string;    (** public identifier: CVE / MDEV / BUG number *)
  component : string;     (** DBMS component of Table I *)
  kind : kind;
  cond : cond;
}

type crash = {
  c_bug : bug;
  c_stack : string list;  (** synthetic call stack for deduplication *)
}

exception Crashed of crash

(** Context a trigger is evaluated against. *)
type ctx = {
  window : Sqlcore.Stmt_type.t list;
      (** recent statement types, oldest first, current last *)
  stmt : Sqlcore.Ast.stmt;
  state : string -> bool;
}

val features_of_stmt : Sqlcore.Ast.stmt -> stmt_feature list

val matches : cond -> ctx -> bool

val check : bug list -> ctx -> unit
(** Raise {!Crashed} for the first matching bug, if any. *)

val stack_of_bug : bug -> string list
(** Deterministic synthetic stack derived from the bug identity. *)

val pp_crash : Format.formatter -> crash -> unit
