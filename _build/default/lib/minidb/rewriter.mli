(** Query-rewrite phase: INSTEAD-rule application for DML.

    This is the component at the heart of the paper's PostgreSQL case
    study (Fig. 7/8): when a DML statement targets a table that has an
    [ON <event> DO INSTEAD ...] rule, the statement is replaced by the
    rule's action. The executor consults {!rewrite_dml} before running any
    INSERT / UPDATE / DELETE — including ones nested in a [WITH] clause,
    which is exactly where real PostgreSQL missed the NOTIFY case. *)

type decision =
  | No_rule                               (** execute the DML as written *)
  | Instead_nothing of Catalog.rule       (** DO INSTEAD NOTHING *)
  | Instead_notify of Catalog.rule * string  (** DO INSTEAD NOTIFY chan *)
  | Instead_stmt of Catalog.rule * Sqlcore.Ast.stmt
      (** DO INSTEAD <statement> *)

val decision_tag : decision -> int
(** Small int for coverage keys. *)

val rewrite_dml :
  Catalog.t -> table:string -> event:Sqlcore.Ast.trig_event -> decision
(** First matching INSTEAD rule wins; non-INSTEAD rules are returned by
    {!also_rules} and executed after the original DML. *)

val also_rules :
  Catalog.t -> table:string -> event:Sqlcore.Ast.trig_event ->
  Catalog.rule list
(** Non-INSTEAD rules ([DO ALSO] semantics). *)
