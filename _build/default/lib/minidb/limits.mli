(** Resource limits enforced by the engine.

    The paper's challenge C3 is seeds that stall the fuzzer (SQUIRREL hung
    23 minutes on a 945-statement seed). MiniDB bounds every dimension a
    test case could blow up, so a fuzzing campaign can never wedge. *)

type t = {
  max_rows_per_table : int;   (** inserts beyond this raise Limit_exceeded *)
  max_statements : int;       (** statements per test case *)
  max_result_rows : int;      (** rows a query may produce *)
  max_view_depth : int;       (** view/rule/trigger rewrite recursion *)
  max_trigger_depth : int;
  max_join_tables : int;
}

val default : t

val tiny : t
(** Small limits for tests exercising the limit paths. *)
