open Sqlcore.Ast
open Storage

type env = {
  cols : string option -> string -> Value.t option;
  run_query : Sqlcore.Ast.query -> Value.t array list;
  agg : Sqlcore.Ast.agg_fn -> bool -> Sqlcore.Ast.expr option -> Value.t;
  win : Sqlcore.Ast.win_fn -> Sqlcore.Ast.expr list ->
    Sqlcore.Ast.over_clause -> Value.t;
  probe : site:int -> key:int -> unit;
}

let no_agg _ _ _ =
  Errors.fail (Errors.Semantic "aggregate function outside GROUP context")

let no_win _ _ _ =
  Errors.fail (Errors.Semantic "window function in invalid context")

let s_arith = Coverage.Sites.register "eval.arith"
let s_cmp = Coverage.Sites.register "eval.cmp"
let s_logic = Coverage.Sites.register "eval.logic"
let s_like = Coverage.Sites.register "eval.like"
let s_case = Coverage.Sites.register "eval.case"
let s_cast = Coverage.Sites.register "eval.cast"
let s_fn = Coverage.Sites.register "eval.fn"
let s_subq = Coverage.Sites.register "eval.subquery"
let s_null = Coverage.Sites.register "eval.null_path"
let s_divzero = Coverage.Sites.register "eval.div_zero"

let vkind = function
  | Value.Null -> 0
  | Value.Int _ -> 1
  | Value.Float _ -> 2
  | Value.Text _ -> 3
  | Value.Bool _ -> 4

let num_of v =
  match v with
  | Value.Int n -> `I n
  | Value.Float f -> `F f
  | Value.Bool b -> `I (if b then 1 else 0)
  | Value.Text s -> (
      match float_of_string_opt s with
      | Some f -> `F f
      | None ->
        (* MySQL-style lax prefix parse. *)
        `F
          (let n = String.length s in
           let rec scan i =
             if
               i < n
               && ((s.[i] >= '0' && s.[i] <= '9')
                   || s.[i] = '.'
                   || (i = 0 && (s.[i] = '-' || s.[i] = '+')))
             then scan (i + 1)
             else i
           in
           let stop = scan 0 in
           if stop = 0 then 0.0
           else
             try float_of_string (String.sub s 0 stop) with Failure _ -> 0.0))
  | Value.Null -> assert false

let like_match ~pattern text =
  let np = String.length pattern and nt = String.length text in
  (* Classic backtracking wildcard match; patterns are tiny. *)
  let rec go p t =
    if p >= np then t >= nt
    else
      match pattern.[p] with
      | '%' ->
        let rec try_t t = t <= nt && (go (p + 1) t || try_t (t + 1)) in
        try_t t
      | '_' -> t < nt && go (p + 1) (t + 1)
      | c -> t < nt && text.[t] = c && go (p + 1) (t + 1)
  in
  go 0 0

let rec eval env expr =
  match expr with
  | Lit l -> Value.of_literal l
  | Col (q, name) -> (
      match env.cols q name with
      | Some v -> v
      | None -> Errors.fail (Errors.No_such_column name))
  | Unop (op, a) -> eval_unop env op a
  | Binop (op, a, b) -> eval_binop env op a b
  | Fn (name, args) -> eval_fn env name (List.map (eval env) args)
  | Agg (fn, distinct, arg) -> env.agg fn distinct arg
  | Win { fn; args; over } -> env.win fn args over
  | Case (whens, else_) ->
    let rec try_whens i = function
      | [] ->
        env.probe ~site:s_case ~key:(i * 2);
        (match else_ with None -> Value.Null | Some e -> eval env e)
      | (c, v) :: rest ->
        if Value.is_truthy (eval env c) then begin
          env.probe ~site:s_case ~key:((i * 2) + 1);
          eval env v
        end
        else try_whens (i + 1) rest
    in
    try_whens 0 whens
  | Cast (a, dt) -> (
      let v = eval env a in
      env.probe ~site:s_cast ~key:(vkind v);
      match Value.coerce v dt with
      | Ok v -> v
      | Error msg -> Errors.fail (Errors.Type_error msg))
  | Is_null (a, negated) ->
    let v = eval env a in
    Value.Bool (if negated then v <> Value.Null else v = Value.Null)
  | In_list { e; items; negated } -> (
      let v = eval env e in
      if v = Value.Null then begin
        env.probe ~site:s_null ~key:1;
        Value.Null
      end
      else
        let matches_value item_value =
          match Value.compare_sql v item_value with
          | Some 0 -> true
          | _ -> false
        in
        let found =
          List.exists
            (fun item ->
               match item with
               | Subquery q ->
                 (* IN (SELECT ...): membership over every result row *)
                 List.exists
                   (fun row ->
                      Array.length row > 0 && matches_value row.(0))
                   (env.run_query q)
               | item -> matches_value (eval env item))
            items
        in
        Value.Bool (if negated then not found else found))
  | Between { e; lo; hi; negated } -> (
      let v = eval env e in
      let vlo = eval env lo in
      let vhi = eval env hi in
      match (Value.compare_sql vlo v, Value.compare_sql v vhi) with
      | Some a, Some b ->
        let inside = a <= 0 && b <= 0 in
        Value.Bool (if negated then not inside else inside)
      | _ ->
        env.probe ~site:s_null ~key:2;
        Value.Null)
  | Like { e; pat; negated } -> (
      let v = eval env e in
      let p = eval env pat in
      match (v, p) with
      | Value.Null, _ | _, Value.Null ->
        env.probe ~site:s_like ~key:0;
        Value.Null
      | _ ->
        let text =
          match v with Value.Text s -> s | _ -> Value.to_display v
        in
        let pattern =
          match p with Value.Text s -> s | _ -> Value.to_display p
        in
        let m = like_match ~pattern text in
        env.probe ~site:s_like ~key:(if m then 1 else 2);
        Value.Bool (if negated then not m else m))
  | Exists (q, negated) ->
    env.probe ~site:s_subq ~key:0;
    let rows = env.run_query q in
    Value.Bool (if negated then rows = [] else rows <> [])
  | Subquery q -> (
      env.probe ~site:s_subq ~key:1;
      match env.run_query q with
      | [] -> Value.Null
      | [| v |] :: _ -> v
      | row :: _ ->
        if Array.length row = 0 then Value.Null
        else if Array.length row > 1 then
          Errors.fail (Errors.Semantic "scalar subquery returns >1 column")
        else row.(0))

and eval_unop env op a =
  let v = eval env a in
  match (op, v) with
  | _, Value.Null -> Value.Null
  | Neg, Value.Int n -> Value.Int (-n)
  | Neg, Value.Float f -> Value.Float (-.f)
  | Neg, v -> (
      match num_of v with
      | `I n -> Value.Int (-n)
      | `F f -> Value.Float (-.f))
  | Not, v -> Value.Bool (not (Value.is_truthy v))
  | Bit_not, v -> (
      match num_of v with
      | `I n -> Value.Int (lnot n)
      | `F f -> Value.Int (lnot (int_of_float f)))

and eval_binop env op a b =
  match op with
  | And -> (
      (* three-valued logic with short-circuit *)
      let va = eval env a in
      env.probe ~site:s_logic ~key:(vkind va);
      match va with
      | Value.Bool false -> Value.Bool false
      | v when v <> Value.Null && not (Value.is_truthy v) -> Value.Bool false
      | va -> (
          let vb = eval env b in
          match (va, vb) with
          | Value.Null, _ | _, Value.Null -> Value.Null
          | _ -> Value.Bool (Value.is_truthy vb)))
  | Or -> (
      let va = eval env a in
      env.probe ~site:s_logic ~key:(8 + vkind va);
      match va with
      | v when v <> Value.Null && Value.is_truthy v -> Value.Bool true
      | va -> (
          let vb = eval env b in
          match (va, vb) with
          | _ when vb <> Value.Null && Value.is_truthy vb -> Value.Bool true
          | Value.Null, _ | _, Value.Null -> Value.Null
          | _ -> Value.Bool false))
  | Eq | Neq | Lt | Le | Gt | Ge -> (
      let va = eval env a in
      let vb = eval env b in
      let op_tag =
        match op with
        | Eq -> 0 | Neq -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5
        | _ -> 6
      in
      env.probe ~site:s_cmp ~key:((op_tag * 32) + (vkind va * 5) + vkind vb);
      match Value.compare_sql va vb with
      | None -> Value.Null
      | Some c ->
        let r =
          match op with
          | Eq -> c = 0
          | Neq -> c <> 0
          | Lt -> c < 0
          | Le -> c <= 0
          | Gt -> c > 0
          | Ge -> c >= 0
          | _ -> assert false
        in
        Value.Bool r)
  | Concat -> (
      let va = eval env a in
      let vb = eval env b in
      match (va, vb) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | _ -> Value.Text (Value.to_display va ^ Value.to_display vb))
  | Add | Sub | Mul | Div | Mod -> (
      let va = eval env a in
      let vb = eval env b in
      let op_tag =
        match op with
        | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Mod -> 4 | _ -> 5
      in
      env.probe ~site:s_arith
        ~key:((op_tag * 32) + (vkind va * 5) + vkind vb);
      match (va, vb) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | _ -> (
          match (num_of va, num_of vb) with
          | `I x, `I y -> (
              match op with
              | Add -> Value.Int (x + y)
              | Sub -> Value.Int (x - y)
              | Mul -> Value.Int (x * y)
              | Div ->
                if y = 0 then begin
                  env.probe ~site:s_divzero ~key:0;
                  Value.Null
                end
                else Value.Int (x / y)
              | Mod ->
                if y = 0 then begin
                  env.probe ~site:s_divzero ~key:1;
                  Value.Null
                end
                else Value.Int (x mod y)
              | _ -> assert false)
          | nx, ny ->
            let fx = match nx with `I n -> float_of_int n | `F f -> f in
            let fy = match ny with `I n -> float_of_int n | `F f -> f in
            (match op with
             | Add -> Value.Float (fx +. fy)
             | Sub -> Value.Float (fx -. fy)
             | Mul -> Value.Float (fx *. fy)
             | Div ->
               if fy = 0.0 then begin
                 env.probe ~site:s_divzero ~key:2;
                 Value.Null
               end
               else Value.Float (fx /. fy)
             | Mod ->
               if fy = 0.0 then begin
                 env.probe ~site:s_divzero ~key:3;
                 Value.Null
               end
               else Value.Float (Float.rem fx fy)
             | _ -> assert false)))

and eval_fn env name args =
  let arity_error () =
    Errors.fail (Errors.Semantic (Printf.sprintf "bad arity for %s" name))
  in
  let arg_sig =
    List.fold_left (fun acc v -> (acc * 5) + vkind v) 0 args land 0x1f
  in
  env.probe ~site:s_fn ~key:(((Hashtbl.hash name land 0xff) * 32) + arg_sig);
  let num1 f =
    match args with
    | [ Value.Null ] -> Value.Null
    | [ v ] -> (
        match num_of v with
        | `I n -> f (float_of_int n)
        | `F x -> f x)
    | _ -> arity_error ()
  in
  let text1 f =
    match args with
    | [ Value.Null ] -> Value.Null
    | [ v ] -> f (Value.to_display v)
    | _ -> arity_error ()
  in
  match name with
  | "ABS" -> (
      match args with
      | [ Value.Null ] -> Value.Null
      | [ Value.Int n ] -> Value.Int (abs n)
      | [ v ] -> (
          match num_of v with
          | `I n -> Value.Int (abs n)
          | `F f -> Value.Float (Float.abs f))
      | _ -> arity_error ())
  | "ROUND" -> num1 (fun x -> Value.Float (Float.round x))
  | "FLOOR" -> num1 (fun x -> Value.Int (int_of_float (Float.floor x)))
  | "CEIL" | "CEILING" -> num1 (fun x -> Value.Int (int_of_float (Float.ceil x)))
  | "SQRT" ->
    num1 (fun x -> if x < 0.0 then Value.Null else Value.Float (sqrt x))
  | "SIGN" -> num1 (fun x -> Value.Int (compare x 0.0))
  | "UPPER" -> text1 (fun s -> Value.Text (String.uppercase_ascii s))
  | "LOWER" -> text1 (fun s -> Value.Text (String.lowercase_ascii s))
  | "LENGTH" -> text1 (fun s -> Value.Int (String.length s))
  | "REVERSE" ->
    text1 (fun s ->
        let n = String.length s in
        Value.Text (String.init n (fun i -> s.[n - 1 - i])))
  | "TRIM" -> text1 (fun s -> Value.Text (String.trim s))
  | "HEX" ->
    text1 (fun s ->
        let buf = Buffer.create (String.length s * 2) in
        String.iter
          (fun c -> Buffer.add_string buf (Printf.sprintf "%02X" (Char.code c)))
          s;
        Value.Text (Buffer.contents buf))
  | "TYPEOF" -> (
      match args with
      | [ v ] -> Value.Text (Value.type_name v)
      | _ -> arity_error ())
  | "COALESCE" -> (
      match List.find_opt (fun v -> v <> Value.Null) args with
      | Some v -> v
      | None -> Value.Null)
  | "IFNULL" -> (
      match args with
      | [ a; b ] -> if a = Value.Null then b else a
      | _ -> arity_error ())
  | "NULLIF" -> (
      match args with
      | [ a; b ] -> (
          match Value.compare_sql a b with Some 0 -> Value.Null | _ -> a)
      | _ -> arity_error ())
  | "GREATEST" -> (
      match args with
      | [] -> arity_error ()
      | _ when List.mem Value.Null args -> Value.Null
      | first :: rest ->
        List.fold_left
          (fun acc v -> if Value.compare_total v acc > 0 then v else acc)
          first rest)
  | "LEAST" -> (
      match args with
      | [] -> arity_error ()
      | _ when List.mem Value.Null args -> Value.Null
      | first :: rest ->
        List.fold_left
          (fun acc v -> if Value.compare_total v acc < 0 then v else acc)
          first rest)
  | "CONCAT" ->
    if List.mem Value.Null args then Value.Null
    else Value.Text (String.concat "" (List.map Value.to_display args))
  | "SUBSTR" | "SUBSTRING" -> (
      match args with
      | [ Value.Null; _ ] | [ Value.Null; _; _ ] -> Value.Null
      | [ v; start ] | [ v; start; _ ] ->
        let s = Value.to_display v in
        let n = String.length s in
        let st =
          match num_of start with
          | `I i -> i
          | `F f -> int_of_float f
        in
        let len =
          match args with
          | [ _; _; l ] -> (
              match num_of l with `I i -> i | `F f -> int_of_float f)
          | _ -> n
        in
        let st0 = if st > 0 then st - 1 else if st < 0 then max 0 (n + st) else 0 in
        let len = max 0 (min len (n - st0)) in
        if st0 >= n then Value.Text ""
        else Value.Text (String.sub s st0 len)
      | _ -> arity_error ())
  | _ ->
    Errors.fail (Errors.Semantic (Printf.sprintf "unknown function %s" name))

let eval_bool env e = Value.is_truthy (eval env e)
