(** Scalar expression evaluation.

    The evaluator is parameterised by an {!env} so that the executor can
    plug in column resolution, subquery execution, and — inside grouped or
    windowed projections — aggregate/window results. Every value-type
    combination that changes behaviour fires a coverage probe, giving the
    fuzzers intra-statement coverage to find (the part SQUIRREL-style
    mutation is good at). *)

open Storage

type env = {
  cols : string option -> string -> Value.t option;
      (** resolve a possibly-qualified column; [None] = unknown column *)
  run_query : Sqlcore.Ast.query -> Value.t array list;
      (** execute a subquery and return its rows *)
  agg : Sqlcore.Ast.agg_fn -> bool -> Sqlcore.Ast.expr option -> Value.t;
      (** aggregate value in the current group context *)
  win : Sqlcore.Ast.win_fn -> Sqlcore.Ast.expr list ->
    Sqlcore.Ast.over_clause -> Value.t;
      (** window-function value for the current row *)
  probe : site:int -> key:int -> unit;
}

val no_agg : Sqlcore.Ast.agg_fn -> bool -> Sqlcore.Ast.expr option -> Value.t
(** Raises a semantic error: aggregate outside grouped context. *)

val no_win :
  Sqlcore.Ast.win_fn -> Sqlcore.Ast.expr list -> Sqlcore.Ast.over_clause ->
  Value.t
(** Raises a semantic error: window function in invalid context. *)

val eval : env -> Sqlcore.Ast.expr -> Value.t
(** @raise Errors.Sql_error on type errors, unknown columns/functions. *)

val eval_bool : env -> Sqlcore.Ast.expr -> bool
(** WHERE-truth of an expression (NULL is false). *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE with [%] and [_] wildcards. *)
