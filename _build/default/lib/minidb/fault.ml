type kind = Uaf | Bof | Sbof | Hbof | Af | Segv | Uap | Npd | Ub

let kind_name = function
  | Uaf -> "UAF"
  | Bof -> "BOF"
  | Sbof -> "SBOF"
  | Hbof -> "HBOF"
  | Af -> "AF"
  | Segv -> "SEGV"
  | Uap -> "UAP"
  | Npd -> "NPD"
  | Ub -> "UB"

let kind_of_name = function
  | "UAF" -> Some Uaf
  | "BOF" -> Some Bof
  | "SBOF" -> Some Sbof
  | "HBOF" -> Some Hbof
  | "AF" -> Some Af
  | "SEGV" -> Some Segv
  | "UAP" -> Some Uap
  | "NPD" -> Some Npd
  | "UB" -> Some Ub
  | _ -> None

type stmt_feature =
  | F_window
  | F_subquery
  | F_aggregate
  | F_group_by
  | F_order_by
  | F_join
  | F_distinct
  | F_having
  | F_ignore
  | F_compound
  | F_where
  | F_offset
  | F_limit

type cond =
  | Subseq of Sqlcore.Stmt_type.t list
  | Ends_with of Sqlcore.Stmt_type.t list
  | State of string
  | Stmt_has of stmt_feature
  | All of cond list
  | Any of cond list
  | Not of cond

type bug = {
  bug_id : string;
  identifier : string;
  component : string;
  kind : kind;
  cond : cond;
}

type crash = { c_bug : bug; c_stack : string list }

exception Crashed of crash

type ctx = {
  window : Sqlcore.Stmt_type.t list;
  stmt : Sqlcore.Ast.stmt;
  state : string -> bool;
}

let features_of_stmt stmt =
  let open Sqlcore in
  let feats = ref [] in
  let add f = if not (List.mem f !feats) then feats := f :: !feats in
  if Ast_util.has_window_fn stmt then add F_window;
  if Ast_util.has_subquery stmt then add F_subquery;
  if Ast_util.has_aggregate stmt then add F_aggregate;
  (* Clause-level features require looking at select bodies. *)
  let rec check_query (q : Ast.query) =
    match q with
    | Ast.Q_select s ->
      if s.group_by <> [] then add F_group_by;
      if s.order_by <> [] then add F_order_by;
      if s.having <> None then add F_having;
      if s.distinct then add F_distinct;
      if s.where <> None then add F_where;
      if s.offset <> None then add F_offset;
      if s.limit <> None then add F_limit;
      (match s.from with
       | Some (Ast.From_join _) -> add F_join
       | Some (Ast.From_subquery { q; _ }) -> check_query q
       | Some (Ast.From_table _) | None -> ())
    | Ast.Q_values _ -> ()
    | Ast.Q_compound (a, _, b) ->
      add F_compound;
      check_query a;
      check_query b
  in
  let check_with_body = function
    | Ast.W_query q -> check_query q
    | Ast.W_insert { i_source = Src_query q; _ } -> check_query q
    | Ast.W_insert _ -> ()
    | Ast.W_update { u_where = Some _; _ } -> add F_where
    | Ast.W_update _ -> ()
    | Ast.W_delete { d_where = Some _; _ } -> add F_where
    | Ast.W_delete _ -> ()
  in
  (match stmt with
   | Ast.S_select q -> check_query q
   | Ast.S_create_view { query; _ } -> check_query query
   | Ast.S_copy_to { src = Cs_query q; _ } -> check_query q
   | Ast.S_insert { i_ignore; i_source; _ }
   | Ast.S_replace { i_ignore; i_source; _ } ->
     if i_ignore then add F_ignore;
     (match i_source with Src_query q -> check_query q | Src_values _ -> ())
   | Ast.S_update { u_where = Some _; _ } -> add F_where
   | Ast.S_delete { d_where = Some _; _ } -> add F_where
   | Ast.S_with { ctes; body } ->
     List.iter (fun (c : Ast.cte) -> check_with_body c.cte_body) ctes;
     check_with_body body
   | _ -> ());
  !feats

let rec is_prefix eq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> eq x y && is_prefix eq xs ys

let rec contains_contiguous eq xs ys =
  match ys with
  | [] -> xs = []
  | _ :: rest -> is_prefix eq xs ys || contains_contiguous eq xs rest

let ends_with eq xs ys =
  let lx = List.length xs and ly = List.length ys in
  if lx > ly then false
  else
    let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
    let tail = drop (ly - lx) ys in
    List.for_all2 eq xs tail

let rec matches cond ctx =
  match cond with
  | Subseq types ->
    types <> [] && contains_contiguous Sqlcore.Stmt_type.equal types ctx.window
  | Ends_with types ->
    types <> [] && ends_with Sqlcore.Stmt_type.equal types ctx.window
  | State name -> ctx.state name
  | Stmt_has feat -> List.mem feat (features_of_stmt ctx.stmt)
  | All conds -> List.for_all (fun c -> matches c ctx) conds
  | Any conds -> List.exists (fun c -> matches c ctx) conds
  | Not c -> not (matches c ctx)

let frame_pool =
  [| "plan_query"; "rewrite_target_list"; "eval_expr"; "exec_scan";
     "build_join_rel"; "check_stack_depth"; "heap_insert"; "btree_search";
     "fill_record"; "optimize_group_by"; "make_sort_plan"; "open_table";
     "lock_rows"; "free_item_tree"; "parse_and_resolve"; "fix_fields";
     "copy_row_buffer"; "store_field"; "mem_alloc"; "page_split" |]

let stack_of_bug bug =
  (* Deterministic pseudo-stack: distinct bugs get distinct stacks so that
     stack-hash deduplication separates them, like distinct ASan reports. *)
  let h = ref (Hashtbl.hash (bug.bug_id, bug.identifier)) in
  let frames = ref [] in
  for i = 0 to 3 do
    h := (!h * 0x9E3779B1) + i;
    let idx = abs !h mod Array.length frame_pool in
    frames :=
      Printf.sprintf "%s+0x%x" frame_pool.(idx) (abs !h land 0xfff)
      :: !frames
  done;
  Printf.sprintf "%s_%s" (String.lowercase_ascii bug.component)
    (String.lowercase_ascii (kind_name bug.kind))
  :: !frames

let check bugs ctx =
  match List.find_opt (fun b -> matches b.cond ctx) bugs with
  | None -> ()
  | Some bug -> raise (Crashed { c_bug = bug; c_stack = stack_of_bug bug })

let pp_crash fmt { c_bug; c_stack } =
  Format.fprintf fmt "%s (%s) in %s [%s]@\n  %a" c_bug.bug_id
    (kind_name c_bug.kind) c_bug.component c_bug.identifier
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt "@\n  ")
       Format.pp_print_string)
    c_stack
