type decision =
  | No_rule
  | Instead_nothing of Catalog.rule
  | Instead_notify of Catalog.rule * string
  | Instead_stmt of Catalog.rule * Sqlcore.Ast.stmt

let decision_tag = function
  | No_rule -> 0
  | Instead_nothing _ -> 1
  | Instead_notify _ -> 2
  | Instead_stmt _ -> 3

let rewrite_dml cat ~table ~event =
  let rules = Catalog.rules_on cat table event in
  match List.find_opt (fun (r : Catalog.rule) -> r.r_instead) rules with
  | None -> No_rule
  | Some r -> (
      match r.r_action with
      | Sqlcore.Ast.Ra_nothing -> Instead_nothing r
      | Sqlcore.Ast.Ra_notify chan -> Instead_notify (r, chan)
      | Sqlcore.Ast.Ra_stmt s -> Instead_stmt (r, s))

let also_rules cat ~table ~event =
  List.filter
    (fun (r : Catalog.rule) -> not r.r_instead)
    (Catalog.rules_on cat table event)
