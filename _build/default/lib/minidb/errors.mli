(** Recoverable SQL-level errors.

    These model the DBMS rejecting a statement (semantic error, constraint
    violation, ...): execution of the test case continues with the next
    statement, exactly like a real fuzzing harness driving one connection.
    They are distinct from {!Fault} crashes, which abort the test case. *)

type t =
  | No_such_table of string
  | No_such_column of string
  | No_such_object of string * string  (** kind, name *)
  | Duplicate_object of string * string
  | Constraint_violation of string
  | Type_error of string
  | Not_supported of string
  | Permission_denied of string
  | Semantic of string
  | Limit_exceeded of string

exception Sql_error of t

val message : t -> string

val fail : t -> 'a
(** Raise {!Sql_error}. *)

val failf : ('a, unit, string, 'b) format4 -> 'a
(** [failf fmt ...] raises a {!Semantic} error with a formatted message. *)
