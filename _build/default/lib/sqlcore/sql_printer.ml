open Ast

let data_type = function
  | T_int -> "INT"
  | T_float -> "FLOAT"
  | T_text -> "TEXT"
  | T_bool -> "BOOL"
  | T_varchar n -> Printf.sprintf "VARCHAR(%d)" n
  | T_year -> "YEAR"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats must keep a '.' or exponent so that the lexer reads them back as
   floats, not integers. *)
let float_repr f =
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
  else s ^ ".0"

let literal = function
  | L_null -> "NULL"
  | L_int n -> string_of_int n
  | L_float f -> float_repr f
  | L_string s -> "'" ^ escape_string s ^ "'"
  | L_bool true -> "TRUE"
  | L_bool false -> "FALSE"

let unop_str = function Neg -> "-" | Not -> "NOT" | Bit_not -> "~"

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR" | Concat -> "||"

let agg_str = function
  | Count -> "COUNT" | Sum -> "SUM" | Avg -> "AVG" | Min -> "MIN"
  | Max -> "MAX" | Group_concat -> "GROUP_CONCAT"

let win_str = function
  | Row_number -> "ROW_NUMBER" | Rank -> "RANK" | Dense_rank -> "DENSE_RANK"
  | Lead -> "LEAD" | Lag -> "LAG" | Ntile -> "NTILE"

let dir_str = function Asc -> "ASC" | Desc -> "DESC"

let frame_bound_str = function
  | Unbounded_preceding -> "UNBOUNDED PRECEDING"
  | Preceding n -> Printf.sprintf "%d PRECEDING" n
  | Current_row -> "CURRENT ROW"
  | Following n -> Printf.sprintf "%d FOLLOWING" n
  | Unbounded_following -> "UNBOUNDED FOLLOWING"

let comma = String.concat ", "

let rec expr = function
  | Lit l -> literal l
  | Col (None, c) -> c
  | Col (Some t, c) -> t ^ "." ^ c
  | Unop (Neg, (Lit (L_int n) as e)) when n >= 0 ->
    (* keep "- <literal>" distinct from a negative literal so parsing is
       the inverse of printing *)
    Printf.sprintf "(- (%s))" (expr e)
  | Unop (Neg, (Lit (L_float f) as e)) when f >= 0.0 ->
    Printf.sprintf "(- (%s))" (expr e)
  | Unop (op, e) -> Printf.sprintf "(%s %s)" (unop_str op) (expr e)
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr a) (binop_str op) (expr b)
  | Fn (name, args) ->
    Printf.sprintf "%s(%s)" name (comma (List.map expr args))
  | Agg (fn, _, None) -> Printf.sprintf "%s(*)" (agg_str fn)
  | Agg (fn, distinct, Some e) ->
    Printf.sprintf "%s(%s%s)" (agg_str fn)
      (if distinct then "DISTINCT " else "")
      (expr e)
  | Case (whens, else_) ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf "CASE";
    List.iter
      (fun (c, v) ->
         Buffer.add_string buf
           (Printf.sprintf " WHEN %s THEN %s" (expr c) (expr v)))
      whens;
    (match else_ with
     | None -> ()
     | Some e -> Buffer.add_string buf (" ELSE " ^ expr e));
    Buffer.add_string buf " END";
    Buffer.contents buf
  | Cast (e, dt) -> Printf.sprintf "CAST(%s AS %s)" (expr e) (data_type dt)
  | In_list { e; items; negated } ->
    Printf.sprintf "(%s %sIN (%s))" (expr e)
      (if negated then "NOT " else "")
      (comma (List.map expr items))
  | Between { e; lo; hi; negated } ->
    Printf.sprintf "(%s %sBETWEEN %s AND %s)" (expr e)
      (if negated then "NOT " else "")
      (expr lo) (expr hi)
  | Is_null (e, negated) ->
    Printf.sprintf "(%s IS %sNULL)" (expr e) (if negated then "NOT " else "")
  | Like { e; pat; negated } ->
    Printf.sprintf "(%s %sLIKE %s)" (expr e)
      (if negated then "NOT " else "")
      (expr pat)
  | Exists (q, negated) ->
    Printf.sprintf "(%sEXISTS (%s))" (if negated then "NOT " else "") (query q)
  | Subquery q -> Printf.sprintf "(%s)" (query q)
  | Win { fn; args; over } ->
    Printf.sprintf "%s(%s) OVER (%s)" (win_str fn)
      (comma (List.map expr args))
      (over_clause over)

and over_clause { partition_by; w_order_by; frame } =
  let parts = ref [] in
  (match frame with
   | None -> ()
   | Some { f_kind; f_lo; f_hi } ->
     let kind = match f_kind with F_rows -> "ROWS" | F_range -> "RANGE" in
     parts :=
       [ Printf.sprintf "%s BETWEEN %s AND %s" kind (frame_bound_str f_lo)
           (frame_bound_str f_hi) ]);
  if w_order_by <> [] then
    parts := ("ORDER BY " ^ order_by_list w_order_by) :: !parts;
  if partition_by <> [] then
    parts :=
      ("PARTITION BY " ^ comma (List.map expr partition_by)) :: !parts;
  String.concat " " !parts

and order_by_list obs =
  comma (List.map (fun (e, d) -> expr e ^ " " ^ dir_str d) obs)

and proj = function
  | Star -> "*"
  | Star_of t -> t ^ ".*"
  | Proj (e, None) -> expr e
  | Proj (e, Some a) -> expr e ^ " AS " ^ a

and from_item = function
  | From_table { name; alias = None } -> name
  | From_table { name; alias = Some a } -> name ^ " AS " ^ a
  | From_join { left; kind; right; on } ->
    let kw = match kind with
      | Inner -> "JOIN"
      | Left -> "LEFT JOIN"
      | Right -> "RIGHT JOIN"
      | Cross -> "CROSS JOIN"
    in
    let rhs = match right with
      | From_join _ -> "(" ^ from_item right ^ ")"
      | From_table _ | From_subquery _ -> from_item right
    in
    let base = Printf.sprintf "%s %s %s" (from_item left) kw rhs in
    (match on with
     | None -> base
     | Some e -> base ^ " ON " ^ expr e)
  | From_subquery { q; alias } ->
    Printf.sprintf "(%s) AS %s" (query q) alias

and select s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (comma (List.map proj s.projs));
  (match s.from with
   | None -> ()
   | Some f -> Buffer.add_string buf (" FROM " ^ from_item f));
  (match s.where with
   | None -> ()
   | Some e -> Buffer.add_string buf (" WHERE " ^ expr e));
  if s.group_by <> [] then
    Buffer.add_string buf (" GROUP BY " ^ comma (List.map expr s.group_by));
  (match s.having with
   | None -> ()
   | Some e -> Buffer.add_string buf (" HAVING " ^ expr e));
  if s.order_by <> [] then
    Buffer.add_string buf (" ORDER BY " ^ order_by_list s.order_by);
  (match s.limit with
   | None -> ()
   | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n));
  (match s.offset with
   | None -> ()
   | Some n -> Buffer.add_string buf (Printf.sprintf " OFFSET %d" n));
  Buffer.contents buf

and query = function
  | Q_select s -> select s
  | Q_values rows ->
    "VALUES "
    ^ comma (List.map (fun row -> "(" ^ comma (List.map expr row) ^ ")") rows)
  | Q_compound (a, op, b) ->
    let ops = match op with
      | Union -> "UNION"
      | Union_all -> "UNION ALL"
      | Intersect -> "INTERSECT"
      | Except -> "EXCEPT"
    in
    Printf.sprintf "%s %s %s" (query a) ops (query b)

let col_def c =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (c.col_name ^ " " ^ data_type c.col_type);
  if c.zerofill then Buffer.add_string buf " ZEROFILL";
  if c.not_null then Buffer.add_string buf " NOT NULL";
  if c.primary_key then Buffer.add_string buf " PRIMARY KEY";
  if c.unique then Buffer.add_string buf " UNIQUE";
  (match c.default with
   | None -> ()
   | Some l -> Buffer.add_string buf (" DEFAULT " ^ literal l));
  Buffer.contents buf

let trig_event_str = function
  | Ev_insert -> "INSERT"
  | Ev_update -> "UPDATE"
  | Ev_delete -> "DELETE"

let priv_str = function
  | P_select -> "SELECT" | P_insert -> "INSERT" | P_update -> "UPDATE"
  | P_delete -> "DELETE" | P_all -> "ALL"

let literal_rows rows =
  comma
    (List.map (fun row -> "(" ^ comma (List.map literal row) ^ ")") rows)

let rec insert_body kw (i : insert) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf kw;
  if i.i_ignore then Buffer.add_string buf " IGNORE";
  Buffer.add_string buf (" INTO " ^ i.i_table);
  if i.i_cols <> [] then
    Buffer.add_string buf (" (" ^ comma i.i_cols ^ ")");
  (match i.i_source with
   | Src_values rows ->
     Buffer.add_string buf
       (" VALUES "
        ^ comma
            (List.map
               (fun row -> "(" ^ comma (List.map expr row) ^ ")")
               rows))
   | Src_query q -> Buffer.add_string buf (" " ^ query q));
  Buffer.contents buf

and update_body (u : update) =
  let sets = comma (List.map (fun (c, e) -> c ^ " = " ^ expr e) u.u_sets) in
  let buf = Buffer.create 64 in
  Buffer.add_string buf ("UPDATE " ^ u.u_table ^ " SET " ^ sets);
  (match u.u_where with
   | None -> ()
   | Some e -> Buffer.add_string buf (" WHERE " ^ expr e));
  (match u.u_limit with
   | None -> ()
   | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n));
  Buffer.contents buf

and delete_body (d : delete) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf ("DELETE FROM " ^ d.d_table);
  (match d.d_where with
   | None -> ()
   | Some e -> Buffer.add_string buf (" WHERE " ^ expr e));
  (match d.d_limit with
   | None -> ()
   | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n));
  Buffer.contents buf

and with_body = function
  | W_query q -> query q
  | W_insert i -> insert_body "INSERT" i
  | W_update u -> update_body u
  | W_delete d -> delete_body d

and stmt = function
  | S_create_table { temp; if_not_exists; name; cols } ->
    Printf.sprintf "CREATE %sTABLE %s%s (%s)"
      (if temp then "TEMPORARY " else "")
      (if if_not_exists then "IF NOT EXISTS " else "")
      name
      (comma (List.map col_def cols))
  | S_create_index { unique; name; table; cols } ->
    Printf.sprintf "CREATE %sINDEX %s ON %s (%s)"
      (if unique then "UNIQUE " else "")
      name table (comma cols)
  | S_create_view { materialized; name; query = q } ->
    Printf.sprintf "CREATE %sVIEW %s AS %s"
      (if materialized then "MATERIALIZED " else "")
      name (query q)
  | S_create_trigger { name; timing; event; table; body } ->
    let timing_s = match timing with Before -> "BEFORE" | After -> "AFTER" in
    let body_s = match body with
      | [ s ] -> stmt s
      | stmts ->
        "BEGIN " ^ String.concat "; " (List.map stmt stmts) ^ "; END"
    in
    Printf.sprintf "CREATE TRIGGER %s %s %s ON %s FOR EACH ROW %s" name
      timing_s (trig_event_str event) table body_s
  | S_create_rule { name; table; event; instead; action } ->
    let action_s = match action with
      | Ra_nothing -> "NOTHING"
      | Ra_notify chan -> "NOTIFY " ^ chan
      | Ra_stmt s -> stmt s
    in
    Printf.sprintf "CREATE RULE %s AS ON %s TO %s DO %s%s" name
      (trig_event_str event) table
      (if instead then "INSTEAD " else "")
      action_s
  | S_create_sequence { name; start; step } ->
    Printf.sprintf "CREATE SEQUENCE %s START WITH %d INCREMENT BY %d" name
      start step
  | S_create_schema n -> "CREATE SCHEMA " ^ n
  | S_create_database n -> "CREATE DATABASE " ^ n
  | S_create_user { user; password } ->
    Printf.sprintf "CREATE USER %s IDENTIFIED BY '%s'" user
      (escape_string password)
  | S_drop { target; if_exists } ->
    let ie = if if_exists then "IF EXISTS " else "" in
    (match target with
     | D_table n -> Printf.sprintf "DROP TABLE %s%s" ie n
     | D_index n -> Printf.sprintf "DROP INDEX %s%s" ie n
     | D_view n -> Printf.sprintf "DROP VIEW %s%s" ie n
     | D_trigger n -> Printf.sprintf "DROP TRIGGER %s%s" ie n
     | D_rule (n, t) -> Printf.sprintf "DROP RULE %s%s ON %s" ie n t
     | D_sequence n -> Printf.sprintf "DROP SEQUENCE %s%s" ie n
     | D_schema n -> Printf.sprintf "DROP SCHEMA %s%s" ie n
     | D_database n -> Printf.sprintf "DROP DATABASE %s%s" ie n
     | D_user n -> Printf.sprintf "DROP USER %s%s" ie n)
  | S_alter_table (t, action) ->
    let action_s = match action with
      | Add_column c -> "ADD COLUMN " ^ col_def c
      | Drop_column c -> "DROP COLUMN " ^ c
      | Rename_to n -> "RENAME TO " ^ n
      | Rename_column (a, b) -> Printf.sprintf "RENAME COLUMN %s TO %s" a b
      | Alter_column_type (c, dt) ->
        Printf.sprintf "ALTER COLUMN %s TYPE %s" c (data_type dt)
    in
    Printf.sprintf "ALTER TABLE %s %s" t action_s
  | S_alter_sequence { name; step } ->
    Printf.sprintf "ALTER SEQUENCE %s INCREMENT BY %d" name step
  | S_alter_user { user; password } ->
    Printf.sprintf "ALTER USER %s IDENTIFIED BY '%s'" user
      (escape_string password)
  | S_rename_table pairs ->
    "RENAME TABLE "
    ^ comma (List.map (fun (a, b) -> Printf.sprintf "%s TO %s" a b) pairs)
  | S_truncate t -> "TRUNCATE TABLE " ^ t
  | S_comment_on { table; comment } ->
    Printf.sprintf "COMMENT ON TABLE %s IS '%s'" table
      (escape_string comment)
  | S_insert i -> insert_body "INSERT" i
  | S_replace i -> insert_body "REPLACE" i
  | S_update u -> update_body u
  | S_delete d -> delete_body d
  | S_copy_to { src; header } ->
    let src_s = match src with
      | Cs_table t -> t
      | Cs_query q -> "(" ^ query q ^ ")"
    in
    Printf.sprintf "COPY %s TO STDOUT%s" src_s
      (if header then " CSV HEADER" else "")
  | S_copy_from { table; rows } ->
    if rows = [] then Printf.sprintf "COPY %s FROM STDIN" table
    else Printf.sprintf "COPY %s FROM STDIN %s" table (literal_rows rows)
  | S_load_data { table; rows } ->
    if rows = [] then Printf.sprintf "LOAD DATA INTO %s" table
    else Printf.sprintf "LOAD DATA INTO %s VALUES %s" table (literal_rows rows)
  | S_select q -> query q
  | S_with { ctes; body } ->
    let cte_s =
      comma
        (List.map
           (fun { cte_name; cte_body } ->
              Printf.sprintf "%s AS (%s)" cte_name (with_body cte_body))
           ctes)
    in
    Printf.sprintf "WITH %s %s" cte_s (with_body body)
  | S_table t -> "TABLE " ^ t
  | S_explain s -> "EXPLAIN " ^ stmt s
  | S_describe t -> "DESCRIBE " ^ t
  | S_show Sh_tables -> "SHOW TABLES"
  | S_show (Sh_columns t) -> "SHOW COLUMNS FROM " ^ t
  | S_show Sh_variables -> "SHOW VARIABLES"
  | S_show Sh_status -> "SHOW STATUS"
  | S_grant { privs; table; user } ->
    Printf.sprintf "GRANT %s ON %s TO %s"
      (comma (List.map priv_str privs))
      table user
  | S_revoke { privs; table; user } ->
    Printf.sprintf "REVOKE %s ON %s FROM %s"
      (comma (List.map priv_str privs))
      table user
  | S_set_role r -> "SET ROLE " ^ r
  | S_begin -> "BEGIN"
  | S_commit -> "COMMIT"
  | S_rollback -> "ROLLBACK"
  | S_savepoint s -> "SAVEPOINT " ^ s
  | S_release_savepoint s -> "RELEASE SAVEPOINT " ^ s
  | S_rollback_to s -> "ROLLBACK TO SAVEPOINT " ^ s
  | S_set_transaction iso ->
    let iso_s = match iso with
      | Read_committed -> "READ COMMITTED"
      | Repeatable_read -> "REPEATABLE READ"
      | Serializable -> "SERIALIZABLE"
    in
    "SET TRANSACTION ISOLATION LEVEL " ^ iso_s
  | S_lock_tables locks ->
    "LOCK TABLES "
    ^ comma
        (List.map
           (fun (t, m) ->
              t ^ (match m with Lk_read -> " READ" | Lk_write -> " WRITE"))
           locks)
  | S_unlock_tables -> "UNLOCK TABLES"
  | S_set_var { global; name; value } ->
    Printf.sprintf "SET %s%s = %s"
      (if global then "GLOBAL " else "")
      name (literal value)
  | S_reset_var n -> "RESET " ^ n
  | S_set_names n -> "SET NAMES " ^ n
  | S_pragma { name; value = None } -> "PRAGMA " ^ name
  | S_pragma { name; value = Some l } ->
    Printf.sprintf "PRAGMA %s = %s" name (literal l)
  | S_vacuum None -> "VACUUM"
  | S_vacuum (Some t) -> "VACUUM " ^ t
  | S_analyze None -> "ANALYZE"
  | S_analyze (Some t) -> "ANALYZE " ^ t
  | S_reindex None -> "REINDEX"
  | S_reindex (Some t) -> "REINDEX " ^ t
  | S_checkpoint -> "CHECKPOINT"
  | S_flush Fl_tables -> "FLUSH TABLES"
  | S_flush Fl_status -> "FLUSH STATUS"
  | S_flush Fl_privileges -> "FLUSH PRIVILEGES"
  | S_optimize t -> "OPTIMIZE TABLE " ^ t
  | S_check_table t -> "CHECK TABLE " ^ t
  | S_repair t -> "REPAIR TABLE " ^ t
  | S_notify { channel; payload = None } -> "NOTIFY " ^ channel
  | S_notify { channel; payload = Some p } ->
    Printf.sprintf "NOTIFY %s, '%s'" channel (escape_string p)
  | S_listen c -> "LISTEN " ^ c
  | S_unlisten c -> "UNLISTEN " ^ c
  | S_discard Disc_all -> "DISCARD ALL"
  | S_discard Disc_temp -> "DISCARD TEMP"
  | S_discard Disc_plans -> "DISCARD PLANS"
  | S_prepare { name; stmt = s } ->
    Printf.sprintf "PREPARE %s AS %s" name (stmt s)
  | S_execute n -> "EXECUTE " ^ n
  | S_deallocate n -> "DEALLOCATE " ^ n
  | S_use db -> "USE " ^ db
  | S_do e -> "DO " ^ expr e
  | S_handler_open t -> Printf.sprintf "HANDLER %s OPEN" t
  | S_handler_read { table; dir = H_first } ->
    Printf.sprintf "HANDLER %s READ FIRST" table
  | S_handler_read { table; dir = H_next } ->
    Printf.sprintf "HANDLER %s READ NEXT" table
  | S_handler_close t -> Printf.sprintf "HANDLER %s CLOSE" t
  | S_alter_system p -> "ALTER SYSTEM " ^ p
  | S_refresh_matview v -> "REFRESH MATERIALIZED VIEW " ^ v
  | S_kill n -> Printf.sprintf "KILL %d" n
  | S_cluster None -> "CLUSTER"
  | S_cluster (Some t) -> "CLUSTER " ^ t

let testcase tc =
  String.concat ";\n" (List.map stmt tc) ^ if tc = [] then "" else ";"

let pp_stmt fmt s = Format.pp_print_string fmt (stmt s)

let pp_testcase fmt tc = Format.pp_print_string fmt (testcase tc)
