(** Rendering of the {!Ast} back to SQL text.

    The printer is total over the AST and its output is accepted by
    {!Sqlparser.Parser}; [parse (print s) = s] structurally, which the
    property tests check. Binary expressions are printed fully
    parenthesised so that round-tripping never depends on precedence. *)

val data_type : Ast.data_type -> string

val literal : Ast.literal -> string

val expr : Ast.expr -> string

val query : Ast.query -> string

val stmt : Ast.stmt -> string
(** SQL text of one statement, without the trailing [';']. *)

val testcase : Ast.testcase -> string
(** Statements joined by [";\n"], with a final [';']. *)

val pp_stmt : Format.formatter -> Ast.stmt -> unit

val pp_testcase : Format.formatter -> Ast.testcase -> unit
