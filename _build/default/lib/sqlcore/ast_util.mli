(** Structural helpers over the {!Ast}.

    These traversals back three consumers: the LEGO instantiator's
    dependency repair (which tables/columns does a statement reference),
    the conventional intra-statement mutations (rewrite every expression in
    place), and the fault-injection predicates (e.g. "current statement
    contains a window function"). *)

val fold_exprs : ('a -> Ast.expr -> 'a) -> 'a -> Ast.stmt -> 'a
(** Fold over every expression occurring anywhere in a statement,
    including inside subqueries, CTE bodies, and trigger/rule bodies. *)

val map_exprs : (Ast.expr -> Ast.expr) -> Ast.stmt -> Ast.stmt
(** Rewrite every expression bottom-up. The function receives each node
    after its children were rewritten. *)

val map_table_refs : (string -> string) -> Ast.stmt -> Ast.stmt
(** Rename every table reference (reads and writes, including qualified
    column references and DDL targets). *)

val tables_read : Ast.stmt -> string list
(** Tables a statement reads from (FROM clauses, subqueries, DML
    sources), deduplicated, in first-occurrence order. *)

val tables_written : Ast.stmt -> string list
(** Tables a statement inserts into / updates / deletes from / truncates,
    including via CTE bodies and trigger bodies. *)

val table_created : Ast.stmt -> (string * Ast.col_def list) option
(** [Some (name, cols)] when the statement creates a base table. *)

val objects_created : Ast.stmt -> (string * string) list
(** [(kind, name)] pairs for every schema object the statement creates
    (kind is ["table"], ["view"], ["index"], ...). *)

val has_window_fn : Ast.stmt -> bool

val has_subquery : Ast.stmt -> bool

val has_aggregate : Ast.stmt -> bool

val column_refs : Ast.stmt -> (string option * string) list
(** Every column reference in the statement, qualified or not. *)

val stmt_size : Ast.stmt -> int
(** Rough node count, used as an execution-cost proxy and a mutation
    budget. *)

val expr_depth : Ast.expr -> int
