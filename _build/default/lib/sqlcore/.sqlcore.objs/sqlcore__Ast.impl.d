lib/sqlcore/ast.ml: List Stmt_type
