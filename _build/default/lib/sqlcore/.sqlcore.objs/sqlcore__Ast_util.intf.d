lib/sqlcore/ast_util.mli: Ast
