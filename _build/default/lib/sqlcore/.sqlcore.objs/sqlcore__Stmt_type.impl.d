lib/sqlcore/stmt_type.ml: Array Format Hashtbl Int List
