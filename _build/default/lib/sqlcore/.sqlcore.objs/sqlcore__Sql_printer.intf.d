lib/sqlcore/sql_printer.mli: Ast Format
