lib/sqlcore/stmt_type.mli: Format
