lib/sqlcore/ast_util.ml: Ast Hashtbl List Option
