lib/sqlcore/sql_printer.ml: Ast Buffer Format List Printf String
