(** The universe of SQL statement types.

    A {e statement type} is the category of a SQL statement divided by
    functionality (paper §II): [CREATE TABLE] and [CREATE VIEW] are two
    distinct types. The {e SQL Type Sequence} of a test case is the sequence
    of types of its statements; type-affinities (ordered pairs of adjacent
    types) are the paper's core abstraction.

    Dialects (PostgreSQL-sim, MySQL-sim, ...) expose subsets of this
    universe; see {!Dialects.Dialect}. *)

type t =
  (* Data definition *)
  | Create_table
  | Create_temp_table
  | Create_index
  | Create_unique_index
  | Create_view
  | Create_materialized_view
  | Create_trigger
  | Create_rule
  | Create_sequence
  | Create_schema
  | Create_database
  | Create_user
  | Drop_table
  | Drop_index
  | Drop_view
  | Drop_trigger
  | Drop_rule
  | Drop_sequence
  | Drop_schema
  | Drop_database
  | Drop_user
  | Alter_table_add_column
  | Alter_table_drop_column
  | Alter_table_rename
  | Alter_table_rename_column
  | Alter_table_alter_type
  | Alter_sequence
  | Alter_user
  | Rename_table
  | Truncate
  | Comment_on
  (* Data manipulation *)
  | Insert
  | Insert_select
  | Replace_into
  | Update
  | Delete
  | Copy_to
  | Copy_from
  | Load_data
  (* Data query *)
  | Select
  | Select_union
  | Select_intersect
  | Select_except
  | With_select
  | With_dml
  | Values_stmt
  | Table_stmt
  | Explain
  | Describe
  | Show_tables
  | Show_columns
  | Show_variables
  | Show_status
  (* Data control *)
  | Grant
  | Revoke
  | Set_role
  (* Transaction control *)
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Savepoint
  | Release_savepoint
  | Rollback_to_savepoint
  | Set_transaction
  | Lock_tables
  | Unlock_tables
  (* Session / utility *)
  | Set_var
  | Set_global_var
  | Reset_var
  | Set_names
  | Pragma
  | Vacuum
  | Analyze
  | Reindex
  | Checkpoint
  | Flush
  | Optimize_table
  | Check_table
  | Repair_table
  | Notify
  | Listen
  | Unlisten
  | Discard
  | Prepare_stmt
  | Execute_stmt
  | Deallocate
  | Use_db
  | Do_expr
  | Handler_open
  | Handler_read
  | Handler_close
  | Alter_system
  | Refresh_matview
  | Kill_query
  | Cluster

type category = Ddl | Dml | Dql | Dcl | Tcl | Util

val all : t list
(** Every statement type, in declaration order. *)

val count : int
(** [List.length all]. *)

val category : t -> category

val name : t -> string
(** Canonical upper-case display name, e.g. ["CREATE TABLE"]. *)

val of_name : string -> t option
(** Inverse of {!name}. *)

val to_index : t -> int
(** Dense index in [\[0, count)], stable across runs. *)

val of_index : int -> t
(** Inverse of {!to_index}. Raises [Invalid_argument] when out of range. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val pp_category : Format.formatter -> category -> unit
val category_name : category -> string
