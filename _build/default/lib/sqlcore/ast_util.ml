open Ast

(* ------------------------------------------------------------------ *)
(* Expression map (bottom-up), recursing into nested queries.          *)
(* ------------------------------------------------------------------ *)

let rec map_expr f e =
  let e' =
    match e with
    | Lit _ | Col _ -> e
    | Unop (op, a) -> Unop (op, map_expr f a)
    | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
    | Fn (n, args) -> Fn (n, List.map (map_expr f) args)
    | Agg (fn, d, arg) -> Agg (fn, d, Option.map (map_expr f) arg)
    | Case (whens, else_) ->
      Case
        ( List.map (fun (c, v) -> (map_expr f c, map_expr f v)) whens,
          Option.map (map_expr f) else_ )
    | Cast (a, dt) -> Cast (map_expr f a, dt)
    | In_list { e; items; negated } ->
      In_list
        { e = map_expr f e; items = List.map (map_expr f) items; negated }
    | Between { e; lo; hi; negated } ->
      Between
        { e = map_expr f e; lo = map_expr f lo; hi = map_expr f hi; negated }
    | Is_null (a, n) -> Is_null (map_expr f a, n)
    | Like { e; pat; negated } ->
      Like { e = map_expr f e; pat = map_expr f pat; negated }
    | Exists (q, n) -> Exists (map_query_exprs f q, n)
    | Subquery q -> Subquery (map_query_exprs f q)
    | Win { fn; args; over } ->
      Win
        { fn;
          args = List.map (map_expr f) args;
          over =
            { partition_by = List.map (map_expr f) over.partition_by;
              w_order_by =
                List.map (fun (e, d) -> (map_expr f e, d)) over.w_order_by;
              frame = over.frame } }
  in
  f e'

and map_query_exprs f = function
  | Q_select s -> Q_select (map_select_exprs f s)
  | Q_values rows -> Q_values (List.map (List.map (map_expr f)) rows)
  | Q_compound (a, op, b) ->
    Q_compound (map_query_exprs f a, op, map_query_exprs f b)

and map_select_exprs f s =
  { s with
    projs =
      List.map
        (function
          | Star -> Star
          | Star_of t -> Star_of t
          | Proj (e, a) -> Proj (map_expr f e, a))
        s.projs;
    from = Option.map (map_from_exprs f) s.from;
    where = Option.map (map_expr f) s.where;
    group_by = List.map (map_expr f) s.group_by;
    having = Option.map (map_expr f) s.having;
    order_by = List.map (fun (e, d) -> (map_expr f e, d)) s.order_by }

and map_from_exprs f = function
  | From_table _ as t -> t
  | From_join { left; kind; right; on } ->
    From_join
      { left = map_from_exprs f left;
        kind;
        right = map_from_exprs f right;
        on = Option.map (map_expr f) on }
  | From_subquery { q; alias } ->
    From_subquery { q = map_query_exprs f q; alias }

let map_insert_exprs f (i : insert) =
  { i with
    i_source =
      (match i.i_source with
       | Src_values rows -> Src_values (List.map (List.map (map_expr f)) rows)
       | Src_query q -> Src_query (map_query_exprs f q)) }

let map_update_exprs f (u : update) =
  { u with
    u_sets = List.map (fun (c, e) -> (c, map_expr f e)) u.u_sets;
    u_where = Option.map (map_expr f) u.u_where }

let map_delete_exprs f (d : delete) =
  { d with d_where = Option.map (map_expr f) d.d_where }

let map_with_body_exprs f = function
  | W_query q -> W_query (map_query_exprs f q)
  | W_insert i -> W_insert (map_insert_exprs f i)
  | W_update u -> W_update (map_update_exprs f u)
  | W_delete d -> W_delete (map_delete_exprs f d)

let rec map_exprs f = function
  | S_create_view v -> S_create_view { v with query = map_query_exprs f v.query }
  | S_create_trigger t ->
    S_create_trigger { t with body = List.map (map_exprs f) t.body }
  | S_create_rule r ->
    S_create_rule
      { r with
        action =
          (match r.action with
           | Ra_nothing | Ra_notify _ -> r.action
           | Ra_stmt s -> Ra_stmt (map_exprs f s)) }
  | S_insert i -> S_insert (map_insert_exprs f i)
  | S_replace i -> S_replace (map_insert_exprs f i)
  | S_update u -> S_update (map_update_exprs f u)
  | S_delete d -> S_delete (map_delete_exprs f d)
  | S_copy_to { src = Cs_query q; header } ->
    S_copy_to { src = Cs_query (map_query_exprs f q); header }
  | S_select q -> S_select (map_query_exprs f q)
  | S_with { ctes; body } ->
    S_with
      { ctes =
          List.map
            (fun c -> { c with cte_body = map_with_body_exprs f c.cte_body })
            ctes;
        body = map_with_body_exprs f body }
  | S_explain s -> S_explain (map_exprs f s)
  | S_prepare { name; stmt } -> S_prepare { name; stmt = map_exprs f stmt }
  | S_do e -> S_do (map_expr f e)
  | ( S_create_table _ | S_create_index _ | S_create_sequence _
    | S_create_schema _ | S_create_database _ | S_create_user _ | S_drop _
    | S_alter_table _ | S_alter_sequence _ | S_alter_user _ | S_rename_table _
    | S_truncate _ | S_comment_on _ | S_copy_to { src = Cs_table _; _ }
    | S_copy_from _ | S_load_data _ | S_table _ | S_describe _ | S_show _
    | S_grant _ | S_revoke _ | S_set_role _ | S_begin | S_commit | S_rollback
    | S_savepoint _ | S_release_savepoint _ | S_rollback_to _
    | S_set_transaction _ | S_lock_tables _ | S_unlock_tables | S_set_var _
    | S_reset_var _ | S_set_names _ | S_pragma _ | S_vacuum _ | S_analyze _
    | S_reindex _ | S_checkpoint | S_flush _ | S_optimize _ | S_check_table _
    | S_repair _ | S_notify _ | S_listen _ | S_unlisten _ | S_discard _
    | S_execute _ | S_deallocate _ | S_use _ | S_handler_open _
    | S_handler_read _ | S_handler_close _ | S_alter_system _
    | S_refresh_matview _ | S_kill _ | S_cluster _ ) as s -> s

let iter_exprs f stmt =
  ignore
    (map_exprs
       (fun e ->
          f e;
          e)
       stmt)

let fold_exprs f acc stmt =
  let acc = ref acc in
  iter_exprs (fun e -> acc := f !acc e) stmt;
  !acc

(* ------------------------------------------------------------------ *)
(* Table-reference renaming.                                           *)
(* ------------------------------------------------------------------ *)

let rec rn_query g = function
  | Q_select s -> Q_select (rn_select g s)
  | Q_values rows -> Q_values rows
  | Q_compound (a, op, b) -> Q_compound (rn_query g a, op, rn_query g b)

and rn_select g s =
  let s = { s with from = Option.map (rn_from g) s.from } in
  (* Qualified column references follow the table rename too. *)
  map_select_exprs
    (function Col (Some t, c) -> Col (Some (g t), c) | e -> e)
    { s with
      projs =
        List.map
          (function Star_of t -> Star_of (g t) | p -> p)
          s.projs }

and rn_from g = function
  | From_table { name; alias } -> From_table { name = g name; alias }
  | From_join { left; kind; right; on } ->
    From_join { left = rn_from g left; kind; right = rn_from g right; on }
  | From_subquery { q; alias } -> From_subquery { q = rn_query g q; alias }

let rn_insert g (i : insert) =
  { i with
    i_table = g i.i_table;
    i_source =
      (match i.i_source with
       | Src_values _ as v -> v
       | Src_query q -> Src_query (rn_query g q)) }

let rn_update g (u : update) = { u with u_table = g u.u_table }

let rn_delete g (d : delete) = { d with d_table = g d.d_table }

let rn_with_body g = function
  | W_query q -> W_query (rn_query g q)
  | W_insert i -> W_insert (rn_insert g i)
  | W_update u -> W_update (rn_update g u)
  | W_delete d -> W_delete (rn_delete g d)

let rec map_table_refs g stmt =
  (* First rename table-position names, then rename column qualifiers and
     subquery FROMs via the expression rewriter. *)
  let stmt =
    match stmt with
    | S_create_table c -> S_create_table { c with name = g c.name }
    | S_create_index i -> S_create_index { i with table = g i.table }
    | S_create_view v ->
      S_create_view { v with name = g v.name; query = rn_query g v.query }
    | S_create_trigger t ->
      S_create_trigger
        { t with table = g t.table; body = List.map (map_table_refs g) t.body }
    | S_create_rule r ->
      S_create_rule
        { r with
          table = g r.table;
          action =
            (match r.action with
             | Ra_nothing | Ra_notify _ -> r.action
             | Ra_stmt s -> Ra_stmt (map_table_refs g s)) }
    | S_drop { target; if_exists } ->
      let target =
        match target with
        | D_table n -> D_table (g n)
        | D_view n -> D_view (g n)
        | D_rule (n, t) -> D_rule (n, g t)
        | (D_index _ | D_trigger _ | D_sequence _ | D_schema _ | D_database _
          | D_user _) as t -> t
      in
      S_drop { target; if_exists }
    | S_alter_table (t, a) -> S_alter_table (g t, a)
    | S_rename_table pairs ->
      S_rename_table (List.map (fun (a, b) -> (g a, g b)) pairs)
    | S_truncate t -> S_truncate (g t)
    | S_comment_on c -> S_comment_on { c with table = g c.table }
    | S_insert i -> S_insert (rn_insert g i)
    | S_replace i -> S_replace (rn_insert g i)
    | S_update u -> S_update (rn_update g u)
    | S_delete d -> S_delete (rn_delete g d)
    | S_copy_to { src; header } ->
      let src =
        match src with
        | Cs_table t -> Cs_table (g t)
        | Cs_query q -> Cs_query (rn_query g q)
      in
      S_copy_to { src; header }
    | S_copy_from c -> S_copy_from { c with table = g c.table }
    | S_load_data l -> S_load_data { l with table = g l.table }
    | S_select q -> S_select (rn_query g q)
    | S_with { ctes; body } ->
      S_with
        { ctes =
            List.map
              (fun c -> { c with cte_body = rn_with_body g c.cte_body })
              ctes;
          body = rn_with_body g body }
    | S_table t -> S_table (g t)
    | S_explain s -> S_explain (map_table_refs g s)
    | S_describe t -> S_describe (g t)
    | S_show (Sh_columns t) -> S_show (Sh_columns (g t))
    | S_grant gr -> S_grant { gr with table = g gr.table }
    | S_revoke r -> S_revoke { r with table = g r.table }
    | S_lock_tables locks ->
      S_lock_tables (List.map (fun (t, m) -> (g t, m)) locks)
    | S_vacuum t -> S_vacuum (Option.map g t)
    | S_analyze t -> S_analyze (Option.map g t)
    | S_reindex t -> S_reindex (Option.map g t)
    | S_optimize t -> S_optimize (g t)
    | S_check_table t -> S_check_table (g t)
    | S_repair t -> S_repair (g t)
    | S_prepare { name; stmt } ->
      S_prepare { name; stmt = map_table_refs g stmt }
    | S_handler_open t -> S_handler_open (g t)
    | S_handler_read { table; dir } -> S_handler_read { table = g table; dir }
    | S_handler_close t -> S_handler_close (g t)
    | S_refresh_matview v -> S_refresh_matview (g v)
    | S_cluster t -> S_cluster (Option.map g t)
    | ( S_create_sequence _ | S_create_schema _ | S_create_database _
      | S_create_user _ | S_alter_sequence _ | S_alter_user _
      | S_show (Sh_tables | Sh_variables | Sh_status) | S_set_role _ | S_begin
      | S_commit | S_rollback | S_savepoint _ | S_release_savepoint _
      | S_rollback_to _ | S_set_transaction _ | S_unlock_tables | S_set_var _
      | S_reset_var _ | S_set_names _ | S_pragma _ | S_checkpoint | S_flush _
      | S_notify _ | S_listen _ | S_unlisten _ | S_discard _ | S_execute _
      | S_deallocate _ | S_use _ | S_do _ | S_alter_system _ | S_kill _ ) as s
      -> s
  in
  map_exprs
    (function Col (Some t, c) -> Col (Some (g t), c) | e -> e)
    stmt

(* ------------------------------------------------------------------ *)
(* Read / write table collection.                                      *)
(* ------------------------------------------------------------------ *)

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
       if Hashtbl.mem seen x then false
       else begin
         Hashtbl.add seen x ();
         true
       end)
    xs

type collect = { mutable reads : string list; mutable writes : string list }

let rec c_query acc = function
  | Q_select s -> c_select acc s
  | Q_values rows -> List.iter (List.iter (c_expr acc)) rows
  | Q_compound (a, _, b) ->
    c_query acc a;
    c_query acc b

and c_select acc s =
  Option.iter (c_from acc) s.from;
  List.iter
    (function Proj (e, _) -> c_expr acc e | Star | Star_of _ -> ())
    s.projs;
  Option.iter (c_expr acc) s.where;
  List.iter (c_expr acc) s.group_by;
  Option.iter (c_expr acc) s.having;
  List.iter (fun (e, _) -> c_expr acc e) s.order_by

and c_from acc = function
  | From_table { name; _ } -> acc.reads <- name :: acc.reads
  | From_join { left; right; on; _ } ->
    c_from acc left;
    c_from acc right;
    Option.iter (c_expr acc) on
  | From_subquery { q; _ } -> c_query acc q

and c_expr acc = function
  | Lit _ | Col _ -> ()
  | Unop (_, a) -> c_expr acc a
  | Binop (_, a, b) ->
    c_expr acc a;
    c_expr acc b
  | Fn (_, args) -> List.iter (c_expr acc) args
  | Agg (_, _, arg) -> Option.iter (c_expr acc) arg
  | Case (whens, else_) ->
    List.iter
      (fun (c, v) ->
         c_expr acc c;
         c_expr acc v)
      whens;
    Option.iter (c_expr acc) else_
  | Cast (a, _) -> c_expr acc a
  | In_list { e; items; _ } ->
    c_expr acc e;
    List.iter (c_expr acc) items
  | Between { e; lo; hi; _ } ->
    c_expr acc e;
    c_expr acc lo;
    c_expr acc hi
  | Is_null (a, _) -> c_expr acc a
  | Like { e; pat; _ } ->
    c_expr acc e;
    c_expr acc pat
  | Exists (q, _) | Subquery q -> c_query acc q
  | Win { args; over; _ } ->
    List.iter (c_expr acc) args;
    List.iter (c_expr acc) over.partition_by;
    List.iter (fun (e, _) -> c_expr acc e) over.w_order_by

let c_insert acc (i : insert) =
  acc.writes <- i.i_table :: acc.writes;
  match i.i_source with
  | Src_values rows -> List.iter (List.iter (c_expr acc)) rows
  | Src_query q -> c_query acc q

let c_update acc (u : update) =
  acc.writes <- u.u_table :: acc.writes;
  List.iter (fun (_, e) -> c_expr acc e) u.u_sets;
  Option.iter (c_expr acc) u.u_where

let c_delete acc (d : delete) =
  acc.writes <- d.d_table :: acc.writes;
  Option.iter (c_expr acc) d.d_where

let c_with_body acc = function
  | W_query q -> c_query acc q
  | W_insert i -> c_insert acc i
  | W_update u -> c_update acc u
  | W_delete d -> c_delete acc d

let rec c_stmt acc = function
  | S_create_view { query; _ } -> c_query acc query
  | S_create_trigger { table; body; _ } ->
    acc.reads <- table :: acc.reads;
    List.iter (c_stmt acc) body
  | S_create_rule { table; action; _ } ->
    acc.reads <- table :: acc.reads;
    (match action with
     | Ra_nothing | Ra_notify _ -> ()
     | Ra_stmt s -> c_stmt acc s)
  | S_insert i -> c_insert acc i
  | S_replace i -> c_insert acc i
  | S_update u -> c_update acc u
  | S_delete d -> c_delete acc d
  | S_truncate t -> acc.writes <- t :: acc.writes
  | S_copy_to { src = Cs_table t; _ } -> acc.reads <- t :: acc.reads
  | S_copy_to { src = Cs_query q; _ } -> c_query acc q
  | S_copy_from { table; _ } -> acc.writes <- table :: acc.writes
  | S_load_data { table; _ } -> acc.writes <- table :: acc.writes
  | S_select q -> c_query acc q
  | S_with { ctes; body } ->
    List.iter (fun c -> c_with_body acc c.cte_body) ctes;
    c_with_body acc body
  | S_table t -> acc.reads <- t :: acc.reads
  | S_explain s -> c_stmt acc s
  | S_describe t | S_show (Sh_columns t) -> acc.reads <- t :: acc.reads
  | S_prepare { stmt; _ } -> c_stmt acc stmt
  | S_do e -> c_expr acc e
  | S_handler_open t | S_handler_read { table = t; _ } ->
    acc.reads <- t :: acc.reads
  | S_alter_table (t, _) -> acc.writes <- t :: acc.writes
  | S_optimize t | S_check_table t | S_repair t ->
    acc.reads <- t :: acc.reads
  | S_vacuum (Some t) | S_analyze (Some t) | S_reindex (Some t)
  | S_cluster (Some t) -> acc.reads <- t :: acc.reads
  | S_create_table _ | S_create_index _ | S_create_sequence _
  | S_create_schema _ | S_create_database _ | S_create_user _ | S_drop _
  | S_alter_sequence _ | S_alter_user _ | S_rename_table _ | S_comment_on _
  | S_show (Sh_tables | Sh_variables | Sh_status) | S_grant _ | S_revoke _
  | S_set_role _ | S_begin | S_commit | S_rollback | S_savepoint _
  | S_release_savepoint _ | S_rollback_to _ | S_set_transaction _
  | S_lock_tables _ | S_unlock_tables | S_set_var _ | S_reset_var _
  | S_set_names _ | S_pragma _ | S_vacuum None | S_analyze None
  | S_reindex None | S_checkpoint | S_flush _ | S_notify _ | S_listen _
  | S_unlisten _ | S_discard _ | S_execute _ | S_deallocate _ | S_use _
  | S_handler_close _ | S_alter_system _ | S_refresh_matview _ | S_kill _
  | S_cluster None -> ()

let collect stmt =
  let acc = { reads = []; writes = [] } in
  c_stmt acc stmt;
  (dedup (List.rev acc.reads), dedup (List.rev acc.writes))

let tables_read stmt = fst (collect stmt)

let tables_written stmt = snd (collect stmt)

let table_created = function
  | S_create_table { name; cols; _ } -> Some (name, cols)
  | _ -> None

let objects_created = function
  | S_create_table { name; temp; _ } ->
    [ ((if temp then "temp_table" else "table"), name) ]
  | S_create_index { name; _ } -> [ ("index", name) ]
  | S_create_view { name; _ } -> [ ("view", name) ]
  | S_create_trigger { name; _ } -> [ ("trigger", name) ]
  | S_create_rule { name; _ } -> [ ("rule", name) ]
  | S_create_sequence { name; _ } -> [ ("sequence", name) ]
  | S_create_schema n -> [ ("schema", n) ]
  | S_create_database n -> [ ("database", n) ]
  | S_create_user { user; _ } -> [ ("user", user) ]
  | _ -> []

let has_window_fn stmt =
  fold_exprs (fun acc e -> acc || match e with Win _ -> true | _ -> false)
    false stmt

let has_subquery stmt =
  fold_exprs
    (fun acc e ->
       acc || match e with Subquery _ | Exists _ -> true | _ -> false)
    false stmt

let has_aggregate stmt =
  fold_exprs (fun acc e -> acc || match e with Agg _ -> true | _ -> false)
    false stmt

let column_refs stmt =
  List.rev
    (fold_exprs
       (fun acc e -> match e with Col (q, c) -> (q, c) :: acc | _ -> acc)
       [] stmt)

let rec expr_depth = function
  | Lit _ | Col _ -> 1
  | Unop (_, a) | Cast (a, _) | Is_null (a, _) -> 1 + expr_depth a
  | Binop (_, a, b) -> 1 + max (expr_depth a) (expr_depth b)
  | Fn (_, args) -> 1 + depth_of_list args
  | Agg (_, _, arg) ->
    1 + (match arg with None -> 0 | Some a -> expr_depth a)
  | Case (whens, else_) ->
    let d =
      List.fold_left
        (fun acc (c, v) -> max acc (max (expr_depth c) (expr_depth v)))
        0 whens
    in
    1 + max d (match else_ with None -> 0 | Some e -> expr_depth e)
  | In_list { e; items; _ } ->
    1 + max (expr_depth e) (depth_of_list items)
  | Between { e; lo; hi; _ } ->
    1 + max (expr_depth e) (max (expr_depth lo) (expr_depth hi))
  | Like { e; pat; _ } -> 1 + max (expr_depth e) (expr_depth pat)
  | Exists _ | Subquery _ -> 2
  | Win { args; over; _ } ->
    1
    + max (depth_of_list args)
        (max
           (depth_of_list over.partition_by)
           (depth_of_list (List.map fst over.w_order_by)))

and depth_of_list = function
  | [] -> 0
  | xs -> List.fold_left (fun acc e -> max acc (expr_depth e)) 0 xs

let stmt_size stmt =
  let exprs = fold_exprs (fun acc e -> acc + expr_depth e) 1 stmt in
  let reads = List.length (tables_read stmt) in
  let writes = List.length (tables_written stmt) in
  exprs + reads + writes
