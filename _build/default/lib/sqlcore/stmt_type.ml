type t =
  | Create_table
  | Create_temp_table
  | Create_index
  | Create_unique_index
  | Create_view
  | Create_materialized_view
  | Create_trigger
  | Create_rule
  | Create_sequence
  | Create_schema
  | Create_database
  | Create_user
  | Drop_table
  | Drop_index
  | Drop_view
  | Drop_trigger
  | Drop_rule
  | Drop_sequence
  | Drop_schema
  | Drop_database
  | Drop_user
  | Alter_table_add_column
  | Alter_table_drop_column
  | Alter_table_rename
  | Alter_table_rename_column
  | Alter_table_alter_type
  | Alter_sequence
  | Alter_user
  | Rename_table
  | Truncate
  | Comment_on
  | Insert
  | Insert_select
  | Replace_into
  | Update
  | Delete
  | Copy_to
  | Copy_from
  | Load_data
  | Select
  | Select_union
  | Select_intersect
  | Select_except
  | With_select
  | With_dml
  | Values_stmt
  | Table_stmt
  | Explain
  | Describe
  | Show_tables
  | Show_columns
  | Show_variables
  | Show_status
  | Grant
  | Revoke
  | Set_role
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Savepoint
  | Release_savepoint
  | Rollback_to_savepoint
  | Set_transaction
  | Lock_tables
  | Unlock_tables
  | Set_var
  | Set_global_var
  | Reset_var
  | Set_names
  | Pragma
  | Vacuum
  | Analyze
  | Reindex
  | Checkpoint
  | Flush
  | Optimize_table
  | Check_table
  | Repair_table
  | Notify
  | Listen
  | Unlisten
  | Discard
  | Prepare_stmt
  | Execute_stmt
  | Deallocate
  | Use_db
  | Do_expr
  | Handler_open
  | Handler_read
  | Handler_close
  | Alter_system
  | Refresh_matview
  | Kill_query
  | Cluster

type category = Ddl | Dml | Dql | Dcl | Tcl | Util

let all =
  [ Create_table; Create_temp_table; Create_index; Create_unique_index;
    Create_view; Create_materialized_view; Create_trigger; Create_rule;
    Create_sequence; Create_schema; Create_database; Create_user;
    Drop_table; Drop_index; Drop_view; Drop_trigger; Drop_rule;
    Drop_sequence; Drop_schema; Drop_database; Drop_user;
    Alter_table_add_column; Alter_table_drop_column; Alter_table_rename;
    Alter_table_rename_column; Alter_table_alter_type; Alter_sequence;
    Alter_user; Rename_table; Truncate; Comment_on;
    Insert; Insert_select; Replace_into; Update; Delete; Copy_to; Copy_from;
    Load_data;
    Select; Select_union; Select_intersect; Select_except; With_select;
    With_dml; Values_stmt; Table_stmt; Explain; Describe; Show_tables;
    Show_columns; Show_variables; Show_status;
    Grant; Revoke; Set_role;
    Begin_txn; Commit_txn; Rollback_txn; Savepoint; Release_savepoint;
    Rollback_to_savepoint; Set_transaction; Lock_tables; Unlock_tables;
    Set_var; Set_global_var; Reset_var; Set_names; Pragma; Vacuum; Analyze;
    Reindex; Checkpoint; Flush; Optimize_table; Check_table; Repair_table;
    Notify; Listen; Unlisten; Discard; Prepare_stmt; Execute_stmt;
    Deallocate; Use_db; Do_expr; Handler_open; Handler_read; Handler_close;
    Alter_system; Refresh_matview; Kill_query; Cluster ]

let count = List.length all

let category = function
  | Create_table | Create_temp_table | Create_index | Create_unique_index
  | Create_view | Create_materialized_view | Create_trigger | Create_rule
  | Create_sequence | Create_schema | Create_database | Create_user
  | Drop_table | Drop_index | Drop_view | Drop_trigger | Drop_rule
  | Drop_sequence | Drop_schema | Drop_database | Drop_user
  | Alter_table_add_column | Alter_table_drop_column | Alter_table_rename
  | Alter_table_rename_column | Alter_table_alter_type | Alter_sequence
  | Alter_user | Rename_table | Truncate | Comment_on -> Ddl
  | Insert | Insert_select | Replace_into | Update | Delete | Copy_to
  | Copy_from | Load_data -> Dml
  | Select | Select_union | Select_intersect | Select_except | With_select
  | With_dml | Values_stmt | Table_stmt | Explain | Describe | Show_tables
  | Show_columns | Show_variables | Show_status -> Dql
  | Grant | Revoke | Set_role -> Dcl
  | Begin_txn | Commit_txn | Rollback_txn | Savepoint | Release_savepoint
  | Rollback_to_savepoint | Set_transaction | Lock_tables | Unlock_tables ->
    Tcl
  | Set_var | Set_global_var | Reset_var | Set_names | Pragma | Vacuum
  | Analyze | Reindex | Checkpoint | Flush | Optimize_table | Check_table
  | Repair_table | Notify | Listen | Unlisten | Discard | Prepare_stmt
  | Execute_stmt | Deallocate | Use_db | Do_expr | Handler_open
  | Handler_read | Handler_close | Alter_system | Refresh_matview
  | Kill_query | Cluster -> Util

let name = function
  | Create_table -> "CREATE TABLE"
  | Create_temp_table -> "CREATE TEMPORARY TABLE"
  | Create_index -> "CREATE INDEX"
  | Create_unique_index -> "CREATE UNIQUE INDEX"
  | Create_view -> "CREATE VIEW"
  | Create_materialized_view -> "CREATE MATERIALIZED VIEW"
  | Create_trigger -> "CREATE TRIGGER"
  | Create_rule -> "CREATE RULE"
  | Create_sequence -> "CREATE SEQUENCE"
  | Create_schema -> "CREATE SCHEMA"
  | Create_database -> "CREATE DATABASE"
  | Create_user -> "CREATE USER"
  | Drop_table -> "DROP TABLE"
  | Drop_index -> "DROP INDEX"
  | Drop_view -> "DROP VIEW"
  | Drop_trigger -> "DROP TRIGGER"
  | Drop_rule -> "DROP RULE"
  | Drop_sequence -> "DROP SEQUENCE"
  | Drop_schema -> "DROP SCHEMA"
  | Drop_database -> "DROP DATABASE"
  | Drop_user -> "DROP USER"
  | Alter_table_add_column -> "ALTER TABLE ADD COLUMN"
  | Alter_table_drop_column -> "ALTER TABLE DROP COLUMN"
  | Alter_table_rename -> "ALTER TABLE RENAME"
  | Alter_table_rename_column -> "ALTER TABLE RENAME COLUMN"
  | Alter_table_alter_type -> "ALTER TABLE ALTER TYPE"
  | Alter_sequence -> "ALTER SEQUENCE"
  | Alter_user -> "ALTER USER"
  | Rename_table -> "RENAME TABLE"
  | Truncate -> "TRUNCATE"
  | Comment_on -> "COMMENT ON"
  | Insert -> "INSERT"
  | Insert_select -> "INSERT SELECT"
  | Replace_into -> "REPLACE"
  | Update -> "UPDATE"
  | Delete -> "DELETE"
  | Copy_to -> "COPY TO"
  | Copy_from -> "COPY FROM"
  | Load_data -> "LOAD DATA"
  | Select -> "SELECT"
  | Select_union -> "SELECT UNION"
  | Select_intersect -> "SELECT INTERSECT"
  | Select_except -> "SELECT EXCEPT"
  | With_select -> "WITH SELECT"
  | With_dml -> "WITH DML"
  | Values_stmt -> "VALUES"
  | Table_stmt -> "TABLE"
  | Explain -> "EXPLAIN"
  | Describe -> "DESCRIBE"
  | Show_tables -> "SHOW TABLES"
  | Show_columns -> "SHOW COLUMNS"
  | Show_variables -> "SHOW VARIABLES"
  | Show_status -> "SHOW STATUS"
  | Grant -> "GRANT"
  | Revoke -> "REVOKE"
  | Set_role -> "SET ROLE"
  | Begin_txn -> "BEGIN"
  | Commit_txn -> "COMMIT"
  | Rollback_txn -> "ROLLBACK"
  | Savepoint -> "SAVEPOINT"
  | Release_savepoint -> "RELEASE SAVEPOINT"
  | Rollback_to_savepoint -> "ROLLBACK TO SAVEPOINT"
  | Set_transaction -> "SET TRANSACTION"
  | Lock_tables -> "LOCK TABLES"
  | Unlock_tables -> "UNLOCK TABLES"
  | Set_var -> "SET"
  | Set_global_var -> "SET GLOBAL"
  | Reset_var -> "RESET"
  | Set_names -> "SET NAMES"
  | Pragma -> "PRAGMA"
  | Vacuum -> "VACUUM"
  | Analyze -> "ANALYZE"
  | Reindex -> "REINDEX"
  | Checkpoint -> "CHECKPOINT"
  | Flush -> "FLUSH"
  | Optimize_table -> "OPTIMIZE TABLE"
  | Check_table -> "CHECK TABLE"
  | Repair_table -> "REPAIR TABLE"
  | Notify -> "NOTIFY"
  | Listen -> "LISTEN"
  | Unlisten -> "UNLISTEN"
  | Discard -> "DISCARD"
  | Prepare_stmt -> "PREPARE"
  | Execute_stmt -> "EXECUTE"
  | Deallocate -> "DEALLOCATE"
  | Use_db -> "USE"
  | Do_expr -> "DO"
  | Handler_open -> "HANDLER OPEN"
  | Handler_read -> "HANDLER READ"
  | Handler_close -> "HANDLER CLOSE"
  | Alter_system -> "ALTER SYSTEM"
  | Refresh_matview -> "REFRESH MATERIALIZED VIEW"
  | Kill_query -> "KILL"
  | Cluster -> "CLUSTER"

let index_tbl : (t, int) Hashtbl.t = Hashtbl.create 128
let arr = Array.of_list all
let () = Array.iteri (fun i ty -> Hashtbl.replace index_tbl ty i) arr

let to_index ty = Hashtbl.find index_tbl ty

let of_index i =
  if i < 0 || i >= Array.length arr then invalid_arg "Stmt_type.of_index";
  arr.(i)

let name_tbl : (string, t) Hashtbl.t = Hashtbl.create 128
let () = List.iter (fun ty -> Hashtbl.replace name_tbl (name ty) ty) all

let of_name s = Hashtbl.find_opt name_tbl s

let equal (a : t) (b : t) = a = b
let compare a b = Int.compare (to_index a) (to_index b)
let hash = to_index
let pp fmt ty = Format.pp_print_string fmt (name ty)

let category_name = function
  | Ddl -> "DDL"
  | Dml -> "DML"
  | Dql -> "DQL"
  | Dcl -> "DCL"
  | Tcl -> "TCL"
  | Util -> "UTIL"

let pp_category fmt c = Format.pp_print_string fmt (category_name c)
