(** Abstract syntax of the SQL subset understood by MiniDB.

    The AST is the intermediate representation the whole system works on:
    the parser produces it, {!Sql_printer} renders it back to SQL text, the
    MiniDB engine executes it directly, and the LEGO core mutates,
    harvests, and instantiates it (paper §III-B: AST as the intermediate
    representation between test cases and types).

    This module contains only types plus {!type_of_stmt}, the mapping from
    a concrete statement to its {!Stmt_type.t} (the paper's notion of SQL
    statement type). Structural helpers live in {!Ast_util}. *)

(** Column data types. [T_year] and [T_varchar] carry the MySQL-flavoured
    dialect surface used by the paper's Figure 3 test case. *)
type data_type =
  | T_int
  | T_float
  | T_text
  | T_bool
  | T_varchar of int
  | T_year

(** Literal constants as written in SQL text. *)
type literal =
  | L_null
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool

type order_dir = Asc | Desc

type unop = Neg | Not | Bit_not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Concat

(** Aggregate functions (evaluated per group). *)
type agg_fn = Count | Sum | Avg | Min | Max | Group_concat

(** Window functions (evaluated over an [OVER] clause). *)
type win_fn = Row_number | Rank | Dense_rank | Lead | Lag | Ntile

type frame_bound =
  | Unbounded_preceding
  | Preceding of int
  | Current_row
  | Following of int
  | Unbounded_following

type frame_kind = F_rows | F_range

type frame = { f_kind : frame_kind; f_lo : frame_bound; f_hi : frame_bound }

type expr =
  | Lit of literal
  | Col of string option * string  (** optional table qualifier, column *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Fn of string * expr list       (** scalar function call, e.g. ABS, UPPER *)
  | Agg of agg_fn * bool * expr option
      (** aggregate; bool = DISTINCT; [None] argument means COUNT-star *)
  | Case of (expr * expr) list * expr option
  | Cast of expr * data_type
  | In_list of { e : expr; items : expr list; negated : bool }
  | Between of { e : expr; lo : expr; hi : expr; negated : bool }
  | Is_null of expr * bool         (** bool = negated, i.e. [IS NOT NULL] *)
  | Like of { e : expr; pat : expr; negated : bool }
  | Exists of query * bool         (** bool = negated, i.e. [NOT EXISTS] *)
  | Subquery of query              (** scalar subquery *)
  | Win of { fn : win_fn; args : expr list; over : over_clause }

and over_clause = {
  partition_by : expr list;
  w_order_by : (expr * order_dir) list;
  frame : frame option;
}

and proj =
  | Star
  | Star_of of string              (** [t.*] *)
  | Proj of expr * string option   (** expression with optional alias *)

and join_kind = Inner | Left | Right | Cross

and from_item =
  | From_table of { name : string; alias : string option }
  | From_join of
      { left : from_item; kind : join_kind; right : from_item;
        on : expr option }
  | From_subquery of { q : query; alias : string }

and select = {
  distinct : bool;
  projs : proj list;
  from : from_item option;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : int option;
  offset : int option;
}

and set_op = Union | Union_all | Intersect | Except

and query =
  | Q_select of select
  | Q_values of expr list list
  | Q_compound of query * set_op * query

type col_def = {
  col_name : string;
  col_type : data_type;
  not_null : bool;
  primary_key : bool;
  unique : bool;
  default : literal option;
  zerofill : bool;
}

type trig_event = Ev_insert | Ev_update | Ev_delete

type trig_timing = Before | After

type show_what = Sh_tables | Sh_columns of string | Sh_variables | Sh_status

type discard_what = Disc_all | Disc_temp | Disc_plans

type flush_what = Fl_tables | Fl_status | Fl_privileges

type handler_dir = H_first | H_next

type iso_level = Read_committed | Repeatable_read | Serializable

type lock_mode = Lk_read | Lk_write

type priv = P_select | P_insert | P_update | P_delete | P_all

type alter_action =
  | Add_column of col_def
  | Drop_column of string
  | Rename_to of string
  | Rename_column of string * string
  | Alter_column_type of string * data_type

type drop_target =
  | D_table of string
  | D_index of string
  | D_view of string
  | D_trigger of string
  | D_rule of string * string      (** rule name, table *)
  | D_sequence of string
  | D_schema of string
  | D_database of string
  | D_user of string

type insert = {
  i_table : string;
  i_cols : string list;            (** empty list means "all columns" *)
  i_source : insert_source;
  i_ignore : bool;                 (** INSERT IGNORE: skip constraint errors *)
}

and insert_source = Src_values of expr list list | Src_query of query

and update = {
  u_table : string;
  u_sets : (string * expr) list;
  u_where : expr option;
  u_limit : int option;
}

and delete = { d_table : string; d_where : expr option; d_limit : int option }

(** Body of a CTE or of a WITH statement. PostgreSQL allows data-modifying
    statements inside [WITH] — the path of the paper's Figure 7 case
    study. *)
and with_body =
  | W_query of query
  | W_insert of insert
  | W_update of update
  | W_delete of delete

and cte = { cte_name : string; cte_body : with_body }

(** Action of a rewrite rule ([CREATE RULE ... DO INSTEAD ...]). *)
and rule_action = Ra_nothing | Ra_notify of string | Ra_stmt of stmt

and copy_src = Cs_table of string | Cs_query of query

and stmt =
  | S_create_table of
      { temp : bool; if_not_exists : bool; name : string;
        cols : col_def list }
  | S_create_index of
      { unique : bool; name : string; table : string; cols : string list }
  | S_create_view of { materialized : bool; name : string; query : query }
  | S_create_trigger of
      { name : string; timing : trig_timing; event : trig_event;
        table : string; body : stmt list }
  | S_create_rule of
      { name : string; table : string; event : trig_event; instead : bool;
        action : rule_action }
  | S_create_sequence of { name : string; start : int; step : int }
  | S_create_schema of string
  | S_create_database of string
  | S_create_user of { user : string; password : string }
  | S_drop of { target : drop_target; if_exists : bool }
  | S_alter_table of string * alter_action
  | S_alter_sequence of { name : string; step : int }
  | S_alter_user of { user : string; password : string }
  | S_rename_table of (string * string) list
  | S_truncate of string
  | S_comment_on of { table : string; comment : string }
  | S_insert of insert
  | S_replace of insert
  | S_update of update
  | S_delete of delete
  | S_copy_to of { src : copy_src; header : bool }
  | S_copy_from of { table : string; rows : literal list list }
  | S_load_data of { table : string; rows : literal list list }
  | S_select of query
  | S_with of { ctes : cte list; body : with_body }
  | S_table of string
  | S_explain of stmt
  | S_describe of string
  | S_show of show_what
  | S_grant of { privs : priv list; table : string; user : string }
  | S_revoke of { privs : priv list; table : string; user : string }
  | S_set_role of string
  | S_begin
  | S_commit
  | S_rollback
  | S_savepoint of string
  | S_release_savepoint of string
  | S_rollback_to of string
  | S_set_transaction of iso_level
  | S_lock_tables of (string * lock_mode) list
  | S_unlock_tables
  | S_set_var of { global : bool; name : string; value : literal }
  | S_reset_var of string
  | S_set_names of string
  | S_pragma of { name : string; value : literal option }
  | S_vacuum of string option
  | S_analyze of string option
  | S_reindex of string option
  | S_checkpoint
  | S_flush of flush_what
  | S_optimize of string
  | S_check_table of string
  | S_repair of string
  | S_notify of { channel : string; payload : string option }
  | S_listen of string
  | S_unlisten of string
  | S_discard of discard_what
  | S_prepare of { name : string; stmt : stmt }
  | S_execute of string
  | S_deallocate of string
  | S_use of string
  | S_do of expr
  | S_handler_open of string
  | S_handler_read of { table : string; dir : handler_dir }
  | S_handler_close of string
  | S_alter_system of string
  | S_refresh_matview of string
  | S_kill of int
  | S_cluster of string option

(** A test case is a sequence of statements (paper §II). *)
type testcase = stmt list

(* The top-most set operation classifies a compound query, matching how the
   paper's AST model assigns one type per statement. *)
let type_of_query = function
  | Q_select _ -> Stmt_type.Select
  | Q_values _ -> Stmt_type.Values_stmt
  | Q_compound (_, op, _) ->
    (match op with
     | Union | Union_all -> Stmt_type.Select_union
     | Intersect -> Stmt_type.Select_intersect
     | Except -> Stmt_type.Select_except)

(** [type_of_stmt s] is the SQL statement type of [s] — the abstraction at
    the heart of SQL Type Sequences. *)
let type_of_stmt : stmt -> Stmt_type.t = function
  | S_create_table { temp = false; _ } -> Create_table
  | S_create_table { temp = true; _ } -> Create_temp_table
  | S_create_index { unique = false; _ } -> Create_index
  | S_create_index { unique = true; _ } -> Create_unique_index
  | S_create_view { materialized = false; _ } -> Create_view
  | S_create_view { materialized = true; _ } -> Create_materialized_view
  | S_create_trigger _ -> Create_trigger
  | S_create_rule _ -> Create_rule
  | S_create_sequence _ -> Create_sequence
  | S_create_schema _ -> Create_schema
  | S_create_database _ -> Create_database
  | S_create_user _ -> Create_user
  | S_drop { target; _ } ->
    (match target with
     | D_table _ -> Drop_table
     | D_index _ -> Drop_index
     | D_view _ -> Drop_view
     | D_trigger _ -> Drop_trigger
     | D_rule _ -> Drop_rule
     | D_sequence _ -> Drop_sequence
     | D_schema _ -> Drop_schema
     | D_database _ -> Drop_database
     | D_user _ -> Drop_user)
  | S_alter_table (_, action) ->
    (match action with
     | Add_column _ -> Alter_table_add_column
     | Drop_column _ -> Alter_table_drop_column
     | Rename_to _ -> Alter_table_rename
     | Rename_column _ -> Alter_table_rename_column
     | Alter_column_type _ -> Alter_table_alter_type)
  | S_alter_sequence _ -> Alter_sequence
  | S_alter_user _ -> Alter_user
  | S_rename_table _ -> Rename_table
  | S_truncate _ -> Truncate
  | S_comment_on _ -> Comment_on
  | S_insert { i_source = Src_values _; _ } -> Insert
  | S_insert { i_source = Src_query _; _ } -> Insert_select
  | S_replace _ -> Replace_into
  | S_update _ -> Update
  | S_delete _ -> Delete
  | S_copy_to _ -> Copy_to
  | S_copy_from _ -> Copy_from
  | S_load_data _ -> Load_data
  | S_select q -> type_of_query q
  | S_with { ctes; body } ->
    let is_dml = function
      | W_query _ -> false
      | W_insert _ | W_update _ | W_delete _ -> true
    in
    if is_dml body || List.exists (fun c -> is_dml c.cte_body) ctes then
      With_dml
    else With_select
  | S_table _ -> Table_stmt
  | S_explain _ -> Explain
  | S_describe _ -> Describe
  | S_show Sh_tables -> Show_tables
  | S_show (Sh_columns _) -> Show_columns
  | S_show Sh_variables -> Show_variables
  | S_show Sh_status -> Show_status
  | S_grant _ -> Grant
  | S_revoke _ -> Revoke
  | S_set_role _ -> Set_role
  | S_begin -> Begin_txn
  | S_commit -> Commit_txn
  | S_rollback -> Rollback_txn
  | S_savepoint _ -> Savepoint
  | S_release_savepoint _ -> Release_savepoint
  | S_rollback_to _ -> Rollback_to_savepoint
  | S_set_transaction _ -> Set_transaction
  | S_lock_tables _ -> Lock_tables
  | S_unlock_tables -> Unlock_tables
  | S_set_var { global = false; _ } -> Set_var
  | S_set_var { global = true; _ } -> Set_global_var
  | S_reset_var _ -> Reset_var
  | S_set_names _ -> Set_names
  | S_pragma _ -> Pragma
  | S_vacuum _ -> Vacuum
  | S_analyze _ -> Analyze
  | S_reindex _ -> Reindex
  | S_checkpoint -> Checkpoint
  | S_flush _ -> Flush
  | S_optimize _ -> Optimize_table
  | S_check_table _ -> Check_table
  | S_repair _ -> Repair_table
  | S_notify _ -> Notify
  | S_listen _ -> Listen
  | S_unlisten _ -> Unlisten
  | S_discard _ -> Discard
  | S_prepare _ -> Prepare_stmt
  | S_execute _ -> Execute_stmt
  | S_deallocate _ -> Deallocate
  | S_use _ -> Use_db
  | S_do _ -> Do_expr
  | S_handler_open _ -> Handler_open
  | S_handler_read _ -> Handler_read
  | S_handler_close _ -> Handler_close
  | S_alter_system _ -> Alter_system
  | S_refresh_matview _ -> Refresh_matview
  | S_kill _ -> Kill_query
  | S_cluster _ -> Cluster

(** SQL Type Sequence of a test case (paper §II, Definition). *)
let type_sequence (tc : testcase) : Stmt_type.t list =
  List.map type_of_stmt tc
