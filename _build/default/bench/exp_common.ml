(* Shared campaign machinery for the paper-reproduction benches.

   One campaign = one fuzzer on one simulated DBMS with a fixed execution
   budget (the stand-in for the paper's 24-hour wall-clock runs; see
   DESIGN.md). Campaign results feed Figure 9 and Tables II-IV; extending
   a LEGO campaign to a larger budget gives the "continuous fuzzing" data
   of Table I. *)

type campaign = {
  c_fuzzer : string;
  c_dialect : string;
  c_series : (int * int) list;  (* (execs, branches) checkpoints *)
  c_final : Fuzz.Driver.snapshot;
  c_fz : Fuzz.Driver.fuzzer;
  c_lego : Lego.Lego_fuzzer.t option;
}

let budget =
  match Sys.getenv_opt "REPRO_EXECS" with
  | Some s -> (try max 1000 (int_of_string s) with Failure _ -> 60_000)
  | None -> 60_000

let continuous_budget = budget * 3

let dialects = Dialects.Registry.all

let dialect_name p = Minidb.Profile.name p

(* Keep the checkpoint count fixed so the Fig. 9 series is readable. *)
let checkpoint_every = max 1 (budget / 6)

let run_campaign ?(execs = budget) profile (name, fz, lego) =
  let series = ref [] in
  let final =
    Fuzz.Driver.run_until_execs ~checkpoint_every
      ~on_checkpoint:(fun snap ->
          series := (snap.Fuzz.Driver.st_execs, snap.st_branches) :: !series)
      fz ~execs
  in
  { c_fuzzer = name;
    c_dialect = dialect_name profile;
    c_series =
      List.rev ((final.Fuzz.Driver.st_execs, final.st_branches) :: !series);
    c_final = final;
    c_fz = fz;
    c_lego = lego }

let make_lego ?(seq = true) ?(max_seq_len = 5) ?(seed = 1) profile =
  let config =
    { Lego.Lego_fuzzer.default_config with
      sequence_oriented = seq; max_seq_len; seed }
  in
  let t = Lego.Lego_fuzzer.create ~config profile in
  ( (if seq then "LEGO" else "LEGO-"),
    Lego.Lego_fuzzer.fuzzer t,
    Some t )

let make_squirrel profile =
  ("SQUIRREL", Baselines.Squirrel_sim.fuzzer (Baselines.Squirrel_sim.create profile), None)

let make_sqlancer profile =
  ("SQLancer", Baselines.Sqlancer_sim.fuzzer (Baselines.Sqlancer_sim.create profile), None)

let make_sqlsmith profile =
  ("SQLsmith", Baselines.Sqlsmith_sim.fuzzer (Baselines.Sqlsmith_sim.create profile), None)

(* --- table rendering ------------------------------------------------ *)

let hr width = print_endline (String.make width '-')

let section title =
  print_newline ();
  hr 78;
  Printf.printf "%s\n" title;
  hr 78

let print_row widths cells =
  let padded =
    List.map2
      (fun w c -> Printf.sprintf "%-*s" w c)
      widths cells
  in
  print_endline (String.concat "  " padded)

let pct_improvement a b =
  if b = 0 then 0.0 else 100.0 *. (float_of_int a /. float_of_int b -. 1.0)
