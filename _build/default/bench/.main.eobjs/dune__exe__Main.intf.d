bench/main.mli:
