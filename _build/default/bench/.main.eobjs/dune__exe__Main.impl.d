bench/main.ml: Analyze Baselines Bechamel Benchmark Dialects Exp_common Fuzz Hashtbl Lazy Lego List Measure Minidb Printf Reprutil Sqlcore Sqlparser Staged String Test Time Toolkit
