bench/exp_common.ml: Baselines Dialects Fuzz Lego List Minidb Printf String Sys
