(* Quickstart: run SQL against MiniDB, then fuzz it with LEGO.

   dune exec examples/quickstart.exe *)

let print_result = function
  | Minidb.Executor.Rows (headers, rows) ->
    Printf.printf "  -> %s\n" (String.concat " | " headers);
    List.iter
      (fun row ->
         Printf.printf "     %s\n"
           (String.concat " | "
              (Array.to_list (Array.map Storage.Value.to_display row))))
      rows
  | Minidb.Executor.Affected n -> Printf.printf "  -> %d row(s) affected\n" n
  | Minidb.Executor.Done msg -> Printf.printf "  -> %s\n" msg

let () =
  (* 1. A DBMS session: PostgreSQL-sim with coverage instrumentation. *)
  let cov = Coverage.Bitmap.create () in
  let engine =
    Minidb.Engine.create ~profile:Dialects.Registry.pg_sim ~cov ()
  in
  let sql =
    "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(20), karma INT);\n\
     INSERT INTO users VALUES (1, 'ada', 100), (2, 'grace', 200), (3, \
     'edsger', 50);\n\
     SELECT name, karma FROM users WHERE karma > 80 ORDER BY karma DESC;\n\
     SELECT COUNT(*), MAX(karma) FROM users;"
  in
  print_endline "== Executing SQL against MiniDB (PostgreSQL-sim) ==";
  List.iter
    (fun stmt ->
       Printf.printf "%s;\n" (Sqlcore.Sql_printer.stmt stmt);
       match Minidb.Engine.exec_stmt engine stmt with
       | Minidb.Engine.Ok_result r -> print_result r
       | Minidb.Engine.Sql_failed e ->
         Printf.printf "  !! %s\n" (Minidb.Errors.message e))
    (Sqlparser.Parser.parse_testcase_exn sql);
  Printf.printf "\nCoverage collected: %d branches\n"
    (Coverage.Bitmap.count_nonzero cov);

  (* 2. Fuzz the same DBMS with LEGO for a short campaign. *)
  print_endline "\n== A short LEGO campaign ==";
  let lego = Lego.Lego_fuzzer.create Dialects.Registry.pg_sim in
  let snap =
    Fuzz.Driver.run_until_execs (Lego.Lego_fuzzer.fuzzer lego) ~execs:5000
  in
  Printf.printf
    "after %d executions: %d branches covered, %d type-affinities \
     discovered, %d sequences synthesized, %d unique crashes\n"
    snap.Fuzz.Driver.st_execs snap.st_branches
    (Lego.Affinity.count (Lego.Lego_fuzzer.affinities lego))
    (Lego.Lego_fuzzer.synthesized_total lego)
    snap.st_unique_crashes
