(* Affinity explorer: run a short LEGO campaign on a chosen dialect and
   dump what the sequence-oriented machinery learned — the discovered
   type-affinity map, the synthesis backlog, and the skeleton library.

   dune exec examples/affinity_explorer.exe -- [dialect] [execs] *)

open Sqlcore

let () =
  let dialect = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mariadb" in
  let execs =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 8000
  in
  let profile =
    match Dialects.Registry.by_name dialect with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown dialect %s (postgresql/mysql/mariadb/comdb2)\n"
        dialect;
      exit 1
  in
  Printf.printf "Exploring %s for %d executions...\n%!"
    (Minidb.Profile.name profile) execs;
  let lego = Lego.Lego_fuzzer.create profile in
  let snap =
    Fuzz.Driver.run_until_execs (Lego.Lego_fuzzer.fuzzer lego) ~execs
  in
  let affinity = Lego.Lego_fuzzer.affinities lego in
  Printf.printf
    "\nbranches: %d, unique crashes: %d, seeds kept: %d\n"
    snap.Fuzz.Driver.st_branches snap.st_unique_crashes
    (Lego.Lego_fuzzer.pool_size lego);
  Printf.printf "type-affinities discovered: %d\n"
    (Lego.Affinity.count affinity);
  Printf.printf "sequences synthesized (Algorithm 3): %d\n"
    (Lego.Lego_fuzzer.synthesized_total lego);
  Printf.printf "skeleton structures harvested: %d (covering %d types)\n"
    (Lego.Skeleton_library.count (Lego.Lego_fuzzer.skeletons lego))
    (Lego.Skeleton_library.types_covered (Lego.Lego_fuzzer.skeletons lego));

  (* the most connected statement types, like the paper's Fig. 3 map *)
  print_endline "\nBusiest affinity sources (type -> successor count):";
  let rows =
    List.filter_map
      (fun ty ->
         match Lego.Affinity.successors affinity ty with
         | [] -> None
         | succ -> Some (ty, List.length succ))
      (Minidb.Profile.types profile)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  List.iteri
    (fun i (ty, n) ->
       if i < 10 then Printf.printf "  %-28s %d successors\n" (Stmt_type.name ty) n)
    rows;

  print_endline "\nSample of discovered affinities:";
  List.iteri
    (fun i (a, b) ->
       if i < 15 then
         Printf.printf "  %s -> %s\n" (Stmt_type.name a) (Stmt_type.name b))
    (Lego.Affinity.pairs affinity);

  if snap.st_bugs <> [] then begin
    print_endline "\nBugs found:";
    List.iter (fun id -> Printf.printf "  %s\n" id) snap.st_bugs
  end
