(* The paper's Figure 7/8 case study: a SEGV in PostgreSQL's optimizer.

   The rewrite component replaces the INSERT inside a WITH clause with the
   rule's NOTIFY action, a case the planner does not expect: the query's
   jointree ends up NULL and replace_empty_jointree crashes. The type
   sequence is CREATE RULE -> NOTIFY(rewrite) -> COPY -> WITH, which is
   why only a sequence-diversifying fuzzer composes it.

   dune exec examples/case_notify_with.exe *)

let () =
  let tc =
    Sqlparser.Parser.parse_testcase_exn
      "CREATE TABLE v0 (v4 INT, v3 INT UNIQUE, v2 INT, v1 INT UNIQUE);\n\
       CREATE RULE v1 AS ON INSERT TO v0 DO INSTEAD NOTIFY compression;\n\
       COPY (SELECT 32 EXCEPT SELECT (v3 + 16) FROM v0) TO STDOUT CSV \
       HEADER;\n\
       WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v3 = 48;"
  in
  print_endline "== Paper Fig. 7 test case ==";
  print_endline (Sqlcore.Sql_printer.testcase tc);
  Printf.printf "\nSQL Type Sequence: %s\n"
    (String.concat " -> "
       (List.map Sqlcore.Stmt_type.name (Sqlcore.Ast.type_sequence tc)));
  let harness = Fuzz.Harness.create ~profile:Dialects.Registry.pg_sim () in
  (match (Fuzz.Harness.execute harness tc).Fuzz.Harness.o_crash with
   | Some crash ->
     print_endline "\nCrash reproduced:";
     Format.printf "%a@." Minidb.Fault.pp_crash crash
   | None -> print_endline "\nNo crash -- unexpected!");
  (* Show that the WITH statement alone (without the rule) is harmless. *)
  let benign =
    Sqlparser.Parser.parse_testcase_exn
      "CREATE TABLE v0 (v4 INT, v3 INT UNIQUE, v2 INT, v1 INT UNIQUE);\n\
       COPY (SELECT 32 EXCEPT SELECT (v3 + 16) FROM v0) TO STDOUT CSV \
       HEADER;\n\
       WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v3 = 48;"
  in
  match (Fuzz.Harness.execute harness benign).Fuzz.Harness.o_crash with
  | None ->
    print_endline
      "Control: the same WITH-DML without the CREATE RULE step executes \
       fine -- the bug needs the full sequence."
  | Some _ -> print_endline "Control unexpectedly crashed!"
