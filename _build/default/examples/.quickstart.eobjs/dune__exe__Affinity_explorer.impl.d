examples/affinity_explorer.ml: Array Dialects Fuzz Lego List Minidb Printf Sqlcore Stmt_type Sys
