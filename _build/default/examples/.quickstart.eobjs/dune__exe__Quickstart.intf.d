examples/quickstart.mli:
