examples/case_trigger_cve.ml: Dialects Format Fuzz Lego List Minidb Printf Reprutil Sql_printer Sqlcore Sqlparser Stmt_type
