examples/case_notify_with.mli:
