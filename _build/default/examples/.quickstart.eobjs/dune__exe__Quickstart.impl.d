examples/quickstart.ml: Array Coverage Dialects Fuzz Lego List Minidb Printf Sqlcore Sqlparser Storage String
