examples/case_notify_with.ml: Dialects Format Fuzz List Minidb Printf Sqlcore Sqlparser String
