examples/case_trigger_cve.mli:
