examples/affinity_explorer.mli:
