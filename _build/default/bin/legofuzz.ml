(* legofuzz: command-line driver for the LEGO reproduction.

   Subcommands:
     fuzz       run one fuzzer on one simulated DBMS
     compare    run every fuzzer on one DBMS with the same budget
     bugs       print the seeded bug inventory (Table I data)
     affinities run LEGO briefly and dump the learned affinity map
     exec       execute a SQL file against a simulated DBMS *)

open Cmdliner

let profile_of_name name =
  match Dialects.Registry.by_name name with
  | Some p -> Ok p
  | None ->
    Error
      (`Msg
         (Printf.sprintf
            "unknown DBMS %S (try postgresql, mysql, mariadb, comdb2)" name))

let dialect_conv =
  Arg.conv
    ( (fun s -> profile_of_name s),
      fun fmt p -> Format.pp_print_string fmt (Minidb.Profile.name p) )

let dialect_arg =
  let doc = "Simulated DBMS: postgresql, mysql, mariadb or comdb2." in
  Arg.(
    value
    & opt dialect_conv Dialects.Registry.pg_sim
    & info [ "d"; "dialect" ] ~docv:"DBMS" ~doc)

let execs_arg =
  let doc = "Execution budget." in
  Arg.(value & opt int 50_000 & info [ "n"; "execs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed (campaigns are deterministic per seed)." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let make_fuzzer name profile seed =
  match String.lowercase_ascii name with
  | "lego" ->
    let cfg = { Lego.Lego_fuzzer.default_config with seed } in
    Ok (Lego.Lego_fuzzer.fuzzer (Lego.Lego_fuzzer.create ~config:cfg profile))
  | "lego-" | "lego_minus" ->
    let cfg =
      { Lego.Lego_fuzzer.default_config with seed; sequence_oriented = false }
    in
    Ok (Lego.Lego_fuzzer.fuzzer (Lego.Lego_fuzzer.create ~config:cfg profile))
  | "squirrel" ->
    Ok
      (Baselines.Squirrel_sim.fuzzer
         (Baselines.Squirrel_sim.create ~seed profile))
  | "sqlancer" ->
    Ok
      (Baselines.Sqlancer_sim.fuzzer
         (Baselines.Sqlancer_sim.create ~seed profile))
  | "sqlsmith" ->
    Ok
      (Baselines.Sqlsmith_sim.fuzzer
         (Baselines.Sqlsmith_sim.create ~seed profile))
  | other ->
    Error
      (`Msg
         (Printf.sprintf
            "unknown fuzzer %S (lego, lego-, squirrel, sqlancer, sqlsmith)"
            other))

let report name snap =
  Printf.printf
    "%-9s execs=%d branches=%d crashes(total)=%d crashes(unique)=%d\n" name
    snap.Fuzz.Driver.st_execs snap.st_branches snap.st_total_crashes
    snap.st_unique_crashes;
  if snap.st_bugs <> [] then
    Printf.printf "  bugs: %s\n" (String.concat ", " snap.st_bugs)

(* --- fuzz ------------------------------------------------------------ *)

let fuzz_cmd =
  let fuzzer_arg =
    let doc = "Fuzzer: lego, lego-, squirrel, sqlancer or sqlsmith." in
    Arg.(
      value & opt string "lego" & info [ "f"; "fuzzer" ] ~docv:"FUZZER" ~doc)
  in
  let save_arg =
    let doc = "Directory to write one reduced .sql reproducer per bug." in
    Arg.(value & opt (some string) None & info [ "o"; "save" ] ~docv:"DIR" ~doc)
  in
  let run fuzzer profile execs seed save =
    match make_fuzzer fuzzer profile seed with
    | Error (`Msg m) ->
      prerr_endline m;
      exit 2
    | Ok fz ->
      Printf.printf "fuzzing %s with %s, %d executions...\n%!"
        (Minidb.Profile.name profile) fuzzer execs;
      let snap =
        Fuzz.Driver.run_until_execs ~checkpoint_every:(max 1 (execs / 5))
          ~on_checkpoint:(fun s ->
              Printf.printf "  ... execs=%d branches=%d bugs=%d\n%!"
                s.Fuzz.Driver.st_execs s.st_branches (List.length s.st_bugs))
          fz ~execs
      in
      report fuzzer snap;
      (match save with
       | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
       | _ -> ());
      let tri = Fuzz.Harness.triage fz.Fuzz.Driver.f_harness in
      List.iter
        (fun ((c : Minidb.Fault.crash), testcase) ->
           Format.printf "@.%a@." Minidb.Fault.pp_crash c;
           match testcase with
           | None -> ()
           | Some tc ->
             (* ship a minimized reproducer, like the paper's Fig. 3/7 *)
             let bug_id = c.Minidb.Fault.c_bug.Minidb.Fault.bug_id in
             let reduced =
               (Fuzz.Reducer.reduce ~profile ~max_tries:256 ~bug_id tc)
                 .Fuzz.Reducer.r_testcase
             in
             let sql = Sqlcore.Sql_printer.testcase reduced in
             Printf.printf "reproducer (%d statements):\n%s\n"
               (List.length reduced) sql;
             (match save with
              | None -> ()
              | Some dir ->
                let path = Filename.concat dir (bug_id ^ ".sql") in
                Out_channel.with_open_text path (fun oc ->
                    Out_channel.output_string oc (sql ^ "\n"));
                Printf.printf "saved to %s\n" path))
        (Fuzz.Triage.unique_with_cases tri)
  in
  let term =
    Term.(const run $ fuzzer_arg $ dialect_arg $ execs_arg $ seed_arg
          $ save_arg)
  in
  Cmd.v (Cmd.info "fuzz" ~doc:"Run one fuzzer on one simulated DBMS.") term

(* --- compare --------------------------------------------------------- *)

let compare_cmd =
  let run profile execs seed =
    List.iter
      (fun name ->
         match make_fuzzer name profile seed with
         | Error _ -> ()
         | Ok fz ->
           let snap = Fuzz.Driver.run_until_execs fz ~execs in
           report name snap)
      [ "lego"; "lego-"; "squirrel"; "sqlancer"; "sqlsmith" ]
  in
  let term = Term.(const run $ dialect_arg $ execs_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run every fuzzer on one DBMS with the same budget.")
    term

(* --- bugs ------------------------------------------------------------ *)

let bugs_cmd =
  let run profile =
    let bugs = Minidb.Profile.bugs profile in
    Printf.printf "%s: %d seeded bugs\n" (Minidb.Profile.name profile)
      (List.length bugs);
    List.iter
      (fun (b : Minidb.Fault.bug) ->
         Printf.printf "  %-12s %-10s %-5s %s\n" b.Minidb.Fault.bug_id
           b.Minidb.Fault.component
           (Minidb.Fault.kind_name b.Minidb.Fault.kind)
           b.Minidb.Fault.identifier)
      bugs
  in
  let term = Term.(const run $ dialect_arg) in
  Cmd.v
    (Cmd.info "bugs" ~doc:"Print the seeded bug inventory (Table I data).")
    term

(* --- affinities ------------------------------------------------------ *)

let affinities_cmd =
  let run profile execs seed =
    let cfg = { Lego.Lego_fuzzer.default_config with seed } in
    let t = Lego.Lego_fuzzer.create ~config:cfg profile in
    let _ = Fuzz.Driver.run_until_execs (Lego.Lego_fuzzer.fuzzer t) ~execs in
    let aff = Lego.Lego_fuzzer.affinities t in
    Printf.printf "%d affinities after %d executions on %s:\n"
      (Lego.Affinity.count aff) execs (Minidb.Profile.name profile);
    List.iter
      (fun (a, b) ->
         Printf.printf "  %s -> %s\n" (Sqlcore.Stmt_type.name a)
           (Sqlcore.Stmt_type.name b))
      (Lego.Affinity.pairs aff)
  in
  let term = Term.(const run $ dialect_arg $ execs_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "affinities"
       ~doc:"Run LEGO briefly and dump the learned type-affinity map.")
    term

(* --- exec ------------------------------------------------------------ *)

let exec_cmd =
  let file_arg =
    let doc = "SQL file to execute ('-' for stdin)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run profile file =
    let sql =
      if file = "-" then In_channel.input_all In_channel.stdin
      else In_channel.with_open_text file In_channel.input_all
    in
    match Sqlparser.Parser.parse_testcase sql with
    | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
    | Ok tc ->
      let cov = Coverage.Bitmap.create () in
      let engine = Minidb.Engine.create ~profile ~cov () in
      (try
         List.iter
           (fun stmt ->
              Printf.printf "%s;\n" (Sqlcore.Sql_printer.stmt stmt);
              match Minidb.Engine.exec_stmt engine stmt with
              | Minidb.Engine.Ok_result
                  (Minidb.Executor.Rows (headers, rows)) ->
                Printf.printf "  -> %s\n" (String.concat " | " headers);
                List.iter
                  (fun row ->
                     Printf.printf "     %s\n"
                       (String.concat " | "
                          (Array.to_list
                             (Array.map Storage.Value.to_display row))))
                  rows
              | Minidb.Engine.Ok_result (Minidb.Executor.Affected n) ->
                Printf.printf "  -> %d row(s)\n" n
              | Minidb.Engine.Ok_result (Minidb.Executor.Done msg) ->
                Printf.printf "  -> %s\n" msg
              | Minidb.Engine.Sql_failed e ->
                Printf.printf "  !! %s\n" (Minidb.Errors.message e))
           tc
       with Minidb.Fault.Crashed c ->
         Format.printf "@.*** server crash ***@.%a@." Minidb.Fault.pp_crash c);
      Printf.printf "\n%d branches covered\n"
        (Coverage.Bitmap.count_nonzero cov)
  in
  let term = Term.(const run $ dialect_arg $ file_arg) in
  Cmd.v
    (Cmd.info "exec" ~doc:"Execute a SQL file against a simulated DBMS.")
    term

(* --- reduce ----------------------------------------------------------- *)

let reduce_cmd =
  let file_arg =
    let doc = "SQL file holding the crashing test case ('-' for stdin)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let bug_arg =
    let doc =
      "Internal bug id to preserve (see the $(b,bugs) subcommand); when \
       omitted, the bug the case currently triggers is used."
    in
    Arg.(value & opt (some string) None & info [ "b"; "bug" ] ~docv:"ID" ~doc)
  in
  let run profile file bug_opt =
    let sql =
      if file = "-" then In_channel.input_all In_channel.stdin
      else In_channel.with_open_text file In_channel.input_all
    in
    match Sqlparser.Parser.parse_testcase sql with
    | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
    | Ok tc ->
      let bug_id =
        match bug_opt with
        | Some id -> Some id
        | None -> (
            let cov = Coverage.Bitmap.create () in
            let engine = Minidb.Engine.create ~profile ~cov () in
            match
              (Minidb.Engine.run_testcase engine tc).Minidb.Engine.rs_crash
            with
            | Some c -> Some c.Minidb.Fault.c_bug.Minidb.Fault.bug_id
            | None -> None)
      in
      (match bug_id with
       | None ->
         Printf.eprintf "the test case does not crash %s\n"
           (Minidb.Profile.name profile);
         exit 1
       | Some bug_id ->
         let out = Fuzz.Reducer.reduce ~profile ~bug_id tc in
         Printf.printf
           "-- reduced for %s: %d -> %d statements (%d oracle runs)\n%s\n"
           bug_id (List.length tc)
           (List.length out.Fuzz.Reducer.r_testcase)
           out.Fuzz.Reducer.r_tries
           (Sqlcore.Sql_printer.testcase out.Fuzz.Reducer.r_testcase))
  in
  let term = Term.(const run $ dialect_arg $ file_arg $ bug_arg) in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Shrink a crashing SQL test case while keeping the same bug.")
    term

let () =
  let doc = "LEGO (ICDE'23) sequence-oriented DBMS fuzzing, reproduced." in
  let info = Cmd.info "legofuzz" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ fuzz_cmd; compare_cmd; bugs_cmd; affinities_cmd; exec_cmd;
            reduce_cmd ]))
