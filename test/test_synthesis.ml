(* Tests for progressive sequence synthesis — the paper's Algorithm 3 and
   its Prefix Sequence index. *)

open Sqlcore
module A = Lego.Affinity
module S = Lego.Synthesis

let ct = Stmt_type.Create_table
let ins = Stmt_type.Insert
let sel = Stmt_type.Select
let upd = Stmt_type.Update

let mk ?(max_len = 3) ?(types = [ ct; ins; sel; upd ]) () =
  (A.create (), S.create ~max_len ~types ())

let names seqs =
  List.sort compare
    (List.map (fun s -> String.concat ">" (List.map Stmt_type.name s)) seqs)

(* [on_new_affinity] returns sequence ids; tests reason over the
   reconstructed type lists. *)
let names_of_ids s ids = names (List.map (S.to_types s) ids)

let test_singletons_seeded () =
  let _, s = mk () in
  Alcotest.(check int) "one per type" 4 (S.total s);
  Alcotest.(check int) "ps bucket" 1 (S.prefix_count s ~ty:ct ~len:1)

let test_first_affinity () =
  let aff, s = mk () in
  ignore (A.add aff ct ins);
  let news = S.on_new_affinity s aff (ct, ins) in
  (* the only prefix ending in CREATE TABLE is [CREATE TABLE] itself *)
  Alcotest.(check (list string)) "one new sequence"
    [ "CREATE TABLE>INSERT" ] (names_of_ids s news)

let test_paper_example () =
  (* Paper: LEN 2, current "CREATE TABLE", affinity
     CREATE TABLE -> [INSERT, SELECT] gives both length-2 sequences. *)
  let aff, s = mk ~max_len:2 () in
  ignore (A.add aff ct ins);
  let n1 = S.on_new_affinity s aff (ct, ins) in
  ignore (A.add aff ct sel);
  let n2 = S.on_new_affinity s aff (ct, sel) in
  Alcotest.(check (list string)) "both sequences"
    [ "CREATE TABLE>INSERT"; "CREATE TABLE>SELECT" ]
    (names_of_ids s (n1 @ n2))

let test_closure_under_existing_affinities () =
  (* With CREATE->INSERT known, discovering INSERT->SELECT must produce
     both [INSERT;SELECT] and [CREATE;INSERT;SELECT] (and their
     extensions), because synthesis closes over the whole affinity map. *)
  let aff, s = mk ~max_len:3 () in
  ignore (A.add aff ct ins);
  ignore (S.on_new_affinity s aff (ct, ins));
  ignore (A.add aff ins sel);
  let news = S.on_new_affinity s aff (ins, sel) in
  let got = names_of_ids s news in
  Alcotest.(check bool) "short form" true
    (List.mem "INSERT>SELECT" got);
  Alcotest.(check bool) "extended form" true
    (List.mem "CREATE TABLE>INSERT>SELECT" got)

let test_only_new_sequences () =
  (* Re-announcing the same affinity must produce nothing new. *)
  let aff, s = mk () in
  ignore (A.add aff ct ins);
  ignore (S.on_new_affinity s aff (ct, ins));
  let again = S.on_new_affinity s aff (ct, ins) in
  Alcotest.(check int) "idempotent" 0 (List.length again)

let test_all_results_contain_affinity () =
  let aff, s = mk ~max_len:4 () in
  ignore (A.add aff ct ins);
  ignore (S.on_new_affinity s aff (ct, ins));
  ignore (A.add aff ins upd);
  ignore (S.on_new_affinity s aff (ins, upd));
  ignore (A.add aff upd sel);
  let news = List.map (S.to_types s) (S.on_new_affinity s aff (upd, sel)) in
  let contains_pair seq =
    let rec loop = function
      | a :: (b :: _ as rest) ->
        (Stmt_type.equal a upd && Stmt_type.equal b sel) || loop rest
      | _ -> false
    in
    loop seq
  in
  Alcotest.(check bool) "nonempty" true (news <> []);
  Alcotest.(check bool) "every sequence contains the new affinity" true
    (List.for_all contains_pair news)

let test_length_bound () =
  let aff, s = mk ~max_len:3 () in
  ignore (A.add aff ct ct);  (* self loop to provoke depth *)
  ignore (A.add aff ct ins);
  let news = List.map (S.to_types s) (S.on_new_affinity s aff (ct, ins)) in
  Alcotest.(check bool) "all within LEN" true
    (List.for_all (fun seq -> List.length seq <= 3) news)

let test_prefix_index_invariant () =
  let aff, s = mk ~max_len:3 () in
  ignore (A.add aff ct ins);
  ignore (S.on_new_affinity s aff (ct, ins));
  ignore (A.add aff ins sel);
  ignore (S.on_new_affinity s aff (ins, sel));
  (* every recorded sequence must be indexed under (last type, length) *)
  let ok =
    List.for_all
      (fun seq ->
         match List.rev seq with
         | last :: _ ->
           S.prefix_count s ~ty:last ~len:(List.length seq) > 0
         | [] -> false)
      (S.sequences s)
  in
  Alcotest.(check bool) "PS invariant" true ok

let test_budget_cap () =
  (* a dense affinity graph stays within the per-affinity budget *)
  let types =
    List.filteri (fun i _ -> i < 10) Stmt_type.all
  in
  let aff = A.create () in
  let s = S.create ~max_len:5 ~max_per_affinity:100 ~types () in
  List.iter
    (fun a -> List.iter (fun b -> ignore (A.add aff a b)) types)
    types;
  let news = S.on_new_affinity s aff (List.hd types, List.nth types 1) in
  Alcotest.(check bool) "capped" true (List.length news <= 100)

(* Property: synthesized sequences are unique and walk the affinity map. *)
let prop_sequences_walk_affinities =
  QCheck.Test.make ~name:"synthesized sequences respect affinities"
    ~count:100
    QCheck.(small_list (pair (int_bound 7) (int_bound 7)))
    (fun pairs ->
       let types = List.filteri (fun i _ -> i < 8) Stmt_type.all in
       let aff = A.create () in
       let s = S.create ~max_len:4 ~types () in
       let ok = ref true in
       List.iter
         (fun (i, j) ->
            if i <> j then begin
              let a = List.nth types i and b = List.nth types j in
              if A.add aff a b then
                List.iter
                  (fun seq ->
                     let rec walk = function
                       | x :: (y :: _ as rest) ->
                         if A.mem aff x y then walk rest else ok := false
                       | _ -> ()
                     in
                     walk (S.to_types s seq))
                  (S.on_new_affinity s aff (a, b))
            end)
         pairs;
       (* uniqueness of everything recorded *)
       let all = names (S.sequences s) in
       !ok && List.length all = List.length (List.sort_uniq compare all))

let suite =
  [ ("singletons seeded", `Quick, test_singletons_seeded);
    ("first affinity", `Quick, test_first_affinity);
    ("paper example", `Quick, test_paper_example);
    ("closure under existing affinities", `Quick,
     test_closure_under_existing_affinities);
    ("only new sequences", `Quick, test_only_new_sequences);
    ("results contain affinity", `Quick, test_all_results_contain_affinity);
    ("length bound", `Quick, test_length_bound);
    ("prefix index invariant", `Quick, test_prefix_index_invariant);
    ("budget cap", `Quick, test_budget_cap);
    QCheck_alcotest.to_alcotest prop_sequences_walk_affinities ]
