(* Aggregated test runner for the whole repository. *)

let () =
  Alcotest.run "lego_repro"
    [ ("reprutil", Test_reprutil.suite);
      ("prop", Test_prop.suite);
      ("stmt_type", Test_stmt_type.suite);
      ("value", Test_value.suite);
      ("storage", Test_storage.suite);
      ("cow_equiv", Test_cow_equiv.suite);
      ("coverage", Test_coverage.suite);
      ("parser", Test_parser.suite);
      ("executor", Test_executor.suite);
      ("fault", Test_fault.suite);
      ("affinity", Test_affinity.suite);
      ("synthesis", Test_synthesis.suite);
      ("lego_core", Test_lego_core.suite);
      ("dialects", Test_dialects.suite);
      ("expr_eval", Test_expr_eval.suite);
      ("printer_astutil", Test_printer_astutil.suite);
      ("planner_rewriter", Test_planner_rewriter.suite);
      ("engine", Test_engine.suite);
      ("reducer", Test_reducer.suite);
      ("oracle", Test_oracle.suite);
      ("campaign", Test_campaign.suite);
      ("telemetry", Test_telemetry.suite);
      ("baselines", Test_baselines.suite);
      ("extensions", Test_extensions.suite);
      ("integration", Test_integration.suite);
      ("cache", Test_cache.suite);
      ("server", Test_server.suite);
      ("schedule", Test_schedule.suite);
      ("farm", Test_farm.suite) ]
