(* Exact-form tests for the SQL printer, and structural tests for
   Ast_util's traversals. *)

open Sqlcore
module P = Sqlparser.Parser

let print_of sql = Sql_printer.stmt (P.parse_stmt_exn sql)

let test_printer_exact_forms () =
  (* normalized canonical output for a few statements *)
  List.iter
    (fun (input, expected) ->
       Alcotest.(check string) input expected (print_of input))
    [ ("select   1", "SELECT 1");
      ("select a from t where a>1 order by a",
       "SELECT a FROM t WHERE (a > 1) ORDER BY a ASC");
      ("truncate t", "TRUNCATE TABLE t");
      ("insert into t values(1)", "INSERT INTO t VALUES (1)");
      ("rollback to savepoint s", "ROLLBACK TO SAVEPOINT s");
      ("select 'it''s'", "SELECT 'it''s'");
      ("select count ( * ) from t", "SELECT COUNT(*) FROM t");
      ("delete from t limit 2", "DELETE FROM t LIMIT 2") ]

let test_float_literals_keep_a_dot () =
  Alcotest.(check string) "whole float" "SELECT 2.0"
    (print_of "SELECT 2.0");
  Alcotest.(check string) "fraction survives" "SELECT 0.5"
    (print_of "SELECT 0.5")

let test_testcase_joins_with_semicolons () =
  let tc = P.parse_testcase_exn "SELECT 1; SELECT 2" in
  Alcotest.(check string) "joined" "SELECT 1;\nSELECT 2;"
    (Sql_printer.testcase tc);
  Alcotest.(check string) "empty" "" (Sql_printer.testcase [])

let test_escape_in_strings () =
  let s = Ast.S_notify { channel = "c"; payload = Some "a'b" } in
  Alcotest.(check string) "escaped payload" "NOTIFY c, 'a''b'"
    (Sql_printer.stmt s)

(* --- Ast_util -------------------------------------------------------- *)

let test_tables_read_written () =
  let s =
    P.parse_stmt_exn
      "INSERT INTO target SELECT a FROM src1 JOIN src2 ON TRUE WHERE \
       (EXISTS (SELECT 1 FROM src3))"
  in
  Alcotest.(check (list string)) "reads" [ "src1"; "src2"; "src3" ]
    (List.sort compare (Ast_util.tables_read s));
  Alcotest.(check (list string)) "writes" [ "target" ]
    (Ast_util.tables_written s)

let test_tables_in_with () =
  let s =
    P.parse_stmt_exn
      "WITH w AS (INSERT INTO t1 VALUES (1)) DELETE FROM t2 WHERE (a IN \
       (SELECT a FROM t3))"
  in
  Alcotest.(check (list string)) "writes both" [ "t1"; "t2" ]
    (List.sort compare (Ast_util.tables_written s));
  Alcotest.(check (list string)) "reads subquery" [ "t3" ]
    (Ast_util.tables_read s)

let test_map_table_refs () =
  let s = P.parse_stmt_exn "SELECT t.a FROM t WHERE (t.b > 0)" in
  let renamed =
    Ast_util.map_table_refs (fun n -> if n = "t" then "u" else n) s
  in
  Alcotest.(check string) "all refs renamed"
    "SELECT u.a FROM u WHERE (u.b > 0)"
    (Sql_printer.stmt renamed)

let test_map_exprs_bottom_up () =
  let s = P.parse_stmt_exn "SELECT 1 + 2" in
  (* constant-fold adds via a bottom-up rewrite *)
  let folded =
    Ast_util.map_exprs
      (function
        | Ast.Binop (Ast.Add, Ast.Lit (Ast.L_int a), Ast.Lit (Ast.L_int b))
          -> Ast.Lit (Ast.L_int (a + b))
        | e -> e)
      s
  in
  Alcotest.(check string) "folded" "SELECT 3" (Sql_printer.stmt folded)

let test_fold_exprs_counts () =
  let s = P.parse_stmt_exn "SELECT a + 1 FROM t WHERE b = 2" in
  let lits =
    Ast_util.fold_exprs
      (fun acc e -> match e with Ast.Lit _ -> acc + 1 | _ -> acc)
      0 s
  in
  Alcotest.(check int) "two literals" 2 lits

let test_feature_detectors () =
  let s =
    P.parse_stmt_exn
      "SELECT RANK() OVER (ORDER BY a ASC), (SELECT MAX(b) FROM u) FROM t"
  in
  Alcotest.(check bool) "window" true (Ast_util.has_window_fn s);
  Alcotest.(check bool) "subquery" true (Ast_util.has_subquery s);
  Alcotest.(check bool) "aggregate (inside subquery)" true
    (Ast_util.has_aggregate s);
  let plain = P.parse_stmt_exn "SELECT a FROM t" in
  Alcotest.(check bool) "no window" false (Ast_util.has_window_fn plain);
  Alcotest.(check bool) "no subquery" false (Ast_util.has_subquery plain)

let test_objects_created () =
  Alcotest.(check (list (pair string string))) "table"
    [ ("table", "t") ]
    (Ast_util.objects_created (P.parse_stmt_exn "CREATE TABLE t (a INT)"));
  Alcotest.(check (list (pair string string))) "temp table"
    [ ("temp_table", "t") ]
    (Ast_util.objects_created
       (P.parse_stmt_exn "CREATE TEMPORARY TABLE t (a INT)"));
  Alcotest.(check (list (pair string string))) "view"
    [ ("view", "v") ]
    (Ast_util.objects_created (P.parse_stmt_exn "CREATE VIEW v AS SELECT 1"))

let test_column_refs () =
  let s = P.parse_stmt_exn "SELECT a, t.b FROM t WHERE c > 1" in
  let refs = Ast_util.column_refs s in
  Alcotest.(check int) "three refs" 3 (List.length refs);
  Alcotest.(check bool) "qualified captured" true
    (List.mem (Some "t", "b") refs)

let test_stmt_size_monotone () =
  let small = P.parse_stmt_exn "SELECT 1" in
  let big =
    P.parse_stmt_exn
      "SELECT a + b * c FROM t JOIN u ON (t.x = u.y) WHERE (a IN (1,2,3)) \
       GROUP BY a HAVING (COUNT(*) > 2) ORDER BY a ASC"
  in
  Alcotest.(check bool) "bigger statement bigger size" true
    (Ast_util.stmt_size big > Ast_util.stmt_size small)

let test_expr_depth () =
  Alcotest.(check int) "literal" 1 (Ast_util.expr_depth (Ast.Lit Ast.L_null));
  let e =
    match Sqlparser.Parser.parse_expr "1 + (2 * (3 - 4))" with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "nested" 4 (Ast_util.expr_depth e)

(* property: printing any parsed statement is stable (print . parse .
   print = print) — 1000 generator-driven cases with shrinking over the
   (seed, statement type) space via the in-tree Prop harness *)
let test_prop_print_stable () =
  let arb =
    Reprutil.Prop.(pair (int_range 0 9999) (int_range 0 (Stmt_type.count - 1)))
  in
  Reprutil.Prop.check ~count:1000 ~name:"printer is a normal form" arb
    (fun (seed, idx) ->
       let rng = Reprutil.Rng.create (seed + 77) in
       let schema = Lego.Sym_schema.empty () in
       let stmt = Lego.Generator.stmt rng schema (Stmt_type.of_index idx) in
       let once = Sql_printer.stmt stmt in
       let twice = Sql_printer.stmt (P.parse_stmt_exn once) in
       once = twice)

let suite =
  [ ("printer exact forms", `Quick, test_printer_exact_forms);
    ("float literals keep a dot", `Quick, test_float_literals_keep_a_dot);
    ("testcase joining", `Quick, test_testcase_joins_with_semicolons);
    ("string escaping", `Quick, test_escape_in_strings);
    ("tables read/written", `Quick, test_tables_read_written);
    ("tables in WITH", `Quick, test_tables_in_with);
    ("map_table_refs", `Quick, test_map_table_refs);
    ("map_exprs bottom-up", `Quick, test_map_exprs_bottom_up);
    ("fold_exprs counts", `Quick, test_fold_exprs_counts);
    ("feature detectors", `Quick, test_feature_detectors);
    ("objects_created", `Quick, test_objects_created);
    ("column_refs", `Quick, test_column_refs);
    ("stmt_size monotone", `Quick, test_stmt_size_monotone);
    ("expr_depth", `Quick, test_expr_depth);
    ("printer is a normal form (1000 cases)", `Quick,
     test_prop_print_stable) ]
