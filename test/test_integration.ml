(* Integration tests: harness, seed pool, triage, full fuzzing loops, and
   the paper's two case studies reproduced end to end. *)

open Sqlcore

let parse = Sqlparser.Parser.parse_testcase_exn

(* --- harness --------------------------------------------------------- *)

let test_harness_accumulates () =
  let h = Fuzz.Harness.create ~profile:Dialects.Registry.pg_sim () in
  let tc = parse "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);" in
  let o1 = Fuzz.Harness.execute h tc in
  Alcotest.(check bool) "first run finds coverage" true
    (o1.Fuzz.Harness.o_new_branches > 0);
  let o2 = Fuzz.Harness.execute h tc in
  Alcotest.(check int) "identical rerun finds nothing" 0
    o2.Fuzz.Harness.o_new_branches;
  Alcotest.(check bool) "same coverage hash" true
    (o1.Fuzz.Harness.o_cov_hash = o2.Fuzz.Harness.o_cov_hash);
  Alcotest.(check int) "execs counted" 2 (Fuzz.Harness.execs h);
  Alcotest.(check bool) "branches recorded" true (Fuzz.Harness.branches h > 0)

let test_harness_fresh_state_per_exec () =
  let h = Fuzz.Harness.create ~profile:Dialects.Registry.pg_sim () in
  ignore (Fuzz.Harness.execute h (parse "CREATE TABLE t (a INT);"));
  (* the table must NOT exist in the next execution *)
  let o =
    Fuzz.Harness.execute h (parse "INSERT INTO t VALUES (1); SELECT 1;")
  in
  Alcotest.(check int) "insert failed on fresh engine" 1
    o.Fuzz.Harness.o_errors

(* --- seed pool ------------------------------------------------------- *)

let test_seed_pool_dedup_and_select () =
  let pool = Fuzz.Seed_pool.create () in
  let tc = parse "SELECT 1;" in
  Alcotest.(check bool) "added" true
    (Fuzz.Seed_pool.add pool ~tc ~cov_hash:1L ~new_branches:5 ~cost:10);
  Alcotest.(check bool) "duplicate hash rejected" false
    (Fuzz.Seed_pool.add pool ~tc ~cov_hash:1L ~new_branches:9 ~cost:2);
  Alcotest.(check int) "size" 1 (Fuzz.Seed_pool.size pool);
  let rng = Reprutil.Rng.create 1 in
  (match Fuzz.Seed_pool.select pool rng with
   | Some s -> Alcotest.(check int) "selection counted" 1
                 s.Fuzz.Seed_pool.sd_selections
   | None -> Alcotest.fail "expected a seed");
  Alcotest.(check bool) "empty pool selects none" true
    (Fuzz.Seed_pool.select (Fuzz.Seed_pool.create ()) rng = None)

(* --- triage ---------------------------------------------------------- *)

let test_triage_dedup () =
  let tri = Fuzz.Triage.create () in
  let bug b =
    { Minidb.Fault.bug_id = b; identifier = b; component = "DML";
      kind = Minidb.Fault.Segv; cond = Minidb.Fault.State "x" }
  in
  let crash b =
    { Minidb.Fault.c_bug = bug b;
      c_stack = Minidb.Fault.stack_of_bug (bug b) }
  in
  Alcotest.(check bool) "new" true (Fuzz.Triage.record tri (crash "A"));
  Alcotest.(check bool) "dup" false (Fuzz.Triage.record tri (crash "A"));
  Alcotest.(check bool) "other" true (Fuzz.Triage.record tri (crash "B"));
  Alcotest.(check int) "total 3" 3 (Fuzz.Triage.total_crashes tri);
  Alcotest.(check int) "unique 2" 2 (Fuzz.Triage.unique_count tri);
  Alcotest.(check (list string)) "bug ids" [ "A"; "B" ]
    (Fuzz.Triage.bug_ids tri)

(* --- corpus ---------------------------------------------------------- *)

let test_corpus_valid_everywhere () =
  List.iter
    (fun profile ->
       let seeds = Fuzz.Corpus.initial profile in
       Alcotest.(check bool)
         (Minidb.Profile.name profile ^ " has seeds")
         true (List.length seeds >= 5);
       (* every corpus seed must execute without crashing *)
       let h = Fuzz.Harness.create ~profile () in
       List.iter
         (fun tc ->
            let o = Fuzz.Harness.execute h tc in
            Alcotest.(check bool) "no crash on corpus" true
              (o.Fuzz.Harness.o_crash = None))
         seeds)
    Dialects.Registry.all

(* --- case studies ---------------------------------------------------- *)

let test_fig7_postgres_case_study () =
  (* paper Fig. 7: CREATE RULE -> (rewrite) -> WITH-DML crashes the
     planner with a SEGV, BUG #17097 *)
  let h = Fuzz.Harness.create ~profile:Dialects.Registry.pg_sim () in
  let tc =
    parse
      "CREATE TABLE v0 (v4 INT, v3 INT UNIQUE, v2 INT, v1 INT UNIQUE);\n\
       CREATE RULE v1 AS ON INSERT TO v0 DO INSTEAD NOTIFY compression;\n\
       COPY (SELECT 32 EXCEPT SELECT (v3 + 16) FROM v0) TO STDOUT CSV \
       HEADER;\n\
       WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v3 = 48;"
  in
  match (Fuzz.Harness.execute h tc).Fuzz.Harness.o_crash with
  | Some crash ->
    Alcotest.(check string) "identifier" "BUG #17097"
      crash.Minidb.Fault.c_bug.Minidb.Fault.identifier;
    Alcotest.(check string) "kind" "SEGV"
      (Minidb.Fault.kind_name crash.Minidb.Fault.c_bug.Minidb.Fault.kind);
    Alcotest.(check string) "component" "Optimizer"
      crash.Minidb.Fault.c_bug.Minidb.Fault.component
  | None -> Alcotest.fail "Fig. 7 case study did not crash"

let test_fig3_mysql_case_study () =
  (* paper Fig. 3: synthesized CREATE TABLE -> INSERT -> CREATE TRIGGER ->
     SELECT (window fn) crashes MySQL, CVE-2021-35643 *)
  let h = Fuzz.Harness.create ~profile:Dialects.Registry.mysql_sim () in
  let tc =
    parse
      "CREATE TABLE v0 (v1 YEAR);\n\
       INSERT IGNORE INTO v0 VALUES (NULL), (2021), (1999);\n\
       CREATE TRIGGER v9 AFTER UPDATE ON v0 FOR EACH ROW INSERT INTO v0 \
       SELECT * FROM v0 GROUP BY v1;\n\
       SELECT LEAD(v1) OVER (ORDER BY v1 ASC) AS w FROM v0;"
  in
  match (Fuzz.Harness.execute h tc).Fuzz.Harness.o_crash with
  | Some crash ->
    Alcotest.(check string) "identifier" "CVE-2021-35643"
      crash.Minidb.Fault.c_bug.Minidb.Fault.identifier
  | None -> Alcotest.fail "Fig. 3 case study did not crash"

let test_case_study_needs_the_sequence () =
  (* the same statements in a different order (paper Fig. 2 logic) miss
     the trigger-window bug: permutation matters, not just combination *)
  let h = Fuzz.Harness.create ~profile:Dialects.Registry.mysql_sim () in
  let tc =
    parse
      "CREATE TABLE v0 (v1 YEAR);\n\
       CREATE TRIGGER v9 AFTER UPDATE ON v0 FOR EACH ROW INSERT INTO v0 \
       SELECT * FROM v0 GROUP BY v1;\n\
       SELECT LEAD(v1) OVER (ORDER BY v1 ASC) AS w FROM v0;\n\
       INSERT IGNORE INTO v0 VALUES (NULL), (2021), (1999);"
  in
  Alcotest.(check bool) "reordered case does not crash" true
    ((Fuzz.Harness.execute h tc).Fuzz.Harness.o_crash = None)

(* --- fuzzing loops --------------------------------------------------- *)

let run_fuzzer fz execs = Fuzz.Driver.run_until_execs fz ~execs

let test_lego_loop_progresses () =
  let t = Lego.Lego_fuzzer.create Dialects.Registry.pg_sim in
  let snap = run_fuzzer (Lego.Lego_fuzzer.fuzzer t) 2000 in
  Alcotest.(check bool) "coverage" true (snap.Fuzz.Driver.st_branches > 100);
  Alcotest.(check bool) "affinities found" true
    (Lego.Affinity.count (Lego.Lego_fuzzer.affinities t) > 10);
  Alcotest.(check bool) "sequences synthesized" true
    (Lego.Lego_fuzzer.synthesized_total t
     > Minidb.Profile.type_count Dialects.Registry.pg_sim);
  Alcotest.(check bool) "pool grew" true (Lego.Lego_fuzzer.pool_size t > 9)

let test_lego_minus_no_synthesis () =
  let cfg =
    { Lego.Lego_fuzzer.default_config with sequence_oriented = false }
  in
  let t = Lego.Lego_fuzzer.create ~config:cfg Dialects.Registry.pg_sim in
  let _ = run_fuzzer (Lego.Lego_fuzzer.fuzzer t) 1000 in
  Alcotest.(check int) "no affinities collected" 0
    (Lego.Affinity.count (Lego.Lego_fuzzer.affinities t));
  Alcotest.(check int) "only the singleton seeds"
    (Minidb.Profile.type_count Dialects.Registry.pg_sim)
    (Lego.Lego_fuzzer.synthesized_total t)

let test_lego_beats_squirrel () =
  let budget = 4000 in
  let lego = Lego.Lego_fuzzer.create Dialects.Registry.pg_sim in
  let lego_snap = run_fuzzer (Lego.Lego_fuzzer.fuzzer lego) budget in
  let sq = Baselines.Squirrel_sim.create Dialects.Registry.pg_sim in
  let sq_snap = run_fuzzer (Baselines.Squirrel_sim.fuzzer sq) budget in
  Alcotest.(check bool) "LEGO covers more branches" true
    (lego_snap.Fuzz.Driver.st_branches > sq_snap.Fuzz.Driver.st_branches)

let test_baselines_run () =
  List.iter
    (fun (name, fz) ->
       let snap = run_fuzzer fz 500 in
       Alcotest.(check bool) (name ^ " makes progress") true
         (snap.Fuzz.Driver.st_branches > 50))
    [ ("sqlancer",
       Baselines.Sqlancer_sim.fuzzer
         (Baselines.Sqlancer_sim.create Dialects.Registry.mariadb_sim));
      ("sqlsmith",
       Baselines.Sqlsmith_sim.fuzzer
         (Baselines.Sqlsmith_sim.create Dialects.Registry.pg_sim));
      ("squirrel",
       Baselines.Squirrel_sim.fuzzer
         (Baselines.Squirrel_sim.create Dialects.Registry.comdb2_sim)) ]

let test_determinism () =
  let run () =
    let t = Lego.Lego_fuzzer.create Dialects.Registry.comdb2_sim in
    let snap = run_fuzzer (Lego.Lego_fuzzer.fuzzer t) 1500 in
    (snap.Fuzz.Driver.st_branches, snap.st_unique_crashes, snap.st_bugs)
  in
  Alcotest.(check bool) "identical campaigns" true (run () = run ())

let test_sqlsmith_single_statement_corpus () =
  let t = Baselines.Sqlsmith_sim.create Dialects.Registry.pg_sim in
  let fz = Baselines.Sqlsmith_sim.fuzzer t in
  let _ = run_fuzzer fz 50 in
  (* every generated case is the fixed preamble plus exactly one query *)
  let corpus = fz.Fuzz.Driver.f_corpus () in
  Alcotest.(check bool) "nonempty" true (corpus <> []);
  List.iter
    (fun tc ->
       let tail = List.nth tc (List.length tc - 1) in
       match Ast.type_of_stmt tail with
       | Stmt_type.Select | Stmt_type.Select_union
       | Stmt_type.Select_intersect | Stmt_type.Select_except -> ()
       | ty -> Alcotest.fail ("unexpected tail: " ^ Stmt_type.name ty))
    corpus

let test_driver_checkpoints () =
  let t = Lego.Lego_fuzzer.create Dialects.Registry.comdb2_sim in
  let count = ref 0 in
  let _ =
    Fuzz.Driver.run ~checkpoint_every:10
      ~on_checkpoint:(fun _ -> incr count)
      (Lego.Lego_fuzzer.fuzzer t) ~iterations:55
  in
  Alcotest.(check int) "five checkpoints" 5 !count

let test_exec_checkpoint_no_double_fire () =
  (* A single step executes many cases, so the last step typically
     overshoots the exec budget: the final checkpoint must then be the
     returned snapshot alone, never on_checkpoint at the same count. *)
  let t = Lego.Lego_fuzzer.create Dialects.Registry.comdb2_sim in
  let fz = Lego.Lego_fuzzer.fuzzer t in
  let cps = ref [] in
  let final =
    Fuzz.Driver.run_until_execs ~checkpoint_every:100
      ~on_checkpoint:(fun cp ->
          cps := cp.Fuzz.Driver.cp_snapshot.Fuzz.Driver.st_execs :: !cps)
      fz ~execs:1000
  in
  Alcotest.(check bool) "budget reached" true
    (final.Fuzz.Driver.st_execs >= 1000);
  List.iter
    (fun e ->
       Alcotest.(check bool) "checkpoint strictly before the final" true
         (e < final.Fuzz.Driver.st_execs))
    !cps;
  Alcotest.(check int) "checkpoints strictly increasing (no double fire)"
    (List.length !cps)
    (List.length (List.sort_uniq compare !cps))

let suite =
  [ ("harness accumulates", `Quick, test_harness_accumulates);
    ("harness fresh state", `Quick, test_harness_fresh_state_per_exec);
    ("seed pool", `Quick, test_seed_pool_dedup_and_select);
    ("triage dedup", `Quick, test_triage_dedup);
    ("corpus valid everywhere", `Quick, test_corpus_valid_everywhere);
    ("fig7 postgres case study", `Quick, test_fig7_postgres_case_study);
    ("fig3 mysql case study", `Quick, test_fig3_mysql_case_study);
    ("case study needs the sequence", `Quick,
     test_case_study_needs_the_sequence);
    ("lego loop progresses", `Slow, test_lego_loop_progresses);
    ("lego- has no synthesis", `Slow, test_lego_minus_no_synthesis);
    ("lego beats squirrel", `Slow, test_lego_beats_squirrel);
    ("baselines run", `Slow, test_baselines_run);
    ("determinism", `Slow, test_determinism);
    ("sqlsmith single-statement corpus", `Quick,
     test_sqlsmith_single_statement_corpus);
    ("driver checkpoints", `Quick, test_driver_checkpoints);
    ("exec checkpoint no double fire", `Quick,
     test_exec_checkpoint_no_double_fire) ]
