(* Tests for type-affinity analysis — the paper's Algorithm 2. *)

open Sqlcore
module A = Lego.Affinity

let parse = Sqlparser.Parser.parse_testcase_exn

let test_basic_analysis () =
  let t = A.create () in
  let news =
    A.analyze t
      (parse
         "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
  in
  Alcotest.(check int) "two new affinities" 2 (List.length news);
  Alcotest.(check bool) "create->insert" true
    (A.mem t Stmt_type.Create_table Stmt_type.Insert);
  Alcotest.(check bool) "insert->select" true
    (A.mem t Stmt_type.Insert Stmt_type.Select);
  Alcotest.(check bool) "not create->select" false
    (A.mem t Stmt_type.Create_table Stmt_type.Select);
  Alcotest.(check int) "count" 2 (A.count t)

let test_same_type_skipped () =
  (* Algorithm 2 lines 5-7: adjacent same types contribute nothing. *)
  let t = A.create () in
  let news =
    A.analyze_sequence t
      [ Stmt_type.Insert; Stmt_type.Insert; Stmt_type.Insert ]
  in
  Alcotest.(check int) "no affinities" 0 (List.length news);
  Alcotest.(check bool) "insert->insert absent" false
    (A.mem t Stmt_type.Insert Stmt_type.Insert)

let test_same_type_does_not_break_chain () =
  (* CREATE, INSERT, INSERT, SELECT: the paper's Fig. 1 seed yields
     (CREATE,INSERT) and (INSERT,SELECT). *)
  let t = A.create () in
  let news =
    A.analyze_sequence t
      [ Stmt_type.Create_table; Stmt_type.Insert; Stmt_type.Insert;
        Stmt_type.Select ]
  in
  Alcotest.(check int) "two affinities" 2 (List.length news)

let test_direction_matters () =
  let t = A.create () in
  ignore (A.analyze_sequence t [ Stmt_type.Insert; Stmt_type.Select ]);
  Alcotest.(check bool) "forward" true
    (A.mem t Stmt_type.Insert Stmt_type.Select);
  Alcotest.(check bool) "reverse absent" false
    (A.mem t Stmt_type.Select Stmt_type.Insert)

let test_no_duplicate_counting () =
  let t = A.create () in
  ignore (A.analyze_sequence t [ Stmt_type.Insert; Stmt_type.Select ]);
  let news =
    A.analyze_sequence t [ Stmt_type.Insert; Stmt_type.Select ]
  in
  Alcotest.(check int) "no news second time" 0 (List.length news);
  Alcotest.(check int) "count stays 1" 1 (A.count t)

let test_successors_sorted () =
  let t = A.create () in
  ignore (A.add t Stmt_type.Create_table Stmt_type.Select);
  ignore (A.add t Stmt_type.Create_table Stmt_type.Insert);
  let succ = A.successors t Stmt_type.Create_table in
  Alcotest.(check int) "two successors" 2 (List.length succ);
  Alcotest.(check bool) "sorted by type index" true
    (succ = List.sort Stmt_type.compare succ)

let test_of_corpus () =
  let corpus =
    [ parse "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);";
      parse "CREATE TABLE u (a INT); SELECT 1;" ]
  in
  let t = A.of_corpus corpus in
  Alcotest.(check int) "two distinct affinities" 2 (A.count t)

let test_fig3_affinity_extraction () =
  (* Fig. 3: from INSERT -> CREATE TRIGGER the new affinity (3 -> 5). *)
  let t = A.create () in
  ignore
    (A.analyze_sequence t
       [ Stmt_type.Select; Stmt_type.Insert; Stmt_type.Create_trigger;
         Stmt_type.Select ]);
  Alcotest.(check bool) "insert->create trigger" true
    (A.mem t Stmt_type.Insert Stmt_type.Create_trigger);
  Alcotest.(check bool) "create trigger->select" true
    (A.mem t Stmt_type.Create_trigger Stmt_type.Select)

let test_discovery_log () =
  (* The append-only log drains exactly the pairs accepted by [add], in
     discovery order, duplicates excluded — the exchange export cursor
     relies on all three properties. *)
  let t = A.create () in
  ignore (A.add t Stmt_type.Create_table Stmt_type.Insert);
  ignore (A.add t Stmt_type.Create_table Stmt_type.Insert);
  ignore (A.add t Stmt_type.Insert Stmt_type.Select);
  Alcotest.(check int) "duplicates not logged" 2 (A.log_length t);
  Alcotest.(check bool) "suffix since cursor" true
    (A.log_since t 1 = [ (Stmt_type.Insert, Stmt_type.Select) ]);
  Alcotest.(check int) "full log from zero" 2 (List.length (A.log_since t 0));
  Alcotest.(check int) "empty past the end" 0
    (List.length (A.log_since t (A.log_length t)))

(* Property: count equals the number of distinct adjacent unequal pairs. *)
let prop_count_matches_pairs =
  let gen_seq =
    QCheck.Gen.(
      list_size (int_range 0 12)
        (map Stmt_type.of_index (int_bound (Stmt_type.count - 1))))
    |> QCheck.make
  in
  QCheck.Test.make ~name:"affinity count = distinct adjacent pairs"
    ~count:300 gen_seq (fun seq ->
      let t = A.create () in
      ignore (A.analyze_sequence t seq);
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          (if Stmt_type.equal a b then [] else [ (a, b) ]) @ pairs rest
        | _ -> []
      in
      A.count t = List.length (List.sort_uniq compare (pairs seq)))

let suite =
  [ ("basic analysis", `Quick, test_basic_analysis);
    ("same type skipped", `Quick, test_same_type_skipped);
    ("same type does not break chain", `Quick,
     test_same_type_does_not_break_chain);
    ("direction matters", `Quick, test_direction_matters);
    ("no duplicate counting", `Quick, test_no_duplicate_counting);
    ("successors sorted", `Quick, test_successors_sorted);
    ("of_corpus", `Quick, test_of_corpus);
    ("fig3 affinity extraction", `Quick, test_fig3_affinity_extraction);
    ("discovery log", `Quick, test_discovery_log);
    QCheck_alcotest.to_alcotest prop_count_matches_pairs ]
