(* Interleaving-schedule fuzzing: generator shapes, the commit-order
   serializability oracle (deterministic violation construction plus
   shrink-preserves-key), and campaign-level determinism / replay
   invariants. *)

open Sqlcore
module Schedule = Fuzz.Schedule
module Pool = Server.Session_pool
module Rng = Reprutil.Rng

let parse = Sqlparser.Parser.parse_testcase_exn

let stmt sql = List.hd (parse sql)

let profile = Dialects.Registry.pg_sim

let clean_profile = Minidb.Profile.without_bugs profile

(* --- generators ------------------------------------------------------ *)

let test_round_robin () =
  let sched =
    Schedule.round_robin [ parse "SELECT 1; SELECT 2; SELECT 3"; parse "SELECT 4" ]
  in
  Alcotest.(check string) "kind" "round_robin" sched.Schedule.sc_kind;
  Alcotest.(check (list int)) "interleaves one stmt per session in turn"
    [ 0; 1; 0; 0 ]
    (List.map fst (Array.to_list sched.Schedule.sc_steps))

let test_txn_biased_wraps () =
  let rng = Rng.create 7 in
  let sched = Schedule.txn_biased rng [ parse "SELECT 1"; parse "SELECT 2" ] in
  Alcotest.(check string) "kind" "txn_biased" sched.Schedule.sc_kind;
  (* each bare single-statement sequence becomes BEGIN; stmt; COMMIT *)
  Alcotest.(check int) "wrapped length" 6 (Array.length sched.Schedule.sc_steps);
  let begins =
    Array.to_list sched.Schedule.sc_steps
    |> List.filter (fun (_, s) -> s = Ast.S_begin)
  in
  Alcotest.(check int) "two BEGINs" 2 (List.length begins)

let test_generators_preserve_session_order () =
  (* every generator must keep each session's statements in sequence
     order — only the interleaving varies *)
  let seqs =
    [ parse "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t";
      parse "SELECT 1; SELECT 2";
      parse "SELECT 3; SELECT 4; SELECT 5" ]
  in
  let check_order sched =
    List.iteri
      (fun sid seq ->
         let mine =
           Array.to_list sched.Schedule.sc_steps
           |> List.filter (fun (s, _) -> s = sid)
           |> List.map snd
         in
         (* txn_biased may have wrapped the sequence; the original
            statements must still appear as a subsequence in order *)
         let rec subseq want got =
           match (want, got) with
           | [], _ -> true
           | _, [] -> false
           | w :: ws, g :: gs ->
             if w = g then subseq ws gs else subseq want gs
         in
         Alcotest.(check bool)
           (Printf.sprintf "%s keeps s%d order" sched.Schedule.sc_kind sid)
           true (subseq seq mine))
      seqs
  in
  check_order (Schedule.round_robin seqs);
  check_order (Schedule.txn_biased (Rng.create 11) seqs);
  let affine = Schedule.adjacency_affinity seqs in
  check_order (Schedule.spliced (Rng.create 13) ~affine seqs)

(* --- commit-order units ---------------------------------------------- *)

let test_commit_order_units () =
  let steps =
    [| (0, stmt "BEGIN");
       (0, stmt "INSERT INTO t VALUES (1)");
       (1, stmt "SELECT a FROM t");
       (0, stmt "COMMIT") |]
  in
  (match Oracle.Isolation.commit_order_units steps with
   | [ u1; u2 ] ->
     (* s1's autocommit SELECT commits at index 2, before s0's txn at 3 *)
     Alcotest.(check int) "first unit session" 1 u1.Oracle.Isolation.u_session;
     Alcotest.(check int) "first unit commit" 2 u1.Oracle.Isolation.u_commit;
     Alcotest.(check int) "second unit session" 0 u2.Oracle.Isolation.u_session;
     Alcotest.(check int) "second unit commit" 3 u2.Oracle.Isolation.u_commit;
     Alcotest.(check int) "txn unit statements" 3
       (List.length u2.Oracle.Isolation.u_stmts)
   | us -> Alcotest.failf "expected 2 units, got %d" (List.length us));
  (* a trailing open transaction gets an implicit COMMIT *)
  match
    Oracle.Isolation.commit_order_units
      [| (0, stmt "BEGIN"); (0, stmt "INSERT INTO t VALUES (1)") |]
  with
  | [ u ] ->
    Alcotest.(check int) "open txn commit point" 1 u.Oracle.Isolation.u_commit;
    (match List.rev u.Oracle.Isolation.u_stmts with
     | Ast.S_commit :: _ -> ()
     | _ -> Alcotest.fail "open txn must close with implicit COMMIT")
  | us -> Alcotest.failf "expected 1 unit, got %d" (List.length us)

(* --- the deterministic isolation violation ---------------------------- *)

(* s0 opens a transaction and updates under it; s1's autocommit update
   lands inside the window; s0 rolls back, restoring its BEGIN snapshot
   and clobbering s1's committed write. Observed final state a=1;
   commit-order serial replay yields a=9. A textbook lost update,
   witnessed by the fingerprint divergence. *)
let violation_steps =
  [ (0, stmt "CREATE TABLE t (a INT)");
    (0, stmt "INSERT INTO t VALUES (1)");
    (0, stmt "BEGIN");
    (0, stmt "UPDATE t SET a = 5");
    (1, stmt "UPDATE t SET a = 9");
    (0, stmt "ROLLBACK") ]

let observed_violation steps =
  let cov = Coverage.Bitmap.create () in
  let pool = Pool.create ~sessions:2 ~profile:clean_profile ~cov () in
  let out = Pool.run_serial pool (Array.of_list steps) in
  if out.Pool.o_crash <> None then None
  else
    Oracle.Isolation.check ~profile:clean_profile
      ~steps:(Array.of_list steps) ~observed:out.Pool.o_fingerprint ()

let test_isolation_violation () =
  match observed_violation violation_steps with
  | None -> Alcotest.fail "rollback-clobbered commit not flagged"
  | Some v ->
    Alcotest.(check string) "oracle" "isolation" v.Oracle.Violation.vi_oracle;
    (* deterministic: the same schedule yields the same key *)
    (match observed_violation violation_steps with
     | Some v' ->
       Alcotest.(check string) "replay key stable"
         (Oracle.Violation.key v) (Oracle.Violation.key v')
     | None -> Alcotest.fail "violation vanished on replay")

let test_isolation_clean_schedule () =
  (* a read-only statement inside the window commits nothing: observed
     state == commit-order state *)
  let steps =
    [ (0, stmt "CREATE TABLE t (a INT)");
      (0, stmt "INSERT INTO t VALUES (1)");
      (0, stmt "BEGIN");
      (0, stmt "UPDATE t SET a = 5");
      (1, stmt "SELECT a FROM t");
      (0, stmt "COMMIT") ]
  in
  (match observed_violation steps with
   | None -> ()
   | Some v ->
     Alcotest.failf "false positive: %s" (Oracle.Violation.key v));
  (* single-session schedules never report: commit order is the
     original order *)
  let single = List.map (fun (_, s) -> (0, s)) violation_steps in
  match observed_violation single with
  | None -> ()
  | Some v ->
    Alcotest.failf "single-session false positive: %s"
      (Oracle.Violation.key v)

(* Satellite: schedule shrinking preserves the violation. Pad the
   witness with noise, shrink with reduce_poly under a
   same-key-replays predicate, and the minimal schedule must (a) still
   violate with the same key and (b) be 1-minimal. *)
let test_shrink_preserves_violation () =
  let key =
    match observed_violation violation_steps with
    | Some v -> Oracle.Violation.key v
    | None -> Alcotest.fail "witness schedule must violate"
  in
  let noise =
    [ (1, stmt "SELECT a FROM t");
      (0, stmt "SELECT a FROM t");
      (1, stmt "SET z = 1") ]
  in
  let padded =
    match violation_steps with
    | first :: rest -> (first :: noise) @ rest @ [ (1, stmt "SELECT a FROM t") ]
    | [] -> assert false
  in
  let pred steps =
    match observed_violation steps with
    | Some v -> String.equal (Oracle.Violation.key v) key
    | None -> false
  in
  Alcotest.(check bool) "padded schedule still violates" true (pred padded);
  let reduced, _tries = Fuzz.Reducer.reduce_poly ~pred padded in
  Alcotest.(check bool) "reduced still violates with same key" true
    (pred reduced);
  (* the 6-step witness itself is not 1-minimal: s0's own UPDATE is
     removable — BEGIN snapshot + ROLLBACK alone clobber s1's commit,
     same key — so greedy reduction lands on 5 steps *)
  Alcotest.(check int) "noise removed, witness tightened to 5 steps" 5
    (List.length reduced);
  (* 1-minimality: dropping any single remaining step loses the key *)
  List.iteri
    (fun i _ ->
       let without = List.filteri (fun j _ -> j <> i) reduced in
       Alcotest.(check bool)
         (Printf.sprintf "dropping step %d breaks the witness" i)
         false (pred without))
    reduced

(* --- campaign --------------------------------------------------------- *)

let corpus = Fuzz.Corpus.initial profile

let run_campaign ?metrics seed =
  Schedule.campaign ?metrics ~profile ~sessions:3 ~schedules:24 ~seed ~corpus
    ()

let test_campaign_smoke () =
  let metrics = Telemetry.Registry.create () in
  let r = run_campaign ~metrics 42 in
  Alcotest.(check int) "schedules run" 24 r.Schedule.sr_schedules;
  Alcotest.(check int) "no replay mismatch" 0 r.Schedule.sr_replay_mismatch;
  Alcotest.(check bool) "steps executed" true (r.Schedule.sr_steps > 0);
  let cv name = Telemetry.Registry.counter_value metrics name in
  Alcotest.(check int) "schedule.generated" 24 (cv "schedule.generated");
  Alcotest.(check int) "schedule.steps" r.Schedule.sr_steps
    (cv "schedule.steps");
  Alcotest.(check int) "replay_mismatch counter" 0
    (cv "schedule.replay_mismatch");
  (* Schedule executions (live + serial replay per schedule) are tagged
     with their own counter and must not leak into the single-session
     cache counters, whose hit-rate denominator (hits + misses) they
     would otherwise skew. *)
  Alcotest.(check int) "schedule executions tagged" (2 * 24)
    (cv "cache.schedule_bypass");
  Alcotest.(check int) "cache.bypass untouched by schedules" 0
    (cv "cache.bypass");
  Alcotest.(check int) "cache.hits untouched by schedules" 0
    (cv "cache.hits");
  Alcotest.(check bool) "kind counters cover all schedules" true
    (cv "schedule.kind.round_robin" + cv "schedule.kind.txn_biased"
     + cv "schedule.kind.spliced"
     = 24);
  (* every minimized crash repro replays to its bug on a fresh pool *)
  List.iter
    (fun (bug_id, steps) ->
       let cov = Coverage.Bitmap.create () in
       let pool = Pool.create ~sessions:3 ~profile ~cov () in
       match (Pool.run_serial pool steps).Pool.o_crash with
       | Some (_, c) ->
         Alcotest.(check string) "repro replays" bug_id
           c.Minidb.Fault.c_bug.Minidb.Fault.bug_id
       | None -> Alcotest.failf "minimized repro for %s lost the crash" bug_id)
    r.Schedule.sr_crash_repros

let test_campaign_deterministic () =
  let r1 = run_campaign 1234 and r2 = run_campaign 1234 in
  Alcotest.(check int) "same steps" r1.Schedule.sr_steps r2.Schedule.sr_steps;
  Alcotest.(check (list string)) "same bug ids"
    (Fuzz.Triage.bug_ids r1.Schedule.sr_triage)
    (Fuzz.Triage.bug_ids r2.Schedule.sr_triage);
  Alcotest.(check (list string)) "same crash repro keys"
    (List.map fst r1.Schedule.sr_crash_repros)
    (List.map fst r2.Schedule.sr_crash_repros);
  Alcotest.(check (list string)) "same violation repro keys"
    (List.map fst r1.Schedule.sr_violation_repros)
    (List.map fst r2.Schedule.sr_violation_repros)

let suite =
  [ Alcotest.test_case "round robin" `Quick test_round_robin;
    Alcotest.test_case "txn biased wraps bare sequences" `Quick
      test_txn_biased_wraps;
    Alcotest.test_case "generators preserve session order" `Quick
      test_generators_preserve_session_order;
    Alcotest.test_case "commit-order units" `Quick test_commit_order_units;
    Alcotest.test_case "isolation violation (rollback clobber)" `Quick
      test_isolation_violation;
    Alcotest.test_case "isolation clean schedules" `Quick
      test_isolation_clean_schedule;
    Alcotest.test_case "shrink preserves violation" `Quick
      test_shrink_preserves_violation;
    Alcotest.test_case "campaign smoke" `Slow test_campaign_smoke;
    Alcotest.test_case "campaign deterministic" `Slow
      test_campaign_deterministic ]
