(* End-to-end tests for the logic-bug oracle layer.

   The acceptance path of the oracle subsystem: a planted planner
   inconsistency (a test-only quirk profile; every shipped dialect is
   quirk-free) must be detected by the differential-plan oracle, deduped
   by Triage to one finding, and shrunk by the reducer to a 1-minimal
   reproducer — while bug-free campaigns stay violation-free. *)

open Sqlcore
module Suite = Oracle.Suite
module V = Oracle.Violation

let parse = Sqlparser.Parser.parse_testcase_exn

let base name =
  Minidb.Profile.make ~name ~flavor:Minidb.Profile.Pg ~types:Stmt_type.all
    ~bugs:[]

(* planner picks the equality index but skips its first rowid *)
let quirky =
  Minidb.Profile.with_quirks (base "quirky") [ "index_eq_skips_first" ]

(* DO INSTEAD rules silently rewrite to a no-op *)
let noop_rule =
  Minidb.Profile.with_quirks (base "noop-rule") [ "rule_rewrite_noop" ]

(* The minimal planted-bug reproducer: every statement is essential —
   without the index or ANALYZE the planner stays on Seq_scan, without
   the row both plans agree on the empty result. *)
let planted =
  "CREATE TABLE t (a INT);\n\
   CREATE INDEX i ON t (a);\n\
   INSERT INTO t VALUES (1);\n\
   ANALYZE;\n\
   SELECT * FROM t WHERE (a = 1);"

let checks_of out name = List.assoc name out.Suite.oc_checks

let test_diff_plan_detects_planted_quirk () =
  let out = Suite.check (Suite.create quirky) (parse planted) in
  Alcotest.(check bool) "diff_plan ran" true (checks_of out "diff_plan" >= 1);
  (* the broken index path is caught twice over: the pinned-seq-scan
     differential disagrees, and the TLP partitions (whose NOT/IS NULL
     branches take the honest seq scan) no longer sum to the unfiltered
     query *)
  Alcotest.(check (list string)) "both SELECT oracles fire"
    [ "diff_plan"; "tlp" ]
    (List.sort compare
       (List.map (fun v -> v.V.vi_oracle) out.Suite.oc_violations));
  let v =
    List.find (fun v -> v.V.vi_oracle = "diff_plan") out.Suite.oc_violations
  in
  Alcotest.(check string) "offending statement captured"
    "SELECT * FROM t WHERE (a = 1)" v.V.vi_sql

let test_quirk_free_profile_is_sound () =
  (* the same reproducer on the un-quirked profile must pass *)
  let out = Suite.check (Suite.create (base "clean")) (parse planted) in
  Alcotest.(check bool) "diff_plan ran" true (checks_of out "diff_plan" >= 1);
  Alcotest.(check int) "no violations" 0 (List.length out.Suite.oc_violations)

let test_tlp_counts_eligible_selects () =
  (* a plain filtered SELECT is TLP-eligible; partitioning a correct
     engine never diverges *)
  let tc =
    parse
      "CREATE TABLE t (a INT);\n\
       INSERT INTO t VALUES (1);\n\
       INSERT INTO t VALUES (2);\n\
       SELECT a FROM t WHERE (a > 1);"
  in
  let out = Suite.check (Suite.create (base "clean")) tc in
  Alcotest.(check bool) "tlp ran" true (checks_of out "tlp" >= 1);
  Alcotest.(check int) "no violations" 0 (List.length out.Suite.oc_violations)

let test_rewrite_detects_noop_rule () =
  let tc =
    parse
      "CREATE TABLE t (a INT);\n\
       CREATE TABLE u (a INT);\n\
       CREATE RULE r AS ON INSERT TO t DO INSTEAD INSERT INTO u VALUES (1);\n\
       INSERT INTO t VALUES (2);"
  in
  let out = Suite.check (Suite.create noop_rule) tc in
  Alcotest.(check bool) "rewrite ran" true (checks_of out "rewrite" >= 1);
  (match out.Suite.oc_violations with
   | [ v ] -> Alcotest.(check string) "rewrite verdict" "rewrite" v.V.vi_oracle
   | vs ->
     Alcotest.fail
       (Printf.sprintf "expected exactly one violation, got %d"
          (List.length vs)));
  (* the identical test case on a faithful engine is clean *)
  let sound = Suite.check (Suite.create (base "clean")) tc in
  Alcotest.(check bool) "rewrite ran (clean)" true
    (checks_of sound "rewrite" >= 1);
  Alcotest.(check int) "no violations (clean)" 0
    (List.length sound.Suite.oc_violations)

let test_rewrite_checks_instead_nothing () =
  (* DO INSTEAD NOTHING must leave the catalog untouched — the
     fingerprint-invariance arm of the rewrite oracle *)
  let tc =
    parse
      "CREATE TABLE t (a INT);\n\
       CREATE RULE r AS ON INSERT TO t DO INSTEAD NOTHING;\n\
       INSERT INTO t VALUES (1);"
  in
  let out = Suite.check (Suite.create (base "clean")) tc in
  Alcotest.(check bool) "rewrite ran" true (checks_of out "rewrite" >= 1);
  Alcotest.(check int) "no violations" 0 (List.length out.Suite.oc_violations)

let test_plan_tag_tracks_access_path () =
  (* the dedup-key component changes when the planner's choice changes *)
  let eng =
    Minidb.Engine.create ~profile:(base "clean")
      ~cov:(Coverage.Bitmap.create ()) ()
  in
  List.iter
    (fun s -> ignore (Minidb.Engine.exec_stmt eng s))
    (parse "CREATE TABLE t (a INT); CREATE INDEX i ON t (a); INSERT INTO t \
            VALUES (1);");
  let q =
    match Sqlparser.Parser.parse_stmt_exn "SELECT * FROM t WHERE (a = 1)" with
    | Ast.S_select q -> q
    | _ -> Alcotest.fail "not a select"
  in
  let before = Suite.plan_tag (Minidb.Engine.catalog eng) q in
  List.iter
    (fun s -> ignore (Minidb.Engine.exec_stmt eng s))
    (parse "ANALYZE;");
  let after = Suite.plan_tag (Minidb.Engine.catalog eng) q in
  Alcotest.(check bool) "seq-scan tag before ANALYZE, index tag after" true
    (before <> after)

let test_triage_dedups_by_signature () =
  let out = Suite.check (Suite.create quirky) (parse planted) in
  let v = List.hd out.Suite.oc_violations in
  let tri = Fuzz.Triage.create () in
  Alcotest.(check bool) "first sighting is new" true
    (Fuzz.Triage.record_logic tri ~testcase:(parse planted) v);
  Alcotest.(check bool) "same signature is not" false
    (Fuzz.Triage.record_logic tri v);
  Alcotest.(check int) "one unique finding" 1 (Fuzz.Triage.logic_count tri);
  Alcotest.(check int) "both recorded in the total" 2
    (Fuzz.Triage.total_logic tri);
  (match Fuzz.Triage.unique_logic tri with
   | [ (v', tc) ] ->
     Alcotest.(check string) "keys agree" (V.key v) (V.key v');
     Alcotest.(check bool) "first reproducer kept" true (tc <> None)
   | _ -> Alcotest.fail "expected one unique finding")

let test_harness_end_to_end () =
  let h =
    Fuzz.Harness.create ~profile:quirky ~oracles:(Suite.create quirky) ()
  in
  let out = Fuzz.Harness.execute h (parse planted) in
  (* one diff_plan + one tlp sighting of the same planted bug *)
  Alcotest.(check int) "violations surfaced" 2 out.Fuzz.Harness.o_violations;
  Alcotest.(check int) "one finding per oracle signature" 2
    (Fuzz.Triage.logic_count (Fuzz.Harness.triage h));
  let m = Fuzz.Harness.metrics h in
  Alcotest.(check bool) "checks counter exported" true
    (Telemetry.Registry.counter_value m "oracle.diff_plan.checks" >= 1);
  Alcotest.(check int) "diff_plan violation counted" 1
    (Telemetry.Registry.counter_value m "oracle.diff_plan.violations");
  Alcotest.(check int) "tlp violation counted" 1
    (Telemetry.Registry.counter_value m "oracle.tlp.violations");
  (* replaying the identical case lights no new coverage, so the oracle
     replay is skipped: findings stay deduplicated, counters stable *)
  let out2 = Fuzz.Harness.execute h (parse planted) in
  Alcotest.(check int) "no news, no replay" 0 out2.Fuzz.Harness.o_violations;
  Alcotest.(check int) "findings unchanged" 2
    (Fuzz.Triage.logic_count (Fuzz.Harness.triage h))

let rec drop_nth i = function
  | [] -> []
  | x :: tl -> if i = 0 then tl else x :: drop_nth (i - 1) tl

let test_reduce_logic_one_minimal () =
  (* the CLI's logic-bug reduction path: the pluggable reducer predicate
     re-runs the oracle suite and keeps the finding's signature alive *)
  let noisy =
    parse
      "CREATE TABLE junk (x INT);\n\
       INSERT INTO junk VALUES (7);\n\
       CREATE TABLE t (a INT);\n\
       CREATE INDEX i ON t (a);\n\
       SELECT 99;\n\
       INSERT INTO t VALUES (1);\n\
       ANALYZE;\n\
       SELECT * FROM t WHERE (a = 1);\n\
       DROP TABLE junk;"
  in
  let suite = Suite.create quirky in
  let key =
    V.key (List.hd (Suite.check suite (parse planted)).Suite.oc_violations)
  in
  let pred tc =
    List.exists
      (fun v -> String.equal (V.key v) key)
      (Suite.check suite tc).Suite.oc_violations
  in
  Alcotest.(check bool) "noisy case violates" true (pred noisy);
  let out = Fuzz.Reducer.reduce_with ~pred noisy in
  Alcotest.(check bool) "reduced case still violates" true
    (pred out.Fuzz.Reducer.r_testcase);
  Alcotest.(check int) "only the five essential statements survive" 5
    (List.length out.Fuzz.Reducer.r_testcase);
  Alcotest.(check int) "four junk statements removed" 4
    out.Fuzz.Reducer.r_removed;
  (* 1-minimality: dropping any single surviving statement loses the
     violation *)
  List.iteri
    (fun i _ ->
       Alcotest.(check bool)
         (Printf.sprintf "dropping statement %d breaks the reproducer" i)
         false
         (pred (drop_nth i out.Fuzz.Reducer.r_testcase)))
    out.Fuzz.Reducer.r_testcase

(* --- campaign-level soundness and determinism ------------------------ *)

let oracle_factory profile ~seed shard_id =
  let config =
    { Lego.Lego_fuzzer.default_config with
      seed = Fuzz.Campaign.shard_seed ~seed ~shard_id }
  in
  let harness =
    Fuzz.Harness.create ~profile ~oracles:(Suite.create profile) ()
  in
  Lego.Lego_fuzzer.fuzzer (Lego.Lego_fuzzer.create ~config ~harness profile)

let assert_no_violations name (res : Fuzz.Campaign.result) =
  Alcotest.(check int) (name ^ ": no logic findings") 0
    (List.length res.Fuzz.Campaign.cg_logic);
  List.iter
    (fun o ->
       Alcotest.(check int)
         (Printf.sprintf "%s: oracle.%s.violations" name o)
         0
         (Telemetry.Registry.counter_value res.Fuzz.Campaign.cg_metrics
            ("oracle." ^ o ^ ".violations")))
    Suite.oracle_names

let test_oracles_sound_on_all_dialects () =
  (* every shipped dialect, fuzzed bug-free with oracles on: the three
     oracles must run and never cry wolf (~10k executions overall) *)
  List.iter
    (fun profile ->
       let name = Minidb.Profile.name profile in
       let res =
         Fuzz.Campaign.run ~jobs:1 ~execs:2500 (oracle_factory profile ~seed:11)
       in
       Alcotest.(check bool) (name ^ ": diff_plan exercised") true
         (Telemetry.Registry.counter_value res.Fuzz.Campaign.cg_metrics
            "oracle.diff_plan.checks"
          > 0);
       assert_no_violations name res)
    Dialects.Registry.all

let test_sharded_oracle_campaign_deterministic () =
  (* jobs=4 with oracle replays enabled: still zero violations and still
     a pure function of the seed *)
  let run () =
    Fuzz.Campaign.run ~jobs:4 ~sync_every:500 ~execs:10_000
      (oracle_factory Dialects.Registry.mariadb_sim ~seed:21)
  in
  let a = run () in
  assert_no_violations "jobs=4" a;
  let b = run () in
  Alcotest.(check bool) "aggregate snapshots identical" true
    (a.Fuzz.Campaign.cg_snapshot = b.Fuzz.Campaign.cg_snapshot);
  Alcotest.(check (list string)) "logic findings identical"
    (List.map (fun (v, _) -> V.key v) a.Fuzz.Campaign.cg_logic)
    (List.map (fun (v, _) -> V.key v) b.Fuzz.Campaign.cg_logic)

let suite =
  [ ("diff_plan detects the planted quirk", `Quick,
     test_diff_plan_detects_planted_quirk);
    ("quirk-free profile is sound", `Quick, test_quirk_free_profile_is_sound);
    ("tlp partitions eligible selects", `Quick,
     test_tlp_counts_eligible_selects);
    ("rewrite detects the no-op rule quirk", `Quick,
     test_rewrite_detects_noop_rule);
    ("rewrite checks DO INSTEAD NOTHING", `Quick,
     test_rewrite_checks_instead_nothing);
    ("plan tag tracks the access path", `Quick,
     test_plan_tag_tracks_access_path);
    ("triage dedups logic signatures", `Quick,
     test_triage_dedups_by_signature);
    ("harness end to end", `Quick, test_harness_end_to_end);
    ("logic finding reduces to 1-minimal", `Quick,
     test_reduce_logic_one_minimal);
    ("oracles sound on all dialects", `Slow,
     test_oracles_sound_on_all_dialects);
    ("4-shard oracle campaign deterministic", `Slow,
     test_sharded_oracle_campaign_deterministic) ]
