(* Tests for the AFL-style coverage bitmap and the site registry. *)

module B = Coverage.Bitmap

let test_hit_and_count () =
  let m = B.create () in
  Alcotest.(check int) "empty" 0 (B.count_nonzero m);
  B.hit m 5;
  B.hit m 5;
  B.hit m 77;
  Alcotest.(check int) "two cells" 2 (B.count_nonzero m);
  Alcotest.(check bool) "is_set" true (B.is_set m 5);
  Alcotest.(check bool) "not set" false (B.is_set m 6)

let test_reset () =
  let m = B.create () in
  B.hit m 1;
  B.reset m;
  Alcotest.(check int) "cleared" 0 (B.count_nonzero m)

let test_hit_wraps () =
  let m = B.create () in
  B.hit m (B.size + 3);
  Alcotest.(check bool) "wrapped" true (B.is_set m 3)

let test_buckets () =
  Alcotest.(check int) "0" 0 (B.bucket 0);
  Alcotest.(check int) "1" 1 (B.bucket 1);
  Alcotest.(check int) "2" 2 (B.bucket 2);
  Alcotest.(check int) "3" 4 (B.bucket 3);
  Alcotest.(check int) "5" 8 (B.bucket 5);
  Alcotest.(check int) "10" 16 (B.bucket 10);
  Alcotest.(check int) "20" 32 (B.bucket 20);
  Alcotest.(check int) "100" 64 (B.bucket 100);
  Alcotest.(check int) "200" 128 (B.bucket 200)

let test_merge_new_coverage () =
  let virgin = B.create () in
  let run = B.create () in
  B.hit run 10;
  Alcotest.(check int) "first merge news" 1 (B.merge_into ~virgin run);
  Alcotest.(check int) "re-merge no news" 0 (B.merge_into ~virgin run);
  (* A different hit count bucket of the same cell is new coverage. *)
  B.hit run 10;
  B.hit run 10;
  Alcotest.(check int) "bucket change is news" 1 (B.merge_into ~virgin run)

let test_merge_counts_cells () =
  let virgin = B.create () in
  let run = B.create () in
  B.hit run 1;
  B.hit run 2;
  B.hit run 3;
  Alcotest.(check int) "three new" 3 (B.merge_into ~virgin run);
  Alcotest.(check int) "virgin count" 3 (B.count_nonzero virgin)

(* Virgin-map equality: no bits in either direction of the diff. *)
let virgin_equal a b = B.diff a ~since:b = 0 && B.diff b ~since:a = 0

(* A shard's virgin map built from one execution history (a list of hit
   sites, possibly repeating — repeats exercise the count buckets). *)
let virgin_of hits =
  let m = B.create () in
  List.iter (B.hit m) hits;
  let v = B.create () in
  ignore (B.merge_into ~virgin:v m);
  v

let joined a b =
  let g = B.snapshot a in
  ignore (B.merge ~into:g b);
  g

(* The cross-shard merge is a semilattice join: 1000 random three-shard
   histories checked for commutativity, associativity and idempotence
   via the in-tree Prop harness (shrinking gives a minimal history on
   failure). *)
let hits_arb = Reprutil.Prop.(list ~max_len:30 (int_range 0 2000))

let test_merge_commutative () =
  Reprutil.Prop.check ~count:1000 ~name:"bitmap merge commutative"
    (Reprutil.Prop.pair hits_arb hits_arb)
    (fun (ha, hb) ->
       let va = virgin_of ha and vb = virgin_of hb in
       virgin_equal (joined va vb) (joined vb va))

let test_merge_associative () =
  Reprutil.Prop.check ~count:1000 ~name:"bitmap merge associative"
    (Reprutil.Prop.triple hits_arb hits_arb hits_arb)
    (fun (ha, hb, hc) ->
       let va = virgin_of ha
       and vb = virgin_of hb
       and vc = virgin_of hc in
       virgin_equal (joined (joined va vb) vc) (joined va (joined vb vc)))

let test_merge_idempotent () =
  Reprutil.Prop.check ~count:1000 ~name:"bitmap merge idempotent" hits_arb
    (fun hits ->
       let v = virgin_of hits in
       let before = B.snapshot v in
       B.merge ~into:v (B.snapshot v) = 0 && virgin_equal v before)

let test_merge_then_merge_into_no_news () =
  (* After a shard's virgin map is folded into the global map, replaying
     any of that shard's executions against the global map is not news. *)
  let exec = B.create () in
  B.hit exec 11;
  B.hit exec 11;
  B.hit exec 42;
  let shard = B.create () in
  ignore (B.merge_into ~virgin:shard exec);
  let global = B.create () in
  ignore (B.merge ~into:global shard);
  Alcotest.(check int) "cross-shard merge covers the execution" 0
    (B.merge_into ~virgin:global exec)

let test_snapshot_diff () =
  let v = B.create () in
  let exec = B.create () in
  B.hit exec 100;
  ignore (B.merge_into ~virgin:v exec);
  let before = B.snapshot v in
  Alcotest.(check int) "no drift yet" 0 (B.diff v ~since:before);
  let exec2 = B.create () in
  B.hit exec2 200;
  B.hit exec2 300;
  ignore (B.merge_into ~virgin:v exec2);
  Alcotest.(check int) "two new cells since snapshot" 2
    (B.diff v ~since:before);
  (* the snapshot is detached: mutating the live map leaves it alone *)
  Alcotest.(check int) "snapshot unchanged" 1 (B.count_nonzero before)

let test_hash_sensitivity () =
  let a = B.create () in
  let b = B.create () in
  Alcotest.(check bool) "empty maps equal hash" true (B.hash a = B.hash b);
  B.hit a 9;
  Alcotest.(check bool) "diverges" false (B.hash a = B.hash b);
  B.hit b 9;
  Alcotest.(check bool) "same again" true (B.hash a = B.hash b)

let test_probe_spreads () =
  let m = B.create () in
  for site = 0 to 9 do
    for key = 0 to 9 do
      B.probe m ~site ~key
    done
  done;
  (* 100 probes should land on (nearly) 100 distinct cells *)
  Alcotest.(check bool) "good spread" true (B.count_nonzero m > 90)

let test_sites_registry () =
  let a = Coverage.Sites.register "test.site.alpha" in
  let b = Coverage.Sites.register "test.site.beta" in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "idempotent" a
    (Coverage.Sites.register "test.site.alpha");
  Alcotest.(check (option string)) "name_of" (Some "test.site.beta")
    (Coverage.Sites.name_of b)

(* The historical probe formula folds the site id in linearly (xor of two
   products), so distinct (site, key) pairs alias onto one slot. Find a
   real collision by brute force, then show {!B.mix} separates it — the
   regression that motivated giving new slot families their own mixer. *)
let old_probe_slot ~site ~key =
  let h = (site * 0x9E3779B1) lxor ((key + 1) * 0x85EBCA6B) in
  (h lxor (h lsr 15)) mod B.size

let test_probe_aliasing_fixed () =
  let seen = Hashtbl.create 4096 in
  let found = ref None in
  (try
     for site = 0 to 511 do
       for key = 0 to 511 do
         let slot = old_probe_slot ~site ~key in
         match Hashtbl.find_opt seen slot with
         | Some (site', key') when (site', key') <> (site, key) ->
           if
             B.mix ~site ~key land (B.size - 1)
             <> B.mix ~site:site' ~key:key' land (B.size - 1)
           then begin
             found := Some ((site', key'), (site, key));
             raise Exit
           end
         | _ -> Hashtbl.replace seen slot (site, key)
       done
     done
   with Exit -> ());
  match !found with
  | None ->
    Alcotest.fail
      "no old-formula collision in 512x512 — formula changed under the test?"
  | Some ((s1, k1), (s2, k2)) ->
    Alcotest.(check int)
      (Printf.sprintf "(%d,%d) and (%d,%d) alias under the old formula" s1
         k1 s2 k2)
      (old_probe_slot ~site:s1 ~key:k1)
      (old_probe_slot ~site:s2 ~key:k2);
    Alcotest.(check bool) "mix separates the aliased pair" true
      (B.mix ~site:s1 ~key:k1 land (B.size - 1)
       <> B.mix ~site:s2 ~key:k2 land (B.size - 1))

let test_count_nonzero_in () =
  let m = B.create () in
  let half = B.size / 2 in
  B.hit m 3;
  B.hit m 40;
  B.hit m half;
  B.hit m (B.size - 1);
  Alcotest.(check int) "lower half" 2 (B.count_nonzero_in m ~lo:0 ~hi:half);
  Alcotest.(check int) "upper half" 2
    (B.count_nonzero_in m ~lo:half ~hi:B.size);
  Alcotest.(check int) "whole range matches count_nonzero"
    (B.count_nonzero m)
    (B.count_nonzero_in m ~lo:0 ~hi:B.size)

let test_count_news_matches_merge () =
  let virgin = B.create () in
  let seeded = B.create () in
  B.hit seeded 7;
  ignore (B.merge_into ~virgin seeded);
  let exec = B.create () in
  B.hit exec 7;
  (* same bucket: not news *)
  B.hit exec 21;
  B.hit exec 22;
  let before = B.snapshot virgin in
  Alcotest.(check int) "counted without mutating" 2
    (B.count_news ~virgin exec);
  Alcotest.(check int) "virgin untouched" 0 (B.diff virgin ~since:before);
  Alcotest.(check int) "merge_into agrees" 2 (B.merge_into ~virgin exec);
  Alcotest.(check int) "after the merge, no news left" 0
    (B.count_news ~virgin exec)

(* Grammar-map layout: rule slots fill the lower half (cell = site id),
   pair slots the upper half, so one bitmap carries both families and
   counts them apart. *)
let test_grammar_regions () =
  let g = B.create () in
  let region = B.size / 2 in
  Coverage.Grammar.record g ~site:3 ~parent:0;
  Coverage.Grammar.record g ~site:3 ~parent:1;
  Coverage.Grammar.record g ~site:5 ~parent:3;
  Coverage.Grammar.record g ~site:5 ~parent:3;
  (* repeat: no new cells *)
  Alcotest.(check int) "distinct rules" 2 (Coverage.Grammar.rules g);
  Alcotest.(check int) "distinct rule pairs" 3 (Coverage.Grammar.pairs g);
  Alcotest.(check int) "rule slots stay in the lower half"
    (Coverage.Grammar.rules g)
    (B.count_nonzero_in g ~lo:0 ~hi:region);
  Alcotest.(check int) "pair slots stay in the upper half"
    (Coverage.Grammar.pairs g)
    (B.count_nonzero_in g ~lo:region ~hi:B.size);
  Alcotest.(check int) "the two regions partition the map"
    (B.count_nonzero g)
    (Coverage.Grammar.rules g + Coverage.Grammar.pairs g)

let test_sites_family_limit () =
  let fam = Coverage.Sites.make_family ~label:"test" ~limit:4 in
  let ids =
    List.map
      (fun n -> Coverage.Sites.register_in fam n)
      [ "a"; "b"; "c"; "d" ]
  in
  Alcotest.(check int) "distinct ids up to the limit" 4
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check int) "re-registering at capacity is fine"
    (List.hd ids)
    (Coverage.Sites.register_in fam "a");
  Alcotest.check_raises "overflow fails loudly instead of wrapping"
    (Invalid_argument
       "Coverage.Sites.register \"e\": 5 test sites exceed the 4-cell \
        bitmap domain")
    (fun () -> ignore (Coverage.Sites.register_in fam "e"))

let test_sites_families_independent () =
  (* the grammar family never perturbs engine edge-site ids: registering
     a grammar site leaves the edge counter alone, and both families
     allocate from their own zero-based sequence *)
  let edge_count = Coverage.Sites.count () in
  ignore
    (Coverage.Sites.register_in Coverage.Sites.grammar "test.gram.site");
  Alcotest.(check int) "edge family unmoved" edge_count
    (Coverage.Sites.count ());
  Alcotest.(check bool) "grammar ids stay inside the rule region" true
    (Coverage.Sites.count_in Coverage.Sites.grammar <= B.size / 2)

let prop_merge_monotone =
  QCheck.Test.make ~name:"virgin count monotone under merges" ~count:100
    QCheck.(list (int_range 0 1000))
    (fun hits ->
       let virgin = B.create () in
       let run = B.create () in
       let last = ref 0 in
       List.for_all
         (fun h ->
            B.hit run h;
            ignore (B.merge_into ~virgin run);
            let now = B.count_nonzero virgin in
            let ok = now >= !last in
            last := now;
            ok)
         hits)

let suite =
  [ ("hit and count", `Quick, test_hit_and_count);
    ("reset", `Quick, test_reset);
    ("hit wraps", `Quick, test_hit_wraps);
    ("buckets", `Quick, test_buckets);
    ("merge new coverage", `Quick, test_merge_new_coverage);
    ("merge counts cells", `Quick, test_merge_counts_cells);
    ("cross-shard merge commutative (1000 cases)", `Quick,
     test_merge_commutative);
    ("cross-shard merge associative (1000 cases)", `Quick,
     test_merge_associative);
    ("cross-shard merge idempotent (1000 cases)", `Quick,
     test_merge_idempotent);
    ("merge_into after merge: no news", `Quick,
     test_merge_then_merge_into_no_news);
    ("snapshot and diff", `Quick, test_snapshot_diff);
    ("hash sensitivity", `Quick, test_hash_sensitivity);
    ("probe spreads", `Quick, test_probe_spreads);
    ("probe aliasing fixed by mix", `Quick, test_probe_aliasing_fixed);
    ("count_nonzero_in ranges", `Quick, test_count_nonzero_in);
    ("count_news matches merge_into", `Quick,
     test_count_news_matches_merge);
    ("grammar map regions", `Quick, test_grammar_regions);
    ("sites family limit", `Quick, test_sites_family_limit);
    ("sites families independent", `Quick, test_sites_families_independent);
    ("sites registry", `Quick, test_sites_registry);
    QCheck_alcotest.to_alcotest prop_merge_monotone ]
