(* Self-tests for the Prop harness: determinism, integrated shrinking,
   and counterexample reporting. *)

module Prop = Reprutil.Prop

let test_pass_counts_cases () =
  match
    Prop.run ~count:500 ~name:"tautology" (Prop.int_range 0 9) (fun _ -> true)
  with
  | Prop.Pass n -> Alcotest.(check int) "all cases evaluated" 500 n
  | Prop.Fail f -> Alcotest.fail (Prop.summary f)

let fail_of ~name arb prop =
  match Prop.run ~name arb prop with
  | Prop.Pass _ -> Alcotest.fail (name ^ ": expected a counterexample")
  | Prop.Fail f -> f

let test_int_shrinks_to_boundary () =
  (* halving search must land on the smallest failing value exactly *)
  let f = fail_of ~name:"ints below 50" (Prop.int_range 0 1000) (fun x -> x < 50) in
  Alcotest.(check string) "1-minimal counterexample" "50" f.Prop.f_shrunk;
  Alcotest.(check (option string)) "no exception" None f.Prop.f_error;
  Alcotest.(check bool) "shrinking did work" true (f.Prop.f_steps > 0)

let test_list_shrinks_elements_and_length () =
  let f =
    fail_of ~name:"short lists"
      (Prop.list ~max_len:12 (Prop.int_range 0 9))
      (fun l -> List.length l < 3)
  in
  Alcotest.(check string) "minimal failing list" "[0; 0; 0]" f.Prop.f_shrunk

let test_pair_shrinks_both_components () =
  let f =
    fail_of ~name:"small sums"
      (Prop.pair (Prop.int_range 0 100) (Prop.int_range 0 100))
      (fun (a, b) -> a + b < 30)
  in
  let sum = Scanf.sscanf f.Prop.f_shrunk "(%d, %d)" (fun a b -> a + b) in
  Alcotest.(check int) "shrunk pair sits on the boundary" 30 sum

let test_deterministic_replay () =
  (* equal seeds: equal first-failing case and equal shrunk witness *)
  let run () =
    Prop.run ~seed:7 ~name:"replay" (Prop.int_range 0 10_000)
      (fun x -> x mod 131 <> 17)
  in
  match (run (), run ()) with
  | Prop.Fail a, Prop.Fail b ->
    Alcotest.(check int) "same failing case" a.Prop.f_case b.Prop.f_case;
    Alcotest.(check string) "same original" a.Prop.f_original
      b.Prop.f_original;
    Alcotest.(check string) "same shrunk witness" a.Prop.f_shrunk
      b.Prop.f_shrunk
  | _ -> Alcotest.fail "expected both runs to falsify"

let test_exception_counts_as_failure () =
  let f =
    fail_of ~name:"raising prop" (Prop.int_range 0 100) (fun x ->
        if x >= 10 then failwith "boom" else true)
  in
  Alcotest.(check string) "shrunk to the raise threshold" "10"
    f.Prop.f_shrunk;
  (match f.Prop.f_error with
   | Some e ->
     Alcotest.(check bool) "exception text captured" true
       (String.length e > 0)
   | None -> Alcotest.fail "expected the exception to be recorded")

let test_custom_shrink_via_make () =
  (* black-box generator with a user shrink function: halve toward 0 *)
  let arb =
    Prop.make
      ~shrink:(fun x -> if x = 0 then Seq.empty else Seq.return (x / 2))
      ~print:string_of_int
      (fun rng -> 512 + Reprutil.Rng.int rng 512)
  in
  let f = fail_of ~name:"halving" arb (fun x -> x < 4) in
  (* halving from >=512 bottoms out in [4, 7] *)
  let v = int_of_string f.Prop.f_shrunk in
  Alcotest.(check bool) "shrunk into the minimal halving band" true
    (v >= 4 && v < 8)

let test_save_failure_writes_report () =
  let f = fail_of ~name:"report file" (Prop.int_range 0 99) (fun x -> x < 1) in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "prop-selftest" in
  (match Prop.save_failure ~dir f with
   | Some path ->
     Alcotest.(check bool) "report exists" true (Sys.file_exists path);
     let ic = open_in path in
     let len = in_channel_length ic in
     let body = really_input_string ic len in
     close_in ic;
     Alcotest.(check bool) "report names the property" true
       (String.length body > 0
        && String.length f.Prop.f_name > 0
        &&
        let re = f.Prop.f_name in
        let n = String.length body and m = String.length re in
        let rec loop i =
          i + m <= n && (String.sub body i m = re || loop (i + 1))
        in
        loop 0);
     Sys.remove path
   | None -> Alcotest.fail "save_failure returned no path")

let test_check_raises_with_summary () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "prop-selftest" in
  match
    Prop.check ~dir ~name:"must raise" (Prop.int_range 0 9) (fun _ -> false)
  with
  | () -> Alcotest.fail "check should have raised"
  | exception Failure msg ->
    Alcotest.(check bool) "summary mentions falsification" true
      (String.length msg > 0
       &&
       let re = "falsified" in
       let n = String.length msg and m = String.length re in
       let rec loop i =
         i + m <= n && (String.sub msg i m = re || loop (i + 1))
       in
       loop 0)

let suite =
  [ ("pass counts cases", `Quick, test_pass_counts_cases);
    ("int shrinks to the boundary", `Quick, test_int_shrinks_to_boundary);
    ("list shrinks length and elements", `Quick,
     test_list_shrinks_elements_and_length);
    ("pair shrinks both components", `Quick,
     test_pair_shrinks_both_components);
    ("deterministic replay", `Quick, test_deterministic_replay);
    ("exception counts as failure", `Quick,
     test_exception_counts_as_failure);
    ("custom shrink via make", `Quick, test_custom_shrink_via_make);
    ("save_failure writes a report", `Quick,
     test_save_failure_writes_report);
    ("check raises with the summary", `Quick,
     test_check_raises_with_summary) ]
