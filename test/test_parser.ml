(* Lexer and parser tests, including print->parse round-trips over every
   statement type via the generator. *)

open Sqlcore
module P = Sqlparser.Parser
module L = Sqlparser.Lexer

let parse_ok sql =
  match P.parse_stmt sql with
  | Ok s -> s
  | Error msg -> Alcotest.fail (sql ^ " -> " ^ msg)

let roundtrip sql =
  let s = parse_ok sql in
  let printed = Sql_printer.stmt s in
  let s2 = parse_ok printed in
  Alcotest.(check bool) ("roundtrip: " ^ sql) true (s = s2)

let test_lexer_tokens () =
  let toks = L.tokenize "SELECT a, 'it''s' FROM t1 WHERE x <> 1.5e2;" in
  Alcotest.(check int) "token count" 12 (Array.length toks);
  Alcotest.(check bool) "keyword" true (toks.(0) = L.KW "SELECT");
  Alcotest.(check bool) "ident lowercased" true (toks.(1) = L.IDENT "a");
  Alcotest.(check bool) "string escape" true (toks.(3) = L.STRING "it's");
  Alcotest.(check bool) "float exponent" true (toks.(9) = L.FLOAT 150.0);
  Alcotest.(check bool) "ends with EOF" true
    (toks.(Array.length toks - 1) = L.EOF)

let test_lexer_comments () =
  let toks = L.tokenize "SELECT 1 -- trailing comment\n, 2" in
  Alcotest.(check int) "comment skipped" 5 (Array.length toks)

let test_lexer_error () =
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (L.tokenize "SELECT 'oops");
       false
     with L.Lex_error _ -> true)

let test_parse_statement_forms () =
  (* one textual form per statement family, checking the mapped type *)
  let cases =
    [ ("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(3))",
       Stmt_type.Create_table);
      ("CREATE TEMPORARY TABLE t (a INT)", Stmt_type.Create_temp_table);
      ("CREATE UNIQUE INDEX i ON t (a, b)", Stmt_type.Create_unique_index);
      ("CREATE MATERIALIZED VIEW v AS SELECT 1",
       Stmt_type.Create_materialized_view);
      ("CREATE TRIGGER tr AFTER UPDATE ON t FOR EACH ROW INSERT INTO t \
        VALUES (1)",
       Stmt_type.Create_trigger);
      ("CREATE RULE r AS ON INSERT TO t DO INSTEAD NOTIFY chan",
       Stmt_type.Create_rule);
      ("CREATE SEQUENCE sq START WITH 5 INCREMENT BY -2",
       Stmt_type.Create_sequence);
      ("CREATE USER u IDENTIFIED BY 'pw'", Stmt_type.Create_user);
      ("DROP TABLE IF EXISTS t", Stmt_type.Drop_table);
      ("DROP RULE r ON t", Stmt_type.Drop_rule);
      ("ALTER TABLE t ADD COLUMN c INT DEFAULT 0",
       Stmt_type.Alter_table_add_column);
      ("ALTER TABLE t RENAME COLUMN a TO b",
       Stmt_type.Alter_table_rename_column);
      ("ALTER TABLE t ALTER COLUMN a TYPE TEXT",
       Stmt_type.Alter_table_alter_type);
      ("RENAME TABLE a TO b, c TO d", Stmt_type.Rename_table);
      ("TRUNCATE t", Stmt_type.Truncate);
      ("COMMENT ON TABLE t IS 'hello'", Stmt_type.Comment_on);
      ("INSERT IGNORE INTO t (a, b) VALUES (1, 2), (3, 4)",
       Stmt_type.Insert);
      ("INSERT INTO t SELECT * FROM u", Stmt_type.Insert_select);
      ("REPLACE INTO t VALUES (1)", Stmt_type.Replace_into);
      ("UPDATE t SET a = 1, b = (a + 1) WHERE a > 0 LIMIT 3",
       Stmt_type.Update);
      ("DELETE FROM t WHERE a IS NOT NULL", Stmt_type.Delete);
      ("COPY (SELECT 1) TO STDOUT CSV HEADER", Stmt_type.Copy_to);
      ("COPY t FROM STDIN (1, 'x'), (2, 'y')", Stmt_type.Copy_from);
      ("LOAD DATA INTO t VALUES (1, 2)", Stmt_type.Load_data);
      ("SELECT DISTINCT a FROM t GROUP BY a HAVING (COUNT(*) > 1) ORDER \
        BY a DESC LIMIT 5 OFFSET 2",
       Stmt_type.Select);
      ("SELECT 1 UNION ALL SELECT 2", Stmt_type.Select_union);
      ("SELECT 1 INTERSECT SELECT 2", Stmt_type.Select_intersect);
      ("SELECT 1 EXCEPT SELECT 2", Stmt_type.Select_except);
      ("WITH c AS (SELECT 1) SELECT * FROM c", Stmt_type.With_select);
      ("WITH c AS (INSERT INTO t VALUES (0)) DELETE FROM t",
       Stmt_type.With_dml);
      ("VALUES (1, 'a'), (2, 'b')", Stmt_type.Values_stmt);
      ("TABLE t", Stmt_type.Table_stmt);
      ("EXPLAIN SELECT * FROM t", Stmt_type.Explain);
      ("DESCRIBE t", Stmt_type.Describe);
      ("SHOW COLUMNS FROM t", Stmt_type.Show_columns);
      ("GRANT SELECT, INSERT ON t TO u", Stmt_type.Grant);
      ("REVOKE ALL ON t FROM u", Stmt_type.Revoke);
      ("SET ROLE u", Stmt_type.Set_role);
      ("BEGIN", Stmt_type.Begin_txn);
      ("ROLLBACK TO SAVEPOINT sp", Stmt_type.Rollback_to_savepoint);
      ("RELEASE SAVEPOINT sp", Stmt_type.Release_savepoint);
      ("SET TRANSACTION ISOLATION LEVEL REPEATABLE READ",
       Stmt_type.Set_transaction);
      ("LOCK TABLES a READ, b WRITE", Stmt_type.Lock_tables);
      ("SET GLOBAL x = 1", Stmt_type.Set_global_var);
      ("SET x = 'v'", Stmt_type.Set_var);
      ("SET NAMES utf8", Stmt_type.Set_names);
      ("PRAGMA foreign_keys = 1", Stmt_type.Pragma);
      ("VACUUM t", Stmt_type.Vacuum);
      ("ANALYZE", Stmt_type.Analyze);
      ("FLUSH PRIVILEGES", Stmt_type.Flush);
      ("OPTIMIZE TABLE t", Stmt_type.Optimize_table);
      ("NOTIFY chan, 'payload'", Stmt_type.Notify);
      ("DISCARD PLANS", Stmt_type.Discard);
      ("PREPARE p AS SELECT 1", Stmt_type.Prepare_stmt);
      ("EXECUTE p", Stmt_type.Execute_stmt);
      ("HANDLER t READ NEXT", Stmt_type.Handler_read);
      ("ALTER SYSTEM major_freeze", Stmt_type.Alter_system);
      ("REFRESH MATERIALIZED VIEW v", Stmt_type.Refresh_matview);
      ("KILL 7", Stmt_type.Kill_query);
      ("CLUSTER t", Stmt_type.Cluster) ]
  in
  List.iter
    (fun (sql, expected) ->
       let s = parse_ok sql in
       Alcotest.(check string) sql
         (Stmt_type.name expected)
         (Stmt_type.name (Ast.type_of_stmt s)))
    cases

let test_expression_precedence () =
  match P.parse_expr "1 + 2 * 3" with
  | Ok (Ast.Binop (Ast.Add, Ast.Lit (Ast.L_int 1), Ast.Binop (Ast.Mul, _, _)))
    -> ()
  | Ok e -> Alcotest.fail ("wrong tree: " ^ Sql_printer.expr e)
  | Error msg -> Alcotest.fail msg

let test_logic_precedence () =
  match P.parse_expr "a = 1 OR b = 2 AND c = 3" with
  | Ok (Ast.Binop (Ast.Or, _, Ast.Binop (Ast.And, _, _))) -> ()
  | Ok e -> Alcotest.fail ("wrong tree: " ^ Sql_printer.expr e)
  | Error msg -> Alcotest.fail msg

let test_not_exists () =
  match P.parse_expr "NOT EXISTS (SELECT 1)" with
  | Ok (Ast.Exists (_, true)) -> ()
  | Ok e -> Alcotest.fail ("wrong tree: " ^ Sql_printer.expr e)
  | Error msg -> Alcotest.fail msg

let test_window_over () =
  let s =
    parse_ok
      "SELECT LEAD(a, 2) OVER (PARTITION BY b ORDER BY a DESC ROWS BETWEEN \
       1 PRECEDING AND UNBOUNDED FOLLOWING) FROM t"
  in
  Alcotest.(check bool) "has window" true (Ast_util.has_window_fn s)

let test_parse_testcase_multi () =
  match P.parse_testcase "SELECT 1; SELECT 2;; SELECT 3" with
  | Ok tc -> Alcotest.(check int) "three stmts" 3 (List.length tc)
  | Error msg -> Alcotest.fail msg

let test_parse_empty () =
  match P.parse_testcase "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected empty"
  | Error msg -> Alcotest.fail msg

let test_parse_errors () =
  List.iter
    (fun sql ->
       match P.parse_stmt sql with
       | Ok _ -> Alcotest.fail ("should not parse: " ^ sql)
       | Error _ -> ())
    [ "SELECT FROM WHERE"; "CREATE TABLE"; "INSERT t VALUES (1)";
      "SELECT 1 FROM"; "DROP"; "GRANT ON t TO u"; "WITH x SELECT 1" ]

let test_fig7_testcase_parses () =
  (* the paper's Figure 7 test case, verbatim structure *)
  let sql =
    "CREATE TABLE v0 (v4 INT, v3 INT UNIQUE, v2 INT, v1 INT UNIQUE);\n\
     CREATE RULE v1 AS ON INSERT TO v0 DO INSTEAD NOTIFY compression;\n\
     COPY (SELECT 32 EXCEPT SELECT (v3 + 16) FROM v0) TO STDOUT CSV HEADER;\n\
     WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v3 = 48;"
  in
  match P.parse_testcase sql with
  | Ok tc ->
    Alcotest.(check (list string)) "type sequence"
      [ "CREATE TABLE"; "CREATE RULE"; "COPY TO"; "WITH DML" ]
      (List.map Stmt_type.name (Ast.type_sequence tc))
  | Error msg -> Alcotest.fail msg

let test_handwritten_roundtrips () =
  List.iter roundtrip
    [ "SELECT (a + 1) AS x, t.* FROM t AS u WHERE ((a > 1) AND (b IS NULL))";
      "SELECT CASE WHEN (a = 1) THEN 'one' ELSE 'many' END FROM t";
      "INSERT INTO t VALUES ((1 + 2), CAST('3' AS INT), NULL)";
      "SELECT * FROM a JOIN b ON (a.x = b.y) LEFT JOIN c ON TRUE";
      "SELECT COUNT(DISTINCT a), GROUP_CONCAT(b) FROM t GROUP BY c";
      "SELECT * FROM (SELECT a FROM t) AS sub WHERE (a IN (1, 2, 3))";
      "WITH w AS (UPDATE t SET a = 1) INSERT INTO t VALUES (2)";
      "SELECT ROW_NUMBER() OVER (ORDER BY a ASC) FROM t" ]

(* Property: the generator's statements all print to parseable SQL that
   round-trips structurally — for every one of the 94 statement types. *)
let prop_generator_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip on generated statements"
    ~count:500
    QCheck.(pair small_nat (int_bound (Stmt_type.count - 1)))
    (fun (seed, ty_idx) ->
       let rng = Reprutil.Rng.create (seed + 1) in
       let schema = Lego.Sym_schema.empty () in
       (* give the generator something to reference *)
       Lego.Sym_schema.apply schema
         (P.parse_stmt_exn "CREATE TABLE g1 (c1 INT, c2 TEXT)");
       let ty = Stmt_type.of_index ty_idx in
       let stmt = Lego.Generator.stmt rng schema ty in
       let printed = Sql_printer.stmt stmt in
       match P.parse_stmt printed with
       | Error msg -> QCheck.Test.fail_reportf "parse failed: %s\n%s" msg printed
       | Ok reparsed ->
         if reparsed = stmt then true
         else
           QCheck.Test.fail_reportf "roundtrip mismatch:\n%s\n%s" printed
             (Sql_printer.stmt reparsed))

(* Grammar recording must be a pure function of the SQL text: parsing
   the same input twice into fresh grammar bitmaps yields cell-identical
   maps with equal rule/pair counts — the determinism the cross-shard
   grammar-map union relies on (DESIGN.md §15). Exercised over generated
   statements of every type, 1000 cases. *)
let grammar_digest sql =
  let g = Coverage.Bitmap.create () in
  match P.parse_testcase ~grammar:g sql with
  | Error msg -> `Parse_error msg
  | Ok _ ->
    `Parsed
      (Coverage.Bitmap.hash g, Coverage.Grammar.rules g,
       Coverage.Grammar.pairs g)

let test_grammar_bitmap_deterministic () =
  Reprutil.Prop.check ~count:1000
    ~name:"parse-twice grammar-bitmap determinism"
    Reprutil.Prop.(
      pair (int_range 1 1_000_000) (int_range 0 (Stmt_type.count - 1)))
    (fun (seed, ty_idx) ->
       let rng = Reprutil.Rng.create seed in
       let schema = Lego.Sym_schema.empty () in
       Lego.Sym_schema.apply schema
         (P.parse_stmt_exn "CREATE TABLE g1 (c1 INT, c2 TEXT)");
       let stmt =
         Lego.Generator.stmt rng schema (Stmt_type.of_index ty_idx)
       in
       let sql = Sql_printer.testcase [ stmt ] in
       match (grammar_digest sql, grammar_digest sql) with
       | `Parsed (h1, r1, p1), `Parsed (h2, r2, p2) ->
         (* identical map, nonzero counts: the instrumentation fired *)
         h1 = h2 && r1 = r2 && p1 = p2 && r1 > 0 && p1 > 0
       | `Parse_error _, `Parse_error _ ->
         false (* generated statements always print to parseable SQL *)
       | _ -> false)

let test_grammar_off_is_plain_parse () =
  (* parses with and without a grammar map agree on the AST *)
  let sql = "SELECT a, COUNT(*) FROM t WHERE a > 1 GROUP BY a ORDER BY a" in
  let g = Coverage.Bitmap.create () in
  let with_g = P.parse_testcase ~grammar:g sql in
  let without = P.parse_testcase sql in
  Alcotest.(check bool) "same AST" true (with_g = without);
  Alcotest.(check bool) "grammar map populated" true
    (Coverage.Bitmap.count_nonzero g > 0)

let suite =
  [ ("lexer tokens", `Quick, test_lexer_tokens);
    ("lexer comments", `Quick, test_lexer_comments);
    ("lexer error", `Quick, test_lexer_error);
    ("statement forms", `Quick, test_parse_statement_forms);
    ("expression precedence", `Quick, test_expression_precedence);
    ("logic precedence", `Quick, test_logic_precedence);
    ("not exists", `Quick, test_not_exists);
    ("window over", `Quick, test_window_over);
    ("testcase multi", `Quick, test_parse_testcase_multi);
    ("empty input", `Quick, test_parse_empty);
    ("parse errors", `Quick, test_parse_errors);
    ("fig7 testcase parses", `Quick, test_fig7_testcase_parses);
    ("handwritten roundtrips", `Quick, test_handwritten_roundtrips);
    ("grammar bitmap deterministic (1000 cases)", `Quick,
     test_grammar_bitmap_deterministic);
    ("grammar off is plain parse", `Quick, test_grammar_off_is_plain_parse);
    QCheck_alcotest.to_alcotest prop_generator_roundtrip ]
