(* Tests for the LEGO core machinery: generator totality, instantiation
   repair, conventional mutation, sequence-oriented mutation. *)

open Sqlcore
module Rng = Reprutil.Rng

let parse = Sqlparser.Parser.parse_testcase_exn

(* --- generator ------------------------------------------------------ *)

let prop_generator_type_exact =
  QCheck.Test.make
    ~name:"generated statement has exactly the requested type" ~count:1000
    QCheck.(pair small_nat (int_bound (Stmt_type.count - 1)))
    (fun (seed, idx) ->
       let rng = Rng.create (seed * 7 + 1) in
       let schema = Lego.Sym_schema.empty () in
       Lego.Sym_schema.apply schema
         (Sqlparser.Parser.parse_stmt_exn "CREATE TABLE base (c1 INT, c2 TEXT)");
       let ty = Stmt_type.of_index idx in
       let stmt = Lego.Generator.stmt rng schema ty in
       Stmt_type.equal (Ast.type_of_stmt stmt) ty)

let test_generator_no_tables () =
  (* even with an empty schema, generation must not raise *)
  let rng = Rng.create 99 in
  let schema = Lego.Sym_schema.empty () in
  List.iter
    (fun ty -> ignore (Lego.Generator.stmt rng schema ty))
    Stmt_type.all

(* --- sym_schema ----------------------------------------------------- *)

let test_sym_schema_tracking () =
  let schema =
    Lego.Sym_schema.of_testcase
      (parse
         "CREATE TABLE a (x INT, y TEXT);\n\
          CREATE TABLE b (z INT);\n\
          ALTER TABLE a ADD COLUMN w INT;\n\
          ALTER TABLE a RENAME COLUMN x TO x2;\n\
          DROP TABLE b;\n\
          ALTER TABLE a RENAME TO c;")
  in
  Alcotest.(check (list string)) "one table left" [ "c" ]
    (List.map fst (Lego.Sym_schema.tables schema));
  match Lego.Sym_schema.table_cols schema "c" with
  | Some cols ->
    Alcotest.(check (list string)) "columns tracked" [ "x2"; "y"; "w" ]
      (List.map (fun c -> c.Lego.Sym_schema.sc_name) cols)
  | None -> Alcotest.fail "table lost"

let test_sym_schema_fresh () =
  let schema = Lego.Sym_schema.of_testcase (parse "CREATE TABLE v1 (a INT);") in
  let n1 = Lego.Sym_schema.fresh schema ~prefix:"v" in
  Alcotest.(check bool) "avoids collision" true (n1 <> "v1")

(* --- instantiation & repair ----------------------------------------- *)

let test_repair_fixes_dangling_table () =
  (* the paper's own example: INSERT INTO v2 ... becomes INSERT INTO v0 *)
  let rng = Rng.create 5 in
  let tc =
    parse
      "CREATE TABLE v0 (x INT, y INT);\n\
       INSERT INTO v2 (v1) VALUES (100);"
  in
  match Lego.Instantiate.repair rng tc with
  | [ _; Ast.S_insert { i_table; i_cols; _ } ] ->
    Alcotest.(check string) "retargeted" "v0" i_table;
    List.iter
      (fun c ->
         Alcotest.(check bool) "col belongs to v0" true
           (List.mem c [ "x"; "y" ]))
      i_cols
  | _ -> Alcotest.fail "unexpected repair result"

let test_repair_freshens_clashing_create () =
  let rng = Rng.create 5 in
  let tc = parse "CREATE TABLE t (a INT); CREATE TABLE t (b INT);" in
  match Lego.Instantiate.repair rng tc with
  | [ Ast.S_create_table { name = n1; _ };
      Ast.S_create_table { name = n2; _ } ] ->
    Alcotest.(check bool) "renamed" true (n1 <> n2)
  | _ -> Alcotest.fail "unexpected repair result"

let test_repair_fixes_insert_arity () =
  let rng = Rng.create 5 in
  let tc =
    parse "CREATE TABLE t (a INT, b INT, c INT); INSERT INTO t VALUES (1);"
  in
  match Lego.Instantiate.repair rng tc with
  | [ _; Ast.S_insert { i_source = Ast.Src_values [ row ]; _ } ] ->
    Alcotest.(check int) "padded to arity" 3 (List.length row)
  | _ -> Alcotest.fail "unexpected repair result"

let test_repair_clamps_deep_exprs () =
  let deep =
    let rec nest n acc =
      if n = 0 then acc else nest (n - 1) (Ast.Unop (Ast.Neg, acc))
    in
    nest 64 (Ast.Lit (Ast.L_int 1))
  in
  let tc = [ Ast.S_do deep ] in
  match Lego.Instantiate.repair (Rng.create 1) tc with
  | [ Ast.S_do e ] ->
    Alcotest.(check bool) "clamped" true (Ast_util.expr_depth e <= 14)
  | _ -> Alcotest.fail "unexpected repair result"

let prop_instantiate_preserves_type_sequence =
  QCheck.Test.make ~name:"instantiated sequence keeps its type sequence"
    ~count:300
    QCheck.(pair small_nat (list_of_size (Gen.int_range 1 5)
                              (int_bound (Stmt_type.count - 1))))
    (fun (seed, idxs) ->
       let rng = Rng.create (seed + 11) in
       let skeletons = Lego.Skeleton_library.create () in
       let types = List.map Stmt_type.of_index idxs in
       let tc = Lego.Instantiate.sequence rng ~skeletons types in
       List.map Stmt_type.to_index (Ast.type_sequence tc) = idxs)

(* --- skeleton library ----------------------------------------------- *)

let test_skeleton_harvest_pick () =
  let lib = Lego.Skeleton_library.create () in
  let tc = parse "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);" in
  let stored = Lego.Skeleton_library.harvest lib tc in
  Alcotest.(check int) "stored both" 2 stored;
  Alcotest.(check int) "dedupe" 0 (Lego.Skeleton_library.harvest lib tc);
  (match Lego.Skeleton_library.pick lib (Rng.create 1) Stmt_type.Insert with
   | Some (Ast.S_insert _) -> ()
   | _ -> Alcotest.fail "expected harvested insert");
  Alcotest.(check bool) "absent type" true
    (Lego.Skeleton_library.pick lib (Rng.create 1) Stmt_type.Vacuum = None);
  Alcotest.(check int) "types covered" 2
    (Lego.Skeleton_library.types_covered lib)

let test_skeleton_journal_and_store () =
  (* Harvested structures are journaled for exchange export; [store]d
     (imported) ones are kept but never journaled, so importers can't
     re-export foreign structures. *)
  let lib = Lego.Skeleton_library.create () in
  let tc = parse "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);" in
  ignore (Lego.Skeleton_library.harvest lib tc);
  Alcotest.(check int) "harvest journals" 2
    (Lego.Skeleton_library.journal_length lib);
  Alcotest.(check int) "journal suffix" 1
    (List.length (Lego.Skeleton_library.journal_since lib 1));
  let foreign = List.hd (parse "SELECT 1;") in
  Alcotest.(check bool) "store accepts fresh" true
    (Lego.Skeleton_library.store lib foreign);
  Alcotest.(check bool) "store dedups" false
    (Lego.Skeleton_library.store lib foreign);
  Alcotest.(check int) "stored counted" 3 (Lego.Skeleton_library.count lib);
  Alcotest.(check int) "stored not journaled" 2
    (Lego.Skeleton_library.journal_length lib);
  (match Lego.Skeleton_library.pick lib (Rng.create 1) Stmt_type.Select with
   | Some (Ast.S_select _) -> ()
   | _ -> Alcotest.fail "expected the stored select to be pickable")

(* --- conventional mutation ------------------------------------------ *)

let prop_conventional_preserves_type_sequence =
  QCheck.Test.make
    ~name:"conventional mutation preserves the SQL type sequence"
    ~count:500 QCheck.small_nat
    (fun seed ->
       let rng = Rng.create (seed + 3) in
       let tc =
         parse
           "CREATE TABLE t (a INT, b INT);\n\
            INSERT INTO t VALUES (1, 2);\n\
            UPDATE t SET a = 3 WHERE b = 2;\n\
            SELECT a, b FROM t ORDER BY a ASC;"
       in
       let mutated = Lego.Conventional.mutate_testcase rng tc in
       Ast.type_sequence mutated = Ast.type_sequence tc)

let test_conventional_changes_something () =
  let rng = Rng.create 4 in
  let tc = parse "CREATE TABLE t (a INT); SELECT a FROM t WHERE a = 5;" in
  let changed = ref 0 in
  for _ = 1 to 50 do
    if Lego.Conventional.mutate_testcase rng tc <> tc then incr changed
  done;
  Alcotest.(check bool) "mutations usually change the case" true
    (!changed > 25)

(* --- sequence-oriented mutation (Algorithm 1) ------------------------ *)

let all_types = Stmt_type.all

let test_seq_mutation_ops () =
  let rng = Rng.create 8 in
  let skeletons = Lego.Skeleton_library.create () in
  let tc =
    parse
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;"
  in
  let mutants =
    Lego.Seq_mutation.mutate_at rng ~skeletons ~types:all_types tc ~pos:1
  in
  Alcotest.(check int) "three ops" 3 (List.length mutants);
  List.iter
    (fun (op, mutant) ->
       match op with
       | Lego.Seq_mutation.Substitution ->
         Alcotest.(check int) "same length" 3 (List.length mutant);
         Alcotest.(check bool) "type changed at pos" true
           (not
              (Stmt_type.equal
                 (Ast.type_of_stmt (List.nth mutant 1))
                 Stmt_type.Insert))
       | Lego.Seq_mutation.Insertion ->
         Alcotest.(check int) "one longer" 4 (List.length mutant)
       | Lego.Seq_mutation.Deletion ->
         Alcotest.(check int) "one shorter" 2 (List.length mutant))
    mutants

let test_seq_mutation_no_delete_singleton () =
  let rng = Rng.create 8 in
  let skeletons = Lego.Skeleton_library.create () in
  let tc = parse "SELECT 1;" in
  let mutants =
    Lego.Seq_mutation.mutate_at rng ~skeletons ~types:all_types tc ~pos:0
  in
  Alcotest.(check bool) "no deletion of the only statement" true
    (List.for_all
       (fun (op, _) -> op <> Lego.Seq_mutation.Deletion)
       mutants)

let test_seq_mutation_all_positions () =
  let rng = Rng.create 8 in
  let skeletons = Lego.Skeleton_library.create () in
  let tc =
    parse "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT 1;"
  in
  let mutants =
    Lego.Seq_mutation.mutate_all rng ~skeletons ~types:all_types tc
  in
  Alcotest.(check int) "3 ops x 3 positions" 9 (List.length mutants)

let test_seq_mutation_caps_length () =
  let rng = Rng.create 8 in
  let skeletons = Lego.Skeleton_library.create () in
  let long_tc =
    List.concat (List.init 30 (fun _ -> parse "SELECT 1;"))
  in
  let mutants =
    Lego.Seq_mutation.mutate_at rng ~skeletons ~types:all_types long_tc
      ~pos:0
  in
  Alcotest.(check bool) "no insertion past the cap" true
    (List.for_all
       (fun (op, _) -> op <> Lego.Seq_mutation.Insertion)
       mutants)

let suite =
  [ QCheck_alcotest.to_alcotest prop_generator_type_exact;
    ("generator with empty schema", `Quick, test_generator_no_tables);
    ("sym_schema tracking", `Quick, test_sym_schema_tracking);
    ("sym_schema fresh", `Quick, test_sym_schema_fresh);
    ("repair dangling table", `Quick, test_repair_fixes_dangling_table);
    ("repair clashing create", `Quick, test_repair_freshens_clashing_create);
    ("repair insert arity", `Quick, test_repair_fixes_insert_arity);
    ("repair clamps deep exprs", `Quick, test_repair_clamps_deep_exprs);
    QCheck_alcotest.to_alcotest prop_instantiate_preserves_type_sequence;
    ("skeleton harvest/pick", `Quick, test_skeleton_harvest_pick);
    ("skeleton journal/store", `Quick, test_skeleton_journal_and_store);
    QCheck_alcotest.to_alcotest prop_conventional_preserves_type_sequence;
    ("conventional changes something", `Quick,
     test_conventional_changes_something);
    ("seq mutation ops", `Quick, test_seq_mutation_ops);
    ("seq mutation singleton", `Quick, test_seq_mutation_no_delete_singleton);
    ("seq mutation all positions", `Quick, test_seq_mutation_all_positions);
    ("seq mutation caps length", `Quick, test_seq_mutation_caps_length) ]
