(* Equivalence suite for the copy-on-write storage refactor.

   The persistent Table/Index/Catalog must be observationally identical
   to the pre-refactor mutable versions: [Table.deep_copy] keeps the
   old physical-copy semantics as the in-tree reference, so every law
   below drives the O(1) [copy] and the reference through the same
   random op program and compares the observable state. Snapshot
   aliasing laws check the other half of the contract: a snapshot is
   frozen — no later mutation of the live side (or of a restored
   engine) may leak into it, and one snapshot restores any number of
   times. *)

open Sqlcore
module T = Storage.Table
module I = Storage.Index
module V = Storage.Value
module E = Minidb.Engine
module Prop = Reprutil.Prop

let parse = Sqlparser.Parser.parse_testcase_exn

(* -- observable state dumps --------------------------------------- *)

let dump_row row =
  String.concat "," (List.map V.to_display (Array.to_list row))

let dump_table t =
  Printf.sprintf "%s[%s]{%s}" (T.name t)
    (String.concat ";"
       (List.map (fun c -> c.T.c_name) (Array.to_list (T.cols t))))
    (String.concat "|"
       (List.map
          (fun (id, row) -> Printf.sprintf "%d:%s" id (dump_row row))
          (T.to_rows t)))

let dump_engine eng =
  let cat = E.catalog eng in
  let tables =
    Hashtbl.fold (fun name t acc -> (name, t) :: acc)
      cat.Minidb.Catalog.tables []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  String.concat "\n" (List.map (fun (_, t) -> dump_table t) tables)
  ^ Printf.sprintf "\n#win=%s"
      (String.concat ">" (List.map Stmt_type.name (E.window eng)))

(* -- random table op programs ------------------------------------- *)

let base_cols =
  [ { T.c_name = "a"; c_type = Ast.T_int; c_not_null = false;
      c_primary = false; c_unique = false; c_default = None;
      c_zerofill = false };
    { T.c_name = "b"; c_type = Ast.T_text; c_not_null = false;
      c_primary = false; c_unique = false; c_default = None;
      c_zerofill = false } ]

let fresh_table () = T.create ~name:"t" ~temp:false base_cols

(* Interpret one (tag, x, y) op. Total: every op applies to any table
   state, and the same op program drives any two tables identically
   (rowids are assigned by the same monotone counter on both sides). *)
let apply_op t (tag, x, y) =
  match tag mod 8 with
  | 0 | 1 | 2 ->
    let row =
      Array.map
        (fun c ->
           match c.T.c_type with
           | Ast.T_int -> V.Int x
           | _ -> V.Text (string_of_int y))
        (T.cols t)
    in
    ignore (T.insert t row)
  | 3 ->
    let row = Array.make (T.arity t) (V.Int (x + y)) in
    T.update_row t (x mod 40) row
  | 4 -> ignore (T.delete_rows t (fun id -> id mod (2 + (y mod 5)) = 0))
  | 5 ->
    if y mod 11 = 0 then ignore (T.truncate t)
    else ignore (T.insert t (Array.make (T.arity t) V.Null))
  | 6 ->
    if y mod 3 = 0 && T.arity t > 1 then T.drop_column t (x mod T.arity t)
    else
      T.add_column t
        { T.c_name = Printf.sprintf "c%d" x; c_type = Ast.T_int;
          c_not_null = false; c_primary = false; c_unique = false;
          c_default = Some (V.Int y); c_zerofill = false }
  | _ ->
    if T.arity t > 0 then T.rename_column t (x mod T.arity t) ("r" ^ string_of_int y)

let ops_arb =
  Prop.list ~max_len:40
    (Prop.triple (Prop.int_range 0 99) (Prop.int_range 0 99)
       (Prop.int_range 0 99))

let split_at n l =
  let rec go i acc = function
    | rest when i = n -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (i + 1) (x :: acc) rest
  in
  go 0 [] l

(* Law: at any point in a random program, [copy] and [deep_copy] freeze
   the same state, that state equals a fresh replay of the prefix, and
   none of the three is disturbed by the suffix running on the live
   table. *)
let prop_table_copy_equiv =
  let arb = Prop.pair ops_arb (Prop.int_range 0 40) in
  fun () ->
    Prop.check ~count:1000 ~name:"Table.copy ≡ deep_copy ≡ replay" arb
      (fun (ops, cut) ->
         let prefix, suffix = split_at (cut mod (List.length ops + 1)) ops in
         let live = fresh_table () in
         List.iter (apply_op live) prefix;
         let cow = T.copy live in
         let deep = T.deep_copy live in
         let frozen = dump_table cow in
         List.iter (apply_op live) suffix;
         let replay = fresh_table () in
         List.iter (apply_op replay) prefix;
         frozen = dump_table deep
         && frozen = dump_table replay
         && frozen = dump_table cow  (* suffix did not leak into cow *)
         && frozen = dump_table deep)

(* Law: mutating the copy never touches the source (the reverse
   direction of the isolation contract). *)
let prop_table_copy_isolated =
  let arb = Prop.pair ops_arb ops_arb in
  fun () ->
    Prop.check ~count:1000 ~name:"mutating Table.copy leaves source alone"
      arb
      (fun (prefix, suffix) ->
         let live = fresh_table () in
         List.iter (apply_op live) prefix;
         let before = dump_table live in
         let cow = T.copy live in
         List.iter (apply_op cow) suffix;
         dump_table live = before)

(* -- index copy law ----------------------------------------------- *)

let key_of x = [ V.Int (x mod 7) ]

let apply_ix_op ix (tag, x, y) =
  match tag mod 3 with
  | 0 | 1 -> ignore (I.add ix (key_of x) y)
  | _ -> I.remove ix (key_of x) y

let dump_index ix =
  let keys = List.init 7 (fun k -> [ V.Int k ]) in
  Printf.sprintf "%d/%s" (I.length ix)
    (String.concat "|"
       (List.map
          (fun k ->
             String.concat "," (List.map string_of_int (I.find ix k)))
          keys))

let prop_index_copy_equiv =
  let arb = Prop.pair ops_arb ops_arb in
  fun () ->
    Prop.check ~count:1000 ~name:"Index.copy ≡ replay of prefix" arb
      (fun (prefix, suffix) ->
         let live = I.create ~unique:false in
         List.iter (apply_ix_op live) prefix;
         let cow = I.copy live in
         let frozen = dump_index cow in
         List.iter (apply_ix_op live) suffix;
         let replay = I.create ~unique:false in
         List.iter (apply_ix_op replay) prefix;
         frozen = dump_index replay && frozen = dump_index cow)

(* -- engine snapshot aliasing ------------------------------------- *)

let stmt_of (tag, x, y) =
  let t = Printf.sprintf "t%d" (y mod 3) in
  match tag mod 6 with
  | 0 -> Printf.sprintf "CREATE TABLE %s (a INT, b TEXT);" t
  | 1 | 2 -> Printf.sprintf "INSERT INTO %s VALUES (%d, 'v%d');" t x y
  | 3 -> Printf.sprintf "UPDATE %s SET a = %d;" t (x + y)
  | 4 -> Printf.sprintf "DELETE FROM %s WHERE a > %d;" t x
  | _ -> Printf.sprintf "DROP TABLE %s;" t

let profile = Minidb.Profile.make ~name:"test" ~flavor:Minidb.Profile.Pg
    ~types:Stmt_type.all ~bugs:[]

let engine () = E.create ~profile ~cov:(Coverage.Bitmap.create ()) ()

let run_sql eng stmts =
  List.iter (fun s -> ignore (E.run_testcase eng (parse s))) stmts

(* Law: an engine snapshot is frozen and restores repeatedly — running a
   suffix on the live engine, then on a restored engine, never changes
   what a (second, third, ...) restore of the same snapshot observes. *)
let prop_snapshot_aliasing =
  let arb = Prop.pair ops_arb ops_arb in
  fun () ->
    Prop.check ~count:200 ~name:"Engine.snapshot never aliases live state"
      arb
      (fun (prefix, suffix) ->
         let prefix = List.map stmt_of prefix in
         let suffix = List.map stmt_of suffix in
         let live = engine () in
         run_sql live prefix;
         let snap = E.snapshot live in
         let frozen = dump_engine live in
         (* 1: mutate the live engine *)
         run_sql live suffix;
         let r1 = E.restore snap ~cov:(Coverage.Bitmap.create ()) () in
         let ok1 = dump_engine r1 = frozen in
         (* 2: mutate the restored engine *)
         run_sql r1 suffix;
         let r2 = E.restore snap ~cov:(Coverage.Bitmap.create ()) () in
         let ok2 = dump_engine r2 = frozen in
         (* 3: a restored engine continues like the captured one *)
         let replay = engine () in
         run_sql replay prefix;
         run_sql replay suffix;
         run_sql r2 suffix;
         let ok3 = dump_engine r2 = dump_engine replay in
         ok1 && ok2 && ok3)

(* Law: disabling copy-on-write (the REPRO_COW ablation's deep-copy
   mode) changes performance only — snapshot/restore observations are
   identical in both modes. *)
let prop_cow_ablation_equiv =
  let arb = Prop.pair ops_arb ops_arb in
  fun () ->
    Prop.check ~count:200 ~name:"copy-on-write off ≡ on" arb
      (fun (prefix, suffix) ->
         let prefix = List.map stmt_of prefix in
         let suffix = List.map stmt_of suffix in
         let observe () =
           let live = engine () in
           run_sql live prefix;
           let snap = E.snapshot live in
           run_sql live suffix;
           let restored = E.restore snap ~cov:(Coverage.Bitmap.create ()) () in
           run_sql restored suffix;
           dump_engine live ^ "//" ^ dump_engine restored
         in
         let with_cow = observe () in
         let without_cow =
           Minidb.Catalog.set_copy_on_write false;
           Fun.protect
             ~finally:(fun () -> Minidb.Catalog.set_copy_on_write true)
             observe
         in
         with_cow = without_cow)

(* deterministic aliasing corner: snapshot while inside a transaction
   with savepoints — restore must reproduce the txn machinery too *)
let test_snapshot_inside_txn () =
  let live = engine () in
  run_sql live
    [ "CREATE TABLE t (a INT);"; "INSERT INTO t VALUES (1);";
      "BEGIN;"; "INSERT INTO t VALUES (2);"; "SAVEPOINT sp;";
      "INSERT INTO t VALUES (3);" ];
  let snap = E.snapshot live in
  let frozen = dump_engine live in
  run_sql live [ "ROLLBACK TO SAVEPOINT sp;"; "COMMIT;" ];
  let r = E.restore snap ~cov:(Coverage.Bitmap.create ()) () in
  Alcotest.(check string) "restored state" frozen (dump_engine r);
  run_sql r [ "ROLLBACK;" ];
  let live2 = dump_engine r in
  let r2 = E.restore snap ~cov:(Coverage.Bitmap.create ()) () in
  Alcotest.(check string) "second restore still frozen" frozen
    (dump_engine r2);
  Alcotest.(check bool) "rollback changed the restored engine" true
    (live2 <> frozen)

let test_copy_shares_root () =
  let t = fresh_table () in
  ignore (T.insert t [| V.Int 1; V.Text "x" |]);
  let c = T.copy t in
  Alcotest.(check bool) "copy shares row root" true (T.rows_root_eq t c);
  ignore (T.insert t [| V.Int 2; V.Text "y" |]);
  Alcotest.(check bool) "insert unshares" false (T.rows_root_eq t c);
  let d = T.deep_copy t in
  Alcotest.(check bool) "deep_copy never shares" false (T.rows_root_eq t d)

let suite =
  [ ("table copy ≡ deep_copy ≡ replay (1000 cases)", `Quick,
     prop_table_copy_equiv);
    ("table copy isolation (1000 cases)", `Quick, prop_table_copy_isolated);
    ("index copy ≡ replay (1000 cases)", `Quick, prop_index_copy_equiv);
    ("engine snapshot aliasing", `Quick, prop_snapshot_aliasing);
    ("cow ablation equivalence", `Quick, prop_cow_ablation_equiv);
    ("snapshot inside transaction", `Quick, test_snapshot_inside_txn);
    ("copy shares persistent root", `Quick, test_copy_shares_root) ]
