(* Telemetry subsystem tests: the registry merge algebra (which must
   mirror Coverage.Bitmap.merge's laws — see test_coverage.ml), histogram
   bucket edges, JSONL round-trips through the report parser, and the
   byte-identity regression for the human summary sink. *)

module T = Telemetry

let canon r = T.Json.to_string (T.Registry.to_json r)

(* Deterministically populated registries for the law checks. *)
let mk_registry seed =
  let rng = Reprutil.Rng.create seed in
  let r = T.Registry.create () in
  let c1 = T.Registry.counter r "execs" in
  let c2 = T.Registry.counter r "crashes" in
  let g = T.Registry.gauge r "pool.max" in
  let h = T.Registry.histogram r "cost" in
  for _ = 1 to 32 do
    T.Registry.incr ~by:(Reprutil.Rng.int rng 5) c1;
    if Reprutil.Rng.ratio rng 1 4 then T.Registry.incr c2;
    T.Registry.set_max g (Reprutil.Rng.int rng 1000);
    T.Registry.observe h (Reprutil.Rng.int rng 100_000)
  done;
  r

let merged a b =
  let into = T.Registry.snapshot a in
  T.Registry.merge ~into b;
  into

let test_merge_commutative () =
  let a = mk_registry 1 and b = mk_registry 2 in
  Alcotest.(check string) "a+b = b+a" (canon (merged a b)) (canon (merged b a))

let test_merge_associative () =
  let a = mk_registry 3 and b = mk_registry 4 and c = mk_registry 5 in
  Alcotest.(check string) "(a+b)+c = a+(b+c)"
    (canon (merged (merged a b) c))
    (canon (merged a (merged b c)))

let test_merge_gauge_idempotent () =
  let a = mk_registry 6 in
  let twice = merged a a in
  Alcotest.(check int) "gauge unchanged under self-merge"
    (T.Registry.gauge_value a "pool.max")
    (T.Registry.gauge_value twice "pool.max");
  Alcotest.(check int) "counters double under self-merge"
    (2 * T.Registry.counter_value a "execs")
    (T.Registry.counter_value twice "execs")

(* The delta-publish law the campaign engine relies on:
   merge last; merge (diff cur ~since:last)  ==  merge cur. *)
let test_diff_merge_roundtrip () =
  let last = mk_registry 7 in
  let cur = merged last (mk_registry 8) in
  let global = T.Registry.create () in
  T.Registry.merge ~into:global last;
  T.Registry.merge ~into:global (T.Registry.diff cur ~since:last);
  Alcotest.(check string) "delta publish reconstructs the absolute registry"
    (canon cur) (canon global)

let test_histogram_edges () =
  let r = T.Registry.create () in
  let h = T.Registry.histogram ~edges:[| 0; 10; 100 |] r "h" in
  (* bucket i counts edges.(i-1) < v <= edges.(i); overflow past the end *)
  List.iter (T.Registry.observe h) [ 0; 1; 10; 11; 100; 101; 1_000_000 ];
  match T.Registry.histogram_stats r "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some (edges, counts, sum, n) ->
    Alcotest.(check (array int)) "edges kept" [| 0; 10; 100 |] edges;
    Alcotest.(check (array int)) "bucket counts" [| 1; 2; 2; 2 |] counts;
    Alcotest.(check int) "n" 7 n;
    Alcotest.(check int) "sum" 1_000_223 sum

let test_histogram_edge_mismatch () =
  let a = T.Registry.create () in
  ignore (T.Registry.histogram ~edges:[| 0; 10 |] a "h");
  let b = T.Registry.create () in
  ignore (T.Registry.histogram ~edges:[| 0; 20 |] b "h");
  Alcotest.check_raises "merging mismatched edges is an error"
    (Invalid_argument "Registry.merge: histogram h edges disagree")
    (fun () -> T.Registry.merge ~into:a b)

let test_registry_json_roundtrip () =
  let r = mk_registry 9 in
  match T.Registry.of_json (T.Registry.to_json r) with
  | Error msg -> Alcotest.fail msg
  | Ok r' -> Alcotest.(check string) "canonical json stable" (canon r) (canon r')

let sample_events =
  let point series execs branches =
    { T.Event.p_series = series; p_iteration = execs / 3; p_execs = execs;
      p_branches = branches; p_crashes_total = 2; p_crashes_unique = 1;
      p_bugs = [ "PG-006" ] }
  in
  let reg = mk_registry 10 in
  T.Span.record_us (T.Span.stage reg "execute") 1500;
  T.Span.record_us (T.Span.stage reg "mutate") 400;
  [ T.Event.Meta [ ("command", T.Json.Str "fuzz"); ("seed", T.Json.Int 3) ];
    T.Event.Checkpoint
      { point = point "aggregate" 1000 400; wall_s = Some 0.5;
        execs_per_sec = Some 2000.0 };
    T.Event.Checkpoint
      { point = point "shard-0" 500 300; wall_s = None;
        execs_per_sec = None };
    T.Event.Summary
      { point = point "lego" 2000 450;
        shards = [ point "shard-0" 1000 300; point "shard-1" 1000 310 ];
        sync_rounds = 4; wall_s = Some 1.25; execs_per_sec = Some 1600.0 };
    T.Event.Registry_dump { series = "aggregate"; registry = reg } ]

let test_event_jsonl_roundtrip () =
  let lines =
    List.map (fun ev -> T.Json.to_string (T.Event.to_json ev)) sample_events
  in
  match T.Report.parse_lines lines with
  | Error msg -> Alcotest.fail msg
  | Ok events ->
    let lines' =
      List.map (fun ev -> T.Json.to_string (T.Event.to_json ev)) events
    in
    Alcotest.(check (list string)) "events survive the JSONL round-trip"
      lines lines'

let test_report_render () =
  let out = T.Report.render sample_events in
  let contains needle =
    Alcotest.(check bool)
      (Printf.sprintf "report mentions %S" needle)
      true
      (let nl = String.length needle and ol = String.length out in
       let rec scan i =
         i + nl <= ol && (String.sub out i nl = needle || scan (i + 1))
       in
       scan 0)
  in
  contains "aggregate";
  contains "shard-0";
  contains "stage-time";
  contains "execs=2000"

let test_report_parse_error () =
  match T.Report.parse_lines [ "{\"type\":\"checkpoint\"}"; "not json" ] with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error msg ->
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec scan i =
        i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1))
      in
      scan 0
    in
    Alcotest.(check bool) "error carries the line number" true
      (contains msg "line")

let mentions hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i =
    i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1))
  in
  scan 0

(* Degenerate streams: a report over zero events, or over events that
   carry no checkpoints, must render cleanly and say what is missing
   rather than crash or silently drop the time-series section. *)
let test_report_empty_stream () =
  Alcotest.(check string) "empty stream renders the sentinel"
    "empty telemetry stream\n"
    (T.Report.render [])

let test_report_no_checkpoints () =
  let out =
    T.Report.render
      [ T.Event.Meta [ ("command", T.Json.Str "fuzz");
                       ("seed", T.Json.Int 7) ] ]
  in
  Alcotest.(check bool) "meta table survives" true (mentions out "fuzz");
  Alcotest.(check bool) "missing series is called out" true
    (mentions out "no checkpoints recorded")

let test_report_single_checkpoint () =
  let point =
    { T.Event.p_series = "aggregate"; p_iteration = 1; p_execs = 100;
      p_branches = 40; p_crashes_total = 0; p_crashes_unique = 0;
      p_bugs = [] }
  in
  let out =
    T.Report.render
      [ T.Event.Checkpoint { point; wall_s = Some 0.1; execs_per_sec = None } ]
  in
  Alcotest.(check bool) "series plotted" true (mentions out "aggregate");
  Alcotest.(check bool) "one checkpoint is a series, not a gap" false
    (mentions out "no checkpoints recorded")

let test_report_grammar_section () =
  let reg = T.Registry.create () in
  T.Registry.set_max (T.Registry.gauge reg "grammar.rules") 17;
  T.Registry.set_max (T.Registry.gauge reg "grammar.pairs") 23;
  let out =
    T.Report.render
      [ T.Event.Registry_dump { series = "aggregate"; registry = reg } ]
  in
  List.iter
    (fun needle ->
       Alcotest.(check bool)
         (Printf.sprintf "grammar section mentions %S" needle)
         true (mentions out needle))
    [ "grammar coverage [aggregate]"; "rules fired"; "rule pairs fired";
      "parse errors" ];
  (* a registry without grammar gauges must not emit the section *)
  let plain = T.Report.render
      [ T.Event.Registry_dump { series = "x"; registry = T.Registry.create () } ]
  in
  Alcotest.(check bool) "section absent without grammar gauges" false
    (mentions plain "grammar coverage")

(* The determinism contract: a jobs=1 campaign rendered through the human
   sink must print byte-identically across runs of the same seed, and the
   telemetry plumbing (spans, counters, null sink) must not disturb the
   snapshot itself. *)
let run_campaign_with_human_sink () =
  let buf = Buffer.create 256 in
  let sink = T.Sink.human ~print:(Buffer.add_string buf) () in
  let make _shard =
    let cfg = { Lego.Lego_fuzzer.default_config with seed = 5 } in
    Lego.Lego_fuzzer.fuzzer
      (Lego.Lego_fuzzer.create ~config:cfg Dialects.Registry.comdb2_sim)
  in
  let res =
    Fuzz.Campaign.run ~checkpoint_every:500 ~sink ~jobs:1 ~execs:2000 make
  in
  let snap = res.Fuzz.Campaign.cg_snapshot in
  T.Sink.emit sink
    (T.Event.Summary
       { point =
           { T.Event.p_series = "lego"; p_iteration = snap.Fuzz.Driver.st_iteration;
             p_execs = snap.st_execs; p_branches = snap.st_branches;
             p_crashes_total = snap.st_total_crashes;
             p_crashes_unique = snap.st_unique_crashes; p_bugs = snap.st_bugs };
         shards = []; sync_rounds = 0; wall_s = Some 0.0;
         execs_per_sec = None });
  (Buffer.contents buf, snap)

let test_human_sink_byte_identical () =
  let out1, snap1 = run_campaign_with_human_sink () in
  let out2, snap2 = run_campaign_with_human_sink () in
  Alcotest.(check string) "same seed, same bytes" out1 out2;
  Alcotest.(check bool) "snapshots equal" true (snap1 = snap2);
  (* the legacy summary line, formatted exactly as the CLI always has *)
  let expected =
    Printf.sprintf
      "%-9s execs=%d branches=%d crashes(total)=%d crashes(unique)=%d\n"
      "lego" snap1.Fuzz.Driver.st_execs snap1.st_branches
      snap1.st_total_crashes snap1.st_unique_crashes
    ^ (if snap1.st_bugs <> [] then
         Printf.sprintf "  bugs: %s\n" (String.concat ", " snap1.st_bugs)
       else "")
  in
  Alcotest.(check bool) "summary block formatted as the legacy CLI" true
    (let el = String.length expected and ol = String.length out1 in
     el <= ol && String.sub out1 (ol - el) el = expected)

(* Campaign metrics: stage spans and engine counters flow into the
   result registry, and the harness exec counter agrees with the
   deterministic snapshot counter. *)
let test_campaign_metrics () =
  let make _shard =
    let cfg = { Lego.Lego_fuzzer.default_config with seed = 5 } in
    Lego.Lego_fuzzer.fuzzer
      (Lego.Lego_fuzzer.create ~config:cfg Dialects.Registry.comdb2_sim)
  in
  let res = Fuzz.Campaign.run ~jobs:1 ~execs:2000 make in
  let m = res.Fuzz.Campaign.cg_metrics in
  Alcotest.(check int) "harness.execs counter = snapshot execs"
    res.Fuzz.Campaign.cg_snapshot.Fuzz.Driver.st_execs
    (T.Registry.counter_value m "harness.execs");
  Alcotest.(check bool) "engine counted statements" true
    (T.Registry.counter_value m "engine.statements_executed" > 0);
  Alcotest.(check bool) "rows were scanned" true
    (T.Registry.counter_value m "engine.rows_scanned" > 0);
  let stages = T.Span.stage_names m in
  List.iter
    (fun s ->
       Alcotest.(check bool) (Printf.sprintf "stage %s recorded" s) true
         (List.mem s stages))
    [ "execute"; "triage"; "mutate"; "synthesize" ]

(* A timed section longer than the clock's resolution must record
   roughly its true duration. *)
let test_span_measures_sleep () =
  let reg = T.Registry.create () in
  let sp = T.Span.stage reg "nap" in
  T.Span.time sp (fun () -> Unix.sleepf 0.002);
  match T.Span.stage_stats reg "nap" with
  | None -> Alcotest.fail "stage not recorded"
  | Some (calls, us) ->
    Alcotest.(check int) "one call" 1 calls;
    Alcotest.(check bool)
      (Printf.sprintf "2ms sleep recorded as %dus" us)
      true (us >= 1500)

(* The regression behind BENCH stage.triage = 0.0: sections shorter
   than 1µs truncated to zero on every call, so a stage of many fast
   calls summed to nothing. The sub-µs carry must keep the *sum* honest
   even when individual calls round to zero. *)
let test_span_subus_carry () =
  let reg = T.Registry.create () in
  let sp = T.Span.stage reg "fast" in
  let sink = ref 0 in
  for i = 1 to 20_000 do
    T.Span.time sp (fun () -> sink := !sink + i)
  done;
  match T.Span.stage_stats reg "fast" with
  | None -> Alcotest.fail "stage not recorded"
  | Some (calls, us) ->
    Alcotest.(check int) "every call counted" 20_000 calls;
    Alcotest.(check bool)
      (Printf.sprintf "20k sub-us sections summed to %dus (want > 0)" us)
      true (us > 0)

let suite =
  [ Alcotest.test_case "merge commutative" `Quick test_merge_commutative;
    Alcotest.test_case "merge associative" `Quick test_merge_associative;
    Alcotest.test_case "gauge idempotent / counters add" `Quick
      test_merge_gauge_idempotent;
    Alcotest.test_case "diff-merge roundtrip" `Quick test_diff_merge_roundtrip;
    Alcotest.test_case "histogram bucket edges" `Quick test_histogram_edges;
    Alcotest.test_case "histogram edge mismatch" `Quick
      test_histogram_edge_mismatch;
    Alcotest.test_case "registry json roundtrip" `Quick
      test_registry_json_roundtrip;
    Alcotest.test_case "event jsonl roundtrip" `Quick
      test_event_jsonl_roundtrip;
    Alcotest.test_case "report render" `Quick test_report_render;
    Alcotest.test_case "report parse error" `Quick test_report_parse_error;
    Alcotest.test_case "report empty stream" `Quick test_report_empty_stream;
    Alcotest.test_case "report no checkpoints" `Quick
      test_report_no_checkpoints;
    Alcotest.test_case "report single checkpoint" `Quick
      test_report_single_checkpoint;
    Alcotest.test_case "report grammar section" `Quick
      test_report_grammar_section;
    Alcotest.test_case "human sink byte-identical (jobs=1)" `Quick
      test_human_sink_byte_identical;
    Alcotest.test_case "campaign metrics" `Quick test_campaign_metrics;
    Alcotest.test_case "span measures a sleep" `Quick
      test_span_measures_sleep;
    Alcotest.test_case "span sub-us carry" `Quick test_span_subus_carry ]
