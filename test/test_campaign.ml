(* Tests for the campaign engine: cross-shard sync semantics and the
   jobs=1 determinism guarantee. *)

let profile = Dialects.Registry.mariadb_sim

let fake_bug id =
  { Minidb.Fault.bug_id = id;
    identifier = "TEST-" ^ id;
    component = "test";
    kind = Minidb.Fault.Segv;
    cond = Minidb.Fault.State "never" }

let fake_crash id =
  let bug = fake_bug id in
  { Minidb.Fault.c_bug = bug; c_stack = Minidb.Fault.stack_of_bug bug }

let test_sync_dedupes_across_shards () =
  (* Two shards independently find the same crash signature: the sync
     layer must count it once, keeping the first finder's reproducer. *)
  let sync = Fuzz.Sync.create () in
  let tri_a = Fuzz.Triage.create () and tri_b = Fuzz.Triage.create () in
  ignore (Fuzz.Triage.record tri_a (fake_crash "B1"));
  ignore (Fuzz.Triage.record tri_b (fake_crash "B1"));
  ignore (Fuzz.Triage.record tri_b (fake_crash "B2"));
  let virgin_a = Coverage.Bitmap.create ()
  and virgin_b = Coverage.Bitmap.create () in
  ignore
    (Fuzz.Sync.publish sync ~virgin:virgin_a ~triage:tri_a ~execs_delta:10);
  ignore
    (Fuzz.Sync.publish sync ~virgin:virgin_b ~triage:tri_b ~execs_delta:10);
  Alcotest.(check int) "identical signatures deduped" 2
    (Fuzz.Sync.unique_count sync);
  Alcotest.(check (list string)) "bug ids unioned" [ "B1"; "B2" ]
    (Fuzz.Sync.bug_ids sync);
  (* republishing a shard is idempotent *)
  ignore
    (Fuzz.Sync.publish sync ~virgin:virgin_b ~triage:tri_b ~execs_delta:0);
  Alcotest.(check int) "republish adds nothing" 2
    (Fuzz.Sync.unique_count sync);
  Alcotest.(check int) "execs accumulate" 20 (Fuzz.Sync.execs_seen sync);
  Alcotest.(check int) "rounds counted" 3 (Fuzz.Sync.rounds sync)

let test_sync_merges_coverage () =
  let sync = Fuzz.Sync.create () in
  let exec = Coverage.Bitmap.create () in
  Coverage.Bitmap.hit exec 17;
  let virgin = Coverage.Bitmap.create () in
  ignore (Coverage.Bitmap.merge_into ~virgin exec);
  let tri = Fuzz.Triage.create () in
  let news = Fuzz.Sync.publish sync ~virgin ~triage:tri ~execs_delta:1 in
  Alcotest.(check int) "first publish is news" 1 news;
  Alcotest.(check int) "global branches" 1 (Fuzz.Sync.branches sync);
  Alcotest.(check int) "re-publish is no news" 0
    (Fuzz.Sync.publish sync ~virgin ~triage:tri ~execs_delta:0)

let budget = 1500

let lego_factory ~seed shard_id =
  let config =
    { Lego.Lego_fuzzer.default_config with
      seed = Fuzz.Campaign.shard_seed ~seed ~shard_id }
  in
  Lego.Lego_fuzzer.fuzzer (Lego.Lego_fuzzer.create ~config profile)

let test_jobs1_matches_sequential_driver () =
  (* The determinism guarantee: a 1-job campaign is byte-identical to the
     plain sequential driver loop on an identically-seeded fuzzer. *)
  let sequential =
    Fuzz.Driver.run_until_execs (lego_factory ~seed:42 0) ~execs:budget
  in
  let res =
    Fuzz.Campaign.run ~jobs:1 ~execs:budget (lego_factory ~seed:42)
  in
  Alcotest.(check bool) "snapshots identical" true
    (sequential = res.Fuzz.Campaign.cg_snapshot);
  Alcotest.(check int) "single shard" 1
    (List.length res.Fuzz.Campaign.cg_shards);
  Alcotest.(check int) "no sync rounds" 0 res.Fuzz.Campaign.cg_sync_rounds

let test_shard_seed_distinct () =
  let seeds =
    List.init 8 (fun i -> Fuzz.Campaign.shard_seed ~seed:1 ~shard_id:i)
  in
  Alcotest.(check int) "shard 0 keeps the campaign seed" 1 (List.hd seeds);
  Alcotest.(check int) "all distinct" 8
    (List.length (List.sort_uniq compare seeds))

let test_sharded_campaign_aggregates () =
  let res =
    Fuzz.Campaign.run ~jobs:4 ~sync_every:200 ~execs:2000
      (lego_factory ~seed:7)
  in
  let agg = res.Fuzz.Campaign.cg_snapshot in
  Alcotest.(check int) "four shards" 4
    (List.length res.Fuzz.Campaign.cg_shards);
  Alcotest.(check bool) "budget spent" true (agg.Fuzz.Driver.st_execs >= 2000);
  Alcotest.(check bool) "synced at least once per shard" true
    (res.Fuzz.Campaign.cg_sync_rounds >= 4);
  List.iter
    (fun (sh : Fuzz.Campaign.shard) ->
       Alcotest.(check bool)
         (Printf.sprintf "aggregate >= shard %d branches" sh.sh_id)
         true
         (agg.Fuzz.Driver.st_branches
          >= sh.sh_snapshot.Fuzz.Driver.st_branches);
       Alcotest.(check bool)
         (Printf.sprintf "aggregate >= shard %d uniques" sh.sh_id)
         true
         (agg.Fuzz.Driver.st_unique_crashes
          >= sh.sh_snapshot.Fuzz.Driver.st_unique_crashes))
    res.Fuzz.Campaign.cg_shards;
  let summed =
    List.fold_left
      (fun acc (sh : Fuzz.Campaign.shard) ->
         acc + sh.sh_snapshot.Fuzz.Driver.st_execs)
      0 res.Fuzz.Campaign.cg_shards
  in
  Alcotest.(check int) "aggregate execs = sum of shards" summed
    agg.Fuzz.Driver.st_execs;
  (* crash totals survive aggregation *)
  Alcotest.(check bool) "unique <= total" true
    (agg.Fuzz.Driver.st_unique_crashes <= agg.Fuzz.Driver.st_total_crashes)

let test_sync_crash_totals () =
  (* Satellite fix: published crash deltas must accumulate into the
     aggregate total instead of being dropped. *)
  let sync = Fuzz.Sync.create () in
  let virgin = Coverage.Bitmap.create () in
  let tri = Fuzz.Triage.create () in
  ignore
    (Fuzz.Sync.publish ~crashes_delta:3 sync ~virgin ~triage:tri
       ~execs_delta:5);
  ignore
    (Fuzz.Sync.publish ~crashes_delta:2 sync ~virgin ~triage:tri
       ~execs_delta:5);
  Alcotest.(check int) "crash deltas accumulate" 5
    (Fuzz.Sync.total_crashes sync);
  ignore
    (Fuzz.Sync.publish sync ~virgin ~triage:tri ~execs_delta:0);
  Alcotest.(check int) "default delta is zero" 5
    (Fuzz.Sync.total_crashes sync)

let test_checkpoint_crash_totals () =
  (* Aggregate checkpoints used to hard-code total_crashes = 0; they must
     now report the published running total: nondecreasing over time and
     never above the final aggregate. *)
  let totals = ref [] in
  let res =
    Fuzz.Campaign.run ~jobs:2 ~sync_every:200 ~checkpoint_every:400
      ~on_checkpoint:(fun cp ->
          totals :=
            cp.Fuzz.Driver.cp_snapshot.Fuzz.Driver.st_total_crashes
            :: !totals)
      ~execs:2000 (lego_factory ~seed:3)
  in
  let seq = List.rev !totals in
  Alcotest.(check bool) "checkpoints fired" true (seq <> []);
  ignore
    (List.fold_left
       (fun prev v ->
          Alcotest.(check bool) "nondecreasing" true (v >= prev);
          v)
       0 seq);
  let final =
    res.Fuzz.Campaign.cg_snapshot.Fuzz.Driver.st_total_crashes
  in
  List.iter
    (fun v -> Alcotest.(check bool) "bounded by final total" true (v <= final))
    seq

(* --- grammar-coverage feedback --------------------------------------- *)

let lego_factory_fb ~feedback ~seed shard_id =
  let config =
    { Lego.Lego_fuzzer.default_config with
      seed = Fuzz.Campaign.shard_seed ~seed ~shard_id }
  in
  let harness = Fuzz.Harness.create ~profile ~feedback () in
  Lego.Lego_fuzzer.fuzzer (Lego.Lego_fuzzer.create ~config ~harness profile)

let test_sync_grammar_union () =
  let sync = Fuzz.Sync.create () in
  let virgin = Coverage.Bitmap.create () in
  let tri = Fuzz.Triage.create () in
  Alcotest.(check (pair int int)) "empty before any publish" (0, 0)
    (Fuzz.Sync.grammar_counts sync);
  let g1 = Coverage.Bitmap.create () in
  Coverage.Grammar.record g1 ~site:1 ~parent:0;
  ignore (Fuzz.Sync.publish ~gram:g1 sync ~virgin ~triage:tri ~execs_delta:1);
  Alcotest.(check (pair int int)) "first shard's rules and pairs" (1, 1)
    (Fuzz.Sync.grammar_counts sync);
  let g2 = Coverage.Bitmap.create () in
  Coverage.Grammar.record g2 ~site:1 ~parent:0;
  Coverage.Grammar.record g2 ~site:2 ~parent:1;
  ignore (Fuzz.Sync.publish ~gram:g2 sync ~virgin ~triage:tri ~execs_delta:1);
  Alcotest.(check (pair int int)) "union across shards" (2, 2)
    (Fuzz.Sync.grammar_counts sync);
  ignore (Fuzz.Sync.publish ~gram:g1 sync ~virgin ~triage:tri ~execs_delta:0);
  Alcotest.(check (pair int int)) "re-publish is idempotent" (2, 2)
    (Fuzz.Sync.grammar_counts sync)

let test_feedback_edges_identity () =
  (* --feedback edges must be byte-identical to a fuzzer-built default
     harness: same outcomes, same snapshots, at one shard and at four. *)
  List.iter
    (fun jobs ->
       let base =
         Fuzz.Campaign.run ~jobs ~sync_every:300 ~execs:1200
           (lego_factory ~seed:5)
       in
       let edges =
         Fuzz.Campaign.run ~jobs ~sync_every:300 ~execs:1200
           (lego_factory_fb ~feedback:Fuzz.Harness.Edges ~seed:5)
       in
       Alcotest.(check bool)
         (Printf.sprintf "jobs=%d: snapshots identical" jobs)
         true
         (base.Fuzz.Campaign.cg_snapshot = edges.Fuzz.Campaign.cg_snapshot);
       Alcotest.(check int)
         (Printf.sprintf "jobs=%d: no grammar gauges in edges mode" jobs)
         0
         (Telemetry.Registry.gauge_value edges.Fuzz.Campaign.cg_metrics
            "grammar.rules"))
    [ 1; 4 ]

let test_feedback_both_sharded_campaign () =
  let res =
    Fuzz.Campaign.run ~jobs:4 ~sync_every:300 ~execs:2000
      (lego_factory_fb ~feedback:Fuzz.Harness.Both ~seed:7)
  in
  let agg name =
    Telemetry.Registry.gauge_value res.Fuzz.Campaign.cg_metrics name
  in
  Alcotest.(check bool) "rules fired" true (agg "grammar.rules" > 0);
  Alcotest.(check bool) "pairs fired" true (agg "grammar.pairs" > 0);
  Alcotest.(check int) "no parse errors on printed testcases" 0
    (Telemetry.Registry.counter_value res.Fuzz.Campaign.cg_metrics
       "grammar.parse_errors");
  (* the aggregate gauge is the cross-shard union: at least every
     shard's own count *)
  List.iter
    (fun (sh : Fuzz.Campaign.shard) ->
       let m = Fuzz.Harness.metrics sh.sh_fuzzer.Fuzz.Driver.f_harness in
       Alcotest.(check bool)
         (Printf.sprintf "aggregate rules >= shard %d" sh.sh_id)
         true
         (agg "grammar.rules"
          >= Telemetry.Registry.gauge_value m "grammar.rules");
       Alcotest.(check bool)
         (Printf.sprintf "aggregate pairs >= shard %d" sh.sh_id)
         true
         (agg "grammar.pairs"
          >= Telemetry.Registry.gauge_value m "grammar.pairs"))
    res.Fuzz.Campaign.cg_shards

let test_driver_stall_aborts () =
  (* A fuzzer whose steps perform no executions used to livelock
     run_until_execs; it must now abort with Driver.Stalled. *)
  let harness = Fuzz.Harness.create ~profile () in
  let noop =
    { Fuzz.Driver.f_name = "noop";
      f_step = (fun () -> ());
      f_harness = harness;
      f_corpus = (fun () -> []);
      f_exchange = None }
  in
  let raised =
    match Fuzz.Driver.run_until_execs ~max_stall:10 noop ~execs:50 with
    | _ -> false
    | exception Fuzz.Driver.Stalled _ -> true
  in
  Alcotest.(check bool) "stalled fuzzer aborts" true raised;
  (* a fuzzer that keeps executing never trips the stall guard *)
  let tc = List.hd (Fuzz.Corpus.initial profile) in
  let live =
    { noop with
      Fuzz.Driver.f_name = "live";
      f_step = (fun () -> ignore (Fuzz.Harness.execute harness tc)) }
  in
  let snap = Fuzz.Driver.run_until_execs ~max_stall:10 live ~execs:50 in
  Alcotest.(check bool) "live fuzzer completes" true
    (snap.Fuzz.Driver.st_execs >= 50)

(* --- bidirectional exchange ------------------------------------------ *)

let xseed h =
  { Fuzz.Sync.xs_tc = []; xs_cov_hash = h; xs_new_branches = 1; xs_cost = 1 }

let seed_hashes entries =
  List.filter_map
    (function Fuzz.Sync.Seed s -> Some s.Fuzz.Sync.xs_cov_hash | _ -> None)
    entries

let test_exchange_store_dedup () =
  (* Two shards meet at the barrier with overlapping exports: the store
     must keep one copy of each entry (lowest shard id wins the tie) and
     hand each shard exactly the foreign entries, exactly once. *)
  let sync =
    Fuzz.Sync.create ~exchange:Fuzz.Sync.exchange_all ~parties:2 ()
  in
  let aff = (Sqlcore.Stmt_type.Create_table, Sqlcore.Stmt_type.Insert) in
  let export0 =
    { Fuzz.Sync.xp_seeds = [ xseed 1L; xseed 2L ];
      xp_affinities = [ aff ];
      xp_skeletons = [] }
  in
  let export1 =
    { Fuzz.Sync.xp_seeds = [ xseed 2L; xseed 3L ];
      xp_affinities = [ aff ];
      xp_skeletons = [] }
  in
  let round shard export =
    Domain.spawn (fun () ->
        Fuzz.Sync.exchange_round sync ~shard
          ~virgin:(Coverage.Bitmap.create ())
          ~triage:(Fuzz.Triage.create ()) ~execs_delta:0 ~export)
  in
  let d0 = round 0 export0 and d1 = round 1 export1 in
  let i0 = Domain.join d0 and i1 = Domain.join d1 in
  (* canonical store: shard 0's seeds 1,2 + affinity, shard 1's seed 3 *)
  Alcotest.(check int) "store deduplicated" 4 (Fuzz.Sync.exchanged sync);
  Alcotest.(check (list int64)) "shard 0 imports shard 1's fresh seed"
    [ 3L ] (seed_hashes i0);
  Alcotest.(check (list int64)) "shard 1 imports shard 0's seeds" [ 1L; 2L ]
    (seed_hashes i1);
  Alcotest.(check int) "shard 1 sees the affinity once" 1
    (List.length
       (List.filter
          (function Fuzz.Sync.Affinity _ -> true | _ -> false)
          i1));
  Alcotest.(check int) "shard 0's own affinity not echoed back" 0
    (List.length
       (List.filter
          (function Fuzz.Sync.Affinity _ -> true | _ -> false)
          i0));
  (* round 2: re-exporting already-known entries imports nothing new *)
  let d0 = round 0 export0 and d1 = round 1 export1 in
  let i0 = Domain.join d0 and i1 = Domain.join d1 in
  Alcotest.(check int) "round 2 store unchanged" 4
    (Fuzz.Sync.exchanged sync);
  Alcotest.(check int) "round 2 empty for shard 0" 0 (List.length i0);
  Alcotest.(check int) "round 2 empty for shard 1" 0 (List.length i1)

let test_exchange_pulls_virgin () =
  (* The bidirectional part: a shard's own virgin map must absorb the
     round-frozen global map, so globally-known branches stop being new. *)
  let sync =
    Fuzz.Sync.create ~exchange:Fuzz.Sync.exchange_all ~parties:2 ()
  in
  let virgin_of site =
    let exec = Coverage.Bitmap.create () in
    Coverage.Bitmap.hit exec site;
    let virgin = Coverage.Bitmap.create () in
    ignore (Coverage.Bitmap.merge_into ~virgin exec);
    virgin
  in
  let va = virgin_of 17 and vb = virgin_of 23 in
  let round shard virgin =
    Domain.spawn (fun () ->
        ignore
          (Fuzz.Sync.exchange_round sync ~shard ~virgin
             ~triage:(Fuzz.Triage.create ()) ~execs_delta:0
             ~export:Fuzz.Sync.empty_export))
  in
  let d0 = round 0 va and d1 = round 1 vb in
  Domain.join d0;
  Domain.join d1;
  Alcotest.(check int) "global map is the union" 2 (Fuzz.Sync.branches sync);
  Alcotest.(check int) "shard 0 pulled shard 1's branch" 2
    (Coverage.Bitmap.count_nonzero va);
  Alcotest.(check int) "shard 1 pulled shard 0's branch" 2
    (Coverage.Bitmap.count_nonzero vb)

let test_seed_port_no_echo () =
  (* The baseline port: exports drain only locally-admitted seeds;
     imported seeds are pooled but never re-exported. *)
  let pool = Fuzz.Seed_pool.create () in
  let port = Fuzz.Sync.seed_port pool in
  ignore
    (Fuzz.Seed_pool.add pool ~tc:[] ~cov_hash:1L ~new_branches:1 ~cost:1);
  let e1 = (port.Fuzz.Sync.p_export ()).Fuzz.Sync.xp_seeds in
  Alcotest.(check int) "local seed exported" 1 (List.length e1);
  port.Fuzz.Sync.p_import (Fuzz.Sync.Seed (xseed 2L));
  Alcotest.(check int) "import pooled" 2 (Fuzz.Seed_pool.size pool);
  Alcotest.(check int) "imported seed not re-exported" 0
    (List.length (port.Fuzz.Sync.p_export ()).Fuzz.Sync.xp_seeds);
  ignore
    (Fuzz.Seed_pool.add pool ~tc:[] ~cov_hash:3L ~new_branches:1 ~cost:1);
  Alcotest.(check (list int64)) "only the fresh local seed drains" [ 3L ]
    (List.map
       (fun s -> s.Fuzz.Sync.xs_cov_hash)
       (port.Fuzz.Sync.p_export ()).Fuzz.Sync.xp_seeds)

let test_jobs1_exchange_still_sequential () =
  (* Exchange flags must not disturb the single-job byte-identity
     guarantee: one shard has nobody to exchange with. *)
  let sequential =
    Fuzz.Driver.run_until_execs (lego_factory ~seed:42 0) ~execs:budget
  in
  let res =
    Fuzz.Campaign.run ~jobs:1 ~exchange:Fuzz.Sync.exchange_all
      ~execs:budget (lego_factory ~seed:42)
  in
  Alcotest.(check bool) "snapshots identical" true
    (sequential = res.Fuzz.Campaign.cg_snapshot)

let run_exchange_campaign ~exchange ~seed =
  Fuzz.Campaign.run ~jobs:4 ~sync_every:300 ~exchange ~execs:2400
    (lego_factory ~seed)

let test_exchange_campaign_deterministic () =
  (* The whole point of barriered rounds: at jobs=4 the aggregate
     snapshot is a pure function of the seed, run to run. *)
  let a = run_exchange_campaign ~exchange:Fuzz.Sync.exchange_all ~seed:5 in
  let b = run_exchange_campaign ~exchange:Fuzz.Sync.exchange_all ~seed:5 in
  Alcotest.(check bool) "aggregate snapshots identical" true
    (a.Fuzz.Campaign.cg_snapshot = b.Fuzz.Campaign.cg_snapshot);
  Alcotest.(check int) "same store size"
    (List.length a.Fuzz.Campaign.cg_crashes)
    (List.length b.Fuzz.Campaign.cg_crashes)

let test_exchange_beats_publish_only () =
  (* At equal budget, bidirectional exchange must not cover fewer
     aggregate branches than publish-only sync (deterministic per seed,
     so this is a regression pin, not a statistical claim). *)
  let on = run_exchange_campaign ~exchange:Fuzz.Sync.exchange_all ~seed:7 in
  let off = run_exchange_campaign ~exchange:Fuzz.Sync.exchange_off ~seed:7 in
  Alcotest.(check bool) "exchange-on covers at least as many branches" true
    (on.Fuzz.Campaign.cg_snapshot.Fuzz.Driver.st_branches
     >= off.Fuzz.Campaign.cg_snapshot.Fuzz.Driver.st_branches)

let test_sequential_metrics_is_snapshot () =
  (* cg_metrics of a 1-job campaign must be frozen at completion, not a
     live view of the harness registry. *)
  let res = Fuzz.Campaign.run ~jobs:1 ~execs:budget (lego_factory ~seed:9) in
  let before =
    Telemetry.Registry.counter_value res.Fuzz.Campaign.cg_metrics
      "harness.execs"
  in
  Alcotest.(check bool) "counter populated" true (before > 0);
  let fz =
    (List.hd res.Fuzz.Campaign.cg_shards).Fuzz.Campaign.sh_fuzzer
  in
  ignore (Fuzz.Driver.run_until_execs fz ~execs:(budget + 200));
  Alcotest.(check int) "metrics frozen after further fuzzing" before
    (Telemetry.Registry.counter_value res.Fuzz.Campaign.cg_metrics
       "harness.execs")

let suite =
  [ ("sync dedupes crash signatures", `Quick, test_sync_dedupes_across_shards);
    ("sync merges coverage", `Quick, test_sync_merges_coverage);
    ("sync accumulates crash totals", `Quick, test_sync_crash_totals);
    ("checkpoints report crash totals", `Slow, test_checkpoint_crash_totals);
    ("stalled driver aborts", `Quick, test_driver_stall_aborts);
    ("jobs=1 is the sequential driver", `Quick,
     test_jobs1_matches_sequential_driver);
    ("jobs=1 ignores exchange flags", `Quick,
     test_jobs1_exchange_still_sequential);
    ("shard seeds distinct", `Quick, test_shard_seed_distinct);
    ("exchange store dedups deterministically", `Quick,
     test_exchange_store_dedup);
    ("exchange pulls the global virgin map", `Quick,
     test_exchange_pulls_virgin);
    ("seed port never echoes imports", `Quick, test_seed_port_no_echo);
    ("4-shard campaign aggregates", `Slow, test_sharded_campaign_aggregates);
    ("4-shard exchange campaign deterministic", `Slow,
     test_exchange_campaign_deterministic);
    ("exchange beats publish-only sync", `Slow,
     test_exchange_beats_publish_only);
    ("sequential metrics are a snapshot", `Quick,
     test_sequential_metrics_is_snapshot);
    ("sync unions grammar maps", `Quick, test_sync_grammar_union);
    ("feedback=edges is byte-identical", `Slow,
     test_feedback_edges_identity);
    ("feedback=both 4-shard campaign", `Slow,
     test_feedback_both_sharded_campaign)
  ]
