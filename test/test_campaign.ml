(* Tests for the campaign engine: cross-shard sync semantics and the
   jobs=1 determinism guarantee. *)

let profile = Dialects.Registry.mariadb_sim

let fake_bug id =
  { Minidb.Fault.bug_id = id;
    identifier = "TEST-" ^ id;
    component = "test";
    kind = Minidb.Fault.Segv;
    cond = Minidb.Fault.State "never" }

let fake_crash id =
  let bug = fake_bug id in
  { Minidb.Fault.c_bug = bug; c_stack = Minidb.Fault.stack_of_bug bug }

let test_sync_dedupes_across_shards () =
  (* Two shards independently find the same crash signature: the sync
     layer must count it once, keeping the first finder's reproducer. *)
  let sync = Fuzz.Sync.create () in
  let tri_a = Fuzz.Triage.create () and tri_b = Fuzz.Triage.create () in
  ignore (Fuzz.Triage.record tri_a (fake_crash "B1"));
  ignore (Fuzz.Triage.record tri_b (fake_crash "B1"));
  ignore (Fuzz.Triage.record tri_b (fake_crash "B2"));
  let virgin_a = Coverage.Bitmap.create ()
  and virgin_b = Coverage.Bitmap.create () in
  ignore
    (Fuzz.Sync.publish sync ~virgin:virgin_a ~triage:tri_a ~execs_delta:10);
  ignore
    (Fuzz.Sync.publish sync ~virgin:virgin_b ~triage:tri_b ~execs_delta:10);
  Alcotest.(check int) "identical signatures deduped" 2
    (Fuzz.Sync.unique_count sync);
  Alcotest.(check (list string)) "bug ids unioned" [ "B1"; "B2" ]
    (Fuzz.Sync.bug_ids sync);
  (* republishing a shard is idempotent *)
  ignore
    (Fuzz.Sync.publish sync ~virgin:virgin_b ~triage:tri_b ~execs_delta:0);
  Alcotest.(check int) "republish adds nothing" 2
    (Fuzz.Sync.unique_count sync);
  Alcotest.(check int) "execs accumulate" 20 (Fuzz.Sync.execs_seen sync);
  Alcotest.(check int) "rounds counted" 3 (Fuzz.Sync.rounds sync)

let test_sync_merges_coverage () =
  let sync = Fuzz.Sync.create () in
  let exec = Coverage.Bitmap.create () in
  Coverage.Bitmap.hit exec 17;
  let virgin = Coverage.Bitmap.create () in
  ignore (Coverage.Bitmap.merge_into ~virgin exec);
  let tri = Fuzz.Triage.create () in
  let news = Fuzz.Sync.publish sync ~virgin ~triage:tri ~execs_delta:1 in
  Alcotest.(check int) "first publish is news" 1 news;
  Alcotest.(check int) "global branches" 1 (Fuzz.Sync.branches sync);
  Alcotest.(check int) "re-publish is no news" 0
    (Fuzz.Sync.publish sync ~virgin ~triage:tri ~execs_delta:0)

let budget = 1500

let lego_factory ~seed shard_id =
  let config =
    { Lego.Lego_fuzzer.default_config with
      seed = Fuzz.Campaign.shard_seed ~seed ~shard_id }
  in
  Lego.Lego_fuzzer.fuzzer (Lego.Lego_fuzzer.create ~config profile)

let test_jobs1_matches_sequential_driver () =
  (* The determinism guarantee: a 1-job campaign is byte-identical to the
     plain sequential driver loop on an identically-seeded fuzzer. *)
  let sequential =
    Fuzz.Driver.run_until_execs (lego_factory ~seed:42 0) ~execs:budget
  in
  let res =
    Fuzz.Campaign.run ~jobs:1 ~execs:budget (lego_factory ~seed:42)
  in
  Alcotest.(check bool) "snapshots identical" true
    (sequential = res.Fuzz.Campaign.cg_snapshot);
  Alcotest.(check int) "single shard" 1
    (List.length res.Fuzz.Campaign.cg_shards);
  Alcotest.(check int) "no sync rounds" 0 res.Fuzz.Campaign.cg_sync_rounds

let test_shard_seed_distinct () =
  let seeds =
    List.init 8 (fun i -> Fuzz.Campaign.shard_seed ~seed:1 ~shard_id:i)
  in
  Alcotest.(check int) "shard 0 keeps the campaign seed" 1 (List.hd seeds);
  Alcotest.(check int) "all distinct" 8
    (List.length (List.sort_uniq compare seeds))

let test_sharded_campaign_aggregates () =
  let res =
    Fuzz.Campaign.run ~jobs:4 ~sync_every:200 ~execs:2000
      (lego_factory ~seed:7)
  in
  let agg = res.Fuzz.Campaign.cg_snapshot in
  Alcotest.(check int) "four shards" 4
    (List.length res.Fuzz.Campaign.cg_shards);
  Alcotest.(check bool) "budget spent" true (agg.Fuzz.Driver.st_execs >= 2000);
  Alcotest.(check bool) "synced at least once per shard" true
    (res.Fuzz.Campaign.cg_sync_rounds >= 4);
  List.iter
    (fun (sh : Fuzz.Campaign.shard) ->
       Alcotest.(check bool)
         (Printf.sprintf "aggregate >= shard %d branches" sh.sh_id)
         true
         (agg.Fuzz.Driver.st_branches
          >= sh.sh_snapshot.Fuzz.Driver.st_branches);
       Alcotest.(check bool)
         (Printf.sprintf "aggregate >= shard %d uniques" sh.sh_id)
         true
         (agg.Fuzz.Driver.st_unique_crashes
          >= sh.sh_snapshot.Fuzz.Driver.st_unique_crashes))
    res.Fuzz.Campaign.cg_shards;
  let summed =
    List.fold_left
      (fun acc (sh : Fuzz.Campaign.shard) ->
         acc + sh.sh_snapshot.Fuzz.Driver.st_execs)
      0 res.Fuzz.Campaign.cg_shards
  in
  Alcotest.(check int) "aggregate execs = sum of shards" summed
    agg.Fuzz.Driver.st_execs;
  (* crash totals survive aggregation *)
  Alcotest.(check bool) "unique <= total" true
    (agg.Fuzz.Driver.st_unique_crashes <= agg.Fuzz.Driver.st_total_crashes)

let suite =
  [ ("sync dedupes crash signatures", `Quick, test_sync_dedupes_across_shards);
    ("sync merges coverage", `Quick, test_sync_merges_coverage);
    ("jobs=1 is the sequential driver", `Quick,
     test_jobs1_matches_sequential_driver);
    ("shard seeds distinct", `Quick, test_shard_seed_distinct);
    ("4-shard campaign aggregates", `Slow, test_sharded_campaign_aggregates)
  ]
