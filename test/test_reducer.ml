(* Tests for crash test-case reduction. *)

open Sqlcore
module R = Fuzz.Reducer

let parse = Sqlparser.Parser.parse_testcase_exn

(* a profile with one bug triggered by VACUUM -> CHECKPOINT *)
let bug =
  { Minidb.Fault.bug_id = "RED-1"; identifier = "TEST"; component = "Storage";
    kind = Minidb.Fault.Segv;
    cond =
      Minidb.Fault.Subseq [ Stmt_type.Vacuum; Stmt_type.Checkpoint ] }

let profile =
  Minidb.Profile.make ~name:"red" ~flavor:Minidb.Profile.Pg
    ~types:Stmt_type.all ~bugs:[ bug ]

let test_oracle () =
  Alcotest.(check bool) "crashing case detected" true
    (R.crashes_with ~profile ~bug_id:"RED-1" (parse "VACUUM; CHECKPOINT;"));
  Alcotest.(check bool) "wrong id rejected" false
    (R.crashes_with ~profile ~bug_id:"OTHER" (parse "VACUUM; CHECKPOINT;"));
  Alcotest.(check bool) "benign case rejected" false
    (R.crashes_with ~profile ~bug_id:"RED-1" (parse "SELECT 1;"))

let test_reduce_drops_junk () =
  let noisy =
    parse
      "CREATE TABLE junk1 (a INT);\n\
       INSERT INTO junk1 VALUES (12345);\n\
       SELECT * FROM junk1;\n\
       VACUUM;\n\
       CHECKPOINT;\n\
       SELECT 99;\n\
       DROP TABLE junk1;"
  in
  let out = R.reduce ~profile ~bug_id:"RED-1" noisy in
  Alcotest.(check int) "reduced to the two essential statements" 2
    (List.length out.R.r_testcase);
  Alcotest.(check int) "five removed" 5 out.R.r_removed;
  Alcotest.(check (list string)) "the right two"
    [ "VACUUM"; "CHECKPOINT" ]
    (List.map Stmt_type.name (Ast.type_sequence out.R.r_testcase));
  Alcotest.(check bool) "still crashes" true
    (R.crashes_with ~profile ~bug_id:"RED-1" out.R.r_testcase)

let test_reduce_one_minimal () =
  let out =
    R.reduce ~profile ~bug_id:"RED-1" (parse "VACUUM; CHECKPOINT;")
  in
  Alcotest.(check int) "already minimal" 0 out.R.r_removed

let test_reduce_non_crashing_unchanged () =
  let tc = parse "SELECT 1; SELECT 2;" in
  let out = R.reduce ~profile ~bug_id:"RED-1" tc in
  Alcotest.(check bool) "unchanged" true (out.R.r_testcase = tc)

let test_reduce_simplifies_literals () =
  (* bug requires a feature of the final statement, so its literal content
     is free to shrink *)
  let fbug =
    { Minidb.Fault.bug_id = "RED-2"; identifier = "TEST2";
      component = "Optimizer"; kind = Minidb.Fault.Af;
      cond =
        Minidb.Fault.All
          [ Minidb.Fault.Subseq [ Stmt_type.Insert; Stmt_type.Select ];
            Minidb.Fault.Stmt_has Minidb.Fault.F_order_by ] }
  in
  let p2 =
    Minidb.Profile.make ~name:"red2" ~flavor:Minidb.Profile.Pg
      ~types:Stmt_type.all ~bugs:[ fbug ]
  in
  let noisy =
    parse
      "CREATE TABLE t (a INT, b TEXT);\n\
       INSERT INTO t VALUES (22471185, 'noisy string');\n\
       SELECT a FROM t WHERE a <> 777 ORDER BY a DESC;"
  in
  let out = R.reduce ~profile:p2 ~bug_id:"RED-2" noisy in
  Alcotest.(check bool) "still crashes" true
    (R.crashes_with ~profile:p2 ~bug_id:"RED-2" out.R.r_testcase);
  let text = Sql_printer.testcase out.R.r_testcase in
  Alcotest.(check bool) "big constant gone" true
    (not
       (let re = "22471185" in
        let n = String.length text and m = String.length re in
        let rec loop i =
          i + m <= n && (String.sub text i m = re || loop (i + 1))
        in
        loop 0))

(* property: whatever benign noise surrounds the crashing pair, the
   reducer lands on exactly [VACUUM; CHECKPOINT] — the strongest form of
   1-minimality for this bug — while the result keeps crashing. (The
   pair must stay adjacent: Fault.Subseq matches a contiguous window
   run, so interleaved junk would defuse the bug, not obscure it.) *)
let test_prop_reduce_one_minimal () =
  let junk = Reprutil.Prop.list ~max_len:6 (Reprutil.Prop.int_range 0 99) in
  let selects ns = List.map (Printf.sprintf "SELECT %d") ns in
  Reprutil.Prop.check ~count:300 ~name:"reducer 1-minimality"
    (Reprutil.Prop.pair junk junk)
    (fun (before, after) ->
       let tc =
         parse
           (String.concat "; "
              (selects before @ [ "VACUUM"; "CHECKPOINT" ] @ selects after))
       in
       let out = R.reduce ~profile ~bug_id:"RED-1" tc in
       R.crashes_with ~profile ~bug_id:"RED-1" out.R.r_testcase
       && List.map Stmt_type.name (Ast.type_sequence out.R.r_testcase)
          = [ "VACUUM"; "CHECKPOINT" ]
       && out.R.r_removed = List.length before + List.length after)

(* property: the reducer never spends more predicate executions than its
   budget allows (+1 for the uncounted final revalidation), and a
   truncated reduction still preserves the crash *)
let test_prop_reduce_never_exceeds_budget () =
  let junk = Reprutil.Prop.list ~max_len:8 (Reprutil.Prop.int_range 0 99) in
  Reprutil.Prop.check ~count:300 ~name:"reducer budget"
    (Reprutil.Prop.pair (Reprutil.Prop.int_range 1 16) junk)
    (fun (max_tries, ns) ->
       let tc =
         parse
           (String.concat "; "
              (List.map (Printf.sprintf "SELECT %d") ns
               @ [ "VACUUM"; "CHECKPOINT" ]))
       in
       let out = R.reduce ~profile ~max_tries ~bug_id:"RED-1" tc in
       out.R.r_tries <= max_tries + 1
       && R.crashes_with ~profile ~bug_id:"RED-1" out.R.r_testcase)

let test_reduce_respects_budget () =
  let noisy =
    parse
      (String.concat ";"
         (List.init 10 (fun i -> Printf.sprintf "SELECT %d" i))
       ^ "; VACUUM; CHECKPOINT")
  in
  let out = R.reduce ~profile ~max_tries:3 ~bug_id:"RED-1" noisy in
  Alcotest.(check bool) "bounded tries" true (out.R.r_tries <= 4);
  Alcotest.(check bool) "result still crashes" true
    (R.crashes_with ~profile ~bug_id:"RED-1" out.R.r_testcase)

let suite =
  [ ("oracle", `Quick, test_oracle);
    ("drops junk", `Quick, test_reduce_drops_junk);
    ("one-minimal", `Quick, test_reduce_one_minimal);
    ("non-crashing unchanged", `Quick, test_reduce_non_crashing_unchanged);
    ("simplifies literals", `Quick, test_reduce_simplifies_literals);
    ("respects budget", `Quick, test_reduce_respects_budget);
    ("1-minimality (300 cases)", `Quick, test_prop_reduce_one_minimal);
    ("budget bound (300 cases)", `Quick,
     test_prop_reduce_never_exceeds_budget) ]
