(* Server-layer tests: typed wire responses, per-session state and
   window isolation, cross-session fault predicates, and the
   schedule-replay determinism contract (serial ≡ concurrent,
   byte-identical, under both snapshot regimes). *)

open Sqlcore
module Pool = Server.Session_pool
module Wire = Server.Wire
module Prop = Reprutil.Prop

let parse = Sqlparser.Parser.parse_testcase_exn

let stmt sql = List.hd (parse sql)

let profile = Dialects.Registry.pg_sim

(* Fault-free twin: schedules on it exercise wire/session mechanics
   without the seeded concurrency bugs firing. *)
let clean_profile = Minidb.Profile.without_bugs profile

let mk_pool ?(profile = profile) ?metrics n =
  let cov = Coverage.Bitmap.create () in
  Pool.create ?metrics ~sessions:n ~profile ~cov ()

(* --- wire protocol -------------------------------------------------- *)

let test_wire_responses () =
  let pool = mk_pool ~profile:clean_profile 1 in
  let r = Pool.exec pool ~session:0 (stmt "CREATE TABLE t (a INT, b TEXT)") in
  (match r with
   | Wire.Execute_result { rows_affected = 0; last_insert_rowid = -1 } -> ()
   | r -> Alcotest.failf "CREATE: unexpected %s" (Wire.render r));
  let r = Pool.exec pool ~session:0 (stmt "INSERT INTO t VALUES (7, 'x')") in
  (match r with
   | Wire.Execute_result { rows_affected = 1; last_insert_rowid = 0 } -> ()
   | r -> Alcotest.failf "INSERT: unexpected %s" (Wire.render r));
  let r = Pool.exec pool ~session:0 (stmt "INSERT INTO t VALUES (8, 'y')") in
  (match r with
   | Wire.Execute_result { rows_affected = 1; last_insert_rowid = 1 } -> ()
   | r -> Alcotest.failf "second INSERT: unexpected %s" (Wire.render r));
  let r = Pool.exec pool ~session:0 (stmt "SELECT a, b FROM t ORDER BY a") in
  (match r with
   | Wire.Data { columns = [ "a"; "b" ]; rows = [ r1; r2 ] } ->
     Alcotest.(check string) "row 1" "7|'x'"
       (String.concat "|"
          (List.map Wire.render_data (Array.to_list r1)));
     Alcotest.(check string) "row 2" "8|'y'"
       (String.concat "|"
          (List.map Wire.render_data (Array.to_list r2)))
   | r -> Alcotest.failf "SELECT: unexpected %s" (Wire.render r));
  match Pool.exec pool ~session:0 (stmt "SELECT a FROM missing") with
  | Wire.Error { code = "NO_SUCH_TABLE"; _ } -> ()
  | r -> Alcotest.failf "error mapping: unexpected %s" (Wire.render r)

(* --- per-session state ---------------------------------------------- *)

let test_txn_state_per_session () =
  let pool = mk_pool ~profile:clean_profile 2 in
  ignore (Pool.exec pool ~session:0 (stmt "CREATE TABLE t (a INT)"));
  ignore (Pool.exec pool ~session:0 (stmt "BEGIN"));
  let cat () = Minidb.Engine.catalog (Pool.engine pool) in
  Alcotest.(check bool) "s0 in txn" true (cat ()).Minidb.Catalog.in_txn;
  ignore (Pool.exec pool ~session:1 (stmt "SELECT a FROM t"));
  Alcotest.(check bool) "s1 not in txn" false (cat ()).Minidb.Catalog.in_txn;
  Alcotest.(check (list int)) "s0 parked" [ 0 ]
    (Minidb.Catalog.parked_sessions (cat ()));
  (* session vars are connection state *)
  ignore (Pool.exec pool ~session:1 (stmt "SET x = 1"));
  ignore (Pool.exec pool ~session:0 (stmt "SELECT a FROM t"));
  Alcotest.(check bool) "s1's @x invisible to s0" false
    (Hashtbl.mem (cat ()).Minidb.Catalog.session_vars "x");
  ignore (Pool.exec pool ~session:1 (stmt "SELECT a FROM t"));
  Alcotest.(check bool) "s1's @x restored on attach" true
    (Hashtbl.mem (cat ()).Minidb.Catalog.session_vars "x")

(* Satellite: the sliding window tracks the session, not the shared
   store. A bug keyed on the CREATE TABLE -> INSERT window must fire
   when ONE session runs both, and must NOT when the pair only exists
   in the interleaved cross-session stream. *)
let window_bug =
  { Minidb.Fault.bug_id = "WIN-PAIR";
    identifier = "TEST-1";
    component = "Test";
    kind = Minidb.Fault.Segv;
    cond = Minidb.Fault.Ends_with [ Stmt_type.Create_table; Stmt_type.Insert ] }

let window_profile =
  Minidb.Profile.make ~name:"WinTest" ~flavor:Minidb.Profile.Pg
    ~types:Dialects.Type_sets.pg ~bugs:[ window_bug ]

let test_window_tracks_session () =
  let fires steps =
    let cov = Coverage.Bitmap.create () in
    let pool =
      Pool.create ~sessions:2 ~profile:window_profile ~cov ()
    in
    (Pool.run_serial pool steps).Pool.o_crash <> None
  in
  let create = stmt "CREATE TABLE t (a INT)" in
  let insert = stmt "INSERT INTO t VALUES (1)" in
  Alcotest.(check bool) "same session: window pair fires" true
    (fires [| (0, create); (0, insert) |]);
  Alcotest.(check bool) "split across sessions: must not fire" false
    (fires [| (0, create); (1, insert) |])

(* --- cross-session fault predicates ---------------------------------- *)

let run_steps ?(sessions = 2) ?(profile = profile) steps =
  let cov = Coverage.Bitmap.create () in
  let pool = Pool.create ~sessions ~profile ~cov () in
  Pool.run_serial pool (Array.of_list steps)

let dirty_read_steps =
  [ (0, stmt "CREATE TABLE t (a INT)");
    (0, stmt "BEGIN");
    (0, stmt "INSERT INTO t VALUES (1)");
    (1, stmt "BEGIN");
    (1, stmt "SELECT a FROM t") ]

let test_concurrency_bugs_fire_interleaved () =
  (match (run_steps dirty_read_steps).Pool.o_crash with
   | Some (_, c) ->
     Alcotest.(check string) "dirty read bug" "CC-DIRTY-READ"
       c.Minidb.Fault.c_bug.Minidb.Fault.bug_id
   | None -> Alcotest.fail "CC-DIRTY-READ did not fire");
  let lost_update =
    [ (0, stmt "CREATE TABLE t (a INT)");
      (0, stmt "INSERT INTO t VALUES (1)");
      (0, stmt "BEGIN");
      (0, stmt "UPDATE t SET a = 5");
      (1, stmt "UPDATE t SET a = 9") ]
  in
  match (run_steps lost_update).Pool.o_crash with
  | Some (_, c) ->
    Alcotest.(check string) "lost update bug" "CC-LOST-UPDATE"
      c.Minidb.Fault.c_bug.Minidb.Fault.bug_id
  | None -> Alcotest.fail "CC-LOST-UPDATE did not fire"

let test_concurrency_bugs_silent_single_session () =
  (* the same statement streams collapsed onto one session: the
     other_* predicates can never be true *)
  let collapse steps = List.map (fun (_, s) -> (0, s)) steps in
  Alcotest.(check bool) "dirty-read stream, one session" true
    ((run_steps ~sessions:1 (collapse dirty_read_steps)).Pool.o_crash = None);
  (* and a plain engine (no pool, no fault hook) answers false to the
     other_* predicates by construction *)
  let cov = Coverage.Bitmap.create () in
  let engine = Minidb.Engine.create ~profile ~cov () in
  let stats =
    Minidb.Engine.run_testcase engine (List.map snd dirty_read_steps)
  in
  Alcotest.(check bool) "plain engine never fires CC bugs" true
    (stats.Minidb.Engine.rs_crash = None)

(* --- satellite: approx_bytes prices parked sessions ------------------ *)

let test_approx_bytes_counts_parked () =
  let pool = mk_pool ~profile:clean_profile 3 in
  ignore (Pool.exec pool ~session:0 (stmt "CREATE TABLE t (a INT)"));
  ignore (Pool.exec pool ~session:0 (stmt "INSERT INTO t VALUES (1)"));
  let cat = Minidb.Engine.catalog (Pool.engine pool) in
  let before = Minidb.Catalog.approx_bytes cat in
  (* open transactions in sessions 1 and 2, then park them by
     switching back to 0: their views carry whole-catalog snapshots *)
  ignore (Pool.exec pool ~session:1 (stmt "BEGIN"));
  ignore (Pool.exec pool ~session:2 (stmt "BEGIN"));
  ignore (Pool.exec pool ~session:0 (stmt "SELECT a FROM t"));
  Alcotest.(check (list int)) "two parked" [ 1; 2 ]
    (Minidb.Catalog.parked_sessions cat);
  let after = Minidb.Catalog.approx_bytes cat in
  Alcotest.(check bool)
    (Printf.sprintf "parked txn snapshots priced (%d > %d)" after before)
    true (after > before)

(* --- schedule-replay determinism (1000-case property) ---------------- *)

(* Small closed statement pool; programs are lists of (session, stmt
   index) pairs. Crashes, SQL errors and transaction interleavings are
   all reachable, and the seeded concurrency bugs can fire — outcomes
   (including crash identity) must still agree between the concurrent
   turnstile run and the serial replay, under both snapshot regimes. *)
let stmt_pool =
  Array.of_list
    (List.map stmt
       [ "CREATE TABLE t (a INT, b TEXT)";
         "INSERT INTO t VALUES (1, 'x')";
         "INSERT INTO t VALUES (2, 'y')";
         "UPDATE t SET a = a + 1";
         "DELETE FROM t WHERE a = 2";
         "SELECT a, b FROM t ORDER BY a";
         "BEGIN";
         "COMMIT";
         "ROLLBACK";
         "CREATE INDEX i ON t (a)";
         "DROP TABLE t";
         "SET v = 3" ])

let steps_arb =
  Prop.map
    ~print:(fun steps ->
      String.concat "; "
        (List.map
           (fun (sid, s) ->
              Printf.sprintf "s%d:%s" sid (Sql_printer.stmt s))
           steps))
    (fun raw ->
       List.map (fun (sid, i) -> (sid, stmt_pool.(i))) raw)
    (Prop.list ~max_len:14
       (Prop.pair (Prop.int_range 0 2) (Prop.int_range 0 11)))

let serial_vs_concurrent cow steps =
  Minidb.Catalog.set_copy_on_write cow;
  Fun.protect
    ~finally:(fun () -> Minidb.Catalog.set_copy_on_write true)
    (fun () ->
       let steps = Array.of_list steps in
       let run f =
         let cov = Coverage.Bitmap.create () in
         f (Pool.create ~sessions:3 ~profile ~cov ()) steps
       in
       Pool.outcome_equal (run Pool.run_serial) (run Pool.run_concurrent))

let test_serial_eq_concurrent_cow_on () =
  Prop.check ~count:700 ~name:"serial ≡ concurrent (cow on)" steps_arb
    (serial_vs_concurrent true)

let test_serial_eq_concurrent_cow_off () =
  Prop.check ~count:300 ~name:"serial ≡ concurrent (cow off)" steps_arb
    (serial_vs_concurrent false)

let suite =
  [ Alcotest.test_case "wire responses" `Quick test_wire_responses;
    Alcotest.test_case "txn state per session" `Quick
      test_txn_state_per_session;
    Alcotest.test_case "window tracks session" `Quick
      test_window_tracks_session;
    Alcotest.test_case "concurrency bugs fire interleaved" `Quick
      test_concurrency_bugs_fire_interleaved;
    Alcotest.test_case "concurrency bugs silent single-session" `Quick
      test_concurrency_bugs_silent_single_session;
    Alcotest.test_case "approx_bytes counts parked sessions" `Quick
      test_approx_bytes_counts_parked;
    Alcotest.test_case "serial ≡ concurrent, cow on (700 cases)" `Slow
      test_serial_eq_concurrent_cow_on;
    Alcotest.test_case "serial ≡ concurrent, cow off (300 cases)" `Slow
      test_serial_eq_concurrent_cow_off ]
