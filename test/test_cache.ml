(* Tests for the prefix-snapshot execution cache (DESIGN.md §12):
   eviction policy unit tests on the LRU store, a 1000-case property
   that prime + restore + suffix replay is indistinguishable from a
   cold full replay, and campaign-level byte-identity of cache-on vs
   cache-off runs. *)

module Cache = Fuzz.Prefix_cache
module Prop = Reprutil.Prop

(* ------------------------------------------------------------------ *)
(* LRU store *)

let test_lru_eviction_order () =
  let c = Cache.create ~cap:3 () in
  ignore (Cache.insert c "a" 1 ~bytes:10);
  ignore (Cache.insert c "b" 2 ~bytes:10);
  ignore (Cache.insert c "c" 3 ~bytes:10);
  (* touch "a": "b" becomes least recently used *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Cache.find c "a");
  let evicted = Cache.insert c "d" 4 ~bytes:10 in
  Alcotest.(check int) "one eviction" 1 evicted;
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c survives" (Some 3) (Cache.find c "c");
  Alcotest.(check int) "at cap" 3 (Cache.length c)

let test_lru_mem_does_not_refresh () =
  let c = Cache.create ~cap:2 () in
  ignore (Cache.insert c "a" 1 ~bytes:1);
  ignore (Cache.insert c "b" 2 ~bytes:1);
  (* [mem] must not touch recency: "a" stays the eviction victim *)
  Alcotest.(check bool) "mem sees a" true (Cache.mem c "a");
  ignore (Cache.insert c "c" 3 ~bytes:1);
  Alcotest.(check (option int)) "a evicted despite mem" None
    (Cache.find c "a");
  Alcotest.(check (option int)) "b survives" (Some 2) (Cache.find c "b")

let test_lru_replace_updates_bytes () =
  let c = Cache.create ~cap:4 () in
  ignore (Cache.insert c "a" 1 ~bytes:100);
  ignore (Cache.insert c "a" 2 ~bytes:40);
  Alcotest.(check int) "replace does not grow" 1 (Cache.length c);
  Alcotest.(check int) "byte estimate replaced" 40 (Cache.bytes c);
  Alcotest.(check (option int)) "newest value wins" (Some 2)
    (Cache.find c "a")

let test_lru_memory_bound () =
  let c = Cache.create ~max_bytes:100 ~cap:1000 () in
  ignore (Cache.insert c 1 "x" ~bytes:40);
  ignore (Cache.insert c 2 "y" ~bytes:40);
  (* 120 bytes > 100: evict down from the LRU end *)
  let evicted = Cache.insert c 3 "z" ~bytes:40 in
  Alcotest.(check int) "evicted to fit budget" 1 evicted;
  Alcotest.(check bool) "oldest gone" false (Cache.mem c 1);
  Alcotest.(check int) "within budget" 80 (Cache.bytes c);
  (* a single entry larger than the whole budget is kept, not thrashed *)
  let evicted = Cache.insert c 4 "huge" ~bytes:500 in
  Alcotest.(check int) "evicts the rest" 2 evicted;
  Alcotest.(check int) "oversized entry kept alone" 1 (Cache.length c);
  Alcotest.(check bool) "oversized entry live" true (Cache.mem c 4)

let test_lru_rejects_nonpositive_cap () =
  Alcotest.check_raises "cap 0" (Invalid_argument "Prefix_cache.create: cap must be positive")
    (fun () -> ignore (Cache.create ~cap:0 ()))

(* ------------------------------------------------------------------ *)
(* Snapshot/restore vs cold replay: 1000-case property.

   For a random schema-aware testcase and a random boundary k, replaying
   statements [0, k) into a fresh engine, snapshotting, restoring and
   running the suffix with carried stats must be indistinguishable from
   one cold full run: equal stats, equal coverage digest, equal type
   window, and an identical response to a follow-up statement. Restoring
   twice and mutating the first restored engine must not disturb the
   second (isolation). *)

let profile = Dialects.Registry.pg_sim

let gen_testcase rng n =
  let schema = Lego.Sym_schema.empty () in
  List.init n (fun _ ->
      let ty = Sqlcore.Stmt_type.of_index
          (Reprutil.Rng.int rng Sqlcore.Stmt_type.count) in
      let s = Lego.Generator.stmt rng schema ty in
      Lego.Sym_schema.apply schema s;
      s)

let obs engine (stats : Minidb.Engine.run_stats) cov =
  (* everything a campaign can observe about an execution *)
  ( stats,
    Coverage.Bitmap.hash cov,
    Minidb.Engine.window engine,
    Minidb.Catalog.object_count (Minidb.Engine.catalog engine) )

let test_prop_restore_equals_cold () =
  let arb =
    Prop.(triple (int_range 0 99_999) (int_range 2 10) (int_range 1 9))
  in
  Prop.check ~count:1000 ~name:"prefix restore ≡ cold replay" arb
    (fun (seed, n, kr) ->
       let tc = gen_testcase (Reprutil.Rng.create (seed + 11)) n in
       let k = 1 + (kr mod (n - 1)) in
       (* one extra follow-up statement probes the restored state *)
       let probe =
         List.hd (gen_testcase (Reprutil.Rng.create (seed + 13)) 1)
       in
       (* cold: one full run *)
       let cov_cold = Coverage.Bitmap.create () in
       let cold = Minidb.Engine.create ~profile ~cov:cov_cold () in
       let stats_cold = Minidb.Engine.run_testcase cold tc in
       let obs_cold = obs cold stats_cold cov_cold in
       let probe_cold = Minidb.Engine.run_testcase cold [ probe ] in
       (* warm: replay [0,k) on a throwaway engine, snapshot at k *)
       let cov_warm = Coverage.Bitmap.create () in
       let warm = Minidb.Engine.create ~profile ~cov:cov_warm () in
       let snap = ref None in
       let prefix_stats = ref None in
       ignore
         (Minidb.Engine.run_testcase_from
            ~on_boundary:(fun b stats ->
                if b = k then begin
                  snap := Some (Minidb.Engine.snapshot warm);
                  prefix_stats := Some stats
                end)
            warm (List.filteri (fun i _ -> i < k) tc));
       match (!snap, !prefix_stats) with
       | None, _ | _, None ->
         (* the prefix crashed before k: nothing to cache; cold path is
            the only behaviour and trivially self-consistent *)
         true
       | Some snap, Some carry ->
         let suffix = List.filteri (fun i _ -> i >= k) tc in
         let run_restored () =
           let cov = Coverage.Bitmap.create () in
           Coverage.Bitmap.load_compact ~into:cov
             (Coverage.Bitmap.compact cov_warm);
           let e = Minidb.Engine.restore snap ~cov () in
           (e, cov, Minidb.Engine.run_testcase_from ~carry e suffix)
         in
         let e1, cov1, stats1 = run_restored () in
         let obs1 = obs e1 stats1 cov1 in
         (* mutate the first restored engine before touching the second:
            restores must be isolated from each other and the snapshot *)
         ignore (Minidb.Engine.run_testcase e1 [ probe ]);
         let e2, cov2, stats2 = run_restored () in
         let obs2 = obs e2 stats2 cov2 in
         let probe2 = Minidb.Engine.run_testcase e2 [ probe ] in
         obs_cold = obs1 && obs_cold = obs2 && probe_cold = probe2)

(* ------------------------------------------------------------------ *)
(* Harness level: cache hits must not change execute outcomes. The
   first hinted child captures the shared boundary, the rest restore
   from it. *)

let test_harness_hit_outcome_identical () =
  let rng = Reprutil.Rng.create 404 in
  let parent = gen_testcase rng 6 in
  let children =
    List.init 8 (fun i ->
        (* mutate the tail: keep a shared 4-statement prefix *)
        List.filteri (fun j _ -> j < 4) parent
        @ gen_testcase (Reprutil.Rng.create (500 + i)) 2)
  in
  let run ~exec_cache =
    let h = Fuzz.Harness.create ~exec_cache ~profile () in
    let outcomes =
      List.map (fun tc -> Fuzz.Harness.execute ~hint:4 h tc) children
    in
    (outcomes, h)
  in
  let cold, _ = run ~exec_cache:0 and warm, hw = run ~exec_cache:64 in
  Alcotest.(check bool) "outcomes byte-identical" true (cold = warm);
  let hits =
    Telemetry.Registry.counter_value (Fuzz.Harness.metrics hw) "cache.hits"
  in
  Alcotest.(check bool) "capture-on-miss produced hits" true (hits >= 7)

(* ------------------------------------------------------------------ *)
(* Campaign byte-identity: cache on vs off *)

let budget = 1500

let lego_factory ~exec_cache ~seed shard_id =
  let config =
    { Lego.Lego_fuzzer.default_config with
      seed = Fuzz.Campaign.shard_seed ~seed ~shard_id }
  in
  let harness = Fuzz.Harness.create ~exec_cache ~profile () in
  Lego.Lego_fuzzer.fuzzer (Lego.Lego_fuzzer.create ~config ~harness profile)

let check_snapshots_equal name (a : Fuzz.Driver.snapshot)
    (b : Fuzz.Driver.snapshot) =
  Alcotest.(check bool) name true (a = b)

let test_fuzz_identity_jobs1 () =
  let off =
    Fuzz.Driver.run_until_execs (lego_factory ~exec_cache:0 ~seed:42 0)
      ~execs:budget
  in
  let on =
    Fuzz.Driver.run_until_execs (lego_factory ~exec_cache:256 ~seed:42 0)
      ~execs:budget
  in
  check_snapshots_equal "jobs=1 snapshots identical" off on

let test_fuzz_identity_jobs4 () =
  let run exec_cache =
    Fuzz.Campaign.run ~jobs:4 ~sync_every:300 ~execs:2400
      (lego_factory ~exec_cache ~seed:9)
  in
  let off = run 0 and on = run 256 in
  check_snapshots_equal "jobs=4 aggregate identical"
    off.Fuzz.Campaign.cg_snapshot on.Fuzz.Campaign.cg_snapshot;
  List.iter2
    (fun (a : Fuzz.Campaign.shard) (b : Fuzz.Campaign.shard) ->
       check_snapshots_equal "per-shard snapshot identical" a.sh_snapshot
         b.sh_snapshot)
    off.Fuzz.Campaign.cg_shards on.Fuzz.Campaign.cg_shards

(* the cache hint/prime plumbing differs per fuzzer: cover them all,
   like the compare subcommand does *)
let test_compare_identity_all_fuzzers () =
  let baselines =
    [ ("squirrel",
       fun h -> Baselines.Squirrel_sim.fuzzer
           (Baselines.Squirrel_sim.create ~harness:h ~seed:5 profile));
      ("squirrel+",
       fun h -> Baselines.Squirrel_plus.fuzzer
           (Baselines.Squirrel_plus.create ~harness:h ~seed:5
              ~affinities:(Lego.Affinity.create ()) profile));
      ("sqlancer",
       fun h -> Baselines.Sqlancer_sim.fuzzer
           (Baselines.Sqlancer_sim.create ~harness:h ~seed:5 profile));
      ("sqlsmith",
       fun h -> Baselines.Sqlsmith_sim.fuzzer
           (Baselines.Sqlsmith_sim.create ~harness:h ~seed:5 profile)) ]
  in
  List.iter
    (fun (name, make) ->
       let run exec_cache =
         let h = Fuzz.Harness.create ~exec_cache ~profile () in
         Fuzz.Driver.run_until_execs (make h) ~execs:800
       in
       check_snapshots_equal (name ^ " identical") (run 0) (run 256))
    baselines

let suite =
  [ ("lru eviction order", `Quick, test_lru_eviction_order);
    ("lru mem does not refresh", `Quick, test_lru_mem_does_not_refresh);
    ("lru replace updates bytes", `Quick, test_lru_replace_updates_bytes);
    ("lru memory bound", `Quick, test_lru_memory_bound);
    ("lru rejects cap<=0", `Quick, test_lru_rejects_nonpositive_cap);
    ("restore ≡ cold replay (1000 cases)", `Quick,
     test_prop_restore_equals_cold);
    ("harness hit outcome identical", `Quick,
     test_harness_hit_outcome_identical);
    ("fuzz identity jobs=1", `Quick, test_fuzz_identity_jobs1);
    ("fuzz identity jobs=4", `Slow, test_fuzz_identity_jobs4);
    ("compare identity all fuzzers", `Quick,
     test_compare_identity_all_fuzzers) ]
