(* Farm layer (DESIGN.md §16): store round-trip properties, crash
   recovery, UCB1 bandit behaviour, and the resume golden test. *)

open Sqlcore
module Store = Farm.Store
module Bandit = Farm.Bandit
module Spec = Farm.Spec
module Resume = Farm.Resume
module Scheduler = Farm.Scheduler
module Prop = Reprutil.Prop
module Bitmap = Coverage.Bitmap
module Sync = Fuzz.Sync

let parse = Sqlparser.Parser.parse_testcase_exn
let parse_stmt = Sqlparser.Parser.parse_stmt_exn

(* --- scratch directories --------------------------------------------- *)

let fresh_dir prefix =
  let f = Filename.temp_file ("legofuzz-" ^ prefix ^ "-") "" in
  Sys.remove f;
  Store.ensure_dir f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir prefix f =
  let dir = fresh_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec scan i =
    i + ln <= lh && (String.sub haystack i ln = needle || scan (i + 1))
  in
  scan 0

(* --- generators ------------------------------------------------------- *)

let pick ~print arr =
  Prop.map ~print
    (fun i -> arr.(i))
    (Prop.int_range 0 (Array.length arr - 1))

let pick_str arr = pick ~print:Fun.id arr

let testcase_pool =
  Array.map parse
    [| "SELECT 1";
       "SELECT a FROM t WHERE a > 0";
       "CREATE TABLE t (a INT, b TEXT)";
       "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t";
       "INSERT INTO t VALUES (1, 'x')";
       "UPDATE t SET a = 2 WHERE b = 'x'";
       "DELETE FROM t WHERE a IS NOT NULL";
       "DROP TABLE IF EXISTS t";
       "SELECT a, b FROM t ORDER BY a LIMIT 3" |]

let stmt_pool =
  Array.map parse_stmt
    [| "SELECT 1";
       "CREATE TABLE s (c INT)";
       "INSERT INTO s VALUES (9)";
       "UPDATE s SET c = c + 1";
       "DELETE FROM s WHERE c = 0" |]

let gen_int64 =
  Prop.map
    ~print:(Printf.sprintf "%#Lx")
    (fun (hi, lo) ->
       Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo))
    (Prop.pair (Prop.int_range 0 0xFFFFFFFF) (Prop.int_range 0 0xFFFFFFFF))

let print_xseed (s : Sync.xseed) =
  Printf.sprintf "%s #%Lx" (Sql_printer.testcase s.xs_tc) s.xs_cov_hash

let gen_xseed =
  Prop.map ~print:print_xseed
    (fun (tc, (hash, branches, cost)) ->
       { Sync.xs_tc = tc;
         xs_cov_hash = hash;
         xs_new_branches = branches;
         xs_cost = cost })
    (Prop.pair
       (pick ~print:Sql_printer.testcase testcase_pool)
       (Prop.triple gen_int64 (Prop.int_range 0 512) (Prop.int_range 0 9999)))

let gen_stmt_type =
  Prop.map ~print:Stmt_type.name Stmt_type.of_index
    (Prop.int_range 0 (Stmt_type.count - 1))

let gen_affinities =
  Prop.list ~max_len:16 (Prop.pair gen_stmt_type gen_stmt_type)

let gen_skeletons =
  Prop.list ~max_len:8 (pick ~print:Sql_printer.stmt stmt_pool)

(* compact_of_cells wants the canonical form: unique indices, ascending. *)
let canonical_cells cells =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, v) -> if not (Hashtbl.mem tbl i) then Hashtbl.add tbl i v)
    cells;
  Hashtbl.fold (fun i v acc -> (i, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let gen_compact =
  Prop.map
    ~print:(fun c ->
      Printf.sprintf "%d cells" (List.length (Bitmap.compact_cells c)))
    (fun cells -> Bitmap.compact_of_cells (canonical_cells cells))
    (Prop.list ~max_len:64
       (Prop.pair (Prop.int_range 0 (Bitmap.size - 1)) (Prop.int_range 1 255)))

(* Dedup keys exercise the JSON string escaper: quotes, backslashes,
   control characters, raw UTF-8 bytes. *)
let key_pool =
  [| "minidb:Index.lookup:34";
     "engine \"quoted\" frame";
     "back\\slash\\key";
     "multi\nline\nstack";
     "tab\there";
     "plain_key_1";
     "plain_key_2";
     "\xce\xbb-unicode";
     "spaces in key" |]

let gen_keys = Prop.list ~max_len:10 (pick_str key_pool)

let id_pool = [| "a"; "camp-1"; "x.y_z"; "A09"; "dots.in.id"; "under_score" |]
let fuzzer_pool = [| "lego"; "lego-"; "squirrel"; "sqlancer"; "sqlsmith" |]
let dialect_pool = [| "postgresql"; "mysql"; "mariadb"; "comdb2" |]

let quirk_pool =
  [| "index_eq_skips_first"; "or_drops_right"; "limit_off_by_one" |]

let feedback_pool = [| Fuzz.Harness.Edges; Fuzz.Harness.Grammar;
                       Fuzz.Harness.Both |]

let gen_campaign =
  Prop.map
    ~print:(fun c -> c.Store.sc_id ^ "/" ^ c.Store.sc_fuzzer)
    (fun ((id, fuzzer, dialect),
          (quirks, feedback, (oracles, cache, (seed, budget)))) ->
      { Store.sc_id = id;
        sc_fuzzer = fuzzer;
        sc_dialect = dialect;
        sc_quirks = quirks;
        sc_feedback = feedback;
        sc_oracles = oracles;
        sc_exec_cache = cache;
        sc_seed = seed;
        sc_budget = budget })
    (Prop.pair
       (Prop.triple (pick_str id_pool) (pick_str fuzzer_pool)
          (pick_str dialect_pool))
       (Prop.triple
          (Prop.list ~max_len:2 (pick_str quirk_pool))
          (pick ~print:(fun _ -> "feedback") feedback_pool)
          (Prop.triple Prop.bool
             (Prop.int_range 0 4096)
             (Prop.pair (Prop.int_range 0 1_000_000)
                (Prop.int_range 1 1_000_000)))))

let gen_progress =
  Prop.map
    ~print:(fun p ->
      Printf.sprintf "execs=%d epoch=%d" p.Store.pr_execs_done p.Store.pr_epoch)
    (fun (execs, epoch) -> { Store.pr_execs_done = execs; pr_epoch = epoch })
    (Prop.pair (Prop.int_range 0 2_000_000) (Prop.int_range 0 12))

let base_campaign =
  { Store.sc_id = "prop";
    sc_fuzzer = "lego";
    sc_dialect = "postgresql";
    sc_quirks = [];
    sc_feedback = Fuzz.Harness.Both;
    sc_oracles = false;
    sc_exec_cache = 0;
    sc_seed = 1;
    sc_budget = 1000 }

let base () = Store.empty_snapshot base_campaign

(* --- store round-trip battery ----------------------------------------- *)

let roundtrips dir sn =
  let (_ : int) = Store.save ~keep:1 ~dir sn in
  match Store.load ~dir with
  | Ok (sn', _, _) -> Store.snapshot_equal sn sn'
  | Error _ -> false

let test_roundtrip_meta () =
  with_dir "rt-meta" (fun dir ->
    Prop.check ~name:"meta save→load ≡ identity"
      (Prop.pair gen_campaign gen_progress)
      (fun (c, p) ->
         roundtrips dir { (Store.empty_snapshot c) with Store.sn_progress = p }))

let test_roundtrip_corpus () =
  with_dir "rt-corpus" (fun dir ->
    Prop.check ~name:"corpus save→load ≡ identity"
      (Prop.list ~max_len:12 gen_xseed)
      (fun seeds -> roundtrips dir { (base ()) with Store.sn_seeds = seeds }))

let test_roundtrip_affinities () =
  with_dir "rt-aff" (fun dir ->
    Prop.check ~name:"affinities save→load ≡ identity" gen_affinities
      (fun affs ->
         roundtrips dir { (base ()) with Store.sn_affinities = affs }))

let test_roundtrip_skeletons () =
  with_dir "rt-skel" (fun dir ->
    Prop.check ~name:"skeletons save→load ≡ identity" gen_skeletons
      (fun skels ->
         roundtrips dir { (base ()) with Store.sn_skeletons = skels }))

let test_roundtrip_maps () =
  with_dir "rt-maps" (fun dir ->
    Prop.check ~name:"virgin maps save→load ≡ identity"
      (Prop.pair gen_compact gen_compact)
      (fun (virgin, grammar) ->
         roundtrips dir
           { (base ()) with Store.sn_virgin = virgin; sn_grammar = grammar }))

let test_roundtrip_dedup () =
  with_dir "rt-dedup" (fun dir ->
    Prop.check ~name:"dedup keys save→load ≡ identity"
      (Prop.pair gen_keys gen_keys)
      (fun (crashes, logic) ->
         roundtrips dir
           { (base ()) with
             Store.sn_crash_keys = crashes;
             sn_logic_keys = logic }))

let test_roundtrip_full () =
  with_dir "rt-full" (fun dir ->
    Prop.check ~count:300 ~name:"full snapshot save→load ≡ identity"
      (Prop.pair
         (Prop.triple (Prop.pair gen_campaign gen_progress)
            (Prop.list ~max_len:8 gen_xseed) gen_affinities)
         (Prop.triple gen_skeletons (Prop.pair gen_compact gen_compact)
            (Prop.pair gen_keys gen_keys)))
      (fun (((c, p), seeds, affs), (skels, (virgin, grammar), (ck, lk))) ->
         roundtrips dir
           { Store.sn_campaign = c;
             sn_progress = p;
             sn_seeds = seeds;
             sn_affinities = affs;
             sn_skeletons = skels;
             sn_virgin = virgin;
             sn_grammar = grammar;
             sn_crash_keys = ck;
             sn_logic_keys = lk }))

(* --- crash recovery --------------------------------------------------- *)

let sample_snapshot n =
  let take k arr = Array.to_list (Array.sub arr 0 k) in
  let seed i tc =
    { Sync.xs_tc = tc;
      xs_cov_hash = Int64.of_int (0x1234 + (i * 7919));
      xs_new_branches = i + 1;
      xs_cost = 10 * (i + 1) }
  in
  { Store.sn_campaign = base_campaign;
    sn_progress = { pr_execs_done = 100 * n; pr_epoch = n };
    sn_seeds = List.mapi seed (take (min n 4) testcase_pool);
    sn_affinities =
      List.init n (fun i ->
        (Stmt_type.of_index (i mod Stmt_type.count),
         Stmt_type.of_index ((i * 3) mod Stmt_type.count)));
    sn_skeletons = take (min n 3) stmt_pool;
    sn_virgin =
      Bitmap.compact_of_cells (List.init (4 * n) (fun i -> (17 * i, 1 + i)));
    sn_grammar = Bitmap.compact_of_cells (List.init n (fun i -> (31 * i, 8)));
    sn_crash_keys = List.init n (Printf.sprintf "crash-%d");
    sn_logic_keys = List.init n (Printf.sprintf "logic-%d") }

(* Two generations: gen 1 holds [snap_a], gen 2 the richer [snap_b]. *)
let snap_a = sample_snapshot 2
let snap_b = sample_snapshot 5

let two_gen_store dir =
  let g1 = Store.save ~dir snap_a in
  let g2 = Store.save ~dir snap_b in
  Alcotest.(check (pair int int)) "generation numbers" (1, 2) (g1, g2)

let truncate_file path =
  let s = read_file path in
  write_file path (String.sub s 0 (String.length s / 2))

let bitflip_file path =
  let s = Bytes.of_string (read_file path) in
  let i = Bytes.length s / 2 in
  Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0x20));
  write_file path (Bytes.to_string s)

let check_falls_back_to_gen1 dir =
  match Store.load ~dir with
  | Ok (sn, generation, warnings) ->
    Alcotest.(check int) "fell back to generation 1" 1 generation;
    Alcotest.(check bool) "recovered snapshot is gen 1's" true
      (Store.snapshot_equal snap_a sn);
    Alcotest.(check bool) "corruption reported" true (warnings <> []);
    Alcotest.(check bool) "warning names the bad generation" true
      (List.exists (fun w -> contains w "gen-000002") warnings)
  | Error ws ->
    Alcotest.failf "no valid generation: %s" (String.concat "; " ws)

let corrupt_gen dir gen how file =
  how (Filename.concat (Store.generation_dir ~dir gen) file)

let test_recovery_truncated () =
  with_dir "rec-trunc" (fun dir ->
    two_gen_store dir;
    corrupt_gen dir 2 truncate_file "corpus.jsonl";
    check_falls_back_to_gen1 dir)

let test_recovery_bitflip () =
  with_dir "rec-flip" (fun dir ->
    two_gen_store dir;
    corrupt_gen dir 2 bitflip_file "virgin.json";
    check_falls_back_to_gen1 dir)

let test_recovery_missing_section () =
  with_dir "rec-del" (fun dir ->
    two_gen_store dir;
    corrupt_gen dir 2 Sys.remove "meta.json";
    check_falls_back_to_gen1 dir)

let test_recovery_torn_manifest () =
  with_dir "rec-manifest" (fun dir ->
    two_gen_store dir;
    corrupt_gen dir 2 Sys.remove Store.manifest_file;
    check_falls_back_to_gen1 dir)

let test_recovery_stray_tmp_ignored () =
  with_dir "rec-tmp" (fun dir ->
    two_gen_store dir;
    (* A writer killed mid-save leaves temp files; they must not affect
       loading or digest validation. *)
    write_file
      (Filename.concat (Store.generation_dir ~dir 2) "corpus.jsonl.tmp")
      "half-written garbage";
    write_file (Filename.concat dir "stray.tmp") "noise";
    match Store.load ~dir with
    | Ok (sn, generation, warnings) ->
      Alcotest.(check int) "newest generation still valid" 2 generation;
      Alcotest.(check bool) "snapshot intact" true
        (Store.snapshot_equal snap_b sn);
      Alcotest.(check (list string)) "no warnings" [] warnings
    | Error ws ->
      Alcotest.failf "no valid generation: %s" (String.concat "; " ws))

let test_recovery_all_corrupt () =
  with_dir "rec-all" (fun dir ->
    two_gen_store dir;
    corrupt_gen dir 1 truncate_file "dedup.json";
    corrupt_gen dir 2 bitflip_file "corpus.jsonl";
    match Store.load ~dir with
    | Ok (_, generation, _) ->
      Alcotest.failf "loaded corrupt generation %d" generation
    | Error warnings ->
      Alcotest.(check bool) "both generations reported" true
        (List.length warnings >= 2))

let test_recovery_save_after_corruption () =
  with_dir "rec-resave" (fun dir ->
    two_gen_store dir;
    corrupt_gen dir 2 bitflip_file "skeletons.jsonl";
    (* The next save must not reuse the corrupt generation's number. *)
    let g3 = Store.save ~dir snap_b in
    Alcotest.(check int) "new generation after the corrupt one" 3 g3;
    match Store.load ~dir with
    | Ok (sn, generation, _) ->
      Alcotest.(check int) "loads the new generation" 3 generation;
      Alcotest.(check bool) "snapshot intact" true
        (Store.snapshot_equal snap_b sn)
    | Error ws ->
      Alcotest.failf "no valid generation: %s" (String.concat "; " ws))

(* --- bandit ----------------------------------------------------------- *)

let test_bandit_deterministic () =
  let drive () =
    let b = Bandit.create ~arms:3 () in
    let rounds = ref [] in
    for _ = 1 to 6 do
      let active = [| true; true; true |] in
      let execs, pulls = Bandit.allocate b ~budget:1000 ~active in
      rounds := Array.to_list execs :: !rounds;
      Array.iteri
        (fun arm p ->
           if p > 0 then
             Bandit.update b ~arm ~pulls:p
               ~reward:(0.1 *. float_of_int (arm + 1)))
        pulls
    done;
    List.rev !rounds
  in
  Alcotest.(check (list (list int)))
    "same update sequence, same allocations" (drive ()) (drive ())

let test_bandit_conservation () =
  Prop.check ~name:"allocate conserves the budget exactly"
    (Prop.triple (Prop.int_range 1 6) (Prop.int_range 0 5000)
       (Prop.pair (Prop.list ~max_len:6 Prop.bool)
          (Prop.list ~max_len:6 (Prop.int_range 0 10))))
    (fun (arms, budget, (mask, rewards)) ->
       let active =
         Array.init arms (fun i ->
           match List.nth_opt mask i with Some b -> b | None -> false)
       in
       let b = Bandit.create ~arms () in
       (* Vary the committed state before the allocation under test. *)
       List.iteri
         (fun i r ->
            if i < arms then
              Bandit.update b ~arm:i ~pulls:(1 + (i mod 3))
                ~reward:(float_of_int r /. 10.0))
         rewards;
       let execs, _ = Bandit.allocate b ~budget ~active in
       let sum = Array.fold_left ( + ) 0 execs in
       let any = Array.exists Fun.id active in
       let inactive_zero =
         Array.for_all2 (fun a e -> a || e = 0) active execs
       in
       (if any then sum = budget else sum = 0) && inactive_zero)

let test_bandit_explores_fresh_arms () =
  let b = Bandit.create ~arms:4 () in
  let execs, pulls =
    Bandit.allocate b ~budget:1000 ~active:[| true; true; true; true |]
  in
  Array.iteri
    (fun arm e ->
       Alcotest.(check bool)
         (Printf.sprintf "arm %d explored" arm)
         true (e > 0 && pulls.(arm) > 0))
    execs

let test_bandit_planted_two_arms () =
  let b = Bandit.create ~arms:2 () in
  let total = [| 0; 0 |] in
  for _ = 1 to 40 do
    let execs, pulls = Bandit.allocate b ~budget:250 ~active:[| true; true |] in
    total.(0) <- total.(0) + execs.(0);
    total.(1) <- total.(1) + execs.(1);
    Array.iteri
      (fun arm p ->
         if p > 0 then
           Bandit.update b ~arm ~pulls:p
             ~reward:(if arm = 0 then 0.9 else 0.1))
      pulls
  done;
  let dealt = total.(0) + total.(1) in
  Alcotest.(check int) "budget conserved over all rounds" (40 * 250) dealt;
  Alcotest.(check bool)
    (Printf.sprintf "high-yield arm got %d/%d (wanted >= 60%%)" total.(0) dealt)
    true
    (total.(0) * 100 >= 60 * dealt)

let test_bandit_inactive_arm () =
  let b = Bandit.create ~arms:2 () in
  Bandit.update b ~arm:1 ~pulls:4 ~reward:5.0;
  let execs, _ = Bandit.allocate b ~budget:300 ~active:[| true; false |] in
  Alcotest.(check (list int)) "retired arm gets nothing" [ 300; 0 ]
    (Array.to_list execs)

(* --- spec parsing ----------------------------------------------------- *)

let spec_text =
  {|{"campaigns":[
      {"id":"hot","fuzzer":"lego","dialect":"postgresql","feedback":"both",
       "budget":8000,"seed":11},
      {"id":"cold","fuzzer":"sqlsmith","dialect":"mysql",
       "quirks":["index_eq_skips_first"],"budget":8000,"seed":11}],
     "total_execs":8000,"round_execs":800,"workers":2,
     "policy":"bandit","ucb_c":0.3}|}

let parse_spec () =
  match Telemetry.Json.of_string spec_text with
  | Error m -> Alcotest.failf "spec json: %s" m
  | Ok j ->
    (match Spec.of_json j with
     | Error m -> Alcotest.failf "spec: %s" m
     | Ok spec -> spec)

let test_spec_json_roundtrip () =
  let spec = parse_spec () in
  Alcotest.(check int) "campaigns" 2 (List.length spec.Spec.fs_campaigns);
  Alcotest.(check string) "policy" "bandit"
    (Spec.policy_to_string spec.fs_policy);
  match Spec.of_json (Spec.to_json spec) with
  | Error m -> Alcotest.failf "re-parse: %s" m
  | Ok spec' ->
    Alcotest.(check bool) "to_json ∘ of_json is the identity" true
      (spec = spec')

let test_spec_rejects_unknown_fuzzer () =
  let bad =
    {|{"campaigns":[{"id":"x","fuzzer":"afl","dialect":"postgresql",
       "budget":10}],"total_execs":10}|}
  in
  match Telemetry.Json.of_string bad with
  | Error m -> Alcotest.failf "spec json: %s" m
  | Ok j ->
    (match Spec.of_json j with
     | Ok _ -> Alcotest.fail "unknown fuzzer accepted"
     | Error m ->
       Alcotest.(check bool) "error names the fuzzer" true (contains m "afl"))

(* --- planted two-campaign farm ---------------------------------------- *)

let test_scheduler_planted () =
  with_dir "farm-planted" (fun runs_dir ->
    let spec = parse_spec () in
    match Scheduler.run ~runs_dir spec with
    | Error m -> Alcotest.failf "farm: %s" m
    | Ok r ->
      let find id =
        List.find
          (fun c -> c.Scheduler.fc_campaign.Store.sc_id = id)
          r.Scheduler.fr_campaigns
      in
      let hot = find "hot" and cold = find "cold" in
      Alcotest.(check int) "whole farm budget dealt"
        spec.Spec.fs_total_execs r.fr_allocated;
      Alcotest.(check int) "per-round allocations sum to the farm total"
        r.fr_allocated
        (hot.fc_allocated + cold.fc_allocated);
      Alcotest.(check bool)
        (Printf.sprintf "bandit favours the high-yield arm: %d/%d"
           hot.fc_allocated r.fr_allocated)
        true
        (hot.fc_allocated * 100 >= 60 * r.fr_allocated);
      Alcotest.(check int) "farm counter mirrors the allocation"
        hot.fc_allocated
        (Telemetry.Registry.counter_value r.fr_metrics "farm.hot.allocated");
      List.iter
        (fun c ->
           Alcotest.(check bool)
             (c.Scheduler.fc_campaign.Store.sc_id ^ " store written") true
             (c.fc_generation >= 1
              && Store.generations
                   ~dir:
                     (Store.store_dir ~runs_dir c.fc_campaign.Store.sc_id)
                 <> []))
        [ hot; cold ])

(* --- resume golden test ------------------------------------------------ *)

let golden_budget = 12_000

let golden_campaign =
  { Store.sc_id = "golden";
    sc_fuzzer = "lego";
    sc_dialect = "postgresql";
    sc_quirks = [];
    sc_feedback = Fuzz.Harness.Both;
    sc_oracles = false;
    sc_exec_cache = 0;
    sc_seed = 5;
    sc_budget = golden_budget }

let golden_factory () =
  match Spec.make ~campaign:golden_campaign ~seed:golden_campaign.sc_seed with
  | Ok f -> f
  | Error m -> Alcotest.failf "factory: %s" m

let keys_of_result (res : Fuzz.Campaign.result) =
  match res.cg_shards with
  | [ sh ] -> Scheduler.coverage_keys sh.Fuzz.Campaign.sh_fuzzer
  | shards -> Alcotest.failf "expected one shard, got %d" (List.length shards)

let is_prefix xs ys =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && go (xs, ys)
  in
  go (xs, ys)

let test_resume_golden () =
  (* Uninterrupted run at the full budget — the parity baseline. *)
  let full = Fuzz.Campaign.run ~jobs:1 ~execs:golden_budget (golden_factory ()) in
  let keys_full = keys_of_result full in
  with_dir "golden" (fun dir ->
    (* Interrupt at half budget and persist — what fuzz --store does. *)
    let half =
      Fuzz.Campaign.run ~jobs:1 ~execs:(golden_budget / 2) (golden_factory ())
    in
    let sn1 =
      Resume.capture
        ~prior:(Store.empty_snapshot golden_campaign)
        ~campaign:golden_campaign
        ~progress:
          { Store.pr_execs_done = half.cg_snapshot.Fuzz.Driver.st_execs;
            pr_epoch = 0 }
        half
    in
    let g1 = Store.save ~dir sn1 in
    Alcotest.(check int) "first generation" 1 g1;
    let stored_crashes = sn1.Store.sn_crash_keys in
    let stored_logic = sn1.Store.sn_logic_keys in
    match Resume.run ~dir () with
    | Error m -> Alcotest.failf "resume: %s" m
    | Ok o ->
      Alcotest.(check int) "resumed from generation 1" 1 o.Resume.rs_from_generation;
      Alcotest.(check int) "second generation written" 2 o.rs_generation;
      Alcotest.(check int) "fresh epoch" 1 o.rs_epoch;
      Alcotest.(check int) "budget unchanged" golden_budget o.rs_budget;
      Alcotest.(check bool) "budget fully spent" true
        (o.rs_execs_done >= golden_budget);
      Alcotest.(check int) "pre-crash findings preloaded"
        (List.length stored_crashes) o.rs_preloaded_crashes;
      (* Parity: at equal total budget the resumed campaign must reach at
         least 99% of the uninterrupted run's coverage keys. (It often
         reaches MORE — the resumed epoch runs a fresh RNG stream over
         the imported corpus, a diversity bonus — so the bound is
         one-sided.) *)
      let keys_resumed = keys_of_result o.rs_result in
      Alcotest.(check bool)
        (Printf.sprintf "coverage-key parity: resumed=%d vs full=%d"
           keys_resumed keys_full)
        true
        (float_of_int keys_resumed >= 0.99 *. float_of_int keys_full);
      (* Zero re-reported findings: every crash or violation the resumed
         segment reports must be new, i.e. its dedup key absent from the
         store it resumed from. *)
      let seg_crashes =
        List.map (fun (c, _) -> Fuzz.Triage.stack_key c) o.rs_result.cg_crashes
      in
      let seg_logic =
        List.map (fun (v, _) -> Oracle.Violation.key v) o.rs_result.cg_logic
      in
      Alcotest.(check (list string)) "no crash re-reported" []
        (List.filter (fun k -> List.mem k stored_crashes) seg_crashes);
      Alcotest.(check (list string)) "no violation re-reported" []
        (List.filter (fun k -> List.mem k stored_logic) seg_logic);
      (* The new generation extends the old dedup keys in order. *)
      (match Store.load ~dir with
       | Error ws -> Alcotest.failf "reload: %s" (String.concat "; " ws)
       | Ok (sn2, g2, _) ->
         Alcotest.(check int) "newest generation" 2 g2;
         Alcotest.(check bool) "crash keys extended, never rewritten" true
           (is_prefix stored_crashes sn2.Store.sn_crash_keys);
         Alcotest.(check bool) "logic keys extended, never rewritten" true
           (is_prefix stored_logic sn2.Store.sn_logic_keys);
         Alcotest.(check int) "progress accumulated" o.rs_execs_done
           sn2.sn_progress.Store.pr_execs_done);
      (* Crash recovery end-to-end: corrupt the newest generation and the
         next resume must fall back and still complete. *)
      bitflip_file
        (Filename.concat (Store.generation_dir ~dir 2) "corpus.jsonl");
      (match Resume.run ~dir ~execs:200 () with
       | Error m -> Alcotest.failf "resume after corruption: %s" m
       | Ok o2 ->
         Alcotest.(check int) "fell back to generation 1" 1
           o2.Resume.rs_from_generation;
         Alcotest.(check bool) "corruption reported" true
           (o2.rs_warnings <> []);
         Alcotest.(check int) "wrote a fresh generation" 3 o2.rs_generation))

(* --- worker transport: line-framed JSON round-trip --------------------- *)

module Transport = Farm.Transport
module Lock = Farm.Lock

let small_int = Prop.int_range (-3) 999_999

let gen_opt_err =
  Prop.map
    ~print:(function None -> "None" | Some s -> "Some " ^ s)
    (fun (b, s) -> if b then Some s else None)
    (Prop.pair Prop.bool (pick_str key_pool))

let gen_command =
  Prop.map ~print:Transport.command_to_line
    (fun (shutdown, (c, (e, r))) ->
       if shutdown then Transport.Shutdown
       else Transport.Run { rc_campaign = c; rc_execs = e; rc_round = r })
    (Prop.pair Prop.bool
       (Prop.pair (pick_str key_pool) (Prop.pair small_int small_int)))

let gen_report =
  Prop.map
    ~print:(fun r -> Transport.message_to_line (Transport.Round r))
    (fun ((c, (round, alloc, ex), (ed, br, keys)),
          ((nk, cu, lu), bugs, ((g, rl, rs), fin, err))) ->
      { Transport.rr_campaign = c; rr_round = round; rr_allocated = alloc;
        rr_executed = ex; rr_execs_done = ed; rr_branches = br;
        rr_coverage_keys = keys; rr_new_keys = nk; rr_crashes_unique = cu;
        rr_logic_unique = lu; rr_bugs = bugs; rr_generation = g;
        rr_finished = fin; rr_reloads = rl; rr_reload_skipped = rs;
        rr_error = err })
    (Prop.pair
       (Prop.triple (pick_str key_pool)
          (Prop.triple small_int small_int small_int)
          (Prop.triple small_int small_int small_int))
       (Prop.triple
          (Prop.triple small_int small_int small_int)
          (Prop.list ~max_len:4 (pick_str key_pool))
          (Prop.triple
             (Prop.triple small_int small_int small_int)
             Prop.bool gen_opt_err)))

let gen_message =
  Prop.map ~print:Transport.message_to_line
    (fun ((tag, w, n), (s, rep)) ->
       match tag with
       | 0 -> Transport.Hello { h_worker = w; h_pid = n }
       | 1 -> Transport.Heartbeat { hb_worker = w; hb_execs = n }
       | 2 -> Transport.Fatal s
       | _ -> Transport.Round rep)
    (Prop.pair
       (Prop.triple (Prop.int_range 0 3) small_int small_int)
       (Prop.pair (pick_str key_pool) gen_report))

let test_transport_command_roundtrip () =
  Prop.check ~name:"transport: command line round-trip" gen_command (fun c ->
      Transport.command_of_line (Transport.command_to_line c) = Ok c
      (* line framing: the encoder must never emit an embedded newline *)
      && not (String.contains (Transport.command_to_line c) '\n'))

let test_transport_message_roundtrip () =
  Prop.check ~name:"transport: message line round-trip" gen_message (fun m ->
      Transport.message_of_line (Transport.message_to_line m) = Ok m
      && not (String.contains (Transport.message_to_line m) '\n'))

let test_transport_rejects_garbage () =
  List.iter
    (fun line ->
       (match Transport.command_of_line line with
        | Ok _ -> Alcotest.failf "command accepted %S" line
        | Error _ -> ());
       match Transport.message_of_line line with
       | Ok _ -> Alcotest.failf "message accepted %S" line
       | Error _ -> ())
    [ ""; "bogus"; "{}"; {|{"cmd":"fly"}|}; {|{"msg":"hello"}|};
      {|[1,2,3]|}; {|{"cmd":42}|} ]

(* --- advisory locks ---------------------------------------------------- *)

let test_lock_basic () =
  with_dir "lock" (fun dir ->
    let path = Filename.concat dir "L" in
    Alcotest.(check bool) "unlocked initially" false (Lock.is_locked path);
    (match Lock.acquire ~kind:Lock.Exclusive path with
     | None -> Alcotest.fail "exclusive acquire failed"
     | Some l ->
       Alcotest.(check bool) "held" true (Lock.is_locked path);
       Lock.release l);
    Alcotest.(check bool) "released" false (Lock.is_locked path);
    match
      (Lock.acquire ~kind:Lock.Shared path, Lock.acquire ~kind:Lock.Shared path)
    with
    | Some a, Some b ->
      Alcotest.(check bool) "shared locks coexist" true (Lock.is_locked path);
      Lock.release a;
      Alcotest.(check bool) "still marked while one holder remains" true
        (Lock.is_locked path);
      Lock.release b;
      Alcotest.(check bool) "clear once the last holder releases" false
        (Lock.is_locked path)
    | _ -> Alcotest.fail "shared acquire failed")

let test_lock_with_exclusive () =
  with_dir "lock-we" (fun dir ->
    let path = Filename.concat dir "L" in
    let out =
      Lock.with_exclusive path (fun () ->
          Alcotest.(check bool) "held inside" true (Lock.is_locked path);
          17)
    in
    Alcotest.(check int) "body result returned" 17 out;
    Alcotest.(check bool) "released on exit" false (Lock.is_locked path);
    (try
       Lock.with_exclusive path (fun () -> failwith "boom")
     with Failure _ -> ());
    Alcotest.(check bool) "released on exception" false (Lock.is_locked path))

(* Keep-3 pruning must spare a generation another process is reading:
   simulate the concurrent reader with a shared read-mark, race several
   saves past it, then release and watch the next save retire it. *)
let test_prune_lock_aware () =
  with_dir "prune-lock" (fun dir ->
    Alcotest.(check int) "gen 1 written" 1
      (Store.save ~keep:10 ~dir (sample_snapshot 1));
    let mark =
      match Lock.acquire ~kind:Lock.Shared (Store.generation_lock_path ~dir 1)
      with
      | Some l -> l
      | None -> Alcotest.fail "read-mark acquire failed"
    in
    for i = 2 to 6 do
      ignore (Store.save ~keep:3 ~dir (sample_snapshot i))
    done;
    let gens = Store.generations ~dir in
    Alcotest.(check bool) "read-marked generation survives keep-3" true
      (List.mem 1 gens);
    Alcotest.(check bool) "unmarked old generations pruned" false
      (List.mem 2 gens);
    Lock.release mark;
    ignore (Store.save ~keep:3 ~dir (sample_snapshot 7));
    let gens = Store.generations ~dir in
    Alcotest.(check bool) "released generation pruned by the next save" false
      (List.mem 1 gens);
    Alcotest.(check int) "keep-3 holds afterwards" 3 (List.length gens))

(* --- worker namespaces and promotion ----------------------------------- *)

let test_worker_namespace_promote () =
  with_dir "wns" (fun dir ->
    let g = Store.save ~worker:1 ~dir snap_a in
    Alcotest.(check int) "worker generation numbered from 1" 1 g;
    Alcotest.(check (list int)) "invisible to plain listings" []
      (Store.generations ~dir);
    Alcotest.(check bool) "listed as a worker generation" true
      (List.mem (1, 1) (Store.worker_generations ~dir));
    (match Store.load ~dir with
     | Ok _ -> Alcotest.fail "plain load saw an unpromoted worker generation"
     | Error _ -> ());
    let digests_before =
      Store.manifest_digests (Store.worker_generation_dir ~dir ~worker:1 1)
    in
    Alcotest.(check bool) "manifest digests readable" true
      (digests_before <> None);
    (match Store.promote ~dir ~worker:1 1 with
     | Error m -> Alcotest.failf "promote: %s" m
     | Ok g' ->
       Alcotest.(check int) "renamed into place under the same number" 1 g');
    Alcotest.(check (list int)) "now visible" [ 1 ] (Store.generations ~dir);
    Alcotest.(check bool) "digests unchanged by rename promotion" true
      (digests_before = Store.manifest_digests (Store.generation_dir ~dir 1));
    match Store.load ~dir with
    | Error ws -> Alcotest.failf "load: %s" (String.concat "; " ws)
    | Ok (sn, g', _) ->
      Alcotest.(check int) "loaded the promoted generation" 1 g';
      Alcotest.(check bool) "snapshot intact" true
        (Store.snapshot_equal snap_a sn))

let test_promote_conflict_merges () =
  with_dir "wmerge" (fun dir ->
    with_dir "wmerge2" (fun other ->
      (* Forge the race the store lock exists for: a worker generation
         and a plain generation carrying the same number. *)
      Alcotest.(check int) "worker gen 1" 1 (Store.save ~worker:1 ~dir snap_a);
      Alcotest.(check int) "twin gen 1" 1 (Store.save ~dir:other snap_b);
      Sys.rename (Store.generation_dir ~dir:other 1)
        (Store.generation_dir ~dir 1);
      match Store.promote ~dir ~worker:1 1 with
      | Error m -> Alcotest.failf "promote: %s" m
      | Ok g ->
        Alcotest.(check int) "conflict merged into a fresh generation" 2 g;
        Alcotest.(check (list (pair int int))) "worker namespace drained" []
          (Store.worker_generations ~dir);
        (match Store.load ~dir with
         | Error ws -> Alcotest.failf "load: %s" (String.concat "; " ws)
         | Ok (sn, g', _) ->
           Alcotest.(check int) "newest is the merge" 2 g';
           Alcotest.(check int) "dedup keys are the union" 5
             (List.length sn.Store.sn_crash_keys);
           Alcotest.(check bool) "merge keeps the twin's keys a prefix" true
             (sn.sn_crash_keys = snap_b.Store.sn_crash_keys);
           Alcotest.(check int) "progress is the pointwise max" 500
             sn.sn_progress.Store.pr_execs_done;
           Alcotest.(check int) "seed union deduplicated" 4
             (List.length sn.sn_seeds))))

let test_discard_worker_generations () =
  with_dir "wdiscard" (fun dir ->
    ignore (Store.save ~worker:1 ~dir snap_a);
    ignore (Store.save ~worker:2 ~dir snap_b);
    Store.discard_worker_generations ~dir ~worker:1;
    Alcotest.(check (list (pair int int))) "only worker 2's remains"
      [ (2, 2) ]
      (Store.worker_generations ~dir);
    Store.discard_worker_generations ~dir ~worker:2;
    Alcotest.(check (list (pair int int))) "namespace empty" []
      (Store.worker_generations ~dir))

(* --- multi-process farm ------------------------------------------------ *)

(* The tests below spawn the real CLI: dune runs the suite from the
   build directory, so the binary sits one level up. *)
let legofuzz = "../bin/legofuzz.exe"

let real_worker ~runs_dir k =
  [| legofuzz; "worker"; "--worker-id"; string_of_int k; "--runs-dir";
     runs_dir; "--heartbeat-execs"; "50" |]

let process_spec () =
  let text =
    {|{"campaigns":[
        {"id":"hot","fuzzer":"lego","dialect":"postgresql","feedback":"both",
         "budget":4000,"seed":7},
        {"id":"cold","fuzzer":"sqlsmith","dialect":"postgresql",
         "budget":4000,"seed":9}],
       "total_execs":4000,"round_execs":1000,"workers":2,
       "policy":"bandit","ucb_c":0.3}|}
  in
  match Telemetry.Json.of_string text with
  | Error m -> Alcotest.failf "spec json: %s" m
  | Ok j ->
    (match Spec.of_json j with
     | Error m -> Alcotest.failf "spec: %s" m
     | Ok spec -> spec)

let no_dups l = List.length l = List.length (List.sort_uniq compare l)

(* Zero duplicate findings after merge: every dedup key in the final
   store appears exactly once, however many worker generations fed it. *)
let check_store_dedup ~runs_dir id =
  let dir = Store.store_dir ~runs_dir id in
  match Store.load ~dir with
  | Error ws -> Alcotest.failf "%s store: %s" id (String.concat "; " ws)
  | Ok (sn, _, _) ->
    Alcotest.(check bool) (id ^ ": crash keys duplicate-free") true
      (no_dups sn.Store.sn_crash_keys);
    Alcotest.(check bool) (id ^ ": logic keys duplicate-free") true
      (no_dups sn.Store.sn_logic_keys)

let counter r name = Telemetry.Registry.counter_value r.Scheduler.fr_metrics name

(* SIGKILL a worker mid-round: the farm must finish the full budget,
   respawn the slot, and re-report nothing. *)
let test_processes_sigkill_recovery () =
  with_dir "farm-kill" (fun runs_dir ->
    let spec = process_spec () in
    let killed = ref None in
    let on_heartbeat ~worker ~pid =
      if !killed = None && pid > 0 then begin
        killed := Some worker;
        Unix.kill pid Sys.sigkill
      end
    in
    match
      Scheduler.run_processes ~runs_dir
        ~worker_cmd:(real_worker ~runs_dir)
        ~on_heartbeat ~workers:2 spec
    with
    | Error m -> Alcotest.failf "farm: %s" m
    | Ok r ->
      Alcotest.(check bool) "a worker was SIGKILLed mid-round" true
        (!killed <> None);
      Alcotest.(check int) "whole farm budget still dealt"
        spec.Spec.fs_total_execs r.fr_allocated;
      let restarts =
        counter r "farm.worker.1.restarts" + counter r "farm.worker.2.restarts"
      in
      Alcotest.(check bool) "the killed slot was restarted" true
        (restarts >= 1);
      List.iter
        (fun c ->
           check_store_dedup ~runs_dir c.Scheduler.fc_campaign.Store.sc_id)
        r.fr_campaigns)

(* A wedged worker (answers hello, then never heartbeats) must be
   detected by heartbeat age and quarantined; the other slot finishes
   the farm. *)
let test_processes_wedged_worker () =
  with_dir "farm-wedge" (fun runs_dir ->
    let spec = process_spec () in
    let worker_cmd k =
      if k = 1 then
        [| "/bin/sh"; "-c";
           {|echo '{"msg":"hello","worker":1,"pid":0}'; exec sleep 600|} |]
      else real_worker ~runs_dir k
    in
    match
      Scheduler.run_processes ~runs_dir ~worker_cmd ~heartbeat_timeout:1.0
        ~max_restarts:0 ~workers:2 spec
    with
    | Error m -> Alcotest.failf "farm: %s" m
    | Ok r ->
      Alcotest.(check int) "surviving worker dealt the whole budget"
        spec.Spec.fs_total_execs r.fr_allocated;
      Alcotest.(check bool) "wedged slot restarted then retired" true
        (counter r "farm.worker.1.restarts" >= 1);
      Alcotest.(check bool) "missed heartbeats reported" true
        (List.exists (fun w -> contains w "worker 1") r.fr_warnings))

(* A worker that talks garbage on its control channel is quarantined —
   the farm carries on instead of aborting. *)
let test_processes_malformed_worker () =
  with_dir "farm-garbage" (fun runs_dir ->
    let spec = process_spec () in
    let worker_cmd k =
      if k = 1 then
        [| "/bin/sh"; "-c"; "while :; do echo bogus; sleep 0.1; done" |]
      else real_worker ~runs_dir k
    in
    match
      Scheduler.run_processes ~runs_dir ~worker_cmd ~max_restarts:0 ~workers:2
        spec
    with
    | Error m -> Alcotest.failf "farm: %s" m
    | Ok r ->
      Alcotest.(check int) "farm completed despite the rogue worker"
        spec.Spec.fs_total_execs r.fr_allocated;
      Alcotest.(check bool) "malformed line reported" true
        (List.exists (fun w -> contains w "malformed") r.fr_warnings))

(* Equal-budget parity: the process backend must reach what the
   in-process farm reaches on the same spec — same budget dealt, ≥99%
   of the coverage keys — and merge without duplicate findings. *)
let test_processes_parity () =
  with_dir "farm-par-a" (fun dir_a ->
    with_dir "farm-par-b" (fun dir_b ->
      let spec = process_spec () in
      let inproc =
        match Scheduler.run ~runs_dir:dir_a spec with
        | Error m -> Alcotest.failf "in-process farm: %s" m
        | Ok r -> r
      in
      let procs =
        match
          Scheduler.run_processes ~runs_dir:dir_b
            ~worker_cmd:(real_worker ~runs_dir:dir_b) ~workers:2 spec
        with
        | Error m -> Alcotest.failf "process farm: %s" m
        | Ok r -> r
      in
      Alcotest.(check int) "equal budgets dealt" inproc.Scheduler.fr_allocated
        procs.Scheduler.fr_allocated;
      let keys r =
        List.fold_left
          (fun acc c -> acc + c.Scheduler.fc_coverage_keys)
          0 r.Scheduler.fr_campaigns
      in
      let ka = keys inproc and kb = keys procs in
      Alcotest.(check bool)
        (Printf.sprintf "process farm reaches >= 99%% of keys: %d vs %d" kb ka)
        true
        (kb * 100 >= 99 * ka);
      Alcotest.(check bool) "reload short-circuit hit at least once" true
        (counter procs "farm.store.reload_skipped" >= 1);
      List.iter
        (fun c ->
           check_store_dedup ~runs_dir:dir_b
             c.Scheduler.fc_campaign.Store.sc_id)
        procs.fr_campaigns))

let suite =
  [ Alcotest.test_case "roundtrip: meta" `Quick test_roundtrip_meta;
    Alcotest.test_case "roundtrip: corpus" `Quick test_roundtrip_corpus;
    Alcotest.test_case "roundtrip: affinities" `Quick
      test_roundtrip_affinities;
    Alcotest.test_case "roundtrip: skeletons" `Quick test_roundtrip_skeletons;
    Alcotest.test_case "roundtrip: virgin maps" `Quick test_roundtrip_maps;
    Alcotest.test_case "roundtrip: dedup keys" `Quick test_roundtrip_dedup;
    Alcotest.test_case "roundtrip: full snapshot" `Quick test_roundtrip_full;
    Alcotest.test_case "recovery: truncated section" `Quick
      test_recovery_truncated;
    Alcotest.test_case "recovery: bit flip" `Quick test_recovery_bitflip;
    Alcotest.test_case "recovery: missing section" `Quick
      test_recovery_missing_section;
    Alcotest.test_case "recovery: torn manifest" `Quick
      test_recovery_torn_manifest;
    Alcotest.test_case "recovery: stray temp files ignored" `Quick
      test_recovery_stray_tmp_ignored;
    Alcotest.test_case "recovery: all generations corrupt" `Quick
      test_recovery_all_corrupt;
    Alcotest.test_case "recovery: save after corruption" `Quick
      test_recovery_save_after_corruption;
    Alcotest.test_case "bandit: deterministic" `Quick
      test_bandit_deterministic;
    Alcotest.test_case "bandit: budget conservation" `Quick
      test_bandit_conservation;
    Alcotest.test_case "bandit: explores fresh arms" `Quick
      test_bandit_explores_fresh_arms;
    Alcotest.test_case "bandit: planted two arms" `Quick
      test_bandit_planted_two_arms;
    Alcotest.test_case "bandit: inactive arm" `Quick test_bandit_inactive_arm;
    Alcotest.test_case "spec: json roundtrip" `Quick test_spec_json_roundtrip;
    Alcotest.test_case "spec: unknown fuzzer rejected" `Quick
      test_spec_rejects_unknown_fuzzer;
    Alcotest.test_case "transport: command round-trip" `Quick
      test_transport_command_roundtrip;
    Alcotest.test_case "transport: message round-trip" `Quick
      test_transport_message_roundtrip;
    Alcotest.test_case "transport: garbage rejected" `Quick
      test_transport_rejects_garbage;
    Alcotest.test_case "lock: acquire/release" `Quick test_lock_basic;
    Alcotest.test_case "lock: with_exclusive" `Quick test_lock_with_exclusive;
    Alcotest.test_case "store: prune is lock-aware" `Quick
      test_prune_lock_aware;
    Alcotest.test_case "store: worker namespace promotion" `Quick
      test_worker_namespace_promote;
    Alcotest.test_case "store: promote conflict merges" `Quick
      test_promote_conflict_merges;
    Alcotest.test_case "store: discard worker generations" `Quick
      test_discard_worker_generations;
    Alcotest.test_case "farm: planted two campaigns" `Slow
      test_scheduler_planted;
    Alcotest.test_case "resume: golden parity" `Slow test_resume_golden;
    Alcotest.test_case "processes: SIGKILL recovery" `Slow
      test_processes_sigkill_recovery;
    Alcotest.test_case "processes: wedged worker quarantined" `Slow
      test_processes_wedged_worker;
    Alcotest.test_case "processes: malformed worker quarantined" `Slow
      test_processes_malformed_worker;
    Alcotest.test_case "processes: equal-budget parity" `Slow
      test_processes_parity ]
