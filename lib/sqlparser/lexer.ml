type token =
  | KW of string
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | CONCAT
  | TILDE
  | EOF

exception Lex_error of string * int

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "ASC";
    "DESC"; "LIMIT"; "OFFSET"; "DISTINCT"; "AS"; "UNION"; "ALL"; "INTERSECT";
    "EXCEPT"; "VALUES"; "TABLE"; "CREATE"; "TEMPORARY"; "IF"; "NOT"; "EXISTS";
    "INDEX"; "UNIQUE"; "ON"; "VIEW"; "MATERIALIZED"; "TRIGGER"; "BEFORE";
    "AFTER"; "INSERT"; "UPDATE"; "DELETE"; "FOR"; "EACH"; "ROW"; "BEGIN";
    "END"; "RULE"; "DO"; "INSTEAD"; "NOTHING"; "NOTIFY"; "SEQUENCE"; "START";
    "WITH"; "INCREMENT"; "SCHEMA"; "DATABASE"; "USER"; "IDENTIFIED"; "DROP";
    "ALTER"; "ADD"; "COLUMN"; "RENAME"; "TO"; "TYPE"; "TRUNCATE"; "COMMENT";
    "IS"; "INTO"; "IGNORE"; "REPLACE"; "SET"; "COPY"; "STDOUT"; "STDIN";
    "CSV"; "HEADER"; "LOAD"; "DATA"; "EXPLAIN"; "DESCRIBE"; "SHOW"; "TABLES";
    "COLUMNS"; "VARIABLES"; "STATUS"; "GRANT"; "REVOKE"; "ROLE"; "COMMIT";
    "ROLLBACK"; "SAVEPOINT"; "RELEASE"; "TRANSACTION"; "ISOLATION"; "LEVEL";
    "READ"; "COMMITTED"; "REPEATABLE"; "SERIALIZABLE"; "LOCK"; "UNLOCK";
    "GLOBAL"; "RESET"; "NAMES"; "PRAGMA"; "VACUUM"; "ANALYZE"; "REINDEX";
    "CHECKPOINT"; "FLUSH"; "PRIVILEGES"; "OPTIMIZE"; "CHECK"; "REPAIR";
    "LISTEN"; "UNLISTEN"; "DISCARD"; "TEMP"; "PLANS"; "PREPARE"; "EXECUTE";
    "DEALLOCATE"; "USE"; "HANDLER"; "OPEN"; "CLOSE"; "FIRST"; "NEXT";
    "SYSTEM"; "REFRESH"; "KILL"; "CLUSTER"; "NULL"; "TRUE"; "FALSE"; "AND";
    "OR"; "IN"; "BETWEEN"; "LIKE"; "CASE"; "WHEN"; "THEN"; "ELSE"; "CAST";
    "INT"; "INTEGER"; "FLOAT"; "TEXT"; "BOOL"; "BOOLEAN"; "VARCHAR"; "YEAR";
    "ZEROFILL"; "PRIMARY"; "KEY"; "DEFAULT"; "OVER"; "PARTITION"; "ROWS";
    "RANGE"; "UNBOUNDED"; "PRECEDING"; "FOLLOWING"; "CURRENT"; "JOIN";
    "LEFT"; "RIGHT"; "CROSS"; "INNER"; "WRITE" ]

let keyword_set : (string, unit) Hashtbl.t = Hashtbl.create 256
let () = List.iter (fun k -> Hashtbl.replace keyword_set k ()) keywords

let is_keyword s = Hashtbl.mem keyword_set (String.uppercase_ascii s)

(* Token-class coverage sites for the grammar map: one per keyword plus
   one per literal/identifier class. All registration happens here at
   module initialisation — [Sites] is a plain hashtable, so sites must
   never be registered from inside shard domains. *)
let kw_sites : (string, int) Hashtbl.t =
  let h = Hashtbl.create 256 in
  List.iter
    (fun k -> Hashtbl.replace h k (Coverage.Sites.register_in Coverage.Sites.grammar ("tok.kw." ^ k)))
    keywords;
  h

let site_ident = Coverage.Sites.register_in Coverage.Sites.grammar "tok.ident"
let site_int = Coverage.Sites.register_in Coverage.Sites.grammar "tok.int"
let site_float = Coverage.Sites.register_in Coverage.Sites.grammar "tok.float"
let site_string = Coverage.Sites.register_in Coverage.Sites.grammar "tok.string"
let site_punct = Coverage.Sites.register_in Coverage.Sites.grammar "tok.punct"

let token_site = function
  | KW k ->
    (* every KW comes from [keywords] by construction *)
    (match Hashtbl.find_opt kw_sites k with
     | Some s -> s
     | None -> site_punct)
  | IDENT _ -> site_ident
  | INT _ -> site_int
  | FLOAT _ -> site_float
  | STRING _ -> site_string
  | _ -> site_punct

let is_word_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_word_char c = is_word_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let pos = ref 0 in
  let peek off = if !pos + off < n then Some input.[!pos + off] else None in
  while !pos < n do
    let c = input.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && peek 1 = Some '-' then begin
      (* line comment *)
      while !pos < n && input.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_word_start c then begin
      let start = !pos in
      while !pos < n && is_word_char input.[!pos] do
        incr pos
      done;
      let word = String.sub input start (!pos - start) in
      let upper = String.uppercase_ascii word in
      if Hashtbl.mem keyword_set upper then emit (KW upper)
      else emit (IDENT (String.lowercase_ascii word))
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit input.[!pos] do
        incr pos
      done;
      let is_float = ref false in
      if !pos < n && input.[!pos] = '.' && (match peek 1 with
        | Some d -> is_digit d
        | None -> false)
      then begin
        is_float := true;
        incr pos;
        while !pos < n && is_digit input.[!pos] do
          incr pos
        done
      end;
      if !pos < n && (input.[!pos] = 'e' || input.[!pos] = 'E') then begin
        let save = !pos in
        incr pos;
        if !pos < n && (input.[!pos] = '+' || input.[!pos] = '-') then
          incr pos;
        if !pos < n && is_digit input.[!pos] then begin
          is_float := true;
          while !pos < n && is_digit input.[!pos] do
            incr pos
          done
        end
        else pos := save
      end;
      let text = String.sub input start (!pos - start) in
      if !is_float then emit (FLOAT (float_of_string text))
      else
        match int_of_string_opt text with
        | Some i -> emit (INT i)
        | None -> emit (FLOAT (float_of_string text))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      incr pos;
      let closed = ref false in
      while not !closed do
        if !pos >= n then raise (Lex_error ("unterminated string", !pos));
        let c = input.[!pos] in
        if c = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2
          end
          else begin
            closed := true;
            incr pos
          end
        else begin
          Buffer.add_char buf c;
          incr pos
        end
      done;
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !pos + 1 < n then String.sub input !pos 2 else "" in
      match two with
      | "<>" | "!=" ->
        emit NEQ;
        pos := !pos + 2
      | "<=" ->
        emit LE;
        pos := !pos + 2
      | ">=" ->
        emit GE;
        pos := !pos + 2
      | "||" ->
        emit CONCAT;
        pos := !pos + 2
      | _ ->
        (match c with
         | '(' -> emit LPAREN
         | ')' -> emit RPAREN
         | ',' -> emit COMMA
         | ';' -> emit SEMI
         | '.' -> emit DOT
         | '*' -> emit STAR
         | '+' -> emit PLUS
         | '-' -> emit MINUS
         | '/' -> emit SLASH
         | '%' -> emit PERCENT
         | '=' -> emit EQ
         | '<' -> emit LT
         | '>' -> emit GT
         | '~' -> emit TILDE
         | _ ->
           raise
             (Lex_error (Printf.sprintf "unexpected character %C" c, !pos)));
        incr pos
    end
  done;
  emit EOF;
  Array.of_list (List.rev !toks)

let pp_token fmt = function
  | KW k -> Format.fprintf fmt "KW %s" k
  | IDENT i -> Format.fprintf fmt "IDENT %s" i
  | INT n -> Format.fprintf fmt "INT %d" n
  | FLOAT f -> Format.fprintf fmt "FLOAT %g" f
  | STRING s -> Format.fprintf fmt "STRING %S" s
  | LPAREN -> Format.pp_print_string fmt "("
  | RPAREN -> Format.pp_print_string fmt ")"
  | COMMA -> Format.pp_print_string fmt ","
  | SEMI -> Format.pp_print_string fmt ";"
  | DOT -> Format.pp_print_string fmt "."
  | STAR -> Format.pp_print_string fmt "*"
  | PLUS -> Format.pp_print_string fmt "+"
  | MINUS -> Format.pp_print_string fmt "-"
  | SLASH -> Format.pp_print_string fmt "/"
  | PERCENT -> Format.pp_print_string fmt "%"
  | EQ -> Format.pp_print_string fmt "="
  | NEQ -> Format.pp_print_string fmt "<>"
  | LT -> Format.pp_print_string fmt "<"
  | LE -> Format.pp_print_string fmt "<="
  | GT -> Format.pp_print_string fmt ">"
  | GE -> Format.pp_print_string fmt ">="
  | CONCAT -> Format.pp_print_string fmt "||"
  | TILDE -> Format.pp_print_string fmt "~"
  | EOF -> Format.pp_print_string fmt "<eof>"
