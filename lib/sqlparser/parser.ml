open Sqlcore.Ast

exception Parse_error of string

(* Grammar-rule coverage sites, one per named production, registered
   once at module initialisation (sites must never be registered inside
   shard domains — the registry is a plain hashtable). When a parse
   carries a grammar bitmap, each production fired records both its rule
   cell and its (production, parent production) pair cell. *)
let site_root = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.root"
let site_testcase = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.testcase"
let site_stmt = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt"
let site_literal = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.literal"
let site_data_type = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.data_type"
let site_or = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.or"
let site_and = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.and"
let site_not = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.not"
let site_predicate = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.predicate"
let site_in = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.in"
let site_between = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.between"
let site_add = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.add"
let site_mul = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.mul"
let site_unary = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.unary"
let site_primary = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.primary"
let site_call = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.call"
let site_over = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.over"
let site_frame_bound = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.frame_bound"
let site_order_list = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.expr.order_list"
let site_query = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.query"
let site_query_atom = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.query.atom"
let site_select = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.query.select"
let site_proj = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.query.proj"
let site_from = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.query.from"
let site_from_atom = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.query.from_atom"
let site_col_def = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.col_def"
let site_trig_event = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.trig_event"
let site_priv = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.priv"
let site_privs = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.privs"
let site_literal_rows = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.literal_rows"
let site_create = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.create"
let site_create_table = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.create_table"
let site_create_index = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.create_index"
let site_create_view = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.create_view"
let site_drop = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.drop"
let site_alter = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.alter"
let site_insert = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.insert"
let site_update = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.update"
let site_delete = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.delete"
let site_copy = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.copy"
let site_with = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.with"
let site_with_body = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.with_body"
let site_set = Coverage.Sites.register_in Coverage.Sites.grammar "grammar.stmt.set"

type state = {
  toks : Lexer.token array;
  mutable pos : int;
  grammar : Coverage.Bitmap.t option;
  mutable parent : int;  (** site of the enclosing production *)
}

(* Production wrapper: a plain passthrough when no grammar bitmap is
   attached (the default, so edge-only parses cost one match), otherwise
   records the rule and rule-pair cells and scopes [parent] around the
   body. No restore on Parse_error — a failed parse abandons the state. *)
let prod st site f =
  match st.grammar with
  | None -> f ()
  | Some g ->
    let parent = st.parent in
    Coverage.Grammar.record g ~site ~parent;
    st.parent <- site;
    let r = f () in
    st.parent <- parent;
    r

let peek st = st.toks.(st.pos)

let peek_at st off =
  let i = st.pos + off in
  if i < Array.length st.toks then st.toks.(i) else Lexer.EOF

let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let fail st msg =
  let tok = Format.asprintf "%a" Lexer.pp_token (peek st) in
  raise
    (Parse_error (Printf.sprintf "%s (at token %d: %s)" msg st.pos tok))

let expect_kw st k =
  match next st with
  | Lexer.KW k' when k' = k -> ()
  | _ ->
    st.pos <- st.pos - 1;
    fail st (Printf.sprintf "expected %s" k)

let accept_kw st k =
  match peek st with
  | Lexer.KW k' when k' = k ->
    advance st;
    true
  | _ -> false

let expect_tok st tok what =
  if peek st = tok then advance st else fail st ("expected " ^ what)

let accept_tok st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let ident st =
  match next st with
  | Lexer.IDENT i -> i
  | _ ->
    st.pos <- st.pos - 1;
    fail st "expected identifier"

let int_lit st =
  match next st with
  | Lexer.INT n -> n
  | _ ->
    st.pos <- st.pos - 1;
    fail st "expected integer"

let string_lit st =
  match next st with
  | Lexer.STRING s -> s
  | _ ->
    st.pos <- st.pos - 1;
    fail st "expected string literal"

let parse_literal st =
  prod st site_literal @@ fun () ->
  match next st with
  | Lexer.INT n -> L_int n
  | Lexer.FLOAT f -> L_float f
  | Lexer.STRING s -> L_string s
  | Lexer.KW "NULL" -> L_null
  | Lexer.KW "TRUE" -> L_bool true
  | Lexer.KW "FALSE" -> L_bool false
  | Lexer.MINUS ->
    (match next st with
     | Lexer.INT n -> L_int (-n)
     | Lexer.FLOAT f -> L_float (-.f)
     | _ ->
       st.pos <- st.pos - 1;
       fail st "expected number after '-'")
  | _ ->
    st.pos <- st.pos - 1;
    fail st "expected literal"

let parse_data_type st =
  prod st site_data_type @@ fun () ->
  match next st with
  | Lexer.KW "INT" | Lexer.KW "INTEGER" -> T_int
  | Lexer.KW "FLOAT" -> T_float
  | Lexer.KW "TEXT" -> T_text
  | Lexer.KW "BOOL" | Lexer.KW "BOOLEAN" -> T_bool
  | Lexer.KW "YEAR" -> T_year
  | Lexer.KW "VARCHAR" ->
    expect_tok st Lexer.LPAREN "(";
    let n = int_lit st in
    expect_tok st Lexer.RPAREN ")";
    T_varchar n
  | _ ->
    st.pos <- st.pos - 1;
    fail st "expected data type"

let agg_of_name = function
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "avg" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | "group_concat" -> Some Group_concat
  | _ -> None

let win_of_name = function
  | "row_number" -> Some Row_number
  | "rank" -> Some Rank
  | "dense_rank" -> Some Dense_rank
  | "lead" -> Some Lead
  | "lag" -> Some Lag
  | "ntile" -> Some Ntile
  | _ -> None

let starts_query st =
  match peek st with
  | Lexer.KW "SELECT" | Lexer.KW "VALUES" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr_top st = parse_or st

and parse_or st =
  prod st site_or @@ fun () ->
  let lhs = ref (parse_and st) in
  while accept_kw st "OR" do
    let rhs = parse_and st in
    lhs := Binop (Or, !lhs, rhs)
  done;
  !lhs

and parse_and st =
  prod st site_and @@ fun () ->
  let lhs = ref (parse_not st) in
  while accept_kw st "AND" do
    let rhs = parse_not st in
    lhs := Binop (And, !lhs, rhs)
  done;
  !lhs

and parse_not st =
  prod st site_not @@ fun () ->
  if accept_kw st "NOT" then
    if peek st = Lexer.KW "EXISTS" then begin
      advance st;
      expect_tok st Lexer.LPAREN "(";
      let q = parse_query st in
      expect_tok st Lexer.RPAREN ")";
      Exists (q, true)
    end
    else Unop (Not, parse_not st)
  else parse_predicate st

and parse_predicate st =
  prod st site_predicate @@ fun () ->
  let e = ref (parse_add st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.EQ ->
      advance st;
      e := Binop (Eq, !e, parse_add st)
    | Lexer.NEQ ->
      advance st;
      e := Binop (Neq, !e, parse_add st)
    | Lexer.LT ->
      advance st;
      e := Binop (Lt, !e, parse_add st)
    | Lexer.LE ->
      advance st;
      e := Binop (Le, !e, parse_add st)
    | Lexer.GT ->
      advance st;
      e := Binop (Gt, !e, parse_add st)
    | Lexer.GE ->
      advance st;
      e := Binop (Ge, !e, parse_add st)
    | Lexer.KW "IS" ->
      advance st;
      let negated = accept_kw st "NOT" in
      expect_kw st "NULL";
      e := Is_null (!e, negated)
    | Lexer.KW "IN" ->
      advance st;
      e := parse_in st !e false
    | Lexer.KW "BETWEEN" ->
      advance st;
      e := parse_between st !e false
    | Lexer.KW "LIKE" ->
      advance st;
      e := Like { e = !e; pat = parse_add st; negated = false }
    | Lexer.KW "NOT" -> begin
        match peek_at st 1 with
        | Lexer.KW "IN" ->
          advance st;
          advance st;
          e := parse_in st !e true
        | Lexer.KW "BETWEEN" ->
          advance st;
          advance st;
          e := parse_between st !e true
        | Lexer.KW "LIKE" ->
          advance st;
          advance st;
          e := Like { e = !e; pat = parse_add st; negated = true }
        | _ -> continue := false
      end
    | _ -> continue := false
  done;
  !e

and parse_in st e negated =
  prod st site_in @@ fun () ->
  expect_tok st Lexer.LPAREN "(";
  if starts_query st then begin
    (* IN (SELECT ...): the subquery is the single item *)
    let q = parse_query st in
    expect_tok st Lexer.RPAREN ")";
    In_list { e; items = [ Subquery q ]; negated }
  end
  else begin
    let items = ref [ parse_expr_top st ] in
    while accept_tok st Lexer.COMMA do
      items := parse_expr_top st :: !items
    done;
    expect_tok st Lexer.RPAREN ")";
    In_list { e; items = List.rev !items; negated }
  end

and parse_between st e negated =
  prod st site_between @@ fun () ->
  let lo = parse_add st in
  expect_kw st "AND";
  let hi = parse_add st in
  Between { e; lo; hi; negated }

and parse_add st =
  prod st site_add @@ fun () ->
  let lhs = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PLUS ->
      advance st;
      lhs := Binop (Add, !lhs, parse_mul st)
    | Lexer.MINUS ->
      advance st;
      lhs := Binop (Sub, !lhs, parse_mul st)
    | Lexer.CONCAT ->
      advance st;
      lhs := Binop (Concat, !lhs, parse_mul st)
    | _ -> continue := false
  done;
  !lhs

and parse_mul st =
  prod st site_mul @@ fun () ->
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.STAR ->
      advance st;
      lhs := Binop (Mul, !lhs, parse_unary st)
    | Lexer.SLASH ->
      advance st;
      lhs := Binop (Div, !lhs, parse_unary st)
    | Lexer.PERCENT ->
      advance st;
      lhs := Binop (Mod, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  prod st site_unary @@ fun () ->
  match peek st with
  | Lexer.MINUS -> (
      advance st;
      (* fold negative numeric literals so that printed values round-trip *)
      match peek st with
      | Lexer.INT n ->
        advance st;
        Lit (L_int (-n))
      | Lexer.FLOAT f ->
        advance st;
        Lit (L_float (-.f))
      | _ -> Unop (Neg, parse_unary st))
  | Lexer.TILDE ->
    advance st;
    Unop (Bit_not, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  prod st site_primary @@ fun () ->
  match peek st with
  | Lexer.INT n ->
    advance st;
    Lit (L_int n)
  | Lexer.FLOAT f ->
    advance st;
    Lit (L_float f)
  | Lexer.STRING s ->
    advance st;
    Lit (L_string s)
  | Lexer.KW "NULL" ->
    advance st;
    Lit L_null
  | Lexer.KW "TRUE" ->
    advance st;
    Lit (L_bool true)
  | Lexer.KW "FALSE" ->
    advance st;
    Lit (L_bool false)
  | Lexer.KW "CASE" ->
    advance st;
    let whens = ref [] in
    while accept_kw st "WHEN" do
      let c = parse_expr_top st in
      expect_kw st "THEN";
      let v = parse_expr_top st in
      whens := (c, v) :: !whens
    done;
    let else_ = if accept_kw st "ELSE" then Some (parse_expr_top st) else None in
    expect_kw st "END";
    Case (List.rev !whens, else_)
  | Lexer.KW "CAST" ->
    advance st;
    expect_tok st Lexer.LPAREN "(";
    let e = parse_expr_top st in
    expect_kw st "AS";
    let dt = parse_data_type st in
    expect_tok st Lexer.RPAREN ")";
    Cast (e, dt)
  | Lexer.KW "EXISTS" ->
    advance st;
    expect_tok st Lexer.LPAREN "(";
    let q = parse_query st in
    expect_tok st Lexer.RPAREN ")";
    Exists (q, false)
  | Lexer.LPAREN ->
    advance st;
    if starts_query st then begin
      let q = parse_query st in
      expect_tok st Lexer.RPAREN ")";
      Subquery q
    end
    else begin
      let e = parse_expr_top st in
      expect_tok st Lexer.RPAREN ")";
      e
    end
  | Lexer.IDENT name ->
    advance st;
    (match peek st with
     | Lexer.LPAREN -> parse_call st name
     | Lexer.DOT ->
       advance st;
       let col = ident st in
       Col (Some name, col)
     | _ -> Col (None, name))
  | _ -> fail st "expected expression"

and parse_call st name =
  prod st site_call @@ fun () ->
  expect_tok st Lexer.LPAREN "(";
  match agg_of_name name with
  | Some fn ->
    if accept_tok st Lexer.STAR then begin
      expect_tok st Lexer.RPAREN ")";
      Agg (fn, false, None)
    end
    else begin
      let distinct = accept_kw st "DISTINCT" in
      let e = parse_expr_top st in
      expect_tok st Lexer.RPAREN ")";
      Agg (fn, distinct, Some e)
    end
  | None ->
    let args = ref [] in
    if peek st <> Lexer.RPAREN then begin
      args := [ parse_expr_top st ];
      while accept_tok st Lexer.COMMA do
        args := parse_expr_top st :: !args
      done
    end;
    expect_tok st Lexer.RPAREN ")";
    let args = List.rev !args in
    (match win_of_name name with
     | Some fn ->
       expect_kw st "OVER";
       expect_tok st Lexer.LPAREN "(";
       let over = parse_over st in
       expect_tok st Lexer.RPAREN ")";
       Win { fn; args; over }
     | None -> Fn (String.uppercase_ascii name, args))

and parse_over st =
  prod st site_over @@ fun () ->
  let partition_by =
    if accept_kw st "PARTITION" then begin
      expect_kw st "BY";
      let es = ref [ parse_expr_top st ] in
      while accept_tok st Lexer.COMMA do
        es := parse_expr_top st :: !es
      done;
      List.rev !es
    end
    else []
  in
  let w_order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      parse_order_list st
    end
    else []
  in
  let frame =
    match peek st with
    | Lexer.KW "ROWS" | Lexer.KW "RANGE" ->
      let f_kind =
        match next st with
        | Lexer.KW "ROWS" -> F_rows
        | _ -> F_range
      in
      expect_kw st "BETWEEN";
      let f_lo = parse_frame_bound st in
      expect_kw st "AND";
      let f_hi = parse_frame_bound st in
      Some { f_kind; f_lo; f_hi }
    | _ -> None
  in
  { partition_by; w_order_by; frame }

and parse_frame_bound st =
  prod st site_frame_bound @@ fun () ->
  match next st with
  | Lexer.KW "UNBOUNDED" ->
    (match next st with
     | Lexer.KW "PRECEDING" -> Unbounded_preceding
     | Lexer.KW "FOLLOWING" -> Unbounded_following
     | _ ->
       st.pos <- st.pos - 1;
       fail st "expected PRECEDING or FOLLOWING")
  | Lexer.KW "CURRENT" ->
    expect_kw st "ROW";
    Current_row
  | Lexer.INT n ->
    (match next st with
     | Lexer.KW "PRECEDING" -> Preceding n
     | Lexer.KW "FOLLOWING" -> Following n
     | _ ->
       st.pos <- st.pos - 1;
       fail st "expected PRECEDING or FOLLOWING")
  | _ ->
    st.pos <- st.pos - 1;
    fail st "expected frame bound"

and parse_order_list st =
  prod st site_order_list @@ fun () ->
  let item () =
    let e = parse_expr_top st in
    let dir =
      if accept_kw st "ASC" then Asc
      else if accept_kw st "DESC" then Desc
      else Asc
    in
    (e, dir)
  in
  let items = ref [ item () ] in
  while accept_tok st Lexer.COMMA do
    items := item () :: !items
  done;
  List.rev !items

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

and parse_query st =
  prod st site_query @@ fun () ->
  let lhs = ref (parse_query_atom st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.KW "UNION" ->
      advance st;
      let op = if accept_kw st "ALL" then Union_all else Union in
      lhs := Q_compound (!lhs, op, parse_query_atom st)
    | Lexer.KW "INTERSECT" ->
      advance st;
      lhs := Q_compound (!lhs, Intersect, parse_query_atom st)
    | Lexer.KW "EXCEPT" ->
      advance st;
      lhs := Q_compound (!lhs, Except, parse_query_atom st)
    | _ -> continue := false
  done;
  !lhs

and parse_query_atom st =
  prod st site_query_atom @@ fun () ->
  match peek st with
  | Lexer.KW "SELECT" -> Q_select (parse_select st)
  | Lexer.KW "VALUES" ->
    advance st;
    let row () =
      expect_tok st Lexer.LPAREN "(";
      let es = ref [ parse_expr_top st ] in
      while accept_tok st Lexer.COMMA do
        es := parse_expr_top st :: !es
      done;
      expect_tok st Lexer.RPAREN ")";
      List.rev !es
    in
    let rows = ref [ row () ] in
    while accept_tok st Lexer.COMMA do
      rows := row () :: !rows
    done;
    Q_values (List.rev !rows)
  | _ -> fail st "expected SELECT or VALUES"

and parse_select st =
  prod st site_select @@ fun () ->
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let projs = ref [ parse_proj st ] in
  while accept_tok st Lexer.COMMA do
    projs := parse_proj st :: !projs
  done;
  let from = if accept_kw st "FROM" then Some (parse_from st) else None in
  let where = if accept_kw st "WHERE" then Some (parse_expr_top st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let es = ref [ parse_expr_top st ] in
      while accept_tok st Lexer.COMMA do
        es := parse_expr_top st :: !es
      done;
      List.rev !es
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr_top st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      parse_order_list st
    end
    else []
  in
  let limit = if accept_kw st "LIMIT" then Some (int_lit st) else None in
  let offset = if accept_kw st "OFFSET" then Some (int_lit st) else None in
  { distinct; projs = List.rev !projs; from; where; group_by; having;
    order_by; limit; offset }

and parse_proj st =
  prod st site_proj @@ fun () ->
  match (peek st, peek_at st 1, peek_at st 2) with
  | Lexer.STAR, _, _ ->
    advance st;
    Star
  | Lexer.IDENT t, Lexer.DOT, Lexer.STAR ->
    advance st;
    advance st;
    advance st;
    Star_of t
  | _ ->
    let e = parse_expr_top st in
    let alias = if accept_kw st "AS" then Some (ident st) else None in
    Proj (e, alias)

and parse_from st =
  prod st site_from @@ fun () ->
  let lhs = ref (parse_from_atom st) in
  let continue = ref true in
  while !continue do
    let kind =
      match peek st with
      | Lexer.KW "JOIN" ->
        advance st;
        Some Inner
      | Lexer.KW "INNER" ->
        advance st;
        expect_kw st "JOIN";
        Some Inner
      | Lexer.KW "LEFT" ->
        advance st;
        expect_kw st "JOIN";
        Some Left
      | Lexer.KW "RIGHT" ->
        advance st;
        expect_kw st "JOIN";
        Some Right
      | Lexer.KW "CROSS" ->
        advance st;
        expect_kw st "JOIN";
        Some Cross
      | _ -> None
    in
    match kind with
    | None -> continue := false
    | Some kind ->
      let right = parse_from_atom st in
      let on = if accept_kw st "ON" then Some (parse_expr_top st) else None in
      lhs := From_join { left = !lhs; kind; right; on }
  done;
  !lhs

and parse_from_atom st =
  prod st site_from_atom @@ fun () ->
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    let alias = if accept_kw st "AS" then Some (ident st) else None in
    From_table { name; alias }
  | Lexer.LPAREN ->
    advance st;
    if starts_query st then begin
      let q = parse_query st in
      expect_tok st Lexer.RPAREN ")";
      expect_kw st "AS";
      let alias = ident st in
      From_subquery { q; alias }
    end
    else begin
      let f = parse_from st in
      expect_tok st Lexer.RPAREN ")";
      f
    end
  | _ -> fail st "expected table reference"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_col_def st =
  prod st site_col_def @@ fun () ->
  let col_name = ident st in
  let col_type = parse_data_type st in
  let not_null = ref false in
  let primary_key = ref false in
  let unique = ref false in
  let default = ref None in
  let zerofill = ref false in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.KW "ZEROFILL" ->
      advance st;
      zerofill := true
    | Lexer.KW "NOT" ->
      advance st;
      expect_kw st "NULL";
      not_null := true
    | Lexer.KW "PRIMARY" ->
      advance st;
      expect_kw st "KEY";
      primary_key := true
    | Lexer.KW "UNIQUE" ->
      advance st;
      unique := true
    | Lexer.KW "DEFAULT" ->
      advance st;
      default := Some (parse_literal st)
    | _ -> continue := false
  done;
  { col_name; col_type; not_null = !not_null; primary_key = !primary_key;
    unique = !unique; default = !default; zerofill = !zerofill }

let parse_trig_event st =
  prod st site_trig_event @@ fun () ->
  match next st with
  | Lexer.KW "INSERT" -> Ev_insert
  | Lexer.KW "UPDATE" -> Ev_update
  | Lexer.KW "DELETE" -> Ev_delete
  | _ ->
    st.pos <- st.pos - 1;
    fail st "expected INSERT, UPDATE or DELETE"

let parse_priv st =
  prod st site_priv @@ fun () ->
  match next st with
  | Lexer.KW "SELECT" -> P_select
  | Lexer.KW "INSERT" -> P_insert
  | Lexer.KW "UPDATE" -> P_update
  | Lexer.KW "DELETE" -> P_delete
  | Lexer.KW "ALL" -> P_all
  | _ ->
    st.pos <- st.pos - 1;
    fail st "expected privilege"

let parse_literal_rows st =
  prod st site_literal_rows @@ fun () ->
  let row () =
    expect_tok st Lexer.LPAREN "(";
    let ls = ref [ parse_literal st ] in
    while accept_tok st Lexer.COMMA do
      ls := parse_literal st :: !ls
    done;
    expect_tok st Lexer.RPAREN ")";
    List.rev !ls
  in
  let rows = ref [ row () ] in
  while accept_tok st Lexer.COMMA do
    rows := row () :: !rows
  done;
  List.rev !rows

let rec parse_stmt st =
  prod st site_stmt @@ fun () ->
  (* the head keyword names the statement kind: record its token-class
     site as a child of [stmt] so per-statement rule pairs exist without
     a site per match arm *)
  (match (st.grammar, peek st) with
   | Some g, (Lexer.KW _ as tok) ->
     Coverage.Grammar.record g ~site:(Lexer.token_site tok) ~parent:site_stmt
   | _ -> ());
  parse_stmt_body st

and parse_stmt_body st =
  match peek st with
  | Lexer.KW "CREATE" ->
    advance st;
    parse_create st
  | Lexer.KW "DROP" ->
    advance st;
    parse_drop st
  | Lexer.KW "ALTER" ->
    advance st;
    parse_alter st
  | Lexer.KW "RENAME" ->
    advance st;
    expect_kw st "TABLE";
    let pair () =
      let a = ident st in
      expect_kw st "TO";
      let b = ident st in
      (a, b)
    in
    let pairs = ref [ pair () ] in
    while accept_tok st Lexer.COMMA do
      pairs := pair () :: !pairs
    done;
    S_rename_table (List.rev !pairs)
  | Lexer.KW "TRUNCATE" ->
    advance st;
    let _ = accept_kw st "TABLE" in
    S_truncate (ident st)
  | Lexer.KW "COMMENT" ->
    advance st;
    expect_kw st "ON";
    expect_kw st "TABLE";
    let table = ident st in
    expect_kw st "IS";
    let comment = string_lit st in
    S_comment_on { table; comment }
  | Lexer.KW "INSERT" ->
    advance st;
    S_insert (parse_insert_body st)
  | Lexer.KW "REPLACE" ->
    advance st;
    S_replace (parse_insert_body st)
  | Lexer.KW "UPDATE" ->
    advance st;
    S_update (parse_update_body st)
  | Lexer.KW "DELETE" ->
    advance st;
    S_delete (parse_delete_body st)
  | Lexer.KW "COPY" ->
    advance st;
    parse_copy st
  | Lexer.KW "LOAD" ->
    advance st;
    expect_kw st "DATA";
    expect_kw st "INTO";
    let table = ident st in
    let rows =
      if accept_kw st "VALUES" then parse_literal_rows st else []
    in
    S_load_data { table; rows }
  | Lexer.KW "SELECT" | Lexer.KW "VALUES" -> S_select (parse_query st)
  | Lexer.KW "TABLE" ->
    advance st;
    S_table (ident st)
  | Lexer.KW "WITH" ->
    advance st;
    parse_with st
  | Lexer.KW "EXPLAIN" ->
    advance st;
    S_explain (parse_stmt st)
  | Lexer.KW "DESCRIBE" ->
    advance st;
    S_describe (ident st)
  | Lexer.KW "SHOW" ->
    advance st;
    (match next st with
     | Lexer.KW "TABLES" -> S_show Sh_tables
     | Lexer.KW "COLUMNS" ->
       expect_kw st "FROM";
       S_show (Sh_columns (ident st))
     | Lexer.KW "VARIABLES" -> S_show Sh_variables
     | Lexer.KW "STATUS" -> S_show Sh_status
     | _ ->
       st.pos <- st.pos - 1;
       fail st "expected TABLES, COLUMNS, VARIABLES or STATUS")
  | Lexer.KW "GRANT" ->
    advance st;
    let privs = parse_privs st in
    expect_kw st "ON";
    let table = ident st in
    expect_kw st "TO";
    let user = ident st in
    S_grant { privs; table; user }
  | Lexer.KW "REVOKE" ->
    advance st;
    let privs = parse_privs st in
    expect_kw st "ON";
    let table = ident st in
    expect_kw st "FROM";
    let user = ident st in
    S_revoke { privs; table; user }
  | Lexer.KW "SET" ->
    advance st;
    parse_set st
  | Lexer.KW "BEGIN" ->
    advance st;
    S_begin
  | Lexer.KW "COMMIT" ->
    advance st;
    S_commit
  | Lexer.KW "ROLLBACK" ->
    advance st;
    if accept_kw st "TO" then begin
      expect_kw st "SAVEPOINT";
      S_rollback_to (ident st)
    end
    else S_rollback
  | Lexer.KW "SAVEPOINT" ->
    advance st;
    S_savepoint (ident st)
  | Lexer.KW "RELEASE" ->
    advance st;
    expect_kw st "SAVEPOINT";
    S_release_savepoint (ident st)
  | Lexer.KW "LOCK" ->
    advance st;
    expect_kw st "TABLES";
    let item () =
      let t = ident st in
      let mode =
        match next st with
        | Lexer.KW "READ" -> Lk_read
        | Lexer.KW "WRITE" -> Lk_write
        | _ ->
          st.pos <- st.pos - 1;
          fail st "expected READ or WRITE"
      in
      (t, mode)
    in
    let items = ref [ item () ] in
    while accept_tok st Lexer.COMMA do
      items := item () :: !items
    done;
    S_lock_tables (List.rev !items)
  | Lexer.KW "UNLOCK" ->
    advance st;
    expect_kw st "TABLES";
    S_unlock_tables
  | Lexer.KW "RESET" ->
    advance st;
    S_reset_var (ident st)
  | Lexer.KW "PRAGMA" ->
    advance st;
    let name = ident st in
    let value =
      if accept_tok st Lexer.EQ then Some (parse_literal st) else None
    in
    S_pragma { name; value }
  | Lexer.KW "VACUUM" ->
    advance st;
    S_vacuum (opt_ident st)
  | Lexer.KW "ANALYZE" ->
    advance st;
    S_analyze (opt_ident st)
  | Lexer.KW "REINDEX" ->
    advance st;
    S_reindex (opt_ident st)
  | Lexer.KW "CHECKPOINT" ->
    advance st;
    S_checkpoint
  | Lexer.KW "FLUSH" ->
    advance st;
    (match next st with
     | Lexer.KW "TABLES" -> S_flush Fl_tables
     | Lexer.KW "STATUS" -> S_flush Fl_status
     | Lexer.KW "PRIVILEGES" -> S_flush Fl_privileges
     | _ ->
       st.pos <- st.pos - 1;
       fail st "expected TABLES, STATUS or PRIVILEGES")
  | Lexer.KW "OPTIMIZE" ->
    advance st;
    expect_kw st "TABLE";
    S_optimize (ident st)
  | Lexer.KW "CHECK" ->
    advance st;
    expect_kw st "TABLE";
    S_check_table (ident st)
  | Lexer.KW "REPAIR" ->
    advance st;
    expect_kw st "TABLE";
    S_repair (ident st)
  | Lexer.KW "NOTIFY" ->
    advance st;
    let channel = ident st in
    let payload =
      if accept_tok st Lexer.COMMA then Some (string_lit st) else None
    in
    S_notify { channel; payload }
  | Lexer.KW "LISTEN" ->
    advance st;
    S_listen (ident st)
  | Lexer.KW "UNLISTEN" ->
    advance st;
    S_unlisten (ident st)
  | Lexer.KW "DISCARD" ->
    advance st;
    (match next st with
     | Lexer.KW "ALL" -> S_discard Disc_all
     | Lexer.KW "TEMP" -> S_discard Disc_temp
     | Lexer.KW "PLANS" -> S_discard Disc_plans
     | _ ->
       st.pos <- st.pos - 1;
       fail st "expected ALL, TEMP or PLANS")
  | Lexer.KW "PREPARE" ->
    advance st;
    let name = ident st in
    expect_kw st "AS";
    let stmt = parse_stmt st in
    S_prepare { name; stmt }
  | Lexer.KW "EXECUTE" ->
    advance st;
    S_execute (ident st)
  | Lexer.KW "DEALLOCATE" ->
    advance st;
    S_deallocate (ident st)
  | Lexer.KW "USE" ->
    advance st;
    S_use (ident st)
  | Lexer.KW "DO" ->
    advance st;
    S_do (parse_expr_top st)
  | Lexer.KW "HANDLER" ->
    advance st;
    let table = ident st in
    (match next st with
     | Lexer.KW "OPEN" -> S_handler_open table
     | Lexer.KW "CLOSE" -> S_handler_close table
     | Lexer.KW "READ" ->
       (match next st with
        | Lexer.KW "FIRST" -> S_handler_read { table; dir = H_first }
        | Lexer.KW "NEXT" -> S_handler_read { table; dir = H_next }
        | _ ->
          st.pos <- st.pos - 1;
          fail st "expected FIRST or NEXT")
     | _ ->
       st.pos <- st.pos - 1;
       fail st "expected OPEN, READ or CLOSE")
  | Lexer.KW "KILL" ->
    advance st;
    S_kill (int_lit st)
  | Lexer.KW "CLUSTER" ->
    advance st;
    S_cluster (opt_ident st)
  | Lexer.KW "REFRESH" ->
    advance st;
    expect_kw st "MATERIALIZED";
    expect_kw st "VIEW";
    S_refresh_matview (ident st)
  | _ -> fail st "expected statement"

and opt_ident st =
  match peek st with
  | Lexer.IDENT i ->
    advance st;
    Some i
  | _ -> None

and parse_privs st =
  prod st site_privs @@ fun () ->
  let privs = ref [ parse_priv st ] in
  while accept_tok st Lexer.COMMA do
    privs := parse_priv st :: !privs
  done;
  List.rev !privs

and parse_create st =
  prod st site_create @@ fun () ->
  match next st with
  | Lexer.KW "TEMPORARY" ->
    expect_kw st "TABLE";
    parse_create_table st ~temp:true
  | Lexer.KW "TABLE" -> parse_create_table st ~temp:false
  | Lexer.KW "UNIQUE" ->
    expect_kw st "INDEX";
    parse_create_index st ~unique:true
  | Lexer.KW "INDEX" -> parse_create_index st ~unique:false
  | Lexer.KW "MATERIALIZED" ->
    expect_kw st "VIEW";
    parse_create_view st ~materialized:true
  | Lexer.KW "VIEW" -> parse_create_view st ~materialized:false
  | Lexer.KW "TRIGGER" ->
    let name = ident st in
    let timing =
      match next st with
      | Lexer.KW "BEFORE" -> Before
      | Lexer.KW "AFTER" -> After
      | _ ->
        st.pos <- st.pos - 1;
        fail st "expected BEFORE or AFTER"
    in
    let event = parse_trig_event st in
    expect_kw st "ON";
    let table = ident st in
    expect_kw st "FOR";
    expect_kw st "EACH";
    expect_kw st "ROW";
    let body =
      if accept_kw st "BEGIN" then begin
        let stmts = ref [] in
        while peek st <> Lexer.KW "END" do
          stmts := parse_stmt st :: !stmts;
          expect_tok st Lexer.SEMI ";"
        done;
        expect_kw st "END";
        List.rev !stmts
      end
      else [ parse_stmt st ]
    in
    S_create_trigger { name; timing; event; table; body }
  | Lexer.KW "RULE" ->
    let name = ident st in
    expect_kw st "AS";
    expect_kw st "ON";
    let event = parse_trig_event st in
    expect_kw st "TO";
    let table = ident st in
    expect_kw st "DO";
    let instead = accept_kw st "INSTEAD" in
    let action =
      match peek st with
      | Lexer.KW "NOTHING" ->
        advance st;
        Ra_nothing
      | Lexer.KW "NOTIFY" ->
        advance st;
        Ra_notify (ident st)
      | _ -> Ra_stmt (parse_stmt st)
    in
    S_create_rule { name; table; event; instead; action }
  | Lexer.KW "SEQUENCE" ->
    let name = ident st in
    let start =
      if accept_kw st "START" then begin
        expect_kw st "WITH";
        signed_int st
      end
      else 1
    in
    let step =
      if accept_kw st "INCREMENT" then begin
        expect_kw st "BY";
        signed_int st
      end
      else 1
    in
    S_create_sequence { name; start; step }
  | Lexer.KW "SCHEMA" -> S_create_schema (ident st)
  | Lexer.KW "DATABASE" -> S_create_database (ident st)
  | Lexer.KW "USER" ->
    let user = ident st in
    expect_kw st "IDENTIFIED";
    expect_kw st "BY";
    let password = string_lit st in
    S_create_user { user; password }
  | _ ->
    st.pos <- st.pos - 1;
    fail st "expected object kind after CREATE"

and signed_int st =
  if accept_tok st Lexer.MINUS then -int_lit st else int_lit st

and parse_create_table st ~temp =
  prod st site_create_table @@ fun () ->
  let if_not_exists =
    if accept_kw st "IF" then begin
      expect_kw st "NOT";
      expect_kw st "EXISTS";
      true
    end
    else false
  in
  let name = ident st in
  expect_tok st Lexer.LPAREN "(";
  let cols = ref [ parse_col_def st ] in
  while accept_tok st Lexer.COMMA do
    cols := parse_col_def st :: !cols
  done;
  expect_tok st Lexer.RPAREN ")";
  S_create_table { temp; if_not_exists; name; cols = List.rev !cols }

and parse_create_index st ~unique =
  prod st site_create_index @@ fun () ->
  let name = ident st in
  expect_kw st "ON";
  let table = ident st in
  expect_tok st Lexer.LPAREN "(";
  let cols = ref [ ident st ] in
  while accept_tok st Lexer.COMMA do
    cols := ident st :: !cols
  done;
  expect_tok st Lexer.RPAREN ")";
  S_create_index { unique; name; table; cols = List.rev !cols }

and parse_create_view st ~materialized =
  prod st site_create_view @@ fun () ->
  let name = ident st in
  expect_kw st "AS";
  let query = parse_query st in
  S_create_view { materialized; name; query }

and parse_drop st =
  prod st site_drop @@ fun () ->
  let if_exists_after st =
    if accept_kw st "IF" then begin
      expect_kw st "EXISTS";
      true
    end
    else false
  in
  match next st with
  | Lexer.KW "TABLE" ->
    let ie = if_exists_after st in
    S_drop { target = D_table (ident st); if_exists = ie }
  | Lexer.KW "INDEX" ->
    let ie = if_exists_after st in
    S_drop { target = D_index (ident st); if_exists = ie }
  | Lexer.KW "VIEW" ->
    let ie = if_exists_after st in
    S_drop { target = D_view (ident st); if_exists = ie }
  | Lexer.KW "TRIGGER" ->
    let ie = if_exists_after st in
    S_drop { target = D_trigger (ident st); if_exists = ie }
  | Lexer.KW "RULE" ->
    let ie = if_exists_after st in
    let name = ident st in
    expect_kw st "ON";
    let table = ident st in
    S_drop { target = D_rule (name, table); if_exists = ie }
  | Lexer.KW "SEQUENCE" ->
    let ie = if_exists_after st in
    S_drop { target = D_sequence (ident st); if_exists = ie }
  | Lexer.KW "SCHEMA" ->
    let ie = if_exists_after st in
    S_drop { target = D_schema (ident st); if_exists = ie }
  | Lexer.KW "DATABASE" ->
    let ie = if_exists_after st in
    S_drop { target = D_database (ident st); if_exists = ie }
  | Lexer.KW "USER" ->
    let ie = if_exists_after st in
    S_drop { target = D_user (ident st); if_exists = ie }
  | _ ->
    st.pos <- st.pos - 1;
    fail st "expected object kind after DROP"

and parse_alter st =
  prod st site_alter @@ fun () ->
  match next st with
  | Lexer.KW "TABLE" ->
    let table = ident st in
    let action =
      match next st with
      | Lexer.KW "ADD" ->
        expect_kw st "COLUMN";
        Add_column (parse_col_def st)
      | Lexer.KW "DROP" ->
        expect_kw st "COLUMN";
        Drop_column (ident st)
      | Lexer.KW "RENAME" ->
        if accept_kw st "TO" then Rename_to (ident st)
        else begin
          expect_kw st "COLUMN";
          let a = ident st in
          expect_kw st "TO";
          let b = ident st in
          Rename_column (a, b)
        end
      | Lexer.KW "ALTER" ->
        expect_kw st "COLUMN";
        let c = ident st in
        expect_kw st "TYPE";
        Alter_column_type (c, parse_data_type st)
      | _ ->
        st.pos <- st.pos - 1;
        fail st "expected ALTER TABLE action"
    in
    S_alter_table (table, action)
  | Lexer.KW "SEQUENCE" ->
    let name = ident st in
    expect_kw st "INCREMENT";
    expect_kw st "BY";
    S_alter_sequence { name; step = signed_int st }
  | Lexer.KW "USER" ->
    let user = ident st in
    expect_kw st "IDENTIFIED";
    expect_kw st "BY";
    S_alter_user { user; password = string_lit st }
  | Lexer.KW "SYSTEM" -> S_alter_system (ident st)
  | _ ->
    st.pos <- st.pos - 1;
    fail st "expected TABLE, SEQUENCE, USER or SYSTEM after ALTER"

and parse_insert_body st =
  prod st site_insert @@ fun () ->
  let i_ignore = accept_kw st "IGNORE" in
  expect_kw st "INTO";
  let i_table = ident st in
  let i_cols =
    if peek st = Lexer.LPAREN then begin
      advance st;
      let cols = ref [ ident st ] in
      while accept_tok st Lexer.COMMA do
        cols := ident st :: !cols
      done;
      expect_tok st Lexer.RPAREN ")";
      List.rev !cols
    end
    else []
  in
  let i_source =
    if accept_kw st "VALUES" then begin
      let row () =
        expect_tok st Lexer.LPAREN "(";
        let es = ref [ parse_expr_top st ] in
        while accept_tok st Lexer.COMMA do
          es := parse_expr_top st :: !es
        done;
        expect_tok st Lexer.RPAREN ")";
        List.rev !es
      in
      let rows = ref [ row () ] in
      while accept_tok st Lexer.COMMA do
        rows := row () :: !rows
      done;
      Src_values (List.rev !rows)
    end
    else Src_query (parse_query st)
  in
  { i_table; i_cols; i_source; i_ignore }

and parse_update_body st =
  prod st site_update @@ fun () ->
  let u_table = ident st in
  expect_kw st "SET";
  let set () =
    let c = ident st in
    expect_tok st Lexer.EQ "=";
    let e = parse_expr_top st in
    (c, e)
  in
  let sets = ref [ set () ] in
  while accept_tok st Lexer.COMMA do
    sets := set () :: !sets
  done;
  let u_where = if accept_kw st "WHERE" then Some (parse_expr_top st) else None in
  let u_limit = if accept_kw st "LIMIT" then Some (int_lit st) else None in
  { u_table; u_sets = List.rev !sets; u_where; u_limit }

and parse_delete_body st =
  prod st site_delete @@ fun () ->
  expect_kw st "FROM";
  let d_table = ident st in
  let d_where = if accept_kw st "WHERE" then Some (parse_expr_top st) else None in
  let d_limit = if accept_kw st "LIMIT" then Some (int_lit st) else None in
  { d_table; d_where; d_limit }

and parse_copy st =
  prod st site_copy @@ fun () ->
  if peek st = Lexer.LPAREN then begin
    advance st;
    let q = parse_query st in
    expect_tok st Lexer.RPAREN ")";
    expect_kw st "TO";
    expect_kw st "STDOUT";
    let header = parse_csv_header st in
    S_copy_to { src = Cs_query q; header }
  end
  else begin
    let table = ident st in
    match next st with
    | Lexer.KW "TO" ->
      expect_kw st "STDOUT";
      let header = parse_csv_header st in
      S_copy_to { src = Cs_table table; header }
    | Lexer.KW "FROM" ->
      expect_kw st "STDIN";
      let rows =
        if peek st = Lexer.LPAREN then parse_literal_rows st else []
      in
      S_copy_from { table; rows }
    | _ ->
      st.pos <- st.pos - 1;
      fail st "expected TO or FROM in COPY"
  end

and parse_csv_header st =
  if accept_kw st "CSV" then begin
    expect_kw st "HEADER";
    true
  end
  else false

and parse_with st =
  prod st site_with @@ fun () ->
  let cte () =
    let cte_name = ident st in
    expect_kw st "AS";
    expect_tok st Lexer.LPAREN "(";
    let body = parse_with_body st in
    expect_tok st Lexer.RPAREN ")";
    { cte_name; cte_body = body }
  in
  let ctes = ref [ cte () ] in
  while accept_tok st Lexer.COMMA do
    ctes := cte () :: !ctes
  done;
  let body = parse_with_body st in
  S_with { ctes = List.rev !ctes; body }

and parse_with_body st =
  prod st site_with_body @@ fun () ->
  match peek st with
  | Lexer.KW "SELECT" | Lexer.KW "VALUES" -> W_query (parse_query st)
  | Lexer.KW "INSERT" ->
    advance st;
    W_insert (parse_insert_body st)
  | Lexer.KW "UPDATE" ->
    advance st;
    W_update (parse_update_body st)
  | Lexer.KW "DELETE" ->
    advance st;
    W_delete (parse_delete_body st)
  | _ -> fail st "expected query or DML in WITH body"

and parse_set st =
  prod st site_set @@ fun () ->
  match peek st with
  | Lexer.KW "ROLE" ->
    advance st;
    S_set_role (ident st)
  | Lexer.KW "TRANSACTION" ->
    advance st;
    expect_kw st "ISOLATION";
    expect_kw st "LEVEL";
    (match next st with
     | Lexer.KW "READ" ->
       expect_kw st "COMMITTED";
       S_set_transaction Read_committed
     | Lexer.KW "REPEATABLE" ->
       expect_kw st "READ";
       S_set_transaction Repeatable_read
     | Lexer.KW "SERIALIZABLE" -> S_set_transaction Serializable
     | _ ->
       st.pos <- st.pos - 1;
       fail st "expected isolation level")
  | Lexer.KW "GLOBAL" ->
    advance st;
    let name = ident st in
    expect_tok st Lexer.EQ "=";
    S_set_var { global = true; name; value = parse_literal st }
  | Lexer.KW "NAMES" ->
    advance st;
    S_set_names (ident st)
  | Lexer.IDENT _ ->
    let name = ident st in
    expect_tok st Lexer.EQ "=";
    S_set_var { global = false; name; value = parse_literal st }
  | _ -> fail st "expected SET target"

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let with_state ?grammar input f =
  try
    let toks = Lexer.tokenize input in
    (* lexer contribution: every token class fired by the input, as
       children of the root production *)
    (match grammar with
     | Some g ->
       Array.iter
         (fun tok ->
            if tok <> Lexer.EOF then
              Coverage.Grammar.record g ~site:(Lexer.token_site tok)
                ~parent:site_root)
         toks
     | None -> ());
    let st = { toks; pos = 0; grammar; parent = site_root } in
    Ok (f st)
  with
  | Parse_error msg -> Error msg
  | Lexer.Lex_error (msg, pos) ->
    Error (Printf.sprintf "lex error: %s at offset %d" msg pos)

let finish_eof st =
  if peek st <> Lexer.EOF then fail st "trailing input"

let parse_testcase_state st =
  prod st site_testcase @@ fun () ->
  let stmts = ref [] in
  while peek st = Lexer.SEMI do
    advance st
  done;
  while peek st <> Lexer.EOF do
    stmts := parse_stmt st :: !stmts;
    if peek st <> Lexer.EOF then expect_tok st Lexer.SEMI ";";
    while peek st = Lexer.SEMI do
      advance st
    done
  done;
  List.rev !stmts

let parse_testcase ?grammar input =
  with_state ?grammar input parse_testcase_state

let parse_stmt_state st =
  let s = parse_stmt st in
  let _ = accept_tok st Lexer.SEMI in
  finish_eof st;
  s

let parse_stmt ?grammar input = with_state ?grammar input parse_stmt_state

let parse_expr ?grammar input =
  with_state ?grammar input (fun st ->
      let e = parse_expr_top st in
      finish_eof st;
      e)

let parse_testcase_exn ?grammar input =
  match parse_testcase ?grammar input with
  | Ok tc -> tc
  | Error msg -> raise (Parse_error msg)

let parse_stmt_exn ?grammar input =
  match parse_stmt ?grammar input with
  | Ok s -> s
  | Error msg -> raise (Parse_error msg)
