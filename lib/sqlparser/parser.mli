(** Recursive-descent SQL parser covering the whole {!Sqlcore.Ast}.

    The grammar is the language produced by {!Sqlcore.Sql_printer}, plus the
    usual conveniences (operator precedence without mandatory parentheses,
    optional [ASC], [TRUNCATE] without [TABLE], line comments, ...). The
    paper uses its AST parser both to harvest statement structures from
    seeds and to re-validate instantiated test cases; this module plays the
    same role.

    Every entry point takes an optional [?grammar] bitmap. When present,
    each production fired during the parse records its rule cell and its
    (production × parent production) pair cell via
    {!Coverage.Grammar.record} — the grammar-coverage feedback channel —
    and the lexer contributes one token-class site per token. Without
    [?grammar] the parse is exactly the pre-instrumentation one. *)

exception Parse_error of string

val parse_testcase :
  ?grammar:Coverage.Bitmap.t -> string ->
  (Sqlcore.Ast.testcase, string) result
(** Parse a [';']-separated sequence of statements. *)

val parse_stmt :
  ?grammar:Coverage.Bitmap.t -> string -> (Sqlcore.Ast.stmt, string) result
(** Parse a single statement (an optional trailing [';'] is accepted). *)

val parse_expr :
  ?grammar:Coverage.Bitmap.t -> string -> (Sqlcore.Ast.expr, string) result
(** Parse a stand-alone expression (for tests and tools). *)

val parse_testcase_exn :
  ?grammar:Coverage.Bitmap.t -> string -> Sqlcore.Ast.testcase
(** @raise Parse_error on malformed input. *)

val parse_stmt_exn : ?grammar:Coverage.Bitmap.t -> string -> Sqlcore.Ast.stmt
