(** Hand-written SQL lexer.

    Keywords are recognised case-insensitively and normalised to upper
    case; everything wordy that is not a keyword (including function names
    such as [COUNT] or [ABS]) is an {!IDENT}. String literals use single
    quotes with [''] escaping. Line comments ([-- ...]) are skipped. *)

type token =
  | KW of string      (** canonical upper-case keyword *)
  | IDENT of string   (** identifier, lower-cased *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | CONCAT            (** [||] *)
  | TILDE
  | EOF

exception Lex_error of string * int
(** Message and byte offset. *)

val tokenize : string -> token array
(** Tokenize a whole input; the array always ends with {!EOF}.
    Raises {!Lex_error} on malformed input. *)

val is_keyword : string -> bool
(** Case-insensitive membership in the keyword set. *)

val token_site : token -> int
(** The token's class site for the grammar coverage map — one
    [tok.kw.*] site per keyword, one site per literal/identifier class,
    one shared [tok.punct] site for punctuation. All sites are
    registered at module initialisation, never during tokenizing, so
    parses running inside shard domains only read the registry. *)

val pp_token : Format.formatter -> token -> unit
