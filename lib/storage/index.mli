(** Ordered multimap from composite value keys to row ids — the backing
    structure for secondary indexes and uniqueness enforcement. *)

type t

val create : unique:bool -> t

val unique : t -> bool

val add : t -> Value.t list -> int -> [ `Ok | `Dup of int ]
(** Insert a (key, rowid) pair. On a unique index, a key that is already
    present (and contains no NULL component) yields [`Dup existing_rowid]
    and the index is unchanged. NULL components never collide, matching
    SQL unique-constraint semantics. *)

val remove : t -> Value.t list -> int -> unit

val find : t -> Value.t list -> int list
(** Row ids with exactly this key. *)

val find_range :
  t -> lo:Value.t list option -> hi:Value.t list option -> int list
(** Row ids whose key is within [lo..hi] (inclusive, lexicographic). *)

val length : t -> int
(** Number of distinct keys. *)

val clear : t -> unit

val copy : t -> t
(** Independent copy: mutations of either side never affect the other.
    O(1) — the underlying map is persistent. *)
