(** In-memory heap table: schema plus rows with stable row ids.

    Constraint checking (NOT NULL, PRIMARY KEY, UNIQUE) is performed by the
    engine's executor so that it can fire coverage probes and honour
    [INSERT IGNORE]; this module is plain storage with schema-change
    primitives. *)

type col = {
  c_name : string;
  c_type : Sqlcore.Ast.data_type;
  c_not_null : bool;
  c_primary : bool;
  c_unique : bool;
  c_default : Value.t option;
  c_zerofill : bool;
}

type t

val create : name:string -> temp:bool -> col list -> t

val col_of_def : Sqlcore.Ast.col_def -> col

val name : t -> string

val set_name : t -> string -> unit

val is_temp : t -> bool

val cols : t -> col array

val col_index : t -> string -> int option
(** Position of a column by name. *)

val arity : t -> int

val row_count : t -> int

val insert : t -> Value.t array -> int
(** Append a row (already coerced); returns its fresh rowid. *)

val last_rowid : t -> int
(** Rowid handed out by the most recent {!insert}, [-1] before any.
    Monotonic — deletes never reuse ids — which is what the wire
    protocol's last-insert-id field reports. *)

val find_row : t -> int -> Value.t array option

val update_row : t -> int -> Value.t array -> unit

val delete_rows : t -> (int -> bool) -> int
(** Delete rows whose rowid satisfies the predicate; returns the count. *)

val truncate : t -> int
(** Remove all rows; returns how many were removed. *)

val iter : (int -> Value.t array -> unit) -> t -> unit
(** Iterate (rowid, row) in insertion order. *)

val to_rows : t -> (int * Value.t array) list

val add_column : t -> col -> unit
(** Existing rows get the column's default (or NULL). *)

val drop_column : t -> int -> unit
(** Drop by position, rewriting all rows. *)

val rename_column : t -> int -> string -> unit

val change_column_type : t -> int -> Sqlcore.Ast.data_type -> unit
(** Re-coerces the column in every row; values that fail coercion become
    NULL. *)

val copy : t -> t
(** Independent copy used for transaction and engine snapshots. O(1):
    rows live in a persistent map, so both sides share the row storage
    and later mutations of either side only rebind their own root. *)

val deep_copy : t -> t
(** Physical copy sharing nothing with the source — the pre-refactor
    [copy] semantics. O(rows); only the REPRO_COW bench ablation and
    the equivalence tests should need it. *)

val rows_root_eq : t -> t -> bool
(** Whether two tables share the same row-storage root (physical
    equality of the persistent map). [true] guarantees the row sets are
    identical; used by snapshot size accounting to cost shared state at
    zero. *)
