open Reprutil

type col = {
  c_name : string;
  c_type : Sqlcore.Ast.data_type;
  c_not_null : bool;
  c_primary : bool;
  c_unique : bool;
  c_default : Value.t option;
  c_zerofill : bool;
}

(* Rows live in a persistent map keyed by rowid. Rowids are assigned
   monotonically and never reused (truncate does not reset
   [next_rowid]), so ascending key order IS insertion order — [iter]
   and [to_rows] preserve the ordering the old Vec-backed storage had.
   The executor never mutates a stored row array in place (updates
   build a fresh array), so [copy] can share both the map root and the
   row arrays: snapshots are O(1) and later mutations of either side
   only rebind their own [t_rows] field. *)
type t = {
  mutable t_name : string;
  t_temp : bool;
  mutable t_cols : col array;
  mutable t_rows : Value.t array Imap.t;
  mutable next_rowid : int;
}

let create ~name ~temp cols =
  { t_name = name; t_temp = temp; t_cols = Array.of_list cols;
    t_rows = Imap.empty; next_rowid = 0 }

let col_of_def (d : Sqlcore.Ast.col_def) =
  { c_name = d.col_name;
    c_type = d.col_type;
    c_not_null = d.not_null || d.primary_key;
    c_primary = d.primary_key;
    c_unique = d.unique || d.primary_key;
    c_default = Option.map Value.of_literal d.default;
    c_zerofill = d.zerofill }

let name t = t.t_name

let set_name t n = t.t_name <- n

let is_temp t = t.t_temp

let cols t = t.t_cols

let col_index t name =
  let n = Array.length t.t_cols in
  let rec loop i =
    if i >= n then None
    else if String.equal t.t_cols.(i).c_name name then Some i
    else loop (i + 1)
  in
  loop 0

let arity t = Array.length t.t_cols

let row_count t = Imap.cardinal t.t_rows

let insert t row =
  let id = t.next_rowid in
  t.next_rowid <- id + 1;
  t.t_rows <- Imap.add id row t.t_rows;
  id

let last_rowid t = t.next_rowid - 1

let find_row t rowid = Imap.find_opt rowid t.t_rows

let update_row t rowid row =
  if Imap.mem rowid t.t_rows then t.t_rows <- Imap.add rowid row t.t_rows

let delete_rows t pred =
  let before = Imap.cardinal t.t_rows in
  let kept = Imap.filter (fun id _ -> not (pred id)) t.t_rows in
  let deleted = before - Imap.cardinal kept in
  if deleted > 0 then t.t_rows <- kept;
  deleted

let truncate t =
  let n = Imap.cardinal t.t_rows in
  t.t_rows <- Imap.empty;
  n

let iter f t = Imap.iter f t.t_rows

let to_rows t = Imap.bindings t.t_rows

let rows_root_eq a b = Imap.root_eq a.t_rows b.t_rows

let add_column t col =
  t.t_cols <- Array.append t.t_cols [| col |];
  let filler = Option.value ~default:Value.Null col.c_default in
  t.t_rows <- Imap.map (fun row -> Array.append row [| filler |]) t.t_rows

let drop_column t pos =
  let keep_cols =
    Array.of_list
      (List.filteri (fun i _ -> i <> pos) (Array.to_list t.t_cols))
  in
  t.t_cols <- keep_cols;
  t.t_rows <-
    Imap.map
      (fun row ->
         Array.of_list
           (List.filteri (fun j _ -> j <> pos) (Array.to_list row)))
      t.t_rows

let rename_column t pos name =
  let cols = Array.copy t.t_cols in
  cols.(pos) <- { cols.(pos) with c_name = name };
  t.t_cols <- cols

let copy t =
  { t_name = t.t_name; t_temp = t.t_temp; t_cols = t.t_cols;
    t_rows = t.t_rows; next_rowid = t.next_rowid }

(* Pre-refactor physical copy, kept for the REPRO_COW bench ablation
   (and as the reference implementation in the equivalence tests):
   rebuilds the row map with fresh arrays so nothing is shared. *)
let deep_copy t =
  { t_name = t.t_name; t_temp = t.t_temp; t_cols = Array.copy t.t_cols;
    t_rows = Imap.map Array.copy t.t_rows; next_rowid = t.next_rowid }

let change_column_type t pos dt =
  let cols = Array.copy t.t_cols in
  cols.(pos) <- { cols.(pos) with c_type = dt };
  t.t_cols <- cols;
  t.t_rows <-
    Imap.map
      (fun row ->
         let row = Array.copy row in
         (row.(pos) <-
            (match Value.coerce row.(pos) dt with
             | Ok v -> v
             | Error _ -> Value.Null));
         row)
      t.t_rows
