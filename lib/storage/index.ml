module Key = struct
  type t = Value.t list

  let compare a b =
    let rec loop a b =
      match (a, b) with
      | [], [] -> 0
      | [], _ -> -1
      | _, [] -> 1
      | x :: xs, y :: ys ->
        let c = Value.compare_total x y in
        if c <> 0 then c else loop xs ys
    in
    loop a b
end

module M = Map.Make (Key)

type t = { uniq : bool; mutable map : int list M.t }

let create ~unique = { uniq = unique; map = M.empty }

let unique t = t.uniq

let has_null key = List.exists (fun v -> v = Value.Null) key

let add t key rowid =
  match M.find_opt key t.map with
  | Some (existing :: _) when t.uniq && not (has_null key) ->
    `Dup existing
  | Some ids ->
    t.map <- M.add key (rowid :: ids) t.map;
    `Ok
  | None ->
    t.map <- M.add key [ rowid ] t.map;
    `Ok

let remove t key rowid =
  match M.find_opt key t.map with
  | None -> ()
  | Some ids -> (
      match List.filter (fun id -> id <> rowid) ids with
      | [] -> t.map <- M.remove key t.map
      | ids -> t.map <- M.add key ids t.map)

let find t key = match M.find_opt key t.map with None -> [] | Some ids -> ids

let find_range t ~lo ~hi =
  let in_lo key =
    match lo with None -> true | Some lo -> Key.compare key lo >= 0
  in
  let in_hi key =
    match hi with None -> true | Some hi -> Key.compare key hi <= 0
  in
  M.fold
    (fun key ids acc -> if in_lo key && in_hi key then ids @ acc else acc)
    t.map []

let length t = M.cardinal t.map

let clear t = t.map <- M.empty

(* The map is persistent, so an independent copy is just a new record
   holding the same root — later [add]/[remove] on either side rebind
   their own [map] field without disturbing the other. *)
let copy t = { uniq = t.uniq; map = t.map }
