type t =
  | Null
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Text x, Text y -> String.equal x y
  | Bool x, Bool y -> x = y
  | (Null | Int _ | Float _ | Text _ | Bool _), _ -> false

let num_of = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Null | Text _ -> None

let text_of = function
  | Text s -> s
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%.17g" f
  | Bool true -> "1"
  | Bool false -> "0"
  | Null -> ""

let compare_sql a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Text x, Text y -> Some (String.compare x y)
  | _ -> (
      match (num_of a, num_of b) with
      | Some x, Some y -> Some (Float.compare x y)
      | _ ->
        (* Mixed text/number: compare text forms, MySQL-ish affinity. *)
        Some (String.compare (text_of a) (text_of b)))

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Text _ -> 3

let compare_total a b =
  let ra = rank a and rb = rank b in
  if ra <> rb then Int.compare ra rb
  else
    match (a, b) with
    | Null, Null -> 0
    | Bool x, Bool y -> Bool.compare x y
    | Text x, Text y -> String.compare x y
    | _ -> (
        match (num_of a, num_of b) with
        | Some x, Some y -> Float.compare x y
        | _ -> 0)

let is_truthy = function
  | Null -> false
  | Bool b -> b
  | Int n -> n <> 0
  | Float f -> f <> 0.0
  | Text s -> s <> ""

let type_name = function
  | Null -> "NULL"
  | Int _ -> "INT"
  | Float _ -> "FLOAT"
  | Text _ -> "TEXT"
  | Bool _ -> "BOOL"

let int_of_text s =
  (* Leading-numeric-prefix parse, like MySQL's lax string-to-number. *)
  let n = String.length s in
  let rec scan i =
    if i < n && (s.[i] >= '0' && s.[i] <= '9') then scan (i + 1) else i
  in
  let start = if n > 0 && (s.[0] = '-' || s.[0] = '+') then 1 else 0 in
  let stop = scan start in
  if stop = start then 0
  else
    match int_of_string (String.sub s 0 stop) with
    | v -> v
    | exception Failure _ ->
      (* Digit run overflows the native int, e.g. a 25-digit literal:
         clamp like MySQL instead of crashing the engine. *)
      if s.[0] = '-' then min_int else max_int

let coerce v dt =
  let open Sqlcore.Ast in
  match (v, dt) with
  | Null, _ -> Ok Null
  | Int _, T_int -> Ok v
  | Float f, T_int -> Ok (Int (int_of_float f))
  | Bool b, T_int -> Ok (Int (if b then 1 else 0))
  | Text s, T_int -> Ok (Int (int_of_text s))
  | Float _, T_float -> Ok v
  | Int n, T_float -> Ok (Float (float_of_int n))
  | Bool b, T_float -> Ok (Float (if b then 1.0 else 0.0))
  | Text s, T_float ->
    Ok (Float (try float_of_string s with Failure _ -> 0.0))
  | Text _, T_text -> Ok v
  | (Int _ | Float _ | Bool _), T_text -> Ok (Text (text_of v))
  | Bool _, T_bool -> Ok v
  | Int n, T_bool -> Ok (Bool (n <> 0))
  | Float f, T_bool -> Ok (Bool (f <> 0.0))
  | Text s, T_bool -> Ok (Bool (s <> "" && s <> "0"))
  | _, T_varchar width ->
    let s = text_of v in
    let s = if String.length s > width then String.sub s 0 width else s in
    Ok (Text s)
  | _, T_year -> (
      let n =
        match v with
        | Int n -> n
        | Float f -> int_of_float f
        | Bool b -> if b then 1 else 0
        | Text s -> int_of_text s
        | Null -> assert false
      in
      let n = if n >= 0 && n < 70 then 2000 + n
        else if n >= 70 && n < 100 then 1900 + n
        else n
      in
      if n = 0 || (n >= 1901 && n <= 2155) then Ok (Int n)
      else Error (Printf.sprintf "year value %d out of range" n))

let of_literal = function
  | Sqlcore.Ast.L_null -> Null
  | Sqlcore.Ast.L_int n -> Int n
  | Sqlcore.Ast.L_float f -> Float f
  | Sqlcore.Ast.L_string s -> Text s
  | Sqlcore.Ast.L_bool b -> Bool b

let to_display = function
  | Null -> "\\N"
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Text s -> s
  | Bool true -> "t"
  | Bool false -> "f"

let hash_value = function
  | Null -> 0
  | Int n -> n * 0x9E3779B1
  | Float f -> Int64.to_int (Int64.bits_of_float f) * 0x85EBCA6B
  | Text s -> Hashtbl.hash s
  | Bool b -> if b then 3 else 5
