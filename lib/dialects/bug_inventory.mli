(** The seeded bug corpus: 102 bugs matching the paper's Table I exactly —
    per DBMS, per component, per kind, with the paper's public identifiers
    (CVE / MDEV / BUG numbers; bugs the paper leaves unnamed get synthetic
    identifiers).

    Trigger conditions are assigned deterministically: a handful of
    marquee bugs reproduce the paper's case studies (the PostgreSQL
    NOTIFY-in-WITH SEGV of Fig. 7, the MySQL trigger/window CVE of
    Fig. 3); a calibrated subset is reachable from the standard seed
    corpus plus intra-statement mutation (so SQUIRREL-style fuzzing can
    find them, as in Table III); the rest require novel SQL Type
    Sequences, the paper's central claim. *)

val pg : Minidb.Fault.bug list
(** 6 bugs: Optimizer BOF+AF+2 SEGV, Parser AF, DML AF. *)

val mysql : Minidb.Fault.bug list
(** 21 bugs across Optimizer / DML / Auth / Storage. *)

val mariadb : Minidb.Fault.bug list
(** 42 bugs across Optimizer / DML / Parser / Storage / Item / Lock. *)

val comdb2 : Minidb.Fault.bug list
(** 33 bugs across Bdb / Berkdb / Csc2 / Db / Mem / Sqlite. *)

val easy_bug_ids : string list
(** Internal ids of the bugs reachable without new type sequences
    (corpus-order subsequences plus a statement feature). *)

val total : int
(** 102. Excludes {!concurrency}, which is outside the paper's corpus. *)

val concurrency : Minidb.Fault.bug list
(** Three seeded cross-session races ([CC-LOST-UPDATE],
    [CC-DIRTY-READ], [CC-WINDOW-RACE]), registered in every profile by
    {!Registry}. Their [other_*] state predicates are only answered by
    the server layer's session pool, so single-session campaigns can
    provably never fire them — they exist to prove interleaved
    schedules reach states sequential fuzzing cannot. *)
