open Sqlcore.Stmt_type
open Minidb.Fault
module Rng = Reprutil.Rng

(* ------------------------------------------------------------------ *)
(* Deterministic condition generation                                  *)
(* ------------------------------------------------------------------ *)

let queryish = [ Select; Select_union; Select_intersect; Select_except;
                 With_select; With_dml; Insert_select; Copy_to ]

let component_pool component =
  match component with
  | "Optimizer" | "Item" | "Sqlite" ->
    [ Select; Select_union; With_select; Explain; Select_intersect;
      Select_except; Table_stmt; Insert_select ]
  | "Parser" ->
    [ Prepare_stmt; Execute_stmt; Explain; Describe; Values_stmt; Do_expr;
      Comment_on; With_select ]
  | "DML" ->
    [ Insert; Update; Delete; Replace_into; Insert_select; Copy_from;
      Load_data; Truncate ]
  | "Storage" | "Bdb" | "Berkdb" | "Db" | "Mem" | "Csc2" ->
    [ Create_index; Create_unique_index; Alter_table_add_column;
      Alter_table_drop_column; Vacuum; Reindex; Cluster; Optimize_table;
      Check_table; Repair_table; Truncate; Insert; Analyze ]
  | "Auth" -> [ Grant; Revoke; Create_user; Set_role; Alter_user ]
  | "Lock" -> [ Lock_tables; Unlock_tables ]
  | _ -> [ Select; Insert ]

let starter_pool =
  [ Create_table; Create_temp_table; Insert; Update; Delete; Create_view;
    Create_trigger; Begin_txn; Drop_table; Set_var; Create_index;
    Alter_table_add_column; Select; Savepoint; Grant; Analyze ]

let feature_pool =
  [ F_group_by; F_order_by; F_join; F_distinct; F_where; F_window;
    F_having; F_subquery ]

let state_pool types =
  let gated =
    [ ("has_trigger", Create_trigger); ("has_view", Create_view);
      ("in_txn", Begin_txn); ("has_index", Create_index);
      ("analyzed", Analyze); ("has_savepoint", Savepoint);
      ("locked", Lock_tables); ("has_sequence", Create_sequence);
      ("listening", Listen); ("has_prepared", Prepare_stmt) ]
  in
  List.filter_map
    (fun (name, needed) -> if List.mem needed types then Some name else None)
    gated

(* The "everyday" statement types: everything the generation-based
   baselines emit from their fixed rules, plus every type appearing in the
   shared initial seed corpus. Generated bug conditions must involve at
   least one type outside this vocabulary: real DBMSs are well tested on
   everyday patterns, so surviving bugs hide behind unexpected SQL Type
   Sequences -- which is also what makes the paper's Table III shape
   (SQLancer/SQLsmith find 0 bugs, the corpus never crashes) emerge
   rather than being hard-coded. *)
let generation_vocabulary =
  [ Create_table; Create_index; Create_view; Insert; Insert_select; Update;
    Delete; Select; Select_union; Select_intersect; Select_except;
    Alter_table_add_column; Truncate; Drop_table; Begin_txn; Commit_txn;
    Rollback_txn; Analyze; Explain; Set_var ]

let gen_cond rng types component =
  let filtered pool =
    match List.filter (fun ty -> List.mem ty types) pool with
    | [] -> types
    | xs -> xs
  in
  let enders = filtered (component_pool component) in
  let starters = filtered starter_pool in
  let uncommon =
    match
      List.filter (fun ty -> not (List.mem ty generation_vocabulary)) types
    with
    | [] -> types
    | xs -> xs
  in
  let ender = Rng.choose rng enders in
  let len = if Rng.ratio rng 2 5 then 2 else 3 in
  let prefix = List.init (len - 1) (fun _ -> Rng.choose rng starters) in
  let prefix =
    (* guarantee one out-of-vocabulary type in the pattern *)
    if List.for_all (fun ty -> List.mem ty generation_vocabulary)
         (prefix @ [ ender ])
    then
      match prefix with
      | [] -> [ Rng.choose rng uncommon ]
      | _ :: rest -> Rng.choose rng uncommon :: rest
    else prefix
  in
  let seq = Subseq (prefix @ [ ender ]) in
  if Rng.ratio rng 1 3 then
    if List.mem ender queryish && Rng.bool rng then
      All [ seq; Stmt_has (Rng.choose rng feature_pool) ]
    else
      match state_pool types with
      | [] -> seq
      | states -> All [ seq; State (Rng.choose rng states) ]
  else seq

let rec cond_key = function
  | Subseq types -> "s:" ^ String.concat "," (List.map name types)
  | Ends_with types -> "e:" ^ String.concat "," (List.map name types)
  | State s -> "st:" ^ s
  | Stmt_has f -> "f:" ^ string_of_int (Hashtbl.hash f)
  | All cs -> "all(" ^ String.concat ";" (List.map cond_key cs) ^ ")"
  | Any cs -> "any(" ^ String.concat ";" (List.map cond_key cs) ^ ")"
  | Not c -> "not(" ^ cond_key c ^ ")"

(* ------------------------------------------------------------------ *)
(* Inventory construction                                              *)
(* ------------------------------------------------------------------ *)

type spec = {
  sp_component : string;
  sp_kind : kind;
  sp_identifier : string;
  sp_cond : cond option;  (* None: generated deterministically *)
  sp_easy : bool;
}

let mk ?cond ?(easy = false) component kind identifier =
  { sp_component = component; sp_kind = kind; sp_identifier = identifier;
    sp_cond = cond; sp_easy = easy }

let easy_ids = ref []

let build ~dbms ~types ~seed specs =
  let rng = Rng.create seed in
  let seen = Hashtbl.create 64 in
  List.mapi
    (fun i spec ->
       let cond =
         match spec.sp_cond with
         | Some c -> c
         | None ->
           let rec fresh tries =
             let c = gen_cond rng types spec.sp_component in
             let key = cond_key c in
             if Hashtbl.mem seen key && tries < 50 then fresh (tries + 1)
             else begin
               Hashtbl.replace seen key ();
               c
             end
           in
           fresh 0
       in
       let bug_id = Printf.sprintf "%s-%03d" dbms (i + 1) in
       if spec.sp_easy then easy_ids := bug_id :: !easy_ids;
       { bug_id; identifier = spec.sp_identifier;
         component = spec.sp_component; kind = spec.sp_kind; cond })
    specs

(* --- PostgreSQL: 6 bugs ------------------------------------------- *)

let pg_specs =
  [ mk "Optimizer" Bof "BUG #110303";
    mk "Optimizer" Af "BUG #17152";
    (* Fig. 7 case study: NOTIFY rewriting DML inside WITH crashes the
       planner (replace_empty_jointree on a NULL jointree). *)
    mk "Optimizer" Segv "BUG #17097" ~cond:(State "notify_rewrite_in_with");
    mk "Optimizer" Segv "BUG #17151"
      ~cond:(All [ Subseq [ Cluster; Select ]; State "analyzed" ]);
    mk "Parser" Af "BUG #17094"
      ~cond:(Subseq [ Deallocate; Prepare_stmt; Execute_stmt ]);
    mk "DML" Af "BUG #17067" ]

let pg = build ~dbms:"PG" ~types:Type_sets.pg ~seed:0x9001 pg_specs

(* --- MySQL: 21 bugs ------------------------------------------------ *)

let mysql_specs =
  [ (* Optimizer: BOF(3) SBOF(1) NPD(4) HBOF(1) UAF(1) AF(2) *)
    mk "Optimizer" Bof "CVE-2021-2357";
    mk "Optimizer" Bof "CVE-2021-2055";
    mk "Optimizer" Bof "CVE-2021-2230";
    mk "Optimizer" Sbof "CVE-2021-2169";
    mk "Optimizer" Npd "CVE-2021-2444"
      ~cond:
        (All [ Subseq [ Insert; Select ]; Stmt_has F_offset ])
      ~easy:true;
    mk "Optimizer" Npd "MYSQL-B-001";
    mk "Optimizer" Npd "MYSQL-B-002";
    mk "Optimizer" Npd "MYSQL-B-003";
    mk "Optimizer" Hbof "MYSQL-B-004";
    mk "Optimizer" Uaf "MYSQL-B-005";
    mk "Optimizer" Af "MYSQL-B-006"
      ~cond:
        (All
           [ Subseq [ Update; Select ]; Stmt_has F_offset;
             Stmt_has F_group_by ])
      ~easy:true;
    mk "Optimizer" Af "MYSQL-B-007";
    (* DML: SBOF(1) SEGV(2) *)
    mk "DML" Sbof "CVE-2021-35645"
      ~cond:
        (All
           [ Subseq [ Insert; Select ]; Stmt_has F_offset;
             Stmt_has F_order_by ])
      ~easy:true;
    mk "DML" Segv "MYSQL-B-008";
    mk "DML" Segv "MYSQL-B-009";
    (* Auth: SBOF(1) SEGV(2) — the Fig. 3 case study CVE. *)
    mk "Auth" Sbof "CVE-2021-35643"
      ~cond:
        (All
           [ Subseq [ Create_table; Insert; Create_trigger; Select ];
             Stmt_has F_window ]);
    mk "Auth" Segv "MYSQL-B-010";
    mk "Auth" Segv "MYSQL-B-011";
    (* Storage: SEGV(1) AF(2) *)
    mk "Storage" Segv "CVE-2021-35641"
      ~cond:(Subseq [ Lock_tables; Insert; Unlock_tables ]);
    mk "Storage" Af "MYSQL-B-012";
    mk "Storage" Af "MYSQL-B-013" ]

let mysql = build ~dbms:"MYSQL" ~types:Type_sets.mysql ~seed:0x9002 mysql_specs

(* --- MariaDB: 42 bugs ---------------------------------------------- *)

let mariadb_specs =
  [ (* Optimizer: NPD(2) BOF(1) UAP(3) SEGV(2) AF(1) *)
    mk "Optimizer" Npd "CVE-2022-27376"
      ~cond:(All [ Subseq [ Insert; Select ]; Stmt_has F_offset ])
      ~easy:true;
    mk "Optimizer" Npd "CVE-2022-27379";
    mk "Optimizer" Bof "CVE-2022-27380"
      ~cond:
        (All
           [ Subseq [ Delete; Select ]; Stmt_has F_offset;
             Stmt_has F_order_by ])
      ~easy:true;
    mk "Optimizer" Uap "MDEV-26403";
    mk "Optimizer" Uap "MDEV-26432";
    mk "Optimizer" Uap "MDEV-26418";
    mk "Optimizer" Segv "MDEV-26416"
      ~cond:
        (All
           [ Subseq [ Update; Select ]; Stmt_has F_offset;
             Stmt_has F_distinct ])
      ~easy:true;
    mk "Optimizer" Segv "MDEV-26419";
    mk "Optimizer" Af "MDEV-26430";
    (* DML: BOF(1) UAP(1) AF(1) SEGV(1) *)
    mk "DML" Bof "CVE-2022-27377"
      ~cond:
        (All
           [ Subseq [ Insert; Select ]; Stmt_has F_offset;
             Stmt_has F_where ])
      ~easy:true;
    mk "DML" Uap "CVE-2022-27378";
    mk "DML" Af "MDEV-26120"
      ~cond:
        (All
           [ Subseq [ Delete; Select ]; Stmt_has F_offset;
             Stmt_has F_limit ])
      ~easy:true;
    mk "DML" Segv "MDEV-25994";
    (* Parser: BOF(1) UAF(2) SEGV(1) *)
    mk "Parser" Bof "CVE-2022-27383";
    mk "Parser" Uaf "MDEV-26355";
    mk "Parser" Uaf "MDEV-26313";
    mk "Parser" Segv "MDEV-26410";
    (* Storage: SEGV(7) UAP(2) UAF(2) BOF(2) *)
    mk "Storage" Segv "CVE-2022-27385"
      ~cond:
        (All
           [ Subseq [ Create_index; Insert; Select ]; Stmt_has F_offset ])
      ~easy:true;
    mk "Storage" Segv "CVE-2022-27386";
    mk "Storage" Segv "MDEV-26404";
    mk "Storage" Segv "MDEV-26408";
    mk "Storage" Segv "MDEV-26412";
    mk "Storage" Segv "MDEV-26421";
    mk "Storage" Segv "MDEV-26434";
    mk "Storage" Uap "MDEV-26436";
    mk "Storage" Uap "MDEV-26420";
    mk "Storage" Uaf "MDEV-26431";
    mk "Storage" Uaf "MDEV-26433";
    mk "Storage" Bof "MDEV-26408";
    mk "Storage" Bof "MDEV-26432";
    (* Item: AF(4) SEGV(3) UAP(2) UAF(1) *)
    mk "Item" Af "MDEV-26405"
      ~cond:
        (All
           [ Subseq [ Insert; Insert; Select ]; Stmt_has F_offset;
             Stmt_has F_where ])
      ~easy:true;
    mk "Item" Af "MDEV-26407";
    mk "Item" Af "MDEV-26411";
    mk "Item" Af "MDEV-26414";
    mk "Item" Segv "MDEV-26438"
      ~cond:
        (All
           [ Subseq [ Insert; Select ]; Stmt_has F_offset;
             Stmt_has F_window ])
      ~easy:true;
    mk "Item" Segv "MDEV-26428";
    mk "Item" Segv "MDEV-26417";
    mk "Item" Uap "MDEV-26434";
    mk "Item" Uap "MDEV-26437";
    mk "Item" Uaf "MDEV-26427";
    (* Lock: SEGV(2) *)
    mk "Lock" Segv "MDEV-26425";
    mk "Lock" Segv "MDEV-26424" ]

let mariadb =
  build ~dbms:"MARIA" ~types:Type_sets.mariadb ~seed:0x9003 mariadb_specs

(* --- Comdb2: 33 bugs ----------------------------------------------- *)

let comdb2_specs =
  [ mk "Bdb" Ub "CVE-2020-26746";
    mk "Bdb" Ub "CDB-001";
    mk "Bdb" Ub "CDB-002";
    mk "Bdb" Ub "CDB-003";
    mk "Bdb" Ub "CDB-004";
    mk "Bdb" Ub "CDB-005";
    mk "Berkdb" Bof "CVE-2020-26745";
    mk "Berkdb" Ub "CDB-006";
    mk "Berkdb" Ub "CDB-007";
    mk "Berkdb" Ub "CDB-008";
    mk "Berkdb" Ub "CDB-009";
    mk "Berkdb" Ub "CDB-010";
    mk "Berkdb" Ub "CDB-011";
    mk "Berkdb" Ub "CDB-012";
    mk "Csc2" Bof "CVE-2020-26744";
    mk "Db" Ub "CVE-2020-26743";
    mk "Db" Ub "CDB-013";
    mk "Db" Ub "CDB-014";
    mk "Db" Ub "CDB-015";
    mk "Db" Uaf "CDB-016";
    mk "Db" Segv "CDB-017";
    mk "Db" Segv "CDB-018";
    mk "Db" Segv "CDB-019";
    mk "Mem" Bof "CVE-2020-26741";
    mk "Mem" Hbof "CVE-2020-26742";
    mk "Mem" Segv "CDB-020";
    mk "Sqlite" Ub "CDB-021";
    mk "Sqlite" Ub "CDB-022";
    mk "Sqlite" Ub "CDB-023";
    mk "Sqlite" Ub "CDB-024";
    mk "Sqlite" Ub "CDB-025";
    mk "Sqlite" Segv "CDB-026";
    mk "Sqlite" Segv "CDB-027" ]

let comdb2 =
  build ~dbms:"CDB" ~types:Type_sets.comdb2 ~seed:0x9004 comdb2_specs

let easy_bug_ids = !easy_ids

let total =
  List.length pg + List.length mysql + List.length mariadb
  + List.length comdb2

(* --- Seeded concurrency bugs (all dialects) ------------------------- *)

(* Cross-session races, outside the paper's 102-bug corpus. The
   [other_*] predicates are only answered by the server layer's
   session-pool fault hook ([Engine.set_fault_ext]); a plain
   single-session engine resolves them through [Executor.state_pred],
   where unknown names are [false] — so these bugs are registered in
   every profile yet provably unreachable without interleaved
   schedules. Statement types are restricted to the shared generation
   vocabulary so every dialect's corpus can in principle reach them. *)
let concurrency =
  [ (* UPDATE on an unindexed table while another session's open
       transaction holds dirty writes: the classic lost update. *)
    { bug_id = "CC-LOST-UPDATE";
      identifier = "RACE-0001";
      component = "Storage";
      kind = Ub;
      cond =
        All
          [ Ends_with [ Update ]; Not (State "has_index");
            State "other_txn_dirty" ] };
    (* SELECT inside a transaction observing another session's
       uncommitted writes: a dirty read made control flow. *)
    { bug_id = "CC-DIRTY-READ";
      identifier = "RACE-0002";
      component = "Lock";
      kind = Uap;
      cond =
        All
          [ Ends_with [ Select ]; State "in_txn";
            State "other_txn_dirty" ] };
    (* Window-function evaluation racing another session's
       window-function frame state. *)
    { bug_id = "CC-WINDOW-RACE";
      identifier = "RACE-0003";
      component = "Item";
      kind = Segv;
      cond = All [ Stmt_has F_window; State "other_session_window" ] } ]
