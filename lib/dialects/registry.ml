open Minidb

(* Every profile also carries the cross-session concurrency bugs,
   appended AFTER the dialect's own corpus: [Fault.check] reports the
   first matching bug, so appending cannot change which of the 102
   paper bugs a single-session campaign reports — and the [other_*]
   predicates are false without the server layer's fault hook, making
   the appended bugs inert there entirely. *)
let with_cc bugs = bugs @ Bug_inventory.concurrency

let pg_sim =
  Profile.make ~name:"PostgreSQL" ~flavor:Profile.Pg ~types:Type_sets.pg
    ~bugs:(with_cc Bug_inventory.pg)

let mysql_sim =
  Profile.make ~name:"MySQL" ~flavor:Profile.Mysql ~types:Type_sets.mysql
    ~bugs:(with_cc Bug_inventory.mysql)

let mariadb_sim =
  Profile.make ~name:"MariaDB" ~flavor:Profile.Mariadb
    ~types:Type_sets.mariadb ~bugs:(with_cc Bug_inventory.mariadb)

let comdb2_sim =
  Profile.make ~name:"Comdb2" ~flavor:Profile.Comdb2
    ~types:Type_sets.comdb2 ~bugs:(with_cc Bug_inventory.comdb2)

let all = [ pg_sim; mysql_sim; mariadb_sim; comdb2_sim ]

let by_name name =
  let n = String.lowercase_ascii name in
  List.find_opt
    (fun p -> String.lowercase_ascii (Profile.name p) = n)
    all
