(** The logic-bug oracle suite.

    Crashes are self-announcing; logic bugs are not — the engine returns
    plausible-but-wrong answers. Following SQLancer's approach, each
    oracle derives a second execution that {e must} agree with the first
    and reports any divergence:

    - {b diff_plan} — run every eligible SELECT twice on identical state,
      once with access-path selection pinned to sequential scan and once
      with the planner's own choice; the row multisets must match.
    - {b tlp} — ternary logic partitioning: [WHERE p] rewritten as the
      UNION ALL of the [p] / [NOT p] / [p IS NULL] partitions must have
      the cardinality of the unfiltered query.
    - {b rewrite} — a DML intercepted by a [DO INSTEAD <stmt>] rule must
      leave the same data state as executing the substituted statement
      directly (guarded to substitutes whose tables carry no further
      rules or triggers).

    A suite replays test cases on a {e fault-free} copy of the profile
    ({!Minidb.Profile.without_bugs}) with a private coverage bitmap, so
    oracle replays can neither crash nor pollute the fuzzer's virgin
    map. *)

type t

type outcome = {
  oc_checks : (string * int) list;
      (** per-oracle number of checks performed, in {!oracle_names}
          order *)
  oc_violations : Violation.t list;  (** in statement order *)
}

val oracle_names : string list
(** [["diff_plan"; "tlp"; "rewrite"; "isolation"]] — the telemetry
    counter namespace ([oracle.<name>.checks] /
    [oracle.<name>.violations]). The isolation oracle runs on the
    schedule-replay path ({!Isolation}), not in {!check}. *)

val create : ?limits:Minidb.Limits.t -> Minidb.Profile.t -> t

val check : t -> Sqlcore.Ast.testcase -> outcome
(** Replay [tc] on a fresh engine, running every applicable oracle on
    each statement. Deterministic: same test case, same outcome. *)

val plan_tag : Minidb.Catalog.t -> Sqlcore.Ast.query -> string
(** Access-path shape of a query under the current catalog state — the
    dedup-key component of diff_plan/tlp violations. Exposed for tests. *)

val fingerprint : Minidb.Catalog.t -> string
(** Deterministic digest of the data state: every table's rows (sorted)
    and every sequence's value. The agreement protocol shared by the
    rewrite oracle, the isolation oracle and the server layer's
    schedule-replay determinism check. *)
