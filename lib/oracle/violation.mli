(** A logic-bug finding: one oracle's verdict that two executions which
    must agree did not.

    Unlike a {!Minidb.Fault.crash} there is no synthetic stack;
    deduplication is by oracle name plus plan-shape tag ({!key}), the
    logic-bug analogue of [Triage.stack_key]. *)

type t = {
  vi_oracle : string;
      (** ["diff_plan"], ["tlp"], ["rewrite"] or ["isolation"] *)
  vi_tag : string;     (** plan-shape tag: dedup key component *)
  vi_detail : string;  (** human-readable description of the divergence *)
  vi_sql : string;     (** the offending statement, printed *)
}

val key : t -> string
(** Canonical dedup key: [oracle ^ "#" ^ tag]. Two violations with equal
    keys are the same logic-bug signature — shared with [Fuzz.Sync] so
    cross-shard dedup agrees with local dedup. *)

val pp : Format.formatter -> t -> unit
