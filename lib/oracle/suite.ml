(* The three logic-bug oracles, run against a fault-free replay of a
   coverage-increasing test case. Each oracle compares two executions
   that must agree; disagreement is a Violation.t. *)

open Sqlcore

type t = {
  s_profile : Minidb.Profile.t;  (* fault-free: crashes can never fire *)
  s_limits : Minidb.Limits.t;
  s_cov : Coverage.Bitmap.t;     (* private map: replays never pollute the
                                    caller's virgin coverage *)
}

type outcome = {
  oc_checks : (string * int) list;
  oc_violations : Violation.t list;
}

let oracle_names = [ "diff_plan"; "tlp"; "rewrite"; "isolation" ]

let create ?(limits = Minidb.Limits.default) profile =
  { s_profile = Minidb.Profile.without_bugs profile;
    s_limits = limits;
    s_cov = Coverage.Bitmap.create () }

(* --- row multisets -------------------------------------------------- *)

let cmp_row a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let c = ref 0 and i = ref 0 in
    while !c = 0 && !i < la do
      c := Storage.Value.compare_total a.(!i) b.(!i);
      incr i
    done;
    !c
  end

let multiset_equal r1 r2 =
  List.length r1 = List.length r2
  && List.for_all2
       (fun a b -> cmp_row a b = 0)
       (List.sort cmp_row r1) (List.sort cmp_row r2)

(* --- plan-shape tags ------------------------------------------------ *)

let analyzed cat =
  match Hashtbl.find_opt cat.Minidb.Catalog.global_vars "__analyzed" with
  | Some (Storage.Value.Bool true) -> true
  | _ -> false

(* Mirrors eval_from: only a top-level single table sees the WHERE clause;
   join branches are scanned with [where:None]. The tag is a dedup key for
   Triage, so it only has to be deterministic and shape-sensitive. *)
let rec from_tags cat ~anal ~where acc = function
  | Ast.From_table { name; _ } ->
    let access =
      Minidb.Planner.choose_access cat ~analyzed:anal ~table:name ~where
    in
    Minidb.Planner.access_tag access :: acc
  | Ast.From_join { left; right; _ } ->
    from_tags cat ~anal ~where:None
      (from_tags cat ~anal ~where:None acc right)
      left
  | Ast.From_subquery _ -> 7 :: acc

let rec query_tags cat ~anal = function
  | Ast.Q_select s ->
    (match s.Ast.from with
     | None -> [ 8 ]
     | Some f -> List.rev (from_tags cat ~anal ~where:s.Ast.where [] f))
  | Ast.Q_values _ -> [ 9 ]
  | Ast.Q_compound (a, _, b) ->
    query_tags cat ~anal a @ query_tags cat ~anal b

let plan_tag cat q =
  String.concat ","
    (List.map string_of_int (query_tags cat ~anal:(analyzed cat) q))

let rec query_has_limit = function
  | Ast.Q_select s -> s.Ast.limit <> None || s.Ast.offset <> None
  | Ast.Q_values _ -> false
  | Ast.Q_compound (a, _, b) -> query_has_limit a || query_has_limit b

(* --- oracle 1: differential plan execution -------------------------- *)

(* Run the query twice on identical state: once with access-path selection
   pinned to Seq_scan, once with the planner's own choice. SELECT
   evaluation is pure in MiniDB (no nextval/random/now), so the two result
   multisets must coincide. Queries with LIMIT/OFFSET are skipped by the
   caller (different scan orders legitimately yield different subsets), as
   are aggregates and window functions (float accumulation order). *)
let check_diff_plan engine q ~sql =
  Minidb.Engine.set_plan_mode engine Minidb.Executor.Plan_force_seq;
  let seq = Minidb.Engine.query_rows engine q in
  Minidb.Engine.set_plan_mode engine Minidb.Executor.Plan_auto;
  let auto = Minidb.Engine.query_rows engine q in
  match seq, auto with
  | Ok rs, Ok ra when not (multiset_equal rs ra) ->
    let detail =
      if List.length rs <> List.length ra then
        Printf.sprintf
          "forced Seq_scan returns %d row(s), planner's choice returns %d"
          (List.length rs) (List.length ra)
      else "same cardinality but different row contents across access paths"
    in
    Some
      { Violation.vi_oracle = "diff_plan";
        vi_tag = plan_tag (Minidb.Engine.catalog engine) q;
        vi_detail = detail;
        vi_sql = sql }
  | _ -> None

(* --- oracle 2: ternary logic partitioning (TLP) --------------------- *)

(* SQLancer-style: WHERE p partitions the input into p / NOT p / p IS
   NULL, so SELECT ... WHERE p UNION ALL the two complements must have
   the cardinality of the unfiltered query. Sound under MiniDB's 3VL:
   [Not] negates truthiness and propagates NULL. *)
let tlp_where sel =
  match sel.Ast.where, sel.Ast.group_by, sel.Ast.having,
        sel.Ast.distinct, sel.Ast.limit, sel.Ast.offset with
  | Some p, [], None, false, None, None -> Some p
  | _ -> None

let check_tlp engine sel p ~sql =
  let part pred =
    Ast.Q_select { sel with Ast.where = Some pred; order_by = [] }
  in
  let partitions =
    Ast.Q_compound
      ( Ast.Q_compound (part p, Ast.Union_all, part (Ast.Unop (Ast.Not, p))),
        Ast.Union_all,
        part (Ast.Is_null (p, false)) )
  in
  let whole = Ast.Q_select { sel with Ast.where = None; order_by = [] } in
  match
    Minidb.Engine.query_rows engine partitions,
    Minidb.Engine.query_rows engine whole
  with
  | Ok rp, Ok rw when List.length rp <> List.length rw ->
    Some
      { Violation.vi_oracle = "tlp";
        vi_tag = plan_tag (Minidb.Engine.catalog engine) (Ast.Q_select sel);
        vi_detail =
          Printf.sprintf
            "p / NOT p / p IS NULL partitions yield %d row(s), unpartitioned \
             query yields %d"
            (List.length rp) (List.length rw);
        vi_sql = sql }
  | _ -> None

(* --- oracle 3: rewrite consistency ---------------------------------- *)

let dml_target = function
  | Ast.S_insert i | Ast.S_replace i -> Some (i.Ast.i_table, Ast.Ev_insert)
  | Ast.S_update u -> Some (u.Ast.u_table, Ast.Ev_update)
  | Ast.S_delete d -> Some (d.Ast.d_table, Ast.Ev_delete)
  | _ -> None

(* Executing the substituted statement directly is only equivalent to the
   rule path when the substitute is itself a plain DML whose written
   tables carry no rules or triggers: the rule path runs it at
   trigger_depth 1, so any nested hook would fire differently. DDL is
   excluded because restore_snapshot cannot undo it. *)
let rewrite_guard cat profile sub =
  (match sub with
   | Ast.S_insert _ | Ast.S_replace _ | Ast.S_update _ | Ast.S_delete _ ->
     true
   | _ -> false)
  && Minidb.Profile.supports profile (Ast.type_of_stmt sub)
  && List.for_all
       (fun tbl ->
          not
            (Hashtbl.fold
               (fun _ (r : Minidb.Catalog.rule) acc ->
                  acc || r.r_table = tbl)
               cat.Minidb.Catalog.rules false)
          && not
               (Hashtbl.fold
                  (fun _ (tr : Minidb.Catalog.trigger) acc ->
                     acc || tr.tr_table = tbl)
                  cat.Minidb.Catalog.triggers false))
       (Ast_util.tables_written sub)

(* Deterministic digest of the data state: tables (rows sorted), sequence
   values. Schema objects are untouched by the guarded statements. *)
let fingerprint (cat : Minidb.Catalog.t) =
  let buf = Buffer.create 256 in
  let render v = Storage.Value.type_name v ^ ":" ^ Storage.Value.to_display v in
  let tables =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun name tbl acc -> (name, tbl) :: acc) cat.tables [])
  in
  List.iter
    (fun (name, tbl) ->
       Buffer.add_string buf ("T " ^ name ^ "\n");
       let rows =
         List.sort cmp_row (List.map snd (Storage.Table.to_rows tbl))
       in
       List.iter
         (fun row ->
            Buffer.add_string buf
              (String.concat "|" (List.map render (Array.to_list row)));
            Buffer.add_char buf '\n')
         rows)
    tables;
  let seqs =
    List.sort compare
      (Hashtbl.fold
         (fun name (sq : Minidb.Catalog.sequence) acc ->
            (name, sq.sq_value) :: acc)
         cat.sequences [])
  in
  List.iter
    (fun (name, v) ->
       Buffer.add_string buf (Printf.sprintf "S %s=%d\n" name v))
    seqs;
  Buffer.contents buf

let event_name = function
  | Ast.Ev_insert -> "insert"
  | Ast.Ev_update -> "update"
  | Ast.Ev_delete -> "delete"

(* An INSTEAD NOTHING / INSTEAD NOTIFY rule replaces the DML entirely
   (apply_rule never reaches the plain path, triggers, or DO ALSO rules),
   so executing the statement must leave table data and sequences exactly
   as they were. *)
let check_rewrite_noop engine stmt (rule : Minidb.Catalog.rule) ~sql =
  let cat = Minidb.Engine.catalog engine in
  let fp0 = fingerprint cat in
  ignore (Minidb.Engine.exec_stmt engine stmt);
  let fp1 = fingerprint cat in
  if String.equal fp0 fp1 then None
  else
    Some
      { Violation.vi_oracle = "rewrite";
        vi_tag = rule.r_name ^ "/" ^ event_name rule.r_event;
        vi_detail =
          "DO INSTEAD NOTHING/NOTIFY rule path modified table data";
        vi_sql = sql }

(* snap0 -> rule-path exec -> fp_rule -> snap1 -> back to snap0 ->
   direct exec of the substitute -> fp_direct -> back to snap1, so the
   replay continues from the state a plain execution would have left. *)
let check_rewrite engine stmt (rule : Minidb.Catalog.rule) sub ~sql =
  let cat = Minidb.Engine.catalog engine in
  let snap0 = Minidb.Catalog.take_snapshot cat in
  ignore (Minidb.Engine.exec_stmt engine stmt);
  let fp_rule = fingerprint cat in
  let snap1 = Minidb.Catalog.take_snapshot cat in
  Minidb.Catalog.restore_snapshot cat snap0;
  ignore (Minidb.Engine.exec_stmt engine sub);
  let fp_direct = fingerprint cat in
  Minidb.Catalog.restore_snapshot cat snap1;
  if String.equal fp_rule fp_direct then None
  else
    Some
      { Violation.vi_oracle = "rewrite";
        vi_tag = rule.r_name ^ "/" ^ event_name rule.r_event;
        vi_detail =
          "DO INSTEAD rule path and direct execution of the substituted \
           statement leave different catalog states";
        vi_sql = sql }

(* --- driving a whole test case -------------------------------------- *)

let check t tc =
  Coverage.Bitmap.reset t.s_cov;
  let engine =
    Minidb.Engine.create ~limits:t.s_limits ~profile:t.s_profile
      ~cov:t.s_cov ()
  in
  let cat = Minidb.Engine.catalog engine in
  let n_diff = ref 0 and n_tlp = ref 0 and n_rw = ref 0 in
  let vios = ref [] in
  let add v = vios := v :: !vios in
  let budget = ref t.s_limits.Minidb.Limits.max_statements in
  List.iter
    (fun stmt ->
       if !budget > 0 then begin
         decr budget;
         match stmt with
         | Ast.S_select q
           when Minidb.Profile.supports t.s_profile (Ast.type_of_stmt stmt)
                && (not (Ast_util.has_aggregate stmt))
                && (not (Ast_util.has_window_fn stmt))
                && not (query_has_limit q) ->
           let sql = Sql_printer.stmt stmt in
           incr n_diff;
           (match check_diff_plan engine q ~sql with
            | Some v -> add v
            | None -> ());
           (match q with
            | Ast.Q_select sel ->
              (match tlp_where sel with
               | Some p ->
                 incr n_tlp;
                 (match check_tlp engine sel p ~sql with
                  | Some v -> add v
                  | None -> ())
               | None -> ())
            | _ -> ())
           (* the query already ran under Plan_auto; SELECT is pure, so no
              further replay of this statement is needed *)
         | _ ->
           (match dml_target stmt with
            | Some (table, event)
              when Hashtbl.mem cat.Minidb.Catalog.tables table ->
              (match Minidb.Rewriter.rewrite_dml cat ~table ~event with
               | Minidb.Rewriter.Instead_stmt (rule, sub)
                 when rewrite_guard cat t.s_profile sub ->
                 incr n_rw;
                 let sql = Sql_printer.stmt stmt in
                 (match check_rewrite engine stmt rule sub ~sql with
                  | Some v -> add v
                  | None -> ())
               | Minidb.Rewriter.Instead_nothing rule
               | Minidb.Rewriter.Instead_notify (rule, _) ->
                 incr n_rw;
                 let sql = Sql_printer.stmt stmt in
                 (match check_rewrite_noop engine stmt rule ~sql with
                  | Some v -> add v
                  | None -> ())
               | _ -> ignore (Minidb.Engine.exec_stmt engine stmt))
            | _ -> ignore (Minidb.Engine.exec_stmt engine stmt))
       end)
    tc;
  { oc_checks =
      [ ("diff_plan", !n_diff); ("tlp", !n_tlp); ("rewrite", !n_rw) ];
    oc_violations = List.rev !vios }
