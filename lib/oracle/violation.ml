type t = {
  vi_oracle : string;
  vi_tag : string;
  vi_detail : string;
  vi_sql : string;
}

let key v = v.vi_oracle ^ "#" ^ v.vi_tag

let pp fmt v =
  Format.fprintf fmt "logic bug [%s] %s@.  %s@.  offending statement: %s"
    v.vi_oracle v.vi_tag v.vi_detail v.vi_sql
