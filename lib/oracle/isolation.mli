(** Commit-order linearization oracle for interleaved schedules.

    Serializability's canonical witness candidate: order every
    transaction (and every autocommit statement, as a one-statement
    transaction) by its commit point in the schedule, replay the units
    serially on a fresh fault-free engine, and compare the data-state
    {!Suite.fingerprint} with the one the interleaved execution
    produced. Divergence is an isolation violation — under MiniDB's
    deliberately naive transaction machinery (writes immediately
    visible to all sessions, ROLLBACK restores a whole-table BEGIN
    snapshot) these are real lost-update / dirty-read /
    clobbered-commit findings.

    Runs on the deterministic schedule-replay path, never on the live
    concurrent one, so a violation's key is reproducible by replaying
    the recorded schedule. *)

open Sqlcore

type unit_ = {
  u_session : int;
  u_stmts : Ast.stmt list;
      (** in session order; open transactions get an implicit COMMIT *)
  u_commit : int;  (** schedule index of the unit's last statement *)
}
(** One serializability unit: a transaction or autocommit statement. *)

val check :
  ?limits:Minidb.Limits.t ->
  profile:Minidb.Profile.t ->
  steps:(int * Ast.stmt) array ->
  observed:string ->
  unit ->
  Violation.t option
(** [check ~profile ~steps ~observed ()] — [steps] is the executed
    schedule in order ([(session, stmt)] pairs), [observed] the
    {!Suite.fingerprint} of the catalog after the interleaved run.
    Returns [Some v] (with [v.vi_oracle = "isolation"] and a dedup tag
    naming the diverging tables/sequences) when commit-order serial
    replay cannot reproduce the observed state. A trailing open
    transaction is implicitly committed on both sides of the
    comparison. Single-session schedules never report: their commit
    order {e is} the original order. *)

val commit_order_units : (int * Ast.stmt) array -> unit_ list
(** The serialization candidate, exposed for tests: per-session
    statement traces split into transaction units and sorted by commit
    point. *)
