(* Commit-order linearization check for interleaved schedules.

   An interleaved execution of K sessions is serializable when some
   serial order of its transactions reproduces the same final data
   state. We test the canonical candidate — transactions ordered by
   their commit points in the schedule (units of autocommit statements
   are their own transactions, ordered by their execution point) — by
   replaying the units serially on a fresh fault-free engine and
   comparing data-state fingerprints. A mismatch means the interleaved
   run exposed non-serializable behaviour: a lost update, a dirty read
   made durable, a rollback that clobbered a concurrent commit.

   MiniDB's transaction machinery makes these real findings, not
   oracle noise: writes inside a transaction are immediately visible to
   every session (no write isolation), and ROLLBACK restores a
   whole-table snapshot taken at BEGIN — erasing writes other sessions
   committed in between. Single-session runs can never diverge (the
   serial replay IS the original order), so the oracle only speaks on
   genuinely interleaved schedules. *)

open Sqlcore

(* One serializability unit: a txn (BEGIN..COMMIT/ROLLBACK) or a single
   autocommit statement, with the schedule index where it commits. *)
type unit_ = {
  u_session : int;
  u_stmts : Ast.stmt list;  (* in session order *)
  u_commit : int;           (* schedule index of the unit's last stmt *)
}

let is_begin = function Ast.S_begin -> true | _ -> false

let ends_txn = function
  | Ast.S_commit | Ast.S_rollback -> true
  | _ -> false

(* Split one session's (schedule_index, stmt) trace into units. A
   trailing open transaction gets an implicit COMMIT: the interleaved
   engine never rolled it back, so its writes are part of the observed
   state and must be part of the serial candidate too. *)
let units_of_session sid steps =
  let units = ref [] in
  let open_txn = ref [] in  (* reversed (idx, stmt) of the current txn *)
  let flush_txn () =
    match !open_txn with
    | [] -> ()
    | rev ->
      let stmts = List.rev_map snd rev in
      let commit = fst (List.hd rev) in
      units :=
        { u_session = sid; u_stmts = stmts @ [ Ast.S_commit ];
          u_commit = commit }
        :: !units;
      open_txn := []
  in
  List.iter
    (fun (idx, stmt) ->
       match !open_txn with
       | [] ->
         if is_begin stmt then open_txn := [ (idx, stmt) ]
         else
           units :=
             { u_session = sid; u_stmts = [ stmt ]; u_commit = idx }
             :: !units
       | _ ->
         open_txn := (idx, stmt) :: !open_txn;
         if ends_txn stmt then begin
           let rev = !open_txn in
           units :=
             { u_session = sid; u_stmts = List.rev_map snd rev;
               u_commit = idx }
             :: !units;
           open_txn := []
         end)
    steps;
  flush_txn ();
  List.rev !units

let commit_order_units steps =
  let by_session = Hashtbl.create 8 in
  Array.iteri
    (fun idx (sid, stmt) ->
       let prev =
         match Hashtbl.find_opt by_session sid with
         | Some l -> l
         | None -> []
       in
       Hashtbl.replace by_session sid ((idx, stmt) :: prev))
    steps;
  let sids =
    List.sort compare
      (Hashtbl.fold (fun sid _ acc -> sid :: acc) by_session [])
  in
  let units =
    List.concat_map
      (fun sid ->
         units_of_session sid (List.rev (Hashtbl.find by_session sid)))
      sids
  in
  (* Commit points are distinct schedule indexes, so the order is a
     total one and the sort is deterministic. *)
  List.sort (fun a b -> compare a.u_commit b.u_commit) units

(* Table/sequence sections on which two fingerprints disagree — the
   bounded dedup tag. Fingerprint lines are "T name" headers followed by
   row lines, and "S name=v" lines. *)
let diverging_sections fp_a fp_b =
  let sections fp =
    let tbl = Hashtbl.create 8 in
    let current = ref None in
    List.iter
      (fun line ->
         if String.length line > 2 && String.sub line 0 2 = "T " then begin
           let name = String.sub line 2 (String.length line - 2) in
           current := Some name;
           if not (Hashtbl.mem tbl ("T:" ^ name)) then
             Hashtbl.replace tbl ("T:" ^ name) []
         end
         else if String.length line > 2 && String.sub line 0 2 = "S " then
           Hashtbl.replace tbl ("S:" ^ line) []
         else
           match !current with
           | Some name ->
             Hashtbl.replace tbl ("T:" ^ name)
               (line :: Hashtbl.find tbl ("T:" ^ name))
           | None -> ())
      (String.split_on_char '\n' fp);
    tbl
  in
  let a = sections fp_a and b = sections fp_b in
  let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] in
  let all = List.sort_uniq compare (keys a @ keys b) in
  List.filter
    (fun k -> Hashtbl.find_opt a k <> Hashtbl.find_opt b k)
    all

let check ?(limits = Minidb.Limits.default) ~profile
    ~(steps : (int * Ast.stmt) array) ~observed () =
  let units = commit_order_units steps in
  let cov = Coverage.Bitmap.create () in
  let engine =
    Minidb.Engine.create ~limits
      ~profile:(Minidb.Profile.without_bugs profile)
      ~cov ()
  in
  let cat = Minidb.Engine.catalog engine in
  let current = ref (-1) in
  List.iter
    (fun u ->
       if u.u_session <> !current then begin
         (* context-switch connection state so SET/PREPARE/HANDLER
            statements stay session-scoped in the serial candidate
            exactly as they were in the interleaved run *)
         if !current >= 0 then Minidb.Catalog.park_session cat !current;
         Minidb.Catalog.unpark_session cat u.u_session;
         current := u.u_session
       end;
       List.iter
         (fun stmt -> ignore (Minidb.Engine.exec_stmt engine stmt))
         u.u_stmts)
    units;
  let serial = Suite.fingerprint cat in
  if String.equal serial observed then None
  else
    let tag =
      match diverging_sections serial observed with
      | [] -> "state"
      | secs -> String.concat "," secs
    in
    let sessions =
      List.sort_uniq compare (List.map (fun u -> u.u_session) units)
    in
    Some
      { Violation.vi_oracle = "isolation";
        vi_tag = tag;
        vi_detail =
          Printf.sprintf
            "interleaved execution of %d session(s) (%d unit(s)) is not \
             serializable in commit order: data state diverges on %s"
            (List.length sessions) (List.length units) tag;
        vi_sql =
          String.concat "\n"
            (List.map
               (fun (sid, stmt) ->
                  Printf.sprintf "/*s%d*/ %s" sid (Sql_printer.stmt stmt))
               (Array.to_list steps)) }
