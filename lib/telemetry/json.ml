type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_str f =
  if Float.is_nan f then "null" (* JSON has no NaN *)
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | Str s -> escape buf s
  | Arr l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
         if i > 0 then Buffer.add_char buf ',';
         write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         escape buf k;
         Buffer.add_char buf ':';
         write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over a cursor                      *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let parse_literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s && String.sub c.s c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> Buffer.add_char buf '"'; advance c
       | Some '\\' -> Buffer.add_char buf '\\'; advance c
       | Some '/' -> Buffer.add_char buf '/'; advance c
       | Some 'n' -> Buffer.add_char buf '\n'; advance c
       | Some 'r' -> Buffer.add_char buf '\r'; advance c
       | Some 't' -> Buffer.add_char buf '\t'; advance c
       | Some 'b' -> Buffer.add_char buf '\b'; advance c
       | Some 'f' -> Buffer.add_char buf '\012'; advance c
       | Some 'u' ->
         advance c;
         if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
         let hex = String.sub c.s c.pos 4 in
         (match int_of_string_opt ("0x" ^ hex) with
          | None -> fail c "bad \\u escape"
          | Some code ->
            (* ASCII range only; telemetry never emits more *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
            c.pos <- c.pos + 4)
       | _ -> fail c "bad escape");
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let text = String.sub c.s start (c.pos - start) in
  let is_float =
    String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((key, v) :: acc)
        | _ -> fail c "expected , or }"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elems (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected , or ]"
      in
      Arr (elems [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %c" ch)

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos = String.length s then Ok v
    else Error (Printf.sprintf "trailing input at offset %d" c.pos)
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function Arr l -> Some l | _ -> None
