type t = { emit : Event.t -> unit; close : unit -> unit }

let emit t ev = t.emit ev

let close t = t.close ()

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let tee sinks =
  { emit = (fun ev -> List.iter (fun s -> s.emit ev) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks) }

let locked sink =
  let lock = Mutex.create () in
  let guarded f x =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> f x)
  in
  { emit = guarded sink.emit; close = (fun () -> guarded sink.close ()) }

let runs_dir () =
  let dir = "runs" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let jsonl ?dir ?(append = false) ~name () =
  let dir = match dir with Some d -> d | None -> runs_dir () in
  let path = Filename.concat dir (name ^ ".jsonl") in
  let oc =
    if append then
      Out_channel.open_gen [ Open_append; Open_creat; Open_text ] 0o644 path
    else Out_channel.open_text path
  in
  ( { emit =
        (fun ev ->
           Out_channel.output_string oc (Json.to_string (Event.to_json ev));
           Out_channel.output_char oc '\n');
      close = (fun () -> Out_channel.close oc) },
    path )

(* The one formatter behind every console summary the CLI prints; the
   format strings are the determinism-checked CLI output, so change them
   only together with the CLI's expectations. *)
let human ?print () =
  let print =
    match print with
    | Some p -> p
    | None -> fun s -> print_string s; flush stdout
  in
  let emit = function
    | Event.Checkpoint { point; _ } when point.Event.p_series = "aggregate" ->
      print
        (Printf.sprintf "  ... execs=%d branches=%d bugs=%d\n"
           point.Event.p_execs point.p_branches (List.length point.p_bugs))
    | Event.Summary { point; shards; sync_rounds; _ } ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf
        (Printf.sprintf
           "%-9s execs=%d branches=%d crashes(total)=%d crashes(unique)=%d\n"
           point.Event.p_series point.p_execs point.p_branches
           point.p_crashes_total point.p_crashes_unique);
      if point.p_bugs <> [] then
        Buffer.add_string buf
          (Printf.sprintf "  bugs: %s\n" (String.concat ", " point.p_bugs));
      if List.length shards > 1 then begin
        List.iteri
          (fun i (sh : Event.point) ->
             Buffer.add_string buf
               (Printf.sprintf
                  "  shard %d: execs=%d branches=%d crashes(unique)=%d\n" i
                  sh.p_execs sh.p_branches sh.p_crashes_unique))
          shards;
        Buffer.add_string buf
          (Printf.sprintf "  sync rounds: %d\n" sync_rounds)
      end;
      print (Buffer.contents buf)
    | Event.Checkpoint _ | Event.Meta _ | Event.Registry_dump _ -> ()
  in
  { emit; close = (fun () -> ()) }

let json_lines ?print () =
  let print =
    match print with
    | Some p -> p
    | None -> fun s -> print_string s; flush stdout
  in
  { emit =
      (fun ev -> print (Json.to_string (Event.to_json ev) ^ "\n"));
    close = (fun () -> ()) }

let bench_json ~path ~bench ?(extra = []) metrics =
  let metric (name, value, unit_) =
    Json.Obj
      [ ("name", Json.Str name); ("value", Json.Float value);
        ("unit", Json.Str unit_) ]
  in
  let doc =
    Json.Obj
      ((("schema", Json.Str "legofuzz-bench-v1") :: ("bench", Json.Str bench)
        :: extra)
       @ [ ("metrics", Json.Arr (List.map metric metrics)) ])
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string doc);
      Out_channel.output_char oc '\n')
