(** Span-based stage timing.

    A span attributes wall-clock cost to a named pipeline stage — the
    fuzzing loop uses [mutate], [synthesize], [execute] and [triage] —
    by recording each timed section into a pair of metrics in the owning
    registry: a counter [stage.<name>.calls] and a microsecond histogram
    [stage.<name>.us].

    Wall-clock is an {e annotation only}: it feeds histograms that sinks
    may render, never any value on the deterministic execs/iterations
    axis, so timing a section cannot perturb a campaign's results. *)

type t

val now_s : unit -> float
(** Wall clock in seconds ([Unix.gettimeofday]); the one clock the whole
    telemetry subsystem uses. *)

val stage : Registry.t -> string -> t
(** The span for stage [name] in [registry] (find-or-create). *)

val time : t -> (unit -> 'a) -> 'a
(** Run the thunk, record its duration. Exceptions propagate untimed.
    Durations are recorded in whole microseconds, but the sub-µs
    remainder carries over into the span's next timed section, so a
    stage of many fast calls accumulates its true total instead of
    truncating to zero. *)

val record_us : t -> int -> unit
(** Record an externally measured duration in microseconds. *)

val stage_names : Registry.t -> string list
(** Stages with recorded time, sorted — recovered from the registry's
    [stage.<name>.us] histograms. *)

val stage_stats : Registry.t -> string -> (int * int) option
(** [(calls, total_us)] for one stage, if recorded. *)
