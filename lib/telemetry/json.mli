(** A minimal JSON value, printer and parser.

    The container ships no JSON library, and the telemetry subsystem only
    needs the subset its own sinks emit: objects, arrays, strings with
    escapes, integers, floats, booleans and null. Printing is canonical
    (no whitespace, object keys in caller order) so that equal values
    print equally and the JSONL round-trip used by [legofuzz report] is
    exact. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Canonical single-line rendering. Floats that carry no fractional part
    print with a trailing [.0] so they parse back as floats. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing garbage is an error. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] elsewhere. *)

val to_int : t -> int option
(** [Int] directly, or a [Float] with an integral value. *)

val to_float : t -> float option

val to_str : t -> string option

val to_list : t -> t list option
