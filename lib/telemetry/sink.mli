(** Pluggable telemetry sinks.

    A sink consumes {!Event.t}s; campaigns emit into whatever sink stack
    the caller assembles ({!tee}, {!locked}). Three concrete sinks cover
    the paper-reproduction needs:

    - {!jsonl}: an AFL-[plot_data]-style machine-readable recorder, one
      JSON object per line, written under the [runs/] artifact directory;
    - {!human}: the exact human summary the CLI has always printed —
      checkpoint progress lines and the final per-fuzzer/per-shard block
      (so console formatting lives in one place);
    - {!json_lines}: every event straight to stdout as JSON, for
      [--json] scripted consumption.

    {!bench_json} is the [BENCH_*.json] writer the bench harness uses to
    publish its perf trajectory. *)

type t = { emit : Event.t -> unit; close : unit -> unit }

val emit : t -> Event.t -> unit

val close : t -> unit

val null : t

val tee : t list -> t
(** Emit to every sink, close every sink. *)

val locked : t -> t
(** Serialize emissions with a mutex — required when shards on multiple
    domains share one sink. *)

val runs_dir : unit -> string
(** The run-artifact directory (["runs"]), created on first use; all
    file-writing sinks put their output here so runs never scatter
    top-level files. *)

val jsonl : ?dir:string -> ?append:bool -> name:string -> unit -> t * string
(** A JSONL recorder writing [<dir>/<name>.jsonl] (default dir
    {!runs_dir}); returns the sink and the path. The file is truncated,
    written line-by-line and flushed on close. With [append] (default
    false) an existing file is extended instead — a resumed campaign's
    checkpoints continue the interrupted run's stream (the resume [Meta]
    event carries the [resumed_from] field marking the boundary). *)

val human : ?print:(string -> unit) -> unit -> t
(** Console summary formatting. [Checkpoint] events of the ["aggregate"]
    series print progress lines; [Summary] events print the final block;
    everything else is silent. [print] defaults to stdout with a flush
    per event (tests capture output by passing a buffer). *)

val json_lines : ?print:(string -> unit) -> unit -> t
(** Every event as one JSON line (default: stdout). *)

val bench_json :
  path:string ->
  bench:string ->
  ?extra:(string * Json.t) list ->
  (string * float * string) list ->
  unit
(** Write a [BENCH_*.json] perf-trajectory file: schema
    [{"schema":"legofuzz-bench-v1","bench":<bench>,...extra,
    "metrics":[{"name","value","unit"},...]}]. *)
