type counter = { mutable cv : int }
type gauge = { mutable gv : int }

type histogram = {
  h_edges : int array;
  h_counts : int array;  (* length = edges + 1, last is overflow *)
  mutable h_sum : int;
  mutable h_n : int;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hists : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8 }

let default_edges =
  [| 0; 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096; 8192;
     16384; 32768; 65536 |]

(* --- handles --------------------------------------------------------- *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { cv = 0 } in
    Hashtbl.replace t.counters name c;
    c

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { gv = 0 } in
    Hashtbl.replace t.gauges name g;
    g

let check_edges name edges =
  let ok = ref (Array.length edges > 0) in
  for i = 1 to Array.length edges - 1 do
    if edges.(i) <= edges.(i - 1) then ok := false
  done;
  if not !ok then
    invalid_arg
      (Printf.sprintf "Registry.histogram %s: edges must be increasing" name)

let histogram ?(edges = default_edges) t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    check_edges name edges;
    let h =
      { h_edges = Array.copy edges;
        h_counts = Array.make (Array.length edges + 1) 0;
        h_sum = 0;
        h_n = 0 }
    in
    Hashtbl.replace t.hists name h;
    h

(* --- updates --------------------------------------------------------- *)

let incr ?(by = 1) c = c.cv <- c.cv + by

let set_max g v = if v > g.gv then g.gv <- v

let bucket_index edges v =
  (* first edge >= v; overflow bucket otherwise *)
  let n = Array.length edges in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if edges.(mid) >= v then go lo mid else go (mid + 1) hi
  in
  if v > edges.(n - 1) then n else go 0 (n - 1)

let observe h v =
  let i = bucket_index h.h_edges v in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum + v;
  h.h_n <- h.h_n + 1

(* --- reads ----------------------------------------------------------- *)

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.cv | None -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some g -> g.gv | None -> 0

let histogram_stats t name =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h -> Some (Array.copy h.h_edges, Array.copy h.h_counts, h.h_sum, h.h_n)

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let counter_names t = sorted_keys t.counters

let gauge_names t = sorted_keys t.gauges

let histogram_names t = sorted_keys t.hists

(* --- the sync algebra ------------------------------------------------ *)

let snapshot t =
  let out = create () in
  Hashtbl.iter (fun k c -> Hashtbl.replace out.counters k { cv = c.cv })
    t.counters;
  Hashtbl.iter (fun k g -> Hashtbl.replace out.gauges k { gv = g.gv })
    t.gauges;
  Hashtbl.iter
    (fun k h ->
       Hashtbl.replace out.hists k
         { h_edges = Array.copy h.h_edges;
           h_counts = Array.copy h.h_counts;
           h_sum = h.h_sum;
           h_n = h.h_n })
    t.hists;
  out

let diff t ~since =
  let out = create () in
  Hashtbl.iter
    (fun k c ->
       let base =
         match Hashtbl.find_opt since.counters k with
         | Some b -> b.cv
         | None -> 0
       in
       if c.cv <> base then Hashtbl.replace out.counters k { cv = c.cv - base })
    t.counters;
  Hashtbl.iter (fun k g -> Hashtbl.replace out.gauges k { gv = g.gv })
    t.gauges;
  Hashtbl.iter
    (fun k h ->
       let base = Hashtbl.find_opt since.hists k in
       let counts =
         Array.mapi
           (fun i c ->
              match base with
              | Some b when Array.length b.h_counts = Array.length h.h_counts
                -> c - b.h_counts.(i)
              | _ -> c)
           h.h_counts
       in
       let sum, n =
         match base with
         | Some b when Array.length b.h_counts = Array.length h.h_counts ->
           (h.h_sum - b.h_sum, h.h_n - b.h_n)
         | _ -> (h.h_sum, h.h_n)
       in
       if n <> 0 || Array.exists (fun c -> c <> 0) counts then
         Hashtbl.replace out.hists k
           { h_edges = Array.copy h.h_edges; h_counts = counts;
             h_sum = sum; h_n = n })
    t.hists;
  out

let merge ~into src =
  Hashtbl.iter
    (fun k c -> let dst = counter into k in dst.cv <- dst.cv + c.cv)
    src.counters;
  Hashtbl.iter (fun k g -> set_max (gauge into k) g.gv) src.gauges;
  Hashtbl.iter
    (fun k h ->
       match Hashtbl.find_opt into.hists k with
       | None ->
         Hashtbl.replace into.hists k
           { h_edges = Array.copy h.h_edges;
             h_counts = Array.copy h.h_counts;
             h_sum = h.h_sum;
             h_n = h.h_n }
       | Some dst ->
         if dst.h_edges <> h.h_edges then
           invalid_arg
             (Printf.sprintf "Registry.merge: histogram %s edges disagree" k);
         Array.iteri
           (fun i c -> dst.h_counts.(i) <- dst.h_counts.(i) + c)
           h.h_counts;
         dst.h_sum <- dst.h_sum + h.h_sum;
         dst.h_n <- dst.h_n + h.h_n)
    src.hists

(* --- JSON ------------------------------------------------------------ *)

let to_json t =
  let ints_of a = Json.Arr (Array.to_list (Array.map (fun i -> Json.Int i) a)) in
  let counters =
    List.map (fun k -> (k, Json.Int (counter_value t k))) (counter_names t)
  in
  let gauges =
    List.map (fun k -> (k, Json.Int (gauge_value t k))) (sorted_keys t.gauges)
  in
  let hists =
    List.map
      (fun k ->
         let h = Hashtbl.find t.hists k in
         ( k,
           Json.Obj
             [ ("edges", ints_of h.h_edges); ("counts", ints_of h.h_counts);
               ("sum", Json.Int h.h_sum); ("n", Json.Int h.h_n) ] ))
      (histogram_names t)
  in
  Json.Obj
    [ ("counters", Json.Obj counters); ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj hists) ]

let of_json j =
  let ( let* ) = Result.bind in
  let fields name =
    match Json.member name j with
    | Some (Json.Obj fields) -> Ok fields
    | Some _ -> Error (Printf.sprintf "registry: %S is not an object" name)
    | None -> Ok []
  in
  let int_field obj name =
    match Option.bind (Json.member name obj) Json.to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "registry: missing int %S" name)
  in
  let int_array obj name =
    match Option.bind (Json.member name obj) Json.to_list with
    | None -> Error (Printf.sprintf "registry: missing array %S" name)
    | Some l ->
      let ints = List.filter_map Json.to_int l in
      if List.length ints = List.length l then Ok (Array.of_list ints)
      else Error (Printf.sprintf "registry: non-int in %S" name)
  in
  let t = create () in
  let* counters = fields "counters" in
  let* () =
    List.fold_left
      (fun acc (k, v) ->
         let* () = acc in
         match Json.to_int v with
         | Some i ->
           (counter t k).cv <- i;
           Ok ()
         | None -> Error (Printf.sprintf "registry: counter %S not an int" k))
      (Ok ()) counters
  in
  let* gauges = fields "gauges" in
  let* () =
    List.fold_left
      (fun acc (k, v) ->
         let* () = acc in
         match Json.to_int v with
         | Some i ->
           (gauge t k).gv <- i;
           Ok ()
         | None -> Error (Printf.sprintf "registry: gauge %S not an int" k))
      (Ok ()) gauges
  in
  let* hists = fields "histograms" in
  let* () =
    List.fold_left
      (fun acc (k, v) ->
         let* () = acc in
         let* edges = int_array v "edges" in
         let* counts = int_array v "counts" in
         let* sum = int_field v "sum" in
         let* n = int_field v "n" in
         if Array.length counts <> Array.length edges + 1 then
           Error (Printf.sprintf "registry: histogram %S shape" k)
         else begin
           Hashtbl.replace t.hists k
             { h_edges = edges; h_counts = counts; h_sum = sum; h_n = n };
           Ok ()
         end)
      (Ok ()) hists
  in
  Ok t
