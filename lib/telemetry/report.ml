let parse_lines lines =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (i + 1) acc rest
      else
        (match Event.of_line line with
         | Ok ev -> go (i + 1) (ev :: acc) rest
         | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
  in
  go 1 [] lines

(* --- helpers --------------------------------------------------------- *)

let checkpoints events =
  List.filter_map
    (function Event.Checkpoint { point; _ } -> Some point | _ -> None)
    events

let series_names points =
  List.fold_left
    (fun acc (p : Event.point) ->
       if List.mem p.p_series acc then acc else acc @ [ p.p_series ])
    [] points

let bar width value max_value =
  if max_value <= 0 then ""
  else String.make (max 0 (value * width / max_value)) '#'

(* --- sections -------------------------------------------------------- *)

let render_meta buf events =
  List.iter
    (function
      | Event.Meta fields ->
        let cell k =
          match List.assoc_opt k fields with
          | Some (Json.Str s) -> Some s
          | Some (Json.Int i) -> Some (string_of_int i)
          | _ -> None
        in
        let pairs =
          List.filter_map
            (fun k ->
               Option.map (fun v -> Printf.sprintf "%s=%s" k v) (cell k))
            [ "command"; "fuzzer"; "dialect"; "seed"; "execs"; "jobs";
              "sync_every"; "feedback" ]
        in
        if pairs <> [] then
          Buffer.add_string buf
            (Printf.sprintf "run: %s\n" (String.concat " " pairs))
      | _ -> ())
    events

let render_series buf events =
  let points = checkpoints events in
  (* A run recorded with a checkpoint interval longer than its budget has
     zero checkpoints; say so rather than silently dropping the section
     (the stream is valid, there is just no time series to plot). *)
  if points = [] then begin
    if events <> [] then
      Buffer.add_string buf
        "\ncoverage over time: no checkpoints recorded\n"
  end
  else begin
    Buffer.add_string buf "\ncoverage over time (branches vs execs)\n";
    let max_branches =
      List.fold_left (fun m (p : Event.point) -> max m p.p_branches) 1 points
    in
    List.iter
      (fun name ->
         let mine =
           List.filter (fun (p : Event.point) -> p.p_series = name) points
         in
         Buffer.add_string buf (Printf.sprintf "  [%s]\n" name);
         List.iter
           (fun (p : Event.point) ->
              Buffer.add_string buf
                (Printf.sprintf "  %10d %8d  %s\n" p.p_execs p.p_branches
                   (bar 40 p.p_branches max_branches)))
           mine)
      (series_names points)
  end

let render_stages buf events =
  let dumps =
    List.filter_map
      (function
        | Event.Registry_dump { series; registry } -> Some (series, registry)
        | _ -> None)
      events
  in
  List.iter
    (fun (series, reg) ->
       let stages = Span.stage_names reg in
       if stages <> [] then begin
         Buffer.add_string buf
           (Printf.sprintf "\nstage-time breakdown [%s]\n" series);
         let stats =
           List.filter_map
             (fun s -> Option.map (fun st -> (s, st)) (Span.stage_stats reg s))
             stages
         in
         let total_us =
           List.fold_left (fun acc (_, (_, us)) -> acc + us) 0 stats
         in
         Buffer.add_string buf
           (Printf.sprintf "  %-12s %10s %12s %7s\n" "stage" "calls"
              "total_ms" "share");
         List.iter
           (fun (name, (calls, us)) ->
              let share =
                if total_us = 0 then 0.0
                else 100.0 *. float_of_int us /. float_of_int total_us
              in
              Buffer.add_string buf
                (Printf.sprintf "  %-12s %10d %12.1f %6.1f%%\n" name calls
                   (float_of_int us /. 1000.0) share))
           stats
       end;
       let counters = Registry.counter_names reg in
       let plain =
         List.filter
           (fun c -> not (String.length c > 6 && String.sub c 0 6 = "stage."))
           counters
       in
       if plain <> [] then begin
         Buffer.add_string buf (Printf.sprintf "\ncounters [%s]\n" series);
         List.iter
           (fun c ->
              Buffer.add_string buf
                (Printf.sprintf "  %-28s %12d\n" c
                   (Registry.counter_value reg c)))
           plain
       end;
       let gauges = Registry.gauge_names reg in
       if gauges <> [] then begin
         Buffer.add_string buf (Printf.sprintf "\ngauges [%s]\n" series);
         List.iter
           (fun g ->
              Buffer.add_string buf
                (Printf.sprintf "  %-28s %12d\n" g
                   (Registry.gauge_value reg g)))
           gauges
       end)
    dumps

(* Farm budget allocation (DESIGN.md §16): present only when the stream
   was recorded by [legofuzz farm], i.e. when the "farm" registry dump
   carries farm.<id>.* scheduling counters. The campaign id is whatever
   sits between the "farm." prefix and the ".rounds/.allocated/.new_keys"
   suffix, so ids containing dots render correctly. *)
let render_farm buf events =
  List.iter
    (function
      | Event.Registry_dump { series = "farm"; registry } ->
        let suffixes = [ ".rounds"; ".allocated"; ".new_keys" ] in
        (* farm.worker.* and farm.store.* are scheduler namespaces, not
           campaign ids — the worker table below renders those. *)
        let reserved = [ "farm.worker."; "farm.store." ] in
        let has_prefix p c =
          String.length c >= String.length p
          && String.sub c 0 (String.length p) = p
        in
        let ids =
          List.filter_map
            (fun c ->
               if
                 String.length c > 5
                 && String.sub c 0 5 = "farm."
                 && not (List.exists (fun p -> has_prefix p c) reserved)
               then
                 List.find_map
                   (fun sfx ->
                      let lc = String.length c and ls = String.length sfx in
                      if lc > 5 + ls && String.sub c (lc - ls) ls = sfx then
                        Some (String.sub c 5 (lc - 5 - ls))
                      else None)
                   suffixes
               else None)
            (Registry.counter_names registry)
          |> List.sort_uniq compare
        in
        if ids <> [] then begin
          let value id which =
            Registry.counter_value registry
              (Printf.sprintf "farm.%s.%s" id which)
          in
          let total =
            List.fold_left (fun acc id -> acc + value id "allocated") 0 ids
          in
          Buffer.add_string buf "\nfarm allocation\n";
          Buffer.add_string buf
            (Printf.sprintf "  %-16s %7s %10s %7s %9s %9s\n" "campaign"
               "rounds" "allocated" "share" "new_keys" "keys/1k");
          List.iter
            (fun id ->
               let allocated = value id "allocated" in
               let new_keys = value id "new_keys" in
               let share =
                 if total = 0 then 0.0
                 else 100.0 *. float_of_int allocated /. float_of_int total
               in
               let per_k =
                 if allocated = 0 then 0.0
                 else 1000.0 *. float_of_int new_keys /. float_of_int allocated
               in
               Buffer.add_string buf
                 (Printf.sprintf "  %-16s %7d %10d %6.1f%% %9d %9.1f\n" id
                    (value id "rounds") allocated share new_keys per_k))
            ids
        end
      | _ -> ())
    events

(* Worker-process utilization (DESIGN.md §17): present only for
   multi-process farm runs, i.e. when the "farm" registry dump carries
   farm.worker.<K>.* counters. *)
let render_workers buf events =
  List.iter
    (function
      | Event.Registry_dump { series = "farm"; registry } ->
        let prefix = "farm.worker." in
        let lp = String.length prefix in
        let ids =
          List.filter_map
            (fun c ->
               if String.length c > lp && String.sub c 0 lp = prefix then
                 match String.index_from_opt c lp '.' with
                 | Some dot -> int_of_string_opt (String.sub c lp (dot - lp))
                 | None -> None
               else None)
            (Registry.counter_names registry)
          |> List.sort_uniq compare
        in
        if ids <> [] then begin
          let value k which =
            Registry.counter_value registry
              (Printf.sprintf "farm.worker.%d.%s" k which)
          in
          Buffer.add_string buf "\nfarm workers\n";
          Buffer.add_string buf
            (Printf.sprintf "  %-8s %7s %10s %9s\n" "worker" "rounds"
               "execs" "restarts");
          List.iter
            (fun k ->
               Buffer.add_string buf
                 (Printf.sprintf "  %-8d %7d %10d %9d\n" k
                    (value k "rounds") (value k "execs")
                    (value k "restarts")))
            ids;
          let reloads =
            Registry.counter_value registry "farm.store.reloads"
          in
          let skipped =
            Registry.counter_value registry "farm.store.reload_skipped"
          in
          if reloads > 0 || skipped > 0 then
            Buffer.add_string buf
              (Printf.sprintf
                 "  store reloads: %d performed, %d skipped (manifest \
                  unchanged)\n"
                 reloads skipped)
        end
      | _ -> ())
    events

(* Grammar-rule coverage (DESIGN.md §15): present only when the run was
   recorded with --feedback grammar|both, i.e. when a registry dump
   carries the grammar.* namespace. *)
let render_grammar buf events =
  List.iter
    (function
      | Event.Registry_dump { series; registry } ->
        let rules = Registry.gauge_value registry "grammar.rules" in
        let pairs = Registry.gauge_value registry "grammar.pairs" in
        if rules > 0 || pairs > 0 then begin
          Buffer.add_string buf
            (Printf.sprintf "\ngrammar coverage [%s]\n" series);
          Buffer.add_string buf
            (Printf.sprintf "  %-28s %12d\n" "rules fired" rules);
          Buffer.add_string buf
            (Printf.sprintf "  %-28s %12d\n" "rule pairs fired" pairs);
          Buffer.add_string buf
            (Printf.sprintf "  %-28s %12d\n" "parse errors"
               (Registry.counter_value registry "grammar.parse_errors"))
        end
      | _ -> ())
    events

let render_summary buf events =
  List.iter
    (function
      | Event.Summary { point; shards; sync_rounds; wall_s; execs_per_sec }
        ->
        Buffer.add_string buf
          (Printf.sprintf
             "\nsummary [%s]: execs=%d branches=%d crashes(total)=%d \
              crashes(unique)=%d\n"
             point.Event.p_series point.p_execs point.p_branches
             point.p_crashes_total point.p_crashes_unique);
        if point.p_bugs <> [] then
          Buffer.add_string buf
            (Printf.sprintf "  bugs: %s\n" (String.concat ", " point.p_bugs));
        List.iteri
          (fun i (sh : Event.point) ->
             Buffer.add_string buf
               (Printf.sprintf
                  "  shard %d: execs=%d branches=%d crashes(unique)=%d\n" i
                  sh.p_execs sh.p_branches sh.p_crashes_unique))
          shards;
        if sync_rounds > 0 then
          Buffer.add_string buf
            (Printf.sprintf "  sync rounds: %d\n" sync_rounds);
        (match (wall_s, execs_per_sec) with
         | Some w, Some eps ->
           Buffer.add_string buf
             (Printf.sprintf "  wall: %.2fs (%.0f execs/sec)\n" w eps)
         | Some w, None ->
           Buffer.add_string buf (Printf.sprintf "  wall: %.2fs\n" w)
         | None, _ -> ())
      | _ -> ())
    events

let render events =
  let buf = Buffer.create 1024 in
  render_meta buf events;
  render_series buf events;
  render_farm buf events;
  render_workers buf events;
  render_stages buf events;
  render_grammar buf events;
  render_summary buf events;
  if Buffer.length buf = 0 then "empty telemetry stream\n"
  else Buffer.contents buf
