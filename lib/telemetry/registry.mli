(** The metric registry: counters, gauges and fixed-bucket histograms.

    A registry is strictly single-domain state — like a shard's virgin
    coverage map, it is updated without locks by the owning domain and
    {e merged} into a global registry at campaign sync rounds. The merge
    operation mirrors {!Coverage.Bitmap.merge}'s algebra:

    - counters add (commutative, associative),
    - gauges take the maximum (commutative, associative, idempotent),
    - histograms add bucket-wise (commutative, associative; histograms
      with the same name must share bucket edges).

    Because counter and histogram merges are {e not} idempotent, shards
    never re-publish absolute values: they publish {!diff}s against their
    last published snapshot, exactly as AFL secondaries publish only new
    queue entries. [merge (diff cur ~since:last)] after [merge last] is
    equivalent to [merge cur].

    Updating a registry never performs I/O and never observes the clock,
    so metrics collection is free of determinism hazards: with no sink
    attached, a fuzzing run with metrics on is byte-identical to one with
    metrics off. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(* --- handles --------------------------------------------------------- *)

val counter : t -> string -> counter
(** Find-or-create; hot paths should hold on to the handle. *)

val gauge : t -> string -> gauge

val histogram : ?edges:int array -> t -> string -> histogram
(** Find-or-create with the given bucket upper edges (default
    {!default_edges}). Edges must be strictly increasing; an existing
    histogram's edges win. Bucket [i] counts observations [v] with
    [edges.(i-1) < v <= edges.(i)]; one overflow bucket catches
    [v > edges.(last)]. *)

val default_edges : int array
(** [0, 1, 2, 4, 8, ..., 65536]: powers of two, a decade of AFL-ish
    log-buckets wide enough for costs and microsecond stage timings. *)

(* --- updates (lock-free, owner domain only) -------------------------- *)

val incr : ?by:int -> counter -> unit
val set_max : gauge -> int -> unit
(** Raise the gauge to [v] if larger (max is the gauge merge law). *)

val observe : histogram -> int -> unit

(* --- reads ----------------------------------------------------------- *)

val counter_value : t -> string -> int
(** 0 when absent. *)

val gauge_value : t -> string -> int
val histogram_stats : t -> string -> (int array * int array * int * int) option
(** [(edges, counts, sum, n)] of a histogram, copied. *)

val counter_names : t -> string list
(** Sorted. *)

val gauge_names : t -> string list
(** Sorted. *)

val histogram_names : t -> string list
(** Sorted. *)

(* --- the sync algebra ------------------------------------------------ *)

val snapshot : t -> t
(** Deep copy, for shards to {!diff} against later. *)

val diff : t -> since:t -> t
(** The delta registry: counters and histogram buckets subtract, gauges
    carry the current value (max-merge makes re-publishing a gauge
    harmless). Metrics absent from [since] carry their full value. *)

val merge : into:t -> t -> unit
(** Fold [src] into [into] under the merge laws above.
    @raise Invalid_argument when histograms of the same name disagree on
    bucket edges. *)

val to_json : t -> Json.t
(** Canonical dump (keys sorted) — deterministic for equal contents. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; used by [legofuzz report]. *)
