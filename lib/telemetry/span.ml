type t = {
  calls : Registry.counter;
  us : Registry.histogram;
  (* Sub-microsecond residue of timed sections. Truncating each call to
     whole µs made fast stages (triage on a quiet run: tens of ns per
     call) report 0 total time no matter how often they ran; carrying
     the fraction into the next call keeps the stage's *sum* accurate
     to the clock's resolution. *)
  mutable carry_us : float;
}

let now_s = Unix.gettimeofday

let hist_name name = "stage." ^ name ^ ".us"

let calls_name name = "stage." ^ name ^ ".calls"

let stage reg name =
  { calls = Registry.counter reg (calls_name name);
    us = Registry.histogram reg (hist_name name); carry_us = 0. }

let record_us t us =
  Registry.incr t.calls;
  Registry.observe t.us (max 0 us)

let time t f =
  let start = now_s () in
  let out = f () in
  let dt = ((now_s () -. start) *. 1e6) +. t.carry_us in
  let whole = int_of_float dt in
  t.carry_us <- dt -. float_of_int whole;
  record_us t whole;
  out

let stage_of_hist name =
  (* "stage.<name>.us" -> <name> *)
  if
    String.length name > 9
    && String.sub name 0 6 = "stage."
    && String.sub name (String.length name - 3) 3 = ".us"
  then Some (String.sub name 6 (String.length name - 9))
  else None

let stage_names reg =
  List.filter_map stage_of_hist (Registry.histogram_names reg)

let stage_stats reg name =
  match Registry.histogram_stats reg (hist_name name) with
  | None -> None
  | Some (_, _, sum, _) -> Some (Registry.counter_value reg (calls_name name), sum)
