(** The telemetry event model — what flows from campaigns into sinks.

    Every event serializes to one JSON object with a ["type"] tag, so a
    recorded run is a JSONL stream that [legofuzz report] (or any script)
    can parse line by line, AFL [plot_data] style.

    Determinism contract: the primary x-axis of every series is the
    deterministic execution/iteration count; [wall_s] and
    [execs_per_sec] are annotations that never influence any other
    field. *)

type point = {
  p_series : string;
      (** which series the point belongs to: ["aggregate"], ["shard-0"],
          or a ["<prefix>/"]-qualified variant in multi-run streams *)
  p_iteration : int;
  p_execs : int;
  p_branches : int;
  p_crashes_total : int;
  p_crashes_unique : int;
  p_bugs : string list;
}

type t =
  | Meta of (string * Json.t) list
      (** run header: command, fuzzer, dialect, seed, budget, jobs, ... *)
  | Checkpoint of {
      point : point;
      wall_s : float option;
      execs_per_sec : float option;
    }  (** one sample of a coverage/exec/crash series *)
  | Summary of {
      point : point;  (** the final aggregate; [p_series] is the run name *)
      shards : point list;  (** per-shard finals, shard-id order *)
      sync_rounds : int;
      wall_s : float option;
      execs_per_sec : float option;
    }
  | Registry_dump of { series : string; registry : Registry.t }
      (** final metric registry of one series (stage histograms, engine
          counters) *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

val of_line : string -> (t, string) result
(** Parse one JSONL line. *)
