type point = {
  p_series : string;
  p_iteration : int;
  p_execs : int;
  p_branches : int;
  p_crashes_total : int;
  p_crashes_unique : int;
  p_bugs : string list;
}

type t =
  | Meta of (string * Json.t) list
  | Checkpoint of {
      point : point;
      wall_s : float option;
      execs_per_sec : float option;
    }
  | Summary of {
      point : point;
      shards : point list;
      sync_rounds : int;
      wall_s : float option;
      execs_per_sec : float option;
    }
  | Registry_dump of { series : string; registry : Registry.t }

(* --- to JSON --------------------------------------------------------- *)

let json_of_point p =
  Json.Obj
    [ ("series", Json.Str p.p_series); ("iteration", Json.Int p.p_iteration);
      ("execs", Json.Int p.p_execs); ("branches", Json.Int p.p_branches);
      ("crashes_total", Json.Int p.p_crashes_total);
      ("crashes_unique", Json.Int p.p_crashes_unique);
      ("bugs", Json.Arr (List.map (fun b -> Json.Str b) p.p_bugs)) ]

let annot_fields wall_s execs_per_sec =
  let f name = function None -> [] | Some v -> [ (name, Json.Float v) ] in
  f "wall_s" wall_s @ f "execs_per_sec" execs_per_sec

let merge_obj tag fields extra =
  Json.Obj ((("type", Json.Str tag) :: fields) @ extra)

let to_json = function
  | Meta fields -> merge_obj "meta" fields []
  | Checkpoint { point; wall_s; execs_per_sec } ->
    let fields =
      match json_of_point point with Json.Obj f -> f | _ -> assert false
    in
    merge_obj "checkpoint" fields (annot_fields wall_s execs_per_sec)
  | Summary { point; shards; sync_rounds; wall_s; execs_per_sec } ->
    let fields =
      match json_of_point point with Json.Obj f -> f | _ -> assert false
    in
    merge_obj "summary" fields
      (annot_fields wall_s execs_per_sec
       @ [ ("shards", Json.Arr (List.map json_of_point shards));
           ("sync_rounds", Json.Int sync_rounds) ])
  | Registry_dump { series; registry } ->
    merge_obj "registry"
      [ ("series", Json.Str series) ]
      [ ("registry", Registry.to_json registry) ]

(* --- from JSON ------------------------------------------------------- *)

let ( let* ) = Result.bind

let int_field j name =
  match Option.bind (Json.member name j) Json.to_int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "event: missing int %S" name)

let str_field j name =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "event: missing string %S" name)

let float_opt j name = Option.bind (Json.member name j) Json.to_float

let point_of_json j =
  let* series = str_field j "series" in
  let* iteration = int_field j "iteration" in
  let* execs = int_field j "execs" in
  let* branches = int_field j "branches" in
  let* crashes_total = int_field j "crashes_total" in
  let* crashes_unique = int_field j "crashes_unique" in
  let bugs =
    match Option.bind (Json.member "bugs" j) Json.to_list with
    | Some l -> List.filter_map Json.to_str l
    | None -> []
  in
  Ok
    { p_series = series; p_iteration = iteration; p_execs = execs;
      p_branches = branches; p_crashes_total = crashes_total;
      p_crashes_unique = crashes_unique; p_bugs = bugs }

let of_json j =
  let* tag = str_field j "type" in
  match tag with
  | "meta" ->
    (match j with
     | Json.Obj fields ->
       Ok (Meta (List.filter (fun (k, _) -> k <> "type") fields))
     | _ -> Error "event: meta is not an object")
  | "checkpoint" ->
    let* point = point_of_json j in
    Ok
      (Checkpoint
         { point; wall_s = float_opt j "wall_s";
           execs_per_sec = float_opt j "execs_per_sec" })
  | "summary" ->
    let* point = point_of_json j in
    let* shards =
      match Option.bind (Json.member "shards" j) Json.to_list with
      | None -> Ok []
      | Some l ->
        List.fold_left
          (fun acc s ->
             let* acc = acc in
             let* p = point_of_json s in
             Ok (p :: acc))
          (Ok []) l
        |> Result.map List.rev
    in
    let* sync_rounds = int_field j "sync_rounds" in
    Ok
      (Summary
         { point; shards; sync_rounds; wall_s = float_opt j "wall_s";
           execs_per_sec = float_opt j "execs_per_sec" })
  | "registry" ->
    let* series = str_field j "series" in
    (match Json.member "registry" j with
     | None -> Error "event: registry dump without registry"
     | Some r ->
       let* registry = Registry.of_json r in
       Ok (Registry_dump { series; registry }))
  | other -> Error (Printf.sprintf "event: unknown type %S" other)

let of_line line =
  let* j = Json.of_string line in
  of_json j
