(** Render a recorded telemetry stream (the events of one [.jsonl] run)
    as a human-readable report: run header, coverage-over-time series
    with an ASCII growth chart on the deterministic execs axis,
    stage-time breakdown from the recorded span histograms, engine and
    harness counters, and the final summary. *)

val render : Event.t list -> string

val parse_lines : string list -> (Event.t list, string) result
(** Parse JSONL lines (blank lines skipped); the first malformed line is
    an error with its line number. *)
