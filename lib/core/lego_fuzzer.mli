(** The full LEGO fuzzing loop (paper Fig. 4).

    Each iteration interleaves the two steps:

    {ol
    {- {b Proactive affinity analysis}: pick a seed, apply
       sequence-oriented mutation (Algorithm 1); mutants that cover new
       branches are kept, their structures harvested into the skeleton
       library, and their type-affinities extracted (Algorithm 2);}
    {- {b Progressive sequence synthesis}: each newly discovered affinity
       triggers Algorithm 3, whose sequences are instantiated into test
       cases and queued for execution; productive ones re-enter the seed
       pool.}}

    Conventional intra-statement mutations run on top, as in the paper.
    With [sequence_oriented = false] both sequence-oriented steps are
    disabled and only conventional mutation remains — this is the paper's
    {b LEGO-} ablation (§V-D). *)

type config = {
  seed : int;                    (** PRNG seed *)
  sequence_oriented : bool;      (** [false] = LEGO- *)
  max_seq_len : int;             (** Algorithm 3's LEN (paper §VI: 3/5/8) *)
  instantiations_per_seq : int;  (** random re-instantiations per sequence *)
  max_pending : int;             (** bound on the synthesized-case queue *)
  conventional_per_step : int;
  synth_batch : int;             (** pending cases executed per iteration *)
}

val default_config : config
(** seed 1, sequence-oriented, LEN 5, 2 instantiations, 1024 pending,
    3 conventional mutants, batch 4. *)

type t

val create :
  ?config:config ->
  ?limits:Minidb.Limits.t ->
  ?harness:Fuzz.Harness.t ->
  Minidb.Profile.t ->
  t
(** [?harness] injects the execution harness (e.g. a shard-owned one from
    the campaign engine) instead of constructing a fresh one; [?limits]
    only applies to a harness constructed here. *)

val fuzzer : t -> Fuzz.Driver.fuzzer
(** Driver-compatible view (name is ["LEGO"] or ["LEGO-"]). *)

val affinities : t -> Affinity.t
(** The live affinity map (Tables II and IV count it). *)

val synthesized_total : t -> int
(** Sequences recorded by Algorithm 3 so far. *)

val skeletons : t -> Skeleton_library.t

val pool_size : t -> int
