open Sqlcore
module Vec = Reprutil.Vec

(* S is a forest of parent-pointer cons cells: sequence [id] is its
   parent's sequence extended with one statement type, so recording a
   sequence allocates one small node and never materializes a list or
   string. A sequence is uniquely determined by (parent, last type) —
   parents are themselves deduplicated — so the seen-set collapses to a
   per-node bitmap of already-recorded children ([Stmt_type.count] < 126
   bits): dedup is a bit test instead of hashing a key. Algorithm 3
   enumerates hundreds of thousands of sequences per campaign; callers
   reconstruct (via {!to_types}) only the reservoir-sampled handful they
   actually instantiate. *)
type node = {
  parent : int;  (* index into [s]; -1 for the length-1 seeds *)
  ty : int;  (* Stmt_type index of the last statement *)
  len : int;
  mutable kids0 : int;  (* children bitmap, type indices 0..62 *)
  mutable kids1 : int;  (* 63..125 *)
  mutable kids : (int * int) list;
      (* (type index, child id), newest first. Only scanned on the
         duplicate path — the bitmap answers "does this child exist?" —
         so the hot new-child path is a cons, never a hash. *)
}

type id = int

type t = {
  max_len : int;
  max_total : int;
  max_per_affinity : int;
  s : node Vec.t;
  ps : (int * int, int list ref) Hashtbl.t;
      (* Prefix Sequence index: (type, len) -> sequence ids, maintained
         incrementally as sequences are recorded (never rebuilt) *)
  roots : int array;  (* seed id per type index *)
}

let ps_bucket t ty_ix len =
  let key = (ty_ix, len) in
  match Hashtbl.find_opt t.ps key with
  | Some bucket -> bucket
  | None ->
    let bucket = ref [] in
    Hashtbl.replace t.ps key bucket;
    bucket

let has_kid node c =
  if c < 63 then node.kids0 land (1 lsl c) <> 0
  else node.kids1 land (1 lsl (c - 63)) <> 0

let set_kid node c =
  if c < 63 then node.kids0 <- node.kids0 lor (1 lsl c)
  else node.kids1 <- node.kids1 lor (1 lsl (c - 63))

(* Record the extension of [parent] with type index [c]: [(id, fresh)]
   where [id] is the (new or pre-existing) child sequence. *)
let record t parent c =
  let pnode = Vec.get t.s parent in
  if has_kid pnode c then (List.assoc c pnode.kids, false)
  else begin
    set_kid pnode c;
    let id = Vec.length t.s in
    Vec.push t.s
      { parent; ty = c; len = pnode.len + 1; kids0 = 0; kids1 = 0; kids = [] };
    pnode.kids <- (c, id) :: pnode.kids;
    let bucket = ps_bucket t c (pnode.len + 1) in
    bucket := id :: !bucket;
    (id, true)
  end

let create ?(max_len = 5) ?(max_total = 200_000) ?(max_per_affinity = 512)
    ~types () =
  assert (Stmt_type.count <= 126);
  let t =
    { max_len; max_total; max_per_affinity; s = Vec.create ();
      ps = Hashtbl.create 256;
      roots = Array.make Stmt_type.count (-1) }
  in
  List.iter
    (fun ty ->
       let c = Stmt_type.to_index ty in
       if t.roots.(c) < 0 then begin
         let id = Vec.length t.s in
         Vec.push t.s
           { parent = -1; ty = c; len = 1; kids0 = 0; kids1 = 0; kids = [] };
         t.roots.(c) <- id;
         let bucket = ps_bucket t c 1 in
         bucket := id :: !bucket
       end)
    types;
  t

let max_len t = t.max_len

let total t = Vec.length t.s

let to_types t id =
  let rec walk id acc =
    if id < 0 then acc
    else
      let n = Vec.get t.s id in
      walk n.parent (Stmt_type.of_index n.ty :: acc)
  in
  walk id []

let sequences t = List.init (Vec.length t.s) (to_types t)

let prefix_count t ~ty ~len =
  match Hashtbl.find_opt t.ps (Stmt_type.to_index ty, len) with
  | None -> 0
  | Some bucket -> List.length !bucket

exception Budget

let on_new_affinity_iter t aff (t1, t2) yield =
  let produced = ref 0 in
  let emit parent c =
    if Vec.length t.s >= t.max_total || !produced >= t.max_per_affinity then
      raise Budget;
    let id, fresh = record t parent c in
    if fresh then begin
      yield id;
      incr produced
    end;
    id
  in
  (* Function listSeq of Algorithm 3: extend the sequence [id] (ending
     in the type with index [node_ix], of length [level]) with every
     affinity successor, recording each extension. Duplicates are
     re-walked, not pruned: an earlier announcement's budget may have
     cut their subtrees short. Successor lists come from the affinity
     map's per-type memo, maintained incrementally across discoveries
     instead of being rebuilt per visit. *)
  let rec list_seq level node_ix id =
    if level < t.max_len then
      List.iter
        (fun next_ix ->
           let id' = emit id next_ix in
           list_seq (level + 1) next_ix id')
        (Affinity.successor_indices aff node_ix)
  in
  let i1 = Stmt_type.to_index t1 in
  let i2 = Stmt_type.to_index t2 in
  (try
     for level = 1 to t.max_len - 1 do
       (* Snapshot: extensions recorded below must not feed this loop. *)
       let prefix_ids =
         match Hashtbl.find_opt t.ps (i1, level) with
         | None -> []
         | Some bucket -> !bucket
       in
       List.iter
         (fun pid ->
            let id = emit pid i2 in
            list_seq (level + 1) i2 id)
         prefix_ids
     done
   with Budget -> ())

let on_new_affinity t aff pair =
  let news = ref [] in
  on_new_affinity_iter t aff pair (fun id -> news := id :: !news);
  List.rev !news
