(** Progressive sequence synthesis — the paper's Algorithm 3.

    Maintains the vector [S] of all synthesized SQL Type Sequences (length
    <= LEN) and the {e Prefix Sequence} index [PS : (type, len) -> indices
    of sequences of that length ending in that type]. When a new
    type-affinity [t1 -> t2] is discovered, exactly the {e new} sequences —
    those containing the new affinity — are produced: every recorded
    prefix ending in [t1] is extended with [t2] and then recursively
    closed under the whole affinity map up to LEN.

    [S] is stored as a forest of parent-pointer cons cells with a
    per-node bitmap of already-recorded children, so recording a
    sequence is one small allocation plus a bit test (no list or string
    is materialized and no key is hashed). Callers hold sequence {!id}s
    and reconstruct (via {!to_types}) only the handful they actually
    instantiate.

    Every type is seeded as a length-1 sequence (the paper synthesizes
    "beginning from specific starting statement types"; seeding all types
    is the complete choice). Growth is bounded by [max_total] and
    [max_per_affinity] so affinity-dense campaigns cannot explode (the
    paper's challenge C1). *)

open Sqlcore

type t

type id = int
(** Index of a synthesized sequence in [S]; stable for the lifetime of
    [t]. *)

val create :
  ?max_len:int ->
  ?max_total:int ->
  ?max_per_affinity:int ->
  types:Stmt_type.t list ->
  unit ->
  t
(** [max_len] defaults to 5 (the paper's best length in the §VI study);
    [max_total] to 200_000 sequences; [max_per_affinity] to 512. *)

val max_len : t -> int

val on_new_affinity :
  t -> Affinity.t -> Stmt_type.t * Stmt_type.t -> id list
(** Algorithm 3: synthesize and record all new sequences containing the
    new affinity; returns their ids (deduplicated, capped, in synthesis
    order). The affinity map must already contain the new pair. *)

val on_new_affinity_iter :
  t -> Affinity.t -> Stmt_type.t * Stmt_type.t -> (id -> unit) -> unit
(** {!on_new_affinity}, streaming: the callback receives each new id in
    synthesis order without materializing the list — the fuzzing loop's
    hot path (the callback must not call back into [t]). *)

val to_types : t -> id -> Stmt_type.t list
(** Reconstruct a sequence from its id by walking the parent chain
    (O(length), length <= [max_len]). *)

val total : t -> int
(** Sequences recorded so far (including the length-1 seeds). *)

val sequences : t -> Stmt_type.t list list
(** Everything in [S], for tests. *)

val prefix_count : t -> ty:Stmt_type.t -> len:int -> int
(** Size of the PS bucket, for tests of the index invariant. *)
