(** The global AST structure library.

    The paper harvests the AST structure of every statement of a
    coverage-increasing seed into a global library keyed by statement
    type; instantiation then draws a type-matched structure at random.
    Structures are deduplicated by their printed SQL and capped per type
    (old entries are evicted at random) so the library stays fresh without
    growing unboundedly. *)

open Sqlcore

type t

val create : ?cap_per_type:int -> unit -> t
(** [cap_per_type] defaults to 64. *)

val harvest : t -> Ast.testcase -> int
(** Store each statement under its type; returns how many were newly
    stored. Newly-stored structures are also appended to the journal
    ({!journal_since}) for exchange export. *)

val store : t -> Ast.stmt -> bool
(** Store one structure {e without} journaling it — the import path for
    structures received from other shards ([false] on duplicate).
    Skipping the journal keeps a foreign structure from being re-exported
    by its importer. *)

val journal_length : t -> int

val journal_since : t -> int -> Ast.stmt list
(** Locally-harvested structures at journal index ≥ the cursor, in
    harvest order. *)

val pick : t -> Reprutil.Rng.t -> Stmt_type.t -> Ast.stmt option
(** Random stored structure of that type, if any. *)

val count : t -> int
(** Total stored structures. *)

val types_covered : t -> int
(** Number of types with at least one structure. *)
