open Sqlcore
module Rng = Reprutil.Rng

type config = {
  seed : int;
  sequence_oriented : bool;
  max_seq_len : int;
  instantiations_per_seq : int;
  max_pending : int;
  conventional_per_step : int;
  synth_batch : int;
}

let default_config =
  { seed = 1; sequence_oriented = true; max_seq_len = 5;
    instantiations_per_seq = 1; max_pending = 4096;
    conventional_per_step = 3; synth_batch = 6 }

type t = {
  cfg : config;
  rng : Rng.t;
  harness : Fuzz.Harness.t;
  pool : Fuzz.Seed_pool.t;
  affinity : Affinity.t;
  synthesis : Synthesis.t;
  skeletons : Skeleton_library.t;
  pending : Synthesis.id Reprutil.Vec.t;
      (* synthesized sequence ids awaiting instantiation + execution; a
         sampling reservoir: overflow replaces a random slot so the
         backlog stays diverse rather than first-come-first-served. No
         dedup is needed here: [Synthesis.on_new_affinity] returns only
         globally-new sequences (its dedup spans all discoveries, local
         and imported), so every enqueued id is fresh by
         construction. *)
  c_dup_skipped : Telemetry.Registry.counter;
      (* kept registered (always 0) so the exported synth.* namespace
         is stable across the dedup-removal refactor *)
  types : Stmt_type.t list;
  mutable initial : Ast.testcase list;
  (* exchange cursors: how much of the pool / affinity log / skeleton
     journal has already been exported to other shards *)
  mutable xc_pool : int;
  mutable xc_aff : int;
  mutable xc_skel : int;
  (* stage spans over the harness registry: generation cost attribution
     (the harness itself times execute/triage) *)
  sp_mutate : Telemetry.Span.t;
  sp_synthesize : Telemetry.Span.t;
  sp_instantiate : Telemetry.Span.t;
}

(* [slot] picks the reservoir slot to evict on overflow. The fuzzing path
   uses the shard RNG; the exchange-import path must not touch that
   stream, so it uses a content hash instead. *)
let enqueue_seq t ~slot seq =
  if Reprutil.Vec.length t.pending < t.cfg.max_pending then
    Reprutil.Vec.push t.pending seq
  else Reprutil.Vec.set t.pending (slot t.cfg.max_pending) seq

(* Algorithm 3 on one newly-discovered affinity: synthesize sequences and
   queue them for instantiation. Ids stream straight into the reservoir
   in synthesis order — no intermediate list. *)
let synthesize_from t ~slot aff =
  Synthesis.on_new_affinity_iter t.synthesis t.affinity aff
    (enqueue_seq t ~slot)

(* Grammar-feedback generation bias (DESIGN.md §15): when the harness
   records grammar coverage, draw a second candidate and keep the one
   whose printed form would light more unfired grammar cells. The probe
   is read-only (scratch parse against the grammar virgin map), so
   losing candidates claim nothing. In edges mode this is [gen ()]
   exactly — no extra RNG draws, preserving byte-identity. *)
let best_of_two t gen =
  let c1 = gen () in
  if not (Fuzz.Harness.grammar_feedback t.harness) then c1
  else begin
    let c2 = gen () in
    if Fuzz.Harness.grammar_novelty t.harness c2
       > Fuzz.Harness.grammar_novelty t.harness c1
    then c2
    else c1
  end

(* Execute a candidate; if it is coverage-interesting under the harness's
   feedback mode, keep it: pool, skeleton
   harvest, affinity analysis, and synthesis from each new affinity.
   [hint] is the statement prefix the candidate shares with its parent,
   forwarded to the harness's prefix-snapshot cache: the first hinted
   execution captures the boundary, its siblings restore from it. *)
let process_candidate t ?(analyze = true) ?hint tc =
  let outcome = Fuzz.Harness.execute ?hint t.harness tc in
  if outcome.Fuzz.Harness.o_interesting then begin
    ignore
      (Fuzz.Seed_pool.add t.pool ~tc ~cov_hash:outcome.o_cov_hash
         ~new_branches:outcome.o_new_branches ~cost:outcome.o_cost);
    ignore (Skeleton_library.harvest t.skeletons tc);
    if analyze && t.cfg.sequence_oriented then
      Telemetry.Span.time t.sp_synthesize (fun () ->
          let new_affs = Affinity.analyze t.affinity tc in
          List.iter
            (synthesize_from t ~slot:(fun n -> Rng.int t.rng n))
            new_affs)
  end;
  outcome

let create ?(config = default_config) ?limits ?harness profile =
  let harness =
    match harness with
    | Some h -> h
    | None -> Fuzz.Harness.create ?limits ~profile ()
  in
  let metrics = Fuzz.Harness.metrics harness in
  let t =
    { cfg = config;
      rng = Rng.create config.seed;
      harness;
      pool = Fuzz.Seed_pool.create ();
      affinity = Affinity.create ();
      synthesis =
        Synthesis.create ~max_len:config.max_seq_len
          ~types:(Minidb.Profile.types profile) ();
      skeletons = Skeleton_library.create ();
      pending = Reprutil.Vec.create ();
      c_dup_skipped = Telemetry.Registry.counter metrics "synth.dup_skipped";
      types = Minidb.Profile.types profile;
      initial = [];
      xc_pool = 0;
      xc_aff = 0;
      xc_skel = 0;
      sp_mutate = Telemetry.Span.stage metrics "mutate";
      sp_synthesize = Telemetry.Span.stage metrics "synthesize";
      sp_instantiate = Telemetry.Span.stage metrics "instantiate" }
  in
  let corpus = Fuzz.Corpus.initial profile in
  t.initial <- corpus;
  List.iter (fun tc -> ignore (process_candidate t tc)) corpus;
  t

let take_pending t =
  let n = Reprutil.Vec.length t.pending in
  if n = 0 then None
  else begin
    (* swap-remove a random slot: order never mattered, diversity does *)
    let i = Rng.int t.rng n in
    let seq = Reprutil.Vec.get t.pending i in
    (match Reprutil.Vec.pop t.pending with
     | Some last when i < Reprutil.Vec.length t.pending ->
       Reprutil.Vec.set t.pending i last
     | _ -> ());
    Some seq
  end

let step t () =
  (* Step 2: a batch of synthesized sequences becomes test cases. *)
  if t.cfg.sequence_oriented then begin
    let batch = min t.cfg.synth_batch (Reprutil.Vec.length t.pending) in
    for _ = 1 to batch do
      match take_pending t with
      | None -> ()
      | Some seq ->
        let seq = Synthesis.to_types t.synthesis seq in
        for _ = 1 to t.cfg.instantiations_per_seq do
          let tc =
            (* instantiation is its own pipeline stage (the paper's
               Step 2 second half), timed apart from Algorithm 3 *)
            Telemetry.Span.time t.sp_instantiate (fun () ->
                best_of_two t (fun () ->
                    Instantiate.sequence t.rng ~skeletons:t.skeletons seq))
          in
          ignore (process_candidate t tc)
        done
    done
  end;
  (* Step 1 + conventional depth run every iteration, so synthesis never
     starves the mutation arm. *)
  begin
    match Fuzz.Seed_pool.select t.pool t.rng with
    | None ->
      (* pool drained (tiny budgets): fall back to a fresh generated case *)
      let schema = Sym_schema.empty () in
      let tc =
        [ Generator.stmt t.rng schema Stmt_type.Create_table;
          Generator.stmt t.rng schema Stmt_type.Insert ]
      in
      ignore (process_candidate t (Instantiate.repair t.rng tc))
    | Some seed ->
      let tc = seed.Fuzz.Seed_pool.sd_tc in
      if t.cfg.sequence_oriented then begin
        (* Step 1: sequence-oriented mutation at one random position per
           iteration (Algorithm 1 spreads positions across iterations). *)
        let pos = Rng.int t.rng (max 1 (List.length tc)) in
        let mutants =
          Telemetry.Span.time t.sp_mutate (fun () ->
              Seq_mutation.mutate_at t.rng ~skeletons:t.skeletons
                ~types:t.types tc ~pos)
        in
        List.iter
          (fun (_, mutant) ->
             (* statements before the mutated position are the parent's *)
             ignore (process_candidate t ~hint:pos mutant))
          mutants
      end;
      (* Conventional mutations (both LEGO and LEGO-). *)
      for _ = 1 to t.cfg.conventional_per_step do
        let mutant, pos =
          Telemetry.Span.time t.sp_mutate (fun () ->
              if Fuzz.Harness.grammar_feedback t.harness then
                Conventional.mutate_testcase_at_biased t.rng
                  ~novelty:(Fuzz.Harness.grammar_novelty t.harness)
                  tc
              else Conventional.mutate_testcase_at t.rng tc)
        in
        ignore
          (process_candidate t ~analyze:t.cfg.sequence_oriented ~hint:pos
             mutant)
      done;
      (* Structure mutation via the AST library: replace one statement
         with a different structure of the SAME type (the paper's LEGO-
         keeps this; it is what the extended AST parser buys even with the
         sequence algorithms disabled). The type sequence is preserved. *)
      for _ = 1 to 2 do
      (match tc with
       | [] -> ()
       | _ ->
         let pos = Rng.int t.rng (List.length tc) in
         let schema = Sym_schema.empty () in
         List.iteri
           (fun i s -> if i < pos then Sym_schema.apply schema s)
           tc;
         let ty = Ast.type_of_stmt (List.nth tc pos) in
         let mutant =
           best_of_two t (fun () ->
               let fresh =
                 Instantiate.statement t.rng ~skeletons:t.skeletons ~schema ty
               in
               Instantiate.repair t.rng
                 (List.mapi (fun i s -> if i = pos then fresh else s) tc))
         in
         ignore
           (process_candidate t ~analyze:t.cfg.sequence_oriented ~hint:pos
              mutant))
      done
  end

let sync_cursors t =
  t.xc_pool <- Fuzz.Seed_pool.size t.pool;
  t.xc_aff <- Affinity.log_length t.affinity;
  t.xc_skel <- Skeleton_library.journal_length t.skeletons

(* Drain everything discovered since the last export. *)
let export t () =
  let seeds =
    List.map
      (fun s ->
         { Fuzz.Sync.xs_tc = s.Fuzz.Seed_pool.sd_tc;
           xs_cov_hash = s.Fuzz.Seed_pool.sd_cov_hash;
           xs_new_branches = s.Fuzz.Seed_pool.sd_new_branches;
           xs_cost = s.Fuzz.Seed_pool.sd_cost })
      (Fuzz.Seed_pool.since t.pool t.xc_pool)
  in
  let affs = Affinity.log_since t.affinity t.xc_aff in
  let skels = Skeleton_library.journal_since t.skeletons t.xc_skel in
  sync_cursors t;
  { Fuzz.Sync.xp_seeds = seeds; xp_affinities = affs; xp_skeletons = skels }

(* Fold one foreign discovery in. Imported affinities trigger Algorithm 3
   synthesis just like locally-discovered ones; the reservoir eviction
   slot comes from a content hash, never the shard RNG (imports must not
   perturb the shard's random stream). *)
let import t entry =
  (match entry with
   | Fuzz.Sync.Seed x ->
     ignore
       (Fuzz.Seed_pool.add t.pool ~tc:x.Fuzz.Sync.xs_tc
          ~cov_hash:x.Fuzz.Sync.xs_cov_hash
          ~new_branches:x.Fuzz.Sync.xs_new_branches
          ~cost:x.Fuzz.Sync.xs_cost)
   | Fuzz.Sync.Affinity (a, b) ->
     if t.cfg.sequence_oriented && Affinity.add t.affinity a b then
       Telemetry.Span.time t.sp_synthesize (fun () ->
           synthesize_from t
             ~slot:(fun n -> Hashtbl.hash (a, b) mod n)
             (a, b))
   | Fuzz.Sync.Skeleton s -> ignore (Skeleton_library.store t.skeletons s));
  (* store growth during import is the import itself: advance the export
     cursors so foreign entries don't echo back out of this shard *)
  sync_cursors t

let fuzzer t =
  { Fuzz.Driver.f_name =
      (if t.cfg.sequence_oriented then "LEGO" else "LEGO-");
    f_step = step t;
    f_harness = t.harness;
    f_corpus =
      (fun () ->
         List.map (fun s -> s.Fuzz.Seed_pool.sd_tc)
           (Fuzz.Seed_pool.seeds t.pool));
    f_exchange =
      Some { Fuzz.Sync.p_export = export t; p_import = import t } }

let affinities t = t.affinity

let synthesized_total t = Synthesis.total t.synthesis

let skeletons t = t.skeletons

let pool_size t = Fuzz.Seed_pool.size t.pool
