open Sqlcore
module Vec = Reprutil.Vec
module Rng = Reprutil.Rng

type t = {
  cap : int;
  by_type : Ast.stmt Vec.t array;  (* indexed by Stmt_type.to_index *)
  seen : (string, unit) Hashtbl.t;
  journal : Ast.stmt Vec.t;
  mutable total : int;
}

let create ?(cap_per_type = 64) () =
  { cap = cap_per_type;
    by_type = Array.init Stmt_type.count (fun _ -> Vec.create ());
    seen = Hashtbl.create 256;
    journal = Vec.create ();
    total = 0 }

(* Eviction is deterministic given the store order: replace the slot the
   size hash points at. [journal] decides whether the structure counts as
   a local discovery worth re-exporting to other shards: foreign imports
   via [store] are kept but never journaled, so they can't echo back. *)
let insert t ~journal stmt =
  let key = Sql_printer.stmt stmt in
  if Hashtbl.mem t.seen key then false
  else begin
    Hashtbl.replace t.seen key ();
    let idx = Stmt_type.to_index (Ast.type_of_stmt stmt) in
    let vec = t.by_type.(idx) in
    if Vec.length vec < t.cap then begin
      Vec.push vec stmt;
      t.total <- t.total + 1
    end
    else Vec.set vec (Hashtbl.hash key mod t.cap) stmt;
    if journal then Vec.push t.journal stmt;
    true
  end

let harvest t tc =
  let stored = ref 0 in
  List.iter
    (fun stmt -> if insert t ~journal:true stmt then incr stored)
    tc;
  !stored

let store t stmt = insert t ~journal:false stmt

let journal_length t = Vec.length t.journal

let journal_since t from =
  let n = Vec.length t.journal in
  let acc = ref [] in
  for i = n - 1 downto max 0 from do
    acc := Vec.get t.journal i :: !acc
  done;
  !acc

let pick t rng ty =
  let vec = t.by_type.(Stmt_type.to_index ty) in
  let n = Vec.length vec in
  if n = 0 then None else Some (Vec.get vec (Rng.int rng n))

let count t = t.total

let types_covered t =
  Array.fold_left
    (fun acc vec -> if Vec.length vec > 0 then acc + 1 else acc)
    0 t.by_type
