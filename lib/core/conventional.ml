open Sqlcore
open Sqlcore.Ast
module Rng = Reprutil.Rng

(* Replace the [target]-th literal (in traversal order) with a new one. *)
let mutate_data rng stmt =
  let count =
    Ast_util.fold_exprs
      (fun acc e -> match e with Lit _ -> acc + 1 | _ -> acc)
      0 stmt
  in
  if count = 0 then stmt
  else begin
    let target = Rng.int rng count in
    let seen = ref (-1) in
    Ast_util.map_exprs
      (function
        | Lit _ as e ->
          incr seen;
          if !seen = target then Lit (Generator.literal rng
            (Rng.choose rng [ T_int; T_float; T_text; T_bool ]))
          else e
        | e -> e)
      stmt
  end

(* Replace a random sub-expression with a freshly generated one. *)
let mutate_expr rng schema stmt =
  let cols =
    match Sym_schema.pick_table schema rng with
    | Some (_, cols) -> cols
    | None -> []
  in
  let count = Ast_util.fold_exprs (fun acc _ -> acc + 1) 0 stmt in
  if count = 0 then stmt
  else begin
    let target = Rng.int rng count in
    let seen = ref (-1) in
    Ast_util.map_exprs
      (fun e ->
         incr seen;
         if !seen = target then Generator.expr rng ~cols ~depth:2 else e)
      stmt
  end

let cols_for rng schema stmt =
  let tables = Ast_util.tables_read stmt @ Ast_util.tables_written stmt in
  match
    List.find_map (fun t -> Sym_schema.table_cols schema t) tables
  with
  | Some cols when cols <> [] -> cols
  | _ -> (
      match Sym_schema.pick_table schema rng with
      | Some (_, cols) -> cols
      | None -> [])

(* Structural tweaks on SELECT bodies, like SQUIRREL's mutation areas. *)
let mutate_select rng schema ~rich stmt =
  let cols = cols_for rng schema stmt in
  let tweak (s : select) =
    match Rng.int rng 9 with
    | 0 -> { s with distinct = not s.distinct }
    | 1 ->
      { s with
        order_by =
          (if s.order_by = [] && cols <> [] then
             [ (Col (None, (Rng.choose rng cols).Sym_schema.sc_name),
                if Rng.bool rng then Asc else Desc) ]
           else []) }
    | 2 ->
      { s with
        where =
          (match s.where with
           | Some _ when Rng.bool rng -> None
           | _ when cols <> [] -> Some (Generator.predicate rng ~cols)
           | w -> w) }
    | 3 ->
      { s with
        limit =
          (match s.limit with None -> Some (Rng.int rng 16) | Some _ -> None) }
    | 4 when cols <> [] ->
      let gcol = Col (None, (Rng.choose rng cols).Sym_schema.sc_name) in
      if s.group_by = [] then
        { s with
          group_by = [ gcol ];
          projs = [ Proj (gcol, None); Proj (Agg (Count, false, None), None) ];
          having =
            (if Rng.bool rng then
               Some (Binop (Gt, Agg (Count, false, None), Lit (L_int 0)))
             else None) }
      else { s with group_by = []; having = None }
    | 5 when rich && cols <> [] && s.group_by = [] ->
      (* add a window-function projection *)
      { s with
        projs =
          s.projs
          @ [ Proj
                ( Win
                    { fn = Rng.choose rng [ Row_number; Rank; Lead; Lag ];
                      args = [];
                      over =
                        { partition_by = [];
                          w_order_by =
                            [ (Col (None,
                                    (Rng.choose rng cols).Sym_schema.sc_name),
                               Asc) ];
                          frame = None } },
                  Some "w" ) ] }
    | 6 ->
      { s with offset = (match s.offset with None -> Some (Rng.int rng 4) | Some _ -> None) }
    | 7 -> (
        (* bolt a join onto a plain single-table FROM *)
        match (s.from, Sym_schema.pick_table schema rng) with
        | Some (From_table _ as left), Some (t2, cols2) when cols2 <> [] ->
          { s with
            from =
              Some
                (From_join
                   { left;
                     kind = Rng.choose rng [ Inner; Left; Cross ];
                     right = From_table { name = t2; alias = None };
                     on =
                       (if Rng.bool rng then None
                        else
                          Some
                            (Binop
                               ( Eq,
                                 Col (None, (List.hd cols2).Sym_schema.sc_name),
                                 Lit (L_int (Rng.int rng 8)) ))) }) }
        | _ -> s)
    | _ -> s
  in
  let fixed_win (s : select) =
    (* LEAD/LAG need an argument; normalise the empty-args case. *)
    { s with
      projs =
        List.map
          (function
            | Proj (Win ({ fn = (Lead | Lag); args = []; _ } as w), a)
              when cols <> [] ->
              Proj
                ( Win
                    { w with
                      args =
                        [ Col (None, (Rng.choose rng cols).Sym_schema.sc_name) ] },
                  a )
            | p -> p)
          s.projs }
  in
  let rec in_query = function
    | Q_select s -> Q_select (fixed_win (tweak s))
    | Q_values rows -> Q_values rows
    | Q_compound (a, op, b) ->
      if Rng.bool rng then Q_compound (in_query a, op, b)
      else Q_compound (a, op, in_query b)
  in
  match stmt with
  | S_select q -> S_select (in_query q)
  | S_create_view v -> S_create_view { v with query = in_query v.query }
  | S_copy_to { src = Cs_query q; header } ->
    S_copy_to { src = Cs_query (in_query q); header }
  | S_insert ({ i_source = Src_query q; _ } as i) ->
    S_insert { i with i_source = Src_query (in_query q) }
  | s -> s

(* INSERT-specific tweaks: grow the data set, toggle IGNORE. *)
let mutate_insert rng schema stmt =
  let grow (i : insert) =
    match i.i_source with
    | Src_values (first :: _ as rows) when Rng.bool rng ->
      let row' = List.map (fun _ -> Lit (Generator.literal rng T_int)) first in
      { i with i_source = Src_values (rows @ [ row' ]) }
    | _ -> { i with i_ignore = not i.i_ignore }
  in
  ignore schema;
  match stmt with
  | S_insert i -> S_insert (grow i)
  | S_replace i -> S_replace (grow i)
  | s -> s

let mutate_stmt ?(rich = true) rng schema stmt =
  match Rng.int rng 6 with
  | 0 -> mutate_data rng stmt
  | 1 -> mutate_expr rng schema stmt
  | 2 -> (
      match mutate_insert rng schema stmt with
      | s when s = stmt -> mutate_data rng stmt
      | s -> s)
  | _ -> (
      match mutate_select rng schema ~rich stmt with
      | s when s = stmt -> mutate_data rng stmt
      | s -> s)

let mutate_testcase_at ?(rich = true) rng tc =
  match tc with
  | [] -> ([], 0)
  | _ ->
    let target = Rng.int rng (List.length tc) in
    let schema = Sym_schema.empty () in
    let mutated =
      List.mapi
        (fun i stmt ->
           let stmt' =
             if i = target then mutate_stmt ~rich rng schema stmt else stmt
           in
           Sym_schema.apply schema stmt';
           stmt')
        tc
    in
    (Instantiate.repair rng mutated, target)

let mutate_testcase ?rich rng tc = fst (mutate_testcase_at ?rich rng tc)

let mutate_testcase_at_biased ?rich rng ~novelty tc =
  let ((m1, _) as r1) = mutate_testcase_at ?rich rng tc in
  let ((m2, _) as r2) = mutate_testcase_at ?rich rng tc in
  if novelty m2 > novelty m1 then r2 else r1
