open Sqlcore
module Vec = Reprutil.Vec

type t = {
  map : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable total : int;
  log : (Stmt_type.t * Stmt_type.t) Vec.t;
  (* Memoized sorted successor-index lists, one slot per source type,
     invalidated on {!add}. Algorithm 3's recursive closure queries
     successors once per visited sequence node — hundreds of thousands
     of times per campaign — so rebuilding the sorted list from the
     hash set on every call dominated synthesis cost (an array read
     keeps the lookup itself off the profile too). The sort is by
     index, which equals [Stmt_type.compare] order, so memoized and
     unmemoized results are identical. *)
  succ : int list option array;
}

let create () =
  { map = Hashtbl.create 64; total = 0; log = Vec.create ();
    succ = Array.make Stmt_type.count None }

let mem t t1 t2 =
  match Hashtbl.find_opt t.map (Stmt_type.to_index t1) with
  | None -> false
  | Some set -> Hashtbl.mem set (Stmt_type.to_index t2)

let add t t1 t2 =
  let i1 = Stmt_type.to_index t1 in
  let i2 = Stmt_type.to_index t2 in
  let set =
    match Hashtbl.find_opt t.map i1 with
    | Some set -> set
    | None ->
      let set = Hashtbl.create 8 in
      Hashtbl.replace t.map i1 set;
      set
  in
  if Hashtbl.mem set i2 then false
  else begin
    Hashtbl.replace set i2 ();
    t.succ.(i1) <- None;
    t.total <- t.total + 1;
    Vec.push t.log (t1, t2);
    true
  end

let log_length t = Vec.length t.log

let log_since t from =
  let n = Vec.length t.log in
  let acc = ref [] in
  for i = n - 1 downto max 0 from do
    acc := Vec.get t.log i :: !acc
  done;
  !acc

(* Algorithm 2: walk adjacent pairs, skipping same-type pairs. *)
let analyze_sequence t types =
  let news = ref [] in
  let rec loop = function
    | a :: (b :: _ as rest) ->
      if not (Stmt_type.equal a b) then
        if add t a b then news := (a, b) :: !news;
      loop rest
    | [ _ ] | [] -> ()
  in
  loop types;
  List.rev !news

let analyze t tc = analyze_sequence t (Ast.type_sequence tc)

let successor_indices t ix =
  match t.succ.(ix) with
  | Some l -> l
  | None ->
    let l =
      match Hashtbl.find_opt t.map ix with
      | None -> []
      | Some set ->
        Hashtbl.fold (fun i () acc -> i :: acc) set []
        |> List.sort Int.compare
    in
    t.succ.(ix) <- Some l;
    l

let successors t ty =
  List.map Stmt_type.of_index (successor_indices t (Stmt_type.to_index ty))

let count t = t.total

let pairs t =
  Hashtbl.fold
    (fun i1 set acc ->
       Hashtbl.fold
         (fun i2 () acc ->
            (Stmt_type.of_index i1, Stmt_type.of_index i2) :: acc)
         set acc)
    t.map []
  |> List.sort compare

let of_corpus tcs =
  let t = create () in
  List.iter (fun tc -> ignore (analyze t tc)) tcs;
  t

let analyze_within t ~distance tc =
  let types = Array.of_list (Ast.type_sequence tc) in
  let n = Array.length types in
  let news = ref [] in
  for i = 0 to n - 2 do
    for j = i + 1 to min (n - 1) (i + distance) do
      let a = types.(i) and b = types.(j) in
      if not (Stmt_type.equal a b) then
        if add t a b then news := (a, b) :: !news
    done
  done;
  List.rev !news

let to_string t =
  String.concat "\n"
    (List.map
       (fun (a, b) -> Stmt_type.name a ^ " -> " ^ Stmt_type.name b)
       (pairs t))

let of_string s =
  let t = create () in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
  in
  let rec load = function
    | [] -> Ok t
    | line :: rest -> (
        match String.index_opt line '-' with
        | Some i
          when i + 1 < String.length line
               && line.[i + 1] = '>'
               && i >= 1 ->
          let left = String.trim (String.sub line 0 i) in
          let right =
            String.trim
              (String.sub line (i + 2) (String.length line - i - 2))
          in
          (match (Stmt_type.of_name left, Stmt_type.of_name right) with
           | Some a, Some b ->
             ignore (add t a b);
             load rest
           | _ -> Error (Printf.sprintf "unknown statement type in %S" line))
        | _ -> Error (Printf.sprintf "malformed affinity line %S" line))
  in
  load lines
