(** Type-affinity map and analysis — the paper's Algorithm 2.

    A type-affinity [(t1, t2)] is a chronological relation between two
    adjacent SQL statement types: [t1] can be followed by [t2]. The map is
    the paper's [T : type -> Set<type>]. Adjacent statements of the {e
    same} type are ignored (Algorithm 2, lines 5-7): repeating one type
    contributes nothing to sequence abundance. *)

open Sqlcore

type t

val create : unit -> t

val mem : t -> Stmt_type.t -> Stmt_type.t -> bool

val add : t -> Stmt_type.t -> Stmt_type.t -> bool
(** [true] when the pair was new. *)

val analyze : t -> Ast.testcase -> (Stmt_type.t * Stmt_type.t) list
(** Algorithm 2: record every affinity appearing in the test case;
    returns the affinities that were new to the map, in order of
    appearance. *)

val analyze_sequence :
  t -> Stmt_type.t list -> (Stmt_type.t * Stmt_type.t) list
(** Same, over a bare type sequence. *)

val successors : t -> Stmt_type.t -> Stmt_type.t list
(** Sorted by {!Stmt_type.compare}; memoized per source type. *)

val successor_indices : t -> int -> int list
(** {!successors} by statement-type index, sorted ascending — the
    memoized list itself, shared with Algorithm 3's inner loop (do not
    mutate). Index order equals [Stmt_type.compare] order. *)

val count : t -> int
(** Number of distinct affinities — the paper's Tables II and IV
    metric. *)

val pairs : t -> (Stmt_type.t * Stmt_type.t) list

val log_length : t -> int
(** Length of the append-only discovery log: every pair ever accepted by
    {!add}, in discovery order. *)

val log_since : t -> int -> (Stmt_type.t * Stmt_type.t) list
(** Pairs discovered at log index ≥ the cursor, in discovery order — the
    exchange export drains new affinities with this. *)

val of_corpus : Ast.testcase list -> t
(** Affinity census over a corpus (Table II counts affinities contained
    in the seeds each fuzzer generated). *)

val analyze_within : t -> distance:int -> Ast.testcase -> (Stmt_type.t * Stmt_type.t) list
(** The paper's SVI refinement sketch: also record affinities between
    {e non-adjacent} statements up to [distance] apart ([distance = 1] is
    Algorithm 2). Same-type pairs are still skipped. *)

val to_string : t -> string
(** Serialize as ["TYPE1 -> TYPE2"] lines, one affinity per line — the
    exchange format the paper's SVI suggests for extending existing
    fuzzers with LEGO's affinities. *)

val of_string : string -> (t, string) result
(** Parse the {!to_string} format; unknown type names are an error. *)
