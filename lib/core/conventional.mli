(** Conventional syntax-preserving, semantics-guided mutations.

    These mutate the {e inner structure} of a single statement — data
    values and clause structure — without changing its statement type, so
    the SQL Type Sequence of the test case is preserved. This is the
    mutation class the paper attributes to SQUIRREL (its Fig. 1 example
    turns [WHERE v1 = 1] into [ORDER BY v1]); LEGO layers them on top of
    sequence synthesis ("fine mutations ... further increase the depth of
    exploration"). *)

open Sqlcore

val mutate_stmt :
  ?rich:bool -> Reprutil.Rng.t -> Sym_schema.t -> Ast.stmt -> Ast.stmt
(** One structural or data mutation; [type_of_stmt] is preserved
    (property-tested). [rich:false] disables the window-function mutation,
    for callers modelling a fuzzer with narrower grammar support. *)

val mutate_testcase :
  ?rich:bool -> Reprutil.Rng.t -> Ast.testcase -> Ast.testcase
(** Pick a statement, mutate it, re-validate the test case. The type
    sequence is preserved. *)

val mutate_testcase_at :
  ?rich:bool -> Reprutil.Rng.t -> Ast.testcase -> Ast.testcase * int
(** Like {!mutate_testcase}, but also returns the mutated position:
    statements before it print identically to the parent's (repair only
    rewrites invalid references), so the position serves as a prefix hint
    for the harness's execution cache. Same RNG stream as
    {!mutate_testcase}. *)
