(** Conventional syntax-preserving, semantics-guided mutations.

    These mutate the {e inner structure} of a single statement — data
    values and clause structure — without changing its statement type, so
    the SQL Type Sequence of the test case is preserved. This is the
    mutation class the paper attributes to SQUIRREL (its Fig. 1 example
    turns [WHERE v1 = 1] into [ORDER BY v1]); LEGO layers them on top of
    sequence synthesis ("fine mutations ... further increase the depth of
    exploration"). *)

open Sqlcore

val mutate_stmt :
  ?rich:bool -> Reprutil.Rng.t -> Sym_schema.t -> Ast.stmt -> Ast.stmt
(** One structural or data mutation; [type_of_stmt] is preserved
    (property-tested). [rich:false] disables the window-function mutation,
    for callers modelling a fuzzer with narrower grammar support. *)

val mutate_testcase :
  ?rich:bool -> Reprutil.Rng.t -> Ast.testcase -> Ast.testcase
(** Pick a statement, mutate it, re-validate the test case. The type
    sequence is preserved. *)

val mutate_testcase_at :
  ?rich:bool -> Reprutil.Rng.t -> Ast.testcase -> Ast.testcase * int
(** Like {!mutate_testcase}, but also returns the mutated position:
    statements before it print identically to the parent's (repair only
    rewrites invalid references), so the position serves as a prefix hint
    for the harness's execution cache. Same RNG stream as
    {!mutate_testcase}. *)

val mutate_testcase_at_biased :
  ?rich:bool ->
  Reprutil.Rng.t ->
  novelty:(Ast.testcase -> int) ->
  Ast.testcase ->
  Ast.testcase * int
(** Grammar-feedback generation bias (DESIGN.md §15): draw two
    independent {!mutate_testcase_at} candidates and keep the one
    [novelty] scores higher (ties keep the first draw, so a constant
    [novelty] reduces to discarding one candidate). Consumes two
    {!mutate_testcase_at} RNG draws — callers gate it on the harness
    actually running grammar feedback to preserve the default mode's
    RNG stream. *)
