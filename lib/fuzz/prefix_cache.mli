(** Bounded LRU map — the backing store of the harness's prefix-snapshot
    execution cache (DESIGN.md §12).

    Polymorphic in both key and value so the eviction policy is unit
    testable without constructing engine snapshots. All operations are
    O(1) (expected) apart from the amortised eviction loop in
    {!insert}. Not thread-safe: each harness (one per campaign shard)
    owns its own cache. *)

type ('k, 'v) t

val create : ?max_bytes:int -> cap:int -> unit -> ('k, 'v) t
(** LRU cache holding at most [cap] entries (and, when [max_bytes] is
    given, at most [max_bytes] of caller-estimated payload — except that
    a single over-sized entry is kept rather than thrashing).
    @raise Invalid_argument when [cap <= 0]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit moves the entry to most-recently-used. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Lookup without touching recency — used to skip re-priming. *)

val insert : ('k, 'v) t -> 'k -> 'v -> bytes:int -> int
(** Insert (or replace) an entry whose payload the caller estimates at
    [bytes] bytes, then evict least-recently-used entries until both
    bounds hold again. Returns the number of entries evicted. *)

val length : ('k, 'v) t -> int

val bytes : ('k, 'v) t -> int
(** Sum of the byte estimates of the live entries. *)
