(** Corpus of interesting seeds with coverage-aware scheduling.

    Seeds are kept when they light up new virgin coverage; selection
    favours cheap, recently-productive seeds (the paper's C3: fuzzers
    prefer seeds with high coverage that run quickly). Seeds whose
    coverage digest was already seen are rejected as duplicates. *)

type seed = {
  sd_tc : Sqlcore.Ast.testcase;
  sd_cov_hash : int64;
  sd_new_branches : int;   (** new branches when first executed *)
  sd_cost : int;
  mutable sd_selections : int;
}

type t

val create : unit -> t

val add :
  t ->
  tc:Sqlcore.Ast.testcase ->
  cov_hash:int64 ->
  new_branches:int ->
  cost:int ->
  bool
(** [false] when a seed with the same coverage digest already exists. *)

val select : t -> Reprutil.Rng.t -> seed option
(** Energy-weighted choice: half the time the least-selected cheap seed,
    half the time uniform. *)

val seeds : t -> seed list

val since : t -> int -> seed list
(** Seeds admitted at pool index ≥ the given cursor, in admission order —
    the pool is append-only, so [since t c] with [c] the previous
    {!size} drains exactly the seeds admitted in between (the exchange
    export uses this). *)

val size : t -> int
