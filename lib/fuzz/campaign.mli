(** The campaign engine: N coordinated fuzzing campaigns on OCaml 5
    domains, exchanging coverage through {!Sync}.

    Layering (see DESIGN.md §8):

    {v
      Campaign   one domain per shard, sync rounds, aggregate snapshot
        │
      Sync       global virgin ⊔, cross-shard crash dedup  (mutex)
        │
      Harness    per-shard executor: own exec map, virgin map, triage
        │
      Coverage   bitmap merge / snapshot / diff
    v}

    Each shard builds its own fuzzer from the factory (so every piece of
    mutable fuzzing state — RNG, seed pool, affinity map, harness — is
    domain-private), runs in rounds of [sync_every] executions, and
    publishes after each round. The only cross-domain state is the
    mutex-guarded {!Sync.t}.

    With an active [exchange] configuration the rounds become barriered
    bidirectional exchange rounds (DESIGN.md §10): each shard additionally
    pulls the global virgin map back into its own harness and
    imports foreign coverage-increasing seeds / type-affinities / AST
    skeletons through its fuzzer's {!Driver.fuzzer.f_exchange} port. *)

type shard = {
  sh_id : int;
  sh_seed_offset : int;  (** [shard_id * stride], what {!shard_seed} adds *)
  sh_snapshot : Driver.snapshot;  (** this shard's private final snapshot *)
  sh_fuzzer : Driver.fuzzer;
      (** the shard's fuzzer; safe to use after {!run} returns (its domain
          has been joined) — e.g. for corpus censuses or budget extension *)
}

type result = {
  cg_snapshot : Driver.snapshot;
      (** aggregate: summed execs/iterations/crash totals, branches of the
          merged virgin map, cross-shard-deduped unique crashes and bugs *)
  cg_shards : shard list;  (** in shard-id order *)
  cg_crashes : (Minidb.Fault.crash * Sqlcore.Ast.testcase option) list;
      (** cross-shard unique crashes with first-finder reproducers *)
  cg_logic : (Oracle.Violation.t * Sqlcore.Ast.testcase option) list;
      (** cross-shard unique logic-bug findings (empty when the harness
          runs without an oracle suite), deduplicated by
          {!Oracle.Violation.key} with first-finder reproducers *)
  cg_sync_rounds : int;
  cg_metrics : Telemetry.Registry.t;
      (** the campaign's merged metric registry — always a completion-time
          {e snapshot}: with [jobs = 1] a snapshot of the single harness's
          registry, otherwise the union of every shard's published deltas
          (see {!Sync.metrics}) *)
}

val shard_seed : seed:int -> shard_id:int -> int
(** [seed + shard_id * 1_000_003]: deterministic, well-separated per-shard
    RNG seeds derived from one campaign seed. Shard 0 keeps the campaign
    seed itself, so [jobs = 1] reproduces unsharded runs exactly. *)

val run :
  ?checkpoint_every:int ->
  ?on_checkpoint:(Driver.checkpoint -> unit) ->
  ?sync_every:int ->
  ?exchange:Sync.exchange ->
  ?sink:Telemetry.Sink.t ->
  ?series_prefix:string ->
  ?prime_sync:(Sync.t -> unit) ->
  jobs:int ->
  execs:int ->
  (int -> Driver.fuzzer) ->
  result
(** [run ~jobs ~execs make] fuzzes with [jobs] shards sharing a total
    budget of [execs] executions ([execs / jobs] each, remainder to the
    first shards). [make shard_id] is called once per shard, {e inside}
    the shard's domain — derive per-shard RNG seeds with {!shard_seed}.

    With [jobs = 1] this is exactly {!Driver.run_until_execs} on
    [make 0] — byte-identical snapshots, no domains, no sync, regardless
    of [exchange] (one shard has nobody to exchange with) — so
    single-job campaigns preserve the repository's determinism guarantee.

    With [jobs > 1], shards publish to a {!Sync} every [sync_every]
    executions (default {!Sync.default_interval}); [on_checkpoint]
    receives aggregate snapshots roughly every [checkpoint_every]
    {e published} executions, including the true published crash total.

    [prime_sync] (default: nothing) is applied to the freshly created
    {!Sync.t} before any shard domain is spawned — the farm-resume hook
    that preloads persisted virgin maps and dedup keys
    ({!Sync.preload}) so a resumed sharded campaign never re-reports
    pre-interruption findings. Ignored at [jobs = 1] (the sequential
    path has no sync; resume preloads the harness directly).

    [exchange] (default {!Sync.exchange_off}) turns the sync rounds into
    barriered bidirectional exchange rounds: all shards run the same
    fixed round count derived from the largest shard budget, and at each
    barrier they pull the merged virgin map and import each other's
    deduplicated discoveries in (round, shard id) order. The aggregate
    result is deterministic per (seed, jobs, execs, sync_every,
    exchange): import order never depends on domain scheduling. If a
    shard dies (e.g. {!Driver.Stalled}), the campaign aborts the
    remaining shards and re-raises that shard's exception.

    Telemetry: every aggregate checkpoint, and one per-shard checkpoint
    per sync round, is emitted into [sink] (default {!Telemetry.Sink.null})
    as a {!Telemetry.Event.Checkpoint} whose series is
    [<series_prefix>aggregate] / [<series_prefix>shard-<i>]. With
    [jobs > 1] the events are buffered during the run and written to
    [sink] after the shards join, sorted by (shard, execs, emission
    order) with aggregate checkpoints last — the stream is
    ordered-identical run to run, never a scheduling-dependent
    interleaving ([on_checkpoint] still fires live). Shards
    publish metric {e deltas} at each sync round, so {!result.cg_metrics}
    is the campaign-wide registry union, mirroring the virgin-map
    union. *)
