open Reprutil

type seed = {
  sd_tc : Sqlcore.Ast.testcase;
  sd_cov_hash : int64;
  sd_new_branches : int;
  sd_cost : int;
  mutable sd_selections : int;
}

type t = {
  pool : seed Vec.t;
  hashes : (int64, unit) Hashtbl.t;
}

let create () = { pool = Vec.create (); hashes = Hashtbl.create 64 }

let add t ~tc ~cov_hash ~new_branches ~cost =
  if Hashtbl.mem t.hashes cov_hash then false
  else begin
    Hashtbl.replace t.hashes cov_hash ();
    Vec.push t.pool
      { sd_tc = tc; sd_cov_hash = cov_hash; sd_new_branches = new_branches;
        sd_cost = cost; sd_selections = 0 };
    true
  end

let size t = Vec.length t.pool

let seeds t = Vec.to_list t.pool

let since t from =
  let n = Vec.length t.pool in
  let acc = ref [] in
  for i = n - 1 downto max 0 from do
    acc := Vec.get t.pool i :: !acc
  done;
  !acc

let score s =
  (* Higher is better: productive, cheap, not yet over-fuzzed. *)
  float_of_int (1 + s.sd_new_branches)
  /. (1.0 +. float_of_int s.sd_cost /. 64.0)
  /. (1.0 +. float_of_int s.sd_selections)

let select t rng =
  let n = Vec.length t.pool in
  if n = 0 then None
  else begin
    let chosen =
      if Rng.bool rng then Vec.get t.pool (Rng.int rng n)
      else begin
        (* favored: the best-scoring among a small random sample *)
        let best = ref (Vec.get t.pool (Rng.int rng n)) in
        for _ = 1 to min 7 n do
          let cand = Vec.get t.pool (Rng.int rng n) in
          if score cand > score !best then best := cand
        done;
        !best
      end
    in
    chosen.sd_selections <- chosen.sd_selections + 1;
    Some chosen
  end
