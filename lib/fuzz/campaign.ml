type shard = {
  sh_id : int;
  sh_seed_offset : int;
  sh_snapshot : Driver.snapshot;
  sh_fuzzer : Driver.fuzzer;
}

type result = {
  cg_snapshot : Driver.snapshot;
  cg_shards : shard list;
  cg_crashes : (Minidb.Fault.crash * Sqlcore.Ast.testcase option) list;
  cg_sync_rounds : int;
  cg_metrics : Telemetry.Registry.t;
}

(* A large prime stride keeps shard RNG streams far apart while staying
   reproducible from the single campaign seed. *)
let seed_stride = 1_000_003

let shard_seed ~seed ~shard_id = seed + (shard_id * seed_stride)

let snapshot_of_sync sync ~iteration ~execs ~total_crashes =
  { Driver.st_iteration = iteration;
    st_execs = execs;
    st_branches = Sync.branches sync;
    st_total_crashes = total_crashes;
    st_unique_crashes = Sync.unique_count sync;
    st_bugs = Sync.bug_ids sync }

let point_of ~series (s : Driver.snapshot) =
  { Telemetry.Event.p_series = series;
    p_iteration = s.Driver.st_iteration;
    p_execs = s.st_execs;
    p_branches = s.st_branches;
    p_crashes_total = s.st_total_crashes;
    p_crashes_unique = s.st_unique_crashes;
    p_bugs = s.st_bugs }

let checkpoint_event ~series (cp : Driver.checkpoint) =
  Telemetry.Event.Checkpoint
    { point = point_of ~series cp.Driver.cp_snapshot;
      wall_s = Some cp.cp_annot.Driver.an_wall_s;
      execs_per_sec = Some cp.cp_annot.an_execs_per_sec }

(* One shard's campaign: run in sync-interval rounds, publishing coverage,
   crashes and metric deltas after each round. Runs inside its own
   domain. *)
let run_shard ~sync ~make ~budget ~report ~emit ~series ~start shard_id =
  let fz : Driver.fuzzer = make shard_id in
  (* Fuzzer construction may already have executed an initial corpus;
     those executions count against the shard's budget. *)
  let iterations = ref 0 in
  let published = ref 0 in
  (* Metrics publish as deltas against the last published snapshot, so
     the global registry's non-idempotent counters never double-count.
     The first delta is against an empty registry: it carries the
     initial-corpus executions performed during fuzzer construction. *)
  let metrics_last = ref (Telemetry.Registry.create ()) in
  let publish () =
    let execs = Harness.execs fz.Driver.f_harness in
    let delta = execs - !published in
    published := execs;
    let m = Harness.metrics fz.Driver.f_harness in
    let mdelta = Telemetry.Registry.diff m ~since:!metrics_last in
    metrics_last := Telemetry.Registry.snapshot m;
    ignore
      (Sync.publish_harness ~metrics:mdelta sync fz.Driver.f_harness
         ~execs_delta:delta);
    emit
      (checkpoint_event ~series
         (Driver.checkpoint ~start fz ~iteration:!iterations));
    report ()
  in
  let rec rounds () =
    let done_ = Harness.execs fz.Driver.f_harness in
    if done_ < budget then begin
      let target = min budget (done_ + Sync.interval sync) in
      let snap = Driver.run_until_execs fz ~execs:target in
      iterations := !iterations + snap.Driver.st_iteration;
      publish ();
      rounds ()
    end
  in
  rounds ();
  if !published < Harness.execs fz.Driver.f_harness then publish ();
  { sh_id = shard_id;
    sh_seed_offset = shard_id * seed_stride;
    sh_snapshot = Driver.snapshot fz ~iteration:!iterations;
    sh_fuzzer = fz }

let sequential ?checkpoint_every ?(on_checkpoint = fun _ -> ()) ~sink
    ~series_prefix ~execs make =
  let fz : Driver.fuzzer = make 0 in
  let series = series_prefix ^ "aggregate" in
  let snap =
    Driver.run_until_execs ?checkpoint_every
      ~on_checkpoint:(fun cp ->
          on_checkpoint cp;
          Telemetry.Sink.emit sink (checkpoint_event ~series cp))
      fz ~execs
  in
  let tri = Harness.triage fz.Driver.f_harness in
  { cg_snapshot = snap;
    cg_shards =
      [ { sh_id = 0; sh_seed_offset = 0; sh_snapshot = snap; sh_fuzzer = fz } ];
    cg_crashes = Triage.unique_with_cases tri;
    cg_sync_rounds = 0;
    cg_metrics = Harness.metrics fz.Driver.f_harness }

let run ?(checkpoint_every = 0) ?(on_checkpoint = fun _ -> ()) ?sync_every
    ?(sink = Telemetry.Sink.null) ?(series_prefix = "") ~jobs ~execs make =
  let jobs = max 1 jobs in
  if jobs = 1 then
    (* Bit-for-bit the pre-sharding sequential path: one fuzzer, one
       driver loop, no sync machinery in the way. *)
    sequential ~checkpoint_every ~on_checkpoint ~sink ~series_prefix ~execs
      make
  else begin
    let sync = Sync.create ?interval:sync_every () in
    let start = Telemetry.Span.now_s () in
    (* Shards on other domains share the sink: serialize emissions. *)
    let sink = Telemetry.Sink.locked sink in
    let emit ev = Telemetry.Sink.emit sink ev in
    (* Spread the total budget over shards; early shards absorb the
       remainder so the sum is exactly [execs]. *)
    let budget_of i = (execs / jobs) + (if i < execs mod jobs then 1 else 0) in
    (* Aggregate checkpointing: after any shard publishes, emit one
       aggregate snapshot per [checkpoint_every] published executions.
       Guarded by its own mutex so callbacks never interleave. *)
    let cp_lock = Mutex.create () in
    let last_cp = ref 0 in
    let report () =
      if checkpoint_every > 0 then begin
        Mutex.lock cp_lock;
        Fun.protect ~finally:(fun () -> Mutex.unlock cp_lock) (fun () ->
            let seen = Sync.execs_seen sync in
            if seen - !last_cp >= checkpoint_every && seen < execs then begin
              last_cp := seen;
              let snap =
                snapshot_of_sync sync ~iteration:(Sync.rounds sync)
                  ~execs:seen ~total_crashes:0
              in
              let wall = Telemetry.Span.now_s () -. start in
              let cp =
                { Driver.cp_snapshot = snap;
                  cp_annot =
                    { Driver.an_wall_s = wall;
                      an_execs_per_sec =
                        (if wall > 0.0 then float_of_int seen /. wall
                         else 0.0) } }
              in
              on_checkpoint cp;
              emit (checkpoint_event ~series:(series_prefix ^ "aggregate") cp)
            end)
      end
    in
    let domains =
      List.init jobs (fun i ->
          Domain.spawn (fun () ->
              run_shard ~sync ~make ~budget:(budget_of i) ~report ~emit
                ~series:(Printf.sprintf "%sshard-%d" series_prefix i)
                ~start i))
    in
    let shards = List.map Domain.join domains in
    let sum f = List.fold_left (fun acc sh -> acc + f sh.sh_snapshot) 0 shards in
    let aggregate =
      snapshot_of_sync sync
        ~iteration:(sum (fun s -> s.Driver.st_iteration))
        ~execs:(sum (fun s -> s.Driver.st_execs))
        ~total_crashes:(sum (fun s -> s.Driver.st_total_crashes))
    in
    { cg_snapshot = aggregate;
      cg_shards = shards;
      cg_crashes = Sync.unique_crashes sync;
      cg_sync_rounds = Sync.rounds sync;
      cg_metrics = Sync.metrics sync }
  end
