type shard = {
  sh_id : int;
  sh_seed_offset : int;
  sh_snapshot : Driver.snapshot;
  sh_fuzzer : Driver.fuzzer;
}

type result = {
  cg_snapshot : Driver.snapshot;
  cg_shards : shard list;
  cg_crashes : (Minidb.Fault.crash * Sqlcore.Ast.testcase option) list;
  cg_logic : (Oracle.Violation.t * Sqlcore.Ast.testcase option) list;
  cg_sync_rounds : int;
  cg_metrics : Telemetry.Registry.t;
}

(* A large prime stride keeps shard RNG streams far apart while staying
   reproducible from the single campaign seed. *)
let seed_stride = 1_000_003

let shard_seed ~seed ~shard_id = seed + (shard_id * seed_stride)

let snapshot_of_sync sync ~iteration ~execs ~total_crashes =
  { Driver.st_iteration = iteration;
    st_execs = execs;
    st_branches = Sync.branches sync;
    st_total_crashes = total_crashes;
    st_unique_crashes = Sync.unique_count sync;
    st_bugs = Sync.bug_ids sync }

let point_of ~series (s : Driver.snapshot) =
  { Telemetry.Event.p_series = series;
    p_iteration = s.Driver.st_iteration;
    p_execs = s.st_execs;
    p_branches = s.st_branches;
    p_crashes_total = s.st_total_crashes;
    p_crashes_unique = s.st_unique_crashes;
    p_bugs = s.st_bugs }

let checkpoint_event ~series (cp : Driver.checkpoint) =
  Telemetry.Event.Checkpoint
    { point = point_of ~series cp.Driver.cp_snapshot;
      wall_s = Some cp.cp_annot.Driver.an_wall_s;
      execs_per_sec = Some cp.cp_annot.an_execs_per_sec }

(* Per-shard publish bookkeeping: every published quantity is a delta
   against the last publish, so the global accumulators (exec counts,
   crash totals, metric registry) never double-count. The first metric
   delta is against an empty registry: it carries the initial-corpus
   executions performed during fuzzer construction. *)
type deltas = {
  mutable dl_execs : int;
  mutable dl_crashes : int;
  mutable dl_metrics : Telemetry.Registry.t;
}

let deltas_create () =
  { dl_execs = 0; dl_crashes = 0;
    dl_metrics = Telemetry.Registry.create () }

let deltas_take dl (fz : Driver.fuzzer) =
  let execs = Harness.execs fz.Driver.f_harness in
  let execs_delta = execs - dl.dl_execs in
  dl.dl_execs <- execs;
  let total = Triage.total_crashes (Harness.triage fz.Driver.f_harness) in
  let crashes_delta = total - dl.dl_crashes in
  dl.dl_crashes <- total;
  let m = Harness.metrics fz.Driver.f_harness in
  let mdelta = Telemetry.Registry.diff m ~since:dl.dl_metrics in
  dl.dl_metrics <- Telemetry.Registry.snapshot m;
  (execs_delta, crashes_delta, mdelta)

let shard_result fz ~shard_id ~iterations =
  { sh_id = shard_id;
    sh_seed_offset = shard_id * seed_stride;
    sh_snapshot = Driver.snapshot fz ~iteration:iterations;
    sh_fuzzer = fz }

(* One shard's campaign, publish-only sync: free-running sync-interval
   rounds, publishing coverage, crash and metric deltas after each.
   Runs inside its own domain. *)
let run_shard ~sync ~make ~budget ~report ~emit ~series ~start shard_id =
  let fz : Driver.fuzzer = make shard_id in
  (* Fuzzer construction may already have executed an initial corpus;
     those executions count against the shard's budget. *)
  let iterations = ref 0 in
  let dl = deltas_create () in
  let publish () =
    let execs_delta, crashes_delta, mdelta = deltas_take dl fz in
    ignore
      (Sync.publish_harness ~metrics:mdelta ~crashes_delta sync
         fz.Driver.f_harness ~execs_delta);
    emit
      (checkpoint_event ~series
         (Driver.checkpoint ~start fz ~iteration:!iterations));
    report ()
  in
  let rec rounds () =
    let done_ = Harness.execs fz.Driver.f_harness in
    if done_ < budget then begin
      let target = min budget (done_ + Sync.interval sync) in
      let snap = Driver.run_until_execs fz ~execs:target in
      iterations := !iterations + snap.Driver.st_iteration;
      publish ();
      rounds ()
    end
  in
  rounds ();
  if dl.dl_execs < Harness.execs fz.Driver.f_harness then publish ();
  shard_result fz ~shard_id ~iterations:!iterations

(* One shard's campaign in bidirectional-exchange mode: a fixed number of
   barriered rounds, identical for every shard (the barrier needs all
   parties each round; a shard whose budget is exhausted keeps joining
   with empty deltas). Round r fuzzes up to [min budget (r * interval)],
   so budgets and sync cadence match the free-running mode. *)
let run_shard_exchange ~sync ~make ~budget ~rounds_total ~report ~emit
    ~series ~start shard_id =
  let fz : Driver.fuzzer = make shard_id in
  let iterations = ref 0 in
  let dl = deltas_create () in
  let interval = Sync.interval sync in
  for r = 1 to rounds_total do
    let target = min budget (r * interval) in
    if Harness.execs fz.Driver.f_harness < target then begin
      let snap = Driver.run_until_execs fz ~execs:target in
      iterations := !iterations + snap.Driver.st_iteration
    end;
    let execs_delta, crashes_delta, mdelta = deltas_take dl fz in
    let export =
      match fz.Driver.f_exchange with
      | Some p -> p.Sync.p_export ()
      | None -> Sync.empty_export
    in
    let imports =
      Sync.exchange_harness_round ~metrics:mdelta ~crashes_delta sync
        fz.Driver.f_harness ~shard:shard_id ~execs_delta ~export
    in
    (match fz.Driver.f_exchange with
     | Some p -> List.iter p.Sync.p_import imports
     | None -> ());
    emit
      (checkpoint_event ~series
         (Driver.checkpoint ~start fz ~iteration:!iterations));
    report ()
  done;
  shard_result fz ~shard_id ~iterations:!iterations

let sequential ?checkpoint_every ?(on_checkpoint = fun _ -> ()) ~sink
    ~series_prefix ~execs make =
  let fz : Driver.fuzzer = make 0 in
  let series = series_prefix ^ "aggregate" in
  let snap =
    Driver.run_until_execs ?checkpoint_every
      ~on_checkpoint:(fun cp ->
          on_checkpoint cp;
          Telemetry.Sink.emit sink (checkpoint_event ~series cp))
      fz ~execs
  in
  let tri = Harness.triage fz.Driver.f_harness in
  { cg_snapshot = snap;
    cg_shards =
      [ { sh_id = 0; sh_seed_offset = 0; sh_snapshot = snap; sh_fuzzer = fz } ];
    cg_crashes = Triage.unique_with_cases tri;
    cg_logic = Triage.unique_logic tri;
    cg_sync_rounds = 0;
    (* a snapshot, like the sharded path returns: the caller gets the
       campaign's metrics as of completion, not a live registry that
       keeps mutating if the fuzzer is driven further *)
    cg_metrics =
      Telemetry.Registry.snapshot (Harness.metrics fz.Driver.f_harness) }

let run ?(checkpoint_every = 0) ?(on_checkpoint = fun _ -> ()) ?sync_every
    ?(exchange = Sync.exchange_off) ?(sink = Telemetry.Sink.null)
    ?(series_prefix = "") ?(prime_sync = fun _ -> ()) ~jobs ~execs make =
  let jobs = max 1 jobs in
  if jobs = 1 then
    (* Bit-for-bit the pre-sharding sequential path: one fuzzer, one
       driver loop, no sync machinery in the way. With one shard there is
       no foreign party to exchange with, so [exchange] is irrelevant
       here by construction — the sequential path keeps single-job
       campaigns byte-identical whatever the flags say. *)
    sequential ~checkpoint_every ~on_checkpoint ~sink ~series_prefix ~execs
      make
  else begin
    let sync = Sync.create ?interval:sync_every ~exchange ~parties:jobs () in
    prime_sync sync;
    let start = Telemetry.Span.now_s () in
    (* Shards on other domains never write the sink directly: checkpoint
       events are buffered with a (rank, execs, seq) tag and emitted in
       sorted order after the join, so the jobs>1 event stream is
       ordered-identical run to run, not merely multiset-identical.
       rank is the shard id (aggregate checkpoints sort last, rank =
       jobs); within one rank, execs then seq reproduce the shard's own
       emission order — seq values are globally timing-dependent, but
       each shard assigns them monotonically, so relative order inside a
       (rank, execs) group is program order. [on_checkpoint] callbacks
       still fire live. *)
    let buf_lock = Mutex.create () in
    let buffered = ref [] in
    let seq = ref 0 in
    let execs_of = function
      | Telemetry.Event.Checkpoint { point; _ } ->
        point.Telemetry.Event.p_execs
      | _ -> 0
    in
    let emit_tagged rank ev =
      Mutex.lock buf_lock;
      incr seq;
      buffered := (rank, execs_of ev, !seq, ev) :: !buffered;
      Mutex.unlock buf_lock
    in
    (* Spread the total budget over shards; early shards absorb the
       remainder so the sum is exactly [execs]. *)
    let budget_of i = (execs / jobs) + (if i < execs mod jobs then 1 else 0) in
    (* Aggregate checkpointing: after any shard publishes, emit one
       aggregate snapshot per [checkpoint_every] published executions.
       Guarded by its own mutex so callbacks never interleave. *)
    let cp_lock = Mutex.create () in
    let last_cp = ref 0 in
    let report () =
      if checkpoint_every > 0 then begin
        Mutex.lock cp_lock;
        Fun.protect ~finally:(fun () -> Mutex.unlock cp_lock) (fun () ->
            let seen = Sync.execs_seen sync in
            if seen - !last_cp >= checkpoint_every && seen < execs then begin
              last_cp := seen;
              let snap =
                snapshot_of_sync sync ~iteration:(Sync.rounds sync)
                  ~execs:seen
                  ~total_crashes:(Sync.total_crashes sync)
              in
              let wall = Telemetry.Span.now_s () -. start in
              let cp =
                { Driver.cp_snapshot = snap;
                  cp_annot =
                    { Driver.an_wall_s = wall;
                      an_execs_per_sec =
                        (if wall > 0.0 then float_of_int seen /. wall
                         else 0.0) } }
              in
              on_checkpoint cp;
              emit_tagged jobs
                (checkpoint_event ~series:(series_prefix ^ "aggregate") cp)
            end)
      end
    in
    (* In exchange mode every shard runs the same fixed number of
       barriered rounds, derived from the largest shard budget. *)
    let rounds_total =
      let iv = Sync.interval sync in
      max 1 ((budget_of 0 + iv - 1) / iv)
    in
    let exchange_on = Sync.exchange_active exchange in
    (* A dying shard (Driver.Stalled, a harness bug …) must not leave the
       others blocked at the exchange barrier: trap the exception, abort
       the sync (waking everyone with Sync.Aborted), join all domains,
       then re-raise the original error rather than a secondary Aborted. *)
    let domains =
      List.init jobs (fun i ->
          Domain.spawn (fun () ->
              let series = Printf.sprintf "%sshard-%d" series_prefix i in
              let emit = emit_tagged i in
              match
                if exchange_on then
                  run_shard_exchange ~sync ~make ~budget:(budget_of i)
                    ~rounds_total ~report ~emit ~series ~start i
                else
                  run_shard ~sync ~make ~budget:(budget_of i) ~report ~emit
                    ~series ~start i
              with
              | sh -> Ok sh
              | exception e ->
                Sync.abort sync;
                Error e))
    in
    let results = List.map Domain.join domains in
    let errors =
      List.filter_map (function Error e -> Some e | Ok _ -> None) results
    in
    (match errors with
     | [] -> ()
     | es ->
       let primary =
         match
           List.find_opt (function Sync.Aborted -> false | _ -> true) es
         with
         | Some e -> e
         | None -> List.hd es
       in
       raise primary);
    List.iter
      (fun (_, _, _, ev) -> Telemetry.Sink.emit sink ev)
      (List.sort
         (fun (r1, e1, s1, _) (r2, e2, s2, _) ->
            match compare r1 r2 with
            | 0 -> (match compare e1 e2 with 0 -> compare s1 s2 | c -> c)
            | c -> c)
         !buffered);
    let shards =
      List.filter_map (function Ok sh -> Some sh | Error _ -> None) results
    in
    let sum f = List.fold_left (fun acc sh -> acc + f sh.sh_snapshot) 0 shards in
    let aggregate =
      snapshot_of_sync sync
        ~iteration:(sum (fun s -> s.Driver.st_iteration))
        ~execs:(sum (fun s -> s.Driver.st_execs))
        ~total_crashes:(sum (fun s -> s.Driver.st_total_crashes))
    in
    let metrics = Sync.metrics sync in
    (* Per-shard grammar gauges max-merge to the largest single shard;
       the campaign-level truth is the cross-shard union, so overwrite
       from the merged global grammar map. No-op (and no gauge creation)
       when no shard ran grammar feedback. *)
    let g_rules, g_pairs = Sync.grammar_counts sync in
    if g_rules > 0 || g_pairs > 0 then begin
      Telemetry.Registry.set_max
        (Telemetry.Registry.gauge metrics "grammar.rules") g_rules;
      Telemetry.Registry.set_max
        (Telemetry.Registry.gauge metrics "grammar.pairs") g_pairs
    end;
    { cg_snapshot = aggregate;
      cg_shards = shards;
      cg_crashes = Sync.unique_crashes sync;
      cg_logic = Sync.unique_logic sync;
      cg_sync_rounds = Sync.rounds sync;
      cg_metrics = metrics }
  end
