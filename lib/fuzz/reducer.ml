open Sqlcore

type outcome = {
  r_testcase : Ast.testcase;
  r_tries : int;
  r_removed : int;
}

let crashes_with ~profile ?(limits = Minidb.Limits.default) ~bug_id tc =
  let cov = Coverage.Bitmap.create () in
  let engine = Minidb.Engine.create ~limits ~profile ~cov () in
  match (Minidb.Engine.run_testcase engine tc).Minidb.Engine.rs_crash with
  | Some crash -> crash.Minidb.Fault.c_bug.Minidb.Fault.bug_id = bug_id
  | None -> false

(* Replace every literal with a simpler one where the property survives:
   readable repro cases use 0/''/NULL, not 22471185.000000. *)
let simplify_literals ~oracle ~oracle_candidate tries stmt_list =
  let simpler = function
    | Ast.L_int n when n <> 0 -> Some (Ast.L_int 0)
    | Ast.L_float _ -> Some (Ast.L_float 0.0)
    | Ast.L_string s when s <> "" -> Some (Ast.L_string "")
    | _ -> None
  in
  let current = ref stmt_list in
  List.iteri
    (fun i stmt ->
       let n_lits =
         Ast_util.fold_exprs
           (fun acc e -> match e with Ast.Lit _ -> acc + 1 | _ -> acc)
           0 stmt
       in
       for target = 0 to n_lits - 1 do
         let seen = ref (-1) in
         let stmt' =
           Ast_util.map_exprs
             (function
               | Ast.Lit l as e ->
                 incr seen;
                 if !seen = target then
                   match simpler l with
                   | Some l' -> Ast.Lit l'
                   | None -> e
                 else e
               | e -> e)
             (List.nth !current i)
         in
         if stmt' <> List.nth !current i && oracle () then begin
           let candidate =
             List.mapi (fun j s -> if j = i then stmt' else s) !current
           in
           incr tries;
           if oracle_candidate candidate then current := candidate
         end
       done)
    stmt_list;
  !current

(* Greedy repeated single-deletion until 1-minimal, element-type
   agnostic: test cases are [stmt list], schedules are
   [(session * stmt) list] — same shrink loop. Back-to-front so
   trailing junk goes first. Shared [tries] counter lets callers run
   further passes under one budget. *)
let delta_pass ~pred ~tries ~within_budget current =
  let progress = ref true in
  while !progress && within_budget () do
    progress := false;
    let n = List.length !current in
    let i = ref (n - 1) in
    while !i >= 0 && within_budget () do
      if List.length !current > 1 then begin
        let candidate = List.filteri (fun j _ -> j <> !i) !current in
        incr tries;
        if pred candidate then begin
          current := candidate;
          progress := true
        end
      end;
      decr i
    done
  done

let reduce_poly ~pred ?(max_tries = 2048) items =
  let tries = ref 0 in
  if not (pred items) then (items, 1)
  else begin
    tries := 1;
    let current = ref items in
    delta_pass ~pred ~tries
      ~within_budget:(fun () -> !tries < max_tries)
      current;
    (!current, !tries)
  end

let reduce_with ~pred ?(max_tries = 2048) tc =
  let tries = ref 0 in
  (* budget check (no execution) and the interestingness oracle itself *)
  let within_budget () = !tries < max_tries in
  if not (pred tc) then { r_testcase = tc; r_tries = 1; r_removed = 0 }
  else begin
    tries := 1;
    (* Pass 1: drop statements until 1-minimal (greedy, repeated). *)
    let current = ref tc in
    delta_pass ~pred ~tries ~within_budget current;
    (* Pass 2: simplify literals inside the survivors. *)
    let simplified =
      simplify_literals ~oracle:within_budget ~oracle_candidate:pred tries
        !current
    in
    let simplified = if pred simplified then simplified else !current in
    { r_testcase = simplified;
      r_tries = !tries;
      r_removed = List.length tc - List.length simplified }
  end

let reduce ~profile ?(limits = Minidb.Limits.default) ?max_tries ~bug_id tc =
  (* bind the limits once: every oracle execution of this reduction reuses
     the same record instead of re-resolving the optional default per try *)
  let pred = crashes_with ~profile ~limits ~bug_id in
  reduce_with ~pred ?max_tries tc
