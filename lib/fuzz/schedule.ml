open Sqlcore
module Rng = Reprutil.Rng

(* Interleaving-schedule fuzzing on the multi-session server layer.

   A schedule assigns K typed sequences (corpus seeds or Algorithm 3
   output) to K sessions and fixes a total order over their statements.
   Schedules run twice: live across OCaml 5 domains (crash hunting —
   the turnstile keeps the order deterministic) and serially for
   triage, where outcomes must be byte-identical
   (Session_pool.outcome_equal); any divergence is counted in
   [schedule.replay_mismatch] and must stay 0.

   Three generators, cycled per schedule:
   - round_robin: the unbiased baseline, one statement per session in
     turn.
   - txn_biased: wraps bare sequences in BEGIN..COMMIT and biases
     switch points into open-transaction windows — the generator that
     reaches the seeded lost-update/dirty-read races from the plain
     corpus.
   - spliced: affinity-guided cross-session splice points — prefer
     switching to the session whose next statement type is affine with
     the type just executed, LEGO's affinity signal lifted across
     session boundaries. *)

type t = {
  sc_kind : string;
  sc_steps : (int * Ast.stmt) array;  (* (session, stmt), total order *)
}

let mk kind order =
  { sc_kind = kind; sc_steps = Array.of_list (List.rev order) }

(* --- generators ------------------------------------------------------ *)

let round_robin seqs =
  let seqs = Array.of_list (List.map Array.of_list seqs) in
  let k = Array.length seqs in
  let pos = Array.make k 0 in
  let order = ref [] in
  let remaining = ref (Array.fold_left (fun a s -> a + Array.length s) 0 seqs) in
  let i = ref 0 in
  while !remaining > 0 do
    let s = !i mod k in
    if pos.(s) < Array.length seqs.(s) then begin
      order := (s, seqs.(s).(pos.(s))) :: !order;
      pos.(s) <- pos.(s) + 1;
      decr remaining
    end;
    incr i
  done;
  mk "round_robin" !order

let has_txn_stmt tc =
  List.exists
    (function Ast.S_begin | Ast.S_commit | Ast.S_rollback -> true | _ -> false)
    tc

let wrap_txn tc =
  if has_txn_stmt tc then tc else (Ast.S_begin :: tc) @ [ Ast.S_commit ]

(* Statically track whether each session's emitted trace has an open
   transaction, and while any has, prefer scheduling OTHER sessions —
   stretching the open-txn window across foreign statements, which is
   exactly when the [other_txn_dirty] predicates can fire. *)
let txn_biased rng seqs =
  let seqs = Array.of_list (List.map (fun tc -> Array.of_list (wrap_txn tc)) seqs) in
  let k = Array.length seqs in
  let pos = Array.make k 0 in
  let open_txn = Array.make k false in
  let order = ref [] in
  let remaining () =
    let r = ref [] in
    for s = k - 1 downto 0 do
      if pos.(s) < Array.length seqs.(s) then r := s :: !r
    done;
    !r
  in
  let rec loop () =
    match remaining () with
    | [] -> ()
    | cands ->
      let closed = List.filter (fun s -> not open_txn.(s)) cands in
      let any_open = List.exists (fun s -> open_txn.(s)) cands in
      let pick =
        if any_open && closed <> [] && Rng.ratio rng 3 4 then
          Rng.choose rng closed
        else Rng.choose rng cands
      in
      let stmt = seqs.(pick).(pos.(pick)) in
      pos.(pick) <- pos.(pick) + 1;
      (match stmt with
       | Ast.S_begin -> open_txn.(pick) <- true
       | Ast.S_commit | Ast.S_rollback -> open_txn.(pick) <- false
       | _ -> ());
      order := (pick, stmt) :: !order;
      loop ()
  in
  loop ();
  mk "txn_biased" !order

(* Affinity mined from corpus adjacency: (a, b) is affine when some
   sequence executes b directly after a — the corpus-level shadow of
   LEGO's Algorithm 2 scores, dependency-free for this layer. *)
let adjacency_affinity corpus =
  let pairs = Hashtbl.create 64 in
  List.iter
    (fun tc ->
       let tys = List.map Ast.type_of_stmt tc in
       let rec walk = function
         | a :: (b :: _ as rest) ->
           Hashtbl.replace pairs (a, b) ();
           walk rest
         | _ -> ()
       in
       walk tys)
    corpus;
  fun a b -> Hashtbl.mem pairs (a, b)

let spliced rng ~affine seqs =
  let seqs = Array.of_list (List.map Array.of_list seqs) in
  let k = Array.length seqs in
  let pos = Array.make k 0 in
  let order = ref [] in
  let last_ty = ref None in
  let remaining () =
    let r = ref [] in
    for s = k - 1 downto 0 do
      if pos.(s) < Array.length seqs.(s) then r := s :: !r
    done;
    !r
  in
  let rec loop () =
    match remaining () with
    | [] -> ()
    | cands ->
      let affines =
        match !last_ty with
        | None -> []
        | Some prev ->
          List.filter
            (fun s ->
               affine prev (Ast.type_of_stmt seqs.(s).(pos.(s))))
            cands
      in
      let pick =
        if affines <> [] && Rng.ratio rng 2 3 then Rng.choose rng affines
        else Rng.choose rng cands
      in
      let stmt = seqs.(pick).(pos.(pick)) in
      pos.(pick) <- pos.(pick) + 1;
      last_ty := Some (Ast.type_of_stmt stmt);
      order := (pick, stmt) :: !order;
      loop ()
  in
  loop ();
  mk "spliced" !order

(* --- campaign -------------------------------------------------------- *)

type result = {
  sr_triage : Triage.t;
  sr_schedules : int;
  sr_steps : int;
  sr_replay_mismatch : int;
  sr_crash_repros : (string * (int * Ast.stmt) array) list;
      (* bug_id -> 1-minimal schedule, first-found order *)
  sr_violation_repros : (string * (int * Ast.stmt) array) list;
      (* violation key -> shrunk schedule *)
}

let count metrics name by =
  match metrics with
  | None -> ()
  | Some m ->
    if by > 0 then
      Telemetry.Registry.incr ~by (Telemetry.Registry.counter m name)

let fresh_pool ?limits ?metrics ~sessions ~profile ~cov () =
  Server.Session_pool.create ?limits ?metrics ~sessions ~profile ~cov ()

(* Serial replay of [steps] on a virgin pool; the interestingness
   oracles for minimization. *)
let serial_outcome ?limits ~sessions ~profile steps =
  let cov = Coverage.Bitmap.create () in
  let pool = fresh_pool ?limits ~sessions ~profile ~cov () in
  Server.Session_pool.run_serial pool (Array.of_list steps)

let crashes_with ?limits ~sessions ~profile ~bug_id steps =
  match (serial_outcome ?limits ~sessions ~profile steps).o_crash with
  | Some (_, c) -> c.Minidb.Fault.c_bug.Minidb.Fault.bug_id = bug_id
  | None -> false

let violates_with ?limits ~sessions ~profile ~key steps =
  let out = serial_outcome ?limits ~sessions ~profile steps in
  out.o_crash = None
  && (match
        Oracle.Isolation.check ?limits ~profile
          ~steps:(Array.of_list steps) ~observed:out.o_fingerprint ()
      with
      | Some v -> String.equal (Oracle.Violation.key v) key
      | None -> false)

let pick_seqs rng k corpus =
  let arr = Array.of_list corpus in
  List.init k (fun _ -> Rng.choose_arr rng arr)

let generate rng ~kind ~affine seqs =
  match kind mod 3 with
  | 0 -> round_robin seqs
  | 1 -> txn_biased rng seqs
  | _ -> spliced rng ~affine seqs

let campaign ?limits ?metrics ?(max_tries = 512) ~profile ~sessions
    ~schedules ~seed ~corpus () =
  if corpus = [] then invalid_arg "Schedule.campaign: empty corpus";
  let triage = Triage.create () in
  let affine = adjacency_affinity corpus in
  let cov = Coverage.Bitmap.create () in
  let rng = Rng.create seed in
  let steps_total = ref 0 in
  let mismatches = ref 0 in
  let crash_repros = ref [] in
  let violation_repros = ref [] in
  for _m = 1 to schedules do
    let srng = Rng.split rng in
    let seqs = pick_seqs srng sessions corpus in
    let kind = Rng.int srng 3 in
    let sched = generate srng ~kind ~affine seqs in
    let steps = sched.sc_steps in
    count metrics "schedule.generated" 1;
    count metrics ("schedule.kind." ^ sched.sc_kind) 1;
    (* Both pool executions below (live concurrent + serial replay) run
       through Server.Session_pool, never through the harness's
       prefix-snapshot cache. Tag them explicitly so cache-rate math
       (cache.hits / (cache.hits + cache.misses), see bench/exp_common)
       provably excludes the schedule phase instead of letting its
       executions masquerade as single-session cache.bypass traffic. *)
    count metrics "cache.schedule_bypass" 2;
    steps_total := !steps_total + Array.length steps;
    count metrics "schedule.steps" (Array.length steps);
    (* live concurrent execution (crash hunting) ... *)
    let live =
      let pool = fresh_pool ?limits ?metrics ~sessions ~profile ~cov () in
      Server.Session_pool.run_concurrent pool steps
    in
    (* ... then deterministic serial replay (triage) *)
    let replay =
      let pool = fresh_pool ?limits ~sessions ~profile ~cov () in
      Server.Session_pool.run_serial pool steps
    in
    if not (Server.Session_pool.outcome_equal live replay) then begin
      incr mismatches;
      count metrics "schedule.replay_mismatch" 1
    end;
    (match replay.o_crash with
     | Some (_, crash) ->
       count metrics "schedule.crashes" 1;
       let tc = List.map snd (Array.to_list steps) in
       if Triage.record triage ~testcase:tc crash then begin
         let bug_id = crash.Minidb.Fault.c_bug.Minidb.Fault.bug_id in
         count metrics ("schedule.found." ^ bug_id) 1;
         let reduced, _tries =
           Reducer.reduce_poly
             ~pred:(crashes_with ?limits ~sessions ~profile ~bug_id)
             ~max_tries
             (Array.to_list steps)
         in
         crash_repros :=
           (bug_id, Array.of_list reduced) :: !crash_repros
       end
     | None ->
       count metrics "oracle.isolation.checks" 1;
       (match
          Oracle.Isolation.check ?limits ~profile ~steps
            ~observed:replay.o_fingerprint ()
        with
        | Some v ->
          count metrics "oracle.isolation.violations" 1;
          count metrics "schedule.violations" 1;
          let key = Oracle.Violation.key v in
          let tc = List.map snd (Array.to_list steps) in
          if Triage.record_logic triage ~testcase:tc v then begin
            let reduced, _tries =
              Reducer.reduce_poly
                ~pred:(violates_with ?limits ~sessions ~profile ~key)
                ~max_tries
                (Array.to_list steps)
            in
            violation_repros :=
              (key, Array.of_list reduced) :: !violation_repros
          end
        | None -> ()))
  done;
  { sr_triage = triage;
    sr_schedules = schedules;
    sr_steps = !steps_total;
    sr_replay_mismatch = !mismatches;
    sr_crash_repros = List.rev !crash_repros;
    sr_violation_repros = List.rev !violation_repros }

let render_steps steps =
  String.concat "\n"
    (List.map
       (fun (sid, stmt) ->
          Printf.sprintf "s%d> %s" sid (Sql_printer.stmt stmt))
       (Array.to_list steps))
