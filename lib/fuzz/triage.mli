(** Crash deduplication by synthetic call stack, the analogue of the
    paper's "we first got [unique bugs] from unique crashes by comparing
    the call stack". *)

type t

val create : unit -> t

val stack_key : Minidb.Fault.crash -> string
(** The canonical deduplication key of a crash: its synthetic call stack,
    joined. Two crashes with equal keys are the same bug signature —
    shared with {!Sync} so cross-shard dedup agrees with local dedup. *)

val record :
  t -> ?testcase:Sqlcore.Ast.testcase -> Minidb.Fault.crash -> bool
(** [true] when this crash's stack was not seen before. The triggering
    test case, when provided, is kept with the first crash of each
    stack so bugs ship with a reproducer. *)

val total_crashes : t -> int
(** All crashes recorded, including duplicates. *)

val unique : t -> Minidb.Fault.crash list
(** One representative per distinct stack, in first-seen order. *)

val unique_count : t -> int

val bug_ids : t -> string list
(** Distinct injected-bug ids among the unique crashes. *)

val unique_with_cases :
  t -> (Minidb.Fault.crash * Sqlcore.Ast.testcase option) list
(** Unique crashes paired with the test case that first triggered them. *)

val record_logic :
  t -> ?testcase:Sqlcore.Ast.testcase -> Oracle.Violation.t -> bool
(** The logic-bug counterpart of {!record}: [true] when this violation's
    {!Oracle.Violation.key} (oracle name + plan-shape tag) was not seen
    before. The triggering test case is kept with the first violation of
    each signature. *)

val total_logic : t -> int
(** All oracle violations recorded, including duplicates. *)

val unique_logic :
  t -> (Oracle.Violation.t * Sqlcore.Ast.testcase option) list
(** One representative per distinct signature, in first-seen order,
    paired with the test case that first exposed it. *)

val logic_count : t -> int

(** {2 Persisted-key preload (farm resume)}

    A resumed campaign must not re-report findings the interrupted run
    already shipped. {!preload} marks persisted dedup keys as seen {e
    without} a representative: {!record}/{!record_logic} on a preloaded
    key return [false] (and add nothing to {!unique}/{!unique_logic}),
    exactly as if the crash had been seen in this process. Preloaded keys
    do not count toward {!unique_count}, {!total_crashes} or
    {!logic_count} — those stay "this run's findings". *)

val preload : t -> crash_keys:string list -> logic_keys:string list -> unit
(** Idempotent; keys already seen (preloaded or recorded) are ignored. *)

val crash_keys : t -> string list
(** Every crash dedup key this triage knows — preloaded keys first (in
    preload order), then locally recorded keys in first-seen order. The
    deterministic persisted form of the dedup table: a store saved from a
    resumed campaign carries the union. *)

val logic_keys : t -> string list
(** Logic-signature counterpart of {!crash_keys}. *)
