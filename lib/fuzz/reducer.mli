(** Crash test-case reduction.

    The paper reports bugs as short, readable test cases (Figs. 3 and 7);
    fuzzers rarely produce those directly. This module shrinks a crashing
    test case while preserving the {e same} injected bug (same bug id, the
    analogue of "same ASan stack"): statement-level delta reduction to a
    1-minimal sequence, then literal simplification inside the surviving
    statements. *)

type outcome = {
  r_testcase : Sqlcore.Ast.testcase;  (** the reduced test case *)
  r_tries : int;                      (** oracle executions spent *)
  r_removed : int;                    (** statements removed *)
}

val crashes_with :
  profile:Minidb.Profile.t ->
  ?limits:Minidb.Limits.t ->
  bug_id:string ->
  Sqlcore.Ast.testcase ->
  bool
(** Oracle: does this test case, on a fresh engine, crash with exactly
    this bug? *)

val reduce_poly :
  pred:('a list -> bool) ->
  ?max_tries:int ->
  'a list ->
  'a list * int
(** The statement-level delta-reduction core, element-type agnostic:
    shrink any list to 1-minimality under [pred] (greedy repeated
    single-deletion, back-to-front). Schedule shrinking runs it over
    [(session * stmt)] steps, which {!reduce_with} cannot carry.
    Returns the reduced list and predicate executions spent; an input
    not satisfying [pred] comes back unchanged with 1 try. *)

val reduce_with :
  pred:(Sqlcore.Ast.testcase -> bool) ->
  ?max_tries:int ->
  Sqlcore.Ast.testcase ->
  outcome
(** Shrink while the pluggable interestingness predicate stays true —
    [pred] may replay a crash ({!crashes_with}) or re-run a logic-bug
    oracle ({!Oracle.Suite.check}). The result is 1-minimal at the
    statement level: removing any single remaining statement loses the
    property (up to [max_tries] predicate executions, default 2048). If
    the input does not satisfy [pred], it is returned unchanged. *)

val reduce :
  profile:Minidb.Profile.t ->
  ?limits:Minidb.Limits.t ->
  ?max_tries:int ->
  bug_id:string ->
  Sqlcore.Ast.testcase ->
  outcome
(** {!reduce_with} with [pred] bound once to
    [crashes_with ~profile ~limits ~bug_id]. *)
