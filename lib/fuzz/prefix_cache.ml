(* Bounded LRU map from printed-prefix keys to cached values (engine
   snapshots, in the harness). A hash table gives O(1) lookup; an
   intrusive doubly-linked list over the entries gives O(1)
   recency-reorder and O(1) eviction of the least recently used entry.
   Capacity is bounded both by entry count and (optionally) by the
   caller-supplied per-entry byte estimates. *)

type ('k, 'v) node = {
  n_key : 'k;
  n_value : 'v;
  n_bytes : int;
  mutable n_prev : ('k, 'v) node option;  (* towards most recent *)
  mutable n_next : ('k, 'v) node option;  (* towards least recent *)
}

type ('k, 'v) t = {
  cap : int;
  max_bytes : int option;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable bytes : int;
}

let create ?max_bytes ~cap () =
  if cap <= 0 then invalid_arg "Prefix_cache.create: cap must be positive";
  { cap; max_bytes; tbl = Hashtbl.create (min cap 1024); head = None;
    tail = None; bytes = 0 }

let length t = Hashtbl.length t.tbl

let bytes t = t.bytes

let unlink t node =
  (match node.n_prev with
   | Some p -> p.n_next <- node.n_next
   | None -> t.head <- node.n_next);
  (match node.n_next with
   | Some n -> n.n_prev <- node.n_prev
   | None -> t.tail <- node.n_prev);
  node.n_prev <- None;
  node.n_next <- None

let push_front t node =
  node.n_next <- t.head;
  (match t.head with
   | Some h -> h.n_prev <- Some node
   | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some node ->
    (match t.head with
     | Some h when h == node -> ()
     | _ ->
       unlink t node;
       push_front t node);
    Some node.n_value

let mem t key = Hashtbl.mem t.tbl key

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.tbl node.n_key;
    t.bytes <- t.bytes - node.n_bytes

let over_budget t =
  Hashtbl.length t.tbl > t.cap
  || (match t.max_bytes with
      | Some mb -> t.bytes > mb && Hashtbl.length t.tbl > 1
      | None -> false)

let insert t key value ~bytes:n_bytes =
  (match Hashtbl.find_opt t.tbl key with
   | Some old ->
     unlink t old;
     Hashtbl.remove t.tbl key;
     t.bytes <- t.bytes - old.n_bytes
   | None -> ());
  let node = { n_key = key; n_value = value; n_bytes; n_prev = None;
               n_next = None }
  in
  Hashtbl.replace t.tbl key node;
  push_front t node;
  t.bytes <- t.bytes + n_bytes;
  let evicted = ref 0 in
  while over_budget t do
    evict_lru t;
    incr evicted
  done;
  !evicted
