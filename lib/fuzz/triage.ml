type t = {
  seen : (string, unit) Hashtbl.t;
  mutable uniques : (Minidb.Fault.crash * Sqlcore.Ast.testcase option) list;
      (* reverse first-seen order *)
  mutable total : int;
  lseen : (string, unit) Hashtbl.t;
  mutable logic_uniques :
    (Oracle.Violation.t * Sqlcore.Ast.testcase option) list;
      (* reverse first-seen order *)
  mutable logic_total : int;
}

let create () =
  { seen = Hashtbl.create 32; uniques = []; total = 0;
    lseen = Hashtbl.create 16; logic_uniques = []; logic_total = 0 }

let stack_key (c : Minidb.Fault.crash) = String.concat "|" c.c_stack

let record t ?testcase crash =
  t.total <- t.total + 1;
  let key = stack_key crash in
  if Hashtbl.mem t.seen key then false
  else begin
    Hashtbl.replace t.seen key ();
    t.uniques <- (crash, testcase) :: t.uniques;
    true
  end

let record_logic t ?testcase violation =
  t.logic_total <- t.logic_total + 1;
  let key = Oracle.Violation.key violation in
  if Hashtbl.mem t.lseen key then false
  else begin
    Hashtbl.replace t.lseen key ();
    t.logic_uniques <- (violation, testcase) :: t.logic_uniques;
    true
  end

let total_crashes t = t.total

let unique_with_cases t = List.rev t.uniques

let unique t = List.map fst (unique_with_cases t)

let unique_count t = List.length t.uniques

let total_logic t = t.logic_total

let unique_logic t = List.rev t.logic_uniques

let logic_count t = List.length t.logic_uniques

let bug_ids t =
  let ids =
    List.map (fun (c : Minidb.Fault.crash) -> c.c_bug.bug_id) (unique t)
  in
  List.sort_uniq String.compare ids
