type t = {
  seen : (string, unit) Hashtbl.t;
  mutable uniques : (Minidb.Fault.crash * Sqlcore.Ast.testcase option) list;
      (* reverse first-seen order *)
  mutable total : int;
  lseen : (string, unit) Hashtbl.t;
  mutable logic_uniques :
    (Oracle.Violation.t * Sqlcore.Ast.testcase option) list;
      (* reverse first-seen order *)
  mutable logic_total : int;
  (* Deterministic key logs: hashtable iteration order is unspecified,
     but the persisted dedup table must serialize identically run to
     run. Preloaded keys (farm resume) land here too, so a store saved
     from a resumed campaign carries the union of old and new keys. *)
  mutable key_log : string list;        (* reverse order *)
  mutable logic_key_log : string list;  (* reverse order *)
}

let create () =
  { seen = Hashtbl.create 32; uniques = []; total = 0;
    lseen = Hashtbl.create 16; logic_uniques = []; logic_total = 0;
    key_log = []; logic_key_log = [] }

let stack_key (c : Minidb.Fault.crash) = String.concat "|" c.c_stack

let record t ?testcase crash =
  t.total <- t.total + 1;
  let key = stack_key crash in
  if Hashtbl.mem t.seen key then false
  else begin
    Hashtbl.replace t.seen key ();
    t.key_log <- key :: t.key_log;
    t.uniques <- (crash, testcase) :: t.uniques;
    true
  end

let record_logic t ?testcase violation =
  t.logic_total <- t.logic_total + 1;
  let key = Oracle.Violation.key violation in
  if Hashtbl.mem t.lseen key then false
  else begin
    Hashtbl.replace t.lseen key ();
    t.logic_key_log <- key :: t.logic_key_log;
    t.logic_uniques <- (violation, testcase) :: t.logic_uniques;
    true
  end

let total_crashes t = t.total

let unique_with_cases t = List.rev t.uniques

let unique t = List.map fst (unique_with_cases t)

let unique_count t = List.length t.uniques

let total_logic t = t.logic_total

let unique_logic t = List.rev t.logic_uniques

let logic_count t = List.length t.logic_uniques

(* The farm-resume fix: previously dedup keys existed only as live
   hashtable state rebuilt from scratch by each process, so a resumed
   campaign re-reported every pre-interruption finding as new. Preload
   marks persisted keys as seen without a representative. *)
let preload t ~crash_keys ~logic_keys =
  List.iter
    (fun key ->
       if not (Hashtbl.mem t.seen key) then begin
         Hashtbl.replace t.seen key ();
         t.key_log <- key :: t.key_log
       end)
    crash_keys;
  List.iter
    (fun key ->
       if not (Hashtbl.mem t.lseen key) then begin
         Hashtbl.replace t.lseen key ();
         t.logic_key_log <- key :: t.logic_key_log
       end)
    logic_keys

let crash_keys t = List.rev t.key_log

let logic_keys t = List.rev t.logic_key_log

let bug_ids t =
  let ids =
    List.map (fun (c : Minidb.Fault.crash) -> c.c_bug.bug_id) (unique t)
  in
  List.sort_uniq String.compare ids
