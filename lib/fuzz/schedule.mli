(** Interleaving-schedule fuzzing over the multi-session server layer.

    Takes K typed sequences (corpus seeds / Algorithm 3 output),
    assigns them to K sessions and synthesizes a total execution order.
    Each schedule runs twice with byte-identical outcomes — live across
    OCaml 5 domains for crash hunting, then serially for deterministic
    triage — and crash-free schedules are checked against the
    commit-order serializability oracle ({!Oracle.Isolation}). Crashes
    dedup by synthetic stack, violations by
    {!Oracle.Violation.key}; new signatures are 1-minimized at the
    schedule-step level via {!Reducer.reduce_poly} with a predicate
    that replays the candidate schedule serially. *)

open Sqlcore

type t = {
  sc_kind : string;  (** ["round_robin"], ["txn_biased"] or ["spliced"] *)
  sc_steps : (int * Ast.stmt) array;
      (** (session, statement) in execution order *)
}

val round_robin : Ast.testcase list -> t
(** One statement per session in turn — the unbiased baseline. *)

val txn_biased : Reprutil.Rng.t -> Ast.testcase list -> t
(** Wraps sequences without transaction statements in BEGIN..COMMIT and
    biases switch points into open-transaction windows, scheduling
    other sessions while a transaction holds dirty writes — the
    generator that reaches the seeded concurrency races from a plain
    corpus. *)

val spliced :
  Reprutil.Rng.t ->
  affine:(Stmt_type.t -> Stmt_type.t -> bool) ->
  Ast.testcase list ->
  t
(** Affinity-guided cross-session splice points: prefer switching to a
    session whose next statement type is affine with the type just
    executed. *)

val adjacency_affinity :
  Ast.testcase list -> Stmt_type.t -> Stmt_type.t -> bool
(** Affinity mined from corpus adjacency: [(a, b)] is affine when some
    sequence executes [b] directly after [a]. The default [affine] for
    {!spliced} inside {!campaign}. *)

type result = {
  sr_triage : Triage.t;
      (** crashes deduped by stack, violations by key *)
  sr_schedules : int;
  sr_steps : int;
  sr_replay_mismatch : int;
      (** schedules whose concurrent and serial outcomes diverged —
          must be 0; counted in [schedule.replay_mismatch] *)
  sr_crash_repros : (string * (int * Ast.stmt) array) list;
      (** bug id → 1-minimal schedule, first-found order *)
  sr_violation_repros : (string * (int * Ast.stmt) array) list;
      (** violation key → shrunk schedule preserving the key *)
}

val campaign :
  ?limits:Minidb.Limits.t ->
  ?metrics:Telemetry.Registry.t ->
  ?max_tries:int ->
  profile:Minidb.Profile.t ->
  sessions:int ->
  schedules:int ->
  seed:int ->
  corpus:Ast.testcase list ->
  unit ->
  result
(** Generate and execute [schedules] schedules of [sessions] sequences
    drawn from [corpus] (generator kinds cycled pseudo-randomly from
    [seed]; fully deterministic). [metrics] receives the [schedule.*]
    counter family ([generated], [steps], [crashes], [violations],
    [replay_mismatch], [found.<bug_id>], [kind.<kind>]) plus
    [oracle.isolation.checks]/[.violations] and the pools'
    [session.*] counters. [max_tries] bounds each minimization
    (default 512 replays). *)

val render_steps : (int * Ast.stmt) array -> string
(** Printable schedule: one ["s<id>> SQL"] line per step. *)
