type outcome = {
  o_new_branches : int;
  o_cov_hash : int64;
  o_crash : Minidb.Fault.crash option;
  o_crash_is_new : bool;
  o_errors : int;
  o_executed : int;
  o_cost : int;
  o_violations : int;
}

type t = {
  h_profile : Minidb.Profile.t;
  h_limits : Minidb.Limits.t;
  h_virgin : Coverage.Bitmap.t;
  h_exec_map : Coverage.Bitmap.t;
  h_triage : Triage.t;
  mutable h_execs : int;
  (* telemetry: per-shard, lock-free, merged at sync rounds *)
  h_metrics : Telemetry.Registry.t;
  h_c_execs : Telemetry.Registry.counter;
  h_c_new_branches : Telemetry.Registry.counter;
  h_c_crashes : Telemetry.Registry.counter;
  h_c_unique_crashes : Telemetry.Registry.counter;
  h_h_cost : Telemetry.Registry.histogram;
  h_sp_execute : Telemetry.Span.t;
  h_sp_triage : Telemetry.Span.t;
  h_oracles : oracle_state option;
}

and oracle_state = {
  os_suite : Oracle.Suite.t;
  (* per-oracle (checks, violations) counters, in Suite.oracle_names
     order, created up front so a zero-violation campaign still exports
     the full oracle.* namespace *)
  os_counters :
    (string * (Telemetry.Registry.counter * Telemetry.Registry.counter))
      list;
  os_span : Telemetry.Span.t;
}

let create ?(limits = Minidb.Limits.default) ?metrics ?oracles ~profile () =
  let m =
    match metrics with Some m -> m | None -> Telemetry.Registry.create ()
  in
  let oracle_state =
    match oracles with
    | None -> None
    | Some suite ->
      Some
        { os_suite = suite;
          os_counters =
            List.map
              (fun name ->
                 ( name,
                   ( Telemetry.Registry.counter m
                       ("oracle." ^ name ^ ".checks"),
                     Telemetry.Registry.counter m
                       ("oracle." ^ name ^ ".violations") ) ))
              Oracle.Suite.oracle_names;
          os_span = Telemetry.Span.stage m "oracle" }
  in
  { h_profile = profile; h_limits = limits;
    h_virgin = Coverage.Bitmap.create ();
    h_exec_map = Coverage.Bitmap.create ();
    h_triage = Triage.create (); h_execs = 0;
    h_metrics = m;
    h_c_execs = Telemetry.Registry.counter m "harness.execs";
    h_c_new_branches = Telemetry.Registry.counter m "harness.new_branches";
    h_c_crashes = Telemetry.Registry.counter m "harness.crashes";
    h_c_unique_crashes =
      Telemetry.Registry.counter m "harness.unique_crashes";
    h_h_cost = Telemetry.Registry.histogram m "harness.exec_cost";
    h_sp_execute = Telemetry.Span.stage m "execute";
    h_sp_triage = Telemetry.Span.stage m "triage";
    h_oracles = oracle_state }

let profile t = t.h_profile

let execute t tc =
  t.h_execs <- t.h_execs + 1;
  Telemetry.Registry.incr t.h_c_execs;
  Coverage.Bitmap.reset t.h_exec_map;
  let engine =
    Minidb.Engine.create ~limits:t.h_limits ~metrics:t.h_metrics
      ~profile:t.h_profile ~cov:t.h_exec_map ()
  in
  let stats =
    Telemetry.Span.time t.h_sp_execute (fun () ->
        Minidb.Engine.run_testcase engine tc)
  in
  let news = Coverage.Bitmap.merge_into ~virgin:t.h_virgin t.h_exec_map in
  if news > 0 then Telemetry.Registry.incr ~by:news t.h_c_new_branches;
  let crash = stats.Minidb.Engine.rs_crash in
  let crash_is_new =
    match crash with
    | None -> false
    | Some c ->
      Telemetry.Registry.incr t.h_c_crashes;
      let is_new =
        Telemetry.Span.time t.h_sp_triage (fun () ->
            Triage.record t.h_triage ~testcase:tc c)
      in
      if is_new then Telemetry.Registry.incr t.h_c_unique_crashes;
      is_new
  in
  Telemetry.Registry.observe t.h_h_cost stats.rs_cost;
  (* Logic-bug oracles only replay coverage-increasing, non-crashing test
     cases: new coverage is the paper's interestingness signal, and a
     crashing case already carries a stronger verdict. *)
  let violations =
    match t.h_oracles with
    | Some os when news > 0 && crash = None ->
      let outcome =
        Telemetry.Span.time os.os_span (fun () ->
            Oracle.Suite.check os.os_suite tc)
      in
      List.iter
        (fun (name, n) ->
           match List.assoc_opt name os.os_counters with
           | Some (checks, _) when n > 0 ->
             Telemetry.Registry.incr ~by:n checks
           | _ -> ())
        outcome.Oracle.Suite.oc_checks;
      List.iter
        (fun v ->
           (match List.assoc_opt v.Oracle.Violation.vi_oracle os.os_counters
            with
            | Some (_, violations) -> Telemetry.Registry.incr violations
            | None -> ());
           ignore (Triage.record_logic t.h_triage ~testcase:tc v))
        outcome.Oracle.Suite.oc_violations;
      List.length outcome.Oracle.Suite.oc_violations
    | _ -> 0
  in
  { o_new_branches = news;
    o_cov_hash = Coverage.Bitmap.hash t.h_exec_map;
    o_crash = crash;
    o_crash_is_new = crash_is_new;
    o_errors = stats.rs_errors;
    o_executed = stats.rs_executed;
    o_cost = stats.rs_cost;
    o_violations = violations }

let execs t = t.h_execs

let branches t = Coverage.Bitmap.count_nonzero t.h_virgin

let triage t = t.h_triage

let virgin t = t.h_virgin

let metrics t = t.h_metrics
