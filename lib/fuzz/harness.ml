type outcome = {
  o_new_branches : int;
  o_cov_hash : int64;
  o_crash : Minidb.Fault.crash option;
  o_crash_is_new : bool;
  o_errors : int;
  o_executed : int;
  o_cost : int;
}

type t = {
  h_profile : Minidb.Profile.t;
  h_limits : Minidb.Limits.t;
  h_virgin : Coverage.Bitmap.t;
  h_exec_map : Coverage.Bitmap.t;
  h_triage : Triage.t;
  mutable h_execs : int;
  (* telemetry: per-shard, lock-free, merged at sync rounds *)
  h_metrics : Telemetry.Registry.t;
  h_c_execs : Telemetry.Registry.counter;
  h_c_new_branches : Telemetry.Registry.counter;
  h_c_crashes : Telemetry.Registry.counter;
  h_c_unique_crashes : Telemetry.Registry.counter;
  h_h_cost : Telemetry.Registry.histogram;
  h_sp_execute : Telemetry.Span.t;
  h_sp_triage : Telemetry.Span.t;
}

let create ?(limits = Minidb.Limits.default) ?metrics ~profile () =
  let m =
    match metrics with Some m -> m | None -> Telemetry.Registry.create ()
  in
  { h_profile = profile; h_limits = limits;
    h_virgin = Coverage.Bitmap.create ();
    h_exec_map = Coverage.Bitmap.create ();
    h_triage = Triage.create (); h_execs = 0;
    h_metrics = m;
    h_c_execs = Telemetry.Registry.counter m "harness.execs";
    h_c_new_branches = Telemetry.Registry.counter m "harness.new_branches";
    h_c_crashes = Telemetry.Registry.counter m "harness.crashes";
    h_c_unique_crashes =
      Telemetry.Registry.counter m "harness.unique_crashes";
    h_h_cost = Telemetry.Registry.histogram m "harness.exec_cost";
    h_sp_execute = Telemetry.Span.stage m "execute";
    h_sp_triage = Telemetry.Span.stage m "triage" }

let profile t = t.h_profile

let execute t tc =
  t.h_execs <- t.h_execs + 1;
  Telemetry.Registry.incr t.h_c_execs;
  Coverage.Bitmap.reset t.h_exec_map;
  let engine =
    Minidb.Engine.create ~limits:t.h_limits ~metrics:t.h_metrics
      ~profile:t.h_profile ~cov:t.h_exec_map ()
  in
  let stats =
    Telemetry.Span.time t.h_sp_execute (fun () ->
        Minidb.Engine.run_testcase engine tc)
  in
  let news = Coverage.Bitmap.merge_into ~virgin:t.h_virgin t.h_exec_map in
  if news > 0 then Telemetry.Registry.incr ~by:news t.h_c_new_branches;
  let crash = stats.Minidb.Engine.rs_crash in
  let crash_is_new =
    match crash with
    | None -> false
    | Some c ->
      Telemetry.Registry.incr t.h_c_crashes;
      let is_new =
        Telemetry.Span.time t.h_sp_triage (fun () ->
            Triage.record t.h_triage ~testcase:tc c)
      in
      if is_new then Telemetry.Registry.incr t.h_c_unique_crashes;
      is_new
  in
  Telemetry.Registry.observe t.h_h_cost stats.rs_cost;
  { o_new_branches = news;
    o_cov_hash = Coverage.Bitmap.hash t.h_exec_map;
    o_crash = crash;
    o_crash_is_new = crash_is_new;
    o_errors = stats.rs_errors;
    o_executed = stats.rs_executed;
    o_cost = stats.rs_cost }

let execs t = t.h_execs

let branches t = Coverage.Bitmap.count_nonzero t.h_virgin

let triage t = t.h_triage

let virgin t = t.h_virgin

let metrics t = t.h_metrics
