(* What counts as coverage news: the edge bitmap (the paper's signal),
   the grammar-rule bitmap (which productions and rule pairs the parsed
   testcase fires), or either. [Edges] is the default and leaves every
   decision byte-identical to a harness without grammar support. *)
type feedback = Edges | Grammar | Both

let feedback_of_string = function
  | "edges" -> Some Edges
  | "grammar" -> Some Grammar
  | "both" -> Some Both
  | _ -> None

let feedback_to_string = function
  | Edges -> "edges"
  | Grammar -> "grammar"
  | Both -> "both"

type outcome = {
  o_new_branches : int;
  o_cov_hash : int64;
  o_crash : Minidb.Fault.crash option;
  o_crash_is_new : bool;
  o_errors : int;
  o_executed : int;
  o_cost : int;
  o_violations : int;
  o_new_rules : int;
  o_interesting : bool;
}

type t = {
  h_profile : Minidb.Profile.t;
  h_limits : Minidb.Limits.t;
  h_virgin : Coverage.Bitmap.t;
  h_exec_map : Coverage.Bitmap.t;
  h_triage : Triage.t;
  mutable h_execs : int;
  (* telemetry: per-shard, lock-free, merged at sync rounds *)
  h_metrics : Telemetry.Registry.t;
  h_c_execs : Telemetry.Registry.counter;
  h_c_new_branches : Telemetry.Registry.counter;
  h_c_crashes : Telemetry.Registry.counter;
  h_c_unique_crashes : Telemetry.Registry.counter;
  h_h_cost : Telemetry.Registry.histogram;
  h_sp_execute : Telemetry.Span.t;
  h_sp_triage : Telemetry.Span.t;
  h_oracles : oracle_state option;
  h_cache : cache_state option;
  h_feedback : feedback;
  h_grammar : grammar_state option;
}

(* Grammar-rule coverage (DESIGN.md §15): in [Grammar]/[Both] modes each
   executed testcase is printed and re-parsed with a grammar bitmap
   attached, recording which productions and (production, parent) rule
   pairs fired. Recording is orthogonal to the engine and the prefix
   cache — the parse always covers the whole printed testcase — so
   enabling it cannot perturb edge coverage or cache accounting. *)
and grammar_state = {
  gs_exec : Coverage.Bitmap.t;     (* per-execution scratch *)
  gs_virgin : Coverage.Bitmap.t;   (* accumulated rule/pair coverage *)
  gs_scratch : Coverage.Bitmap.t;  (* candidate-ranking scratch *)
  gs_g_rules : Telemetry.Registry.gauge;
  gs_g_pairs : Telemetry.Registry.gauge;
  gs_c_parse_errors : Telemetry.Registry.counter;
  gs_span : Telemetry.Span.t;
}

(* Prefix-snapshot execution cache (DESIGN.md §12). Entries are keyed by
   a digest chain over the printed statement prefix and hold everything
   a cold replay of that prefix would have produced: the engine snapshot
   at the boundary, the exec-map contribution, and the cumulative run
   stats. Restoring one and executing only the suffix is then
   outcome-identical to replaying from statement 0.

   Entries are captured opportunistically during execution itself: a
   hinted lookup that misses (or hits short of the hint) snapshots the
   hinted boundary as the run passes it, so the first mutant of a batch
   pays one deep-copy and its siblings hit. There is no separate priming
   replay — capture rides on work the harness was doing anyway. *)
and cache_state = {
  cs_cache : (string, cache_entry) Prefix_cache.t;
  cs_c_hits : Telemetry.Registry.counter;
  cs_c_misses : Telemetry.Registry.counter;
  cs_c_bypass : Telemetry.Registry.counter;  (* unhinted: never probed *)
  cs_c_evictions : Telemetry.Registry.counter;
  cs_g_bytes : Telemetry.Registry.gauge;  (* peak estimated bytes *)
  cs_g_entries : Telemetry.Registry.gauge;
      (* peak live entries; "effective" because byte accounting reflects
         structural sharing, so one 256 MiB budget holds ~100x the
         snapshots a deep-copy accounting would admit *)
  cs_sp_restore : Telemetry.Span.t;
  cs_sp_lookup : Telemetry.Span.t;
  cs_sp_capture : Telemetry.Span.t;
  (* Physical-identity memo of per-statement text digests. Mutants share
     their parent seed's prefix statement objects, so the same statements
     are digested over and over; remembering recent ones turns the common
     lookup into pointer comparisons instead of print + MD5. A bounded
     round-robin ring: staleness only costs a recomputation. *)
  cs_stmt_memo : (Sqlcore.Ast.stmt * string) option array;
  mutable cs_memo_next : int;
}

and cache_entry = {
  e_snapshot : Minidb.Engine.snapshot;
  e_map : Coverage.Bitmap.compact;  (* the prefix's exec-map contribution *)
  e_stats : Minidb.Engine.run_stats;
  e_len : int;  (* statements the prefix covers *)
}

and oracle_state = {
  os_suite : Oracle.Suite.t;
  (* per-oracle (checks, violations) counters, in Suite.oracle_names
     order, created up front so a zero-violation campaign still exports
     the full oracle.* namespace *)
  os_counters :
    (string * (Telemetry.Registry.counter * Telemetry.Registry.counter))
      list;
  os_span : Telemetry.Span.t;
}

(* Snapshots are bounded by entry count and by estimated bytes; the
   byte bound keeps a pathological dialect (huge tables in every
   snapshot) from eating the heap even when the entry cap is generous. *)
let cache_max_bytes = 256 * 1024 * 1024

let create ?(limits = Minidb.Limits.default) ?metrics ?oracles
    ?(exec_cache = 0) ?(feedback = Edges) ~profile () =
  let m =
    match metrics with Some m -> m | None -> Telemetry.Registry.create ()
  in
  (* grammar metrics are registered only when the mode asks for them, so
     [Edges] keeps the registry namespace byte-identical to a harness
     without grammar support *)
  let grammar_state =
    match feedback with
    | Edges -> None
    | Grammar | Both ->
      Some
        { gs_exec = Coverage.Bitmap.create ();
          gs_virgin = Coverage.Bitmap.create ();
          gs_scratch = Coverage.Bitmap.create ();
          gs_g_rules = Telemetry.Registry.gauge m "grammar.rules";
          gs_g_pairs = Telemetry.Registry.gauge m "grammar.pairs";
          gs_c_parse_errors =
            Telemetry.Registry.counter m "grammar.parse_errors";
          gs_span = Telemetry.Span.stage m "grammar" }
  in
  let cache_state =
    if exec_cache <= 0 then None
    else
      Some
        { cs_cache =
            Prefix_cache.create ~cap:exec_cache ~max_bytes:cache_max_bytes ();
          cs_c_hits = Telemetry.Registry.counter m "cache.hits";
          cs_c_misses = Telemetry.Registry.counter m "cache.misses";
          cs_c_bypass = Telemetry.Registry.counter m "cache.bypass";
          cs_c_evictions = Telemetry.Registry.counter m "cache.evictions";
          cs_g_bytes = Telemetry.Registry.gauge m "cache.bytes";
          cs_g_entries = Telemetry.Registry.gauge m "cache.effective_entries";
          cs_sp_restore = Telemetry.Span.stage m "cache_restore";
          cs_sp_lookup = Telemetry.Span.stage m "cache_lookup";
          cs_sp_capture = Telemetry.Span.stage m "cache_capture";
          cs_stmt_memo = Array.make 64 None;
          cs_memo_next = 0 }
  in
  let oracle_state =
    match oracles with
    | None -> None
    | Some suite ->
      Some
        { os_suite = suite;
          os_counters =
            List.map
              (fun name ->
                 ( name,
                   ( Telemetry.Registry.counter m
                       ("oracle." ^ name ^ ".checks"),
                     Telemetry.Registry.counter m
                       ("oracle." ^ name ^ ".violations") ) ))
              Oracle.Suite.oracle_names;
          os_span = Telemetry.Span.stage m "oracle" }
  in
  { h_profile = profile; h_limits = limits;
    h_virgin = Coverage.Bitmap.create ();
    h_exec_map = Coverage.Bitmap.create ();
    h_triage = Triage.create (); h_execs = 0;
    h_metrics = m;
    h_c_execs = Telemetry.Registry.counter m "harness.execs";
    h_c_new_branches = Telemetry.Registry.counter m "harness.new_branches";
    h_c_crashes = Telemetry.Registry.counter m "harness.crashes";
    h_c_unique_crashes =
      Telemetry.Registry.counter m "harness.unique_crashes";
    h_h_cost = Telemetry.Registry.histogram m "harness.exec_cost";
    h_sp_execute = Telemetry.Span.stage m "execute";
    h_sp_triage = Telemetry.Span.stage m "triage";
    h_oracles = oracle_state;
    h_cache = cache_state;
    h_feedback = feedback;
    h_grammar = grammar_state }

let profile t = t.h_profile

(* Digest of one statement's printed text, via the physical-identity
   memo: the common case (a mutant probing its parent's prefix) resolves
   in a handful of pointer comparisons. *)
let stmt_digest cs stmt =
  let memo = cs.cs_stmt_memo in
  let n = Array.length memo in
  let rec scan i =
    if i >= n then begin
      let d = Digest.string (Sqlcore.Sql_printer.stmt stmt) in
      memo.(cs.cs_memo_next) <- Some (stmt, d);
      cs.cs_memo_next <- (cs.cs_memo_next + 1) mod n;
      d
    end
    else
      match memo.(i) with
      | Some (s, d) when s == stmt -> d
      | _ -> scan (i + 1)
  in
  scan 0

(* [d.(k-1)] keys the printed prefix of length [k] via a digest chain:
   each boundary digest folds the previous digest with the digest of the
   next statement's printed text, so computing all of them is linear in
   the number of statements (and mostly memo hits). Keying on the
   {e printed} statement makes the key exactly as precise as what the
   engine executes — two ASTs that print alike execute alike. *)
let prefix_digests cs ~up_to tc =
  let d = Array.make (max up_to 1) "" in
  let prev = ref "" in
  List.iteri
    (fun i stmt ->
       if i < up_to then begin
         prev := Digest.string (!prev ^ stmt_digest cs stmt);
         d.(i) <- !prev
       end)
    tc;
  d

(* Probe for the longest cached prefix of [tc], from [hint] — the
   statements the candidate shares with its parent — downwards. Unhinted
   executions (freshly generated one-shot cases) skip the cache
   entirely: digesting a never-seen prefix costs more than the certain
   miss saves, and their fresh statements would pollute the digest memo.
   Any hinted key match is sound regardless of provenance: the digest
   covers the full printed prefix, so a stale hint degrades to a miss,
   never a wrong hit.

   Returns the boundary digests and probe depth alongside the entry so
   [execute] can capture the hinted boundary when the probe fell
   short. *)
let cache_lookup cs ?hint tc =
  match hint with
  | None -> None
  | Some h ->
    let n = List.length tc in
    let maxp = min h n in
    if maxp < 1 || n < 2 then None
    else begin
      let d = prefix_digests cs ~up_to:maxp tc in
      let rec probe k =
        if k < 1 then None
        else
          match Prefix_cache.find cs.cs_cache d.(k - 1) with
          | Some e -> Some e
          | None -> probe (k - 1)
      in
      Some (d, maxp, probe maxp)
    end

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

(* Snapshot the running engine at a statement boundary and insert it
   under [key]. Called from [execute]'s boundary callback: at that point
   [t.h_exec_map] holds exactly the prefix's coverage contribution and
   [stats] the prefix's cumulative run stats, so the entry equals what a
   cold replay of the prefix would have produced. Snapshotting is a pure
   deep copy — the live run is unaffected. *)
let cache_capture t cs engine key ~stats ~len =
  Telemetry.Span.time cs.cs_sp_capture @@ fun () ->
  let snapshot = Minidb.Engine.snapshot engine in
  let map = Coverage.Bitmap.compact t.h_exec_map in
  let entry =
    { e_snapshot = snapshot; e_map = map; e_stats = stats; e_len = len }
  in
  (* Structural estimate: walking the real object graph
     (Obj.reachable_words) costs more than the replay the cache saves. *)
  let bytes =
    Minidb.Engine.snapshot_bytes snapshot
    + Coverage.Bitmap.compact_bytes map + 128
  in
  let evicted = Prefix_cache.insert cs.cs_cache key entry ~bytes in
  if evicted > 0 then Telemetry.Registry.incr ~by:evicted cs.cs_c_evictions;
  Telemetry.Registry.set_max cs.cs_g_bytes (Prefix_cache.bytes cs.cs_cache);
  Telemetry.Registry.set_max cs.cs_g_entries (Prefix_cache.length cs.cs_cache)

let execute ?hint t tc =
  t.h_execs <- t.h_execs + 1;
  Telemetry.Registry.incr t.h_c_execs;
  let probed =
    match t.h_cache with
    | None -> None
    | Some cs ->
      let r =
        Telemetry.Span.time cs.cs_sp_lookup (fun () ->
            cache_lookup cs ?hint tc)
      in
      (match r with
       | Some (_, _, Some _) -> Telemetry.Registry.incr cs.cs_c_hits
       | Some (_, _, None) -> Telemetry.Registry.incr cs.cs_c_misses
       | None -> Telemetry.Registry.incr cs.cs_c_bypass);
      Some (cs, r)
  in
  (* When the probe fell short of the hinted depth, capture that
     boundary as this run passes it: the next sibling sharing the same
     prefix then restores instead of replaying. [mem] (no LRU reorder):
     an existing entry is identical by determinism, so keep it and its
     recency. *)
  let boundary_capture cs d maxp ~base engine =
    Some
      (fun k stats ->
         let abs = base + k in
         if abs = maxp && not (Prefix_cache.mem cs.cs_cache d.(abs - 1))
         then cache_capture t cs engine d.(abs - 1) ~stats ~len:abs)
  in
  let stats =
    match probed with
    | Some (cs, Some (_, maxp, Some e)) when e.e_len = maxp ->
      (* Full-depth hit: restore the boundary — exec map first (the
         prefix's coverage contribution), then an engine continuing from
         the snapshot. Running the remaining suffix with the prefix
         stats carried over reproduces a cold full replay bit for
         bit. *)
      let engine =
        Telemetry.Span.time cs.cs_sp_restore (fun () ->
            Coverage.Bitmap.load_compact ~into:t.h_exec_map e.e_map;
            Minidb.Engine.restore ~metrics:t.h_metrics e.e_snapshot
              ~cov:t.h_exec_map ())
      in
      Telemetry.Span.time t.h_sp_execute (fun () ->
          Minidb.Engine.run_testcase_from ~carry:e.e_stats engine
            (drop e.e_len tc))
    | Some (cs, Some (d, maxp, Some e)) ->
      (* Shallow hit: restore what we have, deepen the cache to the
         hinted boundary on the way through the suffix. *)
      let engine =
        Telemetry.Span.time cs.cs_sp_restore (fun () ->
            Coverage.Bitmap.load_compact ~into:t.h_exec_map e.e_map;
            Minidb.Engine.restore ~metrics:t.h_metrics e.e_snapshot
              ~cov:t.h_exec_map ())
      in
      Telemetry.Span.time t.h_sp_execute (fun () ->
          Minidb.Engine.run_testcase_from ~carry:e.e_stats
            ?on_boundary:(boundary_capture cs d maxp ~base:e.e_len engine)
            engine (drop e.e_len tc))
    | Some (cs, Some (d, maxp, None)) ->
      (* Hinted miss: cold run, capturing the hinted boundary. *)
      Coverage.Bitmap.reset t.h_exec_map;
      let engine =
        Minidb.Engine.create ~limits:t.h_limits ~metrics:t.h_metrics
          ~profile:t.h_profile ~cov:t.h_exec_map ()
      in
      Telemetry.Span.time t.h_sp_execute (fun () ->
          Minidb.Engine.run_testcase_from
            ?on_boundary:(boundary_capture cs d maxp ~base:0 engine)
            engine tc)
    | Some (_, None) | None ->
      Coverage.Bitmap.reset t.h_exec_map;
      let engine =
        Minidb.Engine.create ~limits:t.h_limits ~metrics:t.h_metrics
          ~profile:t.h_profile ~cov:t.h_exec_map ()
      in
      Telemetry.Span.time t.h_sp_execute (fun () ->
          Minidb.Engine.run_testcase engine tc)
  in
  let news = Coverage.Bitmap.merge_into ~virgin:t.h_virgin t.h_exec_map in
  if news > 0 then Telemetry.Registry.incr ~by:news t.h_c_new_branches;
  (* Grammar feedback: print and re-parse the whole testcase into the
     grammar scratch map, then fold it into the grammar virgin map. The
     parse covers every statement regardless of how much of the engine
     run came from the prefix cache, so cache hits and grammar coverage
     never interact. Printed testcases are parseable by construction;
     a failure is counted, not fatal. *)
  let gram_news =
    match t.h_grammar with
    | None -> 0
    | Some gs ->
      Telemetry.Span.time gs.gs_span (fun () ->
          Coverage.Bitmap.reset gs.gs_exec;
          (match
             Sqlparser.Parser.parse_testcase ~grammar:gs.gs_exec
               (Sqlcore.Sql_printer.testcase tc)
           with
           | Ok _ -> ()
           | Error _ -> Telemetry.Registry.incr gs.gs_c_parse_errors);
          let n =
            Coverage.Bitmap.merge_into ~virgin:gs.gs_virgin gs.gs_exec
          in
          if n > 0 then begin
            Telemetry.Registry.set_max gs.gs_g_rules
              (Coverage.Grammar.rules gs.gs_virgin);
            Telemetry.Registry.set_max gs.gs_g_pairs
              (Coverage.Grammar.pairs gs.gs_virgin)
          end;
          n)
  in
  let interesting =
    match t.h_feedback with
    | Edges -> news > 0
    | Grammar -> gram_news > 0
    | Both -> news > 0 || gram_news > 0
  in
  let crash = stats.Minidb.Engine.rs_crash in
  let crash_is_new =
    match crash with
    | None -> false
    | Some c ->
      Telemetry.Registry.incr t.h_c_crashes;
      let is_new =
        Telemetry.Span.time t.h_sp_triage (fun () ->
            Triage.record t.h_triage ~testcase:tc c)
      in
      if is_new then Telemetry.Registry.incr t.h_c_unique_crashes;
      is_new
  in
  Telemetry.Registry.observe t.h_h_cost stats.rs_cost;
  (* Logic-bug oracles only replay coverage-increasing, non-crashing test
     cases: new coverage is the paper's interestingness signal (edge
     and/or grammar, per the feedback mode), and a crashing case already
     carries a stronger verdict. *)
  let violations =
    match t.h_oracles with
    | Some os when interesting && crash = None ->
      let outcome =
        Telemetry.Span.time os.os_span (fun () ->
            Oracle.Suite.check os.os_suite tc)
      in
      List.iter
        (fun (name, n) ->
           match List.assoc_opt name os.os_counters with
           | Some (checks, _) when n > 0 ->
             Telemetry.Registry.incr ~by:n checks
           | _ -> ())
        outcome.Oracle.Suite.oc_checks;
      (* Logic-violation dedup is triage work too: bracket it under the
         triage span so oracle-heavy runs attribute it correctly. *)
      Telemetry.Span.time t.h_sp_triage (fun () ->
          List.iter
            (fun v ->
               (match
                  List.assoc_opt v.Oracle.Violation.vi_oracle os.os_counters
                with
                | Some (_, violations) -> Telemetry.Registry.incr violations
                | None -> ());
               ignore (Triage.record_logic t.h_triage ~testcase:tc v))
            outcome.Oracle.Suite.oc_violations);
      List.length outcome.Oracle.Suite.oc_violations
    | _ -> 0
  in
  { o_new_branches = news;
    o_cov_hash = Coverage.Bitmap.hash t.h_exec_map;
    o_crash = crash;
    o_crash_is_new = crash_is_new;
    o_errors = stats.rs_errors;
    o_executed = stats.rs_executed;
    o_cost = stats.rs_cost;
    o_violations = violations;
    o_new_rules = gram_news;
    o_interesting = interesting }

let cache_enabled t = t.h_cache <> None

let feedback t = t.h_feedback

let grammar_feedback t = t.h_feedback <> Edges

let grammar_virgin t =
  match t.h_grammar with None -> None | Some gs -> Some gs.gs_virgin

(* Rank a candidate without executing it: parse into the ranking scratch
   map and count the cells the grammar virgin map lacks. Read-only on
   the virgin map, so probing candidates never claims their coverage. *)
let grammar_novelty t tc =
  match t.h_grammar with
  | None -> 0
  | Some gs ->
    Coverage.Bitmap.reset gs.gs_scratch;
    (match
       Sqlparser.Parser.parse_testcase ~grammar:gs.gs_scratch
         (Sqlcore.Sql_printer.testcase tc)
     with
     | Ok _ -> Coverage.Bitmap.count_news ~virgin:gs.gs_virgin gs.gs_scratch
     | Error _ -> 0)

let execs t = t.h_execs

let branches t = Coverage.Bitmap.count_nonzero t.h_virgin

let triage t = t.h_triage

let virgin t = t.h_virgin

let metrics t = t.h_metrics
