(** The common campaign loop shared by all fuzzers.

    Budgets are iteration counts, not wall-clock: deterministic and
    machine-independent (see DESIGN.md's substitution table). *)

type snapshot = {
  st_iteration : int;
  st_execs : int;
  st_branches : int;
  st_total_crashes : int;
  st_unique_crashes : int;
  st_bugs : string list;  (** distinct injected-bug ids found so far *)
}

type annot = {
  an_wall_s : float;  (** wall-clock seconds since the loop started *)
  an_execs_per_sec : float;
}
(** Wall-clock annotations carried {e next to} checkpoints, never inside
    {!snapshot}: snapshots stay deterministic per seed (and comparable
    across runs), while sinks may record elapsed time and throughput.
    See the determinism contract in DESIGN.md §9. *)

type checkpoint = { cp_snapshot : snapshot; cp_annot : annot }

(** A running fuzzer: name, one-iteration step, its harness, access to
    the corpus of test cases it has generated/kept (used by the Table II
    affinity census), and its optional cross-shard exchange capability
    ([None] opts the fuzzer out of seed/affinity exchange; it still
    participates in coverage/crash sync). *)
type fuzzer = {
  f_name : string;
  f_step : unit -> unit;
  f_harness : Harness.t;
  f_corpus : unit -> Sqlcore.Ast.testcase list;
  f_exchange : Sync.port option;
}

exception Stalled of string
(** Raised by {!run_until_execs} after [max_stall] consecutive
    zero-execution steps: an exec-budget loop over a fuzzer that stopped
    executing (empty corpus / stuck seed, the paper's C3 anecdote) would
    otherwise spin forever. *)

val default_max_stall : int
(** 4096 consecutive zero-execution steps. *)

val snapshot : fuzzer -> iteration:int -> snapshot

val checkpoint : ?start:float -> fuzzer -> iteration:int -> checkpoint
(** {!snapshot} plus wall-clock annotations relative to [start]
    (default: now, i.e. zero elapsed). *)

val run :
  ?checkpoint_every:int ->
  ?on_checkpoint:(checkpoint -> unit) ->
  fuzzer ->
  iterations:int ->
  snapshot
(** Run [iterations] steps; returns the final snapshot. [on_checkpoint]
    fires every [checkpoint_every] iterations (default: never). *)

val run_until_execs :
  ?checkpoint_every:int ->
  ?on_checkpoint:(checkpoint -> unit) ->
  ?max_stall:int ->
  fuzzer ->
  execs:int ->
  snapshot
(** Like {!run}, but the budget is a number of {e executions} rather than
    iterations — the fair cross-fuzzer comparison (a 24-hour wall-clock
    budget in the paper gives every fuzzer a similar execution count).
    [checkpoint_every] is also in executions.
    @raise Stalled after [max_stall] (default {!default_max_stall})
    consecutive steps that performed zero executions. *)
