(** Cross-shard coverage and crash synchronisation.

    In a sharded campaign every shard owns a private {!Harness.t} (its own
    exec map, virgin map, and triage) and periodically {e publishes} into
    one shared [Sync.t]: the shard's virgin map is unioned into the global
    virgin map ({!Coverage.Bitmap.merge}) and its unique crashes are
    deduplicated by stack signature against every other shard's. This is
    the analogue of AFL++'s [-M]/[-S] sync directory, with a bitmap union
    instead of seed exchange (SQUIRREL's shared-coverage-map model).

    All operations take an internal mutex; publishing is safe from any
    domain. Publish frequency is the campaign's [sync_every] interval. *)

type t

val default_interval : int
(** Executions between syncs when unspecified (4096). *)

val create : ?interval:int -> unit -> t

val interval : t -> int
(** The configured sync interval in executions (clamped to ≥ 1). *)

val publish :
  ?metrics:Telemetry.Registry.t ->
  t ->
  virgin:Coverage.Bitmap.t ->
  triage:Triage.t ->
  execs_delta:int ->
  int
(** One sync round: union a shard's virgin map into the global map and
    fold its unique crashes into the cross-shard dedup table. Returns the
    number of global virgin cells whose bucket set grew. [execs_delta] is
    the number of executions the shard performed since its last publish
    (drives {!execs_seen} for aggregate progress reporting). Re-publishing
    the same state is idempotent: zero news, no duplicate crashes.

    [metrics], when given, must be the {e delta} registry since the
    shard's last publish ({!Telemetry.Registry.diff}); it is merged into
    the global registry under the same lock, mirroring the virgin-map
    union. Deltas — not absolute registries — keep the non-idempotent
    counter/histogram merge correct across repeated publishes. *)

val publish_harness :
  ?metrics:Telemetry.Registry.t -> t -> Harness.t -> execs_delta:int -> int
(** {!publish} with the virgin map and triage taken from a harness. *)

val metrics : t -> Telemetry.Registry.t
(** Snapshot of the global metric registry — the union of all published
    shard deltas (stage-time histograms, engine counters). *)

val branches : t -> int
(** Branches of the merged global virgin map — the aggregate Figure 9
    metric across shards. *)

val execs_seen : t -> int
(** Total executions published so far across all shards. *)

val rounds : t -> int
(** Publish calls so far. *)

val unique_crashes :
  t -> (Minidb.Fault.crash * Sqlcore.Ast.testcase option) list
(** Cross-shard unique crashes in first-published order, each with the
    reproducer test case of the shard that found it first. *)

val unique_count : t -> int

val bug_ids : t -> string list
(** Distinct injected-bug ids among the cross-shard unique crashes. *)
