(** Cross-shard coverage, crash and corpus synchronisation.

    In a sharded campaign every shard owns a private {!Harness.t} (its own
    exec map, virgin map, and triage) and periodically {e publishes} into
    one shared [Sync.t]: the shard's virgin map is unioned into the global
    virgin map ({!Coverage.Bitmap.merge}) and its unique crashes are
    deduplicated by stack signature against every other shard's. This is
    the analogue of AFL++'s [-M]/[-S] sync directory.

    With an {!exchange} configuration the sync becomes {e bidirectional}
    (DESIGN.md §10): sync rounds turn into barriered exchange rounds in
    which each shard also publishes its coverage-increasing seeds and its
    discovered type-affinities and AST skeletons, then (a) pulls the
    global virgin map back into its own so branches the campaign already
    knows stop counting as new, and (b) imports the foreign entries it
    has not seen. Entries are globally deduplicated (seed cov-hash,
    affinity pair, printed skeleton SQL) and resolved in (publish round,
    shard id) order at the round barrier, so the canonical store — and
    every shard's import sequence — is a pure function of the campaign
    seed, independent of domain scheduling.

    All operations take an internal mutex; publishing is safe from any
    domain. Publish frequency is the campaign's [sync_every] interval. *)

type exchange = { ex_seeds : bool; ex_affinities : bool }
(** What crosses shards at exchange rounds: coverage-increasing seeds
    ([ex_seeds]) and/or type-affinities + AST skeletons
    ([ex_affinities]). The virgin-map pull-back is active whenever either
    is. *)

val exchange_off : exchange
(** Publish-only sync: the pre-exchange behaviour, free-running shards. *)

val exchange_all : exchange

val exchange_active : exchange -> bool

type xseed = {
  xs_tc : Sqlcore.Ast.testcase;
  xs_cov_hash : int64;      (** coverage digest when first executed *)
  xs_new_branches : int;    (** new branches when first executed *)
  xs_cost : int;
}
(** A seed as exchanged between shards: the finder's pool entry minus its
    private selection count. *)

type entry =
  | Seed of xseed
  | Affinity of Sqlcore.Stmt_type.t * Sqlcore.Stmt_type.t
  | Skeleton of Sqlcore.Ast.stmt
      (** One exchangeable discovery. Fuzzers without an affinity map
          simply ignore non-[Seed] imports. *)

type export = {
  xp_seeds : xseed list;
  xp_affinities : (Sqlcore.Stmt_type.t * Sqlcore.Stmt_type.t) list;
  xp_skeletons : Sqlcore.Ast.stmt list;
}
(** A shard's discoveries since its last export, in discovery order. *)

val empty_export : export

type port = {
  p_export : unit -> export;
      (** Drain the fuzzer's discoveries since the last call. *)
  p_import : entry -> unit;
      (** Fold one foreign entry into the fuzzer's own stores (seed pool /
          affinity map / skeleton library). Must not touch the fuzzer's
          RNG: import is applied in the deterministic store order and all
          randomness stays on the shard's own stream. *)
}
(** A fuzzer's exchange capability (carried as
    {!Driver.fuzzer.f_exchange}). The four baselines export and import
    seeds only; LEGO exchanges all three kinds. *)

exception Aborted
(** Raised by {!exchange_round} on every other shard after {!abort} —
    e.g. when one shard died and would otherwise leave the rest waiting
    at the barrier forever. *)

type t

val default_interval : int
(** Executions between syncs when unspecified (4096). *)

val create : ?interval:int -> ?exchange:exchange -> ?parties:int -> unit -> t
(** [parties] is the number of shards meeting at each exchange-round
    barrier (default 1; only meaningful with an active [exchange],
    default {!exchange_off}). *)

val interval : t -> int
(** The configured sync interval in executions (clamped to ≥ 1). *)

val exchange_config : t -> exchange

val publish :
  ?metrics:Telemetry.Registry.t ->
  ?gram:Coverage.Bitmap.t ->
  ?crashes_delta:int ->
  t ->
  virgin:Coverage.Bitmap.t ->
  triage:Triage.t ->
  execs_delta:int ->
  int
(** One publish-only sync round: union a shard's virgin map into the
    global map and fold its unique crashes into the cross-shard dedup
    table. Returns the number of global virgin cells whose bucket set
    grew. [execs_delta] and [crashes_delta] are the executions and {e
    total} (not unique) crashes the shard accumulated since its last
    publish; they drive {!execs_seen} and {!total_crashes} for aggregate
    progress reporting. Re-publishing the same state is idempotent:
    zero news, no duplicate crashes.

    [metrics], when given, must be the {e delta} registry since the
    shard's last publish ({!Telemetry.Registry.diff}); it is merged into
    the global registry under the same lock, mirroring the virgin-map
    union. Deltas — not absolute registries — keep the non-idempotent
    counter/histogram merge correct across repeated publishes.

    [gram], when the shard runs grammar feedback, is its grammar virgin
    map: it is unioned into a global grammar virgin map under the same
    lock, with the same idempotent {!Coverage.Bitmap.merge} the edge map
    uses (see {!grammar_counts}). *)

val publish_harness :
  ?metrics:Telemetry.Registry.t ->
  ?crashes_delta:int ->
  t ->
  Harness.t ->
  execs_delta:int ->
  int
(** {!publish} with the virgin map and triage taken from a harness. *)

val exchange_round :
  ?metrics:Telemetry.Registry.t ->
  ?gram:Coverage.Bitmap.t ->
  ?crashes_delta:int ->
  t ->
  shard:int ->
  virgin:Coverage.Bitmap.t ->
  triage:Triage.t ->
  execs_delta:int ->
  export:export ->
  entry list
(** One barriered bidirectional round. Publishes like {!publish} (except
    crashes, which are staged and folded in shard-id order at the
    barrier so first-finder attribution is deterministic), stages
    [export], then blocks until all [parties] shards of this round have
    arrived. The last arrival resolves the round: staged entries are
    deduplicated into the canonical store sorted by shard id, and the
    global virgin map is frozen for this round's pulls. On wake-up the
    shard's [virgin] map absorbs the frozen global map (the pull-back)
    and the call returns the store entries this shard has not imported
    yet, excluding its own, in canonical order — apply them through the
    fuzzer's {!port}.

    Every shard must call this the same number of times (the campaign
    derives a fixed round count from the budget); a shard whose budget is
    exhausted keeps joining with empty deltas. Kinds disabled in the
    {!exchange} configuration are dropped at staging time.

    [gram], like in {!publish}, is the shard's grammar virgin map; it is
    additionally absorbed back from the round-frozen global grammar map
    at the pull-back, so rule pairs any shard has fired stop counting as
    grammar news everywhere.
    @raise Aborted after {!abort}. *)

val exchange_harness_round :
  ?metrics:Telemetry.Registry.t ->
  ?crashes_delta:int ->
  t ->
  Harness.t ->
  shard:int ->
  execs_delta:int ->
  export:export ->
  entry list
(** {!exchange_round} with virgin map and triage taken from a harness. *)

val abort : t -> unit
(** Wake every shard blocked at the exchange barrier with {!Aborted};
    idempotent. Called when a shard dies so the campaign can fail instead
    of hanging. *)

val preload :
  ?virgin:Coverage.Bitmap.compact ->
  ?gram:Coverage.Bitmap.compact ->
  ?crash_keys:string list ->
  ?logic_keys:string list ->
  ?seed_hashes:int64 list ->
  ?affinity_keys:(int * int) list ->
  ?skeleton_keys:string list ->
  t ->
  unit
(** Prime a fresh sync with persisted campaign state (farm resume,
    DESIGN.md §16) before any shard publishes. [virgin]/[gram] are
    merged into the global virgin maps so resurrected coverage stops
    counting as news; [crash_keys]/[logic_keys] mark persisted findings
    as already reported, so a resumed campaign's cross-shard dedup never
    re-ships a pre-interruption crash or violation (they are excluded
    from {!unique_crashes}/{!unique_logic} and the counts); the
    remaining keys prime the exchange-store dedup tables so a
    re-discovered stored entry is not re-exchanged. Idempotent. *)

val seed_port : Seed_pool.t -> port
(** Seed-only exchange over a plain seed pool: export drains seeds
    admitted since the previous export, import folds foreign seeds into
    the pool (affinity/skeleton entries are ignored). The capability the
    four baselines carry. *)

val metrics : t -> Telemetry.Registry.t
(** Snapshot of the global metric registry — the union of all published
    shard deltas (stage-time histograms, engine counters). *)

val branches : t -> int
(** Branches of the merged global virgin map — the aggregate Figure 9
    metric across shards. *)

val grammar_counts : t -> int * int
(** [(rules, pairs)] of the merged global grammar virgin map; [(0, 0)]
    when no shard published grammar coverage. *)

val execs_seen : t -> int
(** Total executions published so far across all shards. *)

val total_crashes : t -> int
(** Total (non-unique) crashes published so far across all shards. *)

val rounds : t -> int
(** Publish calls so far (exchange rounds count one per shard). *)

val exchanged : t -> int
(** Entries in the canonical exchange store (post-dedup). *)

val unique_crashes :
  t -> (Minidb.Fault.crash * Sqlcore.Ast.testcase option) list
(** Cross-shard unique crashes in first-published order, each with the
    reproducer test case of the shard that found it first. *)

val unique_count : t -> int
(** O(1): maintained on insert, never recomputed from the list. *)

val unique_logic :
  t -> (Oracle.Violation.t * Sqlcore.Ast.testcase option) list
(** Cross-shard unique logic-bug findings in first-published order,
    deduplicated by {!Oracle.Violation.key} exactly like crashes are by
    stack, each with the test case of the shard that exposed it first.
    Fed by {!publish} (from the shard triage) and staged/folded in
    shard-id order at exchange-round barriers. *)

val logic_count : t -> int
(** O(1), like {!unique_count}. *)

val bug_ids : t -> string list
(** Distinct injected-bug ids among the cross-shard unique crashes.
    Memoized; recomputed only after a new unique crash was inserted. *)
