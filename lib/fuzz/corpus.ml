let raw_sql =
  [ "CREATE TABLE t1 (c1 INT PRIMARY KEY, c2 INT, c3 VARCHAR(12));\n\
     INSERT INTO t1 VALUES (1, 10, 'alpha'), (2, 20, 'beta');\n\
     INSERT INTO t1 VALUES (3, 30, 'gamma');\n\
     SELECT c1, c2 FROM t1 ORDER BY c1 DESC;";
    "CREATE TABLE t2 (c1 INT, c2 FLOAT);\n\
     INSERT INTO t2 VALUES (1, 1.5), (2, 2.5);\n\
     UPDATE t2 SET c2 = (c2 * 2) WHERE c1 = 1;\n\
     SELECT * FROM t2 WHERE c2 > 1.0;";
    "CREATE TABLE t3 (c1 INT, c2 TEXT);\n\
     INSERT INTO t3 VALUES (1, 'x'), (2, 'y'), (3, 'z');\n\
     DELETE FROM t3 WHERE c1 = 2;\n\
     SELECT COUNT(*) FROM t3;";
    "CREATE TABLE t4 (c1 INT UNIQUE, c2 INT);\n\
     CREATE INDEX i4 ON t4 (c1);\n\
     INSERT INTO t4 VALUES (1, 100), (2, 200);\n\
     SELECT c2 FROM t4 WHERE c1 = 1;";
    "CREATE TABLE t5 (c1 INT, c2 INT);\n\
     CREATE TABLE t6 (c1 INT, c2 INT);\n\
     INSERT INTO t5 VALUES (1, 2), (3, 4);\n\
     INSERT INTO t6 VALUES (1, 5), (3, 6);\n\
     SELECT t5.c2, t6.c2 FROM t5 JOIN t6 ON t5.c1 = t6.c1;";
    "CREATE TABLE t7 (c1 INT, c2 INT);\n\
     ALTER TABLE t7 ADD COLUMN c3 TEXT DEFAULT 'd';\n\
     INSERT INTO t7 VALUES (1, 2, 'x');\n\
     TRUNCATE TABLE t7;\n\
     INSERT INTO t7 VALUES (2, 3, 'y');\n\
     SELECT * FROM t7;";
    "CREATE TABLE t8 (c1 INT, c2 INT);\n\
     INSERT INTO t8 VALUES (1, 1);\n\
     CREATE TABLE t9 (c1 INT, c2 INT);\n\
     INSERT INTO t9 SELECT c1, c2 FROM t8;\n\
     DROP TABLE t8;\n\
     SELECT COUNT(*) FROM t9;";
    "CREATE TABLE t10 (c1 INT PRIMARY KEY, c2 FLOAT);\n\
     INSERT INTO t10 VALUES (1, 0.5);\n\
     BEGIN;\n\
     UPDATE t10 SET c2 = 9.5 WHERE c1 = 1;\n\
     ROLLBACK;\n\
     SELECT c2 FROM t10;";
    "CREATE TABLE t11 (c1 INT, c2 TEXT);\n\
     INSERT INTO t11 VALUES (1, 'v'), (2, 'w');\n\
     CREATE VIEW w11 AS SELECT c1 FROM t11 WHERE c1 > 0;\n\
     SELECT * FROM w11;\n\
     ANALYZE t11;\n\
     SELECT c2 FROM t11 WHERE c1 = 2;";
    "CREATE TABLE t12 (c1 INT, c2 INT);\n\
     INSERT INTO t12 VALUES (7, 8);\n\
     EXPLAIN SELECT * FROM t12;\n\
     SELECT c1 FROM t12 UNION SELECT c2 FROM t12;\n\
     DELETE FROM t12;" ]

(* Parsed eagerly at module init (single-threaded, before any domain
   spawns): a [lazy] here is forced concurrently by every shard's
   [initial] and OCaml 5 lazies are not domain-safe — a racing first
   force raises [CamlinternalLazy.Undefined]. *)
let parsed = List.map Sqlparser.Parser.parse_testcase_exn raw_sql

let initial profile =
  List.filter_map
    (fun tc ->
       let supported =
         List.for_all
           (fun s ->
              Minidb.Profile.supports profile (Sqlcore.Ast.type_of_stmt s))
           tc
       in
       if supported && tc <> [] then Some tc else None)
    parsed
