(** The per-shard execution harness: one test case against one fresh
    engine, with persistent virgin-coverage accumulation and crash triage.

    This plays the role of AFL++'s forkserver in the paper's setup: every
    execution starts from a pristine DBMS state, coverage is collected in
    a per-execution map and folded into the shard's virgin map, and
    crashes are deduplicated by stack.

    A harness is strictly single-shard state — exec map, virgin map,
    triage, exec counter and metric registry are all private to the
    owning domain and none of them is locked. Cross-shard coverage union,
    global crash dedup and metric merging live one layer up in {!Sync};
    campaign orchestration one layer above that in {!Campaign}. At
    bidirectional sync rounds {!Sync.exchange_harness_round} also folds
    the frozen global virgin map back into this harness's [virgin] map,
    so branches any shard has covered stop counting as new here
    (DESIGN.md §10).

    Telemetry: every execution updates the harness registry
    ([harness.execs], [harness.new_branches], [harness.crashes],
    [harness.unique_crashes], the [harness.exec_cost] histogram, and the
    [execute]/[triage] stage spans) and hands the registry to the engine
    for [engine.*] counters. Updates are pure in-memory increments, so
    runs with no sink attached behave byte-identically to runs recorded
    to a sink. *)

type feedback = Edges | Grammar | Both
(** What counts as coverage news when deciding whether an execution is
    interesting: the edge bitmap only (the paper's signal, and the
    default), the grammar-rule bitmap only, or either (DESIGN.md §15). *)

val feedback_of_string : string -> feedback option
(** ["edges"], ["grammar"] or ["both"]. *)

val feedback_to_string : feedback -> string

type outcome = {
  o_new_branches : int;  (** virgin-map cells this execution lit up *)
  o_cov_hash : int64;    (** digest of the execution's coverage *)
  o_crash : Minidb.Fault.crash option;
  o_crash_is_new : bool;
  o_errors : int;        (** statements that failed with SQL errors *)
  o_executed : int;
  o_cost : int;          (** execution cost proxy *)
  o_violations : int;    (** logic-bug oracle violations (0 when oracles
                             are off) *)
  o_new_rules : int;     (** grammar virgin cells (rules + rule pairs)
                             this execution lit up; 0 in [Edges] mode *)
  o_interesting : bool;  (** coverage news under the harness's feedback
                             mode — the keep/analyze signal fuzzers use;
                             equals [o_new_branches > 0] in [Edges]
                             mode *)
}

type t

val create :
  ?limits:Minidb.Limits.t ->
  ?metrics:Telemetry.Registry.t ->
  ?oracles:Oracle.Suite.t ->
  ?exec_cache:int ->
  ?feedback:feedback ->
  profile:Minidb.Profile.t ->
  unit ->
  t
(** [metrics] defaults to a fresh private registry; pass one to share a
    registry between a harness and its fuzzer's own stage spans.

    [exec_cache] > 0 enables the prefix-snapshot execution cache with
    that many LRU entries (DESIGN.md §12): hinted executions restore the
    longest cached statement prefix instead of replaying it, and capture
    the hinted boundary on a miss so siblings sharing the prefix hit.
    Outcomes — coverage, crashes, oracle verdicts, stats — are provably
    identical to cold replays. Adds
    [cache.hits]/[cache.misses]/[cache.bypass]/[cache.evictions] counters, a
    [cache.bytes] peak gauge and [cache_restore]/[cache_lookup]/
    [cache_capture] stage spans. Default 0: off, byte-identical to
    earlier builds.

    [oracles], when given, replays every coverage-increasing non-crashing
    execution through the logic-bug oracle suite: violations are
    deduplicated into this harness's triage ({!Triage.record_logic}) and
    counted under [oracle.<name>.checks] / [oracle.<name>.violations]
    (all counters are pre-created so the namespace exports even when
    everything passes), with replay time under the [oracle] stage span.
    Omitted (the default), behaviour — including every metric — is
    byte-identical to earlier builds.

    [feedback] (default {!Edges}) selects the coverage signal. In
    {!Grammar}/{!Both} modes every executed testcase is printed and
    re-parsed with a grammar bitmap attached, grammar news is folded
    into a harness-local grammar virgin map, and the registry gains
    [grammar.rules]/[grammar.pairs] gauges, a [grammar.parse_errors]
    counter and a [grammar] stage span. {!Edges} registers none of
    these and is byte-identical to earlier builds. *)

val profile : t -> Minidb.Profile.t

val execute : ?hint:int -> t -> Sqlcore.Ast.testcase -> outcome
(** Never raises. [hint], when the fuzzer knows it, is the number of
    leading statements the candidate shares with its parent seed (e.g.
    the mutation position); the cache probes prefix lengths from there
    downwards, and on a miss captures the hinted boundary during the
    run so the next candidate sharing the prefix restores instead of
    replaying. Unhinted executions bypass the cache — a freshly
    generated case has no prefix worth probing for or capturing.
    Ignored when the cache is off. *)

val cache_enabled : t -> bool

val feedback : t -> feedback

val grammar_feedback : t -> bool
(** [true] when the feedback mode records grammar coverage
    ({!Grammar} or {!Both}). *)

val grammar_virgin : t -> Coverage.Bitmap.t option
(** The harness-local grammar virgin map, when grammar feedback is on.
    {!Sync} unions it across shards exactly like the edge virgin map. *)

val grammar_novelty : t -> Sqlcore.Ast.testcase -> int
(** Rank a candidate without executing it: parse its printed form into a
    scratch grammar map and count the cells the grammar virgin map
    lacks. 0 when grammar feedback is off or the candidate fails to
    parse. Read-only — probing a candidate never claims its coverage. *)

val execs : t -> int
(** Total executions so far. *)

val branches : t -> int
(** Branches (nonzero virgin cells) covered so far — the Figure 9
    metric. *)

val triage : t -> Triage.t

val virgin : t -> Coverage.Bitmap.t

val metrics : t -> Telemetry.Registry.t
(** The shard's metric registry (owner-domain only; see {!Sync} for the
    cross-shard merge). *)
