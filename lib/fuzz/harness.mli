(** The per-shard execution harness: one test case against one fresh
    engine, with persistent virgin-coverage accumulation and crash triage.

    This plays the role of AFL++'s forkserver in the paper's setup: every
    execution starts from a pristine DBMS state, coverage is collected in
    a per-execution map and folded into the shard's virgin map, and
    crashes are deduplicated by stack.

    A harness is strictly single-shard state — exec map, virgin map,
    triage, and exec counter are all private to the owning domain and
    none of them is locked. Cross-shard coverage union and global crash
    dedup live one layer up in {!Sync}; campaign orchestration one layer
    above that in {!Campaign}. *)

type outcome = {
  o_new_branches : int;  (** virgin-map cells this execution lit up *)
  o_cov_hash : int64;    (** digest of the execution's coverage *)
  o_crash : Minidb.Fault.crash option;
  o_crash_is_new : bool;
  o_errors : int;        (** statements that failed with SQL errors *)
  o_executed : int;
  o_cost : int;          (** execution cost proxy *)
}

type t

val create :
  ?limits:Minidb.Limits.t -> profile:Minidb.Profile.t -> unit -> t

val profile : t -> Minidb.Profile.t

val execute : t -> Sqlcore.Ast.testcase -> outcome
(** Never raises. *)

val execs : t -> int
(** Total executions so far. *)

val branches : t -> int
(** Branches (nonzero virgin cells) covered so far — the Figure 9
    metric. *)

val triage : t -> Triage.t

val virgin : t -> Coverage.Bitmap.t
