type snapshot = {
  st_iteration : int;
  st_execs : int;
  st_branches : int;
  st_total_crashes : int;
  st_unique_crashes : int;
  st_bugs : string list;
}

type annot = { an_wall_s : float; an_execs_per_sec : float }

type checkpoint = { cp_snapshot : snapshot; cp_annot : annot }

type fuzzer = {
  f_name : string;
  f_step : unit -> unit;
  f_harness : Harness.t;
  f_corpus : unit -> Sqlcore.Ast.testcase list;
  f_exchange : Sync.port option;
}

exception Stalled of string

let default_max_stall = 4096

let snapshot f ~iteration =
  let tri = Harness.triage f.f_harness in
  { st_iteration = iteration;
    st_execs = Harness.execs f.f_harness;
    st_branches = Harness.branches f.f_harness;
    st_total_crashes = Triage.total_crashes tri;
    st_unique_crashes = Triage.unique_count tri;
    st_bugs = Triage.bug_ids tri }

let annotate ~start ~execs =
  let wall = Telemetry.Span.now_s () -. start in
  { an_wall_s = wall;
    an_execs_per_sec =
      (if wall > 0.0 then float_of_int execs /. wall else 0.0) }

let checkpoint ?(start = Telemetry.Span.now_s ()) f ~iteration =
  let snap = snapshot f ~iteration in
  { cp_snapshot = snap; cp_annot = annotate ~start ~execs:snap.st_execs }

let run ?(checkpoint_every = 0) ?(on_checkpoint = fun _ -> ()) f ~iterations =
  let start = Telemetry.Span.now_s () in
  for i = 1 to iterations do
    f.f_step ();
    if checkpoint_every > 0 && i mod checkpoint_every = 0 then
      on_checkpoint (checkpoint ~start f ~iteration:i)
  done;
  snapshot f ~iteration:iterations

let run_until_execs ?(checkpoint_every = 0) ?(on_checkpoint = fun _ -> ())
    ?(max_stall = default_max_stall) f ~execs =
  let start = Telemetry.Span.now_s () in
  let i = ref 0 in
  let last_cp = ref 0 in
  let stalled = ref 0 in
  while Harness.execs f.f_harness < execs do
    incr i;
    let before = Harness.execs f.f_harness in
    f.f_step ();
    let e = Harness.execs f.f_harness in
    (* A step that performs zero executions makes no progress toward the
       exec budget; a fuzzer stuck that way (empty corpus, stuck seed —
       the paper's C3 anecdote) would previously livelock this loop. *)
    if e = before then begin
      incr stalled;
      if !stalled >= max_stall then
        raise
          (Stalled
             (Printf.sprintf
                "%s performed no executions in %d consecutive steps \
                 (stuck at %d of %d budgeted execs): empty corpus or \
                 stuck seed?"
                f.f_name max_stall e execs))
    end
    else stalled := 0;
    (* The returned snapshot is the final checkpoint: when a step lands on
       or overshoots the budget, don't also fire [on_checkpoint] at the
       same exec count. *)
    if
      checkpoint_every > 0
      && e - !last_cp >= checkpoint_every
      && e < execs
    then begin
      last_cp := e;
      on_checkpoint (checkpoint ~start f ~iteration:!i)
    end
  done;
  snapshot f ~iteration:!i
