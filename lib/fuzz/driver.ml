type snapshot = {
  st_iteration : int;
  st_execs : int;
  st_branches : int;
  st_total_crashes : int;
  st_unique_crashes : int;
  st_bugs : string list;
}

type fuzzer = {
  f_name : string;
  f_step : unit -> unit;
  f_harness : Harness.t;
  f_corpus : unit -> Sqlcore.Ast.testcase list;
}

let snapshot f ~iteration =
  let tri = Harness.triage f.f_harness in
  { st_iteration = iteration;
    st_execs = Harness.execs f.f_harness;
    st_branches = Harness.branches f.f_harness;
    st_total_crashes = Triage.total_crashes tri;
    st_unique_crashes = Triage.unique_count tri;
    st_bugs = Triage.bug_ids tri }

let run ?(checkpoint_every = 0) ?(on_checkpoint = fun _ -> ()) f ~iterations =
  for i = 1 to iterations do
    f.f_step ();
    if checkpoint_every > 0 && i mod checkpoint_every = 0 then
      on_checkpoint (snapshot f ~iteration:i)
  done;
  snapshot f ~iteration:iterations

let run_until_execs ?(checkpoint_every = 0) ?(on_checkpoint = fun _ -> ()) f
    ~execs =
  let i = ref 0 in
  let last_cp = ref 0 in
  while Harness.execs f.f_harness < execs do
    incr i;
    f.f_step ();
    let e = Harness.execs f.f_harness in
    (* The returned snapshot is the final checkpoint: when a step lands on
       or overshoots the budget, don't also fire [on_checkpoint] at the
       same exec count. *)
    if
      checkpoint_every > 0
      && e - !last_cp >= checkpoint_every
      && e < execs
    then begin
      last_cp := e;
      on_checkpoint (snapshot f ~iteration:!i)
    end
  done;
  snapshot f ~iteration:!i
