type t = {
  lock : Mutex.t;
  virgin : Coverage.Bitmap.t;
  seen : (string, unit) Hashtbl.t;
  mutable uniques :
    (Minidb.Fault.crash * Sqlcore.Ast.testcase option) list;
      (* reverse first-published order *)
  mutable rounds : int;
  mutable execs_seen : int;
  interval : int;
  metrics : Telemetry.Registry.t;  (* global union of published deltas *)
}

let default_interval = 4096

let create ?(interval = default_interval) () =
  { lock = Mutex.create ();
    virgin = Coverage.Bitmap.create ();
    seen = Hashtbl.create 32;
    uniques = [];
    rounds = 0;
    execs_seen = 0;
    interval = max 1 interval;
    metrics = Telemetry.Registry.create () }

let interval t = t.interval

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let publish ?metrics t ~virgin ~triage ~execs_delta =
  locked t (fun () ->
      t.rounds <- t.rounds + 1;
      t.execs_seen <- t.execs_seen + max 0 execs_delta;
      (match metrics with
       | None -> ()
       | Some delta -> Telemetry.Registry.merge ~into:t.metrics delta);
      let news = Coverage.Bitmap.merge ~into:t.virgin virgin in
      List.iter
        (fun ((crash, _) as u) ->
           let key = Triage.stack_key crash in
           if not (Hashtbl.mem t.seen key) then begin
             Hashtbl.replace t.seen key ();
             t.uniques <- u :: t.uniques
           end)
        (Triage.unique_with_cases triage);
      news)

let publish_harness ?metrics t h ~execs_delta =
  publish ?metrics t ~virgin:(Harness.virgin h) ~triage:(Harness.triage h)
    ~execs_delta

let metrics t = locked t (fun () -> Telemetry.Registry.snapshot t.metrics)

let branches t =
  locked t (fun () -> Coverage.Bitmap.count_nonzero t.virgin)

let execs_seen t = locked t (fun () -> t.execs_seen)

let rounds t = locked t (fun () -> t.rounds)

let unique_crashes t = locked t (fun () -> List.rev t.uniques)

let unique_count t = locked t (fun () -> List.length t.uniques)

let bug_ids t =
  locked t (fun () ->
      List.sort_uniq String.compare
        (List.map
           (fun ((c : Minidb.Fault.crash), _) ->
              c.c_bug.Minidb.Fault.bug_id)
           t.uniques))
