(* Cross-shard synchronisation: global virgin union, crash dedup, and —
   when exchange is enabled — the bidirectional seed/affinity/skeleton
   exchange protocol (barriered rounds, deterministic import order). *)

type exchange = { ex_seeds : bool; ex_affinities : bool }

let exchange_off = { ex_seeds = false; ex_affinities = false }
let exchange_all = { ex_seeds = true; ex_affinities = true }
let exchange_active x = x.ex_seeds || x.ex_affinities

type xseed = {
  xs_tc : Sqlcore.Ast.testcase;
  xs_cov_hash : int64;
  xs_new_branches : int;
  xs_cost : int;
}

type entry =
  | Seed of xseed
  | Affinity of Sqlcore.Stmt_type.t * Sqlcore.Stmt_type.t
  | Skeleton of Sqlcore.Ast.stmt

type export = {
  xp_seeds : xseed list;
  xp_affinities : (Sqlcore.Stmt_type.t * Sqlcore.Stmt_type.t) list;
  xp_skeletons : Sqlcore.Ast.stmt list;
}

let empty_export = { xp_seeds = []; xp_affinities = []; xp_skeletons = [] }

type port = {
  p_export : unit -> export;
  p_import : entry -> unit;
}

(* A shard's round contribution with every dedup key precomputed — the
   affinity index pairs and the printed skeleton SQL are derived by the
   publishing shard {e before} it takes the lock, so the round barrier's
   critical section only does hash-table lookups and list pushes. *)
type staged_publish = {
  sp_shard : int;
  sp_crashes : (Minidb.Fault.crash * Sqlcore.Ast.testcase option) list;
  sp_logic : (Oracle.Violation.t * Sqlcore.Ast.testcase option) list;
  sp_seeds : xseed list;
  sp_affinities :
    ((int * int) * (Sqlcore.Stmt_type.t * Sqlcore.Stmt_type.t)) list;
  sp_skeletons : (string * Sqlcore.Ast.stmt) list;
}

exception Aborted

type t = {
  lock : Mutex.t;
  virgin : Coverage.Bitmap.t;
  gram_virgin : Coverage.Bitmap.t;
      (* cross-shard union of grammar-rule coverage; empty unless shards
         publish grammar maps (feedback grammar/both) *)
  seen : (string, unit) Hashtbl.t;
  mutable uniques :
    (Minidb.Fault.crash * Sqlcore.Ast.testcase option) list;
      (* reverse first-published order *)
  mutable n_uniques : int;  (* = List.length uniques, kept O(1) *)
  lseen : (string, unit) Hashtbl.t;
      (* logic-bug signatures (Oracle.Violation.key), deduped like crash
         stacks *)
  mutable logic_uniques :
    (Oracle.Violation.t * Sqlcore.Ast.testcase option) list;
      (* reverse first-published order *)
  mutable n_logic : int;
  mutable bug_ids_memo : string list option;
      (* sorted distinct bug ids; invalidated on unique insert *)
  mutable rounds : int;
  mutable execs_seen : int;
  mutable total_crashes : int;  (* sum of published crash deltas *)
  interval : int;
  metrics : Telemetry.Registry.t;  (* global union of published deltas *)
  (* --- exchange state (unused when exchange_off) ------------------- *)
  exchange : exchange;
  parties : int;
  cond : Condition.t;
  mutable arrived : int;
  mutable generation : int;
  mutable aborted : bool;
  mutable staged : staged_publish list;
      (* this round's publishes, kept sorted by shard id: each shard
         stages exactly once per round, so sorted insertion is a merge
         of already-ordered runs and release needs no sort *)
  store : (int * entry) Reprutil.Vec.t;
      (* canonical exchange log in (round, shard id) order *)
  mutable pull_map : Coverage.Bitmap.t;
      (* global virgin frozen at the last round release: every party of a
         round pulls the same map even if a fast shard already started
         publishing the next round *)
  mutable gram_pull : Coverage.Bitmap.t;
      (* grammar counterpart of [pull_map], frozen at the same instant *)
  seen_seeds : (int64, unit) Hashtbl.t;
  seen_affinities : (int * int, unit) Hashtbl.t;
  seen_skeletons : (string, unit) Hashtbl.t;
  cursors : (int, int) Hashtbl.t;  (* shard id -> store prefix imported *)
}

let default_interval = 4096

let create ?(interval = default_interval) ?(exchange = exchange_off)
    ?(parties = 1) () =
  { lock = Mutex.create ();
    virgin = Coverage.Bitmap.create ();
    gram_virgin = Coverage.Bitmap.create ();
    seen = Hashtbl.create 32;
    uniques = [];
    n_uniques = 0;
    lseen = Hashtbl.create 16;
    logic_uniques = [];
    n_logic = 0;
    bug_ids_memo = None;
    rounds = 0;
    execs_seen = 0;
    total_crashes = 0;
    interval = max 1 interval;
    metrics = Telemetry.Registry.create ();
    exchange;
    parties = max 1 parties;
    cond = Condition.create ();
    arrived = 0;
    generation = 0;
    aborted = false;
    staged = [];
    store = Reprutil.Vec.create ();
    pull_map = Coverage.Bitmap.create ();
    gram_pull = Coverage.Bitmap.create ();
    seen_seeds = Hashtbl.create 64;
    seen_affinities = Hashtbl.create 64;
    seen_skeletons = Hashtbl.create 64;
    cursors = Hashtbl.create 8 }

let interval t = t.interval

let exchange_config t = t.exchange

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let note_unique t ((crash, _) as u) =
  let key = Triage.stack_key crash in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    t.uniques <- u :: t.uniques;
    t.n_uniques <- t.n_uniques + 1;
    t.bug_ids_memo <- None
  end

let note_logic t ((violation, _) as u) =
  let key = Oracle.Violation.key violation in
  if not (Hashtbl.mem t.lseen key) then begin
    Hashtbl.replace t.lseen key ();
    t.logic_uniques <- u :: t.logic_uniques;
    t.n_logic <- t.n_logic + 1
  end

(* Caller holds the lock. Common bookkeeping of one shard publish.
   [gram], when the shard runs grammar feedback, is its grammar virgin
   map — unioned with the very same merge the edge map uses. *)
let publish_locked ?metrics ?gram t ~virgin ~execs_delta ~crashes_delta =
  t.rounds <- t.rounds + 1;
  t.execs_seen <- t.execs_seen + max 0 execs_delta;
  t.total_crashes <- t.total_crashes + max 0 crashes_delta;
  (match metrics with
   | None -> ()
   | Some delta -> Telemetry.Registry.merge ~into:t.metrics delta);
  (match gram with
   | None -> ()
   | Some g -> ignore (Coverage.Bitmap.merge ~into:t.gram_virgin g));
  Coverage.Bitmap.merge ~into:t.virgin virgin

let publish ?metrics ?gram ?(crashes_delta = 0) t ~virgin ~triage
    ~execs_delta =
  (* Triage is shard-private: read it before taking the global lock. *)
  let crashes = Triage.unique_with_cases triage in
  let logic = Triage.unique_logic triage in
  locked t (fun () ->
      let news =
        publish_locked ?metrics ?gram t ~virgin ~execs_delta ~crashes_delta
      in
      List.iter (note_unique t) crashes;
      List.iter (note_logic t) logic;
      news)

let publish_harness ?metrics ?crashes_delta t h ~execs_delta =
  publish ?metrics ?gram:(Harness.grammar_virgin h) ?crashes_delta t
    ~virgin:(Harness.virgin h) ~triage:(Harness.triage h) ~execs_delta

(* --- exchange rounds -------------------------------------------------- *)

(* Caller holds the lock. Resolve the round's staged publishes into the
   canonical store, sorted by shard id so the store order — and hence every
   shard's import order — is independent of domain scheduling. Global
   dedup (cov-hash / affinity pair / printed skeleton SQL) is resolved
   here for the same reason: the lowest shard id wins ties, not the
   first to arrive. *)
let release_round t =
  let staged = t.staged in  (* already sorted by shard id at insertion *)
  t.staged <- [];
  List.iter
    (fun sp ->
       List.iter (note_unique t) sp.sp_crashes;
       List.iter (note_logic t) sp.sp_logic;
       if t.exchange.ex_seeds then
         List.iter
           (fun s ->
              if not (Hashtbl.mem t.seen_seeds s.xs_cov_hash) then begin
                Hashtbl.replace t.seen_seeds s.xs_cov_hash ();
                Reprutil.Vec.push t.store (sp.sp_shard, Seed s)
              end)
           sp.sp_seeds;
       if t.exchange.ex_affinities then begin
         List.iter
           (fun (key, (a, b)) ->
              if not (Hashtbl.mem t.seen_affinities key) then begin
                Hashtbl.replace t.seen_affinities key ();
                Reprutil.Vec.push t.store (sp.sp_shard, Affinity (a, b))
              end)
           sp.sp_affinities;
         List.iter
           (fun (key, stmt) ->
              if not (Hashtbl.mem t.seen_skeletons key) then begin
                Hashtbl.replace t.seen_skeletons key ();
                Reprutil.Vec.push t.store (sp.sp_shard, Skeleton stmt)
              end)
           sp.sp_skeletons
       end)
    staged;
  t.pull_map <- Coverage.Bitmap.snapshot t.virgin;
  t.gram_pull <- Coverage.Bitmap.snapshot t.gram_virgin

let abort t =
  Mutex.lock t.lock;
  t.aborted <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

(* Insert keeping ascending shard-id order: at most [parties] entries per
   round, each shard once, so this is the merge step of already-ordered
   per-shard runs. *)
let rec insert_staged sp = function
  | [] -> [ sp ]
  | hd :: _ as l when sp.sp_shard <= hd.sp_shard -> sp :: l
  | hd :: tl -> hd :: insert_staged sp tl

let exchange_round ?metrics ?gram ?(crashes_delta = 0) t ~shard ~virgin
    ~triage ~execs_delta ~export =
  (* Everything derivable from shard-private state is prepared before
     the lock: the triage reads, the affinity dedup keys and the printed
     skeleton SQL. The barrier's critical section then only merges and
     pushes. Kinds disabled in the exchange configuration are dropped
     here too, so their keys are never computed ([t.exchange] is
     immutable — reading it unlocked is safe). *)
  let staged =
    { sp_shard = shard;
      (* crashes and logic-bug signatures are staged, not folded, so the
         cross-shard dedup's first-finder attribution is
         scheduling-independent too *)
      sp_crashes = Triage.unique_with_cases triage;
      sp_logic = Triage.unique_logic triage;
      sp_seeds = (if t.exchange.ex_seeds then export.xp_seeds else []);
      sp_affinities =
        (if t.exchange.ex_affinities then
           List.map
             (fun (a, b) ->
                ( ( Sqlcore.Stmt_type.to_index a,
                    Sqlcore.Stmt_type.to_index b ),
                  (a, b) ))
             export.xp_affinities
         else []);
      sp_skeletons =
        (if t.exchange.ex_affinities then
           List.map
             (fun stmt -> (Sqlcore.Sql_printer.stmt stmt, stmt))
             export.xp_skeletons
         else []) }
  in
  locked t (fun () ->
      if t.aborted then raise Aborted;
      ignore
        (publish_locked ?metrics ?gram t ~virgin ~execs_delta
           ~crashes_delta);
      t.staged <- insert_staged staged t.staged;
      t.arrived <- t.arrived + 1;
      let gen = t.generation in
      if t.arrived >= t.parties then begin
        release_round t;
        t.arrived <- 0;
        t.generation <- t.generation + 1;
        Condition.broadcast t.cond
      end
      else begin
        while t.generation = gen && not t.aborted do
          Condition.wait t.cond t.lock
        done;
        if t.aborted then raise Aborted
      end;
      (* Post-barrier, still under the lock: fold the round-frozen global
         virgin map back into the shard's own, so branches the campaign
         already knows stop counting as new there, and collect the foreign
         store entries this shard has not imported yet. *)
      ignore (Coverage.Bitmap.merge ~into:virgin t.pull_map);
      (match gram with
       | None -> ()
       | Some g -> ignore (Coverage.Bitmap.merge ~into:g t.gram_pull));
      let from =
        match Hashtbl.find_opt t.cursors shard with
        | Some i -> i
        | None -> 0
      in
      let n = Reprutil.Vec.length t.store in
      Hashtbl.replace t.cursors shard n;
      let acc = ref [] in
      for i = n - 1 downto from do
        let owner, entry = Reprutil.Vec.get t.store i in
        if owner <> shard then acc := entry :: !acc
      done;
      !acc)

let exchange_harness_round ?metrics ?crashes_delta t h ~shard ~execs_delta
    ~export =
  exchange_round ?metrics ?gram:(Harness.grammar_virgin h) ?crashes_delta t
    ~shard ~virgin:(Harness.virgin h) ~triage:(Harness.triage h)
    ~execs_delta ~export

(* Prime a fresh sync with persisted campaign state before any shard
   publishes: merged-in virgin maps stop resurrected coverage counting
   as news, and pre-marked dedup keys keep persisted findings out of the
   unique lists (a resumed campaign reports only what it finds {e after}
   the interruption). *)
let preload ?virgin ?gram ?(crash_keys = []) ?(logic_keys = [])
    ?(seed_hashes = []) ?(affinity_keys = []) ?(skeleton_keys = []) t =
  let load_merge ~into c =
    let tmp = Coverage.Bitmap.create () in
    Coverage.Bitmap.load_compact ~into:tmp c;
    ignore (Coverage.Bitmap.merge ~into tmp)
  in
  locked t (fun () ->
      (match virgin with
       | None -> ()
       | Some c -> load_merge ~into:t.virgin c);
      (match gram with
       | None -> ()
       | Some c -> load_merge ~into:t.gram_virgin c);
      List.iter (fun k -> Hashtbl.replace t.seen k ()) crash_keys;
      List.iter (fun k -> Hashtbl.replace t.lseen k ()) logic_keys;
      List.iter (fun h -> Hashtbl.replace t.seen_seeds h ()) seed_hashes;
      List.iter (fun k -> Hashtbl.replace t.seen_affinities k ())
        affinity_keys;
      List.iter (fun k -> Hashtbl.replace t.seen_skeletons k ())
        skeleton_keys)

(* Seed-only port over a plain seed pool — the exchange capability of the
   conventional baselines. The cursor lives in the closure: exports drain
   pool entries admitted since the last call, and it is re-synced after an
   import so foreign seeds don't echo back out. *)
let seed_port pool =
  let cursor = ref 0 in
  let p_export () =
    let seeds =
      List.map
        (fun s ->
           { xs_tc = s.Seed_pool.sd_tc;
             xs_cov_hash = s.Seed_pool.sd_cov_hash;
             xs_new_branches = s.Seed_pool.sd_new_branches;
             xs_cost = s.Seed_pool.sd_cost })
        (Seed_pool.since pool !cursor)
    in
    cursor := Seed_pool.size pool;
    { empty_export with xp_seeds = seeds }
  in
  let p_import = function
    | Seed x ->
      ignore
        (Seed_pool.add pool ~tc:x.xs_tc ~cov_hash:x.xs_cov_hash
           ~new_branches:x.xs_new_branches ~cost:x.xs_cost);
      cursor := Seed_pool.size pool
    | Affinity _ | Skeleton _ -> ()
  in
  { p_export; p_import }

(* --- aggregate reads -------------------------------------------------- *)

let metrics t = locked t (fun () -> Telemetry.Registry.snapshot t.metrics)

let branches t =
  locked t (fun () -> Coverage.Bitmap.count_nonzero t.virgin)

let grammar_counts t =
  locked t (fun () ->
      ( Coverage.Grammar.rules t.gram_virgin,
        Coverage.Grammar.pairs t.gram_virgin ))

let execs_seen t = locked t (fun () -> t.execs_seen)

let total_crashes t = locked t (fun () -> t.total_crashes)

let rounds t = locked t (fun () -> t.rounds)

let exchanged t = locked t (fun () -> Reprutil.Vec.length t.store)

let unique_crashes t = locked t (fun () -> List.rev t.uniques)

let unique_count t = locked t (fun () -> t.n_uniques)

let unique_logic t = locked t (fun () -> List.rev t.logic_uniques)

let logic_count t = locked t (fun () -> t.n_logic)

let bug_ids t =
  locked t (fun () ->
      match t.bug_ids_memo with
      | Some ids -> ids
      | None ->
        let ids =
          List.sort_uniq String.compare
            (List.map
               (fun ((c : Minidb.Fault.crash), _) ->
                  c.c_bug.Minidb.Fault.bug_id)
               t.uniques)
        in
        t.bug_ids_memo <- Some ids;
        ids)
