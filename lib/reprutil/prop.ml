(* Deterministic property-based testing with integrated shrinking.

   Generators produce lazy shrink trees (Hedgehog-style): the root is the
   generated value and the children are smaller candidates, so shrinking
   composes through [map]/[pair]/[list] for free. All randomness flows
   through Rng, so a failing seed replays exactly. *)

module Tree = struct
  type 'a t = Node of 'a * 'a t Seq.t

  let root (Node (x, _)) = x

  let children (Node (_, cs)) = cs

  let rec map f (Node (x, cs)) = Node (f x, Seq.map (map f) cs)
end

type 'a t = {
  gen : Rng.t -> 'a Tree.t;
  print : 'a -> string;
}

(* --- building generators -------------------------------------------- *)

let make ?(shrink = fun _ -> Seq.empty) ~print gen =
  (* A user [shrink] must return strictly smaller values or the recursive
     tree is infinite in depth; laziness keeps construction cheap. *)
  let rec tree x = Tree.Node (x, Seq.map tree (shrink x)) in
  { gen = (fun rng -> tree (gen rng)); print }

(* Halving steps from [x] toward [dest]: dest first (the biggest jump),
   then ever-closer candidates. *)
let towards dest x =
  let rec halves h () =
    if h = 0 then Seq.Nil else Seq.Cons (x - h, halves (h / 2))
  in
  halves (x - dest)

let rec int_tree dest x =
  Tree.Node (x, Seq.map (int_tree dest) (towards dest x))

let int_range lo hi =
  if hi < lo then invalid_arg "Prop.int_range";
  { gen = (fun rng -> int_tree lo (lo + Rng.int rng (hi - lo + 1)));
    print = string_of_int }

let bool =
  { gen =
      (fun rng ->
         if Rng.bool rng then
           Tree.Node (true, Seq.return (Tree.Node (false, Seq.empty)))
         else Tree.Node (false, Seq.empty));
    print = string_of_bool }

let pair a b =
  let rec pair_tree tx ty =
    let (Tree.Node (x, xs)) = tx and (Tree.Node (y, ys)) = ty in
    Tree.Node
      ( (x, y),
        Seq.append
          (Seq.map (fun tx' -> pair_tree tx' ty) xs)
          (Seq.map (fun ty' -> pair_tree tx ty') ys) )
  in
  { gen = (fun rng -> pair_tree (a.gen rng) (b.gen rng));
    print = (fun (x, y) -> "(" ^ a.print x ^ ", " ^ b.print y ^ ")") }

let triple a b c =
  let abc = pair a (pair b c) in
  { gen =
      (fun rng -> Tree.map (fun (x, (y, z)) -> (x, y, z)) (abc.gen rng));
    print =
      (fun (x, y, z) ->
         "(" ^ a.print x ^ ", " ^ b.print y ^ ", " ^ c.print z ^ ")") }

let rec remove_nth i = function
  | [] -> []
  | x :: tl -> if i = 0 then tl else x :: remove_nth (i - 1) tl

let rec replace_nth i y = function
  | [] -> []
  | x :: tl -> if i = 0 then y :: tl else x :: replace_nth (i - 1) y tl

let list ?(max_len = 20) elt =
  (* Shrinks by dropping any single element, then by shrinking elements in
     place — the shape reducer-style 1-minimality tests need. *)
  let rec list_tree ts =
    let n = List.length ts in
    let drops = Seq.init n (fun i -> list_tree (remove_nth i ts)) in
    let shrinks =
      Seq.concat
        (Seq.init n (fun i ->
             Seq.map
               (fun t' -> list_tree (replace_nth i t' ts))
               (Tree.children (List.nth ts i))))
    in
    Tree.Node (List.map Tree.root ts, Seq.append drops shrinks)
  in
  { gen =
      (fun rng ->
         let n = Rng.int rng (max_len + 1) in
         list_tree (List.init n (fun _ -> elt.gen rng)));
    print =
      (fun xs -> "[" ^ String.concat "; " (List.map elt.print xs) ^ "]") }

let map ~print f t = { gen = (fun rng -> Tree.map f (t.gen rng)); print }

(* --- running properties --------------------------------------------- *)

type failure = {
  f_name : string;
  f_seed : int;
  f_case : int;
  f_original : string;
  f_shrunk : string;
  f_steps : int;
  f_error : string option;
}

type outcome = Pass of int | Fail of failure

let shrink_budget = 1000

let run ?(count = 1000) ?(seed = 0) ~name arb prop =
  let rng = Rng.create seed in
  let error = ref None in
  let holds x =
    match prop x with
    | b ->
      error := None;
      b
    | exception e ->
      error := Some (Printexc.to_string e);
      false
  in
  let rec find_fail i =
    if i >= count then None
    else
      let t = arb.gen rng in
      if holds (Tree.root t) then find_fail (i + 1) else Some (i, t)
  in
  match find_fail 0 with
  | None -> Pass count
  | Some (i, t0) ->
    let budget = ref shrink_budget in
    let steps = ref 0 in
    let rec shrink t =
      let rec first_failing cs =
        if !budget <= 0 then None
        else
          match cs () with
          | Seq.Nil -> None
          | Seq.Cons (c, rest) ->
            decr budget;
            if holds (Tree.root c) then first_failing rest else Some c
      in
      match first_failing (Tree.children t) with
      | Some c ->
        incr steps;
        shrink c
      | None -> t
    in
    let shrunk = shrink t0 in
    (* re-evaluate so [error] describes the reported counterexample *)
    ignore (holds (Tree.root shrunk));
    Fail
      { f_name = name;
        f_seed = seed;
        f_case = i + 1;
        f_original = arb.print (Tree.root t0);
        f_shrunk = arb.print (Tree.root shrunk);
        f_steps = !steps;
        f_error = !error }

let summary f =
  Printf.sprintf
    "property %s falsified (seed %d, case %d)%s: %s%s"
    f.f_name f.f_seed f.f_case
    (match f.f_error with None -> "" | Some e -> " [raised " ^ e ^ "]")
    f.f_shrunk
    (if f.f_steps = 0 then ""
     else
       Printf.sprintf " (shrunk from %s in %d step(s))" f.f_original
         f.f_steps)

let sanitize name =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
       | _ -> '_')
    name

let default_dir () =
  match Sys.getenv_opt "PROP_DIR" with
  | Some d -> d
  | None -> "_prop_failures"

let save_failure ?dir f =
  let dir = match dir with Some d -> d | None -> default_dir () in
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let file = Filename.concat dir (sanitize f.f_name ^ ".txt") in
    let oc = open_out file in
    Printf.fprintf oc "%s\n\noriginal counterexample:\n%s\n\nshrunk (%d step(s)):\n%s\n"
      (summary f) f.f_original f.f_steps f.f_shrunk;
    close_out oc;
    Some file
  with _ -> None
  (* reporting must never mask the actual failure *)

let check ?count ?seed ?dir ~name arb prop =
  match run ?count ?seed ~name arb prop with
  | Pass _ -> ()
  | Fail f ->
    ignore (save_failure ?dir f);
    failwith (summary f)
