module M = Map.Make (Int)

type 'a t = { root : 'a M.t; count : int }

let empty = { root = M.empty; count = 0 }

let is_empty t = t.count = 0

let cardinal t = t.count

let add k v t =
  let delta = if M.mem k t.root then 0 else 1 in
  { root = M.add k v t.root; count = t.count + delta }

let remove k t =
  if M.mem k t.root then { root = M.remove k t.root; count = t.count - 1 }
  else t

let find_opt k t = M.find_opt k t.root

let mem k t = M.mem k t.root

let iter f t = M.iter f t.root

let fold f t acc = M.fold f t.root acc

let map f t = { root = M.map f t.root; count = t.count }

let filter p t =
  let root = M.filter p t.root in
  { root; count = M.cardinal root }

let bindings t = M.bindings t.root

let of_list l =
  List.fold_left (fun acc (k, v) -> add k v acc) empty l

let root_eq a b = a.root == b.root
