(** Deterministic QuickCheck-style property testing with integrated
    shrinking.

    A ['a t] couples a generator (drawing from {!Rng}, so equal seeds
    yield equal case streams) with a lazy shrink tree: combinators
    ({!pair}, {!list}, {!map}) compose shrinking automatically, and
    black-box generators get shrinking via the [?shrink] argument of
    {!make}. On failure the counterexample is greedily shrunk (bounded
    candidate budget), written to a [_prop_failures/] report file — CI
    uploads these as artifacts — and summarised in the raised message. *)

type 'a t

val make :
  ?shrink:('a -> 'a Seq.t) -> print:('a -> string) -> (Rng.t -> 'a) -> 'a t
(** Wrap a plain generator. [shrink x] must yield strictly smaller
    candidates (it is applied recursively); it defaults to no
    shrinking. *)

val int_range : int -> int -> int t
(** Uniform in [\[lo, hi\]], shrinking toward [lo]. *)

val bool : bool t
(** [true] shrinks to [false]. *)

val pair : 'a t -> 'b t -> ('a * 'b) t

val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val list : ?max_len:int -> 'a t -> 'a list t
(** Length uniform in [\[0, max_len\]]; shrinks by dropping any single
    element, then by shrinking elements in place. *)

val map : print:('b -> string) -> ('a -> 'b) -> 'a t -> 'b t

type failure = {
  f_name : string;
  f_seed : int;
  f_case : int;          (** 1-based index of the first failing case *)
  f_original : string;   (** printed counterexample as generated *)
  f_shrunk : string;     (** printed counterexample after shrinking *)
  f_steps : int;         (** successful shrink steps taken *)
  f_error : string option;  (** exception text when the property raised *)
}

type outcome = Pass of int | Fail of failure

val run :
  ?count:int -> ?seed:int -> name:string -> 'a t -> ('a -> bool) -> outcome
(** Evaluate the property on [count] generated cases (default 1000). A
    property that raises counts as failing. Purely functional apart from
    the property itself — no file output. *)

val summary : failure -> string

val save_failure : ?dir:string -> failure -> string option
(** Write the counterexample report under [dir] (default: [$PROP_DIR] or
    ["_prop_failures"]); returns the path, or [None] if writing failed. *)

val check :
  ?count:int -> ?seed:int -> ?dir:string -> name:string ->
  'a t -> ('a -> bool) -> unit
(** {!run}, then on failure {!save_failure} and [failwith] with the
    {!summary} — the Alcotest-facing entry point. *)
