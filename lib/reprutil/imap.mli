(** Persistent map over int keys with O(1) cardinality — the
    copy-on-write substrate for engine state (table rows keyed by rowid).

    A value is an immutable root plus a cached element count; every
    update returns a fresh value sharing structure with the old one, so
    holding onto an old version (an engine snapshot) costs only the
    O(log n) path the next update rewrites. Iteration is in ascending
    key order, which for monotonically assigned rowids is insertion
    order. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val cardinal : 'a t -> int
(** O(1): the count is cached alongside the root. *)

val add : int -> 'a -> 'a t -> 'a t
(** Insert or replace. *)

val remove : int -> 'a t -> 'a t

val find_opt : int -> 'a t -> 'a option

val mem : int -> 'a t -> bool

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Ascending key order. *)

val fold : (int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Ascending key order. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val filter : (int -> 'a -> bool) -> 'a t -> 'a t

val bindings : 'a t -> (int * 'a) list
(** Ascending key order. *)

val of_list : (int * 'a) list -> 'a t

val root_eq : 'a t -> 'a t -> bool
(** Physical equality of the underlying roots: [true] means the two
    values are guaranteed identical (the converse does not hold). Used
    by size accounting to detect shared state cheaply. *)
