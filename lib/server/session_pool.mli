(** N client sessions multiplexed over one shared {!Minidb.Engine}.

    One session is attached to the shared catalog at a time; context
    switches park/unpark connection state through
    {!Minidb.Catalog.park_session} and swap statement-type windows, so
    transaction state and bug-registry windows track the {e session}.
    Cross-session fault predicates ([other_txn_dirty],
    [other_session_in_txn], [other_session_window]) are answered from
    the other sessions' mirror flags via {!Minidb.Engine.set_fault_ext}.

    Schedules execute in two modes with byte-identical outcomes: live
    on OCaml 5 domains (one per session, a turnstile admitting the
    session whose turn the schedule names — real cross-domain execution
    in a deterministic total order) for crash hunting, and serially on
    the calling domain for triage replay. *)

open Sqlcore

type t

val create :
  ?limits:Minidb.Limits.t ->
  ?metrics:Telemetry.Registry.t ->
  sessions:int ->
  profile:Minidb.Profile.t ->
  cov:Coverage.Bitmap.t ->
  unit ->
  t
(** A fresh pool: one engine, [sessions] sessions, session 0 attached.
    [metrics] receives [session.statements] / [session.switches] /
    [session.crashes] counters. *)

val sessions : t -> int

val current : t -> int
(** Id of the attached session. *)

val session : t -> int -> Session.t

val engine : t -> Minidb.Engine.t
(** The shared engine; exposed for oracles and tests. *)

val exec : t -> session:int -> Ast.stmt -> Wire.response
(** Serve path: execute one statement as [session], context-switching
    if needed. Takes the pool lock. A fired bug answers
    {!Wire.Crashed} rather than raising. *)

type outcome = {
  o_replies : string array;
      (** rendered {!Wire.response}s, one per executed step in schedule
          order *)
  o_crash : (int * Minidb.Fault.crash) option;
      (** step index at which a bug fired; execution stopped there *)
  o_executed : int;
  o_fingerprint : string;
      (** {!Oracle.Suite.fingerprint} of the final catalog *)
}

val outcome_equal : outcome -> outcome -> bool
(** Replies, executed count, crash identity (bug id + stack) and final
    fingerprint all agree — the schedule-replay determinism contract. *)

val run_serial : t -> (int * Ast.stmt) array -> outcome
(** Execute a schedule ([(session, stmt)] steps) on the calling domain,
    stopping at the first crash. Consumes the pool: run each schedule
    on a fresh one. *)

val run_concurrent : t -> (int * Ast.stmt) array -> outcome
(** Execute the same schedule across one domain per participating
    session under the turnstile. [run_concurrent] and {!run_serial} on
    fresh pools satisfy {!outcome_equal}. *)
