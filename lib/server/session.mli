(** One client connection of the multi-session server.

    The authoritative connection state (transaction status, session
    variables, prepared statements, ...) lives in the shared catalog
    while the session is attached, or in its parked
    {!Minidb.Catalog.session_view} while it is not. This record carries
    the session's identity, its sliding statement-type window (swapped
    into the engine on attach, so bug-registry windows track the
    session, never the shared store), and mirror flags for the fault
    hook's cross-session predicates — readable while a different
    session is attached. Mirrors are updated under the pool lock after
    each statement. *)

open Sqlcore

type t = {
  s_id : int;
  mutable s_window : Stmt_type.t list;
  mutable s_in_txn : bool;
  mutable s_txn_writes : int;
  mutable s_last_window : bool;
  mutable s_executed : int;
  mutable s_errors : int;
}

val create : int -> t

val note : t -> Ast.stmt -> in_txn:bool -> failed:bool -> unit
(** Record that one of this session's statements completed. [in_txn] is
    the catalog's post-statement transaction flag; leaving a
    transaction resets the dirty-write count. *)

val dirty : t -> bool
(** In an open transaction that has written — the state the
    [other_txn_dirty] fault predicate asks about. *)
