open Sqlcore

(* One client connection's identity plus the mirror flags the fault
   hook's cross-session predicates read. The authoritative connection
   state lives in the catalog (attached) or its parked session_view;
   the mirrors exist because predicates about session S are evaluated
   while a DIFFERENT session is attached — they are updated by the pool
   after each of S's statements completes, under the pool lock. *)
type t = {
  s_id : int;
  mutable s_window : Stmt_type.t list;
      (* sliding type window, swapped into the engine on attach *)
  mutable s_in_txn : bool;
  mutable s_txn_writes : int;   (* write statements since BEGIN *)
  mutable s_last_window : bool; (* last stmt contained a window fn *)
  mutable s_executed : int;
  mutable s_errors : int;
}

let create id =
  { s_id = id; s_window = []; s_in_txn = false; s_txn_writes = 0;
    s_last_window = false; s_executed = 0; s_errors = 0 }

(* Mirror update after one of this session's statements ran. [in_txn]
   is the catalog's post-statement transaction flag. *)
let note t stmt ~in_txn ~failed =
  t.s_executed <- t.s_executed + 1;
  if failed then t.s_errors <- t.s_errors + 1;
  t.s_last_window <- Ast_util.has_window_fn stmt;
  if in_txn then begin
    if Ast_util.tables_written stmt <> [] then
      t.s_txn_writes <- t.s_txn_writes + 1
  end
  else t.s_txn_writes <- 0;
  t.s_in_txn <- in_txn

let dirty t = t.s_in_txn && t.s_txn_writes > 0
