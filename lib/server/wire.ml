(* Typed wire protocol in the spirit of the Sql.roc interface from
   SNIPPETS.md: a client sends SQL, the server answers with one of a
   small closed set of typed values. Responses render to a stable text
   form — the rendering doubles as the equality the schedule-replay
   determinism contract is stated in, so it must stay float-careful
   (NaN prints as "nan" and compares equal to itself as text, where
   structural [=] on the tree would diverge). *)

type data =
  | Null
  | Boolean of bool
  | Int of int
  | Real of float
  | Text of string

type execute_result = {
  rows_affected : int;
  last_insert_rowid : int;  (* -1 when nothing was ever inserted *)
}

type response =
  | Data of { columns : string list; rows : data array list }
  | Execute_result of execute_result
  | Error of { code : string; msg : string }
  | Crashed of { bug_id : string; kind : string }

let of_value = function
  | Storage.Value.Null -> Null
  | Storage.Value.Bool b -> Boolean b
  | Storage.Value.Int i -> Int i
  | Storage.Value.Float f -> Real f
  | Storage.Value.Text s -> Text s

let error_code = function
  | Minidb.Errors.No_such_table _ -> "NO_SUCH_TABLE"
  | Minidb.Errors.No_such_column _ -> "NO_SUCH_COLUMN"
  | Minidb.Errors.No_such_object _ -> "NO_SUCH_OBJECT"
  | Minidb.Errors.Duplicate_object _ -> "DUPLICATE_OBJECT"
  | Minidb.Errors.Constraint_violation _ -> "CONSTRAINT"
  | Minidb.Errors.Type_error _ -> "TYPE"
  | Minidb.Errors.Not_supported _ -> "NOT_SUPPORTED"
  | Minidb.Errors.Permission_denied _ -> "PERMISSION"
  | Minidb.Errors.Semantic _ -> "SEMANTIC"
  | Minidb.Errors.Limit_exceeded _ -> "LIMIT"

let of_error e =
  Error { code = error_code e; msg = Minidb.Errors.message e }

let of_crash (c : Minidb.Fault.crash) =
  Crashed
    { bug_id = c.c_bug.bug_id;
      kind = Minidb.Fault.kind_name c.c_bug.kind }

let render_data = function
  | Null -> "NULL"
  | Boolean true -> "TRUE"
  | Boolean false -> "FALSE"
  | Int i -> string_of_int i
  | Real f -> Printf.sprintf "%h" f
  | Text s -> "'" ^ s ^ "'"

let render = function
  | Data { columns; rows } ->
    let header = String.concat "," columns in
    let body =
      List.map
        (fun row ->
           String.concat "|" (List.map render_data (Array.to_list row)))
        rows
    in
    Printf.sprintf "data %d [%s] %s" (List.length rows) header
      (String.concat " ; " body)
  | Execute_result { rows_affected; last_insert_rowid } ->
    Printf.sprintf "ok affected=%d last_rowid=%d" rows_affected
      last_insert_rowid
  | Error { code; msg } -> Printf.sprintf "error %s: %s" code msg
  | Crashed { bug_id; kind } -> Printf.sprintf "crash %s (%s)" bug_id kind
