open Sqlcore

(* N sessions multiplexed over ONE engine. Exactly one session is
   attached to the shared catalog at a time; a context switch parks the
   attached session's connection state (Catalog.park_session) and
   swaps statement-type windows, so bug-registry windows and
   transaction state always track the session, never the store.

   Concurrency model: statements of a schedule execute on OCaml 5
   domains (one per session), but the schedule dictates a TOTAL order —
   a turnstile over the shared mutex admits exactly the session whose
   turn the schedule names next. The engine therefore observes the
   identical operation sequence whether the schedule runs concurrently
   or serially, which is what makes live crash hunting and serial
   triage replay byte-identical (the determinism contract the
   schedule-replay tests pin). *)

type t = {
  p_engine : Minidb.Engine.t;
  p_sessions : Session.t array;
  mutable p_current : int;
  p_lock : Mutex.t;
  p_metrics : Telemetry.Registry.t option;
}

let count t name by =
  match t.p_metrics with
  | None -> ()
  | Some m ->
    if by > 0 then
      Telemetry.Registry.incr ~by (Telemetry.Registry.counter m name)

(* Cross-session fault predicates, answered from the other sessions'
   mirror flags. Unknown names fall through (None) to the executor's
   own state predicates, so the single-session vocabulary is
   untouched. *)
let fault_hook t name =
  let others f =
    Array.exists
      (fun s -> s.Session.s_id <> t.p_current && f s)
      t.p_sessions
  in
  match name with
  | "other_txn_dirty" -> Some (others Session.dirty)
  | "other_session_in_txn" ->
    Some (others (fun s -> s.Session.s_in_txn))
  | "other_session_window" ->
    Some (others (fun s -> s.Session.s_last_window))
  | _ -> None

let create ?limits ?metrics ~sessions ~profile ~cov () =
  if sessions < 1 then invalid_arg "Session_pool.create: sessions < 1";
  let engine = Minidb.Engine.create ?limits ?metrics ~profile ~cov () in
  let t =
    { p_engine = engine;
      p_sessions = Array.init sessions Session.create;
      p_current = 0;
      p_lock = Mutex.create ();
      p_metrics = metrics }
  in
  Minidb.Engine.set_fault_ext engine (Some (fault_hook t));
  t

let sessions t = Array.length t.p_sessions

let current t = t.p_current

let session t i = t.p_sessions.(i)

let engine t = t.p_engine

let switch t sid =
  if sid <> t.p_current then begin
    let cur = t.p_sessions.(t.p_current) in
    cur.Session.s_window <- Minidb.Engine.window t.p_engine;
    let cat = Minidb.Engine.catalog t.p_engine in
    Minidb.Catalog.park_session cat t.p_current;
    Minidb.Catalog.unpark_session cat sid;
    Minidb.Engine.set_window t.p_engine t.p_sessions.(sid).Session.s_window;
    t.p_current <- sid;
    count t "session.switches" 1
  end

let last_insert_rowid t stmt =
  let cat = Minidb.Engine.catalog t.p_engine in
  match Ast_util.tables_written stmt with
  | tbl :: _ ->
    (match Hashtbl.find_opt cat.Minidb.Catalog.tables tbl with
     | Some table -> Storage.Table.last_rowid table
     | None -> -1)
  | [] -> -1

let response_of_result t stmt = function
  | Minidb.Executor.Rows (cols, rows) ->
    Wire.Data
      { columns = cols;
        rows = List.map (Array.map Wire.of_value) rows }
  | Minidb.Executor.Affected n ->
    Wire.Execute_result
      { rows_affected = n; last_insert_rowid = last_insert_rowid t stmt }
  | Minidb.Executor.Done _ ->
    Wire.Execute_result
      { rows_affected = 0; last_insert_rowid = last_insert_rowid t stmt }

(* Execute one statement for [sid]. Caller holds [p_lock]. Returns the
   response and, when a fault-registry bug fired, the crash. *)
let exec_unlocked t sid stmt =
  switch t sid;
  let sess = t.p_sessions.(sid) in
  let cat = Minidb.Engine.catalog t.p_engine in
  let resp, failed, crash =
    match Minidb.Engine.exec_stmt t.p_engine stmt with
    | Minidb.Engine.Ok_result r -> (response_of_result t stmt r, false, None)
    | Minidb.Engine.Sql_failed e -> (Wire.of_error e, true, None)
    | exception Minidb.Fault.Crashed c -> (Wire.of_crash c, false, Some c)
  in
  Session.note sess stmt ~in_txn:cat.Minidb.Catalog.in_txn ~failed;
  count t "session.statements" 1;
  (resp, crash)

let exec t ~session stmt =
  if session < 0 || session >= Array.length t.p_sessions then
    invalid_arg "Session_pool.exec: no such session";
  Mutex.lock t.p_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.p_lock)
    (fun () -> fst (exec_unlocked t session stmt))

(* --- schedule execution --------------------------------------------- *)

type outcome = {
  o_replies : string array;  (* rendered responses, schedule order *)
  o_crash : (int * Minidb.Fault.crash) option;
  o_executed : int;
  o_fingerprint : string;
}

let crash_key (c : Minidb.Fault.crash) =
  c.c_bug.bug_id ^ ":" ^ String.concat "<" c.c_stack

let outcome_equal a b =
  a.o_replies = b.o_replies
  && a.o_executed = b.o_executed
  && String.equal a.o_fingerprint b.o_fingerprint
  && (match a.o_crash, b.o_crash with
      | None, None -> true
      | Some (ia, ca), Some (ib, cb) ->
        ia = ib && String.equal (crash_key ca) (crash_key cb)
      | _ -> false)

let finish t ~replies ~crash ~executed =
  (match crash with
   | Some _ -> count t "session.crashes" 1
   | None -> ());
  { o_replies = Array.sub replies 0 executed;
    o_crash = crash;
    o_executed = executed;
    o_fingerprint = Oracle.Suite.fingerprint (Minidb.Engine.catalog t.p_engine) }

let run_serial t steps =
  let n = Array.length steps in
  let replies = Array.make n "" in
  let crash = ref None in
  let i = ref 0 in
  while !crash = None && !i < n do
    let sid, stmt = steps.(!i) in
    let resp, cr = exec_unlocked t sid stmt in
    replies.(!i) <- Wire.render resp;
    (match cr with Some c -> crash := Some (!i, c) | None -> ());
    incr i
  done;
  finish t ~replies ~crash:!crash ~executed:!i

let run_concurrent t steps =
  let n = Array.length steps in
  let replies = Array.make n "" in
  let crash = ref None in
  let turn = ref 0 in
  let halted = ref false in
  let cv = Condition.create () in
  let m = t.p_lock in
  let sids =
    List.sort_uniq compare (List.map fst (Array.to_list steps))
  in
  let worker sid =
    Mutex.lock m;
    let running = ref true in
    while !running do
      while
        (not !halted) && !turn < n && fst steps.(!turn) <> sid
      do
        Condition.wait cv m
      done;
      if !halted || !turn >= n then running := false
      else begin
        let idx = !turn in
        let _, stmt = steps.(idx) in
        let resp, cr = exec_unlocked t sid stmt in
        replies.(idx) <- Wire.render resp;
        (match cr with
         | Some c ->
           crash := Some (idx, c);
           halted := true
         | None -> ());
        turn := idx + 1;
        Condition.broadcast cv
      end
    done;
    Condition.broadcast cv;
    Mutex.unlock m
  in
  let domains =
    List.map (fun sid -> Domain.spawn (fun () -> worker sid)) sids
  in
  List.iter Domain.join domains;
  finish t ~replies ~crash:!crash ~executed:!turn
