(** Typed wire protocol between clients and the MiniDB server layer, in
    the spirit of the [Sql.roc] interface in SNIPPETS.md: queries answer
    with {!Data}, DML/DDL with {!Execute_result} (rows affected and
    last-insert rowid), rejected statements with {!Error}, and a fired
    fault-registry bug with {!Crashed} — the connection-fatal case.

    {!render} is the protocol's canonical text form and also the
    equality in which the schedule-replay determinism contract is
    stated (text form is total on floats, unlike structural [=]). *)

type data =
  | Null
  | Boolean of bool
  | Int of int
  | Real of float
  | Text of string

type execute_result = {
  rows_affected : int;
  last_insert_rowid : int;
      (** of the table the statement wrote; [-1] when no row was ever
          inserted there (rowids are monotonic, never reused) *)
}

type response =
  | Data of { columns : string list; rows : data array list }
  | Execute_result of execute_result
  | Error of { code : string; msg : string }
  | Crashed of { bug_id : string; kind : string }

val of_value : Storage.Value.t -> data

val render_data : data -> string
(** One value in the text form ([Real] via [%h], so NaN-safe). *)

val of_error : Minidb.Errors.t -> response

val of_crash : Minidb.Fault.crash -> response

val render : response -> string
(** Stable single-line rendering. *)
