(** Farm specifications and the campaign fuzzer factory.

    A farm spec is the JSON file [legofuzz farm] consumes: a list of
    campaigns (fuzzer × dialect × feedback × budget, plus optional
    planted quirks) and the global round/budget/worker knobs. The
    fuzzer factory here is the one the CLI's [fuzz] subcommand also
    uses — one place validates fuzzer names and assembles harnesses, so
    a store's [meta.json] round-trips into exactly the fuzzer it came
    from. *)

type policy = Bandit | Round_robin

val policy_of_string : string -> policy option
(** ["bandit"] or ["round_robin"]. *)

val policy_to_string : policy -> string

type t = {
  fs_campaigns : Store.campaign list;
  fs_total_execs : int;   (** farm-wide execution budget *)
  fs_round_execs : int;   (** budget reallocated per scheduler round *)
  fs_workers : int;       (** domain pool size *)
  fs_policy : policy;
  fs_ucb_c : float;       (** UCB1 exploration constant *)
}

val of_json : Telemetry.Json.t -> (t, string) result
(** Parse and validate a farm spec. Campaign fields: [id] (required,
    [A-Za-z0-9._-]), [fuzzer] (required), [dialect] (required),
    [budget] (required), [quirks] (default none), [feedback] (default
    edges), [oracles] (default false), [exec_cache] (default 0), [seed]
    (default 1). Top-level: [campaigns] (required, ids unique),
    [total_execs] (required), [round_execs] (default 4096), [workers]
    (default 2), [policy] (default bandit), [ucb_c] (default 0.5).
    Unknown fuzzer/dialect names are rejected here, not at run time. *)

val of_file : string -> (t, string) result

val to_json : t -> Telemetry.Json.t
(** Inverse of {!of_json} (explicit defaults included). *)

val valid_id : string -> bool
(** Filesystem-safe campaign id: nonempty, [A-Za-z0-9._-] only, does
    not start with a dot. *)

val profile : Store.campaign -> (Minidb.Profile.t, string) result
(** Resolve [sc_dialect] through {!Dialects.Registry.by_name} and apply
    [sc_quirks]. *)

val fuzzer_factory :
  ?oracles:bool ->
  ?exec_cache:int ->
  ?feedback:Fuzz.Harness.feedback ->
  name:string ->
  profile:Minidb.Profile.t ->
  seed:int ->
  unit ->
  (int -> Fuzz.Driver.fuzzer, string) result
(** Validate the fuzzer name up front and return a shard factory
    ([shard_id -> fuzzer]); construction is deferred so the campaign
    engine can run it inside the shard's domain. Known names: lego,
    lego- (alias lego_minus), squirrel, sqlancer, sqlsmith. With
    [oracles], each shard's harness gets its own oracle suite (suites
    hold replay state and must stay domain-private). *)

val make : campaign:Store.campaign -> seed:int ->
  (int -> Fuzz.Driver.fuzzer, string) result
(** {!fuzzer_factory} driven entirely by a campaign record, except the
    RNG [seed] — resume passes an epoch-derived one. *)

val epoch_seed : campaign:Store.campaign -> epoch:int -> int
(** [sc_seed + epoch * 7_368_787]: the RNG seed for a campaign's Nth
    epoch, so each resume continues on a fresh deterministic stream
    instead of replaying the interrupted epoch's decisions. Epoch 0 is
    the campaign seed itself. *)
