(* The farm worker process body (DESIGN.md §17). One worker serves
   rounds for any campaign the coordinator deals it: load the
   campaign's newest good store generation, run the allocated execs,
   persist the result into the worker's generation namespace
   (gen-NNNNNN.wK — invisible until the coordinator promotes it), and
   report over the line protocol. Between rounds the worker keeps each
   campaign's fuzzer alive; a manifest-digest probe decides whether the
   store moved under it (another worker promoted news) and only then
   pays for a full reload. *)

type wstate = {
  ws_campaign : Store.campaign;
  ws_fuzzer : Fuzz.Driver.fuzzer;
  ws_acc : Store.acc;
  ws_prior_execs : int;  (* execs_done carried in from the store *)
  ws_epoch : int;
  mutable ws_keys : int;
  mutable ws_digests : (string * string) list;
      (* manifest digests of the plain generation this state descends
         from — the reload short-circuit compares against the store's
         newest plain generation *)
  mutable ws_error : string option;
}

type t = {
  t_worker : int;
  t_runs_dir : string option;
  t_heartbeat_execs : int;
  t_heartbeat : execs:int -> unit;
  t_states : (string, wstate) Hashtbl.t;
}

let default_heartbeat_execs = 500

let create ?runs_dir ?(heartbeat_execs = default_heartbeat_execs)
    ?(heartbeat = fun ~execs:_ -> ()) ~worker () =
  { t_worker = worker; t_runs_dir = runs_dir;
    t_heartbeat_execs = max 1 heartbeat_execs; t_heartbeat = heartbeat;
    t_states = Hashtbl.create 4 }

let empty_compact = lazy (Coverage.Bitmap.compact_of_cells [])

let error_report ~campaign ~execs ~round e =
  { Transport.rr_campaign = campaign; rr_round = round; rr_allocated = execs;
    rr_executed = 0; rr_execs_done = 0; rr_branches = 0; rr_coverage_keys = 0;
    rr_new_keys = 0; rr_crashes_unique = 0; rr_logic_unique = 0; rr_bugs = [];
    rr_generation = 0; rr_finished = false; rr_reloads = 0;
    rr_reload_skipped = 0; rr_error = Some e }

(* Newest plain generation's manifest digests — the store's identity as
   far as a reload is concerned. *)
let newest_digests ~dir =
  match List.rev (Store.generations ~dir) with
  | [] -> None
  | gen :: _ -> Store.manifest_digests (Store.generation_dir ~dir gen)

(* Full reload: parse the newest good generation under its read-mark,
   rebuild the fuzzer on a fresh epoch stream, preload learned state. *)
let load_state t ~dir campaign =
  match Store.load_marked ~dir with
  | Error warns ->
    Error
      (Printf.sprintf "cannot load store under %s: %s" dir
         (String.concat "; " warns))
  | Ok (sn, gen, _warns) ->
    (* A store the coordinator just seeded (no execs, epoch 0) is a
       fresh campaign: epoch 0 keeps the worker byte-identical to the
       in-process farm. Anything with history resumes on a new epoch
       stream so it never replays the interrupted epoch's decisions. *)
    let fresh =
      sn.Store.sn_progress.pr_execs_done = 0 && sn.Store.sn_progress.pr_epoch = 0
    in
    let epoch =
      if fresh then 0 else sn.Store.sn_progress.pr_epoch + 1
    in
    let c = sn.Store.sn_campaign in
    (match Spec.make ~campaign:c ~seed:(Spec.epoch_seed ~campaign:c ~epoch) with
     | Error e -> Error e
     | Ok base ->
       let fz = base 0 in
       Resume.preload_fuzzer sn fz;
       let ws =
         { ws_campaign = c; ws_fuzzer = fz; ws_acc = Store.acc_of_snapshot sn;
           ws_prior_execs = sn.Store.sn_progress.pr_execs_done;
           ws_epoch = epoch; ws_keys = Scheduler.coverage_keys fz;
           ws_digests =
             Option.value ~default:[]
               (Store.manifest_digests (Store.generation_dir ~dir gen));
           ws_error = None }
       in
       Hashtbl.replace t.t_states campaign ws;
       Ok ws)

let run_round t ~campaign ~execs ~round =
  let dir = Store.store_dir ?runs_dir:t.t_runs_dir campaign in
  let reloads = ref 0 and skipped = ref 0 in
  let state_r =
    match Hashtbl.find_opt t.t_states campaign, newest_digests ~dir with
    | Some ws, Some digests
      when ws.ws_error = None && digests = ws.ws_digests ->
      (* The store still is what this live fuzzer descends from: skip
         the reload, keep the epoch running. *)
      incr skipped;
      Ok ws
    | _ ->
      incr reloads;
      load_state t ~dir campaign
  in
  match state_r with
  | Error e -> error_report ~campaign ~execs ~round e
  | Ok ws ->
    let h = ws.ws_fuzzer.Fuzz.Driver.f_harness in
    let before = Fuzz.Harness.execs h in
    let keys_before = ws.ws_keys in
    let target = before + execs in
    (* Execute in sub-slices so a heartbeat goes out every
       t_heartbeat_execs even mid-round. *)
    (try
       while Fuzz.Harness.execs h < target && ws.ws_error = None do
         let next = min target (Fuzz.Harness.execs h + t.t_heartbeat_execs) in
         ignore (Fuzz.Driver.run_until_execs ws.ws_fuzzer ~execs:next);
         t.t_heartbeat ~execs:(Fuzz.Harness.execs h - before)
       done
     with
     | Fuzz.Driver.Stalled msg -> ws.ws_error <- Some ("stalled: " ^ msg)
     | exn -> ws.ws_error <- Some (Printexc.to_string exn));
    ws.ws_keys <- Scheduler.coverage_keys ws.ws_fuzzer;
    let executed = Fuzz.Harness.execs h - before in
    let execs_done = ws.ws_prior_execs + Fuzz.Harness.execs h in
    (match ws.ws_fuzzer.Fuzz.Driver.f_exchange with
     | Some port -> Store.acc_add_export ws.ws_acc (port.Fuzz.Sync.p_export ())
     | None -> ());
    let tri = Fuzz.Harness.triage h in
    let snapshot =
      Store.acc_snapshot ws.ws_acc ~campaign:ws.ws_campaign
        ~progress:{ Store.pr_execs_done = execs_done; pr_epoch = ws.ws_epoch }
        ~virgin:(Coverage.Bitmap.compact (Fuzz.Harness.virgin h))
        ~grammar:
          (match Fuzz.Harness.grammar_virgin h with
           | Some g -> Coverage.Bitmap.compact g
           | None -> Lazy.force empty_compact)
        ~crash_keys:(Fuzz.Triage.crash_keys tri)
        ~logic_keys:(Fuzz.Triage.logic_keys tri)
    in
    let gen =
      try Store.save ~worker:t.t_worker ~dir snapshot with _ -> 0
    in
    (* After the coordinator promotes gen-N.wK by rename, the plain
       gen-N carries these exact digests — the next round on this
       campaign short-circuits its reload. *)
    if gen > 0 then
      ws.ws_digests <-
        Option.value ~default:[]
          (Store.manifest_digests
             (Store.worker_generation_dir ~dir ~worker:t.t_worker gen));
    { Transport.rr_campaign = campaign; rr_round = round;
      rr_allocated = execs; rr_executed = executed;
      rr_execs_done = execs_done; rr_branches = Fuzz.Harness.branches h;
      rr_coverage_keys = ws.ws_keys; rr_new_keys = ws.ws_keys - keys_before;
      rr_crashes_unique = Fuzz.Triage.unique_count tri;
      rr_logic_unique = Fuzz.Triage.logic_count tri;
      rr_bugs = Fuzz.Triage.bug_ids tri; rr_generation = gen;
      rr_finished = execs_done >= ws.ws_campaign.Store.sc_budget;
      rr_reloads = !reloads; rr_reload_skipped = !skipped;
      rr_error = ws.ws_error }

(* The worker protocol loop: Hello, then serve Run commands until
   Shutdown, stdin EOF, or a malformed command (reported as Fatal — the
   coordinator decides what to do with the carcass). stdout carries
   protocol lines only. *)
let serve ?runs_dir ?heartbeat_execs ~worker ic oc =
  let emit m =
    output_string oc (Transport.message_to_line m);
    output_char oc '\n';
    flush oc
  in
  let t =
    create ?runs_dir ?heartbeat_execs
      ~heartbeat:(fun ~execs ->
        emit (Transport.Heartbeat { hb_worker = worker; hb_execs = execs }))
      ~worker ()
  in
  emit (Transport.Hello { h_worker = worker; h_pid = Unix.getpid () });
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line -> (
        match Transport.command_of_line line with
        | Error e ->
          emit (Transport.Fatal (Printf.sprintf "bad command line: %s" e))
        | Ok Transport.Shutdown -> ()
        | Ok (Transport.Run r) ->
          let report =
            run_round t ~campaign:r.rc_campaign ~execs:r.rc_execs
              ~round:r.rc_round
          in
          emit (Transport.Round report);
          loop ())
  in
  loop ()
