(** Advisory file locks for multi-process store coordination
    (DESIGN.md §17).

    Thin, safe wrapper over [Unix.lockf] whole-file record locks.
    Workers take {e shared} locks as read-marks on the store generation
    they are parsing; the coordinator takes {e exclusive} locks while
    promoting worker generations and probes read-marks with
    {!is_locked} before pruning. Two POSIX pitfalls are handled here so
    callers never see them: locks are invisible to [F_TEST] within the
    owning process (a process-local held-paths table answers first),
    and closing any descriptor of a locked file drops the process's
    locks on it (probes never open a path this process holds; each held
    lock owns its descriptor until {!release}).

    Lock files are created on demand (0644, parent directories made as
    needed); their contents are never read — only the lock state
    matters. *)

type kind = Shared | Exclusive

type t
(** A held lock. Not released by the GC — callers must {!release}
    (process exit releases too, which is what makes a SIGKILLed
    worker's read-marks disappear rather than wedge pruning). *)

val acquire : ?block:bool -> kind:kind -> string -> t option
(** Take a lock on [path]. [block] (default true) waits; with
    [~block:false] returns [None] when a conflicting lock is held by
    another process. Shared locks admit other shared holders and
    exclude exclusive ones. *)

val release : t -> unit
(** Release and close. Idempotence is not promised — release once. *)

val with_exclusive : string -> (unit -> 'a) -> 'a
(** Blocking exclusive lock around a critical section; always
    released, even on exceptions. *)

val is_locked : string -> bool
(** Would an exclusive lock on [path] conflict right now — i.e. does
    any process (including this one) hold it? False for a missing
    file. *)
