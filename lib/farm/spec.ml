module Json = Telemetry.Json

type policy = Bandit | Round_robin

let policy_of_string = function
  | "bandit" -> Some Bandit
  | "round_robin" -> Some Round_robin
  | _ -> None

let policy_to_string = function Bandit -> "bandit" | Round_robin -> "round_robin"

type t = {
  fs_campaigns : Store.campaign list;
  fs_total_execs : int;
  fs_round_execs : int;
  fs_workers : int;
  fs_policy : policy;
  fs_ucb_c : float;
}

let valid_id s =
  s <> "" && s.[0] <> '.'
  && String.for_all
       (fun c ->
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
          || (c >= '0' && c <= '9') || c = '.' || c = '_' || c = '-')
       s

(* --- profile / fuzzer factory ---------------------------------------- *)

let profile (c : Store.campaign) =
  match Dialects.Registry.by_name c.sc_dialect with
  | None ->
    Error
      (Printf.sprintf
         "campaign %S: unknown dialect %S (postgresql, mysql, mariadb, comdb2)"
         c.sc_id c.sc_dialect)
  | Some p ->
    Ok (if c.sc_quirks = [] then p else Minidb.Profile.with_quirks p c.sc_quirks)

(* Mirrors the CLI's historical make_fuzzer: the harness is created only
   when a non-default capability is on, so plain edge-feedback campaigns
   stay byte-identical to the pre-farm builds. *)
let fuzzer_factory ?(oracles = false) ?(exec_cache = 0)
    ?(feedback = Fuzz.Harness.Edges) ~name ~profile ~seed () =
  let harness () =
    if oracles || exec_cache > 0 || feedback <> Fuzz.Harness.Edges then
      Some
        (Fuzz.Harness.create ~profile
           ?oracles:
             (if oracles then Some (Oracle.Suite.create profile) else None)
           ~exec_cache ~feedback ())
    else None
  in
  let lego ~seq shard_id =
    let cfg =
      { Lego.Lego_fuzzer.default_config with
        seed = Fuzz.Campaign.shard_seed ~seed ~shard_id;
        sequence_oriented = seq }
    in
    Lego.Lego_fuzzer.fuzzer
      (Lego.Lego_fuzzer.create ~config:cfg ?harness:(harness ()) profile)
  in
  let baseline create fuzzer shard_id =
    fuzzer
      (create
         ~seed:(Fuzz.Campaign.shard_seed ~seed ~shard_id)
         ?harness:(harness ()) profile)
  in
  match String.lowercase_ascii name with
  | "lego" -> Ok (lego ~seq:true)
  | "lego-" | "lego_minus" -> Ok (lego ~seq:false)
  | "squirrel" ->
    Ok
      (baseline
         (fun ~seed ?harness p -> Baselines.Squirrel_sim.create ~seed ?harness p)
         Baselines.Squirrel_sim.fuzzer)
  | "sqlancer" ->
    Ok
      (baseline
         (fun ~seed ?harness p -> Baselines.Sqlancer_sim.create ~seed ?harness p)
         Baselines.Sqlancer_sim.fuzzer)
  | "sqlsmith" ->
    Ok
      (baseline
         (fun ~seed ?harness p -> Baselines.Sqlsmith_sim.create ~seed ?harness p)
         Baselines.Sqlsmith_sim.fuzzer)
  | other ->
    Error
      (Printf.sprintf
         "unknown fuzzer %S (lego, lego-, squirrel, sqlancer, sqlsmith)" other)

let make ~(campaign : Store.campaign) ~seed =
  match profile campaign with
  | Error e -> Error e
  | Ok p ->
    fuzzer_factory ~oracles:campaign.sc_oracles
      ~exec_cache:campaign.sc_exec_cache ~feedback:campaign.sc_feedback
      ~name:campaign.sc_fuzzer ~profile:p ~seed ()

let epoch_seed ~(campaign : Store.campaign) ~epoch =
  campaign.sc_seed + (epoch * 7_368_787)

(* --- JSON ------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field ?default name conv json =
  match Json.member name json with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing field %S" name))
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad field %S" name))

let str_list json =
  match json with
  | Json.Arr items ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | Json.Str s :: rest -> go (s :: acc) rest
      | _ -> None
    in
    go [] items
  | _ -> None

let campaign_of_json json =
  let* id = field "id" Json.to_str json in
  let ctx msg = Printf.sprintf "campaign %S: %s" id msg in
  let* () =
    if valid_id id then Ok ()
    else Error (Printf.sprintf "campaign id %S is not filesystem-safe" id)
  in
  let* fuzzer = field "fuzzer" Json.to_str json |> Result.map_error ctx in
  let* dialect = field "dialect" Json.to_str json |> Result.map_error ctx in
  let* budget = field "budget" Json.to_int json |> Result.map_error ctx in
  let* () = if budget > 0 then Ok () else Error (ctx "budget must be > 0") in
  let* quirks = field ~default:[] "quirks" str_list json |> Result.map_error ctx in
  let* fb =
    field ~default:"edges" "feedback" Json.to_str json |> Result.map_error ctx
  in
  let* feedback =
    match Fuzz.Harness.feedback_of_string fb with
    | Some f -> Ok f
    | None -> Error (ctx (Printf.sprintf "unknown feedback %S" fb))
  in
  let* oracles =
    field ~default:false "oracles"
      (function Json.Bool b -> Some b | _ -> None)
      json
    |> Result.map_error ctx
  in
  let* exec_cache =
    field ~default:0 "exec_cache" Json.to_int json |> Result.map_error ctx
  in
  let* seed = field ~default:1 "seed" Json.to_int json |> Result.map_error ctx in
  let campaign =
    { Store.sc_id = id; sc_fuzzer = fuzzer; sc_dialect = dialect;
      sc_quirks = quirks; sc_feedback = feedback; sc_oracles = oracles;
      sc_exec_cache = exec_cache; sc_seed = seed; sc_budget = budget }
  in
  (* Reject unknown fuzzer/dialect names at spec-parse time. *)
  let* _ = make ~campaign ~seed in
  Ok campaign

let of_json json =
  let* campaigns_json =
    field "campaigns"
      (function Json.Arr items -> Some items | _ -> None)
      json
  in
  let* () =
    if campaigns_json = [] then Error "spec has no campaigns" else Ok ()
  in
  let* campaigns =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest ->
        let* parsed = campaign_of_json c in
        go (parsed :: acc) rest
    in
    go [] campaigns_json
  in
  let* () =
    let seen = Hashtbl.create 8 in
    let rec go = function
      | [] -> Ok ()
      | (c : Store.campaign) :: rest ->
        if Hashtbl.mem seen c.sc_id then
          Error (Printf.sprintf "duplicate campaign id %S" c.sc_id)
        else begin
          Hashtbl.replace seen c.sc_id ();
          go rest
        end
    in
    go campaigns
  in
  let* total = field "total_execs" Json.to_int json in
  let* () =
    if total > 0 then Ok () else Error "total_execs must be > 0"
  in
  let* round =
    field ~default:Fuzz.Sync.default_interval "round_execs" Json.to_int json
  in
  let* () =
    if round > 0 then Ok () else Error "round_execs must be > 0"
  in
  let* workers = field ~default:2 "workers" Json.to_int json in
  let* () = if workers > 0 then Ok () else Error "workers must be > 0" in
  let* policy_s = field ~default:"bandit" "policy" Json.to_str json in
  let* policy =
    match policy_of_string policy_s with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "unknown policy %S" policy_s)
  in
  let* ucb_c = field ~default:0.5 "ucb_c" Json.to_float json in
  Ok
    { fs_campaigns = campaigns; fs_total_execs = total; fs_round_execs = round;
      fs_workers = workers; fs_policy = policy; fs_ucb_c = ucb_c }

let of_file path =
  match
    try Ok (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error e -> Error e
  with
  | Error e -> Error e
  | Ok content ->
    let* json = Json.of_string (String.trim content) in
    of_json json

let campaign_to_json (c : Store.campaign) =
  Json.Obj
    [ ("id", Json.Str c.sc_id); ("fuzzer", Json.Str c.sc_fuzzer);
      ("dialect", Json.Str c.sc_dialect);
      ("quirks", Json.Arr (List.map (fun q -> Json.Str q) c.sc_quirks));
      ("feedback", Json.Str (Fuzz.Harness.feedback_to_string c.sc_feedback));
      ("oracles", Json.Bool c.sc_oracles);
      ("exec_cache", Json.Int c.sc_exec_cache); ("seed", Json.Int c.sc_seed);
      ("budget", Json.Int c.sc_budget) ]

let to_json t =
  Json.Obj
    [ ("campaigns", Json.Arr (List.map campaign_to_json t.fs_campaigns));
      ("total_execs", Json.Int t.fs_total_execs);
      ("round_execs", Json.Int t.fs_round_execs);
      ("workers", Json.Int t.fs_workers);
      ("policy", Json.Str (policy_to_string t.fs_policy));
      ("ucb_c", Json.Float t.fs_ucb_c) ]
