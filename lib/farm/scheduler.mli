(** The farm scheduler: many campaigns, one exec budget, UCB1 arms.

    [legofuzz farm <spec.json>] multiplexes the spec's campaigns over a
    bounded pool of OCaml 5 domains. Each round the scheduler
    reallocates [fs_round_execs] executions across the still-active
    campaigns — UCB1 ({!Bandit}) over per-round new-coverage-key
    deltas, or plain round-robin for the ablation baseline — runs the
    allocated slices concurrently (each campaign entirely on one domain
    per round, so campaigns stay single-shard deterministic), then
    feeds the observed rewards back and persists every ran campaign's
    store generation. A farm killed between rounds therefore loses at
    most one round of work, and [legofuzz resume] (or simply re-running
    the farm) picks each campaign up from its last good generation.

    Coverage keys: edge branches plus nonzero grammar-virgin cells —
    the same news signal the harness feedback modes use.

    Determinism: campaigns never share state, rewards are pure exec /
    key counts, and {!Bandit} is RNG-free — a farm run is a function of
    (spec, stores on disk), independent of domain scheduling. *)

type campaign_result = {
  fc_campaign : Store.campaign;
  fc_rounds : int;        (** rounds this campaign was allocated work in *)
  fc_allocated : int;     (** execs allocated to it by the farm *)
  fc_executed : int;      (** execs it actually performed this farm run *)
  fc_execs_done : int;    (** cumulative, including pre-farm store state *)
  fc_branches : int;      (** edge branches at end *)
  fc_coverage_keys : int; (** branches + grammar cells at end *)
  fc_new_keys : int;      (** coverage keys gained during this farm run *)
  fc_crashes_unique : int;  (** unique crashes, preloaded keys excluded *)
  fc_logic_unique : int;
  fc_bugs : string list;
  fc_generation : int;    (** newest store generation written (0 = none) *)
  fc_resumed_from : int option;  (** generation preloaded at farm start *)
  fc_finished : bool;     (** budget exhausted *)
  fc_error : string option;  (** stalled / died; arm retired *)
}

type result = {
  fr_campaigns : campaign_result list;  (** spec order *)
  fr_rounds : int;
  fr_allocated : int;  (** total execs dealt across all rounds *)
  fr_metrics : Telemetry.Registry.t;
      (** [farm.*] scheduling counters plus the union of every
          campaign's harness registry *)
  fr_warnings : string list;  (** corrupt store generations skipped *)
}

val coverage_keys : Fuzz.Driver.fuzzer -> int
(** The reward signal: edge branches + nonzero grammar-virgin cells of
    the fuzzer's harness. *)

val run :
  ?sink:Telemetry.Sink.t ->
  ?runs_dir:string ->
  Spec.t ->
  (result, string) Stdlib.result
(** Run a farm to completion: until the spec's [fs_total_execs] are
    dealt or every campaign is finished or dead. Campaign stores live
    under [<runs_dir>/<id>/store] (default runs dir
    {!Telemetry.Sink.runs_dir}); existing stores are resumed — config
    from the spec, learned state from the store. Telemetry: a [Meta]
    header, one [farm/<id>] checkpoint per campaign per ran round, and
    a final [Registry_dump] of the farm registry go to [sink] (default
    null). [Error] only on setup failures (unknown fuzzer/dialect,
    unloadable pre-existing store with no valid generation is treated
    as a fresh campaign, not an error). *)

val run_processes :
  ?sink:Telemetry.Sink.t ->
  ?runs_dir:string ->
  ?worker_cmd:(int -> string array) ->
  ?heartbeat_timeout:float ->
  ?max_restarts:int ->
  ?on_heartbeat:(worker:int -> pid:int -> unit) ->
  workers:int ->
  Spec.t ->
  (result, string) Stdlib.result
(** The multi-process backend (DESIGN.md §17): the same round loop,
    but each round slice runs in a spawned worker process
    ([legofuzz worker], or whatever argv [worker_cmd slot_id] returns)
    speaking the {!Transport} line protocol over its stdin/stdout.
    Workers persist rounds into their store generation namespaces
    ([gen-NNNNNN.wK]); the coordinator {!Store.promote}s each reported
    generation under the store lock, so a finding is merged exactly
    once and duplicate reporting is structurally impossible.

    Failure containment: a worker that exits, misses heartbeats for
    [heartbeat_timeout] seconds (default 30) mid-round, or emits a
    malformed control line is killed and its in-flight round re-queued
    to another slot — a lost worker costs at most one round. The slot
    respawns up to [max_restarts] times (default 3), then retires.
    [Error] only when setup fails or every slot dies before any round
    completes.

    [on_heartbeat] is a test hook invoked on every worker heartbeat
    with the slot id and live pid.

    Extra metrics over the in-process backend:
    [farm.worker.<K>.{rounds,execs,restarts}] and
    [farm.store.{reloads,reload_skipped}]. Campaign harness internals
    ([exec.*, stage.*]) stay in the worker processes and are not
    merged. *)
