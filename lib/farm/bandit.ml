(* UCB1 over farm campaigns. No RNG anywhere: argmax with
   lowest-index tie-break over pure float scores, so equal histories
   yield equal allocations. *)

type t = {
  n_arms : int;
  c : float;
  n : int array;          (* committed pulls per arm *)
  sum : float array;      (* committed reward mass per arm *)
}

let create ?(c = 0.5) ~arms () =
  if arms < 1 then invalid_arg "Bandit.create: arms < 1";
  { n_arms = arms; c; n = Array.make arms 0; sum = Array.make arms 0. }

let arms t = t.n_arms

let mean_of t n arm = if n.(arm) = 0 then 0. else t.sum.(arm) /. float n.(arm)

let mean t ~arm = mean_of t t.n arm

let pulls t = Array.copy t.n

(* Best committed mean across arms with history, as the normalisation
   scale; 1.0 when nothing has a positive mean yet so early scores stay
   finite and comparable. *)
let scale t n =
  let best = ref 0. in
  for i = 0 to t.n_arms - 1 do
    if n.(i) > 0 then best := Float.max !best (mean_of t t.n i)
  done;
  if !best > 0. then !best else 1.0

let allocate ?slices t ~budget ~active =
  if Array.length active <> t.n_arms then
    invalid_arg "Bandit.allocate: active mask size";
  let execs = Array.make t.n_arms 0 and dealt = Array.make t.n_arms 0 in
  let n_active = Array.fold_left (fun a b -> if b then a + 1 else a) 0 active in
  if n_active = 0 || budget <= 0 then (execs, dealt)
  else begin
    let slices =
      match slices with
      | Some s -> max 1 (min s budget)
      | None -> max 1 (min (max 4 (2 * n_active)) budget)
    in
    (* Provisional pulls: committed counts plus what this call deals. *)
    let vn = Array.copy t.n in
    let vtotal = ref (Array.fold_left ( + ) 0 vn) in
    let best_mean = scale t t.n in
    let score i =
      if vn.(i) = 0 then infinity
      else
        let exploit = mean_of t t.n i /. best_mean in
        let explore =
          t.c *. sqrt (2. *. log (float (max 2 !vtotal)) /. float vn.(i))
        in
        exploit +. explore
    in
    let pick () =
      let best = ref (-1) and best_score = ref neg_infinity in
      for i = 0 to t.n_arms - 1 do
        if active.(i) then begin
          let s = score i in
          if s > !best_score then begin best := i; best_score := s end
        end
      done;
      !best
    in
    let base = budget / slices and rem = budget mod slices in
    for k = 0 to slices - 1 do
      let arm = pick () in
      execs.(arm) <- execs.(arm) + base + (if k < rem then 1 else 0);
      dealt.(arm) <- dealt.(arm) + 1;
      vn.(arm) <- vn.(arm) + 1;
      incr vtotal
    done;
    (execs, dealt)
  end

let update t ~arm ~pulls ~reward =
  if arm < 0 || arm >= t.n_arms then invalid_arg "Bandit.update: arm";
  if pulls > 0 then begin
    t.n.(arm) <- t.n.(arm) + pulls;
    t.sum.(arm) <- t.sum.(arm) +. (reward *. float pulls)
  end
