(* Resume a campaign from its store: rebuild, preload, continue, persist. *)

type outcome = {
  rs_result : Fuzz.Campaign.result;
  rs_campaign : Store.campaign;
  rs_from_generation : int;
  rs_generation : int;
  rs_epoch : int;
  rs_preloaded_crashes : int;
  rs_preloaded_logic : int;
  rs_executed : int;
  rs_execs_done : int;
  rs_budget : int;
  rs_warnings : string list;
}

let merge_compact_into bitmap compact =
  let tmp = Coverage.Bitmap.create () in
  Coverage.Bitmap.load_compact ~into:tmp compact;
  ignore (Coverage.Bitmap.merge ~into:bitmap tmp)

(* Import order matters: skeletons before affinities, so affinity-driven
   sequence synthesis finds structures to instantiate from the first
   imported pair on. Imports are pure store operations — no executions,
   no RNG draws — so preloading costs nothing against the budget. *)
let preload_fuzzer (sn : Store.snapshot) (fz : Fuzz.Driver.fuzzer) =
  let h = fz.Fuzz.Driver.f_harness in
  merge_compact_into (Fuzz.Harness.virgin h) sn.sn_virgin;
  (match Fuzz.Harness.grammar_virgin h with
   | Some g -> merge_compact_into g sn.sn_grammar
   | None -> ());
  Fuzz.Triage.preload (Fuzz.Harness.triage h) ~crash_keys:sn.sn_crash_keys
    ~logic_keys:sn.sn_logic_keys;
  match fz.Fuzz.Driver.f_exchange with
  | None -> ()
  | Some port ->
    List.iter
      (fun st -> port.Fuzz.Sync.p_import (Fuzz.Sync.Skeleton st))
      sn.sn_skeletons;
    List.iter
      (fun xs -> port.Fuzz.Sync.p_import (Fuzz.Sync.Seed xs))
      sn.sn_seeds;
    List.iter
      (fun (a, b) -> port.Fuzz.Sync.p_import (Fuzz.Sync.Affinity (a, b)))
      sn.sn_affinities

let prime_sync (sn : Store.snapshot) sync =
  Fuzz.Sync.preload ~virgin:sn.sn_virgin ~gram:sn.sn_grammar
    ~crash_keys:sn.sn_crash_keys ~logic_keys:sn.sn_logic_keys
    ~seed_hashes:(List.map (fun (x : Fuzz.Sync.xseed) -> x.xs_cov_hash) sn.sn_seeds)
    ~affinity_keys:
      (List.map
         (fun (a, b) ->
            (Sqlcore.Stmt_type.to_index a, Sqlcore.Stmt_type.to_index b))
         sn.sn_affinities)
    ~skeleton_keys:(List.map Sqlcore.Sql_printer.stmt sn.sn_skeletons)
    sync

(* Fold a finished segment into a new snapshot: prior store entries plus
   every shard's drained exchange exports, union of prior and shard
   virgin maps, and dedup keys extended by the segment's new findings
   (preloaded keys never reappear in cg_crashes/cg_logic, so the append
   cannot duplicate). *)
let capture ~(prior : Store.snapshot) ~campaign ~progress
    (result : Fuzz.Campaign.result) =
  let acc = Store.acc_of_snapshot prior in
  let virgin_map = Coverage.Bitmap.create () in
  Coverage.Bitmap.load_compact ~into:virgin_map prior.sn_virgin;
  let grammar_map = Coverage.Bitmap.create () in
  Coverage.Bitmap.load_compact ~into:grammar_map prior.sn_grammar;
  List.iter
    (fun (sh : Fuzz.Campaign.shard) ->
       let fz = sh.sh_fuzzer in
       (match fz.Fuzz.Driver.f_exchange with
        | Some port -> Store.acc_add_export acc (port.Fuzz.Sync.p_export ())
        | None -> ());
       let h = fz.Fuzz.Driver.f_harness in
       ignore (Coverage.Bitmap.merge ~into:virgin_map (Fuzz.Harness.virgin h));
       match Fuzz.Harness.grammar_virgin h with
       | Some g -> ignore (Coverage.Bitmap.merge ~into:grammar_map g)
       | None -> ())
    result.cg_shards;
  let crash_keys =
    prior.sn_crash_keys
    @ List.map (fun (c, _) -> Fuzz.Triage.stack_key c) result.cg_crashes
  in
  let logic_keys =
    prior.sn_logic_keys
    @ List.map (fun (v, _) -> Oracle.Violation.key v) result.cg_logic
  in
  Store.acc_snapshot acc ~campaign ~progress
    ~virgin:(Coverage.Bitmap.compact virgin_map)
    ~grammar:(Coverage.Bitmap.compact grammar_map)
    ~crash_keys ~logic_keys

let run ?(jobs = 1) ?execs ?sync_every ?checkpoint_every
    ?(sink = Telemetry.Sink.null) ?keep ~dir () =
  match Store.load ~dir with
  | Error warnings ->
    Error
      (Printf.sprintf "cannot load store under %s: %s" dir
         (String.concat "; " warnings))
  | Ok (sn, from_gen, warnings) ->
    let campaign = sn.sn_campaign and progress = sn.sn_progress in
    let remaining, budget =
      match execs with
      | Some n -> (n, max campaign.sc_budget (progress.pr_execs_done + n))
      | None -> (campaign.sc_budget - progress.pr_execs_done, campaign.sc_budget)
    in
    if remaining <= 0 then
      Error
        (Printf.sprintf
           "campaign %S already spent its budget (%d/%d execs); pass a \
            positive exec count to extend"
           campaign.sc_id progress.pr_execs_done campaign.sc_budget)
    else begin
      let campaign = { campaign with sc_budget = budget } in
      let epoch = progress.pr_epoch + 1 in
      let seed = Spec.epoch_seed ~campaign ~epoch in
      match Spec.make ~campaign ~seed with
      | Error e -> Error e
      | Ok base ->
        let make shard_id =
          let fz = base shard_id in
          preload_fuzzer sn fz;
          fz
        in
        Telemetry.Sink.emit sink
          (Telemetry.Event.Meta
             [ ("command", Telemetry.Json.Str "resume");
               ("campaign", Telemetry.Json.Str campaign.sc_id);
               ("fuzzer", Telemetry.Json.Str campaign.sc_fuzzer);
               ("dialect", Telemetry.Json.Str campaign.sc_dialect);
               ("seed", Telemetry.Json.Int campaign.sc_seed);
               ("epoch", Telemetry.Json.Int epoch);
               ("resumed_from", Telemetry.Json.Int from_gen);
               ("execs_done", Telemetry.Json.Int progress.pr_execs_done);
               ("budget", Telemetry.Json.Int budget);
               ("jobs", Telemetry.Json.Int jobs) ]);
        match
          try
            Ok
              (Fuzz.Campaign.run ?sync_every ?checkpoint_every ~sink
                 ~prime_sync:(prime_sync sn) ~jobs ~execs:remaining make)
          with Fuzz.Driver.Stalled msg ->
            Error (Printf.sprintf "campaign %S stalled: %s" campaign.sc_id msg)
        with
        | Error e -> Error e
        | Ok result ->
          let executed = result.cg_snapshot.st_execs in
          let progress' =
            { Store.pr_execs_done = progress.pr_execs_done + executed;
              pr_epoch = epoch }
          in
          let snapshot' = capture ~prior:sn ~campaign ~progress:progress' result in
          let generation = Store.save ?keep ~dir snapshot' in
          Ok
            { rs_result = result; rs_campaign = campaign;
              rs_from_generation = from_gen; rs_generation = generation;
              rs_epoch = epoch;
              rs_preloaded_crashes = List.length sn.sn_crash_keys;
              rs_preloaded_logic = List.length sn.sn_logic_keys;
              rs_executed = executed;
              rs_execs_done = progress.pr_execs_done + executed;
              rs_budget = budget; rs_warnings = warnings }
    end
