(** The farm worker process body (DESIGN.md §17).

    [legofuzz worker] (hidden) runs {!serve} over its stdin/stdout: the
    coordinator writes {!Transport.command} lines, the worker answers
    with {!Transport.message} lines — Hello on startup, Heartbeats
    between execution sub-slices, one Round report per Run command.

    State: the worker keeps one live fuzzer per campaign it has served.
    Each Run probes the campaign store's newest plain generation's
    manifest digests ({!Store.manifest_digests}); when they match what
    the live fuzzer descends from — the common case once the
    coordinator dispatches with campaign affinity, since promoting a
    worker generation by rename keeps its digests — the reload is
    skipped and the epoch keeps running ([rr_reload_skipped = 1]).
    Otherwise the store moved (another worker promoted news) and the
    worker pays for a full {!Store.load_marked} + preload on a fresh
    epoch stream ([rr_reloads = 1]).

    Results are persisted into the worker's generation namespace
    ([gen-NNNNNN.wK]) — complete but invisible to loaders until the
    coordinator {!Store.promote}s them, so concurrent workers never
    contend on section files. *)

type t

val create :
  ?runs_dir:string ->
  ?heartbeat_execs:int ->
  ?heartbeat:(execs:int -> unit) ->
  worker:int ->
  unit ->
  t
(** A worker serving slot [worker]. [heartbeat] is invoked after every
    [heartbeat_execs] (default 500) executions mid-round with the
    round's running exec count. *)

val run_round :
  t -> campaign:string -> execs:int -> round:int -> Transport.round_report
(** Serve one Run command: reload-or-reuse the campaign state, run
    [execs] executions (heartbeating), persist a worker generation,
    report. Never raises: load failures, stalls and engine faults come
    back in [rr_error]. *)

val serve :
  ?runs_dir:string -> ?heartbeat_execs:int -> worker:int ->
  in_channel -> out_channel -> unit
(** The protocol loop: emit Hello, then serve Run commands until
    Shutdown, EOF, or a malformed command line (answered with Fatal,
    then exit). [oc] carries protocol lines only. *)
