(** The versioned on-disk campaign store (DESIGN.md §16).

    A store lives under [runs/<campaign-id>/store/] and holds everything
    needed to resume a campaign: its configuration, progress counters,
    the corpus in {!Fuzz.Sync.xseed} exchange form, the affinity table
    and skeleton library, the edge and grammar virgin maps
    ({!Coverage.Bitmap.compact_cells} form), and the crash /
    logic-violation dedup keys.

    Writes are {e generational}: each {!save} creates a fresh
    [gen-NNNNNN/] directory, writing every section to a temp file first
    and renaming it into place, with a [MANIFEST.json] (schema tag +
    FNV-64 content digests of every section) written {e last}. A torn
    write — killed writer, truncated or bit-flipped file, missing
    manifest — therefore leaves either a detectably-invalid generation
    or a stray [.tmp] file, never a silently corrupt store. {!load}
    scans generations newest-first, validates manifest, digests and
    section syntax, and falls back to the most recent {e good}
    generation, reporting what it skipped. Old generations are pruned on
    save (default: keep 3). *)

type campaign = {
  sc_id : string;        (** filesystem-safe campaign identifier *)
  sc_fuzzer : string;    (** lego, lego-, squirrel, sqlancer, sqlsmith *)
  sc_dialect : string;   (** {!Dialects.Registry.by_name} key *)
  sc_quirks : string list;  (** extra {!Minidb.Profile.with_quirks} quirks *)
  sc_feedback : Fuzz.Harness.feedback;
  sc_oracles : bool;
  sc_exec_cache : int;
  sc_seed : int;
  sc_budget : int;       (** total execution budget across all epochs *)
}

type progress = {
  pr_execs_done : int;  (** executions already spent against [sc_budget] *)
  pr_epoch : int;       (** completed run segments; resume derives a fresh
                            RNG stream from it so a resumed campaign does
                            not replay the interrupted epoch's decisions *)
}

type snapshot = {
  sn_campaign : campaign;
  sn_progress : progress;
  sn_seeds : Fuzz.Sync.xseed list;  (** discovery order *)
  sn_affinities : (Sqlcore.Stmt_type.t * Sqlcore.Stmt_type.t) list;
  sn_skeletons : Sqlcore.Ast.stmt list;
  sn_virgin : Coverage.Bitmap.compact;   (** edge virgin map *)
  sn_grammar : Coverage.Bitmap.compact;  (** grammar virgin map (empty when
                                             feedback is [Edges]) *)
  sn_crash_keys : string list;   (** {!Fuzz.Triage.stack_key}s, first-seen
                                     order *)
  sn_logic_keys : string list;   (** {!Oracle.Violation.key}s *)
}

val schema : string
(** ["legofuzz-store-v1"] — the manifest schema tag. *)

val section_files : string list
(** The per-generation section file names (everything a manifest must
    digest): meta, corpus, affinities, skeletons, virgin maps, dedup. *)

val manifest_file : string
(** ["MANIFEST.json"]. *)

val store_dir : ?runs_dir:string -> string -> string
(** [store_dir id] = [<runs_dir>/<id>/store] (default runs dir
    {!Telemetry.Sink.runs_dir}). Does not create anything. *)

val generation_dir : dir:string -> int -> string
(** [<dir>/gen-NNNNNN]. *)

val generations : dir:string -> int list
(** Generation numbers present under [dir], ascending. Empty when the
    store directory does not exist. Worker-namespace generations
    ([gen-NNNNNN.wK]) are {e not} listed — they become visible to
    loaders only through {!promote}. *)

(** {2 Worker generation namespaces (DESIGN.md §17)}

    A farm worker process persists its round as [gen-NNNNNN.wK] (K =
    worker slot), a complete generation — sections, manifest, digests —
    that no plain load path can see. The coordinator {!promote}s it
    under the store's exclusive [LOCK]: a rename when the plain number
    is free (the common case; digests carry over unchanged), or a
    snapshot merge into a fresh generation when a twin exists.
    Concurrent writers therefore never contend on a section file. *)

val worker_generation_dir : dir:string -> worker:int -> int -> string
(** [<dir>/gen-NNNNNN.wK]. *)

val worker_generations : dir:string -> (int * int) list
(** Unpromoted [(generation, worker)] pairs under [dir], ascending. *)

val store_lock_path : dir:string -> string
(** [<dir>/LOCK] — the exclusive lock {!promote} holds while renaming /
    merging / pruning. *)

val generation_lock_path : dir:string -> int -> string
(** [<dir>/locks/gen-NNNNNN.lck] — the shared read-mark a process holds
    while parsing that generation; {!prune} skips locked generations. *)

val ensure_dir : string -> unit
(** [mkdir -p]. *)

val empty_snapshot : campaign -> snapshot
(** A fresh campaign's snapshot: zero progress, no entries, empty
    maps — the [prior] of a first-epoch capture. *)

val fnv64 : string -> string
(** FNV-1a 64-bit digest as 16 hex chars — the manifest's content
    digest. *)

val save : ?keep:int -> ?worker:int -> dir:string -> snapshot -> int
(** Persist a new generation (1 + the newest present, counting
    unpromoted worker generations) and prune all but the last [keep]
    (default 3, clamped to ≥ 1; generations carrying a live read-mark
    are never pruned). Returns the generation number written. Every
    file goes through temp-file + rename; the manifest is renamed into
    place last, making the generation valid atomically. With [worker],
    the generation is written into that worker's namespace
    ([gen-NNNNNN.wK]) and {e nothing is pruned} — only the promoting
    coordinator retires generations. *)

val load : dir:string -> (snapshot * int * string list, string list) result
(** Load the newest valid generation: [Ok (snapshot, generation,
    warnings)] where [warnings] describes newer generations that were
    skipped as corrupt (torn manifest, digest mismatch, missing file,
    unparseable section). [Error warnings] when no valid generation
    exists (or the store directory is missing). Stray [*.tmp] files are
    ignored entirely. *)

val load_marked : dir:string -> (snapshot * int * string list, string list) result
(** {!load}, but each generation is parsed under its shared
    {!generation_lock_path} read-mark — what worker processes use on a
    store the coordinator concurrently prunes, so a lock-aware
    {!prune} in another process cannot delete a generation mid-read. *)

val prune : keep:int -> dir:string -> unit
(** Remove all but the newest [keep] generations (clamped to ≥ 1),
    skipping any whose read-mark ({!generation_lock_path}) is currently
    held by a live process. *)

val manifest_digests : string -> (string * string) list option
(** [(section, fnv64)] pairs from a generation {e directory}'s
    manifest, in {!section_files} order — the cheap identity probe the
    reload short-circuit compares, without parsing any section. [None]
    when the manifest is missing, torn, or lacks a digest. *)

val merge_snapshots : snapshot -> snapshot -> snapshot
(** Union two snapshots of the same campaign: seeds / affinities /
    skeletons deduplicated by their exchange keys (first snapshot's
    entries keep their order), virgin and grammar maps bitmap-merged,
    dedup keys extended never rewritten (first snapshot's keys stay a
    prefix), progress counters taken pointwise-max. Campaign config
    comes from the first snapshot. *)

val promote :
  ?keep:int -> dir:string -> worker:int -> int -> (int, string) result
(** Promote a worker generation into the plain namespace, under the
    store's exclusive [LOCK]: renames [gen-NNNNNN.wK] to [gen-NNNNNN]
    when that number is still free (digests unchanged), or
    {!merge_snapshots} both twins into a fresh generation when a plain
    one landed first. Prunes (lock-aware, keep [keep], default 3) on
    the way out. Returns the resulting plain generation number. *)

val discard_worker_generations : dir:string -> worker:int -> unit
(** Remove every unpromoted generation of one worker slot — coordinator
    hygiene after killing or losing that worker, so half-written
    namespaces never accumulate. *)

val snapshot_equal : snapshot -> snapshot -> bool
(** Structural equality on the serialised form — what the round-trip
    property battery checks. *)

(** {2 Discovery accumulation}

    Both the farm scheduler and [resume] fold a campaign's exchange-port
    exports into the store; [acc] is that accumulator, deduplicating by
    the same keys {!Fuzz.Sync} uses (seed cov-hash, affinity pair,
    printed skeleton SQL) so re-exported entries never bloat the
    store. *)

type acc

val acc_create : unit -> acc

val acc_of_snapshot : snapshot -> acc
(** Seed the accumulator with a loaded generation's entries (resume
    path), so only genuinely new discoveries append. *)

val acc_add_export : acc -> Fuzz.Sync.export -> unit

val acc_counts : acc -> int * int * int
(** [(seeds, affinities, skeletons)] accumulated so far. *)

val acc_snapshot :
  acc ->
  campaign:campaign ->
  progress:progress ->
  virgin:Coverage.Bitmap.compact ->
  grammar:Coverage.Bitmap.compact ->
  crash_keys:string list ->
  logic_keys:string list ->
  snapshot
