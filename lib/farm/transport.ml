(* The farm control protocol: line-framed JSON over worker stdin/stdout
   (DESIGN.md §17). One value per line, canonical Telemetry.Json
   rendering, so the same codec the telemetry sinks use frames the
   control plane — and a malformed line is an ordinary parse error the
   coordinator can quarantine on, never a crash. *)

module Json = Telemetry.Json

type command =
  | Run of { rc_campaign : string; rc_execs : int; rc_round : int }
  | Shutdown

type round_report = {
  rr_campaign : string;
  rr_round : int;
  rr_allocated : int;
  rr_executed : int;
  rr_execs_done : int;
  rr_branches : int;
  rr_coverage_keys : int;
  rr_new_keys : int;
  rr_crashes_unique : int;
  rr_logic_unique : int;
  rr_bugs : string list;
  rr_generation : int;
  rr_finished : bool;
  rr_reloads : int;
  rr_reload_skipped : int;
  rr_error : string option;
}

type message =
  | Hello of { h_worker : int; h_pid : int }
  | Heartbeat of { hb_worker : int; hb_execs : int }
  | Round of round_report
  | Fatal of string

(* --- encoding -------------------------------------------------------- *)

let command_to_json = function
  | Run r ->
    Json.Obj
      [ ("cmd", Json.Str "run"); ("campaign", Json.Str r.rc_campaign);
        ("execs", Json.Int r.rc_execs); ("round", Json.Int r.rc_round) ]
  | Shutdown -> Json.Obj [ ("cmd", Json.Str "shutdown") ]

let round_to_json r =
  Json.Obj
    [ ("campaign", Json.Str r.rr_campaign); ("round", Json.Int r.rr_round);
      ("allocated", Json.Int r.rr_allocated);
      ("executed", Json.Int r.rr_executed);
      ("execs_done", Json.Int r.rr_execs_done);
      ("branches", Json.Int r.rr_branches);
      ("coverage_keys", Json.Int r.rr_coverage_keys);
      ("new_keys", Json.Int r.rr_new_keys);
      ("crashes_unique", Json.Int r.rr_crashes_unique);
      ("logic_unique", Json.Int r.rr_logic_unique);
      ("bugs", Json.Arr (List.map (fun b -> Json.Str b) r.rr_bugs));
      ("generation", Json.Int r.rr_generation);
      ("finished", Json.Bool r.rr_finished);
      ("reloads", Json.Int r.rr_reloads);
      ("reload_skipped", Json.Int r.rr_reload_skipped);
      ("error",
       match r.rr_error with Some e -> Json.Str e | None -> Json.Null) ]

let message_to_json = function
  | Hello h ->
    Json.Obj
      [ ("msg", Json.Str "hello"); ("worker", Json.Int h.h_worker);
        ("pid", Json.Int h.h_pid) ]
  | Heartbeat h ->
    Json.Obj
      [ ("msg", Json.Str "heartbeat"); ("worker", Json.Int h.hb_worker);
        ("execs", Json.Int h.hb_execs) ]
  | Round r -> (
      match round_to_json r with
      | Json.Obj fields -> Json.Obj (("msg", Json.Str "round") :: fields)
      | _ -> assert false)
  | Fatal e -> Json.Obj [ ("msg", Json.Str "fatal"); ("error", Json.Str e) ]

let command_to_line c = Json.to_string (command_to_json c)
let message_to_line m = Json.to_string (message_to_json m)

(* --- decoding -------------------------------------------------------- *)

let ( let* ) = Result.bind

let field name conv json =
  match Json.member name json with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad field %S" name))

let str_list json =
  match json with
  | Json.Arr items ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | Json.Str s :: rest -> go (s :: acc) rest
      | _ -> None
    in
    go [] items
  | _ -> None

let to_bool = function Json.Bool b -> Some b | _ -> None

let command_of_json json =
  let* cmd = field "cmd" Json.to_str json in
  match cmd with
  | "run" ->
    let* campaign = field "campaign" Json.to_str json in
    let* execs = field "execs" Json.to_int json in
    let* round = field "round" Json.to_int json in
    Ok (Run { rc_campaign = campaign; rc_execs = execs; rc_round = round })
  | "shutdown" -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown command %S" other)

let round_of_json json =
  let* campaign = field "campaign" Json.to_str json in
  let* round = field "round" Json.to_int json in
  let* allocated = field "allocated" Json.to_int json in
  let* executed = field "executed" Json.to_int json in
  let* execs_done = field "execs_done" Json.to_int json in
  let* branches = field "branches" Json.to_int json in
  let* coverage_keys = field "coverage_keys" Json.to_int json in
  let* new_keys = field "new_keys" Json.to_int json in
  let* crashes_unique = field "crashes_unique" Json.to_int json in
  let* logic_unique = field "logic_unique" Json.to_int json in
  let* bugs = field "bugs" str_list json in
  let* generation = field "generation" Json.to_int json in
  let* finished = field "finished" to_bool json in
  let* reloads = field "reloads" Json.to_int json in
  let* reload_skipped = field "reload_skipped" Json.to_int json in
  let* error =
    field "error"
      (function
        | Json.Null -> Some None
        | Json.Str e -> Some (Some e)
        | _ -> None)
      json
  in
  Ok
    { rr_campaign = campaign; rr_round = round; rr_allocated = allocated;
      rr_executed = executed; rr_execs_done = execs_done;
      rr_branches = branches; rr_coverage_keys = coverage_keys;
      rr_new_keys = new_keys; rr_crashes_unique = crashes_unique;
      rr_logic_unique = logic_unique; rr_bugs = bugs;
      rr_generation = generation; rr_finished = finished;
      rr_reloads = reloads; rr_reload_skipped = reload_skipped;
      rr_error = error }

let message_of_json json =
  let* msg = field "msg" Json.to_str json in
  match msg with
  | "hello" ->
    let* worker = field "worker" Json.to_int json in
    let* pid = field "pid" Json.to_int json in
    Ok (Hello { h_worker = worker; h_pid = pid })
  | "heartbeat" ->
    let* worker = field "worker" Json.to_int json in
    let* execs = field "execs" Json.to_int json in
    Ok (Heartbeat { hb_worker = worker; hb_execs = execs })
  | "round" ->
    let* r = round_of_json json in
    Ok (Round r)
  | "fatal" ->
    let* e = field "error" Json.to_str json in
    Ok (Fatal e)
  | other -> Error (Printf.sprintf "unknown message %S" other)

let command_of_line line =
  let* json = Json.of_string (String.trim line) in
  command_of_json json

let message_of_line line =
  let* json = Json.of_string (String.trim line) in
  message_of_json json
