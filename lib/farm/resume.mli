(** Resuming a persisted campaign from its on-disk store.

    [legofuzz resume <id>] (and the farm scheduler, when a store already
    exists for a campaign) reconstructs the fuzzer from the stored
    configuration, preloads everything the interrupted epochs learned —
    virgin maps merged into the fresh harness, crash/violation dedup
    keys into triage ({!Fuzz.Triage.preload}) and, for sharded resumes,
    into the sync ({!Fuzz.Sync.preload}), corpus / affinities /
    skeletons imported through the fuzzer's exchange port — and then
    continues the campaign on an epoch-derived RNG stream
    ({!Spec.epoch_seed}). Preloaded findings are never re-reported: the
    resumed run's unique counts cover new discoveries only. A new store
    generation is written when the run segment ends. *)

type outcome = {
  rs_result : Fuzz.Campaign.result;  (** the resumed segment's result *)
  rs_campaign : Store.campaign;
  rs_from_generation : int;   (** generation the resume started from *)
  rs_generation : int;        (** generation written at segment end *)
  rs_epoch : int;             (** epoch of the resumed segment *)
  rs_preloaded_crashes : int; (** dedup keys carried in (crash) *)
  rs_preloaded_logic : int;
  rs_executed : int;          (** executions this segment performed *)
  rs_execs_done : int;        (** cumulative, across all epochs *)
  rs_budget : int;            (** effective total budget (extended by
                                  [execs] when given) *)
  rs_warnings : string list;  (** corrupt generations skipped on load *)
}

val preload_fuzzer : Store.snapshot -> Fuzz.Driver.fuzzer -> unit
(** Fold a stored snapshot into a freshly built fuzzer: merge the
    virgin (and, if grammar feedback is on, grammar) compact into the
    harness maps, preload triage dedup keys, and import skeletons,
    seeds and affinities — in that order, so affinity-driven synthesis
    sees the skeleton library — through [f_exchange]. Fuzzers without
    an exchange port still get coverage and dedup preloads. *)

val prime_sync : Store.snapshot -> Fuzz.Sync.t -> unit
(** The {!Fuzz.Campaign.run} [prime_sync] hook for sharded resumes:
    {!Fuzz.Sync.preload} with the snapshot's maps and keys. *)

val capture :
  prior:Store.snapshot ->
  campaign:Store.campaign ->
  progress:Store.progress ->
  Fuzz.Campaign.result ->
  Store.snapshot
(** Fold a finished campaign segment into a persistable snapshot: the
    prior store entries plus every shard's drained exchange exports,
    the union of prior and shard virgin maps, and the dedup keys
    extended by the segment's new findings (a first-epoch capture
    passes {!Store.empty_snapshot} as [prior] — how [legofuzz fuzz
    --store] seeds a store). *)

val run :
  ?jobs:int ->
  ?execs:int ->
  ?sync_every:int ->
  ?checkpoint_every:int ->
  ?sink:Telemetry.Sink.t ->
  ?keep:int ->
  dir:string ->
  unit ->
  (outcome, string) result
(** Resume the campaign stored under [dir]. Without [execs] the segment
    runs the stored budget's unspent remainder ([sc_budget -
    execs_done]; an error if nothing remains); with [execs] it runs
    that many {e additional} executions and extends the stored budget
    accordingly. [jobs] (default 1) shards the segment via
    {!Fuzz.Campaign.run}. Telemetry goes to [sink] (default null) —
    pass an append-mode JSONL sink to continue the original run's
    stream; a [Meta] event with [resumed_from] (the source generation)
    marks the boundary. *)
