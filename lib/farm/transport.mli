(** The farm worker control protocol (DESIGN.md §17).

    Line-framed JSON over a worker's stdin/stdout: the coordinator
    writes one {!command} per line to the worker's stdin; the worker
    writes one {!message} per line to its stdout. Rendering is the
    canonical {!Telemetry.Json} single-line form, so framing is exactly
    "one [\n]-terminated JSON object", and both codecs are total: any
    line decodes to [Ok] or a descriptive [Error], never an exception —
    the coordinator treats a decode error as grounds to quarantine the
    worker, not to abort the farm.

    The encode/decode pair round-trips structurally:
    [message_of_line (message_to_line m) = Ok m] for every [m] (and
    likewise for commands) — property-tested over 1000 cases. *)

type command =
  | Run of {
      rc_campaign : string;  (** campaign id; the store names the rest *)
      rc_execs : int;        (** the round's execution budget *)
      rc_round : int;        (** coordinator round number, echoed back *)
    }
  | Shutdown

type round_report = {
  rr_campaign : string;
  rr_round : int;
  rr_allocated : int;      (** execs the coordinator dealt this round *)
  rr_executed : int;       (** execs actually performed *)
  rr_execs_done : int;     (** cumulative, including prior store state *)
  rr_branches : int;
  rr_coverage_keys : int;  (** branches + grammar cells after the round *)
  rr_new_keys : int;       (** coverage-key delta this round — the
                               coordinator's bandit reward *)
  rr_crashes_unique : int; (** preloaded keys excluded *)
  rr_logic_unique : int;
  rr_bugs : string list;
  rr_generation : int;     (** worker-namespace generation written
                               ([gen-NNNNNN.wK]); 0 when the save failed *)
  rr_finished : bool;      (** campaign budget exhausted *)
  rr_reloads : int;        (** full store reloads this round (0 or 1) *)
  rr_reload_skipped : int; (** reloads skipped by the manifest-digest
                               short-circuit (0 or 1) *)
  rr_error : string option;  (** stalled / died; the arm is retired *)
}

type message =
  | Hello of { h_worker : int; h_pid : int }
  | Heartbeat of { hb_worker : int; hb_execs : int }
      (** liveness, emitted between execution sub-slices mid-round *)
  | Round of round_report
  | Fatal of string
      (** the worker cannot continue (bad command, setup failure) *)

val command_to_line : command -> string
(** One line, no trailing newline. *)

val command_of_line : string -> (command, string) result

val message_to_line : message -> string

val message_of_line : string -> (message, string) result
