(* The farm round loop. Each round: allocate → dispatch to a domain
   pool → join → reward the bandit, bump farm.* counters, persist each
   ran campaign's store generation, emit checkpoints. Campaigns are
   single-shard and never share mutable state; the pool only decides
   which domain runs which campaign, never what the campaign does. *)

type campaign_result = {
  fc_campaign : Store.campaign;
  fc_rounds : int;
  fc_allocated : int;
  fc_executed : int;
  fc_execs_done : int;
  fc_branches : int;
  fc_coverage_keys : int;
  fc_new_keys : int;
  fc_crashes_unique : int;
  fc_logic_unique : int;
  fc_bugs : string list;
  fc_generation : int;
  fc_resumed_from : int option;
  fc_finished : bool;
  fc_error : string option;
}

type result = {
  fr_campaigns : campaign_result list;
  fr_rounds : int;
  fr_allocated : int;
  fr_metrics : Telemetry.Registry.t;
  fr_warnings : string list;
}

let coverage_keys (fz : Fuzz.Driver.fuzzer) =
  let h = fz.Fuzz.Driver.f_harness in
  Fuzz.Harness.branches h
  + (match Fuzz.Harness.grammar_virgin h with
     | Some g -> Coverage.Bitmap.count_nonzero g
     | None -> 0)

type cstate = {
  cs_campaign : Store.campaign;
  cs_dir : string;
  cs_fuzzer : Fuzz.Driver.fuzzer;
  cs_acc : Store.acc;
  cs_prior_execs : int;  (* execs_done carried in from the store *)
  cs_epoch : int;
  cs_resumed_from : int option;
  mutable cs_keys : int;        (* coverage keys at last observation *)
  cs_start_keys : int;
  mutable cs_rounds : int;
  mutable cs_allocated : int;
  mutable cs_generation : int;
  mutable cs_error : string option;
}

let execs_done st = st.cs_prior_execs + Fuzz.Harness.execs st.cs_fuzzer.Fuzz.Driver.f_harness

let remaining st = st.cs_campaign.sc_budget - execs_done st

let finished st = remaining st <= 0

let alive st = st.cs_error = None && not (finished st)

let empty_compact = lazy (Coverage.Bitmap.compact_of_cells [])

(* Persist one campaign's current state as a fresh store generation. *)
let save_state st =
  let fz = st.cs_fuzzer in
  let h = fz.Fuzz.Driver.f_harness in
  (match fz.Fuzz.Driver.f_exchange with
   | Some port -> Store.acc_add_export st.cs_acc (port.Fuzz.Sync.p_export ())
   | None -> ());
  let tri = Fuzz.Harness.triage h in
  let snapshot =
    Store.acc_snapshot st.cs_acc ~campaign:st.cs_campaign
      ~progress:{ Store.pr_execs_done = execs_done st; pr_epoch = st.cs_epoch }
      ~virgin:(Coverage.Bitmap.compact (Fuzz.Harness.virgin h))
      ~grammar:
        (match Fuzz.Harness.grammar_virgin h with
         | Some g -> Coverage.Bitmap.compact g
         | None -> Lazy.force empty_compact)
      ~crash_keys:(Fuzz.Triage.crash_keys tri)
      ~logic_keys:(Fuzz.Triage.logic_keys tri)
  in
  st.cs_generation <- Store.save ~dir:st.cs_dir snapshot

(* Build one campaign's state: fresh, or preloaded from an existing
   store (spec config authoritative, learned state from disk). *)
let init_campaign ~runs_dir warnings (c : Store.campaign) =
  let dir = Store.store_dir ?runs_dir c.sc_id in
  let prior, epoch, resumed_from, preload =
    if Store.generations ~dir = [] then (0, 0, None, None)
    else
      match Store.load ~dir with
      | Ok (sn, gen, warns) ->
        List.iter (fun w -> warnings := (c.sc_id ^ ": " ^ w) :: !warnings) warns;
        ( sn.Store.sn_progress.pr_execs_done,
          sn.Store.sn_progress.pr_epoch + 1, Some gen, Some sn )
      | Error warns ->
        List.iter (fun w -> warnings := (c.sc_id ^ ": " ^ w) :: !warnings) warns;
        warnings :=
          (Printf.sprintf "%s: no valid store generation, starting fresh"
             c.sc_id)
          :: !warnings;
        (0, 0, None, None)
  in
  match Spec.make ~campaign:c ~seed:(Spec.epoch_seed ~campaign:c ~epoch) with
  | Error e -> Error e
  | Ok base ->
    let fz = base 0 in
    Option.iter (fun sn -> Resume.preload_fuzzer sn fz) preload;
    let acc =
      match preload with
      | Some sn -> Store.acc_of_snapshot sn
      | None -> Store.acc_create ()
    in
    let keys = coverage_keys fz in
    Ok
      { cs_campaign = c; cs_dir = dir; cs_fuzzer = fz; cs_acc = acc;
        cs_prior_execs = prior; cs_epoch = epoch;
        cs_resumed_from = resumed_from; cs_keys = keys; cs_start_keys = keys;
        cs_rounds = 0; cs_allocated = 0; cs_generation = 0; cs_error = None }

(* Run one campaign's round slice on the calling domain. Exceptions
   (Stalled, engine faults) retire the arm instead of killing the
   farm. *)
let run_slice st ~execs =
  let h = st.cs_fuzzer.Fuzz.Driver.f_harness in
  let target = Fuzz.Harness.execs h + execs in
  try ignore (Fuzz.Driver.run_until_execs st.cs_fuzzer ~execs:target)
  with
  | Fuzz.Driver.Stalled msg -> st.cs_error <- Some ("stalled: " ^ msg)
  | exn -> st.cs_error <- Some (Printexc.to_string exn)

let checkpoint_event ~round st =
  let h = st.cs_fuzzer.Fuzz.Driver.f_harness in
  let tri = Fuzz.Harness.triage h in
  Telemetry.Event.Checkpoint
    { point =
        { Telemetry.Event.p_series = "farm/" ^ st.cs_campaign.sc_id;
          p_iteration = round; p_execs = execs_done st;
          p_branches = st.cs_keys;
          p_crashes_total = Fuzz.Triage.total_crashes tri;
          p_crashes_unique = Fuzz.Triage.unique_count tri;
          p_bugs = Fuzz.Triage.bug_ids tri };
      wall_s = None; execs_per_sec = None }

let run ?(sink = Telemetry.Sink.null) ?runs_dir (spec : Spec.t) =
  let warnings = ref [] in
  let states_r =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest -> (
          match init_campaign ~runs_dir warnings c with
          | Error e -> Error e
          | Ok st -> go (st :: acc) rest)
    in
    go [] spec.fs_campaigns
  in
  match states_r with
  | Error e -> Error e
  | Ok states_l ->
    let states = Array.of_list states_l in
    let n = Array.length states in
    let metrics = Telemetry.Registry.create () in
    let rounds_ctr = Telemetry.Registry.counter metrics "farm.rounds" in
    let alloc_ctr = Telemetry.Registry.counter metrics "farm.allocated" in
    let per_ctr st which =
      Telemetry.Registry.counter metrics
        (Printf.sprintf "farm.%s.%s" st.cs_campaign.sc_id which)
    in
    Array.iter
      (fun st ->
         ignore (per_ctr st "rounds");
         ignore (per_ctr st "allocated");
         ignore (per_ctr st "new_keys"))
      states;
    Telemetry.Sink.emit sink
      (Telemetry.Event.Meta
         [ ("command", Telemetry.Json.Str "farm");
           ("campaigns", Telemetry.Json.Int n);
           ("total_execs", Telemetry.Json.Int spec.fs_total_execs);
           ("round_execs", Telemetry.Json.Int spec.fs_round_execs);
           ("workers", Telemetry.Json.Int spec.fs_workers);
           ("policy", Telemetry.Json.Str (Spec.policy_to_string spec.fs_policy))
         ]);
    let bandit = Bandit.create ~c:spec.fs_ucb_c ~arms:n () in
    let dealt_total = ref 0 and round = ref 0 in
    let progressed = ref true in
    let continue_ () =
      !progressed
      && !dealt_total < spec.fs_total_execs
      && Array.exists alive states
    in
    while continue_ () do
      incr round;
      let active = Array.map alive states in
      let round_budget =
        min spec.fs_round_execs (spec.fs_total_execs - !dealt_total)
      in
      let alloc, pulls =
        match spec.fs_policy with
        | Spec.Bandit -> Bandit.allocate bandit ~budget:round_budget ~active
        | Spec.Round_robin ->
          let n_active =
            Array.fold_left (fun a b -> if b then a + 1 else a) 0 active
          in
          let alloc = Array.make n 0 and pulls = Array.make n 0 in
          if n_active > 0 then begin
            let base = round_budget / n_active
            and rem = ref (round_budget mod n_active) in
            Array.iteri
              (fun i is_active ->
                 if is_active then begin
                   alloc.(i) <- base + (if !rem > 0 then 1 else 0);
                   if !rem > 0 then decr rem;
                   pulls.(i) <- 1
                 end)
              active
          end;
          (alloc, pulls)
      in
      (* Cap by each campaign's own remaining budget; hand overflow to
         arms with spare capacity so the round's deal stays whole. *)
      let overflow = ref 0 in
      Array.iteri
        (fun i a ->
           if a > 0 then begin
             let cap = max 0 (remaining states.(i)) in
             if a > cap then begin
               overflow := !overflow + (a - cap);
               alloc.(i) <- cap
             end
           end)
        (Array.copy alloc);
      Array.iteri
        (fun i st ->
           if !overflow > 0 && active.(i) then begin
             let spare = max 0 (remaining st - alloc.(i)) in
             let take = min spare !overflow in
             alloc.(i) <- alloc.(i) + take;
             overflow := !overflow - take
           end)
        states;
      let jobs =
        Array.to_list (Array.mapi (fun i a -> (i, a)) alloc)
        |> List.filter (fun (_, a) -> a > 0)
        |> Array.of_list
      in
      if Array.length jobs = 0 then
        (* Nothing allocatable (every active arm is out of budget, or the
           whole round's deal overflowed): stop instead of spinning. *)
        progressed := false
      else begin
        progressed := true;
        let keys_before = Array.map (fun st -> st.cs_keys) states in
        let next = Atomic.make 0 in
        let worker () =
          let rec loop () =
            let k = Atomic.fetch_and_add next 1 in
            if k < Array.length jobs then begin
              let i, a = jobs.(k) in
              run_slice states.(i) ~execs:a;
              loop ()
            end
          in
          loop ()
        in
        let pool = min spec.fs_workers (Array.length jobs) in
        if pool <= 1 then worker ()
        else begin
          let domains =
            Array.init (pool - 1) (fun _ -> Domain.spawn worker)
          in
          worker ();
          Array.iter Domain.join domains
        end;
        (* Join done: observe, reward, persist, report — main thread. *)
        Array.iter
          (fun (i, a) ->
             let st = states.(i) in
             st.cs_keys <- coverage_keys st.cs_fuzzer;
             let delta = st.cs_keys - keys_before.(i) in
             st.cs_rounds <- st.cs_rounds + 1;
             st.cs_allocated <- st.cs_allocated + a;
             dealt_total := !dealt_total + a;
             (match spec.fs_policy with
              | Spec.Bandit ->
                Bandit.update bandit ~arm:i ~pulls:pulls.(i)
                  ~reward:(float_of_int delta /. float_of_int (max 1 a))
              | Spec.Round_robin -> ());
             Telemetry.Registry.incr (per_ctr st "rounds");
             Telemetry.Registry.incr ~by:a (per_ctr st "allocated");
             Telemetry.Registry.incr ~by:(max 0 delta) (per_ctr st "new_keys");
             save_state st;
             Telemetry.Sink.emit sink (checkpoint_event ~round:!round st))
          jobs;
        Telemetry.Registry.incr rounds_ctr;
        Telemetry.Registry.incr
          ~by:(Array.fold_left (fun acc (_, a) -> acc + a) 0 jobs)
          alloc_ctr
      end
    done;
    (* Campaigns that never got a round still deserve a generation (the
       initial corpus is real learned state), and every campaign's
       harness metrics fold into the farm registry. *)
    Array.iter
      (fun st ->
         if st.cs_generation = 0 then save_state st;
         Telemetry.Registry.merge ~into:metrics
           (Telemetry.Registry.snapshot
              (Fuzz.Harness.metrics st.cs_fuzzer.Fuzz.Driver.f_harness)))
      states;
    Telemetry.Sink.emit sink
      (Telemetry.Event.Registry_dump { series = "farm"; registry = metrics });
    let campaigns =
      Array.to_list
        (Array.map
           (fun st ->
              let h = st.cs_fuzzer.Fuzz.Driver.f_harness in
              let tri = Fuzz.Harness.triage h in
              { fc_campaign = st.cs_campaign; fc_rounds = st.cs_rounds;
                fc_allocated = st.cs_allocated;
                fc_executed = Fuzz.Harness.execs h;
                fc_execs_done = execs_done st;
                fc_branches = Fuzz.Harness.branches h;
                fc_coverage_keys = st.cs_keys;
                fc_new_keys = st.cs_keys - st.cs_start_keys;
                fc_crashes_unique = Fuzz.Triage.unique_count tri;
                fc_logic_unique = Fuzz.Triage.logic_count tri;
                fc_bugs = Fuzz.Triage.bug_ids tri;
                fc_generation = st.cs_generation;
                fc_resumed_from = st.cs_resumed_from;
                fc_finished = finished st; fc_error = st.cs_error })
           states)
    in
    Ok
      { fr_campaigns = campaigns;
        fr_rounds = Telemetry.Registry.counter_value metrics "farm.rounds";
        fr_allocated = !dealt_total; fr_metrics = metrics;
        fr_warnings = List.rev !warnings }
